package main

import (
	"context"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
)

// clusterSpec is the unscheduled fleet the cluster chaos suite runs: 16
// machines over the default 8-shard plan (2 workers x 4 shards each) puts >=2
// machines in every shard, so a stream cut after the first machine always
// leaves undelivered work behind — a murdered worker must force a
// re-dispatch, never a quietly-complete shard.
const clusterSpec = `{
	"name": "cluster-chaos",
	"duration_s": 120,
	"fleet": {"machines": 16, "base_seed": 11},
	"machine": {"cores": 2},
	"workload": [{"kind": "burn", "threads": 1}]
}`

// singleNodeReferenceArtifact runs clusterSpec once on a plain single-node
// daemon process — the bytes every clustered run, however abused, must match.
func singleNodeReferenceArtifact(t *testing.T) string {
	t.Helper()
	ref := startChildWith(t, "-addr 127.0.0.1:0 -workers 2")
	c := service.NewRetryClient(ref.base, chaosRetry())
	v, err := c.Submit(service.Request{Spec: []byte(clusterSpec)})
	if err != nil {
		t.Fatalf("reference submit: %v", err)
	}
	final, err := c.Wait(context.Background(), v.ID)
	if err != nil || final.State != service.StateDone {
		t.Fatalf("reference run: %v (state %s %s)", err, final.State, final.Error)
	}
	want := fetchArtifact(t, c, v.ID)
	ref.sigterm(t)
	return want
}

// startClusterWorker boots one worker-role daemon, optionally with a
// DIMD_FAULTS arming spec.
func startClusterWorker(t *testing.T, faults string) *chaosChild {
	t.Helper()
	env := []string(nil)
	if faults != "" {
		env = append(env, "DIMD_FAULTS="+faults)
	}
	return startChildWith(t, "-addr 127.0.0.1:0 -workers 2 -role worker", env...)
}

// startClusterCoordinator boots a coordinator-role daemon over the given
// workers with chaos-friendly timing (fast heartbeats, short leases).
func startClusterCoordinator(t *testing.T, extraFlags string, workers ...*chaosChild) *chaosChild {
	t.Helper()
	urls := make([]string, len(workers))
	for i, w := range workers {
		urls[i] = w.base
	}
	flags := "-addr 127.0.0.1:0 -workers 2 -role coordinator" +
		" -cluster-workers " + strings.Join(urls, ",") +
		" -heartbeat-every 50ms" + extraFlags
	return startChildWith(t, flags)
}

// metricValue extracts one exposition-format sample by exact name.
func metricValue(metrics, name string) (float64, bool) {
	for _, ln := range strings.Split(metrics, "\n") {
		if rest, ok := strings.CutPrefix(ln, name+" "); ok {
			if f, err := strconv.ParseFloat(strings.TrimSpace(rest), 64); err == nil {
				return f, true
			}
		}
	}
	return 0, false
}

// waitWorkerInFlight polls the coordinator's cluster status until the named
// worker holds at least one lease — the mid-shard moment the chaos verbs aim
// for.
func waitWorkerInFlight(t *testing.T, c *service.Client, workerURL string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, err := c.ClusterStatus()
		if err == nil {
			for _, w := range st.Detail {
				if w.URL == workerURL && w.InFlightShards > 0 {
					return
				}
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("worker %s never took a shard lease", workerURL)
}

// TestClusterChaosWorkerKill is the distributed-mode acceptance test: a real
// worker process is kill -9ed mid-job at three seeded points — dead before
// the job starts, wedged mid-shard holding a lease, and right after a
// truncated result stream — and every time the coordinator must recover the
// work and export bytes identical to a single-node run.
func TestClusterChaosWorkerKill(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite re-execs daemons; skipped in -short")
	}
	want := singleNodeReferenceArtifact(t)

	t.Run("dead-at-submit", func(t *testing.T) {
		w1 := startClusterWorker(t, "")
		w2 := startClusterWorker(t, "")
		defer w2.sigterm(t)
		co := startClusterCoordinator(t, " -lease-ttl 2s", w1, w2)
		defer co.sigterm(t)
		w1.kill9(t) // worker is a corpse before the first dispatch

		c := service.NewRetryClient(co.base, chaosRetry())
		v, err := c.Submit(service.Request{Spec: []byte(clusterSpec)})
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		final, err := c.Wait(context.Background(), v.ID)
		if err != nil || final.State != service.StateDone {
			t.Fatalf("job with a dead worker: %v (state %s %s)\n%s", err, final.State, final.Error, co.output())
		}
		if got := fetchArtifact(t, c, v.ID); got != want {
			t.Fatalf("dead-at-submit run diverged from single-node reference (%d vs %d bytes)", len(got), len(want))
		}
	})

	t.Run("stalled-mid-shard", func(t *testing.T) {
		// The stall fault wedges w1's first shard stream: it holds the lease,
		// answers nothing, and we SIGKILL it in exactly that state.
		w1 := startClusterWorker(t, "cluster.shard.stall")
		w2 := startClusterWorker(t, "")
		defer w2.sigterm(t)
		co := startClusterCoordinator(t, " -lease-ttl 2s", w1, w2)
		defer co.sigterm(t)

		c := service.NewRetryClient(co.base, chaosRetry())
		v, err := c.Submit(service.Request{Spec: []byte(clusterSpec)})
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		waitWorkerInFlight(t, c, w1.base)
		w1.kill9(t)

		final, err := c.Wait(context.Background(), v.ID)
		if err != nil || final.State != service.StateDone {
			t.Fatalf("job after mid-shard worker kill: %v (state %s %s)\n%s", err, final.State, final.Error, co.output())
		}
		if got := fetchArtifact(t, c, v.ID); got != want {
			t.Fatalf("mid-shard kill run diverged from single-node reference (%d vs %d bytes)", len(got), len(want))
		}
		metrics, err := c.Metrics()
		if err != nil {
			t.Fatalf("metrics: %v", err)
		}
		if n, ok := metricValue(metrics, "dimd_cluster_shard_retries_total"); !ok || n < 1 {
			t.Fatalf("dimd_cluster_shard_retries_total = %v (ok=%v), want >= 1 after a killed lease holder", n, ok)
		}
	})

	t.Run("killed-after-partial-stream", func(t *testing.T) {
		// w1 truncates its first stream mid-shard (machines delivered, no
		// terminal line), then dies for good once the coordinator has noticed.
		w1 := startClusterWorker(t, "cluster.result.partial")
		w2 := startClusterWorker(t, "")
		defer w2.sigterm(t)
		co := startClusterCoordinator(t, " -lease-ttl 2s", w1, w2)
		defer co.sigterm(t)

		c := service.NewRetryClient(co.base, chaosRetry())
		v, err := c.Submit(service.Request{Spec: []byte(clusterSpec)})
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		deadline := time.Now().Add(30 * time.Second)
		for {
			if m, err := c.Metrics(); err == nil {
				if n, ok := metricValue(m, "dimd_cluster_shard_retries_total"); ok && n >= 1 {
					break
				}
			}
			if time.Now().After(deadline) {
				t.Fatal("coordinator never counted a shard retry after the truncated stream")
			}
			time.Sleep(2 * time.Millisecond)
		}
		w1.kill9(t)

		final, err := c.Wait(context.Background(), v.ID)
		if err != nil || final.State != service.StateDone {
			t.Fatalf("job after partial stream + kill: %v (state %s %s)\n%s", err, final.State, final.Error, co.output())
		}
		if got := fetchArtifact(t, c, v.ID); got != want {
			t.Fatalf("partial-stream kill run diverged from single-node reference (%d vs %d bytes)", len(got), len(want))
		}
	})
}

// TestClusterChaosCoordinatorRestart kills -9 the coordinator itself mid-job
// (a worker wedged on a long lease guarantees the job is in flight) and
// restarts it over the same data directory: the journaled job must recover,
// re-dispatch through the cluster, and export the single-node bytes.
func TestClusterChaosCoordinatorRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite re-execs daemons; skipped in -short")
	}
	want := singleNodeReferenceArtifact(t)

	// The stall consumes itself with the first coordinator's death (the fault
	// is one-shot per worker process), so the revived coordinator's
	// re-dispatch sails through.
	w1 := startClusterWorker(t, "cluster.shard.stall")
	defer w1.sigterm(t)
	w2 := startClusterWorker(t, "")
	defer w2.sigterm(t)

	dir := t.TempDir()
	durable := " -lease-ttl 60s -checkpoint-every 1 -data-dir " + dir
	co := startClusterCoordinator(t, durable, w1, w2)
	c := service.NewRetryClient(co.base, chaosRetry())
	v, err := c.Submit(service.Request{Spec: []byte(clusterSpec)})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	// With a 60s lease the wedged shard pins the job open; once w1 holds a
	// lease the job provably cannot finish before the kill lands.
	waitWorkerInFlight(t, c, w1.base)
	co.kill9(t)

	revived := startClusterCoordinator(t, durable, w1, w2)
	defer revived.sigterm(t)
	if !strings.Contains(revived.output(), "recovered 1 interrupted job(s)") {
		t.Fatalf("restarted coordinator did not report recovery:\n%s", revived.output())
	}
	c2 := service.NewRetryClient(revived.base, chaosRetry())
	final, err := c2.Wait(context.Background(), v.ID)
	if err != nil || final.State != service.StateDone {
		t.Fatalf("recovered clustered job: %v (state %s %s)\n%s", err, final.State, final.Error, revived.output())
	}
	if got := fetchArtifact(t, c2, v.ID); got != want {
		t.Fatalf("coordinator-restart run diverged from single-node reference (%d vs %d bytes)", len(got), len(want))
	}
}

// TestClusterChaosDegradeVisible points a coordinator at workers that were
// never alive: the job must still complete (shards degrade to the
// coordinator), produce single-node bytes, and the degradation must be
// visible in the job status, the event stream, and /metrics.
func TestClusterChaosDegradeVisible(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite re-execs daemons; skipped in -short")
	}
	want := singleNodeReferenceArtifact(t)

	co := startChildWith(t, "-addr 127.0.0.1:0 -workers 2 -role coordinator"+
		" -cluster-workers http://127.0.0.1:1,http://127.0.0.1:2"+
		" -heartbeat-every 50ms -lease-ttl 500ms")
	defer co.sigterm(t)

	c := service.NewRetryClient(co.base, chaosRetry())
	v, err := c.Submit(service.Request{Spec: []byte(clusterSpec)})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	sawDegradedEvent := false
	if err := c.Stream(context.Background(), v.ID, func(e service.Event) error {
		if e.Type == "degraded" {
			sawDegradedEvent = true
		}
		return nil
	}); err != nil {
		t.Fatalf("stream: %v", err)
	}
	if !sawDegradedEvent {
		t.Fatal("no degraded event on the job stream")
	}
	final, err := c.Job(v.ID)
	if err != nil || final.State != service.StateDone {
		t.Fatalf("degraded job: %v (state %s %s)\n%s", err, final.State, final.Error, co.output())
	}
	if !final.Degraded {
		t.Fatal("job view does not report degraded")
	}
	if got := fetchArtifact(t, c, v.ID); got != want {
		t.Fatalf("degraded run diverged from single-node reference (%d vs %d bytes)", len(got), len(want))
	}
	metrics, err := c.Metrics()
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if n, ok := metricValue(metrics, "dimd_cluster_jobs_degraded_total"); !ok || n != 1 {
		t.Fatalf("dimd_cluster_jobs_degraded_total = %v (ok=%v), want 1", n, ok)
	}
	if n, ok := metricValue(metrics, "dimd_cluster_shards_local_total"); !ok || n < 1 {
		t.Fatalf("dimd_cluster_shards_local_total = %v (ok=%v), want >= 1", n, ok)
	}
}
