package main

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/service"
)

// TestMain doubles as the chaos suite's daemon process: when re-execed with
// DIMD_CHAOS_CHILD=1, the test binary IS dimd (running main's run() with the
// flags from DIMD_CHAOS_FLAGS) — so kill -9 hits a real daemon process with
// real fsyncs, not a goroutine.
func TestMain(m *testing.M) {
	if os.Getenv("DIMD_CHAOS_CHILD") == "1" {
		os.Exit(run(strings.Fields(os.Getenv("DIMD_CHAOS_FLAGS")), os.Stdout, os.Stderr, nil))
	}
	os.Exit(m.Run())
}

// chaosSpec is the scheduled scenario the chaos suite murders repeatedly:
// long enough (120 round barriers) that every seeded kill lands mid-run,
// with checkpoint-every=1 so each barrier persists a resume token.
const chaosSpec = `{
	"name": "chaos-sched",
	"duration_s": 240,
	"fleet": {"machines": 2, "base_seed": 5},
	"machine": {"cores": 2},
	"scheduler": {
		"round_s": 2,
		"jobs": [{"name": "small", "rate": 0.5, "work_s": 3}]
	}
}`

// chaosChild is one re-execed daemon process.
type chaosChild struct {
	cmd  *exec.Cmd
	base string // http://host:port
	out  *strings.Builder
	omu  *sync.Mutex
	done chan error
}

// startChild boots a daemon child over dataDir and waits for its listener.
func startChild(t *testing.T, dataDir string) *chaosChild {
	t.Helper()
	return startChildWith(t, "-addr 127.0.0.1:0 -workers 2 -checkpoint-every 1 -data-dir "+dataDir)
}

// startChildWith boots a daemon child with explicit flags (plus any extra
// environment entries, e.g. DIMD_FAULTS fault arming) and waits for its
// listener.
func startChildWith(t *testing.T, flags string, extraEnv ...string) *chaosChild {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"DIMD_CHAOS_CHILD=1",
		"DIMD_CHAOS_FLAGS="+flags,
	)
	cmd.Env = append(cmd.Env, extraEnv...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("stdout pipe: %v", err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting daemon child: %v", err)
	}
	// Last-resort reaping: if the test bails before its own sigterm/kill9,
	// don't leave a daemon process behind (Kill on a reaped process is a
	// harmless error).
	t.Cleanup(func() { _ = cmd.Process.Kill() })
	c := &chaosChild{cmd: cmd, out: &strings.Builder{}, omu: &sync.Mutex{}, done: make(chan error, 1)}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			c.omu.Lock()
			c.out.WriteString(line + "\n")
			c.omu.Unlock()
			if _, rest, ok := strings.Cut(line, "serving on "); ok {
				if addr, _, ok := strings.Cut(rest, " "); ok {
					select {
					case addrCh <- addr:
					default:
					}
				}
			}
		}
		c.done <- cmd.Wait()
	}()
	select {
	case addr := <-addrCh:
		c.base = "http://" + addr
	case err := <-c.done:
		t.Fatalf("daemon child exited before binding: %v\n%s", err, c.output())
	case <-time.After(30 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatalf("daemon child did not bind in time\n%s", c.output())
	}
	return c
}

func (c *chaosChild) output() string {
	c.omu.Lock()
	defer c.omu.Unlock()
	return c.out.String()
}

// kill9 is the chaos verb: SIGKILL, no drain, no flushes.
func (c *chaosChild) kill9(t *testing.T) {
	t.Helper()
	if err := c.cmd.Process.Kill(); err != nil {
		t.Fatalf("kill -9: %v", err)
	}
	<-c.done
}

// sigterm asks for a graceful drain and asserts exit 0.
func (c *chaosChild) sigterm(t *testing.T) {
	t.Helper()
	if err := c.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("sigterm: %v", err)
	}
	select {
	case err := <-c.done:
		if err != nil {
			t.Fatalf("daemon exited non-zero after SIGTERM: %v\n%s", err, c.output())
		}
	case <-time.After(60 * time.Second):
		_ = c.cmd.Process.Kill()
		t.Fatalf("daemon did not drain after SIGTERM\n%s", c.output())
	}
}

func chaosRetry() service.RetryPolicy {
	return service.RetryPolicy{MaxAttempts: 8, BaseDelay: 10 * time.Millisecond, MaxDelay: 200 * time.Millisecond}
}

// fetchArtifact pulls a done job's rendered output and every file.
func fetchArtifact(t *testing.T, c *service.Client, id string) string {
	t.Helper()
	out, err := c.Output(id)
	if err != nil {
		t.Fatalf("output: %v", err)
	}
	names, err := c.Files(id)
	if err != nil {
		t.Fatalf("files: %v", err)
	}
	var b strings.Builder
	b.WriteString(out)
	for _, name := range names {
		data, err := c.File(id, name)
		if err != nil {
			t.Fatalf("file %s: %v", name, err)
		}
		b.WriteString("\x00" + name + "\x00")
		b.Write(data)
	}
	return b.String()
}

// TestChaosKillRecovery is the crash-safety acceptance test: a real daemon
// process is kill -9ed mid-run at five seeded round barriers; each time a
// restarted daemon over the same data directory must recover the journaled
// job, resume it from its last checkpoint via verified replay, and export
// bytes identical to an uninterrupted reference run.
func TestChaosKillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite re-execs daemons; skipped in -short")
	}
	req := service.Request{Spec: []byte(chaosSpec)}

	// Uninterrupted reference: one clean daemon lifecycle.
	refDir := t.TempDir()
	ref := startChild(t, refDir)
	refClient := service.NewRetryClient(ref.base, chaosRetry())
	rv, err := refClient.Submit(req)
	if err != nil {
		t.Fatalf("reference submit: %v", err)
	}
	final, err := refClient.Wait(context.Background(), rv.ID)
	if err != nil || final.State != service.StateDone {
		t.Fatalf("reference run: %v (state %s %s)", err, final.State, final.Error)
	}
	want := fetchArtifact(t, refClient, rv.ID)
	ref.sigterm(t)

	// Seeded kill points: the round barrier after which the daemon dies.
	for _, killAfterRound := range []int{1, 3, 6, 11, 19} {
		t.Run(fmt.Sprintf("kill-after-round-%d", killAfterRound), func(t *testing.T) {
			dir := t.TempDir()
			victim := startChild(t, dir)
			c := service.NewRetryClient(victim.base, chaosRetry())
			v, err := c.Submit(req)
			if err != nil {
				t.Fatalf("submit: %v", err)
			}

			// Follow the stream until the job passes the kill barrier, then
			// murder the process. Stream errors after the kill are expected.
			rounds := 0
			ctx, cancel := context.WithCancel(context.Background())
			_ = c.Stream(ctx, v.ID, func(e service.Event) error {
				if e.Type == "round" {
					rounds++
					if rounds >= killAfterRound {
						return fmt.Errorf("kill point reached")
					}
				}
				if e.Type == "done" || e.Type == "error" {
					return fmt.Errorf("job finished before the kill point: %s", e.Type)
				}
				return nil
			})
			cancel()
			if rounds < killAfterRound {
				t.Fatalf("observed only %d rounds before stream ended", rounds)
			}
			victim.kill9(t)

			// Restart over the same data directory: the journaled job must
			// recover, resume, and finish with the reference bytes.
			revived := startChild(t, dir)
			defer revived.sigterm(t)
			if !strings.Contains(revived.output(), "recovered 1 interrupted job(s)") {
				t.Fatalf("restarted daemon did not report recovery:\n%s", revived.output())
			}
			c2 := service.NewRetryClient(revived.base, chaosRetry())
			final, err := c2.Wait(context.Background(), v.ID)
			if err != nil || final.State != service.StateDone {
				t.Fatalf("recovered job: %v (state %s %s)\n%s", err, final.State, final.Error, revived.output())
			}
			if got := fetchArtifact(t, c2, v.ID); got != want {
				t.Fatalf("kill after round %d: resumed run diverged from uninterrupted reference (%d vs %d bytes)",
					killAfterRound, len(got), len(want))
			}
		})
	}
}

// TestChaosWorkerPanicSmoke arms the worker.panic fault point through the
// environment (the DIMD_FAULTS path cmd/dimd wires at boot) and checks the
// daemon contains it: the poisoned job fails with the panic message, the
// panic counter ticks, and the daemon keeps serving.
func TestChaosWorkerPanicSmoke(t *testing.T) {
	dir := t.TempDir()
	child := startChildWith(t, "-addr 127.0.0.1:0 -workers 1 -data-dir "+dir, "DIMD_FAULTS=worker.panic")
	defer child.sigterm(t)

	c := service.NewRetryClient(child.base, chaosRetry())
	v, err := c.Submit(service.Request{Spec: []byte(chaosSpec), Scale: 0.05})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	final, err := c.Wait(context.Background(), v.ID)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if final.State != service.StateFailed || !strings.Contains(final.Error, "worker panic") {
		t.Fatalf("poisoned job: state=%s err=%q, want failed with worker panic", final.State, final.Error)
	}
	// One-shot fault: the daemon must still run the next job to completion.
	v2, err := c.Submit(service.Request{Spec: []byte(chaosSpec), Scale: 0.05})
	if err != nil {
		t.Fatalf("post-panic submit: %v", err)
	}
	if final2, err := c.Wait(context.Background(), v2.ID); err != nil || final2.State != service.StateDone {
		t.Fatalf("daemon did not survive the panic: %v (state %s %s)", err, final2.State, final2.Error)
	}
	metrics, err := c.Metrics()
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if !strings.Contains(metrics, "dimd_job_panics_total 1") {
		t.Fatalf("metrics missing dimd_job_panics_total 1:\n%s", metrics)
	}
}
