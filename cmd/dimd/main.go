// Command dimd is the Dimetrodon simulation daemon: a long-running HTTP
// service that accepts experiment/scenario/sched jobs, runs them on a
// bounded worker pool, streams per-round fleet telemetry (NDJSON/SSE),
// caches results by canonical spec hash, and exports the same byte-identical
// reports and CSVs the dimctl CLI produces.
//
// Usage:
//
//	dimd                              serve on :8080
//	dimd -addr 127.0.0.1:9090         serve elsewhere
//	dimd -workers 4 -queue 256        size the pool and admission queue
//	dimd -cache-mb 128                size the result cache
//	dimd -data-dir /var/lib/dimd      durable: journal + checkpoints + artifacts
//	dimd -role worker                 shard worker for a remote coordinator
//	dimd -role coordinator -cluster-workers http://w1:8080,http://w2:8080
//	                                  fan scenario fleets out across workers
//	dimd -flight-records 8192         size the incident flight-recorder ring
//	dimd -slo-queue-wait 0.5 -slo-violation 2
//	                                  arm SLO burn-rate rules; breaches auto-dump incidents
//
// In coordinator mode, scenario jobs are split into machine-range shards and
// dispatched to the static worker set under TTL leases: a worker that dies,
// stalls, or truncates its result stream mid-shard has its lease revoked and
// the missing machines re-dispatched (or, when no healthy worker remains, run
// locally — the job completes degraded rather than failing). Results merge in
// fixed machine order, so the exported bytes are identical to a single-node
// run regardless of which workers failed along the way. Worker mode is an
// ordinary daemon with a name tag: every dimd serves the shard endpoints.
//
// With -data-dir the daemon is crash-safe: accepted jobs journal to a WAL
// before the submission is acknowledged, in-flight jobs checkpoint at round
// barriers, and a restart (clean or kill -9) recovers the job table, warms
// the result cache from persisted artifacts, and re-runs interrupted jobs to
// byte-identical results — resuming scheduled runs from their last verified
// checkpoint.
//
// SIGINT/SIGTERM drain gracefully: admission stops (429/503), running jobs
// finish (up to -drain-timeout, then their contexts are cancelled) and the
// process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	dimetrodon "repro"
	"repro/internal/faultinject"
	"repro/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run is the testable entry point: it serves until a termination signal (or
// the optional test-injected stop channel) fires, then drains. ready, when
// non-nil, receives the bound address once the listener is up.
func run(args []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("dimd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "concurrent job executors; 0 = GOMAXPROCS")
	queue := fs.Int("queue", 256, "admission queue depth (full = 429 + Retry-After)")
	cacheMB := fs.Int("cache-mb", 64, "result cache budget in MiB")
	scale := fs.Float64("scale", 1.0, "default job scale when a request omits one")
	jobs := fs.Int("jobs", 0, "per-job trial parallelism; 0 = GOMAXPROCS")
	integrator := fs.String("integrator", "", "thermal integrator override: exact or leap")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "graceful drain bound before in-flight jobs are cancelled")
	dataDir := fs.String("data-dir", "", "durable state directory (job journal, checkpoints, artifacts); empty = in-memory")
	checkpointEvery := fs.Int("checkpoint-every", 0, "scheduled-run checkpoint cadence in round barriers; 0 = default (5), negative disables")
	role := fs.String("role", "", "cluster role: coordinator, worker, or empty for single-node")
	clusterWorkers := fs.String("cluster-workers", "", "comma-separated worker base URLs (coordinator role only)")
	leaseTTL := fs.Duration("lease-ttl", 0, "shard lease TTL before a silent worker is presumed dead; 0 = default")
	heartbeatEvery := fs.Duration("heartbeat-every", 0, "worker health-probe cadence; 0 = default")
	flightRecords := fs.Int("flight-records", 0, "flight-recorder ring size; 0 = default (4096), negative disables")
	maxIncidents := fs.Int("max-incidents", 0, "retained incident dumps; 0 = default (32)")
	sloQueueWait := fs.Float64("slo-queue-wait", 0, "queue-wait SLO threshold in seconds; 0 disables the rule")
	sloViolation := fs.Float64("slo-violation", 0, "per-machine thermal-violation SLO threshold in seconds; 0 disables the rule")
	sloBurnBudget := fs.Float64("slo-burn-budget", 0, "tolerated bad fraction per SLO window; 0 = default (0.1)")
	sloMinEvents := fs.Int("slo-min-events", 0, "minimum new observations before an SLO window evaluates; 0 = default (8)")
	logFormat := fs.String("log-format", "text", "structured log format on stderr: text, json or off")
	logLevel := fs.String("log-level", "info", "minimum structured log level: debug, info, warn or error")
	profilePhases := fs.Bool("profile-phases", false, "accumulate engine phase timings (exported as dimd_phase_seconds_total)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if len(fs.Args()) > 0 {
		fmt.Fprintf(stderr, "dimd: unexpected arguments %v\n", fs.Args())
		return 2
	}
	dimetrodon.SetJobs(*jobs)
	if err := dimetrodon.SetIntegrator(*integrator); err != nil {
		fmt.Fprintf(stderr, "dimd: %v\n", err)
		return 2
	}
	// The chaos harness arms fault points through the environment; a
	// malformed spec refuses to start rather than run half-armed.
	if err := faultinject.ConfigureFromEnv(); err != nil {
		fmt.Fprintf(stderr, "dimd: %v\n", err)
		return 2
	}
	logger, err := buildLogger(stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(stderr, "dimd: %v\n", err)
		return 2
	}
	obs.EnableProfiling(*profilePhases)

	var workerURLs []string
	switch *role {
	case "coordinator":
		for _, u := range strings.Split(*clusterWorkers, ",") {
			if u = strings.TrimSpace(u); u != "" {
				workerURLs = append(workerURLs, u)
			}
		}
		if len(workerURLs) == 0 {
			fmt.Fprintln(stderr, "dimd: -role coordinator needs -cluster-workers (comma-separated worker URLs)")
			return 2
		}
	case "", "worker":
		// A worker is an ordinary daemon — the role flag only names it in the
		// startup line. Cluster topology flags belong to the coordinator.
		if *clusterWorkers != "" {
			fmt.Fprintf(stderr, "dimd: -cluster-workers only applies to -role coordinator (role is %q)\n", *role)
			return 2
		}
		if *leaseTTL != 0 || *heartbeatEvery != 0 {
			fmt.Fprintf(stderr, "dimd: -lease-ttl/-heartbeat-every only apply to -role coordinator (role is %q)\n", *role)
			return 2
		}
	default:
		fmt.Fprintf(stderr, "dimd: unknown -role %q (want coordinator, worker, or empty)\n", *role)
		return 2
	}

	if *dataDir != "" {
		cleanupPid, err := writePidFile(*dataDir, stderr)
		if err != nil {
			fmt.Fprintf(stderr, "dimd: %v\n", err)
			return 1
		}
		defer cleanupPid()
	}

	cfg := dimetrodon.ServiceConfig{
		Workers:         *workers,
		QueueDepth:      *queue,
		CacheBytes:      int64(*cacheMB) << 20,
		DefaultScale:    *scale,
		DataDir:         *dataDir,
		CheckpointEvery: *checkpointEvery,
		Logger:          logger,
	}
	cfg.Cluster.Workers = workerURLs
	cfg.Cluster.LeaseTTL = *leaseTTL
	cfg.Cluster.HeartbeatEvery = *heartbeatEvery
	cfg.FlightRecords = *flightRecords
	cfg.MaxIncidents = *maxIncidents
	cfg.SLO.QueueWaitS = *sloQueueWait
	cfg.SLO.ViolationS = *sloViolation
	cfg.SLO.Budget = *sloBurnBudget
	cfg.SLO.MinEvents = *sloMinEvents
	svc, err := dimetrodon.OpenService(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "dimd: %v\n", err)
		return 1
	}
	if *dataDir != "" {
		fmt.Fprintf(stdout, "dimd: durable in %s, recovered %d interrupted job(s)\n", *dataDir, svc.Recovered())
	}
	switch *role {
	case "coordinator":
		fmt.Fprintf(stdout, "dimd: coordinator over %d worker(s): %s\n", len(workerURLs), strings.Join(workerURLs, ", "))
	case "worker":
		fmt.Fprintf(stdout, "dimd: worker mode, serving shards\n")
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "dimd: %v\n", err)
		return 1
	}
	srv := &http.Server{Handler: svc.Handler()}
	fmt.Fprintf(stdout, "dimd: serving on %s (workers=%d queue=%d cache=%dMiB)\n",
		ln.Addr(), *workers, *queue, *cacheMB)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case got := <-sig:
		fmt.Fprintf(stdout, "dimd: %v, draining (timeout %v)\n", got, *drainTimeout)
	case err := <-serveErr:
		fmt.Fprintf(stderr, "dimd: serve: %v\n", err)
		return 1
	}

	// Drain: stop job admission first so /healthz flips to draining while
	// in-flight jobs finish, then close the HTTP listener.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		fmt.Fprintf(stdout, "dimd: drain timeout, in-flight jobs cancelled\n")
	}
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(stderr, "dimd: shutdown: %v\n", err)
		return 1
	}
	fmt.Fprintln(stdout, "dimd: drained, bye")
	return 0
}

// buildLogger assembles the daemon's structured logger from the -log-format
// and -log-level flags. Logs go to stderr so the human-readable stdout lines
// ("serving on", "drained, bye") stay machine-greppable; "off" keeps the
// logger nil, which the service discards.
func buildLogger(stderr io.Writer, format, level string) (*slog.Logger, error) {
	if format == "off" {
		return nil, nil
	}
	var lvl slog.Level
	switch level {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn or error)", level)
	}
	ho := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(stderr, ho)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(stderr, ho)), nil
	}
	return nil, fmt.Errorf("unknown -log-format %q (want text, json or off)", format)
}

// writePidFile claims the data directory via dimd.pid, refusing to start
// while another live dimd owns it and clearing a stale file left by a
// crashed one (the crash-recovery path: the journal, not the pid file, is
// the source of truth). Returns the cleanup to run on graceful exit.
func writePidFile(dataDir string, stderr io.Writer) (func(), error) {
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		return nil, err
	}
	path := filepath.Join(dataDir, "dimd.pid")
	if raw, err := os.ReadFile(path); err == nil {
		if pid, perr := strconv.Atoi(strings.TrimSpace(string(raw))); perr == nil && pid > 0 {
			// Signal 0 probes liveness without touching the process.
			if syscall.Kill(pid, 0) == nil {
				return nil, fmt.Errorf("data dir %s is owned by running dimd pid %d (remove %s if that is wrong)", dataDir, pid, path)
			}
			fmt.Fprintf(stderr, "dimd: clearing stale pid file (pid %d is gone)\n", pid)
		}
	}
	if err := os.WriteFile(path, []byte(strconv.Itoa(os.Getpid())+"\n"), 0o644); err != nil {
		return nil, err
	}
	return func() { _ = os.Remove(path) }, nil
}
