package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"
)

// startDaemon boots run() on a loopback port and returns the base URL plus a
// channel carrying the exit code.
func startDaemon(t *testing.T, stdout, stderr io.Writer, extra ...string) (string, <-chan int) {
	t.Helper()
	ready := make(chan string, 1)
	exit := make(chan int, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-scale", "0.05"}, extra...)
	go func() { exit <- run(args, stdout, stderr, ready) }()
	select {
	case addr := <-ready:
		return "http://" + addr, exit
	case code := <-exit:
		t.Fatalf("daemon exited %d before binding", code)
		return "", nil
	}
}

// TestServeSubmitStreamExportSIGTERM is the daemon's full lifecycle in one
// pass: boot, health, submit, stream to completion, download an artefact,
// then a SIGTERM drain with exit code 0 — the same round-trip the CI smoke
// job drives against the compiled binary.
func TestServeSubmitStreamExportSIGTERM(t *testing.T) {
	var out, errb bytes.Buffer
	base, exit := startDaemon(t, &out, &errb)

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	submit, err := http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"name": "fleet-diurnal", "scale": 0.05}`))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var view struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(submit.Body).Decode(&view); err != nil {
		t.Fatalf("decode submit: %v", err)
	}
	submit.Body.Close()

	stream, err := http.Get(base + "/v1/jobs/" + view.ID + "/stream")
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	events, err := io.ReadAll(stream.Body)
	stream.Body.Close()
	if err != nil {
		t.Fatalf("stream read: %v", err)
	}
	if !strings.Contains(string(events), `"type":"done"`) {
		t.Fatalf("stream ended without a done event:\n%s", events)
	}

	file, err := http.Get(base + "/v1/jobs/" + view.ID + "/files/scenario_fleet_diurnal_fleet.csv")
	if err != nil {
		t.Fatalf("file: %v", err)
	}
	csv, _ := io.ReadAll(file.Body)
	file.Body.Close()
	if file.StatusCode != http.StatusOK || !strings.HasPrefix(string(csv), "metric,value") {
		t.Fatalf("artefact download failed (%d):\n%s", file.StatusCode, csv)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("daemon exited %d after SIGTERM:\n%s", code, errb.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not drain after SIGTERM")
	}
	for _, want := range []string{"dimd: serving on", "draining", "drained, bye"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("stdout missing %q:\n%s", want, out.String())
		}
	}
}

func TestFlagValidation(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-integrator", "warp"}, &out, &errb, nil); code != 2 {
		t.Fatalf("bad integrator exited %d, want 2", code)
	}
	if code := run([]string{"unexpected"}, &out, &errb, nil); code != 2 {
		t.Fatalf("positional argument exited %d, want 2", code)
	}
	if code := run([]string{"-addr", "256.0.0.1:bad"}, &out, &errb, nil); code != 1 {
		t.Fatalf("unbindable address exited %d, want 1", code)
	}
	if code := run([]string{"-role", "overlord"}, &out, &errb, nil); code != 2 {
		t.Fatalf("unknown role exited %d, want 2", code)
	}
	if code := run([]string{"-role", "coordinator"}, &out, &errb, nil); code != 2 {
		t.Fatalf("coordinator without workers exited %d, want 2", code)
	}
	if code := run([]string{"-role", "worker", "-cluster-workers", "http://x"}, &out, &errb, nil); code != 2 {
		t.Fatalf("worker with -cluster-workers exited %d, want 2", code)
	}
	if code := run([]string{"-lease-ttl", "5s"}, &out, &errb, nil); code != 2 {
		t.Fatalf("-lease-ttl without coordinator role exited %d, want 2", code)
	}
}
