package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTraceCommand(t *testing.T) {
	addr := newTestDaemon(t)

	code, stdout, stderr := runCLI(t, "remote", "run", "fleet-diurnal", "-addr", addr, "-scale", "0.05")
	if code != 0 {
		t.Fatalf("remote run failed: %s", stderr)
	}
	_ = stdout

	code, stdout, stderr = runCLI(t, "remote", "jobs", "-addr", addr)
	if code != 0 {
		t.Fatalf("remote jobs failed: %s", stderr)
	}
	job := strings.Fields(stdout)[0]

	// Trace to stdout is the raw Chrome trace document.
	code, stdout, stderr = runCLI(t, "trace", job, "-addr", addr)
	if code != 0 {
		t.Fatalf("trace failed: %s", stderr)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Cat  string `json:"cat"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(stdout), &doc); err != nil {
		t.Fatalf("trace output is not JSON: %v\n%s", err, stdout)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	phases := map[string]bool{}
	for _, e := range doc.TraceEvents {
		if e.Cat == "lifecycle" {
			phases[e.Name] = true
		}
	}
	for _, want := range []string{"submit", "queue", "run", "finalize", "done"} {
		if !phases[want] {
			t.Errorf("trace missing lifecycle phase %q (have %v)", want, phases)
		}
	}

	// -out writes the same document to a file and reports the byte count.
	out := filepath.Join(t.TempDir(), "trace.json")
	code, stdout, stderr = runCLI(t, "trace", job, "-addr", addr, "-out", out)
	if code != 0 {
		t.Fatalf("trace -out failed: %s", stderr)
	}
	if !strings.Contains(stdout, job) || !strings.Contains(stdout, "bytes") {
		t.Fatalf("trace -out did not report the written file:\n%s", stdout)
	}
	if b, err := os.ReadFile(out); err != nil || len(b) == 0 {
		t.Fatalf("trace -out wrote nothing: %v", err)
	}

	// Unknown jobs are an error, not an empty trace.
	if code, _, stderr := runCLI(t, "trace", "no-such-job", "-addr", addr); code == 0 {
		t.Fatal("trace of unknown job exited zero")
	} else if stderr == "" {
		t.Fatal("trace of unknown job printed no error")
	}

	// Bare trace is a usage error.
	if code, _, _ := runCLI(t, "trace"); code != 2 {
		t.Fatalf("bare trace exited %d, want 2", code)
	}
}

func TestTopOnce(t *testing.T) {
	addr := newTestDaemon(t)

	code, stdout, stderr := runCLI(t, "top", "-once", "-addr", addr)
	if code != 0 {
		t.Fatalf("top -once failed: %s", stderr)
	}
	if !strings.Contains(stdout, "dimd fleet heat") {
		t.Fatalf("top frame missing header:\n%s", stdout)
	}
}

func TestHeatRowDownsamplesKeepingMax(t *testing.T) {
	cells := make([]float64, 512)
	for i := range cells {
		cells[i] = 20
	}
	cells[100] = 90 // hottest cell must survive any downsample

	row := heatRow(cells, 64, 20, 90)
	if len(row) != 64 {
		t.Fatalf("row width %d, want 64", len(row))
	}
	// The hottest cell maps to the top of the ramp; every other column sits
	// at the bottom rung.
	hot := heatRamp[len(heatRamp)-1]
	if strings.Count(row, string(hot)) != 1 {
		t.Fatalf("downsample lost the hottest cell: %q", row)
	}
	if strings.ContainsRune(row, ' ') {
		t.Fatalf("live cells rendered blank: %q", row)
	}
}
