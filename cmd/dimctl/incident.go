// dimctl's incident-response commands. `snapshot` captures a daemon's
// content-hashed full-state document; `incident` lists, inspects, exports and
// replays flight-recorder dumps. `incident export` is the bridge from a live
// outage to an offline reproduction: it turns any snapshot (a stored
// incident's, or one taken on the spot) into per-job bundles — canonical
// spec, WAL-journaled resume token, and the daemon's own rendered artifacts —
// and `incident replay` re-runs a bundle locally and byte-verifies the result
// against what the daemon produced. Determinism is the contract under test:
// a replay that is not byte-identical is a finding, not a formatting nit.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/export"
	"repro/internal/fleetsched"
	"repro/internal/machine"
	"repro/internal/scenario"
	"repro/internal/service"
)

// bundleVersion is the incident-bundle schema version; replay refuses
// versions it does not know.
const bundleVersion = 1

// bundleMeta is bundle.json: everything replay needs to re-run the job and
// name the fleet state it came from.
type bundleMeta struct {
	Version      int     `json:"version"`
	SnapshotHash string  `json:"snapshot_hash"`
	Incident     string  `json:"incident,omitempty"`
	Reason       string  `json:"reason,omitempty"`
	Job          string  `json:"job"`
	Kind         string  `json:"kind"`
	Name         string  `json:"name,omitempty"`
	Policy       string  `json:"policy,omitempty"`
	Scale        float64 `json:"scale"`
	State        string  `json:"state"`
	Integrator   string  `json:"integrator,omitempty"`
	// Resumed counts the checkpoint's completed machines (scenario) or its
	// round barrier (sched), recorded so a human reading the bundle knows how
	// much of the run replays from the token versus recomputes.
	Resumed int `json:"resumed,omitempty"`
	// Expected reports whether the bundle carries the daemon's rendered
	// artifacts under expected/ — the byte-verification target.
	Expected bool `json:"expected"`
}

// snapshotCmd implements `dimctl snapshot [-addr URL] [-out FILE]`: capture
// the daemon's full-state document. Without -out a summary prints; with -out
// the full JSON document writes to FILE.
func snapshotCmd(args []string, stdout, stderr io.Writer) int {
	_, rest := splitFlags(args)
	trailing := flag.NewFlagSet("snapshot", flag.ContinueOnError)
	trailing.SetOutput(stderr)
	addr := trailing.String("addr", remoteAddrDefault(), "dimd base URL (or $DIMD_ADDR)")
	out := trailing.String("out", "", "write the full snapshot JSON to this file")
	if len(rest) > 0 {
		if err := trailing.Parse(rest); err != nil {
			return 2
		}
	}
	c := service.NewRetryClient(*addr, service.RetryPolicy{})
	snap, err := c.Snapshot()
	if err != nil {
		fmt.Fprintf(stderr, "dimctl: snapshot: %v\n", err)
		return 1
	}
	if *out != "" {
		raw, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "dimctl: snapshot: %v\n", err)
			return 1
		}
		if err := os.WriteFile(*out, append(raw, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "dimctl: snapshot: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "snapshot %s -> %s (%d job(s))\n", shortHash(snap.Hash), *out, len(snap.Jobs))
		return 0
	}
	printSnapshot(stdout, &snap)
	return 0
}

// printSnapshot renders the operator summary: identity line, daemon shape,
// then one row per job.
func printSnapshot(w io.Writer, snap *service.Snapshot) {
	fmt.Fprintf(w, "snapshot %s  v%d  %s\n", shortHash(snap.Hash), snap.Version, snap.TakenAt.Format("2006-01-02 15:04:05"))
	mode := "single-node"
	if snap.Cluster != nil {
		mode = fmt.Sprintf("coordinator (%d worker(s))", len(snap.Daemon.ClusterWorkers))
	}
	durable := "in-memory"
	if snap.Daemon.Durable {
		durable = "durable"
	}
	fmt.Fprintf(w, "daemon: %s, %s, %d worker(s), queue %d/%d, %d flight record(s)\n",
		mode, durable, snap.Daemon.Workers, snap.QueueDepth, snap.Daemon.QueueCapacity, snap.FlightRecords)
	if snap.Journal != nil {
		fmt.Fprintf(w, "journal: %d append(s), %d bytes, %d fsync(s)\n",
			snap.Journal.Appends, snap.Journal.Bytes, snap.Journal.Fsyncs)
	}
	for _, j := range snap.Jobs {
		extra := ""
		if j.Checkpoint != nil {
			switch {
			case j.Checkpoint.Sched != nil:
				extra = fmt.Sprintf("  ckpt round %d", j.Checkpoint.Sched.Round)
			default:
				extra = fmt.Sprintf("  ckpt %d machine(s)", len(j.Checkpoint.Machines))
			}
		}
		if j.Degraded {
			extra += "  degraded"
		}
		fmt.Fprintf(w, "  %-10s %-13s %-9s %s%s\n", j.ID, j.Kind, j.State, j.Name, extra)
	}
}

// incidentCmd implements `dimctl incident list|show|export|replay`.
func incidentCmd(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, "dimctl: incident requires a subcommand: list, show, export or replay")
		return 2
	}
	names, rest := splitFlags(args[1:])
	trailing := flag.NewFlagSet("incident", flag.ContinueOnError)
	trailing.SetOutput(stderr)
	addr := trailing.String("addr", remoteAddrDefault(), "dimd base URL (or $DIMD_ADDR)")
	out := trailing.String("out", "incidents", "bundle directory for `incident export`")
	jobFilter := trailing.String("job", "", "export only this job's bundle")
	if len(rest) > 0 {
		if err := trailing.Parse(rest); err != nil {
			return 2
		}
	}
	c := service.NewRetryClient(*addr, service.RetryPolicy{})
	switch args[0] {
	case "list":
		sums, err := c.Incidents()
		if err != nil {
			fmt.Fprintf(stderr, "dimctl: incident list: %v\n", err)
			return 1
		}
		if len(sums) == 0 {
			fmt.Fprintln(stdout, "no incidents recorded")
			return 0
		}
		for _, s := range sums {
			fmt.Fprintf(stdout, "%-12s %s  %-14s %-10s %4d rec  %s\n",
				s.ID, s.At.Format("15:04:05"), s.Reason, s.Job, s.Records, shortHash(s.SnapshotHash))
		}
		return 0
	case "show":
		if len(names) != 1 {
			fmt.Fprintln(stderr, "dimctl: incident show takes exactly one incident ID")
			return 2
		}
		inc, err := c.Incident(names[0])
		if err != nil {
			fmt.Fprintf(stderr, "dimctl: incident show: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "%s  %s  reason=%s job=%s\n%s\n",
			inc.ID, inc.At.Format("2006-01-02 15:04:05"), inc.Reason, inc.Job, inc.Detail)
		for _, r := range inc.Records {
			fmt.Fprintf(stdout, "  %-9s %-10s %-28s %g\n", r.Kind, r.Job, r.Name, r.Value)
		}
		if inc.Snapshot != nil {
			fmt.Fprintln(stdout)
			printSnapshot(stdout, inc.Snapshot)
		}
		return 0
	case "export":
		if len(names) != 1 {
			fmt.Fprintln(stderr, "dimctl: incident export takes one incident ID (or \"-\" for a live snapshot)")
			return 2
		}
		return exportBundles(c, names[0], *out, *jobFilter, stdout, stderr)
	case "replay":
		if len(names) == 0 {
			fmt.Fprintln(stderr, "dimctl: incident replay requires bundle directories")
			return 2
		}
		for _, dir := range names {
			if code := replayBundle(dir, stdout, stderr); code != 0 {
				return code
			}
		}
		return 0
	default:
		fmt.Fprintf(stderr, "dimctl: unknown incident subcommand %q (list, show, export, replay)\n", args[0])
		return 2
	}
}

// exportBundles turns a snapshot into per-job replay bundles. id "-" takes a
// live snapshot from the daemon; anything else names a stored incident. Each
// replayable job (it has a canonical spec) writes
// <out>/<job-id>/{bundle.json,spec.json,resume.json,expected/...}; the
// expected artifacts are fetched from the daemon for done jobs so replay has
// a byte-verification target.
func exportBundles(c *service.Client, id, out, jobFilter string, stdout, stderr io.Writer) int {
	var (
		snap     *service.Snapshot
		incident *service.Incident
	)
	if id == "-" {
		s, err := c.Snapshot()
		if err != nil {
			fmt.Fprintf(stderr, "dimctl: incident export: %v\n", err)
			return 1
		}
		snap = &s
	} else {
		inc, err := c.Incident(id)
		if err != nil {
			fmt.Fprintf(stderr, "dimctl: incident export: %v\n", err)
			return 1
		}
		if inc.Snapshot == nil {
			fmt.Fprintf(stderr, "dimctl: incident export: %s carries no snapshot\n", id)
			return 1
		}
		incident, snap = &inc, inc.Snapshot
	}
	if snap.Version != service.SnapshotVersion {
		fmt.Fprintf(stderr, "dimctl: incident export: snapshot version %d, this dimctl speaks %d\n",
			snap.Version, service.SnapshotVersion)
		return 1
	}
	exported := 0
	for _, j := range snap.Jobs {
		if jobFilter != "" && j.ID != jobFilter {
			continue
		}
		if len(j.Spec) == 0 {
			if jobFilter != "" {
				fmt.Fprintf(stderr, "dimctl: incident export: job %s (%s) has no canonical spec to bundle\n", j.ID, j.Kind)
				return 1
			}
			continue
		}
		dir := filepath.Join(out, j.ID)
		if err := writeBundle(c, dir, incident, snap, j); err != nil {
			fmt.Fprintf(stderr, "dimctl: incident export: %s: %v\n", j.ID, err)
			return 1
		}
		fmt.Fprintf(stdout, "%-10s %-13s %-9s -> %s\n", j.ID, j.Kind, j.State, dir)
		exported++
	}
	if exported == 0 {
		fmt.Fprintf(stderr, "dimctl: incident export: no replayable jobs in snapshot %s\n", shortHash(snap.Hash))
		return 1
	}
	fmt.Fprintf(stdout, "exported %d bundle(s) from snapshot %s\n", exported, shortHash(snap.Hash))
	return 0
}

// writeBundle writes one job's bundle directory.
func writeBundle(c *service.Client, dir string, incident *service.Incident, snap *service.Snapshot, j service.JobSnapshot) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	meta := bundleMeta{
		Version:      bundleVersion,
		SnapshotHash: snap.Hash,
		Job:          j.ID,
		Kind:         j.Kind,
		Name:         j.Name,
		Policy:       j.Policy,
		Scale:        j.Scale,
		State:        j.State,
		Integrator:   snap.Daemon.Integrator,
	}
	if incident != nil {
		meta.Incident = incident.ID
		meta.Reason = incident.Reason
	}
	if j.Checkpoint != nil {
		if j.Checkpoint.Sched != nil {
			meta.Resumed = j.Checkpoint.Sched.Round
		} else {
			meta.Resumed = len(j.Checkpoint.Machines)
		}
		raw, err := json.MarshalIndent(j.Checkpoint, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, "resume.json"), append(raw, '\n'), 0o644); err != nil {
			return err
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "spec.json"), append(bytes.TrimRight(j.Spec, "\n"), '\n'), 0o644); err != nil {
		return err
	}
	// The verification target: the daemon's own rendered artifacts. Only done
	// jobs have them; a daemon that already evicted the job's output (or an
	// offline analysis of a mirrored incident file) degrades to an unverified
	// bundle rather than failing the export.
	if j.State == "done" && c != nil {
		if err := fetchExpected(c, dir, j.ID); err == nil {
			meta.Expected = true
		}
	}
	raw, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "bundle.json"), append(raw, '\n'), 0o644)
}

// fetchExpected pulls the daemon's rendered report and artifact files into
// <dir>/expected/.
func fetchExpected(c *service.Client, dir, jobID string) error {
	exp := filepath.Join(dir, "expected")
	if err := os.MkdirAll(exp, 0o755); err != nil {
		return err
	}
	rendered, err := c.Output(jobID)
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(exp, "output.txt"), []byte(rendered), 0o644); err != nil {
		return err
	}
	names, err := c.Files(jobID)
	if err != nil {
		return err
	}
	for _, name := range names {
		data, err := c.File(jobID, name)
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(exp, filepath.Base(name)), data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// replayBundle re-runs one exported bundle locally and byte-verifies the
// result against the expected/ artifacts. The checkpoint resumes exactly as
// daemon recovery would: scenario machines already in the token are not
// re-simulated, sched runs replay-verify through the round barrier. Exit is
// non-zero on any divergence — the determinism contract makes "close" wrong.
func replayBundle(dir string, stdout, stderr io.Writer) int {
	fail := func(err error) int {
		fmt.Fprintf(stderr, "dimctl: incident replay %s: %v\n", dir, err)
		return 1
	}
	raw, err := os.ReadFile(filepath.Join(dir, "bundle.json"))
	if err != nil {
		return fail(err)
	}
	var meta bundleMeta
	if err := json.Unmarshal(raw, &meta); err != nil {
		return fail(fmt.Errorf("decoding bundle.json: %w", err))
	}
	if meta.Version != bundleVersion {
		return fail(fmt.Errorf("bundle version %d, this dimctl speaks %d", meta.Version, bundleVersion))
	}
	// The integrator is part of the determinism contract: a bundle produced
	// under one integrator cannot be byte-verified under another. The bundle's
	// choice wins; an explicit conflicting -integrator is refused, not
	// silently overridden.
	if cur := machine.IntegratorOverride(); cur != "" && meta.Integrator != "" && cur != meta.Integrator {
		return fail(fmt.Errorf("bundle was recorded under integrator %q but -integrator forces %q; replay under the bundle's integrator", meta.Integrator, cur))
	}
	if meta.Integrator != "" {
		if err := machine.SetIntegratorOverride(meta.Integrator); err != nil {
			return fail(err)
		}
	}
	specRaw, err := os.ReadFile(filepath.Join(dir, "spec.json"))
	if err != nil {
		return fail(err)
	}
	spec, err := scenario.Decode(specRaw)
	if err != nil {
		return fail(fmt.Errorf("decoding spec.json: %w", err))
	}
	var cp service.JobCheckpoint
	if raw, err := os.ReadFile(filepath.Join(dir, "resume.json")); err == nil {
		if err := json.Unmarshal(raw, &cp); err != nil {
			return fail(fmt.Errorf("decoding resume.json: %w", err))
		}
	}

	var (
		rendered string
		files    []export.File
	)
	switch meta.Kind {
	case service.KindScenario:
		res, err := scenario.RunOpts(spec, meta.Scale, scenario.RunOptions{Completed: cp.Machines})
		if err != nil {
			return fail(err)
		}
		rendered, files = res.String(), scenario.RenderResult(res)
	case service.KindSched:
		res, err := fleetsched.RunOpts(spec, meta.Policy, meta.Scale, fleetsched.Options{Resume: cp.Sched})
		if err != nil {
			return fail(err)
		}
		if files, err = fleetsched.RenderResult(res); err != nil {
			return fail(err)
		}
		rendered = res.String()
	case service.KindSchedCompare:
		c, err := fleetsched.Compare(spec, meta.Scale)
		if err != nil {
			return fail(err)
		}
		perRun, err := fleetsched.RenderResult(c.DefaultResult())
		if err != nil {
			return fail(err)
		}
		cmpFiles, err := fleetsched.RenderComparison(c)
		if err != nil {
			return fail(err)
		}
		rendered, files = c.String(), append(perRun, cmpFiles...)
	default:
		return fail(fmt.Errorf("kind %q is not replayable from a bundle (experiments re-run by ID: dimctl run %s)", meta.Kind, meta.Name))
	}

	resumeNote := ""
	if meta.Resumed > 0 {
		if meta.Kind == service.KindSched {
			resumeNote = fmt.Sprintf(", resumed from round %d", meta.Resumed)
		} else {
			resumeNote = fmt.Sprintf(", %d machine(s) from checkpoint", meta.Resumed)
		}
	}
	if !meta.Expected {
		fmt.Fprintf(stdout, "%s: replayed %s (%s%s); bundle carries no expected artifacts to verify\n",
			dir, meta.Job, meta.Kind, resumeNote)
		fmt.Fprint(stdout, rendered)
		return 0
	}
	if code := verifyReplay(dir, rendered, files, stderr); code != 0 {
		return code
	}
	fmt.Fprintf(stdout, "%s: replay byte-identical to snapshot %s (%s%s, %d file(s))\n",
		dir, shortHash(meta.SnapshotHash), meta.Kind, resumeNote, len(files))
	return 0
}

// verifyReplay byte-compares the replay's rendered report and files against
// the bundle's expected/ directory, both directions: a produced file missing
// from expected/ (or the reverse) is a divergence like any content mismatch.
func verifyReplay(dir, rendered string, files []export.File, stderr io.Writer) int {
	exp := filepath.Join(dir, "expected")
	divergent := func(name string) int {
		fmt.Fprintf(stderr, "dimctl: incident replay %s: DIVERGED on %s — replay is not byte-identical to the original run\n", dir, name)
		return 1
	}
	want, err := os.ReadFile(filepath.Join(exp, "output.txt"))
	if err != nil {
		fmt.Fprintf(stderr, "dimctl: incident replay %s: %v\n", dir, err)
		return 1
	}
	if !bytes.Equal(want, []byte(rendered)) {
		return divergent("output.txt")
	}
	produced := make(map[string]string, len(files))
	for _, f := range files {
		produced[filepath.Base(f.Name)] = f.Content
	}
	entries, err := os.ReadDir(exp)
	if err != nil {
		fmt.Fprintf(stderr, "dimctl: incident replay %s: %v\n", dir, err)
		return 1
	}
	seen := map[string]bool{}
	for _, e := range entries {
		if e.Name() == "output.txt" {
			continue
		}
		want, err := os.ReadFile(filepath.Join(exp, e.Name()))
		if err != nil {
			fmt.Fprintf(stderr, "dimctl: incident replay %s: %v\n", dir, err)
			return 1
		}
		got, ok := produced[e.Name()]
		if !ok || !bytes.Equal(want, []byte(got)) {
			return divergent(e.Name())
		}
		seen[e.Name()] = true
	}
	var missing []string
	for name := range produced {
		if !seen[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return divergent(strings.Join(missing, ", ") + " (replay produced files the bundle lacks)")
	}
	return 0
}

// shortHash abbreviates a snapshot hash for display.
func shortHash(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}
