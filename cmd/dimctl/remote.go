// dimctl's remote client mode: every experiment, scenario and sched
// shootout the CLI runs locally can instead be submitted to a dimd daemon.
// Rendered reports and exported CSVs are byte-identical to the local path —
// the daemon runs the same engines and the same renderers.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/service"
)

// defaultAddr is dimd's default endpoint; override with -addr or DIMD_ADDR.
const defaultAddr = "http://127.0.0.1:8080"

// remoteCmd implements the `dimctl remote` subcommands:
//
//	dimctl remote [-addr URL] run <name>... [-policy P] [-spec FILE]
//	dimctl remote [-addr URL] submit <name>... [-policy P] [-spec FILE]
//	dimctl remote [-addr URL] status <job-id>...
//	dimctl remote [-addr URL] stream <job-id|name>
//	dimctl remote [-addr URL] export <name>... [-out DIR]
//	dimctl remote [-addr URL] jobs | cancel <job-id> | metrics | cluster
func remoteCmd(args []string, scale float64, outDir string, stdout, stderr io.Writer) int {
	// Flags may appear anywhere — `remote -addr URL run X` and
	// `remote run X -addr URL` both work, matching the usage text.
	names, rest := splitFlags(args)
	if len(names) == 0 {
		fmt.Fprintln(stderr, "dimctl: remote requires a subcommand: run, submit, status, stream, export, jobs, cancel, metrics or cluster")
		return 2
	}
	sub := names[0]
	names = names[1:]
	trailing := flag.NewFlagSet("remote", flag.ContinueOnError)
	trailing.SetOutput(stderr)
	addrDefault := os.Getenv("DIMD_ADDR")
	if addrDefault == "" {
		addrDefault = defaultAddr
	}
	addr := trailing.String("addr", addrDefault, "dimd base URL (or $DIMD_ADDR)")
	trailingScale := trailing.Float64("scale", scale, "experiment scale")
	trailingOut := trailing.String("out", outDir, "output directory for export")
	policy := trailing.String("policy", "", "placement policy for scheduled scenarios")
	specFile := trailing.String("spec", "", "submit an inline scenario spec from this JSON file")
	retries := trailing.Int("retries", 5, "attempts per call under transient failures (429, restarts, drops); 1 disables")
	retryBase := trailing.Duration("retry-base", 200*time.Millisecond, "first retry backoff step (doubles per attempt, jittered)")
	retryMax := trailing.Duration("retry-max", 5*time.Second, "retry backoff cap")
	if len(rest) > 0 {
		if err := trailing.Parse(rest); err != nil {
			return 2
		}
	}
	scale = *trailingScale
	outDir = *trailingOut
	c := service.NewRetryClient(*addr, service.RetryPolicy{
		MaxAttempts: *retries,
		BaseDelay:   *retryBase,
		MaxDelay:    *retryMax,
	})

	submitTargets := func() ([]service.JobView, int) {
		var reqs []service.Request
		// Idempotent: a retried submission attaches to the job the lost
		// response created instead of forking a duplicate run.
		if *specFile != "" {
			raw, err := os.ReadFile(*specFile)
			if err != nil {
				fmt.Fprintf(stderr, "dimctl: %v\n", err)
				return nil, 1
			}
			reqs = append(reqs, service.Request{Spec: raw, Policy: *policy, Scale: scale, Idempotent: true})
		}
		for _, name := range names {
			reqs = append(reqs, service.Request{Name: name, Policy: *policy, Scale: scale, Idempotent: true})
		}
		if len(reqs) == 0 {
			fmt.Fprintf(stderr, "dimctl: remote %s requires names or -spec FILE\n", sub)
			return nil, 2
		}
		var views []service.JobView
		for _, req := range reqs {
			v, err := c.Submit(req)
			if err != nil {
				fmt.Fprintf(stderr, "dimctl: remote submit: %v\n", err)
				if service.IsBusy(err) {
					fmt.Fprintln(stderr, "dimctl: daemon is at capacity; retry shortly")
				}
				return nil, 1
			}
			views = append(views, v)
		}
		return views, 0
	}

	switch sub {
	case "run":
		views, code := submitTargets()
		if code != 0 {
			return code
		}
		for _, v := range views {
			start := time.Now()
			final, err := c.Wait(context.Background(), v.ID)
			if err != nil {
				fmt.Fprintf(stderr, "dimctl: remote run %s: %v\n", v.Name, err)
				return 1
			}
			if final.State != service.StateDone {
				fmt.Fprintf(stderr, "dimctl: remote run %s: job %s %s: %s\n", v.Name, final.ID, final.State, final.Error)
				return 1
			}
			warnDegraded(stderr, "run", final)
			out, err := c.Output(v.ID)
			if err != nil {
				fmt.Fprintf(stderr, "dimctl: remote run %s: %v\n", v.Name, err)
				return 1
			}
			fmt.Fprintf(stdout, "==== %s %s ====\n%s", remoteBanner(final), final.Name, out)
			fmt.Fprintf(stdout, "---- %s done in %v (job %s%s) ----\n\n",
				final.Name, time.Since(start).Round(time.Millisecond), final.ID, cacheTag(final))
		}
		return 0
	case "submit":
		views, code := submitTargets()
		if code != 0 {
			return code
		}
		for _, v := range views {
			fmt.Fprintf(stdout, "%s  %-10s %s%s\n", v.ID, v.State, v.Name, cacheTag(v))
		}
		return 0
	case "status":
		if len(names) == 0 {
			fmt.Fprintln(stderr, "dimctl: remote status requires job IDs")
			return 2
		}
		for _, id := range names {
			v, err := c.Job(id)
			if err != nil {
				fmt.Fprintf(stderr, "dimctl: remote status %s: %v\n", id, err)
				return 1
			}
			printJobJSON(stdout, v)
		}
		return 0
	case "stream":
		var id string
		switch {
		case len(names) == 1 && strings.HasPrefix(names[0], "job-"):
			id = names[0]
		default:
			// Validate the one-target constraint before submitting, so a
			// misspelled invocation never leaves orphaned jobs running on
			// the daemon.
			targets := len(names)
			if *specFile != "" {
				targets++
			}
			if targets != 1 {
				fmt.Fprintln(stderr, "dimctl: remote stream follows exactly one job (one name or -spec FILE)")
				return 2
			}
			views, code := submitTargets()
			if code != 0 {
				return code
			}
			id = views[0].ID
			fmt.Fprintf(stderr, "dimctl: streaming %s (%s)\n", id, views[0].Name)
		}
		enc := json.NewEncoder(stdout)
		err := c.Stream(context.Background(), id, func(e service.Event) error {
			return enc.Encode(e)
		})
		if err != nil {
			fmt.Fprintf(stderr, "dimctl: remote stream %s: %v\n", id, err)
			return 1
		}
		return 0
	case "export":
		views, code := submitTargets()
		if code != 0 {
			return code
		}
		for _, v := range views {
			start := time.Now()
			final, err := c.Wait(context.Background(), v.ID)
			if err != nil {
				fmt.Fprintf(stderr, "dimctl: remote export %s: %v\n", v.Name, err)
				return 1
			}
			if final.State != service.StateDone {
				fmt.Fprintf(stderr, "dimctl: remote export %s: job %s %s: %s\n", v.Name, final.ID, final.State, final.Error)
				return 1
			}
			warnDegraded(stderr, "export", final)
			if err := os.MkdirAll(outDir, 0o755); err != nil {
				fmt.Fprintf(stderr, "dimctl: remote export: %v\n", err)
				return 1
			}
			var paths []string
			for _, name := range final.Files {
				// Artefact names come from the daemon; never let one climb
				// out of -out.
				if name != filepath.Base(name) || name == "." || name == ".." {
					fmt.Fprintf(stderr, "dimctl: remote export: daemon sent unsafe file name %q\n", name)
					return 1
				}
				data, err := c.File(final.ID, name)
				if err != nil {
					fmt.Fprintf(stderr, "dimctl: remote export %s: %v\n", name, err)
					return 1
				}
				p := filepath.Join(outDir, name)
				if err := os.WriteFile(p, data, 0o644); err != nil {
					fmt.Fprintf(stderr, "dimctl: remote export: %v\n", err)
					return 1
				}
				paths = append(paths, p)
			}
			printPaths(stdout, final.Name, paths, start)
		}
		return 0
	case "jobs":
		views, err := c.Jobs()
		if err != nil {
			fmt.Fprintf(stderr, "dimctl: remote jobs: %v\n", err)
			return 1
		}
		for _, v := range views {
			fmt.Fprintf(stdout, "%s  %-10s %-14s %s%s\n", v.ID, v.State, v.Kind, v.Name, cacheTag(v))
		}
		return 0
	case "cancel":
		if len(names) == 0 {
			fmt.Fprintln(stderr, "dimctl: remote cancel requires job IDs")
			return 2
		}
		for _, id := range names {
			v, err := c.Cancel(id)
			if err != nil {
				fmt.Fprintf(stderr, "dimctl: remote cancel %s: %v\n", id, err)
				return 1
			}
			state := v.State
			if v.CancelRequested {
				state = "canceling"
			}
			fmt.Fprintf(stdout, "%s  %s\n", v.ID, state)
		}
		return 0
	case "metrics":
		text, err := c.Metrics()
		if err != nil {
			fmt.Fprintf(stderr, "dimctl: remote metrics: %v\n", err)
			return 1
		}
		fmt.Fprint(stdout, text)
		return 0
	case "cluster":
		st, err := c.ClusterStatus()
		if err != nil {
			fmt.Fprintf(stderr, "dimctl: remote cluster: %v\n", err)
			return 1
		}
		if !st.Enabled {
			fmt.Fprintln(stdout, "cluster: disabled (single-node daemon)")
			return 0
		}
		fmt.Fprintf(stdout, "cluster: %d/%d workers healthy\n", st.Healthy, st.Workers)
		for _, w := range st.Detail {
			state := "healthy"
			if !w.Healthy {
				state = "UNHEALTHY"
			}
			fmt.Fprintf(stdout, "  %-32s %-9s breaker=%-6s misses=%d inflight=%d done=%d errors=%d\n",
				w.URL, state, w.Breaker, w.ConsecutiveMisses, w.InFlightShards, w.ShardsDone, w.ShardErrors)
		}
		return 0
	default:
		fmt.Fprintf(stderr, "dimctl: unknown remote subcommand %q (run, submit, status, stream, export, jobs, cancel, metrics, cluster)\n", sub)
		return 2
	}
}

// warnDegraded surfaces a clustered job that completed in degraded mode. The
// bytes downloaded are still byte-identical to a healthy run — which is
// exactly why the condition must be called out rather than inferred from the
// output: without this line a degraded cluster is invisible to the operator.
func warnDegraded(stderr io.Writer, verb string, v service.JobView) {
	if !v.Degraded {
		return
	}
	fmt.Fprintf(stderr, "dimctl: remote %s %s: job %s completed DEGRADED: shard(s) ran on the coordinator because no healthy worker was available; results are byte-correct but the cluster needs attention (check `dimctl remote cluster`)\n",
		verb, v.Name, v.ID)
}

// remoteBanner mirrors the local banners: "scenario" / "sched" prefixes for
// engine runs, the bare ID for experiments.
func remoteBanner(v service.JobView) string {
	switch v.Kind {
	case service.KindScenario:
		return "scenario"
	case service.KindSched, service.KindSchedCompare:
		return "sched"
	default:
		return "experiment"
	}
}

func cacheTag(v service.JobView) string {
	if v.CacheHit {
		return " [cached]"
	}
	return ""
}

func printJobJSON(w io.Writer, v service.JobView) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
