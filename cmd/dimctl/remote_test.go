package main

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	dimetrodon "repro"
)

// newTestDaemon boots an in-process dimd core behind httptest and returns
// its base URL.
func newTestDaemon(t *testing.T) string {
	t.Helper()
	svc := dimetrodon.NewService(dimetrodon.ServiceConfig{Workers: 2, DefaultScale: 0.05})
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = svc.Shutdown(ctx)
		srv.Close()
	})
	return srv.URL
}

func TestRemoteRunMatchesLocalScenarioRun(t *testing.T) {
	addr := newTestDaemon(t)

	lcode, localOut, lerr := runCLI(t, "-scale", "0.05", "scenario", "run", "fleet-diurnal")
	if lcode != 0 {
		t.Fatalf("local run failed: %s", lerr)
	}
	rcode, remoteOut, rerr := runCLI(t, "remote", "run", "fleet-diurnal", "-addr", addr, "-scale", "0.05")
	if rcode != 0 {
		t.Fatalf("remote run failed: %s", rerr)
	}
	// The rendered body between the banner and footer lines must be
	// byte-identical; the frames carry wall-clock timings and job IDs.
	if body(t, localOut) != body(t, remoteOut) {
		t.Fatalf("remote body differs from local:\n--- local ---\n%s\n--- remote ---\n%s", localOut, remoteOut)
	}
}

// body strips the ==== banner and ---- footer frames.
func body(t *testing.T, out string) string {
	t.Helper()
	var keep []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "====") || strings.HasPrefix(line, "----") {
			continue
		}
		keep = append(keep, line)
	}
	return strings.Join(keep, "\n")
}

func TestRemoteExportMatchesLocalExport(t *testing.T) {
	addr := newTestDaemon(t)
	localDir := t.TempDir()
	remoteDir := t.TempDir()

	lcode, _, lerr := runCLI(t, "-scale", "0.05", "-out", localDir, "scenario", "export", "sched-shootout")
	if lcode != 0 {
		t.Fatalf("local export failed: %s", lerr)
	}
	rcode, stdout, rerr := runCLI(t, "remote", "export", "sched-shootout", "-addr", addr, "-scale", "0.05", "-out", remoteDir)
	if rcode != 0 {
		t.Fatalf("remote export failed: %s", rerr)
	}
	if !strings.Contains(stdout, "sched_shootout") {
		t.Fatalf("remote export listed no artefacts:\n%s", stdout)
	}
	locals, err := filepath.Glob(filepath.Join(localDir, "*"))
	if err != nil || len(locals) == 0 {
		t.Fatalf("local export produced nothing: %v", err)
	}
	for _, lp := range locals {
		rp := filepath.Join(remoteDir, filepath.Base(lp))
		lb, err := os.ReadFile(lp)
		if err != nil {
			t.Fatalf("read %s: %v", lp, err)
		}
		rb, err := os.ReadFile(rp)
		if err != nil {
			t.Fatalf("remote export missing %s: %v", filepath.Base(lp), err)
		}
		if string(lb) != string(rb) {
			t.Fatalf("remote artefact %s differs from local export", filepath.Base(lp))
		}
	}
}

func TestRemoteStreamAndJobs(t *testing.T) {
	addr := newTestDaemon(t)

	code, stdout, stderr := runCLI(t, "remote", "stream", "sched-shootout", "-addr", addr, "-scale", "0.05")
	if code != 0 {
		t.Fatalf("remote stream failed: %s", stderr)
	}
	if !strings.Contains(stdout, `"type":"round"`) || !strings.Contains(stdout, `"type":"done"`) {
		t.Fatalf("stream output missing round/done events:\n%s", stdout)
	}

	// Flags are accepted before the subcommand too, as the usage documents.
	code, stdout, stderr = runCLI(t, "remote", "-addr", addr, "jobs")
	if code != 0 {
		t.Fatalf("remote jobs failed: %s", stderr)
	}
	if !strings.Contains(stdout, "sched-shootout") || !strings.Contains(stdout, "done") {
		t.Fatalf("jobs listing incomplete:\n%s", stdout)
	}

	code, stdout, stderr = runCLI(t, "remote", "metrics", "-addr", addr)
	if code != 0 {
		t.Fatalf("remote metrics failed: %s", stderr)
	}
	if !strings.Contains(stdout, "dimd_jobs_completed_total 1") {
		t.Fatalf("metrics missing completion count:\n%s", stdout)
	}
}

func TestRemoteErrors(t *testing.T) {
	addr := newTestDaemon(t)
	if code, _, stderr := runCLI(t, "remote", "run", "no-such-thing", "-addr", addr); code == 0 {
		t.Fatal("unknown remote target exited zero")
	} else if !strings.Contains(stderr, "no-such-thing") {
		t.Fatalf("stderr does not name the unknown target: %s", stderr)
	}
	if code, _, _ := runCLI(t, "remote"); code != 2 {
		t.Fatalf("bare remote exited %d, want 2", code)
	}
	if code, _, _ := runCLI(t, "remote", "status"); code != 2 {
		t.Fatalf("remote status without IDs exited %d, want 2", code)
	}
}

// newDegradedCoordinator boots a coordinator whose static worker set was
// never alive: every clustered scenario job degrades to local execution.
func newDegradedCoordinator(t *testing.T) string {
	t.Helper()
	cfg := dimetrodon.ServiceConfig{Workers: 2, DefaultScale: 0.05}
	cfg.Cluster.Workers = []string{"http://127.0.0.1:1", "http://127.0.0.1:2"}
	cfg.Cluster.LeaseTTL = 300 * time.Millisecond
	cfg.Cluster.HeartbeatEvery = 50 * time.Millisecond
	svc := dimetrodon.NewService(cfg)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = svc.Shutdown(ctx)
		srv.Close()
	})
	return srv.URL
}

// TestRemoteClusterStatus: `remote cluster` reports single-node daemons as
// disabled and coordinators with their worker fleet detail.
func TestRemoteClusterStatus(t *testing.T) {
	addr := newTestDaemon(t)
	code, stdout, stderr := runCLI(t, "remote", "cluster", "-addr", addr)
	if code != 0 {
		t.Fatalf("remote cluster against single-node daemon failed: %s", stderr)
	}
	if !strings.Contains(stdout, "disabled") {
		t.Fatalf("single-node cluster status not reported disabled:\n%s", stdout)
	}

	coord := newDegradedCoordinator(t)
	code, stdout, stderr = runCLI(t, "remote", "cluster", "-addr", coord)
	if code != 0 {
		t.Fatalf("remote cluster against coordinator failed: %s", stderr)
	}
	if !strings.Contains(stdout, "workers healthy") || !strings.Contains(stdout, "http://127.0.0.1:1") {
		t.Fatalf("coordinator cluster status missing fleet detail:\n%s", stdout)
	}
}

// TestRemoteRunWarnsDegraded pins the satellite bugfix: a clustered job that
// completed degraded produces byte-correct output, so without an explicit
// warning the operator cannot tell capacity silently collapsed. The run must
// succeed AND name the degradation on stderr, pointing at `remote cluster`.
func TestRemoteRunWarnsDegraded(t *testing.T) {
	coord := newDegradedCoordinator(t)

	code, stdout, stderr := runCLI(t, "remote", "run", "fleet-diurnal", "-addr", coord, "-scale", "0.05")
	if code != 0 {
		t.Fatalf("degraded remote run failed (results are correct, it must succeed): %s", stderr)
	}
	if !strings.Contains(stdout, "fleet-diurnal") {
		t.Fatalf("degraded run produced no report:\n%s", stdout)
	}
	if !strings.Contains(stderr, "DEGRADED") || !strings.Contains(stderr, "dimctl remote cluster") {
		t.Fatalf("degraded run did not warn distinctly on stderr: %q", stderr)
	}

	// Same distinct signal on the export path. A different scale forces a
	// fresh degraded run — a cache hit of the earlier artifact would not be
	// degraded (nothing dispatched), and must not warn.
	outDir := t.TempDir()
	code, _, stderr = runCLI(t, "remote", "export", "fleet-diurnal", "-addr", coord, "-scale", "0.04", "-out", outDir)
	if code != 0 {
		t.Fatalf("degraded remote export failed: %s", stderr)
	}
	if !strings.Contains(stderr, "DEGRADED") {
		t.Fatalf("degraded export did not warn on stderr: %q", stderr)
	}
}
