// Command dimctl runs the Dimetrodon reproduction's experiment harnesses,
// the fleet-scale scenario engine, and the thermal-aware fleet scheduler.
//
// Usage:
//
//	dimctl list                             list available experiments
//	dimctl run <id> [...]                   run experiments by ID (or "all")
//	dimctl -scale 0.25 run all              run everything at quarter scale
//	dimctl scenario list                    list fleet scenarios
//	dimctl scenario run <name>...           run fleet scenarios
//	dimctl scenario mega <name> -machines N tiled mega-fleet summary
//	dimctl sched policies                   list placement policies
//	dimctl sched compare -scenario <name>   sweep all placement policies
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	dimetrodon "repro"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, executes one command and
// returns the process exit code, writing only to the given streams.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dimctl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scale := fs.Float64("scale", 1.0, "experiment scale: 1.0 = paper-duration runs")
	jobs := fs.Int("jobs", 0, "parallel trial workers; 0 = GOMAXPROCS (output is identical at any setting)")
	integrator := fs.String("integrator", "", "thermal integrator override: exact (byte-identical) or leap (quiescence-leaping fast path); default: experiments exact, scenario/sched leap")
	outDir := fs.String("out", "results", "output directory for `export`")
	fs.Usage = func() { usage(fs, stderr) }
	if err := fs.Parse(args); err != nil {
		return 2
	}
	dimetrodon.SetJobs(*jobs)
	if err := dimetrodon.SetIntegrator(*integrator); err != nil {
		fmt.Fprintf(stderr, "dimctl: %v\n", err)
		return 2
	}
	rest := fs.Args()
	if len(rest) == 0 {
		usage(fs, stderr)
		return 2
	}
	switch rest[0] {
	case "bench":
		return benchCmd(rest[1:], stdout, stderr)
	case "remote":
		return remoteCmd(rest[1:], *scale, *outDir, stdout, stderr)
	case "trace":
		return traceCmd(rest[1:], stdout, stderr)
	case "top":
		return topCmd(rest[1:], stdout, stderr)
	case "snapshot":
		return snapshotCmd(rest[1:], stdout, stderr)
	case "incident":
		return incidentCmd(rest[1:], stdout, stderr)
	case "scenario":
		return scenarioCmd(rest[1:], dimetrodon.Scale(*scale), *outDir, stdout, stderr)
	case "sched":
		return schedCmd(rest[1:], dimetrodon.Scale(*scale), *outDir, stdout, stderr)
	case "list":
		for _, id := range dimetrodon.ExperimentIDs() {
			e := dimetrodon.Experiments[id]
			fmt.Fprintf(stdout, "%-18s %s\n", e.ID, e.Title)
			fmt.Fprintf(stdout, "%-18s   %s\n", "", e.Summary)
		}
		return 0
	case "run":
		targets := rest[1:]
		if len(targets) == 0 {
			fmt.Fprintln(stderr, "dimctl: run requires experiment IDs or \"all\"")
			return 2
		}
		if len(targets) == 1 && targets[0] == "all" {
			targets = dimetrodon.ExperimentIDs()
		}
		for _, id := range targets {
			e, ok := dimetrodon.Experiments[id]
			if !ok {
				unknownName(stderr, "experiment", id, dimetrodon.ExperimentIDs())
				return 2
			}
			fmt.Fprintf(stdout, "==== %s (%s) ====\n", e.ID, e.Title)
			start := time.Now()
			if err := e.Run(stdout, dimetrodon.Scale(*scale)); err != nil {
				fmt.Fprintf(stderr, "dimctl: %s failed: %v\n", id, err)
				return 1
			}
			fmt.Fprintf(stdout, "---- %s done in %v ----\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
		return 0
	case "export":
		targets := rest[1:]
		if len(targets) == 0 {
			fmt.Fprintln(stderr, "dimctl: export requires experiment IDs or \"all\"")
			return 2
		}
		if len(targets) == 1 && targets[0] == "all" {
			targets = dimetrodon.ExperimentIDs()
		}
		for _, id := range targets {
			if _, ok := dimetrodon.Experiments[id]; !ok {
				unknownName(stderr, "experiment", id, dimetrodon.ExperimentIDs())
				return 2
			}
			start := time.Now()
			paths, err := dimetrodon.Export(id, dimetrodon.Scale(*scale), *outDir)
			if err != nil {
				fmt.Fprintf(stderr, "dimctl: exporting %s: %v\n", id, err)
				return 1
			}
			printPaths(stdout, id, paths, start)
		}
		return 0
	default:
		usage(fs, stderr)
		return 2
	}
}

// benchCmd implements `dimctl bench [-iters N] [name...]`: run the kernel
// micro-benchmarks from the non-test registry in smoke mode. One iteration
// per micro (the default) is the bit-rot guard tier-1 tests also exercise;
// larger -iters give a quick wall-clock impression without the full
// scripts/bench.sh suite.
func benchCmd(args []string, stdout, stderr io.Writer) int {
	names, rest := splitFlags(args)
	trailing := flag.NewFlagSet("bench", flag.ContinueOnError)
	trailing.SetOutput(stderr)
	iters := trailing.Int("iters", 1, "iterations per micro-benchmark (1 = smoke)")
	if len(rest) > 0 {
		if err := trailing.Parse(rest); err != nil {
			return 2
		}
	}
	if *iters < 1 {
		fmt.Fprintln(stderr, "dimctl: bench -iters must be >= 1")
		return 2
	}
	micros := dimetrodon.MicroBenches()
	valid := make([]string, len(micros))
	byName := make(map[string]dimetrodon.MicroBench, len(micros))
	for i, m := range micros {
		valid[i] = m.Name
		byName[m.Name] = m
	}
	run := micros
	if len(names) > 0 {
		run = run[:0:0]
		for _, name := range names {
			m, ok := byName[name]
			if !ok {
				unknownName(stderr, "micro-benchmark", name, valid)
				return 2
			}
			run = append(run, m)
		}
	}
	for _, m := range run {
		d, err := dimetrodon.RunMicroBench(m, *iters)
		if err != nil {
			fmt.Fprintf(stderr, "dimctl: bench %s failed: %v\n", m.Name, err)
			return 1
		}
		fmt.Fprintf(stdout, "%-20s %4d iter(s) in %-12v %s\n", m.Name, *iters, d.Round(time.Microsecond), m.Doc)
	}
	return 0
}

// unknownName reports an unrecognised experiment/scenario/policy name and
// prints the valid set, so the caller can fix the invocation without a
// second round-trip through a list command.
func unknownName(w io.Writer, kind, name string, valid []string) {
	fmt.Fprintf(w, "dimctl: unknown %s %q; valid %ss:\n", kind, name, kind)
	for _, v := range valid {
		fmt.Fprintf(w, "  %s\n", v)
	}
}

func printPaths(w io.Writer, label string, paths []string, start time.Time) {
	fmt.Fprintf(w, "%-16s -> %d file(s) in %v\n", label, len(paths), time.Since(start).Round(time.Millisecond))
	for _, p := range paths {
		fmt.Fprintf(w, "  %s\n", p)
	}
}

// scenarioCmd implements `dimctl scenario list|run|export|mega`. Scenarios
// with a scheduler block route through the fleetsched cross-machine engine
// (their default placement policy); plain fleets use the independent
// per-machine path, or the batched shared-propagator engine under -batched.
// `mega` tiles the fleet out to -machines and prints the summary. Flags are
// also accepted after the scenario names.
func scenarioCmd(args []string, scale dimetrodon.Scale, outDir string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, "dimctl: scenario requires a subcommand: list, run, export or mega")
		return 2
	}
	names, rest := splitFlags(args[1:])
	trailing := flag.NewFlagSet("scenario", flag.ContinueOnError)
	trailing.SetOutput(stderr)
	trailingScale := trailing.Float64("scale", float64(scale), "experiment scale")
	trailingJobs := trailing.Int("jobs", 0, "parallel trial workers")
	trailingOut := trailing.String("out", outDir, "output directory for export")
	trailingInteg := trailing.String("integrator", "", "thermal integrator override (exact|leap)")
	trailingBatched := trailing.Bool("batched", false, "run plain fleets through the batched engine (shared propagators, SoA stepping); byte-identical output")
	trailingMachines := trailing.Int("machines", 1_000_000, "tiled fleet size for `scenario mega`")
	if len(rest) > 0 {
		if err := trailing.Parse(rest); err != nil {
			return 2
		}
		scale = dimetrodon.Scale(*trailingScale)
		outDir = *trailingOut
		if *trailingJobs != 0 {
			dimetrodon.SetJobs(*trailingJobs)
		}
		if *trailingInteg != "" {
			if err := dimetrodon.SetIntegrator(*trailingInteg); err != nil {
				fmt.Fprintf(stderr, "dimctl: %v\n", err)
				return 2
			}
		}
	}
	resolve := func() ([]string, int) {
		if len(names) == 0 {
			fmt.Fprintln(stderr, "dimctl: scenario "+args[0]+" requires scenario names or \"all\"")
			return nil, 2
		}
		if len(names) == 1 && names[0] == "all" {
			return dimetrodon.ScenarioNames(), 0
		}
		for _, name := range names {
			if _, ok := dimetrodon.LookupScenario(name); !ok {
				unknownName(stderr, "scenario", name, dimetrodon.ScenarioNames())
				return nil, 2
			}
		}
		return names, 0
	}
	switch args[0] {
	case "list":
		for _, name := range dimetrodon.ScenarioNames() {
			s, _ := dimetrodon.LookupScenario(name)
			tag := ""
			if s.Scheduler != nil {
				tag = " [sched]"
			}
			fmt.Fprintf(stdout, "%-18s %s%s\n", s.Name, s.Title, tag)
			fmt.Fprintf(stdout, "%-18s   %s\n", "", s.Summary)
		}
		return 0
	case "run":
		targets, code := resolve()
		if code != 0 {
			return code
		}
		for _, name := range targets {
			start := time.Now()
			var rendered fmt.Stringer
			var err error
			if s, _ := dimetrodon.LookupScenario(name); s != nil && s.Scheduler != nil {
				rendered, err = dimetrodon.RunSchedScenario(name, "", scale)
			} else if *trailingBatched {
				rendered, err = dimetrodon.RunScenarioBatched(name, scale)
			} else {
				rendered, err = dimetrodon.RunScenario(name, scale)
			}
			if err != nil {
				fmt.Fprintf(stderr, "dimctl: scenario %s failed: %v\n", name, err)
				return 1
			}
			fmt.Fprintf(stdout, "==== scenario %s ====\n%s", name, rendered)
			fmt.Fprintf(stdout, "---- %s done in %v ----\n\n", name, time.Since(start).Round(time.Millisecond))
		}
		return 0
	case "export":
		targets, code := resolve()
		if code != 0 {
			return code
		}
		for _, name := range targets {
			start := time.Now()
			export := dimetrodon.ExportScenario
			if *trailingBatched {
				export = dimetrodon.ExportScenarioBatched
			}
			paths, err := export(name, scale, outDir)
			if err != nil {
				fmt.Fprintf(stderr, "dimctl: exporting scenario %s: %v\n", name, err)
				return 1
			}
			printPaths(stdout, name, paths, start)
		}
		return 0
	case "mega":
		targets, code := resolve()
		if code != 0 {
			return code
		}
		for _, name := range targets {
			start := time.Now()
			res, err := dimetrodon.RunMegaScenario(name, *trailingMachines, scale)
			if err != nil {
				fmt.Fprintf(stderr, "dimctl: scenario %s failed: %v\n", name, err)
				return 1
			}
			fmt.Fprintf(stdout, "==== scenario %s (mega) ====\n%s", name, res)
			fmt.Fprintf(stdout, "---- %s done in %v ----\n\n", name, time.Since(start).Round(time.Millisecond))
		}
		return 0
	default:
		fmt.Fprintf(stderr, "dimctl: unknown scenario subcommand %q (list, run, export, mega)\n", args[0])
		return 2
	}
}

// schedCmd implements the fleet-scheduler subcommands:
//
//	dimctl sched policies                            list placement policies
//	dimctl sched run <scenario>... [-policy P]       one policy, full output
//	dimctl sched compare <scenario>...               sweep all policies, table
//	dimctl sched export <scenario>...                per-run + comparison CSVs
//
// Scenario names may also be passed via -scenario; only scenarios with a
// scheduler block qualify.
func schedCmd(args []string, scale dimetrodon.Scale, outDir string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, "dimctl: sched requires a subcommand: policies, run, compare or export")
		return 2
	}
	names, rest := splitFlags(args[1:])
	trailing := flag.NewFlagSet("sched", flag.ContinueOnError)
	trailing.SetOutput(stderr)
	trailingScale := trailing.Float64("scale", float64(scale), "experiment scale")
	trailingJobs := trailing.Int("jobs", 0, "parallel trial workers")
	trailingOut := trailing.String("out", outDir, "output directory for export")
	policy := trailing.String("policy", "", "placement policy for `sched run` (default: the scenario's)")
	scenarioFlag := trailing.String("scenario", "", "scheduled scenario name (alternative to a positional name)")
	trailingInteg := trailing.String("integrator", "", "thermal integrator override (exact|leap)")
	if len(rest) > 0 {
		if err := trailing.Parse(rest); err != nil {
			return 2
		}
		scale = dimetrodon.Scale(*trailingScale)
		outDir = *trailingOut
		if *trailingJobs != 0 {
			dimetrodon.SetJobs(*trailingJobs)
		}
		if *trailingInteg != "" {
			if err := dimetrodon.SetIntegrator(*trailingInteg); err != nil {
				fmt.Fprintf(stderr, "dimctl: %v\n", err)
				return 2
			}
		}
		if *scenarioFlag != "" {
			names = append(names, *scenarioFlag)
		}
	}
	schedNames := func() []string {
		var out []string
		for _, name := range dimetrodon.ScenarioNames() {
			if s, _ := dimetrodon.LookupScenario(name); s != nil && s.Scheduler != nil {
				out = append(out, name)
			}
		}
		return out
	}
	resolve := func() ([]string, int) {
		valid := schedNames()
		if len(names) == 0 {
			fmt.Fprintln(stderr, "dimctl: sched "+args[0]+" requires a scheduled scenario name (or \"all\"); try -scenario <name>")
			return nil, 2
		}
		if len(names) == 1 && names[0] == "all" {
			return valid, 0
		}
		for _, name := range names {
			s, ok := dimetrodon.LookupScenario(name)
			if !ok || s.Scheduler == nil {
				unknownName(stderr, "scheduled scenario", name, valid)
				return nil, 2
			}
		}
		return names, 0
	}
	switch args[0] {
	case "policies":
		for _, p := range dimetrodon.SchedPolicyNames() {
			fmt.Fprintln(stdout, p)
		}
		return 0
	case "run":
		if *policy != "" && !dimetrodon.ValidSchedPolicy(*policy) {
			unknownName(stderr, "placement policy", *policy, dimetrodon.SchedPolicyNames())
			return 2
		}
		targets, code := resolve()
		if code != 0 {
			return code
		}
		for _, name := range targets {
			start := time.Now()
			res, err := dimetrodon.RunSchedScenario(name, *policy, scale)
			if err != nil {
				fmt.Fprintf(stderr, "dimctl: sched run %s failed: %v\n", name, err)
				return 1
			}
			fmt.Fprintf(stdout, "==== sched %s ====\n%s", name, res)
			fmt.Fprintf(stdout, "---- %s done in %v ----\n\n", name, time.Since(start).Round(time.Millisecond))
		}
		return 0
	case "compare":
		targets, code := resolve()
		if code != 0 {
			return code
		}
		for _, name := range targets {
			start := time.Now()
			c, err := dimetrodon.CompareSchedScenario(name, scale)
			if err != nil {
				fmt.Fprintf(stderr, "dimctl: sched compare %s failed: %v\n", name, err)
				return 1
			}
			fmt.Fprint(stdout, c)
			fmt.Fprintf(stdout, "---- %s compared in %v ----\n\n", name, time.Since(start).Round(time.Millisecond))
		}
		return 0
	case "export":
		targets, code := resolve()
		if code != 0 {
			return code
		}
		for _, name := range targets {
			start := time.Now()
			// One sweep serves both artefacts: the default-policy run's
			// CSVs come from the comparison's own results, not a re-run.
			c, err := dimetrodon.CompareSchedScenario(name, scale)
			if err != nil {
				fmt.Fprintf(stderr, "dimctl: sched export %s: %v\n", name, err)
				return 1
			}
			paths, err := dimetrodon.ExportSchedResult(c.DefaultResult(), outDir)
			if err != nil {
				fmt.Fprintf(stderr, "dimctl: sched export %s: %v\n", name, err)
				return 1
			}
			cmpPaths, err := dimetrodon.ExportSchedComparison(c, outDir)
			if err != nil {
				fmt.Fprintf(stderr, "dimctl: sched export %s: %v\n", name, err)
				return 1
			}
			printPaths(stdout, name, append(paths, cmpPaths...), start)
		}
		return 0
	default:
		fmt.Fprintf(stderr, "dimctl: unknown sched subcommand %q (policies, run, compare, export)\n", args[0])
		return 2
	}
}

// boolTrailingFlags names the trailing flags that take no value token, so
// splitFlags does not consume the argument after a bare "-batched".
var boolTrailingFlags = map[string]bool{"batched": true, "once": true}

// splitFlags partitions subcommand arguments into positional names and
// trailing flag tokens (value-taking flags accept either "-jobs=8" or
// "-jobs 8"; boolean flags stand alone or use the "=" form).
func splitFlags(args []string) (names, rest []string) {
	for i := 0; i < len(args); i++ {
		a := args[i]
		// A bare "-" is a positional operand (e.g. `incident export -`),
		// never a flag.
		if strings.HasPrefix(a, "-") && a != "-" {
			rest = append(rest, a)
			bare := strings.TrimLeft(a, "-")
			if !strings.Contains(a, "=") && !boolTrailingFlags[bare] && i+1 < len(args) {
				i++
				rest = append(rest, args[i])
			}
			continue
		}
		names = append(names, a)
	}
	return names, rest
}

func usage(fs *flag.FlagSet, w io.Writer) {
	fmt.Fprintf(w, `dimctl — Dimetrodon (DAC 2011) reproduction harness

usage:
  dimctl list                                         list experiments
  dimctl bench [name...] [-iters N]                   smoke-run kernel micro-benchmarks
  dimctl [-scale S] [-jobs N] run <id>...             run experiments (or "all")
  dimctl [-scale S] [-jobs N] [-out DIR] export <id>  write plot-ready CSVs (or "all")
  dimctl scenario list                                list fleet scenarios
  dimctl [-scale S] [-jobs N] scenario run <name>...  run fleet scenarios (or "all")
                                                      (-batched: shared-propagator SoA engine)
  dimctl [-scale S] [-jobs N] [-out DIR] scenario export <name>...
                                                      write scenario CSVs (or "all")
  dimctl scenario mega <name>... [-machines N]        tiled mega-fleet summary (default 1M)
  dimctl sched policies                               list placement policies
  dimctl [-scale S] [-jobs N] sched run <name> [-policy P]
                                                      run a scheduled scenario
  dimctl [-scale S] [-jobs N] sched compare -scenario <name>
                                                      sweep all placement policies
  dimctl [-scale S] [-jobs N] [-out DIR] sched export <name>...
                                                      write sched CSVs + comparison
  dimctl remote [-addr URL] run|submit|stream|export <name>... [-policy P] [-spec FILE]
                                                      run jobs on a dimd daemon
  dimctl remote [-addr URL] jobs|status|cancel|metrics
                                                      inspect a dimd daemon
  dimctl trace <job-id> [-addr URL] [-out FILE]       fetch a job's Chrome trace JSON
  dimctl top [-addr URL] [-once] [-interval D]        live fleet heat map
  dimctl snapshot [-addr URL] [-out FILE]             capture a content-hashed fleet snapshot
  dimctl incident list|show <id> [-addr URL]          inspect flight-recorder dumps
  dimctl incident export <id|-> [-out DIR] [-job ID]  write replayable per-job bundles
  dimctl incident replay <bundle-dir>...              re-run a bundle, byte-verify vs expected/

flags:
`)
	fs.PrintDefaults()
}
