// Command dimctl runs the Dimetrodon reproduction's experiment harnesses and
// prints the tables and series corresponding to the paper's figures.
//
// Usage:
//
//	dimctl list                 list available experiments
//	dimctl run <id> [...]       run experiments by ID (or "all")
//	dimctl -scale 0.25 run all  run everything at quarter scale
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	dimetrodon "repro"
)

func main() {
	scale := flag.Float64("scale", 1.0, "experiment scale: 1.0 = paper-duration runs")
	jobs := flag.Int("jobs", 0, "parallel trial workers; 0 = GOMAXPROCS (output is identical at any setting)")
	outDir := flag.String("out", "results", "output directory for `export`")
	flag.Usage = usage
	flag.Parse()
	dimetrodon.SetJobs(*jobs)
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	switch args[0] {
	case "scenario":
		scenarioCmd(args[1:], dimetrodon.Scale(*scale), *outDir)
		return
	case "export":
		targets := args[1:]
		if len(targets) == 0 {
			fmt.Fprintln(os.Stderr, "dimctl: export requires experiment IDs or \"all\"")
			os.Exit(2)
		}
		if len(targets) == 1 && targets[0] == "all" {
			targets = dimetrodon.ExperimentIDs()
		}
		for _, id := range targets {
			if _, ok := dimetrodon.Experiments[id]; !ok {
				fmt.Fprintf(os.Stderr, "dimctl: unknown experiment %q (try: dimctl list)\n", id)
				os.Exit(2)
			}
			start := time.Now()
			paths, err := dimetrodon.Export(id, dimetrodon.Scale(*scale), *outDir)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dimctl: exporting %s: %v\n", id, err)
				os.Exit(1)
			}
			fmt.Printf("%-16s -> %d file(s) in %v\n", id, len(paths), time.Since(start).Round(time.Millisecond))
			for _, p := range paths {
				fmt.Printf("  %s\n", p)
			}
		}
		return
	case "list":
		for _, id := range dimetrodon.ExperimentIDs() {
			e := dimetrodon.Experiments[id]
			fmt.Printf("%-18s %s\n", e.ID, e.Title)
			fmt.Printf("%-18s   %s\n", "", e.Summary)
		}
	case "run":
		targets := args[1:]
		if len(targets) == 0 {
			fmt.Fprintln(os.Stderr, "dimctl: run requires experiment IDs or \"all\"")
			os.Exit(2)
		}
		if len(targets) == 1 && targets[0] == "all" {
			targets = dimetrodon.ExperimentIDs()
		}
		for _, id := range targets {
			e, ok := dimetrodon.Experiments[id]
			if !ok {
				fmt.Fprintf(os.Stderr, "dimctl: unknown experiment %q (try: dimctl list)\n", id)
				os.Exit(2)
			}
			fmt.Printf("==== %s (%s) ====\n", e.ID, e.Title)
			start := time.Now()
			if err := e.Run(os.Stdout, dimetrodon.Scale(*scale)); err != nil {
				fmt.Fprintf(os.Stderr, "dimctl: %s failed: %v\n", id, err)
				os.Exit(1)
			}
			fmt.Printf("---- %s done in %v ----\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	default:
		usage()
		os.Exit(2)
	}
}

// scenarioCmd implements the `dimctl scenario list|run|export` subcommands:
// the fleet-scale scenario engine on top of the same -scale/-jobs/-out flags
// the paper harnesses use. Flags are also accepted after the scenario names
// (`dimctl scenario run fleet-diurnal -jobs 8`), where the top-level parse
// has already stopped.
func scenarioCmd(args []string, scale dimetrodon.Scale, outDir string) {
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	names, rest := splitFlags(args[1:])
	if len(rest) > 0 {
		fs := flag.NewFlagSet("scenario", flag.ExitOnError)
		trailingScale := fs.Float64("scale", float64(scale), "experiment scale")
		trailingJobs := fs.Int("jobs", 0, "parallel trial workers")
		trailingOut := fs.String("out", outDir, "output directory for export")
		if err := fs.Parse(rest); err != nil {
			os.Exit(2)
		}
		scale = dimetrodon.Scale(*trailingScale)
		outDir = *trailingOut
		if *trailingJobs != 0 {
			dimetrodon.SetJobs(*trailingJobs)
		}
	}
	resolve := func(targets []string) []string {
		if len(targets) == 0 {
			fmt.Fprintln(os.Stderr, "dimctl: scenario "+args[0]+" requires scenario names or \"all\"")
			os.Exit(2)
		}
		if len(targets) == 1 && targets[0] == "all" {
			return dimetrodon.ScenarioNames()
		}
		for _, name := range targets {
			if _, ok := dimetrodon.LookupScenario(name); !ok {
				fmt.Fprintf(os.Stderr, "dimctl: unknown scenario %q (try: dimctl scenario list)\n", name)
				os.Exit(2)
			}
		}
		return targets
	}
	switch args[0] {
	case "list":
		for _, name := range dimetrodon.ScenarioNames() {
			s, _ := dimetrodon.LookupScenario(name)
			fmt.Printf("%-18s %s\n", s.Name, s.Title)
			fmt.Printf("%-18s   %s\n", "", s.Summary)
		}
	case "run":
		for _, name := range resolve(names) {
			start := time.Now()
			res, err := dimetrodon.RunScenario(name, scale)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dimctl: scenario %s failed: %v\n", name, err)
				os.Exit(1)
			}
			fmt.Printf("==== scenario %s ====\n%s", name, res)
			fmt.Printf("---- %s done in %v ----\n\n", name, time.Since(start).Round(time.Millisecond))
		}
	case "export":
		for _, name := range resolve(names) {
			start := time.Now()
			paths, err := dimetrodon.ExportScenario(name, scale, outDir)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dimctl: exporting scenario %s: %v\n", name, err)
				os.Exit(1)
			}
			fmt.Printf("%-16s -> %d file(s) in %v\n", name, len(paths), time.Since(start).Round(time.Millisecond))
			for _, p := range paths {
				fmt.Printf("  %s\n", p)
			}
		}
	default:
		usage()
		os.Exit(2)
	}
}

// splitFlags partitions subcommand arguments into positional names and
// trailing flag tokens (each flag here takes a value, passed either as
// "-jobs=8" or "-jobs 8").
func splitFlags(args []string) (names, rest []string) {
	for i := 0; i < len(args); i++ {
		a := args[i]
		if strings.HasPrefix(a, "-") {
			rest = append(rest, a)
			if !strings.Contains(a, "=") && i+1 < len(args) {
				i++
				rest = append(rest, args[i])
			}
			continue
		}
		names = append(names, a)
	}
	return names, rest
}

func usage() {
	fmt.Fprintf(os.Stderr, `dimctl — Dimetrodon (DAC 2011) reproduction harness

usage:
  dimctl list                                         list experiments
  dimctl [-scale S] [-jobs N] run <id>...             run experiments (or "all")
  dimctl [-scale S] [-jobs N] [-out DIR] export <id>  write plot-ready CSVs (or "all")
  dimctl scenario list                                list fleet scenarios
  dimctl [-scale S] [-jobs N] scenario run <name>...  run fleet scenarios (or "all")
  dimctl [-scale S] [-jobs N] [-out DIR] scenario export <name>...
                                                      write scenario CSVs (or "all")

flags:
`)
	flag.PrintDefaults()
}
