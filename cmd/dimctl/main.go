// Command dimctl runs the Dimetrodon reproduction's experiment harnesses and
// prints the tables and series corresponding to the paper's figures.
//
// Usage:
//
//	dimctl list                 list available experiments
//	dimctl run <id> [...]       run experiments by ID (or "all")
//	dimctl -scale 0.25 run all  run everything at quarter scale
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	dimetrodon "repro"
)

func main() {
	scale := flag.Float64("scale", 1.0, "experiment scale: 1.0 = paper-duration runs")
	jobs := flag.Int("jobs", 0, "parallel trial workers; 0 = GOMAXPROCS (output is identical at any setting)")
	outDir := flag.String("out", "results", "output directory for `export`")
	flag.Usage = usage
	flag.Parse()
	dimetrodon.SetJobs(*jobs)
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	switch args[0] {
	case "export":
		targets := args[1:]
		if len(targets) == 0 {
			fmt.Fprintln(os.Stderr, "dimctl: export requires experiment IDs or \"all\"")
			os.Exit(2)
		}
		if len(targets) == 1 && targets[0] == "all" {
			targets = dimetrodon.ExperimentIDs()
		}
		for _, id := range targets {
			if _, ok := dimetrodon.Experiments[id]; !ok {
				fmt.Fprintf(os.Stderr, "dimctl: unknown experiment %q (try: dimctl list)\n", id)
				os.Exit(2)
			}
			start := time.Now()
			paths, err := dimetrodon.Export(id, dimetrodon.Scale(*scale), *outDir)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dimctl: exporting %s: %v\n", id, err)
				os.Exit(1)
			}
			fmt.Printf("%-16s -> %d file(s) in %v\n", id, len(paths), time.Since(start).Round(time.Millisecond))
			for _, p := range paths {
				fmt.Printf("  %s\n", p)
			}
		}
		return
	case "list":
		for _, id := range dimetrodon.ExperimentIDs() {
			e := dimetrodon.Experiments[id]
			fmt.Printf("%-18s %s\n", e.ID, e.Title)
			fmt.Printf("%-18s   %s\n", "", e.Summary)
		}
	case "run":
		targets := args[1:]
		if len(targets) == 0 {
			fmt.Fprintln(os.Stderr, "dimctl: run requires experiment IDs or \"all\"")
			os.Exit(2)
		}
		if len(targets) == 1 && targets[0] == "all" {
			targets = dimetrodon.ExperimentIDs()
		}
		for _, id := range targets {
			e, ok := dimetrodon.Experiments[id]
			if !ok {
				fmt.Fprintf(os.Stderr, "dimctl: unknown experiment %q (try: dimctl list)\n", id)
				os.Exit(2)
			}
			fmt.Printf("==== %s (%s) ====\n", e.ID, e.Title)
			start := time.Now()
			if err := e.Run(os.Stdout, dimetrodon.Scale(*scale)); err != nil {
				fmt.Fprintf(os.Stderr, "dimctl: %s failed: %v\n", id, err)
				os.Exit(1)
			}
			fmt.Printf("---- %s done in %v ----\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `dimctl — Dimetrodon (DAC 2011) reproduction harness

usage:
  dimctl list                                         list experiments
  dimctl [-scale S] [-jobs N] run <id>...             run experiments (or "all")
  dimctl [-scale S] [-jobs N] [-out DIR] export <id>  write plot-ready CSVs (or "all")

flags:
`)
	flag.PrintDefaults()
}
