package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// exportBundleDirs runs `incident export -` against the daemon and returns
// the bundle directories it wrote.
func exportBundleDirs(t *testing.T, addr, out string) []string {
	t.Helper()
	code, stdout, stderr := runCLI(t, "incident", "export", "-", "-addr", addr, "-out", out)
	if code != 0 {
		t.Fatalf("incident export failed: %s", stderr)
	}
	if !strings.Contains(stdout, "exported") {
		t.Fatalf("export reported nothing:\n%s", stdout)
	}
	dirs, err := filepath.Glob(filepath.Join(out, "job-*"))
	if err != nil || len(dirs) == 0 {
		t.Fatalf("no bundle directories under %s: %v", out, err)
	}
	return dirs
}

func TestSnapshotCommandSummaryAndFile(t *testing.T) {
	addr := newTestDaemon(t)
	if code, _, stderr := runCLI(t, "remote", "run", "fleet-diurnal", "-addr", addr, "-scale", "0.05"); code != 0 {
		t.Fatalf("remote run failed: %s", stderr)
	}

	code, stdout, stderr := runCLI(t, "snapshot", "-addr", addr)
	if code != 0 {
		t.Fatalf("snapshot failed: %s", stderr)
	}
	for _, want := range []string{"snapshot ", "daemon:", "fleet-diurnal", "scenario", "done"} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("snapshot summary missing %q:\n%s", want, stdout)
		}
	}

	out := filepath.Join(t.TempDir(), "snap.json")
	if code, _, stderr := runCLI(t, "snapshot", "-addr", addr, "-out", out); code != 0 {
		t.Fatalf("snapshot -out failed: %s", stderr)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("snapshot file: %v", err)
	}
	if !strings.Contains(string(raw), `"hash"`) || !strings.Contains(string(raw), `"jobs"`) {
		t.Fatalf("snapshot file lacks hash/jobs fields:\n%.400s", raw)
	}
}

func TestIncidentExportReplayByteIdentical(t *testing.T) {
	addr := newTestDaemon(t)
	if code, _, stderr := runCLI(t, "remote", "run", "fleet-diurnal", "-addr", addr, "-scale", "0.05"); code != 0 {
		t.Fatalf("remote run failed: %s", stderr)
	}

	dirs := exportBundleDirs(t, addr, t.TempDir())
	dir := dirs[0]
	for _, f := range []string{"bundle.json", "spec.json", filepath.Join("expected", "output.txt")} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("bundle missing %s: %v", f, err)
		}
	}

	code, stdout, stderr := runCLI(t, "incident", "replay", dir)
	if code != 0 {
		t.Fatalf("replay failed: %s", stderr)
	}
	if !strings.Contains(stdout, "byte-identical") {
		t.Fatalf("replay did not verify:\n%s", stdout)
	}
}

func TestIncidentReplaySchedJob(t *testing.T) {
	addr := newTestDaemon(t)
	if code, _, stderr := runCLI(t, "remote", "run", "sched-shootout", "-addr", addr, "-scale", "0.05"); code != 0 {
		t.Fatalf("remote run failed: %s", stderr)
	}

	dirs := exportBundleDirs(t, addr, t.TempDir())
	code, stdout, stderr := runCLI(t, "incident", "replay", dirs[0])
	if code != 0 {
		t.Fatalf("sched replay failed: %s", stderr)
	}
	if !strings.Contains(stdout, "byte-identical") {
		t.Fatalf("sched replay did not verify:\n%s", stdout)
	}
}

func TestIncidentReplayDetectsTampering(t *testing.T) {
	addr := newTestDaemon(t)
	if code, _, stderr := runCLI(t, "remote", "run", "fleet-diurnal", "-addr", addr, "-scale", "0.05"); code != 0 {
		t.Fatalf("remote run failed: %s", stderr)
	}

	dirs := exportBundleDirs(t, addr, t.TempDir())
	dir := dirs[0]
	expPath := filepath.Join(dir, "expected", "output.txt")
	raw, err := os.ReadFile(expPath)
	if err != nil {
		t.Fatalf("read expected output: %v", err)
	}
	if err := os.WriteFile(expPath, append(raw, " tampered"...), 0o644); err != nil {
		t.Fatalf("tamper expected output: %v", err)
	}

	code, _, stderr := runCLI(t, "incident", "replay", dir)
	if code == 0 {
		t.Fatal("replay of a tampered bundle exited zero")
	}
	if !strings.Contains(stderr, "DIVERGED") {
		t.Fatalf("stderr = %q, want a DIVERGED report", stderr)
	}
}

func TestIncidentListEmptyAndUnknownShow(t *testing.T) {
	addr := newTestDaemon(t)
	code, stdout, stderr := runCLI(t, "incident", "list", "-addr", addr)
	if code != 0 {
		t.Fatalf("incident list failed: %s", stderr)
	}
	if !strings.Contains(stdout, "no incidents") {
		t.Fatalf("fresh daemon listed incidents:\n%s", stdout)
	}
	if code, _, _ := runCLI(t, "incident", "show", "inc-999999", "-addr", addr); code == 0 {
		t.Fatal("show of an unknown incident exited zero")
	}
}
