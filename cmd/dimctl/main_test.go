package main

import (
	"path/filepath"
	"strings"
	"testing"

	"bytes"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestUnknownExperimentListsValidIDs(t *testing.T) {
	code, _, stderr := runCLI(t, "run", "fig99")
	if code == 0 {
		t.Fatal("unknown experiment exited zero")
	}
	if !strings.Contains(stderr, `unknown experiment "fig99"`) {
		t.Fatalf("stderr = %q, want unknown-experiment report", stderr)
	}
	for _, id := range []string{"fig1", "table1"} {
		if !strings.Contains(stderr, id) {
			t.Fatalf("stderr does not list valid experiment %q:\n%s", id, stderr)
		}
	}
}

func TestUnknownScenarioListsValidNames(t *testing.T) {
	code, _, stderr := runCLI(t, "scenario", "run", "no-such-fleet")
	if code == 0 {
		t.Fatal("unknown scenario exited zero")
	}
	for _, name := range []string{"fleet-diurnal", "sched-shootout"} {
		if !strings.Contains(stderr, name) {
			t.Fatalf("stderr does not list valid scenario %q:\n%s", name, stderr)
		}
	}
}

func TestUnknownPolicyListsValidNames(t *testing.T) {
	code, _, stderr := runCLI(t, "sched", "run", "sched-shootout", "-policy", "warmest-first")
	if code == 0 {
		t.Fatal("unknown policy exited zero")
	}
	for _, p := range []string{"random", "round-robin", "least-loaded", "coolest-first", "headroom", "injection-aware"} {
		if !strings.Contains(stderr, p) {
			t.Fatalf("stderr does not list valid policy %q:\n%s", p, stderr)
		}
	}
}

func TestSchedRejectsUnscheduledScenario(t *testing.T) {
	code, _, stderr := runCLI(t, "sched", "compare", "-scenario", "fleet-diurnal")
	if code == 0 {
		t.Fatal("sched compare on an unscheduled scenario exited zero")
	}
	if !strings.Contains(stderr, "sched-shootout") {
		t.Fatalf("stderr does not list the scheduled scenarios:\n%s", stderr)
	}
}

func TestSchedPolicies(t *testing.T) {
	code, stdout, _ := runCLI(t, "sched", "policies")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(stdout, "coolest-first") || !strings.Contains(stdout, "injection-aware") {
		t.Fatalf("policies output incomplete:\n%s", stdout)
	}
}

func TestSchedCompareRunsAllPolicies(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-scale", "0.02", "sched", "compare", "-scenario", "sched-shootout")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	for _, p := range []string{"random", "round-robin", "least-loaded", "coolest-first", "headroom", "injection-aware"} {
		if !strings.Contains(stdout, p) {
			t.Fatalf("comparison output missing policy %q:\n%s", p, stdout)
		}
	}
	if !strings.Contains(stdout, "qos_delta") {
		t.Fatalf("comparison output missing columns:\n%s", stdout)
	}
}

func TestSchedExportWritesCSVs(t *testing.T) {
	dir := t.TempDir()
	code, stdout, stderr := runCLI(t, "-scale", "0.02", "-out", dir, "sched", "export", "sched-shootout")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	for _, want := range []string{
		"sched_sched_shootout_machines.csv",
		"sched_sched_shootout_fleet.csv",
		"sched_sched_shootout_jobs.csv",
		"sched_sched_shootout_policies.csv",
	} {
		if !strings.Contains(stdout, filepath.Join(dir, want)) {
			t.Fatalf("export output missing %s:\n%s", want, stdout)
		}
	}
}

func TestScenarioRunRoutesSchedSpecs(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-scale", "0.02", "scenario", "run", "sched-shootout")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "Sched scenario sched-shootout") {
		t.Fatalf("scenario run did not route through fleetsched:\n%s", stdout)
	}
}

func TestScenarioListTagsSchedScenarios(t *testing.T) {
	code, stdout, _ := runCLI(t, "scenario", "list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(stdout, "[sched]") {
		t.Fatalf("scenario list does not tag scheduled scenarios:\n%s", stdout)
	}
}

func TestBenchSmoke(t *testing.T) {
	code, stdout, stderr := runCLI(t, "bench")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	for _, want := range []string{"thermal-step", "thermal-leap", "fleet-scenario", "fleet-sched"} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("bench output missing %q:\n%s", want, stdout)
		}
	}
}

func TestBenchByNameAndUnknown(t *testing.T) {
	code, stdout, stderr := runCLI(t, "bench", "thermal-step", "-iters", "3")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "3 iter(s)") {
		t.Fatalf("bench ignored -iters:\n%s", stdout)
	}
	code, _, stderr = runCLI(t, "bench", "no-such-micro")
	if code != 2 {
		t.Fatalf("unknown micro exit %d, want 2", code)
	}
	if !strings.Contains(stderr, "thermal-leap") {
		t.Fatalf("unknown-micro error does not list valid names:\n%s", stderr)
	}
}

func TestIntegratorFlagValidation(t *testing.T) {
	code, _, stderr := runCLI(t, "-integrator", "warp", "list")
	if code != 2 {
		t.Fatalf("bad integrator exit %d, want 2", code)
	}
	if !strings.Contains(stderr, "unknown integrator") {
		t.Fatalf("missing integrator error:\n%s", stderr)
	}
	code, _, stderr = runCLI(t, "-integrator", "leap", "bench", "thermal-step")
	if code != 0 {
		t.Fatalf("leap integrator rejected: exit %d, stderr:\n%s", code, stderr)
	}
}

func TestSchedAcceptsTrailingIntegrator(t *testing.T) {
	code, _, stderr := runCLI(t, "-scale", "0.02", "sched", "run", "sched-shootout", "-integrator", "exact")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	code, _, _ = runCLI(t, "sched", "run", "sched-shootout", "-integrator", "warp")
	if code != 2 {
		t.Fatalf("bad trailing integrator exit %d, want 2", code)
	}
}
