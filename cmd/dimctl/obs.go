// dimctl's observability commands: `trace` pulls a job's span trace from a
// dimd daemon as Chrome trace-event JSON, and `top` renders the daemon's live
// fleet heat map in the terminal — the operator's view of which machines run
// hot while their jobs are still in flight.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/service"
)

// traceCmd implements `dimctl trace <job-id>... [-addr URL] [-out FILE]`:
// fetch each job's Chrome trace-event JSON (load it in chrome://tracing or
// https://ui.perfetto.dev). With -out the first job's trace writes to FILE;
// otherwise traces stream to stdout.
func traceCmd(args []string, stdout, stderr io.Writer) int {
	ids, rest := splitFlags(args)
	trailing := flag.NewFlagSet("trace", flag.ContinueOnError)
	trailing.SetOutput(stderr)
	addr := trailing.String("addr", remoteAddrDefault(), "dimd base URL (or $DIMD_ADDR)")
	out := trailing.String("out", "", "write the trace JSON to this file instead of stdout")
	if len(rest) > 0 {
		if err := trailing.Parse(rest); err != nil {
			return 2
		}
	}
	if len(ids) == 0 {
		fmt.Fprintln(stderr, "dimctl: trace requires job IDs")
		return 2
	}
	if *out != "" && len(ids) > 1 {
		fmt.Fprintln(stderr, "dimctl: trace -out takes exactly one job ID")
		return 2
	}
	c := service.NewRetryClient(*addr, service.RetryPolicy{})
	for _, id := range ids {
		data, err := c.Trace(id)
		if err != nil {
			fmt.Fprintf(stderr, "dimctl: trace %s: %v\n", id, err)
			return 1
		}
		if *out != "" {
			if err := os.WriteFile(*out, data, 0o644); err != nil {
				fmt.Fprintf(stderr, "dimctl: trace: %v\n", err)
				return 1
			}
			fmt.Fprintf(stdout, "%s -> %s (%d bytes)\n", id, *out, len(data))
			continue
		}
		stdout.Write(data)
		fmt.Fprintln(stdout)
	}
	return 0
}

// topCmd implements `dimctl top [-addr URL] [-once] [-interval D]`: the live
// fleet heat map. Each in-flight job renders one row of heat cells (machine
// indices fold modulo the cell count), shaded by peak junction temperature.
// -once prints a single frame and exits; the default follows the daemon's SSE
// feed, redrawing in place until interrupted.
func topCmd(args []string, stdout, stderr io.Writer) int {
	_, rest := splitFlags(args)
	trailing := flag.NewFlagSet("top", flag.ContinueOnError)
	trailing.SetOutput(stderr)
	addr := trailing.String("addr", remoteAddrDefault(), "dimd base URL (or $DIMD_ADDR)")
	once := trailing.Bool("once", false, "print one frame and exit")
	interval := trailing.Duration("interval", 0, "frame cadence (0 = server default, 500ms)")
	width := trailing.Int("width", 64, "heat cells per row")
	if len(rest) > 0 {
		if err := trailing.Parse(rest); err != nil {
			return 2
		}
	}
	c := service.NewRetryClient(*addr, service.RetryPolicy{})
	if *once {
		f, err := c.Heat()
		if err != nil {
			fmt.Fprintf(stderr, "dimctl: top: %v\n", err)
			return 1
		}
		renderHeatFrame(stdout, f, *width)
		return 0
	}
	err := c.HeatStream(context.Background(), *interval, func(f service.HeatFrame) error {
		fmt.Fprint(stdout, "\x1b[H\x1b[2J") // home + clear: redraw in place
		renderHeatFrame(stdout, f, *width)
		return nil
	})
	if err != nil && err != context.Canceled {
		fmt.Fprintf(stderr, "dimctl: top: %v\n", err)
		return 1
	}
	return 0
}

// heatRamp shades a cell by temperature, cold to hot.
const heatRamp = " .:-=+*#%@"

// renderHeatFrame draws one heat frame: a header, then one row per job with
// its cells downsampled to width characters. The shade scale is per-frame
// (coldest visible cell to hottest), so relative hotspots stand out whatever
// the absolute fleet temperatures are.
func renderHeatFrame(w io.Writer, f service.HeatFrame, width int) {
	if width < 8 {
		width = 8
	}
	fmt.Fprintf(w, "dimd fleet heat  %s  %d job(s)\n", f.At.Format("15:04:05"), len(f.Jobs))
	if len(f.Jobs) == 0 {
		fmt.Fprintln(w, "  (no jobs streaming telemetry)")
		return
	}
	lo, hi := frameRange(f)
	fmt.Fprintf(w, "scale %s  %.1fC .. %.1fC\n", strings.TrimLeft(heatRamp, " "), lo, hi)
	for _, j := range f.Jobs {
		fmt.Fprintf(w, "%-12s %6d mach  max %6.1fC (m%d)  mean %6.1fC  t=%.0fs",
			j.Job, j.Machines, j.MaxC, j.HottestMachine, j.MeanC, j.VirtualS)
		if j.Round > 0 {
			fmt.Fprintf(w, "  round %d", j.Round)
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "  [%s]\n", heatRow(j.Cells, width, lo, hi))
	}
}

// frameRange finds the shade scale: the frame's coldest non-zero and hottest
// cells, widened to at least one degree so a uniform fleet is not all-hot.
func frameRange(f service.HeatFrame) (lo, hi float64) {
	lo, hi = 0, 1
	first := true
	for _, j := range f.Jobs {
		for _, c := range j.Cells {
			if c <= 0 {
				continue
			}
			if first || c < lo {
				lo = c
			}
			if first || c > hi {
				hi = c
			}
			first = false
		}
	}
	if hi < lo+1 {
		hi = lo + 1
	}
	return lo, hi
}

// heatRow downsamples cells to width shade characters, keeping each output
// column's maximum (a hotspot must never average away).
func heatRow(cells []float64, width int, lo, hi float64) string {
	if len(cells) == 0 {
		return strings.Repeat(" ", width)
	}
	if width > len(cells) {
		width = len(cells)
	}
	var b strings.Builder
	for col := 0; col < width; col++ {
		start := col * len(cells) / width
		end := (col + 1) * len(cells) / width
		if end <= start {
			end = start + 1
		}
		max := 0.0
		for _, c := range cells[start:end] {
			if c > max {
				max = c
			}
		}
		b.WriteByte(heatChar(max, lo, hi))
	}
	return b.String()
}

// heatChar maps one temperature onto the ramp; zero (never sampled) is blank.
func heatChar(c, lo, hi float64) byte {
	if c <= 0 {
		return ' '
	}
	idx := 1 + int(float64(len(heatRamp)-2)*(c-lo)/(hi-lo)+0.5)
	if idx < 1 {
		idx = 1
	}
	if idx >= len(heatRamp) {
		idx = len(heatRamp) - 1
	}
	return heatRamp[idx]
}

// remoteAddrDefault resolves the daemon address default ($DIMD_ADDR or the
// documented localhost endpoint), shared by every daemon-facing subcommand.
func remoteAddrDefault() string {
	if a := os.Getenv("DIMD_ADDR"); a != "" {
		return a
	}
	return defaultAddr
}
