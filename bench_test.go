package dimetrodon

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (§3), one testing.B benchmark per artefact, plus the ablation
// studies DESIGN.md calls out. Each iteration performs a full (scaled)
// reproduction run; the rendered result of the final iteration is printed so
// `go test -bench=.` leaves the measured rows in the log.
//
// Run the paper-duration versions via `go run ./cmd/dimctl run all`; the
// benchmarks default to BenchScale (override the output-free timing behaviour
// by inspecting bench_output.txt).

import (
	"fmt"
	"io"
	"os"
	"testing"

	"repro/internal/experiments"
)

// BenchScale keeps a single benchmark iteration in the hundreds of
// milliseconds while preserving every qualitative shape.
const BenchScale = experiments.Scale(0.15)

// benchRun drives one experiment harness as a benchmark body and prints the
// last iteration's rendered result.
func benchRun(b *testing.B, id string) {
	b.Helper()
	e, ok := Experiments[id]
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		out := io.Writer(io.Discard)
		if i == b.N-1 {
			out = os.Stdout
			fmt.Printf("\n==== %s (%s) @ scale %v ====\n", e.ID, e.Title, float64(BenchScale))
		}
		if err := e.Run(out, BenchScale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure1PowerTrace regenerates Figure 1: race-to-idle versus
// Dimetrodon package power while a multi-threaded CPU-bound job runs.
func BenchmarkFigure1PowerTrace(b *testing.B) { benchRun(b, "fig1") }

// BenchmarkValidationThroughput regenerates §3.3's throughput model
// validation grid (measured runtime vs D(t) = R + S·p/(1−p)·L).
func BenchmarkValidationThroughput(b *testing.B) { benchRun(b, "val-throughput") }

// BenchmarkValidationEnergy regenerates §3.3's energy validation: Dimetrodon
// versus race-to-idle energy over equal windows, as the clamp measures it.
func BenchmarkValidationEnergy(b *testing.B) { benchRun(b, "val-energy") }

// BenchmarkFigure2TemperatureTrace regenerates Figure 2: core temperature
// rise over idle through a cpuburn run for p ∈ {0,.25,.5,.75}.
func BenchmarkFigure2TemperatureTrace(b *testing.B) { benchRun(b, "fig2") }

// BenchmarkFigure3Efficiency regenerates Figure 3: the temperature:throughput
// efficiency across idle quantum lengths and proportions.
func BenchmarkFigure3Efficiency(b *testing.B) { benchRun(b, "fig3") }

// BenchmarkFigure4TechniqueComparison regenerates Figure 4: the wide-range
// sweep of Dimetrodon against VFS and p4tcc with Pareto boundaries and the
// T(r) = α·r^β fit.
func BenchmarkFigure4TechniqueComparison(b *testing.B) { benchRun(b, "fig4") }

// BenchmarkTable1SPECWorkloads regenerates Table 1: per-workload temperature
// rises and trade-off fits for the SPEC CPU2006 proxies.
func BenchmarkTable1SPECWorkloads(b *testing.B) { benchRun(b, "table1") }

// BenchmarkTable1SPECWorkloadsLeap is Table 1 with the process-wide
// -integrator=leap override: the experiment harnesses' steady windows are
// long quiescent spans, so this tracks the leap speedup on the paper
// workloads next to the exact-mode baseline above.
func BenchmarkTable1SPECWorkloadsLeap(b *testing.B) {
	if err := SetIntegrator(IntegratorLeap); err != nil {
		b.Fatal(err)
	}
	defer SetIntegrator("")
	benchRun(b, "table1")
}

// BenchmarkFigure5PerThreadControl regenerates Figure 5: global versus
// thread-specific control of a hot/cool workload mix.
func BenchmarkFigure5PerThreadControl(b *testing.B) { benchRun(b, "fig5") }

// BenchmarkFigure6WebQoS regenerates Figure 6: QoS versus temperature
// reduction for the SPECWeb-like latency-sensitive workload.
func BenchmarkFigure6WebQoS(b *testing.B) { benchRun(b, "fig6") }

// BenchmarkAblationLeakage measures the leakage-coupling ablation: how much
// of the trade-off shape the exponential temperature dependence contributes.
func BenchmarkAblationLeakage(b *testing.B) { benchRun(b, "abl-leakage") }

// BenchmarkAblationCState measures C1E versus full-voltage-halt injected
// idle (§2.1's nop-loop observation).
func BenchmarkAblationCState(b *testing.B) { benchRun(b, "abl-cstate") }

// BenchmarkAblationDeterministic measures probabilistic versus deterministic
// injection (§3.4's smoother-curves hypothesis).
func BenchmarkAblationDeterministic(b *testing.B) { benchRun(b, "abl-deterministic") }

// BenchmarkAblationHotspot measures the sensor-placement sensitivity study:
// trade-offs read from a fast hotspot node versus the junction block.
func BenchmarkAblationHotspot(b *testing.B) { benchRun(b, "abl-hotspot") }

// BenchmarkAblationKernelThreads measures the §3.1 policy decision of never
// injecting kernel-level threads, on the web workload.
func BenchmarkAblationKernelThreads(b *testing.B) { benchRun(b, "abl-kernel") }

// BenchmarkExtensionAdaptive measures the closed-loop setpoint controller
// (§2.1's online policy adjustment) across its three load phases.
func BenchmarkExtensionAdaptive(b *testing.B) { benchRun(b, "ext-adaptive") }

// BenchmarkExtensionSMT measures SMT idle co-scheduling (§3.2's deferred
// problem): naive per-context injection versus sibling gang-idling.
func BenchmarkExtensionSMT(b *testing.B) { benchRun(b, "ext-smt") }

// BenchmarkExtensionULE measures the scheduler-generality study (footnote
// 2): identical injection trade-offs under a ULE-style per-CPU organisation.
func BenchmarkExtensionULE(b *testing.B) { benchRun(b, "ext-ule") }

// BenchmarkExtensionEmergency measures the cooling-failure study: reactive
// TM1 alone versus preventive control with the backstop armed.
func BenchmarkExtensionEmergency(b *testing.B) { benchRun(b, "ext-emergency") }

// BenchmarkSimulatorSteadySecond measures raw simulator throughput: one
// virtual second of the four-core cpuburn steady state, including thermal
// integration, scheduling and energy accounting. This is the kernel
// underneath every harness above.
func BenchmarkSimulatorSteadySecond(b *testing.B) {
	tb := NewTestbed(TestbedConfig{Seed: 1})
	if err := tb.InstallGlobalPolicy(Policy{P: 0.5, L: 10 * Millisecond}); err != nil {
		b.Fatal(err)
	}
	tb.SpawnBurn("burn", 4)
	tb.Run(2 * Second) // settle
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Run(Second)
	}
}
