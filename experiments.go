package dimetrodon

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/experiments"
	"repro/internal/export"
	"repro/internal/fleetsched"
	"repro/internal/machine"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/service"
)

// Scale controls experiment durations and trial counts; 1.0 reproduces the
// paper's full runs, smaller values shrink them proportionally (floors keep
// windows meaningful).
type Scale = experiments.Scale

// Canonical scales.
const (
	FullScale  = experiments.Full
	QuickScale = experiments.Quick
)

// SetJobs sets the trial-level parallelism of every experiment harness: the
// number of workers the sweep engine fans independent simulations across.
// n <= 0 restores the default (GOMAXPROCS). Results are byte-identical at any
// setting — trials derive their seeds from their position in the sweep, never
// from a shared stream — so this is purely a wall-clock knob (cmd/dimctl
// exposes it as -jobs).
func SetJobs(n int) { runner.SetJobs(n) }

// Jobs returns the effective trial-level parallelism.
func Jobs() int { return runner.Jobs() }

// Integrator mode names, re-exported for CLI validation.
const (
	IntegratorExact = machine.IntegratorExact
	IntegratorLeap  = machine.IntegratorLeap
)

// SetIntegrator installs the process-wide thermal-integrator override:
// "exact" forces byte-identical step-by-step integration everywhere, "leap"
// opts every harness into the quiescence-leaping fast path, and "" restores
// the defaults (experiments exact, scenario and sched runs leap). cmd/dimctl
// exposes it as -integrator. Unknown modes return an error.
func SetIntegrator(mode string) error { return machine.SetIntegratorOverride(mode) }

// Integrator returns the current process-wide override ("" when unset).
func Integrator() string { return machine.IntegratorOverride() }

// MicroBench is one kernel micro-benchmark `dimctl bench` can run in smoke
// mode.
type MicroBench = bench.Micro

// MicroBenches returns the registered kernel micro-benchmarks.
func MicroBenches() []MicroBench { return bench.Micros() }

// RunMicroBench executes one registered micro-benchmark for iters
// iterations, returning its wall-clock duration.
func RunMicroBench(m MicroBench, iters int) (time.Duration, error) {
	start := time.Now()
	err := m.Run(iters)
	return time.Since(start), err
}

// Experiment is one reproducible artefact of the paper's evaluation.
type Experiment struct {
	ID      string
	Title   string
	Summary string
	// Run executes the harness and writes the rendered result to w.
	Run func(w io.Writer, scale Scale) error
}

// Experiments maps experiment IDs to harnesses — one per figure and table of
// the paper plus the ablation studies (see DESIGN.md §3 for the index).
var Experiments = map[string]Experiment{
	"fig1": {
		ID: "fig1", Title: "Figure 1: race-to-idle vs Dimetrodon power trace",
		Summary: "Package power while a 4-thread CPU-bound job runs, with and without injection.",
		Run: func(w io.Writer, s Scale) error {
			_, err := fmt.Fprintln(w, experiments.RunFigure1(s))
			return err
		},
	},
	"val-throughput": {
		ID: "val-throughput", Title: "§3.3 throughput model validation",
		Summary: "Measured runtimes vs D(t)=R+S·p/(1−p)·L across the p×L grid.",
		Run: func(w io.Writer, s Scale) error {
			_, err := fmt.Fprintln(w, experiments.RunValidationThroughput(s))
			return err
		},
	},
	"val-energy": {
		ID: "val-energy", Title: "§3.3 energy model validation",
		Summary: "Dimetrodon energy as % of race-to-idle over equal windows.",
		Run: func(w io.Writer, s Scale) error {
			_, err := fmt.Fprintln(w, experiments.RunValidationEnergy(s))
			return err
		},
	},
	"fig2": {
		ID: "fig2", Title: "Figure 2: temperature rise over idle vs time",
		Summary: "cpuburn under p ∈ {0,.25,.5,.75}, L=100ms.",
		Run: func(w io.Writer, s Scale) error {
			_, err := fmt.Fprintln(w, experiments.RunFigure2(s))
			return err
		},
	},
	"fig3": {
		ID: "fig3", Title: "Figure 3: efficiency vs idle quantum length",
		Summary: "Temperature:throughput efficiency across L ∈ [1,100]ms per p.",
		Run: func(w io.Writer, s Scale) error {
			_, err := fmt.Fprintln(w, experiments.RunFigure3(s))
			return err
		},
	},
	"fig4": {
		ID: "fig4", Title: "Figure 4: technique comparison sweep",
		Summary: "Dimetrodon vs VFS vs p4tcc Pareto boundaries and power-law fit.",
		Run: func(w io.Writer, s Scale) error {
			_, err := fmt.Fprintln(w, experiments.RunFigure4(s))
			return err
		},
	},
	"table1": {
		ID: "table1", Title: "Table 1: SPEC CPU2006 workload results",
		Summary: "Rise % of cpuburn and T(r)=α·r^β fits per workload.",
		Run: func(w io.Writer, s Scale) error {
			_, err := fmt.Fprintln(w, experiments.RunTable1(s))
			return err
		},
	},
	"fig5": {
		ID: "fig5", Title: "Figure 5: global vs thread-specific control",
		Summary: "Cool-process throughput vs system temperature reduction.",
		Run: func(w io.Writer, s Scale) error {
			_, err := fmt.Fprintln(w, experiments.RunFigure5(s))
			return err
		},
	},
	"fig6": {
		ID: "fig6", Title: "Figure 6: web workload QoS vs temperature",
		Summary: "SPECWeb-like closed loop; good/tolerable QoS boundaries.",
		Run: func(w io.Writer, s Scale) error {
			_, err := fmt.Fprintln(w, experiments.RunFigure6(s))
			return err
		},
	},
	"abl-leakage": {
		ID: "abl-leakage", Title: "Ablation: leakage temperature coupling",
		Summary: "Trade-off curves with leakage frozen at its reference value.",
		Run: func(w io.Writer, s Scale) error {
			_, err := fmt.Fprintln(w, experiments.RunAblationLeakage(s))
			return err
		},
	},
	"abl-cstate": {
		ID: "abl-cstate", Title: "Ablation: C1E vs halt-only injected idle",
		Summary: "Injected quanta at full-voltage halt instead of C1E.",
		Run: func(w io.Writer, s Scale) error {
			_, err := fmt.Fprintln(w, experiments.RunAblationCState(s))
			return err
		},
	},
	"abl-deterministic": {
		ID: "abl-deterministic", Title: "Ablation: deterministic injection",
		Summary: "Error-accumulator injection vs the probabilistic model.",
		Run: func(w io.Writer, s Scale) error {
			_, err := fmt.Fprintln(w, experiments.RunAblationDeterministic(s))
			return err
		},
	},
	"abl-hotspot": {
		ID: "abl-hotspot", Title: "Ablation: sensor placement (hotspot)",
		Summary: "Trade-off sensitivity to reading a fast hotspot node instead of the junction block.",
		Run: func(w io.Writer, s Scale) error {
			_, err := fmt.Fprintln(w, experiments.RunAblationHotspot(s))
			return err
		},
	},
	"abl-kernel": {
		ID: "abl-kernel", Title: "Ablation: injecting kernel threads",
		Summary: "§3.1 policy decision — QoS cost of making the interrupt path injectable.",
		Run: func(w io.Writer, s Scale) error {
			_, err := fmt.Fprintln(w, experiments.RunAblationKernelThreads(s))
			return err
		},
	},
	"ext-adaptive": {
		ID: "ext-adaptive", Title: "Extension: adaptive setpoint control",
		Summary: "Closed-loop online policy adjustment (§2.1) holding a junction target across load phases.",
		Run: func(w io.Writer, s Scale) error {
			_, err := fmt.Fprintln(w, experiments.RunAdaptiveControl(s))
			return err
		},
	},
	"ext-smt": {
		ID: "ext-smt", Title: "Extension: SMT idle co-scheduling",
		Summary: "§3.2's deferred problem — gang-idling sibling contexts so the core reaches C1E.",
		Run: func(w io.Writer, s Scale) error {
			_, err := fmt.Fprintln(w, experiments.RunSMTCoScheduling(s))
			return err
		},
	},
	"ext-ule": {
		ID: "ext-ule", Title: "Extension: scheduler generality (ULE)",
		Summary: "Footnote 2's claim — identical trade-offs under a ULE-style per-CPU-queue scheduler.",
		Run: func(w io.Writer, s Scale) error {
			_, err := fmt.Fprintln(w, experiments.RunULEComparison(s))
			return err
		},
	},
	"ext-emergency": {
		ID: "ext-emergency", Title: "Extension: cooling failure vs reactive DTM",
		Summary: "§1's framing — preventive control keeps the PROCHOT/TM1 backstop dormant under a fan failure.",
		Run: func(w io.Writer, s Scale) error {
			_, err := fmt.Fprintln(w, experiments.RunEmergencyScenario(s))
			return err
		},
	},
}

// ExperimentIDs returns the experiment identifiers in stable order.
func ExperimentIDs() []string {
	ids := make([]string, 0, len(Experiments))
	for id := range Experiments {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Export runs the identified experiment and writes plot-ready CSV files into
// dir, returning the written paths. Every experiment ID in Experiments is
// exportable.
func Export(id string, scale Scale, dir string) ([]string, error) {
	return experiments.Export(id, scale, dir)
}

// --- Scenario engine (beyond the paper's fixed evaluation) ---

// ScenarioSpec re-exports the scenario engine's declarative specification;
// see internal/scenario for the field reference and DESIGN.md §7 for the
// model.
type ScenarioSpec = scenario.Spec

// ScenarioResult is one executed fleet scenario.
type ScenarioResult = scenario.Result

// ScenarioNames returns the registered scenario names in stable order.
func ScenarioNames() []string { return scenario.Names() }

// LookupScenario returns the named registered scenario spec.
func LookupScenario(name string) (*ScenarioSpec, bool) { return scenario.Get(name) }

// RegisterScenario validates and adds a scenario to the registry.
func RegisterScenario(s *ScenarioSpec) error { return scenario.Register(s) }

// DecodeScenario parses and validates a JSON scenario spec.
func DecodeScenario(data []byte) (*ScenarioSpec, error) { return scenario.Decode(data) }

// RunScenario executes the named registered scenario's fleet across the
// worker pool (see SetJobs) and returns the aggregated result. Output is
// byte-identical at any parallelism level.
func RunScenario(name string, scale Scale) (*ScenarioResult, error) {
	return scenario.RunByName(name, float64(scale))
}

// RunScenarioSpec executes an ad-hoc (possibly unregistered) scenario spec.
func RunScenarioSpec(s *ScenarioSpec, scale Scale) (*ScenarioResult, error) {
	return scenario.Run(s, float64(scale))
}

// RunScenarioBatched executes the named registered scenario through the
// batched fleet engine: homogeneous machines share compiled propagator
// ladders and step out of structure-of-arrays slabs, and provably
// seed-insensitive configurations simulate once per group. Output is
// byte-identical to RunScenario at any -jobs setting (cmd/dimctl exposes it
// as `scenario run -batched`).
func RunScenarioBatched(name string, scale Scale) (*ScenarioResult, error) {
	return scenario.RunBatchedByName(name, float64(scale))
}

// MegaScenarioResult is a tiled mega-fleet scenario run — the fleet summary
// without the per-machine materialisation.
type MegaScenarioResult = scenario.MegaResult

// RunMegaScenario executes the named registered scenario tiled out to the
// given fleet size (machine i replicates compiled trial i mod fleet), so a
// million-machine summary costs one batched base-fleet run plus an
// index-ordered aggregation pass. cmd/dimctl exposes it as `scenario mega`.
func RunMegaScenario(name string, machines int, scale Scale) (*MegaScenarioResult, error) {
	return scenario.RunMegaByName(name, machines, float64(scale))
}

// BatchCacheStats reports the batched engine's cross-run dedup cache
// counters (hits, misses, live entries).
func BatchCacheStats() (hits, misses uint64, entries int) { return scenario.BatchCacheStats() }

// ExportScenario runs the named scenario and writes its per-machine and
// fleet-aggregate CSVs into dir. Scheduled scenarios route through the
// fleetsched engine and additionally export the per-job ledger.
func ExportScenario(name string, scale Scale, dir string) ([]string, error) {
	if s, ok := scenario.Get(name); ok && s.Scheduler != nil {
		return fleetsched.Export(name, float64(scale), dir)
	}
	return scenario.Export(name, float64(scale), dir)
}

// ExportScenarioBatched is ExportScenario through the batched fleet engine —
// byte-identical files. Scheduled scenarios still route through fleetsched
// (batching does not apply to coupled fleets).
func ExportScenarioBatched(name string, scale Scale, dir string) ([]string, error) {
	if s, ok := scenario.Get(name); ok && s.Scheduler != nil {
		return fleetsched.Export(name, float64(scale), dir)
	}
	return scenario.ExportBatched(name, float64(scale), dir)
}

// --- Fleet scheduler (thermal-aware placement across the fleet) ---

// SchedResult is one scheduled scenario executed under one placement policy
// by the fleetsched cross-machine engine.
type SchedResult = fleetsched.Result

// SchedComparison is one scheduled scenario swept over every placement
// policy against identical arrival streams.
type SchedComparison = fleetsched.Comparison

// SchedPolicyNames returns the placement policies in canonical order.
func SchedPolicyNames() []string { return fleetsched.Names() }

// ValidSchedPolicy reports whether name is a known placement policy.
func ValidSchedPolicy(name string) bool { return scenario.ValidPlacementPolicy(name) }

// RunSchedScenario executes the named scheduled scenario under the given
// placement policy (empty selects the spec's default). Output is
// byte-identical at any -jobs setting.
func RunSchedScenario(name, policy string, scale Scale) (*SchedResult, error) {
	return fleetsched.RunByName(name, policy, float64(scale))
}

// CompareSchedScenario sweeps the named scheduled scenario over every
// placement policy.
func CompareSchedScenario(name string, scale Scale) (*SchedComparison, error) {
	return fleetsched.CompareByName(name, float64(scale))
}

// ExportSchedComparison writes the policy-comparison CSV into dir.
func ExportSchedComparison(c *SchedComparison, dir string) ([]string, error) {
	return fleetsched.ExportComparison(c, dir)
}

// ExportSchedResult writes one scheduled run's per-machine, fleet and
// per-job CSVs into dir.
func ExportSchedResult(r *SchedResult, dir string) ([]string, error) {
	return fleetsched.ExportResult(r, dir)
}

// ExportSchedScenario runs the named scheduled scenario under its default
// policy and writes its per-machine, fleet and per-job CSVs into dir.
func ExportSchedScenario(name string, scale Scale, dir string) ([]string, error) {
	return fleetsched.Export(name, float64(scale), dir)
}

// --- Simulation-as-a-service (the dimd daemon core) ---

// ServiceConfig sizes the simulation service; see internal/service.Config.
type ServiceConfig = service.Config

// SimService is the daemon core behind cmd/dimd: job queue, worker pool,
// content-addressed result cache, telemetry streaming and the HTTP API.
type SimService = service.Service

// NewService builds a running simulation service with the full experiment
// table enabled alongside scenario and sched jobs. It panics if a durable
// config fails to open its data directory — use OpenService to handle that.
func NewService(cfg ServiceConfig) *SimService {
	cfg.Experiments = ServiceExperiments()
	return service.New(cfg)
}

// OpenService is NewService with durable-recovery error handling: when
// cfg.DataDir is set it replays the job journal, warms the result cache from
// persisted artifacts and re-enqueues interrupted jobs before returning.
func OpenService(cfg ServiceConfig) (*SimService, error) {
	cfg.Experiments = ServiceExperiments()
	return service.Open(cfg)
}

// ServiceExperiments adapts the experiment table for the service daemon:
// Run produces exactly the bytes `dimctl run` writes between its banners,
// Render exactly the files `dimctl export` writes.
func ServiceExperiments() service.ExperimentSource {
	return service.ExperimentSource{
		IDs: ExperimentIDs,
		Run: func(id string, scale float64) (string, error) {
			e, ok := Experiments[id]
			if !ok {
				return "", fmt.Errorf("unknown experiment %q", id)
			}
			var b strings.Builder
			if err := e.Run(&b, Scale(scale)); err != nil {
				return "", err
			}
			return b.String(), nil
		},
		Render: func(id string, scale float64) ([]export.File, error) {
			return experiments.Render(id, Scale(scale))
		},
	}
}
