#!/usr/bin/env bash
# loadtest.sh — boot a real dimd daemon, drive N concurrent scenario
# submissions through the HTTP API, and record serving throughput into
# BENCH_results.json alongside the benchmark suite's numbers.
#
# Two phases, both at LANES-way concurrency:
#   cold   LANES distinct specs (every job simulates)
#   warm   the same specs again (every job is a content-addressed cache hit)
#
# Usage:
#   scripts/loadtest.sh
#   LANES=128 scripts/loadtest.sh
#
# Environment:
#   LANES   concurrent submission lanes (default 64)
#   OUT     results file to merge into (default BENCH_results.json)
set -euo pipefail
cd "$(dirname "$0")/.."

LANES="${LANES:-64}"
OUT="${OUT:-BENCH_results.json}"

work="$(mktemp -d)"
DPID=""
LANE_PIDS=()
PIDFILE="${TMPDIR:-/tmp}/dimd-loadtest.pid"

# Cleanup must run on interrupt as well as normal exit: an orphaned dimd (or
# a herd of orphaned dimctl lanes) from a ^C'd loadtest would poison the next
# run's numbers and hold the port.
cleanup() {
    trap - INT TERM EXIT
    for pid in "${LANE_PIDS[@]:-}"; do
        [[ -n "$pid" ]] && kill "$pid" 2>/dev/null || true
    done
    if [[ -n "$DPID" ]]; then
        kill "$DPID" 2>/dev/null || true
        wait "$DPID" 2>/dev/null || true
    fi
    rm -f "$PIDFILE"
    rm -rf "$work"
}
trap cleanup INT TERM EXIT

# Stale-pid check: refuse to stack a second loadtest daemon on a live one,
# and clear the marker a crashed run left behind.
if [[ -f "$PIDFILE" ]]; then
    oldpid="$(cat "$PIDFILE" 2>/dev/null || true)"
    if [[ -n "$oldpid" ]] && kill -0 "$oldpid" 2>/dev/null; then
        echo "loadtest: a previous loadtest dimd (pid $oldpid) is still running; kill it or remove $PIDFILE" >&2
        trap - INT TERM EXIT
        rm -rf "$work"
        exit 1
    fi
    echo "loadtest: clearing stale pid file (pid ${oldpid:-?} is gone)"
    rm -f "$PIDFILE"
fi

echo "loadtest: building dimd + dimctl"
go build -o "$work/dimd" ./cmd/dimd
go build -o "$work/dimctl" ./cmd/dimctl

"$work/dimd" -addr 127.0.0.1:0 -queue "$((LANES * 2))" >"$work/dimd.log" 2>&1 &
DPID=$!
echo "$DPID" > "$PIDFILE"
for _ in $(seq 1 100); do
    ADDR="$(sed -n 's/^dimd: serving on \([0-9.:]*\).*/\1/p' "$work/dimd.log")"
    [[ -n "$ADDR" ]] && break
    sleep 0.1
done
if [[ -z "${ADDR:-}" ]]; then
    echo "loadtest: dimd never came up:" >&2
    cat "$work/dimd.log" >&2
    exit 1
fi
BASE="http://$ADDR"
echo "loadtest: dimd on $BASE, $LANES lanes"

# Per-lane spec: one tiny machine, distinct seed -> distinct content address.
for i in $(seq 1 "$LANES"); do
    cat > "$work/spec-$i.json" <<EOF
{
  "name": "loadtest-lane",
  "duration_s": 2,
  "fleet": {"machines": 1, "base_seed": $((7000 + i))},
  "machine": {"cores": 1},
  "workload": [{"kind": "burn", "threads": 1}]
}
EOF
done

phase() {
    local label="$1"
    local start end
    # Lane pids live in the global array so an interrupt mid-phase still
    # reaps every in-flight dimctl.
    LANE_PIDS=()
    start=$(date +%s.%N)
    for i in $(seq 1 "$LANES"); do
        "$work/dimctl" remote run -addr "$BASE" -spec "$work/spec-$i.json" \
            >"$work/$label-$i.out" 2>"$work/$label-$i.err" &
        LANE_PIDS+=("$!")
    done
    local failed=0
    for pid in "${LANE_PIDS[@]}"; do
        wait "$pid" || failed=1
    done
    LANE_PIDS=()
    end=$(date +%s.%N)
    if [[ $failed -ne 0 ]]; then
        echo "loadtest: $label phase had failures:" >&2
        cat "$work/$label"-*.err >&2
        exit 1
    fi
    awk -v s="$start" -v e="$end" -v n="$LANES" 'BEGIN { printf "%.6f %.3f\n", e - s, n / (e - s) }'
}

echo "loadtest: cold phase ($LANES distinct specs)"
read -r COLD_S COLD_JPS < <(phase cold)
echo "loadtest: cold  $COLD_S s  ->  $COLD_JPS jobs/s"

echo "loadtest: warm phase (same specs, cache hits)"
read -r WARM_S WARM_JPS < <(phase warm)
echo "loadtest: warm  $WARM_S s  ->  $WARM_JPS jobs/s"

# Every warm lane must report a cache hit — otherwise the content-addressed
# cache is broken and the warm number is meaningless.
hits=$( (grep -l '\[cached\]' "$work"/warm-*.out || true) | wc -l)
if [[ "$hits" -ne "$LANES" ]]; then
    echo "loadtest: only $hits/$LANES warm lanes hit the cache" >&2
    exit 1
fi

# Scrape the latency histograms before shutdown: every lane's POST /v1/jobs
# landed in dimd_submit_latency_seconds and every Wait's stream connection in
# dimd_stream_latency_seconds, so the percentiles below summarise this exact
# load.
"$work/dimctl" remote metrics -addr "$BASE" > "$work/metrics.txt"

# Graceful shutdown check rides along: SIGTERM must drain cleanly.
kill -TERM "$DPID"
if ! wait "$DPID"; then
    echo "loadtest: dimd exited non-zero on SIGTERM" >&2
    exit 1
fi
DPID=""
grep -q "drained, bye" "$work/dimd.log" || { echo "loadtest: no clean drain marker" >&2; exit 1; }

python3 - "$OUT" "$LANES" "$COLD_S" "$COLD_JPS" "$WARM_S" "$WARM_JPS" "$work/metrics.txt" <<'EOF'
import json, re, sys

out, lanes, cold_s, cold_jps, warm_s, warm_jps, metrics_path = sys.argv[1:]
try:
    with open(out) as f:
        results = json.load(f)
except FileNotFoundError:
    results = {}

def entry(total_s, jps):
    # ns_op = serving time per job, so the entry is shape-compatible with
    # the benchmark records around it.
    return {
        "ns_op": round(float(total_s) * 1e9 / int(lanes), 1),
        "allocs_op": None,
        "lanes": int(lanes),
        "jobs_per_s": round(float(jps), 3),
    }

results["ServiceLoadtest/cold"] = entry(cold_s, cold_jps)
results["ServiceLoadtest/warm"] = entry(warm_s, warm_jps)

def histogram(text, name):
    # Cumulative bucket counts in le order, +Inf last, as exposed.
    pat = re.compile(r'^%s_bucket\{le="([^"]+)"\} (\d+)$' % re.escape(name), re.M)
    return [(float("inf") if le == "+Inf" else float(le), int(n))
            for le, n in pat.findall(text)]

def quantile(buckets, q):
    # Linear interpolation inside the winning bucket — the same estimate
    # obs.Histogram.Quantile computes server-side.
    if not buckets:
        return None
    total = buckets[-1][1]
    if total == 0:
        return None
    rank = q * total
    prev_le, prev_n = 0.0, 0
    for le, n in buckets:
        if n >= rank:
            if le == float("inf"):
                return prev_le
            frac = (rank - prev_n) / max(n - prev_n, 1)
            return prev_le + (le - prev_le) * frac
        prev_le, prev_n = le, n
    return prev_le

with open(metrics_path) as f:
    metrics = f.read()

for key, metric in [("submit", "dimd_submit_latency_seconds"),
                    ("stream", "dimd_stream_latency_seconds")]:
    buckets = histogram(metrics, metric)
    count = buckets[-1][1] if buckets else 0
    if count == 0:
        print(f"loadtest: WARNING: {metric} recorded no samples", file=sys.stderr)
        sys.exit(1)
    rec = {"ns_op": None, "allocs_op": None, "samples": count}
    for q, label in [(0.5, "p50_us"), (0.95, "p95_us"), (0.99, "p99_us")]:
        rec[label] = round(quantile(buckets, q) * 1e6, 1)
    results[f"ServiceLoadtest/{key}_latency"] = rec
    print(f"loadtest: {key} latency p50={rec['p50_us']}us "
          f"p95={rec['p95_us']}us p99={rec['p99_us']}us ({count} samples)")

with open(out, "w") as f:
    f.write("{\n")
    keys = list(results)
    for i, k in enumerate(keys):
        comma = "," if i < len(keys) - 1 else ""
        f.write(f'  "{k}": {json.dumps(results[k])}{comma}\n')
    f.write("}\n")
print(f"loadtest: recorded ServiceLoadtest cold/warm + latency percentiles into {out}")
EOF
