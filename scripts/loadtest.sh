#!/usr/bin/env bash
# loadtest.sh — boot a real dimd daemon, drive N concurrent scenario
# submissions through the HTTP API, and record serving throughput into
# BENCH_results.json alongside the benchmark suite's numbers.
#
# Two phases, both at LANES-way concurrency:
#   cold   LANES distinct specs (every job simulates)
#   warm   the same specs again (every job is a content-addressed cache hit)
#
# Usage:
#   scripts/loadtest.sh
#   LANES=128 scripts/loadtest.sh
#
# After the single-node phases, a cluster phase boots a coordinator plus
# CLUSTER_WORKERS worker daemons, measures distributed scaling against a solo
# baseline, then kill -9s one worker mid-job and measures how long the
# lease-recovery machinery takes to finish the job anyway.
#
# Environment:
#   LANES             concurrent submission lanes (default 64)
#   OUT               results file to merge into (default BENCH_results.json)
#   CLUSTER_WORKERS   worker daemons in the cluster phase (default 2)
#   CLUSTER_MACHINES  fleet size of the cluster-phase job (default 256)
set -euo pipefail
cd "$(dirname "$0")/.."

LANES="${LANES:-64}"
OUT="${OUT:-BENCH_results.json}"
CLUSTER_WORKERS="${CLUSTER_WORKERS:-2}"
CLUSTER_MACHINES="${CLUSTER_MACHINES:-256}"

work="$(mktemp -d)"
DPID=""
CPID=""
LANE_PIDS=()
WORKER_PIDS=()
PIDFILE="${TMPDIR:-/tmp}/dimd-loadtest.pid"

# Cleanup must run on interrupt as well as normal exit: an orphaned dimd (or
# a herd of orphaned dimctl lanes) from a ^C'd loadtest would poison the next
# run's numbers and hold the port.
cleanup() {
    trap - INT TERM EXIT
    for pid in "${LANE_PIDS[@]:-}"; do
        [[ -n "$pid" ]] && kill "$pid" 2>/dev/null || true
    done
    for pid in "${WORKER_PIDS[@]:-}"; do
        [[ -n "$pid" ]] && kill -9 "$pid" 2>/dev/null || true
    done
    if [[ -n "$CPID" ]]; then
        kill "$CPID" 2>/dev/null || true
        wait "$CPID" 2>/dev/null || true
    fi
    if [[ -n "$DPID" ]]; then
        kill "$DPID" 2>/dev/null || true
        wait "$DPID" 2>/dev/null || true
    fi
    rm -f "$PIDFILE"
    rm -rf "$work"
}
trap cleanup INT TERM EXIT

# Stale-pid check: refuse to stack a second loadtest daemon on a live one,
# and clear the marker a crashed run left behind.
if [[ -f "$PIDFILE" ]]; then
    oldpid="$(cat "$PIDFILE" 2>/dev/null || true)"
    if [[ -n "$oldpid" ]] && kill -0 "$oldpid" 2>/dev/null; then
        echo "loadtest: a previous loadtest dimd (pid $oldpid) is still running; kill it or remove $PIDFILE" >&2
        trap - INT TERM EXIT
        rm -rf "$work"
        exit 1
    fi
    echo "loadtest: clearing stale pid file (pid ${oldpid:-?} is gone)"
    rm -f "$PIDFILE"
fi

echo "loadtest: building dimd + dimctl"
go build -o "$work/dimd" ./cmd/dimd
go build -o "$work/dimctl" ./cmd/dimctl

"$work/dimd" -addr 127.0.0.1:0 -queue "$((LANES * 2))" >"$work/dimd.log" 2>&1 &
DPID=$!
echo "$DPID" > "$PIDFILE"
for _ in $(seq 1 100); do
    ADDR="$(sed -n 's/^dimd: serving on \([0-9.:]*\).*/\1/p' "$work/dimd.log")"
    [[ -n "$ADDR" ]] && break
    sleep 0.1
done
if [[ -z "${ADDR:-}" ]]; then
    echo "loadtest: dimd never came up:" >&2
    cat "$work/dimd.log" >&2
    exit 1
fi
BASE="http://$ADDR"
echo "loadtest: dimd on $BASE, $LANES lanes"

# Per-lane spec: one tiny machine, distinct seed -> distinct content address.
for i in $(seq 1 "$LANES"); do
    cat > "$work/spec-$i.json" <<EOF
{
  "name": "loadtest-lane",
  "duration_s": 2,
  "fleet": {"machines": 1, "base_seed": $((7000 + i))},
  "machine": {"cores": 1},
  "workload": [{"kind": "burn", "threads": 1}]
}
EOF
done

phase() {
    local label="$1"
    local start end
    # Lane pids live in the global array so an interrupt mid-phase still
    # reaps every in-flight dimctl.
    LANE_PIDS=()
    start=$(date +%s.%N)
    for i in $(seq 1 "$LANES"); do
        "$work/dimctl" remote run -addr "$BASE" -spec "$work/spec-$i.json" \
            >"$work/$label-$i.out" 2>"$work/$label-$i.err" &
        LANE_PIDS+=("$!")
    done
    local failed=0
    for pid in "${LANE_PIDS[@]}"; do
        wait "$pid" || failed=1
    done
    LANE_PIDS=()
    end=$(date +%s.%N)
    if [[ $failed -ne 0 ]]; then
        echo "loadtest: $label phase had failures:" >&2
        cat "$work/$label"-*.err >&2
        exit 1
    fi
    awk -v s="$start" -v e="$end" -v n="$LANES" 'BEGIN { printf "%.6f %.3f\n", e - s, n / (e - s) }'
}

# snapshot_probe OUTFILE -> "seconds bytes" for one GET /v1/snapshot capture.
snapshot_probe() {
    local out="$1" start end
    start=$(date +%s.%N)
    "$work/dimctl" snapshot -addr "$BASE" -out "$out" >/dev/null
    end=$(date +%s.%N)
    awk -v s="$start" -v e="$end" -v b="$(wc -c < "$out")" \
        'BEGIN { printf "%.6f %d\n", e - s, b }'
}

# Cold capture: a fresh daemon with an empty job table — the floor for
# snapshot latency and artifact size.
read -r SNAP_COLD_S SNAP_COLD_B < <(snapshot_probe "$work/snap-cold.json")
echo "loadtest: snapshot cold   $SNAP_COLD_S s  $SNAP_COLD_B bytes"

echo "loadtest: cold phase ($LANES distinct specs)"
read -r COLD_S COLD_JPS < <(phase cold)
echo "loadtest: cold  $COLD_S s  ->  $COLD_JPS jobs/s"

echo "loadtest: warm phase (same specs, cache hits)"
read -r WARM_S WARM_JPS < <(phase warm)
echo "loadtest: warm  $WARM_S s  ->  $WARM_JPS jobs/s"

# Every warm lane must report a cache hit — otherwise the content-addressed
# cache is broken and the warm number is meaningless.
hits=$( (grep -l '\[cached\]' "$work"/warm-*.out || true) | wc -l)
if [[ "$hits" -ne "$LANES" ]]; then
    echo "loadtest: only $hits/$LANES warm lanes hit the cache" >&2
    exit 1
fi

# Loaded capture: the job table now retains every lane's job (with machine
# states and heat rows), so this is snapshot latency and size under load —
# the incident-response case, where capture must stay cheap enough to fire
# from a breach handler.
read -r SNAP_LOAD_S SNAP_LOAD_B < <(snapshot_probe "$work/snap-loaded.json")
echo "loadtest: snapshot loaded $SNAP_LOAD_S s  $SNAP_LOAD_B bytes"

# Scrape the latency histograms before shutdown: every lane's POST /v1/jobs
# landed in dimd_submit_latency_seconds and every Wait's stream connection in
# dimd_stream_latency_seconds, so the percentiles below summarise this exact
# load.
"$work/dimctl" remote metrics -addr "$BASE" > "$work/metrics.txt"

# Graceful shutdown check rides along: SIGTERM must drain cleanly.
kill -TERM "$DPID"
if ! wait "$DPID"; then
    echo "loadtest: dimd exited non-zero on SIGTERM" >&2
    exit 1
fi
DPID=""
grep -q "drained, bye" "$work/dimd.log" || { echo "loadtest: no clean drain marker" >&2; exit 1; }

# ---------------------------------------------------------------------------
# Cluster phase: scaling + worker-kill recovery.
# ---------------------------------------------------------------------------

# boot_dimd LOGFILE FLAGS... -> sets BOOT_PID and BOOT_ADDR.
boot_dimd() {
    local log="$1"; shift
    "$work/dimd" -addr 127.0.0.1:0 "$@" >"$log" 2>&1 &
    BOOT_PID=$!
    BOOT_ADDR=""
    for _ in $(seq 1 100); do
        BOOT_ADDR="$(sed -n 's/^dimd: serving on \([0-9.:]*\).*/\1/p' "$log")"
        [[ -n "$BOOT_ADDR" ]] && return 0
        sleep 0.1
    done
    echo "loadtest: daemon ($*) never came up:" >&2
    cat "$log" >&2
    exit 1
}

# Two distinct specs (different seeds -> different content addresses): one
# for the scaling measurement, one for the kill-recovery run, so the second
# can never ride the first's cache entry.
for seed in 9100 9101; do
    cat > "$work/cluster-spec-$seed.json" <<EOF
{
  "name": "loadtest-cluster",
  "duration_s": 600,
  "fleet": {"machines": $CLUSTER_MACHINES, "base_seed": $seed},
  "machine": {"cores": 2},
  "workload": [{"kind": "burn", "threads": 1}]
}
EOF
done

timed_run() {
    local base="$1" spec="$2" out="$3"
    local start end
    start=$(date +%s.%N)
    "$work/dimctl" remote run -addr "$base" -spec "$spec" >"$out" 2>"$out.err" \
        || { echo "loadtest: cluster-phase run failed:" >&2; cat "$out.err" >&2; exit 1; }
    end=$(date +%s.%N)
    awk -v s="$start" -v e="$end" 'BEGIN { printf "%.6f\n", e - s }'
}

echo "loadtest: cluster solo baseline ($CLUSTER_MACHINES machines, single node)"
boot_dimd "$work/solo.log"
DPID=$BOOT_PID
SOLO_S=$(timed_run "http://$BOOT_ADDR" "$work/cluster-spec-9100.json" "$work/cluster-solo.out")
kill -TERM "$DPID"; wait "$DPID" || { echo "loadtest: solo daemon bad exit" >&2; exit 1; }
DPID=""
echo "loadtest: solo   $SOLO_S s"

echo "loadtest: booting $CLUSTER_WORKERS workers + coordinator"
WORKER_PIDS=()
WORKER_URLS=""
for i in $(seq 1 "$CLUSTER_WORKERS"); do
    boot_dimd "$work/worker-$i.log" -role worker
    WORKER_PIDS+=("$BOOT_PID")
    WORKER_URLS="$WORKER_URLS${WORKER_URLS:+,}http://$BOOT_ADDR"
done
boot_dimd "$work/coordinator.log" -role coordinator -cluster-workers "$WORKER_URLS" \
    -lease-ttl 2s -heartbeat-every 200ms
CPID=$BOOT_PID
CBASE="http://$BOOT_ADDR"

CLUSTER_S=$(timed_run "$CBASE" "$work/cluster-spec-9100.json" "$work/cluster-dist.out")
echo "loadtest: cluster $CLUSTER_S s ($CLUSTER_WORKERS workers)"

# Recovery: start the second job, wait until the first worker holds a shard
# lease, then SIGKILL it. The coordinator must finish the job regardless;
# recovery latency is kill-to-completion wall time.
echo "loadtest: kill-one-worker recovery run"
VICTIM_PID="${WORKER_PIDS[0]}"
VICTIM_URL="${WORKER_URLS%%,*}"
DISRUPT_START=$(date +%s.%N)
"$work/dimctl" remote run -addr "$CBASE" -spec "$work/cluster-spec-9101.json" \
    >"$work/cluster-kill.out" 2>"$work/cluster-kill.err" &
LANE_PIDS=("$!")
for _ in $(seq 1 200); do
    "$work/dimctl" remote cluster -addr "$CBASE" 2>/dev/null \
        | grep -F "$VICTIM_URL" | grep -Eq 'inflight=[1-9]' && break
    sleep 0.02
done
kill -9 "$VICTIM_PID" 2>/dev/null || true
KILL_T=$(date +%s.%N)
if ! wait "${LANE_PIDS[0]}"; then
    echo "loadtest: recovery run failed:" >&2
    cat "$work/cluster-kill.err" >&2
    exit 1
fi
LANE_PIDS=()
DISRUPT_END=$(date +%s.%N)
RECOVER_S=$(awk -v k="$KILL_T" -v e="$DISRUPT_END" 'BEGIN { printf "%.6f", e - k }')
DISRUPT_S=$(awk -v s="$DISRUPT_START" -v e="$DISRUPT_END" 'BEGIN { printf "%.6f", e - s }')
RETRIES=$("$work/dimctl" remote metrics -addr "$CBASE" \
    | awk '$1 == "dimd_cluster_shard_retries_total" { print $2 }')
RETRIES="${RETRIES:-0}"
echo "loadtest: recovery $RECOVER_S s after kill (disrupted run $DISRUPT_S s, $RETRIES shard retries)"

kill -TERM "$CPID"; wait "$CPID" || { echo "loadtest: coordinator bad exit" >&2; exit 1; }
CPID=""
for pid in "${WORKER_PIDS[@]}"; do
    kill -TERM "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
done
WORKER_PIDS=()

python3 - "$OUT" "$LANES" "$COLD_S" "$COLD_JPS" "$WARM_S" "$WARM_JPS" "$work/metrics.txt" \
    "$CLUSTER_WORKERS" "$SOLO_S" "$CLUSTER_S" "$RECOVER_S" "$DISRUPT_S" "$RETRIES" \
    "$SNAP_COLD_S" "$SNAP_COLD_B" "$SNAP_LOAD_S" "$SNAP_LOAD_B" <<'EOF'
import json, re, sys

(out, lanes, cold_s, cold_jps, warm_s, warm_jps, metrics_path,
 cluster_workers, solo_s, cluster_s, recover_s, disrupt_s, retries,
 snap_cold_s, snap_cold_b, snap_load_s, snap_load_b) = sys.argv[1:]
try:
    with open(out) as f:
        results = json.load(f)
except FileNotFoundError:
    results = {}

def entry(total_s, jps):
    # ns_op = serving time per job, so the entry is shape-compatible with
    # the benchmark records around it.
    return {
        "ns_op": round(float(total_s) * 1e9 / int(lanes), 1),
        "allocs_op": None,
        "lanes": int(lanes),
        "jobs_per_s": round(float(jps), 3),
    }

results["ServiceLoadtest/cold"] = entry(cold_s, cold_jps)
results["ServiceLoadtest/warm"] = entry(warm_s, warm_jps)

# Cluster phase: the solo/cluster pair yields scaling efficiency (ideal = 1.0
# at cluster_s == solo_s / workers; on one host the workers share cores, so
# treat this as a regression tripwire, not an absolute), and the kill run
# yields recovery latency — SIGKILL of a lease-holding worker to job done.
w = int(cluster_workers)
results["ClusterLoadtest/solo"] = {
    "ns_op": round(float(solo_s) * 1e9, 1), "allocs_op": None,
}
results["ClusterLoadtest/cluster"] = {
    "ns_op": round(float(cluster_s) * 1e9, 1), "allocs_op": None,
    "workers": w,
    "scaling_efficiency": round(float(solo_s) / (float(cluster_s) * w), 3),
}
results["ClusterLoadtest/worker_kill_recovery"] = {
    "ns_op": round(float(recover_s) * 1e9, 1), "allocs_op": None,
    "recovery_s": round(float(recover_s), 3),
    "disrupted_run_s": round(float(disrupt_s), 3),
    "shard_retries": int(float(retries)),
}

# Snapshot capture: one GET /v1/snapshot on the fresh daemon ("cold") and one
# after both submission phases, when the job table retains every lane's job
# ("loaded") — the incident-dump case. Latency is end-to-end through dimctl
# (capture + serialisation + write); bytes is the artifact on disk.
for key, s, b in [("cold", snap_cold_s, snap_cold_b),
                  ("loaded", snap_load_s, snap_load_b)]:
    results[f"SnapshotCapture/{key}"] = {
        "ns_op": round(float(s) * 1e9, 1), "allocs_op": None,
        "capture_s": round(float(s), 4),
        "artifact_bytes": int(b),
    }

def histogram(text, name):
    # Cumulative bucket counts in le order, +Inf last, as exposed.
    pat = re.compile(r'^%s_bucket\{le="([^"]+)"\} (\d+)$' % re.escape(name), re.M)
    return [(float("inf") if le == "+Inf" else float(le), int(n))
            for le, n in pat.findall(text)]

def quantile(buckets, q):
    # Linear interpolation inside the winning bucket — the same estimate
    # obs.Histogram.Quantile computes server-side.
    if not buckets:
        return None
    total = buckets[-1][1]
    if total == 0:
        return None
    rank = q * total
    prev_le, prev_n = 0.0, 0
    for le, n in buckets:
        if n >= rank:
            if le == float("inf"):
                return prev_le
            frac = (rank - prev_n) / max(n - prev_n, 1)
            return prev_le + (le - prev_le) * frac
        prev_le, prev_n = le, n
    return prev_le

with open(metrics_path) as f:
    metrics = f.read()

for key, metric in [("submit", "dimd_submit_latency_seconds"),
                    ("stream", "dimd_stream_latency_seconds")]:
    buckets = histogram(metrics, metric)
    count = buckets[-1][1] if buckets else 0
    if count == 0:
        print(f"loadtest: WARNING: {metric} recorded no samples", file=sys.stderr)
        sys.exit(1)
    rec = {"ns_op": None, "allocs_op": None, "samples": count}
    for q, label in [(0.5, "p50_us"), (0.95, "p95_us"), (0.99, "p99_us")]:
        rec[label] = round(quantile(buckets, q) * 1e6, 1)
    results[f"ServiceLoadtest/{key}_latency"] = rec
    print(f"loadtest: {key} latency p50={rec['p50_us']}us "
          f"p95={rec['p95_us']}us p99={rec['p99_us']}us ({count} samples)")

with open(out, "w") as f:
    f.write("{\n")
    keys = list(results)
    for i, k in enumerate(keys):
        comma = "," if i < len(keys) - 1 else ""
        f.write(f'  "{k}": {json.dumps(results[k])}{comma}\n')
    f.write("}\n")
eff = results["ClusterLoadtest/cluster"]["scaling_efficiency"]
rec_s = results["ClusterLoadtest/worker_kill_recovery"]["recovery_s"]
print(f"loadtest: cluster scaling efficiency {eff} over {w} workers, "
      f"worker-kill recovery {rec_s}s")
print(f"loadtest: recorded ServiceLoadtest + ClusterLoadtest into {out}")
EOF
