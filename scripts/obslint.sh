#!/usr/bin/env bash
# obslint.sh — forbid hand-rolled Prometheus exposition outside internal/obs.
#
# Every metric must go through the obs registry (obs.Registry / obs.Collect):
# the golden exposition test and the CI smoke greps pin exact names and types,
# and a stray fmt.Fprintf emitting "# HELP ..." or "dimd_... %d" in some
# handler would drift out from under them. internal/obs itself is the one
# place allowed to render exposition syntax; test files may assert on it.
#
# Exits non-zero listing each offending line.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# Exposition preamble literals ("# HELP", "# TYPE") outside internal/obs.
if out=$(grep -rn --include='*.go' -e '"# HELP' -e '"# TYPE' -e '# HELP %s' -e '# TYPE %s' . \
        | grep -v '^\./internal/obs/' \
        | grep -v '_test\.go:'); then
    echo "obslint: exposition preamble emitted outside internal/obs:" >&2
    echo "$out" >&2
    fail=1
fi

# Direct metric sample emission: a print call formatting a dimd_* sample line
# instead of registering the series with the obs registry.
if out=$(grep -rn --include='*.go' -E '(Fprintf|Sprintf|Printf|WriteString)\([^)]*"dimd_[a-z_]+(\{[^"]*\})? %' . \
        | grep -v '^\./internal/obs/' \
        | grep -v '_test\.go:'); then
    echo "obslint: direct dimd_* sample emission outside internal/obs:" >&2
    echo "$out" >&2
    fail=1
fi

# Layering: internal/cluster reports lease/health transitions through
# callbacks (OnEvent, onHealth) and the service layer translates them into
# registry metrics. A direct obs import in the coordinator would let shard
# accounting drift out from under the golden-pinned /metrics surface.
if out=$(grep -rn --include='*.go' '"repro/internal/obs"' internal/cluster 2>/dev/null \
        | grep -v '_test\.go:'); then
    echo "obslint: internal/cluster must not import internal/obs (report through callbacks; internal/service owns the metrics):" >&2
    echo "$out" >&2
    fail=1
fi

# Same layer, other direction: internal/cluster must not name dimd_* series
# either — the dimd_cluster_* family is minted by internal/service from the
# coordinator's callbacks, and a literal here would fork that vocabulary.
if out=$(grep -rn --include='*.go' '"dimd_' internal/cluster 2>/dev/null \
        | grep -v '_test\.go:'); then
    echo "obslint: internal/cluster must not name dimd_* metric series (the service layer mints dimd_cluster_* from its callbacks):" >&2
    echo "$out" >&2
    fail=1
fi

if [[ $fail -ne 0 ]]; then
    echo "obslint: route metrics through internal/obs (Registry.Counter/Gauge/Histogram/Text or Collect)" >&2
    exit 1
fi
echo "obslint: clean"
