#!/usr/bin/env bash
# bench_compare.sh — run a fresh benchmark pass and diff it against the
# committed BENCH_results.json, failing when any kernel benchmark regresses
# by more than the threshold. CI runs it as a non-blocking job: shared
# runners are noisy, so a failure is a flag for a human, not a gate.
#
# Usage:
#   scripts/bench_compare.sh              # compare kernel benchmarks
#   THRESHOLD_PCT=25 scripts/bench_compare.sh
#   KERNEL_PATTERN='Thermal' scripts/bench_compare.sh
#
# Environment:
#   THRESHOLD_PCT    allowed ns/op regression per benchmark (default 15)
#   KERNEL_PATTERN   which recorded benchmarks count as kernel benches
#                    (default: the thermal/runner micro-kernels)
#   BASELINE         baseline path (default BENCH_results.json)
set -euo pipefail
cd "$(dirname "$0")/.."

THRESHOLD_PCT="${THRESHOLD_PCT:-15}"
KERNEL_PATTERN="${KERNEL_PATTERN:-ThermalStep|ThermalLeap|SolveSteadyState|Runner}"
BASELINE="${BASELINE:-BENCH_results.json}"

if [[ ! -f "$BASELINE" ]]; then
    echo "bench_compare: no baseline at $BASELINE" >&2
    exit 2
fi

fresh="$(mktemp)"
trap 'rm -f "$fresh"' EXIT

# Kernel benches need time-based sampling for stable ns/op (the pattern
# path reuses HARNESS_BENCHTIME, whose 1x default suits whole-run harness
# benches, not nanosecond kernels).
BENCH_PATTERN="$KERNEL_PATTERN" HARNESS_BENCHTIME="${KERNEL_BENCHTIME:-1s}" OUT="$fresh" scripts/bench.sh >/dev/null

# Baseline entries are one per line: "Name": {"ns_op": X, "allocs_op": Y}.
awk -v thr="$THRESHOLD_PCT" -v pat="$KERNEL_PATTERN" '
    function parse(line, arr) {
        # "BenchmarkX": {"ns_op": 1.23, "allocs_op": 0},
        match(line, /"[^"]+"/)
        name = substr(line, RSTART + 1, RLENGTH - 2)
        if (match(line, /"ns_op":[^0-9+-]*[0-9.eE+-]+/)) {
            val = substr(line, RSTART, RLENGTH)
            match(val, /[0-9.eE+-]+$/)
            arr[name] = substr(val, RSTART, RLENGTH) + 0
        }
    }
    NR == FNR { if ($0 ~ /ns_op/) { parse($0, base) } next }
    /ns_op/ {
        parse($0, freshv)
        name = ""
        match($0, /"[^"]+"/)
        name = substr($0, RSTART + 1, RLENGTH - 2)
        if (name !~ ("Benchmark(" pat ")")) next
        if (!(name in base)) { printf "NEW      %-42s %12.2f ns/op\n", name, freshv[name]; next }
        old = base[name]; new = freshv[name]
        pct = (old > 0) ? 100 * (new - old) / old : 0
        status = "ok"
        if (pct > thr) { status = "REGRESSED"; bad = 1 }
        printf "%-9s %-42s %12.2f -> %12.2f ns/op (%+.1f%%)\n", status, name, old, new, pct
    }
    END { exit bad ? 1 : 0 }
' "$BASELINE" "$fresh" || rc=$?
rc=${rc:-0}
if [[ $rc -ne 0 ]]; then
    echo "bench_compare: kernel benchmark regressed more than ${THRESHOLD_PCT}% against $BASELINE" >&2
fi
exit $rc
