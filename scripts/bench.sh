#!/usr/bin/env bash
# bench.sh — run the repository's benchmark suite and record ns/op and
# allocs/op per benchmark into BENCH_results.json, so the performance
# trajectory is tracked across PRs.
#
# Usage:
#   scripts/bench.sh                 # harness + kernel benchmarks
#   BENCH_PATTERN='Figure3' scripts/bench.sh
#   HARNESS_BENCHTIME=3x scripts/bench.sh
#
# Environment:
#   BENCH_PATTERN      override the benchmark regex entirely
#   HARNESS_BENCHTIME  -benchtime for the full-harness benchmarks (default 1x:
#                      each iteration is a complete scaled experiment run)
#   MICRO_BENCHTIME    -benchtime for the kernel micro-benchmarks (default 1s)
#   OUT                output path (default BENCH_results.json)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${OUT:-BENCH_results.json}"
HARNESS_BENCHTIME="${HARNESS_BENCHTIME:-1x}"
MICRO_BENCHTIME="${MICRO_BENCHTIME:-1s}"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

if [[ -n "${BENCH_PATTERN:-}" ]]; then
    go test -run '^$' -bench "$BENCH_PATTERN" -benchmem -benchtime "$HARNESS_BENCHTIME" ./... | tee "$raw"
else
    # Full-harness benchmarks: one iteration reproduces a whole (scaled)
    # paper artefact, so a fixed iteration count keeps wall-clock sane.
    go test -run '^$' -bench 'Figure|Table|Validation|Ablation|Extension|SimulatorSteadySecond' \
        -benchmem -benchtime "$HARNESS_BENCHTIME" . | tee "$raw"
    # Fleet scenario engine: one iteration runs a whole scaled fleet, under
    # both the leap (default) and exact integrators.
    go test -run '^$' -bench 'FleetScenario' \
        -benchmem -benchtime "$HARNESS_BENCHTIME" ./internal/scenario/ | tee -a "$raw"
    # Mega fleet: the batched engine tiling fleet-diurnal to 100k machines
    # against the independent per-machine baseline; reports ns per fleet
    # member summarised and the cross-run dedup hit rate.
    go test -run '^$' -bench 'MegaFleet' \
        -benchmem -benchtime "$HARNESS_BENCHTIME" ./internal/scenario/ | tee -a "$raw"
    # Fleet scheduler: one iteration is a whole scheduled run under both
    # integrators (and the six-policy comparison sweep).
    go test -run '^$' -bench 'FleetSched' \
        -benchmem -benchtime "$HARNESS_BENCHTIME" ./internal/fleetsched/ | tee -a "$raw"
    # Kernel micro-benchmarks: cheap enough for time-based sampling.
    go test -run '^$' -bench 'ThermalStep|ThermalLeap|SolveSteadyState|Runner' \
        -benchmem -benchtime "$MICRO_BENCHTIME" ./internal/thermal/ ./internal/runner/ | tee -a "$raw"
    # Service daemon: the submit hot paths (cache hit vs full cold run) and
    # a streamed scheduled round-trip, over loopback HTTP.
    go test -run '^$' -bench 'ServiceSubmit|ServiceStream' \
        -benchmem -benchtime "$MICRO_BENCHTIME" ./internal/service/ | tee -a "$raw"
fi

awk '
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix
        found = 0
        for (i = 3; i <= NF; i++) {
            if ($i == "ns/op") { ns[name] = $(i - 1); found = 1 }
            if ($i == "allocs/op") { allocs[name] = $(i - 1) }
            if ($i == "ns/machine") { nsmach[name] = $(i - 1) }
            if ($i == "dedup-hit-pct") { dedup[name] = $(i - 1) }
            if ($i ~ /-ms\/run$/) {
                # Phase-profiler columns ("scenario.step-ms/run") from the
                # profiled fleet benchmark, folded into a phases_ms object.
                phase = $i
                sub(/-ms\/run$/, "", phase)
                sep = (name in phases) ? ", " : ""
                phases[name] = phases[name] sep sprintf("\"%s\": %s", phase, $(i - 1))
            }
        }
        if (!found) next
        if (!(name in allocs)) allocs[name] = "null"
        if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
    }
    END {
        printf "{\n"
        for (i = 1; i <= n; i++) {
            key = order[i]
            extra = ""
            if (key in nsmach) extra = extra sprintf(", \"ns_machine\": %s", nsmach[key])
            if (key in dedup) extra = extra sprintf(", \"dedup_hit_pct\": %s", dedup[key])
            if (key in phases) extra = extra sprintf(", \"phases_ms\": {%s}", phases[key])
            printf "  \"%s\": {\"ns_op\": %s, \"allocs_op\": %s%s}%s\n", \
                key, ns[key], allocs[key], extra, (i < n ? "," : "")
        }
        printf "}\n"
    }
' "$raw" > "$OUT"

echo "wrote $OUT ($(grep -c 'ns_op' "$OUT") benchmarks)"
