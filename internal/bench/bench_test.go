package bench

import "testing"

// TestMicrosSmoke runs every registered micro-benchmark body for one
// iteration — the tier-1 guard against bench-harness bit-rot that
// `dimctl bench` exposes to operators.
func TestMicrosSmoke(t *testing.T) {
	micros := Micros()
	if len(micros) < 5 {
		t.Fatalf("only %d micro-benchmarks registered", len(micros))
	}
	seen := map[string]bool{}
	for _, m := range micros {
		if m.Name == "" || m.Doc == "" || m.Run == nil {
			t.Fatalf("incomplete micro registration: %+v", m)
		}
		if seen[m.Name] {
			t.Fatalf("duplicate micro name %q", m.Name)
		}
		seen[m.Name] = true
		t.Run(m.Name, func(t *testing.T) {
			if err := m.Run(1); err != nil {
				t.Fatal(err)
			}
		})
	}
}
