// Package bench is the non-test registry of the repository's kernel
// micro-benchmarks. The testing-package benchmarks under scripts/bench.sh
// only compile and run when someone invokes `go test -bench`, so structural
// rot there used to surface late; these bodies mirror the same setups as
// plain functions, `dimctl bench` runs them in smoke mode (one iteration),
// and a tier-1 CLI test exercises that path on every `go test ./...`.
package bench

import (
	"context"
	"fmt"
	"net/http/httptest"
	"time"

	"repro/internal/fleetsched"
	"repro/internal/scenario"
	"repro/internal/service"
	"repro/internal/thermal"
	"repro/internal/units"
)

// Micro is one registered micro-benchmark body: Run performs iters
// iterations of the measured unit.
type Micro struct {
	Name string
	Doc  string
	Run  func(iters int) error
}

// KernelNetwork builds the micro-benchmark testbed topology — ambient
// boundary, heatsink, package, four junction nodes with a representative
// temperature-coupled heat input — and returns the package node alongside
// the junctions so callers never hardcode construction-order node ids. It
// is the single definition shared by `dimctl bench` and the testing-package
// benchmarks in internal/thermal, so both always measure the same kernel.
func KernelNetwork() (*thermal.Network, thermal.PowerFunc, thermal.NodeID, []thermal.NodeID) {
	n := thermal.NewNetwork()
	amb := n.AddBoundary("ambient", 25.2)
	sink := n.AddNode("heatsink", 170, 25.2)
	pkg := n.AddNode("package", 45, 25.2)
	n.Connect(sink, amb, 0.115)
	n.Connect(pkg, sink, 0.045)
	var junctions []thermal.NodeID
	for i := 0; i < 4; i++ {
		j := n.AddNode("junction", 0.0375, 25.2)
		n.Connect(j, pkg, 0.80)
		junctions = append(junctions, j)
	}
	power := func(temps []float64, out []float64) {
		out[pkg] += 15
		for _, j := range junctions {
			out[j] += 11 + 0.05*(temps[j]-25.2)
		}
	}
	return n, power, pkg, junctions
}

// LeapSource is the linearising heat source the leap benchmarks use,
// mirroring the chip model's shape: temperature-coupled heat with an
// analytic linearisation.
type LeapSource struct {
	Pkg       thermal.NodeID
	Junctions []thermal.NodeID
}

// HeatInput implements thermal.HeatSource.
func (s *LeapSource) HeatInput(temps, out []float64) {
	out[s.Pkg] += 15
	for _, j := range s.Junctions {
		out[j] += 11 + 0.05*(temps[j]-25.2)
	}
}

// HeatLinear implements thermal.QuiescentSource.
func (s *LeapSource) HeatLinear(temps, dT, dp []float64) {
	for _, j := range s.Junctions {
		dp[j] += 0.05 * dT[j]
	}
}

// Micros returns the registered kernel micro-benchmarks in run order.
func Micros() []Micro {
	return []Micro{
		{
			Name: "thermal-step",
			Doc:  "exact RC kernel, constant 2 ms step (decay cache hit)",
			Run: func(iters int) error {
				n, power, _, _ := KernelNetwork()
				dt := 2 * units.Millisecond
				n.Step(dt, power)
				for i := 0; i < iters; i++ {
					n.Step(dt, power)
				}
				return nil
			},
		},
		{
			Name: "thermal-step-fewdt",
			Doc:  "exact RC kernel cycling recurring step sizes (decay LRU)",
			Run: func(iters int) error {
				n, power, _, _ := KernelNetwork()
				sizes := []units.Time{
					2 * units.Millisecond, 311 * units.Microsecond,
					2 * units.Millisecond, 97 * units.Microsecond,
					2 * units.Millisecond, 733 * units.Microsecond,
				}
				for i := 0; i < iters*len(sizes); i++ {
					n.Step(sizes[i%len(sizes)], power)
				}
				return nil
			},
		},
		{
			Name: "thermal-leap",
			Doc:  "quiescence-leap integrator, one 50-step window per iteration",
			Run: func(iters int) error {
				n, _, pkg, junctions := KernelNetwork()
				src := &LeapSource{Pkg: pkg, Junctions: junctions}
				sums := make([]float64, n.NumNodes())
				dt := 2 * units.Millisecond
				for i := 0; i < iters; i++ {
					n.LeapSteps(50, dt, src, sums)
				}
				if chunks, steps := n.LeapStats(); steps == 0 || chunks == 0 {
					return fmt.Errorf("leap integrator never engaged")
				}
				return nil
			},
		},
		{
			Name: "solve-steady-state",
			Doc:  "idle-equilibrium fixed-point solve",
			Run: func(iters int) error {
				for i := 0; i < iters; i++ {
					n, power, _, _ := KernelNetwork()
					if _, ok := n.SolveSteadyState(power, 1e-7, 200000); !ok {
						return fmt.Errorf("steady-state solve did not converge")
					}
				}
				return nil
			},
		},
		{
			Name: "fleet-scenario",
			Doc:  "fleet-diurnal scenario end to end at golden scale (leap integrator)",
			Run: func(iters int) error {
				for i := 0; i < iters; i++ {
					if _, err := scenario.RunByName("fleet-diurnal", 0.05); err != nil {
						return err
					}
				}
				return nil
			},
		},
		{
			Name: "mega-fleet",
			Doc:  "fleet-diurnal tiled to 100k machines through the batched engine",
			Run: func(iters int) error {
				for i := 0; i < iters; i++ {
					res, err := scenario.RunMegaByName("fleet-diurnal", 100_000, 0.05)
					if err != nil {
						return err
					}
					if res.Total != 100_000 || res.Base <= 0 {
						return fmt.Errorf("mega run tiled %d machines from %d", res.Total, res.Base)
					}
				}
				return nil
			},
		},
		{
			Name: "fleet-sched",
			Doc:  "sched-shootout scheduled run at golden scale, default policy",
			Run: func(iters int) error {
				for i := 0; i < iters; i++ {
					if _, err := fleetsched.RunByName("sched-shootout", "", 0.05); err != nil {
						return err
					}
				}
				return nil
			},
		},
		{
			Name: "service-submit",
			Doc:  "daemon submit over HTTP: one cold run, then cache-hit round-trips",
			Run: func(iters int) error {
				svc := service.New(service.Config{Workers: 2, DefaultScale: 1})
				defer func() {
					ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
					defer cancel()
					_ = svc.Shutdown(ctx)
				}()
				srv := httptest.NewServer(svc.Handler())
				defer srv.Close()
				c := service.NewClient(srv.URL)
				req := service.Request{Spec: []byte(`{
					"name": "bench-service-submit",
					"duration_s": 2,
					"fleet": {"machines": 1, "base_seed": 42},
					"machine": {"cores": 1},
					"workload": [{"kind": "burn", "threads": 1}]
				}`)}
				v, err := c.Submit(req)
				if err != nil {
					return err
				}
				final, err := c.Wait(context.Background(), v.ID)
				if err != nil {
					return err
				}
				if final.State != service.StateDone {
					return fmt.Errorf("bench job finished %s: %s", final.State, final.Error)
				}
				for i := 0; i < iters; i++ {
					hit, err := c.Submit(req)
					if err != nil {
						return err
					}
					if !hit.CacheHit {
						return fmt.Errorf("iteration %d missed the result cache", i)
					}
				}
				return nil
			},
		},
	}
}
