package machine

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sched"
	"repro/internal/units"
	"repro/internal/workload"
)

// buildBusy returns a machine with a couple of live threads so the
// checkpoint exercises the scheduler ledger, not just the thermal state.
func buildBusy(t *testing.T, seed uint64) *Machine {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.Meter.Disabled = true
	m := New(cfg)
	m.Admit(workload.FiniteBurn(5), sched.SpawnConfig{Name: "burn-a", ProcessID: 1})
	m.Admit(workload.FiniteBurn(3), sched.SpawnConfig{Name: "burn-b", ProcessID: 2})
	return m
}

// Replaying the same trial to the same barrier must produce a bit-identical
// state — the invariant crash recovery rests on.
func TestCheckpointReplayIdentity(t *testing.T) {
	for _, integ := range []string{IntegratorExact, IntegratorLeap} {
		a := buildBusy(t, 42)
		b := buildBusy(t, 42)
		a.cfg.Integrator = integ
		b.cfg.Integrator = integ
		for i := 0; i < 5; i++ {
			a.RunFor(200 * units.Millisecond)
			b.RunFor(200 * units.Millisecond)
			sa, sb := a.Checkpoint(), b.Checkpoint()
			if sa.Digest() != sb.Digest() {
				t.Fatalf("%s: barrier %d: digests diverge:\n%s", integ, i, diffState(sa, sb))
			}
			if err := b.Restore(sa); err != nil {
				t.Fatalf("%s: barrier %d: Restore on identical replay: %v", integ, i, err)
			}
		}
	}
}

// A checkpoint taken mid-run, carried across a JSON round trip (what the
// daemon's on-disk format does), must still digest identically.
func TestCheckpointJSONRoundTrip(t *testing.T) {
	m := buildBusy(t, 7)
	m.RunFor(750 * units.Millisecond)
	st := m.Checkpoint()
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back State
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if st.Digest() != back.Digest() {
		t.Fatal("digest changed across JSON round trip")
	}
	if err := m.Restore(back); err != nil {
		t.Fatalf("Restore after round trip: %v", err)
	}
}

// Any divergence — different seed, different progress — must fail Restore
// with a descriptive error, never pass silently.
func TestRestoreDetectsDivergence(t *testing.T) {
	a := buildBusy(t, 1)
	b := buildBusy(t, 2) // different seed: RNG words differ
	a.RunFor(300 * units.Millisecond)
	b.RunFor(300 * units.Millisecond)
	if err := b.Restore(a.Checkpoint()); err == nil {
		t.Fatal("Restore accepted a different-seed machine")
	}

	c := buildBusy(t, 1)
	c.RunFor(400 * units.Millisecond) // same seed, ran further
	err := c.Restore(a.Checkpoint())
	if err == nil {
		t.Fatal("Restore accepted a machine at a different barrier")
	}
	if !strings.Contains(err.Error(), "now") {
		t.Fatalf("divergence error should name the field: %v", err)
	}
}

// The checkpoint must observe scheduler progress: two states straddling
// thread work must differ.
func TestCheckpointSeesProgress(t *testing.T) {
	m := buildBusy(t, 9)
	m.RunFor(100 * units.Millisecond)
	s1 := m.Checkpoint()
	m.RunFor(100 * units.Millisecond)
	s2 := m.Checkpoint()
	if s1.Digest() == s2.Digest() {
		t.Fatal("states at different times digest equally")
	}
	if len(s1.Threads) != 2 {
		t.Fatalf("thread ledger has %d entries, want 2", len(s1.Threads))
	}
	if s2.Threads[0].WorkDone <= s1.Threads[0].WorkDone {
		t.Fatal("thread work did not advance between checkpoints")
	}
	// Checkpointing must not perturb the run: a third machine advanced
	// without intermediate checkpoints lands on the same state.
	n := buildBusy(t, 9)
	n.RunFor(200 * units.Millisecond)
	if n.Checkpoint().Digest() != s2.Digest() {
		t.Fatal("intermediate checkpoints perturbed the simulation")
	}
}
