package machine

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/units"
)

// State is a machine's serializable simulation snapshot: everything the
// engines' determinism contract says must match bit-for-bit when the same
// trial is replayed to the same barrier. It deliberately captures state from
// every layer — the thermal network's node temperatures, the RNG stream
// words, the scheduler's queues and occupancy ledgers, the leap integrator's
// epoch seam — so a digest over it is a whole-machine identity check, not a
// summary statistic.
//
// Restore-by-verified-replay: discrete-event state (armed timers, workload
// program closures) is not re-seated from a State — it is reproduced by
// deterministically replaying the trial to the checkpoint barrier, and State
// is the proof obligation that the replay arrived at the identical machine.
// Capture is a pure observation (see Checkpoint), so it may happen at any
// deterministically chosen instant; the engines choose round barriers, where
// the replayed run provably revisits the same capture point (see DESIGN.md
// §12).
type State struct {
	// Now is the virtual time of the capture, in clock ticks.
	Now units.Time `json:"now"`
	// ChipEpoch is the chip power-model epoch counter — it advances on
	// every C-state/DVFS/activity change, so equal epochs mean the replay
	// performed the identical sequence of power-model mutations.
	ChipEpoch uint64 `json:"chip_epoch"`
	// EventsFired counts clock events fired since t=0.
	EventsFired uint64 `json:"events_fired"`

	// NodeTempsC are the thermal network's node temperatures (every node,
	// in construction order — junctions, hotspots, package, sink, ambient).
	NodeTempsC []float64 `json:"node_temps_c"`
	// TempIntegralCs are the exact per-core junction-temperature integrals
	// (°C·s since t=0).
	TempIntegralCs []float64 `json:"temp_integral_cs"`

	// EnergyJ and EnergySpan are the package energy accumulator.
	EnergyJ    float64    `json:"energy_j"`
	EnergySpan units.Time `json:"energy_span"`

	// RNG is the machine's root generator state.
	RNG [4]uint64 `json:"rng"`

	// Scheduler state: cumulative occupancy per core, global counters and
	// the live thread ledger.
	CoreBusy     []units.Time  `json:"core_busy"`
	CoreInjected []units.Time  `json:"core_injected"`
	Injections   int           `json:"injections"`
	Steals       int           `json:"steals"`
	QueueLen     int           `json:"queue_len"`
	Threads      []ThreadState `json:"threads"`
}

// ThreadState is one thread's checkpoint ledger entry.
type ThreadState struct {
	ID        int        `json:"id"`
	Name      string     `json:"name"`
	ProcessID int        `json:"pid"`
	State     string     `json:"state"`
	WorkDone  float64    `json:"work_done"`
	Remaining float64    `json:"remaining"`
	CPUTime   units.Time `json:"cpu_time"`
}

// Checkpoint captures the machine's state as a pure observation: it performs
// no accounting flush of its own, reading every ledger exactly as the
// simulation left it. That is deliberate — a flush here would not be free
// (ChargeAll consumes a freshly dispatched thread's pending context-switch
// pad, and an extra thermal settle re-seams the leap window), and a
// checkpointed run must be byte-identical to an unobserved one. Values are
// therefore "as of the last natural flush", which a deterministic replay
// reproduces exactly; for fully charged occupancy numbers read Telemetry at
// a barrier first, as the fleet engine does.
func (m *Machine) Checkpoint() State {
	st := State{
		Now:         m.Now(),
		ChipEpoch:   m.Chip.TotalEpoch(),
		EventsFired: m.Clock.Fired(),
		EnergyJ:     float64(m.Energy.Energy()),
		EnergySpan:  m.Energy.Span(),
		RNG:         m.RNG.State(),
		Injections:  m.Sched.TotalInjections,
		Steals:      m.Sched.Steals,
		QueueLen:    m.Sched.QueueLen(),
	}
	temps := m.Net.Net.Temps(nil)
	st.NodeTempsC = make([]float64, len(temps))
	for i, t := range temps {
		st.NodeTempsC[i] = float64(t)
	}
	st.TempIntegralCs = append([]float64(nil), m.tempIntegral...)
	cores := m.cfg.Model.NumCores * m.cfg.SMTContexts
	st.CoreBusy = make([]units.Time, cores)
	st.CoreInjected = make([]units.Time, cores)
	for c := 0; c < cores; c++ {
		st.CoreBusy[c], st.CoreInjected[c] = m.Sched.Core(c)
	}
	for _, th := range m.Sched.Threads() {
		st.Threads = append(st.Threads, ThreadState{
			ID:        th.ID,
			Name:      th.Name,
			ProcessID: th.ProcessID,
			State:     th.State().String(),
			WorkDone:  th.WorkDone,
			Remaining: th.Remaining(),
			CPUTime:   th.CPUTime,
		})
	}
	return st
}

// Digest returns the state's content hash: sha256 over its canonical JSON
// encoding (struct field order is fixed, float64s encode shortest-round-trip,
// so equal states digest equally and unequal states — down to a single RNG
// word or nanodegree — do not).
func (s State) Digest() string {
	raw, err := json.Marshal(s)
	if err != nil {
		// State is plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("machine: marshaling checkpoint state: %v", err))
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// Restore verifies that this machine — deterministically replayed to the
// checkpoint's barrier — matches the captured state exactly, and returns a
// descriptive error naming the first diverging field otherwise. On match the
// machine simply continues: its discrete-event state (timers, programs) was
// rebuilt by the replay and its continuous state is bit-identical, so there
// is nothing to seat. This is the zero-divergence guarantee behind crash
// recovery: a resumed run is indistinguishable from an uninterrupted one.
func (m *Machine) Restore(want State) error {
	got := m.Checkpoint()
	if got.Now != want.Now {
		return fmt.Errorf("machine: restore divergence: now %v != checkpoint %v", got.Now, want.Now)
	}
	if gd, wd := got.Digest(), want.Digest(); gd != wd {
		return fmt.Errorf("machine: restore divergence at t=%v: %s", got.Now, diffState(got, want))
	}
	return nil
}

// diffState names the first differing field between two states, for restore
// error messages a human can act on.
func diffState(got, want State) string {
	switch {
	case got.ChipEpoch != want.ChipEpoch:
		return fmt.Sprintf("chip epoch %d != %d", got.ChipEpoch, want.ChipEpoch)
	case got.EventsFired != want.EventsFired:
		return fmt.Sprintf("events fired %d != %d", got.EventsFired, want.EventsFired)
	case got.RNG != want.RNG:
		return fmt.Sprintf("rng state %x != %x", got.RNG, want.RNG)
	case got.EnergyJ != want.EnergyJ:
		return fmt.Sprintf("energy %v J != %v J", got.EnergyJ, want.EnergyJ)
	case got.Injections != want.Injections:
		return fmt.Sprintf("injections %d != %d", got.Injections, want.Injections)
	case got.QueueLen != want.QueueLen:
		return fmt.Sprintf("queue length %d != %d", got.QueueLen, want.QueueLen)
	case len(got.Threads) != len(want.Threads):
		return fmt.Sprintf("thread count %d != %d", len(got.Threads), len(want.Threads))
	case len(got.NodeTempsC) != len(want.NodeTempsC):
		return fmt.Sprintf("node count %d != %d", len(got.NodeTempsC), len(want.NodeTempsC))
	}
	for i := range got.NodeTempsC {
		if got.NodeTempsC[i] != want.NodeTempsC[i] {
			return fmt.Sprintf("node %d temp %v != %v", i, got.NodeTempsC[i], want.NodeTempsC[i])
		}
	}
	for i := range got.Threads {
		if got.Threads[i] != want.Threads[i] {
			return fmt.Sprintf("thread %d %+v != %+v", i, got.Threads[i], want.Threads[i])
		}
	}
	return "digest mismatch (core occupancy or temperature integrals)"
}
