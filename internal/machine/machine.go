// Package machine assembles the simulated testbed: the paper's 1U rackmount
// server with a quad-core Xeon E5520, a three-layer RC thermal path
// (per-core junctions → package/spreader → heatsink → 25.2 °C ambient held by
// full-speed case fans), a clamp+multimeter power measurement chain, and the
// 4.4BSD-style scheduler. It owns the event loop: discrete scheduler events
// interleave with continuous thermal/energy integration.
package machine

import (
	"fmt"
	"sync"

	"repro/internal/cpu"
	"repro/internal/power"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sensor"
	"repro/internal/simclock"
	"repro/internal/thermal"
	"repro/internal/trace"
	"repro/internal/units"
)

// Config describes a testbed instance. DefaultConfig returns the calibrated
// paper machine; tests and ablations override single fields.
type Config struct {
	Model *cpu.Model
	Sched sched.Config

	// Ambient is the thermostat setpoint (25.2 °C in §3.2).
	Ambient units.Celsius

	// RC thermal path. Resistances in K/W, capacitances in J/K.
	RJunctionPackage float64 // per-core junction → package spreader
	RPackageSink     float64 // package → heatsink
	RSinkAmbient     float64 // heatsink → ambient (fan-dependent)
	CJunction        float64
	CPackage         float64
	CSink            float64

	// FanFactor scales RSinkAmbient; 1.0 is the paper's full-speed fixed
	// fan. Larger values mean less airflow.
	FanFactor float64

	// HotspotFraction, when positive, adds a per-core hotspot node — the
	// small thermal mass of the busiest functional units (§2.1: "executing
	// an idle loop of nop equivalents allows many functional units within
	// the processor to cool"). The fraction of the core's power deposited
	// there concentrates; the rest enters the junction block. Zero (the
	// default) keeps the calibrated three-layer model.
	HotspotFraction float64
	// RHotspotJunction and CHotspot parameterise the hotspot node
	// (defaults give τ ≈ 2 ms and a few degrees of local rise).
	RHotspotJunction float64
	CHotspot         float64
	// SenseHotspot points the DTS observable and the temperature metrics
	// at the hotspot nodes instead of the junction blocks — the sensor-
	// placement sensitivity study (the real DTS sits at the hottest spot).
	SenseHotspot bool

	// ThermalStep caps the integration step.
	ThermalStep units.Time

	// Integrator selects how event-free spans are integrated:
	// IntegratorExact (the default) steps every ThermalStep and is
	// byte-identical to the historical kernel; IntegratorLeap detects that
	// the chip configuration is frozen across each span — the scheduler's
	// quiescence certificate — and replaces the k identical steps with the
	// O(log k) repeated-squaring propagator (tolerance-mode; see DESIGN.md
	// §10). An empty value resolves through the process-wide override
	// (SetIntegratorOverride) and then to exact. Leap engages only when
	// nothing observes intra-span state: the meter chain must be disabled
	// and per-step temperature tracing off, otherwise the machine falls
	// back to exact stepping.
	Integrator string

	// Idle C-states: what a core enters when it has nothing to run and
	// when Dimetrodon injects an idle quantum. Both default to C1E; the
	// C-state ablation sets InjectedIdle to C1Halt (a nop-loop idle on
	// hardware without low-power states, §2.1).
	NaturalIdle  cpu.CState
	InjectedIdle cpu.CState

	// SMTContexts is the number of hardware thread contexts per physical
	// core visible to the scheduler. The paper disabled SMT (§3.2: "to
	// cause the entire core to enter the C1E low power state we need to
	// halt all thread contexts on the core"); 1 reproduces that setup,
	// 2 enables the SMT extension studied by the smt package. A core
	// reaches C1E only when every context has parked there; a lone idle
	// context merely halts.
	SMTContexts int
	// SMTYield is each context's progress rate when SMT is enabled: two
	// saturated sibling contexts share execution resources, so each runs
	// slower than an exclusive context (total > 1). The model holds the
	// yield constant — symmetric saturated contexts, which is exact for
	// the all-cpuburn workload the SMT experiment uses.
	SMTYield float64
	// SMTSoloDynFraction is the fraction of a fully loaded core's dynamic
	// power drawn when only one context is active (SMT adds ~15-20 % to
	// core power; a lone cpuburn context still nearly saturates it).
	SMTSoloDynFraction float64

	Meter power.MeterConfig
	// RecordPower enables the meter's sample trace (Figure 1); energy
	// accounting is always on.
	RecordPower bool
	// TempSampleEvery controls the decimated junction-temperature trace
	// (Figure 2); zero disables the trace. Windowed temperature metrics
	// use exact integrals and do not depend on this.
	TempSampleEvery units.Time

	Seed uint64
}

// leapShortSpan is the longest quiescent window (in whole ThermalSteps)
// integrated by plain polynomial-decay steps on the linearisation memo
// instead of the propagator: below it the leap machinery's fixed per-window
// cost outweighs the matrix savings.
const leapShortSpan = 4

// Integrator modes.
const (
	// IntegratorExact integrates every event-free span step by step —
	// byte-identical to the historical kernel and to the committed
	// golden fixtures.
	IntegratorExact = "exact"
	// IntegratorLeap replaces provably power-quiescent step runs with the
	// repeated-squaring propagator; outputs track exact within the
	// controller tolerance (≪ the 0.05 °C harness band).
	IntegratorLeap = "leap"
)

// ValidIntegrator reports whether mode names an integrator ("" selects the
// default resolution).
func ValidIntegrator(mode string) bool {
	return mode == "" || mode == IntegratorExact || mode == IntegratorLeap
}

// integratorOverride is the process-wide default applied when a Config
// leaves Integrator empty — how `dimctl -integrator` reaches every machine
// built by the experiment harnesses without threading a parameter through
// each of them. Guarded for the concurrent trial builders.
var (
	integratorMu       sync.Mutex
	integratorOverride string
)

// SetIntegratorOverride installs the process-wide integrator default for
// configs that leave Integrator empty; "" restores the built-in default
// (exact). It returns an error for unknown modes.
func SetIntegratorOverride(mode string) error {
	if !ValidIntegrator(mode) {
		return fmt.Errorf("machine: unknown integrator %q (want %q or %q)", mode, IntegratorExact, IntegratorLeap)
	}
	integratorMu.Lock()
	integratorOverride = mode
	integratorMu.Unlock()
	return nil
}

// IntegratorOverride returns the current process-wide override ("" when
// unset).
func IntegratorOverride() string {
	integratorMu.Lock()
	defer integratorMu.Unlock()
	return integratorOverride
}

// DefaultConfig returns the calibrated testbed (see DESIGN.md §5).
func DefaultConfig() Config {
	return Config{
		Model:              cpu.NewXeonE5520(),
		Sched:              sched.DefaultConfig(),
		Ambient:            25.2,
		RJunctionPackage:   0.80,
		RPackageSink:       0.045,
		RSinkAmbient:       0.115,
		CJunction:          0.0375, // τ_junction ≈ 30 ms against the package
		CPackage:           45,
		CSink:              170,
		FanFactor:          1.0,
		ThermalStep:        2 * units.Millisecond,
		NaturalIdle:        cpu.C1E,
		InjectedIdle:       cpu.C1E,
		SMTContexts:        1,
		SMTYield:           0.62,
		SMTSoloDynFraction: 0.847,
		Meter:              power.DefaultMeterConfig(),
		RecordPower:        false,
		TempSampleEvery:    0,
		Seed:               1,
	}
}

// Machine is a running testbed instance.
type Machine struct {
	Clock    *simclock.Clock
	Chip     *cpu.Chip
	Net      *ThermalPath
	Sched    *sched.Scheduler
	Meter    *power.Meter
	Energy   *power.Accumulator
	Recorder *trace.Recorder
	RNG      *rng.Source

	cfg       Config
	sensors   []*sensor.DTS
	lastTemps []units.Celsius

	// SMT context tracking (len = cores × SMTContexts); single-context
	// machines bypass it entirely.
	ctxState []cpu.CState
	ctxPF    []float64

	// Exact per-core junction-temperature integrals (°C·s) and the busy/
	// injected-idle integral bookkeeping behind the experiment metrics.
	tempIntegral []float64
	nextTempSamp units.Time

	// leap is set when the resolved integrator is IntegratorLeap and no
	// intra-span observer (meter chain, temperature tracing) requires
	// step-by-step integration; leapSum is the per-core scratch the leap
	// window's discrete temperature sums land in.
	leap    bool
	leapSum []float64

	// Lazy thermal integration (leap mode): intFrom is the time up to
	// which the thermal state is settled; the event-free spans past it
	// stay pending while the chip's power model is provably unchanged
	// (Chip.TotalEpoch), so quantum expiries that re-dispatch the same
	// thread no longer cut quiescent windows. Pending spans settle at the
	// flush seams: a listener callback about to change the chip, a
	// temperature accessor, and RunUntil's exit.
	lazy     bool
	intFrom  units.Time
	intEpoch uint64

	// rngDraws counts every Uint64 drawn from the machine's RNG tree (the
	// root and all Split descendants). A zero count after construction
	// proves a configuration's dynamics are seed-insensitive, which the
	// batched fleet path uses to replicate one simulated result across
	// seeds.
	rngDraws uint64
}

// RNGDraws reports how many raw draws the machine's RNG tree has produced
// since construction finished (build-time seeding draws are excluded).
func (m *Machine) RNGDraws() uint64 { return m.rngDraws }

// New builds a machine from cfg. The thermal state starts at the all-idle
// equilibrium, as a real testbed does after sitting idle.
func New(cfg Config) *Machine {
	if cfg.Model == nil {
		cfg.Model = cpu.NewXeonE5520()
	}
	if cfg.FanFactor <= 0 {
		cfg.FanFactor = 1
	}
	if cfg.ThermalStep <= 0 {
		cfg.ThermalStep = DefaultConfig().ThermalStep
	}
	if cfg.HotspotFraction > 0 && cfg.ThermalStep > units.Millisecond {
		// Hotspot nodes have millisecond time constants; cap the
		// integration step accordingly.
		cfg.ThermalStep = units.Millisecond
	}
	if cfg.Integrator == "" {
		cfg.Integrator = IntegratorOverride()
	}
	if cfg.Integrator == "" {
		cfg.Integrator = IntegratorExact
	}
	if !ValidIntegrator(cfg.Integrator) {
		panic(fmt.Sprintf("machine: unknown integrator %q", cfg.Integrator))
	}
	m := &Machine{
		Clock:    &simclock.Clock{},
		Recorder: trace.NewRecorder(),
		Energy:   &power.Accumulator{},
		RNG:      rng.New(cfg.Seed),
		cfg:      cfg,
	}
	// Instrument before any Split so every derived substream inherits the
	// counter; the count is zeroed at the end of New so it reflects only
	// post-build dynamics.
	m.RNG.Instrument(&m.rngDraws)
	if cfg.SMTContexts < 1 {
		cfg.SMTContexts = 1
		m.cfg.SMTContexts = 1
	}
	m.Chip = cpu.NewChip(cfg.Model)
	m.Net = NewThermalPath(cfg)
	schedCfg := cfg.Sched
	schedCfg.Cores = cfg.Model.NumCores * cfg.SMTContexts
	if cfg.SMTContexts > 1 {
		n := schedCfg.Cores
		m.ctxState = make([]cpu.CState, n)
		m.ctxPF = make([]float64, n)
		for i := range m.ctxState {
			m.ctxState[i] = cfg.NaturalIdle
		}
	}
	m.Sched = sched.New(m.Clock, schedCfg, m, m)
	var powerSeries *trace.Series
	if cfg.RecordPower {
		powerSeries = m.Recorder.Series("package.power", "W")
	}
	m.Meter = power.NewMeter(cfg.Meter, m.RNG.Split(), powerSeries)
	n := cfg.Model.NumCores
	m.sensors = make([]*sensor.DTS, n)
	for i := range m.sensors {
		m.sensors[i] = sensor.NewCoretemp()
	}
	m.tempIntegral = make([]float64, n)
	m.lastTemps = make([]units.Celsius, n)
	// Leap integration requires that nothing observes the state between
	// the steps a window replaces: the 3 kHz meter chain and the decimated
	// temperature traces both sample inside spans, so either forces the
	// exact step loop.
	m.leap = m.cfg.Integrator == IntegratorLeap &&
		m.cfg.Meter.Disabled && !m.cfg.RecordPower && m.cfg.TempSampleEvery <= 0
	if m.leap {
		m.leapSum = make([]float64, len(m.Net.sense))
		// Lazy window merging relies on the listener seams owning every
		// chip mutation; the SMT context-derivation path mutates from
		// updatePhysical with interleaved state, so it settles per span.
		m.lazy = m.cfg.SMTContexts <= 1
		m.intEpoch = m.Chip.TotalEpoch()
	}
	// Start from the idle equilibrium. A fresh chip idles every core in C1E
	// with unit leakage coupling, which is exactly the memoised idle solve.
	for i, t := range idleSolve(&m.cfg, 1).temps {
		m.Net.Net.SetTemp(thermal.NodeID(i), t)
	}
	// Construction consumed draws only for substream seeding; zero the
	// counter so RNGDraws reflects dynamics alone.
	m.rngDraws = 0
	return m
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// LeapActive reports whether event-free spans integrate through the
// quiescence-leaping propagator (the resolved integrator is leap and no
// intra-span observer forced the exact loop).
func (m *Machine) LeapActive() bool { return m.leap }

// --- sched.Listener / sched.RateProvider ---

// CoreRunning implements sched.Listener: drive the chip's C-states from
// scheduler occupancy. With SMT the scheduler's core index is a hardware
// context; the physical core's state is derived from both siblings.
func (m *Machine) CoreRunning(core int, t *sched.Thread) {
	if m.cfg.SMTContexts <= 1 {
		if m.lazy && m.Chip.ActiveChanges(core, t.PowerFactor) {
			m.flushThermal(m.Clock.Now())
		}
		m.Chip.SetActive(core, t.PowerFactor)
		return
	}
	m.ctxState[core] = cpu.C0
	m.ctxPF[core] = t.PowerFactor
	m.updatePhysical(core / m.cfg.SMTContexts)
}

// CoreIdle implements sched.Listener.
func (m *Machine) CoreIdle(core int, injected bool) {
	state := m.cfg.NaturalIdle
	if injected {
		state = m.cfg.InjectedIdle
	}
	if m.cfg.SMTContexts <= 1 {
		if m.lazy && m.Chip.IdleChanges(core, state) {
			m.flushThermal(m.Clock.Now())
		}
		m.Chip.SetIdle(core, state)
		return
	}
	m.ctxState[core] = state
	m.ctxPF[core] = 0
	m.updatePhysical(core / m.cfg.SMTContexts)
}

// updatePhysical derives a physical core's C-state and activity factor from
// its hardware contexts: any active context keeps the core in C0 (a lone
// context drawing SMTSoloDynFraction of the fully loaded dynamic power); the
// core reaches C1E only when every context has parked in C1E, otherwise an
// idle mix merely halts (§3.2).
func (m *Machine) updatePhysical(phys int) {
	n := m.cfg.SMTContexts
	base := phys * n
	var maxPF, minPF float64
	actives := 0
	allC1E := true
	for i := base; i < base+n; i++ {
		if m.ctxState[i] == cpu.C0 {
			actives++
			pf := m.ctxPF[i]
			if pf >= maxPF {
				minPF = maxPF
				maxPF = pf
			} else if pf > minPF {
				minPF = pf
			}
			allC1E = false
		} else if m.ctxState[i] != cpu.C1E {
			allC1E = false
		}
	}
	switch {
	case actives > 0:
		// Normalise so two fully loaded contexts draw the calibrated
		// CoreDynamicMax: pf = (max + w·min)/(1 + w) with the weight
		// chosen so a lone context draws SMTSoloDynFraction.
		w := 1/m.cfg.SMTSoloDynFraction - 1
		pf := (maxPF + w*minPF) / (1 + w)
		m.Chip.SetActive(phys, pf)
	case allC1E:
		m.Chip.SetIdle(phys, cpu.C1E)
	default:
		m.Chip.SetIdle(phys, cpu.C1Halt)
	}
}

// ProgressRate implements sched.RateProvider: the chip's DVFS/TCC rate,
// scaled by the SMT yield when contexts share a core.
func (m *Machine) ProgressRate() float64 {
	rate := m.Chip.ProgressRate()
	if m.cfg.SMTContexts > 1 {
		rate *= m.cfg.SMTYield
	}
	return rate
}

// ThreadExited implements sched.Listener.
func (m *Machine) ThreadExited(t *sched.Thread) {}

// --- time ---

// Now returns the current virtual time.
func (m *Machine) Now() units.Time { return m.Clock.Now() }

// RunUntil advances the simulation to absolute virtual time t, interleaving
// scheduler events with thermal and energy integration.
func (m *Machine) RunUntil(t units.Time) {
	if t < m.Clock.Now() {
		panic(fmt.Sprintf("machine: RunUntil(%v) before now (%v)", t, m.Clock.Now()))
	}
	m.Clock.AdvanceTo(t, m.integrate)
	if m.lazy {
		// Settle the pending window so callers observe fully integrated
		// state between runs.
		m.flushThermal(t)
	}
}

// RunFor advances the simulation by span dt.
func (m *Machine) RunFor(dt units.Time) { m.RunUntil(m.Clock.Now() + dt) }

// integrate advances the continuous state (temperatures, energy, meters)
// across an event-free span. The span is the machine's quiescence window:
// the clock only invokes the hook between discrete events, and every chip
// reconfiguration (C-states, activity factors, DVFS, TCC) happens inside an
// event callback, so the power model is provably frozen from `from` to `to`.
// (Sched.NextEventHorizon states the scheduler's share of that invariant as
// a queryable, unit-tested certificate; the hot path needs no call — the
// guarantee is structural.) The leap integrator exploits exactly that
// window.
func (m *Machine) integrate(from, to units.Time) {
	if m.lazy {
		// The span joins the pending quiescent window. While the chip's
		// power model is unchanged (same TotalEpoch), settling can wait:
		// the window keeps growing across events that altered nothing —
		// quantum expiries re-dispatching the same thread chief among
		// them. A changed epoch means some writer bypassed the flush
		// seams (no in-tree writer does); settle conservatively under
		// the current configuration rather than lose the span.
		if m.Chip.TotalEpoch() != m.intEpoch {
			m.flushThermal(from)
		}
		return
	}
	if m.leap {
		m.settleSpan(from, to)
		return
	}
	span := to - from
	t := from
	for span > 0 {
		dt := span
		if dt > m.cfg.ThermalStep {
			dt = m.cfg.ThermalStep
		}
		total := m.Net.StepWithChip(dt, m.Chip)
		m.Energy.Add(total, dt)
		m.Meter.Observe(t, t+dt, total)
		temps := m.Net.Junctions(m.lastTemps)
		for i, tj := range temps {
			m.tempIntegral[i] += float64(tj) * dt.Seconds()
		}
		t += dt
		span -= dt
		m.sampleTemps(t, temps)
	}
}

// settleSpan integrates a power-quiescent span through the leap machinery:
// whole ThermalStep multiples leap in O(log k) propagator chunks; the
// event-aligned sub-step remainder then advances on the window's linearised
// heat inputs — no further model evaluation.
func (m *Machine) settleSpan(from, to units.Time) {
	span := to - from
	step := m.cfg.ThermalStep
	if k := int(span / step); k > leapShortSpan {
		for i := range m.leapSum {
			m.leapSum[i] = 0
		}
		powSum := m.Net.LeapWithChip(k, step, m.Chip, m.leapSum)
		window := units.Time(k) * step
		m.Energy.Add(units.Watts(powSum/float64(k)), window)
		dts := step.Seconds()
		for i, s := range m.leapSum {
			m.tempIntegral[i] += s * dts
		}
		span -= window
	}
	// Short windows and the event-aligned remainder: polynomial-decay
	// steps on the per-core linearisation memo — no exponentials, no
	// decay-cache traffic, no matrices. Step sizes here are essentially
	// unique (event times are nanosecond-grained), which is exactly the
	// pattern the exact kernel's caches cannot serve.
	for span > 0 {
		dt := span
		if dt > step {
			dt = step
		}
		total := m.Net.StepPolyMemo(dt, m.Chip)
		m.Energy.Add(total, dt)
		temps := m.Net.Junctions(m.lastTemps)
		for i, tj := range temps {
			m.tempIntegral[i] += float64(tj) * dt.Seconds()
		}
		span -= dt
	}
}

// flushThermal settles the pending quiescent window up to now. It is called
// from the seams where staleness would become observable or incorrect: a
// listener callback about to change the chip's power model, the temperature
// accessors, and RunUntil's exit.
func (m *Machine) flushThermal(now units.Time) {
	if now > m.intFrom {
		m.settleSpan(m.intFrom, now)
	}
	m.intFrom = now
	m.intEpoch = m.Chip.TotalEpoch()
}

func (m *Machine) sampleTemps(now units.Time, temps []units.Celsius) {
	if m.cfg.TempSampleEvery <= 0 || now < m.nextTempSamp {
		return
	}
	for i, tj := range temps {
		s := m.Recorder.Series(fmt.Sprintf("core%d.temp", i), "C")
		s.Append(now, float64(tj))
		d := m.Recorder.Series(fmt.Sprintf("core%d.dts", i), "C")
		d.Append(now, float64(m.sensors[i].Read(now, tj)))
	}
	m.nextTempSamp = now + m.cfg.TempSampleEvery
}

// --- metrics ---

// JunctionTemps returns the current true junction temperatures.
func (m *Machine) JunctionTemps() []units.Celsius {
	if m.lazy {
		m.flushThermal(m.Clock.Now())
	}
	return m.Net.Junctions(nil)
}

// MeanJunctionIntegral returns the across-core mean of the exact junction
// temperature integrals (°C·s since t=0). Experiments snapshot it at window
// boundaries to compute exact time-weighted mean temperatures.
func (m *Machine) MeanJunctionIntegral() float64 {
	if m.lazy {
		m.flushThermal(m.Clock.Now())
	}
	var sum float64
	for _, v := range m.tempIntegral {
		sum += v
	}
	return sum / float64(len(m.tempIntegral))
}

// IdleJunctionTemp returns the all-idle equilibrium junction temperature of
// this machine configuration — the paper's "idle temperature" baseline.
// The solve is memoised per thermally-relevant configuration (see idleSolve);
// the running state is not disturbed.
func (m *Machine) IdleJunctionTemp() units.Celsius {
	return idleSolve(&m.cfg, m.Chip.LeakageTempCoupling).mean
}

// TotalWorkDone returns the summed completed work (reference-seconds) across
// all threads, flushing in-progress accounting first.
func (m *Machine) TotalWorkDone() float64 {
	m.Sched.ChargeAll()
	var sum float64
	for _, t := range m.Sched.Threads() {
		sum += t.WorkDone
	}
	return sum
}

// ProcessWorkDone returns the summed completed work of one process's threads.
func (m *Machine) ProcessWorkDone(pid int) float64 {
	m.Sched.ChargeAll()
	var sum float64
	for _, t := range m.Sched.Threads() {
		if t.ProcessID == pid {
			sum += t.WorkDone
		}
	}
	return sum
}
