// Package machine assembles the simulated testbed: the paper's 1U rackmount
// server with a quad-core Xeon E5520, a three-layer RC thermal path
// (per-core junctions → package/spreader → heatsink → 25.2 °C ambient held by
// full-speed case fans), a clamp+multimeter power measurement chain, and the
// 4.4BSD-style scheduler. It owns the event loop: discrete scheduler events
// interleave with continuous thermal/energy integration.
package machine

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/power"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sensor"
	"repro/internal/simclock"
	"repro/internal/thermal"
	"repro/internal/trace"
	"repro/internal/units"
)

// Config describes a testbed instance. DefaultConfig returns the calibrated
// paper machine; tests and ablations override single fields.
type Config struct {
	Model *cpu.Model
	Sched sched.Config

	// Ambient is the thermostat setpoint (25.2 °C in §3.2).
	Ambient units.Celsius

	// RC thermal path. Resistances in K/W, capacitances in J/K.
	RJunctionPackage float64 // per-core junction → package spreader
	RPackageSink     float64 // package → heatsink
	RSinkAmbient     float64 // heatsink → ambient (fan-dependent)
	CJunction        float64
	CPackage         float64
	CSink            float64

	// FanFactor scales RSinkAmbient; 1.0 is the paper's full-speed fixed
	// fan. Larger values mean less airflow.
	FanFactor float64

	// HotspotFraction, when positive, adds a per-core hotspot node — the
	// small thermal mass of the busiest functional units (§2.1: "executing
	// an idle loop of nop equivalents allows many functional units within
	// the processor to cool"). The fraction of the core's power deposited
	// there concentrates; the rest enters the junction block. Zero (the
	// default) keeps the calibrated three-layer model.
	HotspotFraction float64
	// RHotspotJunction and CHotspot parameterise the hotspot node
	// (defaults give τ ≈ 2 ms and a few degrees of local rise).
	RHotspotJunction float64
	CHotspot         float64
	// SenseHotspot points the DTS observable and the temperature metrics
	// at the hotspot nodes instead of the junction blocks — the sensor-
	// placement sensitivity study (the real DTS sits at the hottest spot).
	SenseHotspot bool

	// ThermalStep caps the integration step.
	ThermalStep units.Time

	// Idle C-states: what a core enters when it has nothing to run and
	// when Dimetrodon injects an idle quantum. Both default to C1E; the
	// C-state ablation sets InjectedIdle to C1Halt (a nop-loop idle on
	// hardware without low-power states, §2.1).
	NaturalIdle  cpu.CState
	InjectedIdle cpu.CState

	// SMTContexts is the number of hardware thread contexts per physical
	// core visible to the scheduler. The paper disabled SMT (§3.2: "to
	// cause the entire core to enter the C1E low power state we need to
	// halt all thread contexts on the core"); 1 reproduces that setup,
	// 2 enables the SMT extension studied by the smt package. A core
	// reaches C1E only when every context has parked there; a lone idle
	// context merely halts.
	SMTContexts int
	// SMTYield is each context's progress rate when SMT is enabled: two
	// saturated sibling contexts share execution resources, so each runs
	// slower than an exclusive context (total > 1). The model holds the
	// yield constant — symmetric saturated contexts, which is exact for
	// the all-cpuburn workload the SMT experiment uses.
	SMTYield float64
	// SMTSoloDynFraction is the fraction of a fully loaded core's dynamic
	// power drawn when only one context is active (SMT adds ~15-20 % to
	// core power; a lone cpuburn context still nearly saturates it).
	SMTSoloDynFraction float64

	Meter power.MeterConfig
	// RecordPower enables the meter's sample trace (Figure 1); energy
	// accounting is always on.
	RecordPower bool
	// TempSampleEvery controls the decimated junction-temperature trace
	// (Figure 2); zero disables the trace. Windowed temperature metrics
	// use exact integrals and do not depend on this.
	TempSampleEvery units.Time

	Seed uint64
}

// DefaultConfig returns the calibrated testbed (see DESIGN.md §5).
func DefaultConfig() Config {
	return Config{
		Model:              cpu.NewXeonE5520(),
		Sched:              sched.DefaultConfig(),
		Ambient:            25.2,
		RJunctionPackage:   0.80,
		RPackageSink:       0.045,
		RSinkAmbient:       0.115,
		CJunction:          0.0375, // τ_junction ≈ 30 ms against the package
		CPackage:           45,
		CSink:              170,
		FanFactor:          1.0,
		ThermalStep:        2 * units.Millisecond,
		NaturalIdle:        cpu.C1E,
		InjectedIdle:       cpu.C1E,
		SMTContexts:        1,
		SMTYield:           0.62,
		SMTSoloDynFraction: 0.847,
		Meter:              power.DefaultMeterConfig(),
		RecordPower:        false,
		TempSampleEvery:    0,
		Seed:               1,
	}
}

// Machine is a running testbed instance.
type Machine struct {
	Clock    *simclock.Clock
	Chip     *cpu.Chip
	Net      *ThermalPath
	Sched    *sched.Scheduler
	Meter    *power.Meter
	Energy   *power.Accumulator
	Recorder *trace.Recorder
	RNG      *rng.Source

	cfg       Config
	sensors   []*sensor.DTS
	lastTemps []units.Celsius

	// SMT context tracking (len = cores × SMTContexts); single-context
	// machines bypass it entirely.
	ctxState []cpu.CState
	ctxPF    []float64

	// Exact per-core junction-temperature integrals (°C·s) and the busy/
	// injected-idle integral bookkeeping behind the experiment metrics.
	tempIntegral []float64
	nextTempSamp units.Time
}

// New builds a machine from cfg. The thermal state starts at the all-idle
// equilibrium, as a real testbed does after sitting idle.
func New(cfg Config) *Machine {
	if cfg.Model == nil {
		cfg.Model = cpu.NewXeonE5520()
	}
	if cfg.FanFactor <= 0 {
		cfg.FanFactor = 1
	}
	if cfg.ThermalStep <= 0 {
		cfg.ThermalStep = DefaultConfig().ThermalStep
	}
	if cfg.HotspotFraction > 0 && cfg.ThermalStep > units.Millisecond {
		// Hotspot nodes have millisecond time constants; cap the
		// integration step accordingly.
		cfg.ThermalStep = units.Millisecond
	}
	m := &Machine{
		Clock:    &simclock.Clock{},
		Recorder: trace.NewRecorder(),
		Energy:   &power.Accumulator{},
		RNG:      rng.New(cfg.Seed),
		cfg:      cfg,
	}
	if cfg.SMTContexts < 1 {
		cfg.SMTContexts = 1
		m.cfg.SMTContexts = 1
	}
	m.Chip = cpu.NewChip(cfg.Model)
	m.Net = NewThermalPath(cfg)
	schedCfg := cfg.Sched
	schedCfg.Cores = cfg.Model.NumCores * cfg.SMTContexts
	if cfg.SMTContexts > 1 {
		n := schedCfg.Cores
		m.ctxState = make([]cpu.CState, n)
		m.ctxPF = make([]float64, n)
		for i := range m.ctxState {
			m.ctxState[i] = cfg.NaturalIdle
		}
	}
	m.Sched = sched.New(m.Clock, schedCfg, m, m)
	var powerSeries *trace.Series
	if cfg.RecordPower {
		powerSeries = m.Recorder.Series("package.power", "W")
	}
	m.Meter = power.NewMeter(cfg.Meter, m.RNG.Split(), powerSeries)
	n := cfg.Model.NumCores
	m.sensors = make([]*sensor.DTS, n)
	for i := range m.sensors {
		m.sensors[i] = sensor.NewCoretemp()
	}
	m.tempIntegral = make([]float64, n)
	m.lastTemps = make([]units.Celsius, n)
	// Start from the idle equilibrium. A fresh chip idles every core in C1E
	// with unit leakage coupling, which is exactly the memoised idle solve.
	for i, t := range idleSolve(&m.cfg, 1).temps {
		m.Net.Net.SetTemp(thermal.NodeID(i), t)
	}
	return m
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// --- sched.Listener / sched.RateProvider ---

// CoreRunning implements sched.Listener: drive the chip's C-states from
// scheduler occupancy. With SMT the scheduler's core index is a hardware
// context; the physical core's state is derived from both siblings.
func (m *Machine) CoreRunning(core int, t *sched.Thread) {
	if m.cfg.SMTContexts <= 1 {
		m.Chip.SetActive(core, t.PowerFactor)
		return
	}
	m.ctxState[core] = cpu.C0
	m.ctxPF[core] = t.PowerFactor
	m.updatePhysical(core / m.cfg.SMTContexts)
}

// CoreIdle implements sched.Listener.
func (m *Machine) CoreIdle(core int, injected bool) {
	state := m.cfg.NaturalIdle
	if injected {
		state = m.cfg.InjectedIdle
	}
	if m.cfg.SMTContexts <= 1 {
		m.Chip.SetIdle(core, state)
		return
	}
	m.ctxState[core] = state
	m.ctxPF[core] = 0
	m.updatePhysical(core / m.cfg.SMTContexts)
}

// updatePhysical derives a physical core's C-state and activity factor from
// its hardware contexts: any active context keeps the core in C0 (a lone
// context drawing SMTSoloDynFraction of the fully loaded dynamic power); the
// core reaches C1E only when every context has parked in C1E, otherwise an
// idle mix merely halts (§3.2).
func (m *Machine) updatePhysical(phys int) {
	n := m.cfg.SMTContexts
	base := phys * n
	var maxPF, minPF float64
	actives := 0
	allC1E := true
	for i := base; i < base+n; i++ {
		if m.ctxState[i] == cpu.C0 {
			actives++
			pf := m.ctxPF[i]
			if pf >= maxPF {
				minPF = maxPF
				maxPF = pf
			} else if pf > minPF {
				minPF = pf
			}
			allC1E = false
		} else if m.ctxState[i] != cpu.C1E {
			allC1E = false
		}
	}
	switch {
	case actives > 0:
		// Normalise so two fully loaded contexts draw the calibrated
		// CoreDynamicMax: pf = (max + w·min)/(1 + w) with the weight
		// chosen so a lone context draws SMTSoloDynFraction.
		w := 1/m.cfg.SMTSoloDynFraction - 1
		pf := (maxPF + w*minPF) / (1 + w)
		m.Chip.SetActive(phys, pf)
	case allC1E:
		m.Chip.SetIdle(phys, cpu.C1E)
	default:
		m.Chip.SetIdle(phys, cpu.C1Halt)
	}
}

// ProgressRate implements sched.RateProvider: the chip's DVFS/TCC rate,
// scaled by the SMT yield when contexts share a core.
func (m *Machine) ProgressRate() float64 {
	rate := m.Chip.ProgressRate()
	if m.cfg.SMTContexts > 1 {
		rate *= m.cfg.SMTYield
	}
	return rate
}

// ThreadExited implements sched.Listener.
func (m *Machine) ThreadExited(t *sched.Thread) {}

// --- time ---

// Now returns the current virtual time.
func (m *Machine) Now() units.Time { return m.Clock.Now() }

// RunUntil advances the simulation to absolute virtual time t, interleaving
// scheduler events with thermal and energy integration.
func (m *Machine) RunUntil(t units.Time) {
	if t < m.Clock.Now() {
		panic(fmt.Sprintf("machine: RunUntil(%v) before now (%v)", t, m.Clock.Now()))
	}
	m.Clock.AdvanceTo(t, m.integrate)
}

// RunFor advances the simulation by span dt.
func (m *Machine) RunFor(dt units.Time) { m.RunUntil(m.Clock.Now() + dt) }

// integrate advances the continuous state (temperatures, energy, meters)
// across an event-free span.
func (m *Machine) integrate(from, to units.Time) {
	span := to - from
	t := from
	for span > 0 {
		dt := span
		if dt > m.cfg.ThermalStep {
			dt = m.cfg.ThermalStep
		}
		total := m.Net.StepWithChip(dt, m.Chip)
		m.Energy.Add(total, dt)
		m.Meter.Observe(t, t+dt, total)
		temps := m.Net.Junctions(m.lastTemps)
		for i, tj := range temps {
			m.tempIntegral[i] += float64(tj) * dt.Seconds()
		}
		t += dt
		span -= dt
		m.sampleTemps(t, temps)
	}
}

func (m *Machine) sampleTemps(now units.Time, temps []units.Celsius) {
	if m.cfg.TempSampleEvery <= 0 || now < m.nextTempSamp {
		return
	}
	for i, tj := range temps {
		s := m.Recorder.Series(fmt.Sprintf("core%d.temp", i), "C")
		s.Append(now, float64(tj))
		d := m.Recorder.Series(fmt.Sprintf("core%d.dts", i), "C")
		d.Append(now, float64(m.sensors[i].Read(now, tj)))
	}
	m.nextTempSamp = now + m.cfg.TempSampleEvery
}

// --- metrics ---

// JunctionTemps returns the current true junction temperatures.
func (m *Machine) JunctionTemps() []units.Celsius {
	return m.Net.Junctions(nil)
}

// MeanJunctionIntegral returns the across-core mean of the exact junction
// temperature integrals (°C·s since t=0). Experiments snapshot it at window
// boundaries to compute exact time-weighted mean temperatures.
func (m *Machine) MeanJunctionIntegral() float64 {
	var sum float64
	for _, v := range m.tempIntegral {
		sum += v
	}
	return sum / float64(len(m.tempIntegral))
}

// IdleJunctionTemp returns the all-idle equilibrium junction temperature of
// this machine configuration — the paper's "idle temperature" baseline.
// The solve is memoised per thermally-relevant configuration (see idleSolve);
// the running state is not disturbed.
func (m *Machine) IdleJunctionTemp() units.Celsius {
	return idleSolve(&m.cfg, m.Chip.LeakageTempCoupling).mean
}

// TotalWorkDone returns the summed completed work (reference-seconds) across
// all threads, flushing in-progress accounting first.
func (m *Machine) TotalWorkDone() float64 {
	m.Sched.ChargeAll()
	var sum float64
	for _, t := range m.Sched.Threads() {
		sum += t.WorkDone
	}
	return sum
}

// ProcessWorkDone returns the summed completed work of one process's threads.
func (m *Machine) ProcessWorkDone(pid int) float64 {
	m.Sched.ChargeAll()
	var sum float64
	for _, t := range m.Sched.Threads() {
		if t.ProcessID == pid {
			sum += t.WorkDone
		}
	}
	return sum
}
