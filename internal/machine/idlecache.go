package machine

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/cpu"
	"repro/internal/units"
)

// idleSolution is one solved all-idle equilibrium: the full node temperature
// vector of the configuration's thermal path plus the across-core mean of its
// sensed junction temperatures (the paper's "idle temperature" baseline).
type idleSolution struct {
	temps []units.Celsius
	mean  units.Celsius
}

// idleCache memoises all-idle steady-state solves across Machine instances.
// Experiment sweeps build hundreds of machines from value-identical configs;
// without the cache every one of them re-runs the same damped fixed-point
// iteration twice (once at construction, once for the idle baseline). The
// solve is a deterministic function of the fingerprinted inputs, so cache
// hits are bit-identical to fresh solves. sync.Map because trials run
// concurrently under the runner; duplicate computes on a racing miss store
// the same value.
var idleCache sync.Map // fingerprint string -> *idleSolution

// idleFingerprint captures every input consumed by the all-idle solve: the
// processor model (leakage and idle-power constants), the RC path and ambient,
// the hotspot variant, the sensor placement, and the leakage-temperature
// coupling. Fields that cannot reach the solve (seed, scheduler, meter,
// integration step) are deliberately excluded. Floats are rendered with
// strconv's exact hex representation — unit newtypes have lossy few-digit
// String() methods, so %v formatting would let thermally distinct configs
// collide on one key.
func idleFingerprint(cfg *Config, coupling float64) string {
	var b strings.Builder
	f := func(vals ...float64) {
		for _, v := range vals {
			b.WriteString(strconv.FormatFloat(v, 'x', -1, 64))
			b.WriteByte('|')
		}
	}
	m := cfg.Model
	fmt.Fprintf(&b, "%s|%d|%d|%d|", m.Name, m.NumCores, m.TCCDutySteps, int64(m.C1ELatency))
	for _, ps := range m.PStates {
		f(float64(ps.Freq), ps.Voltage)
	}
	f(float64(m.CoreDynamicMax), float64(m.LeakNominal), float64(m.LeakRefTemp),
		float64(m.LeakSlope), m.C1ELeakFactor, float64(m.C1EResidual),
		float64(m.UncoreActive), float64(m.UncoreAllIdle), m.TCCResidualDyn, m.LeakCapFactor)
	f(float64(cfg.Ambient),
		cfg.RJunctionPackage, cfg.RPackageSink, cfg.RSinkAmbient,
		cfg.CJunction, cfg.CPackage, cfg.CSink,
		cfg.FanFactor,
		cfg.HotspotFraction, cfg.RHotspotJunction, cfg.CHotspot,
		coupling)
	fmt.Fprintf(&b, "%t", cfg.SenseHotspot)
	return b.String()
}

// idleSolve returns the all-idle equilibrium for cfg at the given leakage
// coupling, solving and caching it on first use.
func idleSolve(cfg *Config, coupling float64) *idleSolution {
	key := idleFingerprint(cfg, coupling)
	if v, ok := idleCache.Load(key); ok {
		return v.(*idleSolution)
	}
	scratch := NewThermalPath(*cfg)
	idleChip := cpu.NewChip(cfg.Model)
	if coupling != 1 {
		idleChip.LeakageTempCoupling = coupling
	}
	scratch.SolveSteadyState(idleChip)
	sol := &idleSolution{temps: scratch.Net.Temps(nil)}
	var sum float64
	junctions := scratch.Junctions(nil)
	for _, t := range junctions {
		sum += float64(t)
	}
	sol.mean = units.Celsius(sum / float64(len(junctions)))
	idleCache.Store(key, sol)
	return sol
}
