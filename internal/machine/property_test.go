package machine

import (
	"math"
	"testing"

	"repro/internal/cpu"
	"repro/internal/rng"
	"repro/internal/thermal"
	"repro/internal/units"
)

// Property-based invariants at the machine level, over randomised thermal
// configurations far from the calibrated testbed: an all-idle machine stays
// pinned at its equilibrium, perturbed temperatures decay monotonically back
// (in sup-norm — individual nodes may transiently warm as heat flows
// through them), nothing ever cools below ambient, and the memoised
// idle-equilibrium cache returns bitwise-identical results to a fresh solve.

// randomConfig perturbs the calibrated machine across wide but physical
// ranges, deterministically from the trial seed.
func randomConfig(r *rng.Source) Config {
	cfg := DefaultConfig()
	cfg.Meter.Disabled = true
	cfg.Ambient = units.Celsius(15 + 30*r.Float64())
	cfg.RJunctionPackage = 0.3 + 1.2*r.Float64()
	cfg.RPackageSink = 0.02 + 0.08*r.Float64()
	cfg.RSinkAmbient = 0.05 + 0.25*r.Float64()
	cfg.CJunction = 0.01 + 0.07*r.Float64()
	cfg.CPackage = 20 + 60*r.Float64()
	cfg.CSink = 80 + 220*r.Float64()
	cfg.FanFactor = 0.7 + 2.3*r.Float64()
	if r.Bernoulli(0.4) {
		cfg.HotspotFraction = 0.1 + 0.4*r.Float64()
		cfg.SenseHotspot = r.Bernoulli(0.5)
	}
	return cfg
}

func TestPropertyAllIdleMachineHoldsEquilibrium(t *testing.T) {
	for trial := 0; trial < 15; trial++ {
		cfg := randomConfig(rng.New(uint64(8000 + trial)))
		m := New(cfg)
		before := m.JunctionTemps()
		m.RunFor(5 * units.Second)
		after := m.JunctionTemps()
		for i := range before {
			if math.Abs(float64(after[i]-before[i])) > 1e-3 {
				t.Fatalf("trial %d: idle core %d drifted %v -> %v", trial, i, before[i], after[i])
			}
		}
	}
}

// dynamicNodes returns every non-boundary node of the machine's path.
func dynamicNodes(m *Machine) []thermal.NodeID {
	var ids []thermal.NodeID
	ids = append(ids, m.Net.Junction...)
	ids = append(ids, m.Net.Hotspot...)
	ids = append(ids, m.Net.Package, m.Net.Sink)
	return ids
}

// perturbSup heats every dynamic node delta above the given equilibrium and
// returns a closure measuring the sup-norm distance back to it.
func perturbSup(m *Machine, eq []units.Celsius, delta units.Celsius) func() float64 {
	dyn := dynamicNodes(m)
	for _, id := range dyn {
		m.Net.Net.SetTemp(id, eq[id]+delta)
	}
	return func() float64 {
		worst := 0.0
		for _, id := range dyn {
			if off := math.Abs(float64(m.Net.Net.Temp(id) - eq[id])); off > worst {
				worst = off
			}
		}
		return worst
	}
}

func TestPropertyPerturbedIdleDecaysMonotonically(t *testing.T) {
	// With the leakage-temperature coupling frozen the all-idle machine is
	// a pure RC network under constant input, so the sup-norm distance to
	// equilibrium must shrink at every tick (discrete maximum principle).
	// The physical coupling adds a positive feedback that can transiently
	// amplify a uniform perturbation; the convergence test below covers it.
	for trial := 0; trial < 15; trial++ {
		r := rng.New(uint64(9000 + trial))
		cfg := randomConfig(r)
		m := New(cfg)
		m.Chip.LeakageTempCoupling = 0
		eq := idleSolve(&m.cfg, 0).temps
		delta := units.Celsius(1 + 7*r.Float64())
		sup := perturbSup(m, eq, delta)
		last := sup()
		for i := 0; i < 50; i++ {
			m.RunFor(200 * units.Millisecond)
			for _, id := range dynamicNodes(m) {
				if m.Net.Net.Temp(id) < cfg.Ambient-1e-9 {
					t.Fatalf("trial %d: node %d below ambient", trial, id)
				}
			}
			cur := sup()
			if cur > last+1e-9 {
				t.Fatalf("trial %d tick %d: distance to equilibrium rose %v -> %v", trial, i, last, cur)
			}
			last = cur
		}
	}
}

func TestPropertyPerturbedIdleReturnsToEquilibrium(t *testing.T) {
	// Full physical leakage coupling: the transient may overshoot, but the
	// equilibrium is locally stable — a small perturbation must decay back
	// and nothing may cool below ambient on the way. (Large perturbations
	// can legitimately cross the leakage-runaway threshold on badly cooled
	// random configs and settle at the capped-leakage fixed point instead,
	// so this property deliberately stays inside the stability margin.)
	for trial := 0; trial < 10; trial++ {
		r := rng.New(uint64(9500 + trial))
		cfg := randomConfig(r)
		m := New(cfg)
		eq := idleSolve(&m.cfg, 1).temps
		delta := units.Celsius(0.5 + 1.5*r.Float64())
		sup := perturbSup(m, eq, delta)
		// The slowest mode is the heatsink against ambient; give the
		// transient a few of its time constants.
		tau := cfg.CSink * cfg.RSinkAmbient * cfg.FanFactor
		span := units.FromSeconds(6 * tau)
		for i := 0; i < 30; i++ {
			m.RunFor(span / 30)
			for _, id := range dynamicNodes(m) {
				if m.Net.Net.Temp(id) < cfg.Ambient-1e-9 {
					t.Fatalf("trial %d: node %d below ambient", trial, id)
				}
			}
		}
		// Near the leakage stability margin the effective time constant
		// stretches well past the RC estimate, so demand clear progress
		// toward equilibrium rather than a fixed decay fraction.
		if end := sup(); end > float64(delta)*0.9 {
			t.Errorf("trial %d: perturbation %v only decayed to %v after %v", trial, delta, end, span)
		}
	}
}

// freshIdleSolve replicates idleSolve's computation without touching the
// cache: the memoisation must be an invisible optimisation, bit for bit.
func freshIdleSolve(cfg *Config, coupling float64) *idleSolution {
	scratch := NewThermalPath(*cfg)
	idleChip := cpu.NewChip(cfg.Model)
	if coupling != 1 {
		idleChip.LeakageTempCoupling = coupling
	}
	scratch.SolveSteadyState(idleChip)
	sol := &idleSolution{temps: scratch.Net.Temps(nil)}
	var sum float64
	junctions := scratch.Junctions(nil)
	for _, tj := range junctions {
		sum += float64(tj)
	}
	sol.mean = units.Celsius(sum / float64(len(junctions)))
	return sol
}

func TestPropertyIdleCacheBitwiseIdentical(t *testing.T) {
	for trial := 0; trial < 15; trial++ {
		r := rng.New(uint64(10000 + trial))
		cfg := randomConfig(r)
		coupling := 1.0
		if r.Bernoulli(0.3) {
			coupling = 0.5 + r.Float64()
		}
		m := New(cfg) // populates the cache for coupling=1 via construction
		cached := idleSolve(&m.cfg, coupling)
		again := idleSolve(&m.cfg, coupling) // must be the same entry
		if cached != again {
			t.Fatalf("trial %d: repeated idleSolve did not hit the cache", trial)
		}
		fresh := freshIdleSolve(&m.cfg, coupling)
		if math.Float64bits(float64(cached.mean)) != math.Float64bits(float64(fresh.mean)) {
			t.Fatalf("trial %d: cached mean %v != fresh mean %v (bitwise)", trial, cached.mean, fresh.mean)
		}
		if len(cached.temps) != len(fresh.temps) {
			t.Fatalf("trial %d: node count mismatch %d vs %d", trial, len(cached.temps), len(fresh.temps))
		}
		for i := range cached.temps {
			if math.Float64bits(float64(cached.temps[i])) != math.Float64bits(float64(fresh.temps[i])) {
				t.Fatalf("trial %d: node %d cached %v != fresh %v (bitwise)", trial, i, cached.temps[i], fresh.temps[i])
			}
		}
	}
}
