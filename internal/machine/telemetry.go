package machine

import (
	"repro/internal/sched"
	"repro/internal/units"
)

// Telemetry is the point-in-time snapshot a fleet dispatcher reads from a
// machine at a round boundary: the thermal observables and the scheduler
// occupancy counters that placement policies rank machines by. All cumulative
// fields count from t=0; dispatchers difference successive snapshots to get
// per-round rates.
type Telemetry struct {
	Now units.Time

	// True junction temperatures (not the quantised DTS view — a fleet
	// controller owns its machines and reads the model directly, the way
	// a rack-level BMC aggregates inlet and component sensors).
	MaxJunctionC  float64
	MeanJunctionC float64

	// RunnableThreads is the number of runnable-but-waiting threads.
	RunnableThreads int
	// LiveThreads counts spawned threads that have not exited.
	LiveThreads int

	// Cumulative core occupancy summed across scheduler cores.
	BusyS         float64
	InjectedIdleS float64
	// Injections is the cumulative count of injected idle quanta.
	Injections int

	// WorkDone is the cumulative completed work in reference-seconds and
	// EnergyJ the cumulative package energy in joules — the pair a telemetry
	// stream differences into work-rate and mean-power gauges.
	WorkDone float64
	EnergyJ  float64
}

// Telemetry returns the machine's current dispatcher-facing snapshot. It
// flushes in-progress occupancy accounting first, so two machines at the same
// virtual time report comparable counters regardless of where their pending
// timers sit.
func (m *Machine) Telemetry() Telemetry {
	if m.lazy {
		m.flushThermal(m.Now())
	}
	m.Sched.ChargeAll()
	tel := Telemetry{
		Now:             m.Now(),
		RunnableThreads: m.Sched.QueueLen(),
		Injections:      m.Sched.TotalInjections,
		EnergyJ:         float64(m.Energy.Energy()),
	}
	temps := m.Net.Junctions(m.lastTemps)
	var sum float64
	for _, tj := range temps {
		v := float64(tj)
		sum += v
		if v > tel.MaxJunctionC {
			tel.MaxJunctionC = v
		}
	}
	tel.MeanJunctionC = sum / float64(len(temps))
	cores := m.cfg.Model.NumCores * m.cfg.SMTContexts
	var busy, injected units.Time
	for c := 0; c < cores; c++ {
		b, inj := m.Sched.Core(c)
		busy += b
		injected += inj
	}
	tel.BusyS = busy.Seconds()
	tel.InjectedIdleS = injected.Seconds()
	// Thread accounting was flushed by the ChargeAll above; summing WorkDone
	// here avoids TotalWorkDone's second flush on this per-barrier hot path.
	for _, th := range m.Sched.Threads() {
		tel.WorkDone += th.WorkDone
		if !th.Exited() {
			tel.LiveThreads++
		}
	}
	return tel
}

// SchedCores returns the number of scheduler contexts (physical cores ×
// SMT contexts) — the capacity unit placement policies normalise load by.
func (m *Machine) SchedCores() int {
	return m.cfg.Model.NumCores * m.cfg.SMTContexts
}

// Admit is the fleet dispatcher's admission hook: it spawns a routed
// workload's thread on this machine, to start at the current virtual time.
// It is a named seam rather than a raw scheduler call so the admission point
// stays stable if admission control (queueing, rejection) grows here later.
func (m *Machine) Admit(prog sched.Program, cfg sched.SpawnConfig) *sched.Thread {
	return m.Sched.Spawn(prog, cfg)
}

// Evict kills one of this machine's threads, reporting whether it was alive.
// Together with Admit it forms the migration primitive: the dispatcher evicts
// a job's threads here and re-admits their remaining work elsewhere.
func (m *Machine) Evict(t *sched.Thread) bool {
	return m.Sched.Kill(t)
}
