package machine

import (
	"math"
	"testing"

	"repro/internal/sched"
	"repro/internal/units"
	"repro/internal/workload"
)

// These tests exercise the fleet-dispatcher hooks — Telemetry, Admit, Evict
// — interleaved with RunUntil the way the fleetsched engine drives them:
// machines advance to a round barrier, the dispatcher reads telemetry,
// admits routed jobs and evicts migrating ones, and the machine advances
// again. The hooks previously had no direct unit test across barriers.

const round = 100 * units.Millisecond

func newFleetMachine(t *testing.T, integrator string) *Machine {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Meter.Disabled = true
	cfg.Integrator = integrator
	return New(cfg)
}

// TestAdmitEvictAcrossRounds admits jobs at successive round barriers,
// evicts one mid-run in every scheduler state it can occupy, and checks the
// work ledger the migration protocol depends on: an evicted thread's
// WorkDone plus the work it carries away never exceeds what was assigned,
// and telemetry stays consistent around each hook call.
func TestAdmitEvictAcrossRounds(t *testing.T) {
	for _, integ := range []string{IntegratorExact, IntegratorLeap} {
		t.Run(integ, func(t *testing.T) {
			m := newFleetMachine(t, integ)

			// Round 1: admit a full complement plus one queued extra.
			const workS = 1.0
			var threads []*sched.Thread
			for i := 0; i < 5; i++ {
				th := m.Admit(workload.FiniteBurn(workS), sched.SpawnConfig{
					ProcessID:   1000,
					PowerFactor: 1,
				})
				threads = append(threads, th)
			}
			tel0 := m.Telemetry()
			if tel0.LiveThreads != 5 {
				t.Fatalf("live threads after admit = %d, want 5", tel0.LiveThreads)
			}
			if tel0.RunnableThreads != 1 {
				t.Fatalf("runnable (queued) threads = %d, want 1 (4 cores occupied)", tel0.RunnableThreads)
			}

			m.RunUntil(round)
			tel1 := m.Telemetry()
			if tel1.Now != round {
				t.Fatalf("telemetry timestamp %v, want %v", tel1.Now, round)
			}
			if tel1.BusyS <= 0 {
				t.Fatal("no busy time accumulated over a loaded round")
			}
			if tel1.MaxJunctionC <= tel0.MaxJunctionC {
				t.Fatalf("junctions did not heat under load: %v -> %v", tel0.MaxJunctionC, tel1.MaxJunctionC)
			}

			// Round 2 barrier: evict a running thread and a queued thread,
			// carrying their remaining work the way migrate() does.
			running, queued := -1, -1
			for i, th := range threads {
				switch th.State() {
				case sched.StateRunning:
					if running < 0 {
						running = i
					}
				case sched.StateRunnable:
					if queued < 0 {
						queued = i
					}
				}
			}
			if running < 0 || queued < 0 {
				t.Fatalf("expected both running and queued threads at the barrier (states: %v)", threads)
			}
			for _, idx := range []int{running, queued} {
				th := threads[idx]
				done := th.WorkDone
				carry := workS - done
				if carry < 0 {
					t.Fatalf("thread %d overran its assignment: done %v > %v", idx, done, workS)
				}
				if !m.Evict(th) {
					t.Fatalf("evicting live thread %d reported dead", idx)
				}
				if m.Evict(th) {
					t.Fatal("second eviction of the same thread reported alive")
				}
				if th.WorkDone != done {
					t.Fatalf("eviction changed the work ledger: %v -> %v", done, th.WorkDone)
				}
			}
			telE := m.Telemetry()
			if telE.LiveThreads != 3 {
				t.Fatalf("live threads after two evictions = %d, want 3", telE.LiveThreads)
			}

			// Re-admit the carried work (the migration destination's half)
			// and run to completion.
			carry := workS - threads[running].WorkDone
			migrated := m.Admit(workload.FiniteBurn(carry), sched.SpawnConfig{
				ProcessID:   1000,
				PowerFactor: 1,
			})
			m.RunUntil(5 * units.Second)
			if !migrated.Exited() {
				t.Fatal("re-admitted carried work never completed")
			}
			total := m.TotalWorkDone()
			// 4 surviving assignments of workS minus the evicted queued
			// thread's remainder (not re-admitted here), plus the carried
			// re-admission: 3·workS + done(running) + carry + done(queued).
			want := 3*workS + workS + threads[queued].WorkDone
			if math.Abs(total-want) > 1e-6 {
				t.Fatalf("work not conserved across evict/admit: total %v, want %v", total, want)
			}
		})
	}
}

// TestEvictPinnedVictimMidInjection pins a thread under an injected idle
// quantum via ForceIdle and evicts it mid-quantum: the core must finish its
// committed idle window, nothing may resume the dead thread, and telemetry
// keeps counting the injected idle time.
func TestEvictPinnedVictimMidInjection(t *testing.T) {
	m := newFleetMachine(t, IntegratorLeap)
	th := m.Admit(workload.Burn(), sched.SpawnConfig{PowerFactor: 1})
	m.RunUntil(10 * units.Millisecond)
	if th.State() != sched.StateRunning {
		t.Fatalf("thread state %v, want running", th.State())
	}
	if !m.Sched.ForceIdle(0, 50*units.Millisecond) {
		t.Fatal("ForceIdle refused an occupied core")
	}
	if th.State() != sched.StatePinned {
		t.Fatalf("thread state %v, want pinned", th.State())
	}
	if !m.Evict(th) {
		t.Fatal("evicting a pinned victim reported dead")
	}
	m.RunUntil(200 * units.Millisecond)
	tel := m.Telemetry()
	if tel.LiveThreads != 0 {
		t.Fatalf("live threads = %d after evicting the only thread", tel.LiveThreads)
	}
	if tel.InjectedIdleS <= 0 {
		t.Fatal("injected idle quantum vanished from telemetry")
	}
	if th.WorkDone <= 0 {
		t.Fatal("pre-pin progress lost from the evicted thread's ledger")
	}
}

// TestTelemetryMidIntegrationConsistency reads telemetry at irregular,
// sub-tick offsets (forcing flushes inside otherwise-quiescent leap windows)
// and checks the cumulative counters are monotone and the temperature
// observables stay physical — the dispatcher must be able to poll at any
// barrier cadence without disturbing the run.
func TestTelemetryMidIntegrationConsistency(t *testing.T) {
	exact := newFleetMachine(t, IntegratorExact)
	leap := newFleetMachine(t, IntegratorLeap)
	for _, m := range []*Machine{exact, leap} {
		for i := 0; i < 4; i++ {
			m.Admit(workload.PeriodicBurst(0.2, 300*units.Millisecond), sched.SpawnConfig{PowerFactor: 1})
		}
	}
	offsets := []units.Time{
		73 * units.Millisecond, 100 * units.Millisecond, 31 * units.Millisecond,
		250 * units.Millisecond, units.Millisecond, 545 * units.Millisecond,
	}
	var prevE, prevL Telemetry
	now := units.Time(0)
	var worst float64
	for i := 0; i < 12; i++ {
		now += offsets[i%len(offsets)]
		exact.RunUntil(now)
		leap.RunUntil(now)
		te, tl := exact.Telemetry(), leap.Telemetry()
		for name, pair := range map[string][2]float64{
			"busy":     {te.BusyS, prevE.BusyS},
			"injected": {te.InjectedIdleS, prevE.InjectedIdleS},
		} {
			if pair[0] < pair[1] {
				t.Fatalf("exact telemetry %s went backwards: %v -> %v", name, pair[1], pair[0])
			}
		}
		if tl.BusyS < prevL.BusyS {
			t.Fatalf("leap telemetry busy went backwards: %v -> %v", prevL.BusyS, tl.BusyS)
		}
		if te.BusyS != tl.BusyS {
			t.Fatalf("scheduling diverged between integrators: busy %v vs %v", te.BusyS, tl.BusyS)
		}
		if d := math.Abs(te.MaxJunctionC - tl.MaxJunctionC); d > worst {
			worst = d
		}
		prevE, prevL = te, tl
	}
	if worst >= 0.05 {
		t.Fatalf("mid-integration telemetry temps diverged by %.4f C", worst)
	}
}
