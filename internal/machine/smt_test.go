package machine

import (
	"math"
	"testing"

	"repro/internal/cpu"
	"repro/internal/sched"
	"repro/internal/units"
	"repro/internal/workload"
)

func smtConfig(seed uint64) Config {
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.SMTContexts = 2
	return cfg
}

func TestSMTSchedulerSeesLogicalContexts(t *testing.T) {
	m := New(smtConfig(1))
	// 8 logical contexts: 8 burners all run concurrently.
	var threads []*sched.Thread
	for i := 0; i < 8; i++ {
		threads = append(threads, m.Sched.Spawn(workload.Burn(), sched.SpawnConfig{
			Name: "b", PowerFactor: 1,
		}))
	}
	m.RunFor(units.Second)
	m.Sched.ChargeAll()
	for i, th := range threads {
		// Each context progresses at the SMT yield.
		if math.Abs(th.WorkDone-m.Config().SMTYield) > 0.01 {
			t.Errorf("context %d work = %v, want %v", i, th.WorkDone, m.Config().SMTYield)
		}
	}
}

func TestSMTCoreC1EOnlyWhenBothContextsIdle(t *testing.T) {
	m := New(smtConfig(2))
	// Fresh machine: everything idle → C1E.
	if m.Chip.State(0) != cpu.C1E {
		t.Errorf("fresh SMT core state = %v", m.Chip.State(0))
	}
	// Activate context 1 (core 0's second context).
	th := &sched.Thread{PowerFactor: 1}
	m.CoreRunning(1, th)
	if m.Chip.State(0) != cpu.C0 {
		t.Errorf("one active context: core state = %v, want C0", m.Chip.State(0))
	}
	// Idle it again (natural) → back to C1E.
	m.CoreIdle(1, false)
	if m.Chip.State(0) != cpu.C1E {
		t.Errorf("both idle: core state = %v, want C1E", m.Chip.State(0))
	}
}

func TestSMTMixedIdleStatesHalt(t *testing.T) {
	cfg := smtConfig(3)
	cfg.InjectedIdle = cpu.C1Halt
	m := New(cfg)
	// Context 0 naturally idle (C1E), context 1 injected-idle (halt):
	// the core can only halt.
	m.CoreIdle(0, false)
	m.CoreIdle(1, true)
	if m.Chip.State(0) != cpu.C1Halt {
		t.Errorf("mixed idle: core state = %v, want C1Halt", m.Chip.State(0))
	}
}

func TestSMTSoloPowerFraction(t *testing.T) {
	m := New(smtConfig(4))
	th := &sched.Thread{PowerFactor: 1}
	// Both contexts busy: full dynamic power.
	m.CoreRunning(0, th)
	m.CoreRunning(1, th)
	full := float64(m.Chip.CorePower(0, 45))
	// One context busy: the solo fraction.
	m.CoreIdle(1, false)
	solo := float64(m.Chip.CorePower(0, 45))
	if solo >= full {
		t.Fatal("solo context not cheaper than dual")
	}
	// Strip the common leakage (read it from a full-voltage halt) and
	// compare the dynamic components.
	m.Chip.SetIdle(0, cpu.C1Halt)
	leakOnly := float64(m.Chip.CorePower(0, 45)) - float64(m.Chip.Model.C1EResidual)
	gotRatio := (solo - leakOnly) / (full - leakOnly)
	wantRatio := m.Config().SMTSoloDynFraction
	if math.Abs(gotRatio-wantRatio) > 0.01 {
		t.Errorf("solo dynamic fraction = %.3f, want %.3f", gotRatio, wantRatio)
	}
}

func TestSMTDisabledUnchanged(t *testing.T) {
	// SMTContexts=1 must behave identically to the default machine.
	a := New(DefaultConfig())
	cfgB := DefaultConfig()
	cfgB.SMTContexts = 1
	b := New(cfgB)
	for _, m := range []*Machine{a, b} {
		for i := 0; i < 4; i++ {
			m.Sched.Spawn(workload.Burn(), sched.SpawnConfig{Name: "b", PowerFactor: 1})
		}
		m.RunFor(5 * units.Second)
	}
	if a.Energy.Energy() != b.Energy.Energy() {
		t.Errorf("explicit SMTContexts=1 diverged: %v vs %v", a.Energy.Energy(), b.Energy.Energy())
	}
}

func TestHotspotTopology(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HotspotFraction = 0.35
	cfg.SenseHotspot = true
	m := New(cfg)
	if len(m.Net.Hotspot) != cfg.Model.NumCores {
		t.Fatalf("hotspot nodes = %d", len(m.Net.Hotspot))
	}
	// Thermal step capped for the fast nodes.
	if m.Config().ThermalStep > units.Millisecond {
		t.Errorf("thermal step %v not capped with hotspots", m.Config().ThermalStep)
	}
	// Under load, the sensed (hotspot) temperature exceeds the junction
	// block's.
	m.Sched.Spawn(workload.Burn(), sched.SpawnConfig{Name: "b", PowerFactor: 1})
	m.RunFor(10 * units.Second)
	sensed := m.JunctionTemps()[0]
	block := m.Net.Net.Temp(m.Net.Junction[0])
	if sensed <= block {
		t.Errorf("hotspot %v not above junction block %v under load", sensed, block)
	}
	// Without SenseHotspot the metrics read the block.
	cfg2 := DefaultConfig()
	cfg2.HotspotFraction = 0.35
	m2 := New(cfg2)
	m2.Sched.Spawn(workload.Burn(), sched.SpawnConfig{Name: "b", PowerFactor: 1})
	m2.RunFor(10 * units.Second)
	if got, want := m2.JunctionTemps()[0], m2.Net.Net.Temp(m2.Net.Junction[0]); got != want {
		t.Errorf("metrics read %v, junction block is %v", got, want)
	}
}

func TestSMTProgressRate(t *testing.T) {
	m := New(smtConfig(5))
	want := m.Config().SMTYield
	if got := m.ProgressRate(); math.Abs(got-want) > 1e-12 {
		t.Errorf("SMT rate = %v, want %v", got, want)
	}
	m.Chip.SetDuty(0.5)
	if got := m.ProgressRate(); math.Abs(got-want*0.5) > 1e-12 {
		t.Errorf("SMT rate under TCC = %v", got)
	}
	plain := New(DefaultConfig())
	if plain.ProgressRate() != 1.0 {
		t.Errorf("non-SMT rate = %v", plain.ProgressRate())
	}
}
