package machine

import (
	"fmt"
	"testing"

	"repro/internal/sched"
	"repro/internal/units"
	"repro/internal/workload"
)

// TestCalibrationProbe prints the simulated operating points used to tune the
// model constants against the paper's published observables. Run with
// -run TestCalibrationProbe -v to inspect. Assertions are intentionally
// broad; the tight shape checks live in the experiments package.
func TestCalibrationProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration probe is slow")
	}
	cfg := DefaultConfig()
	m := New(cfg)
	idle := m.IdleJunctionTemp()
	fmt.Printf("idle junction temp: %.2fC\n", float64(idle))

	// Idle power.
	m.RunFor(2 * units.Second)
	fmt.Printf("idle power: %.2fW\n", float64(m.Energy.MeanPower()))

	// cpuburn x4, 300 s.
	m2 := New(cfg)
	for i := 0; i < 4; i++ {
		m2.Sched.Spawn(workload.Burn(), sched.SpawnConfig{
			Name:        fmt.Sprintf("burn%d", i),
			PowerFactor: 1.0,
		})
	}
	m2.RunFor(270 * units.Second)
	i0 := m2.MeanJunctionIntegral()
	e0 := m2.Energy.Energy()
	t0 := m2.Now()
	m2.RunFor(30 * units.Second)
	i1 := m2.MeanJunctionIntegral()
	e1 := m2.Energy.Energy()
	t1 := m2.Now()
	meanT := (i1 - i0) / (t1 - t0).Seconds()
	meanP := float64(e1-e0) / (t1 - t0).Seconds()
	fmt.Printf("cpuburn steady junction: %.2fC (rise %.2fC over idle)\n", meanT, meanT-float64(idle))
	fmt.Printf("cpuburn steady power: %.2fW\n", meanP)
	if meanT-float64(idle) < 5 || meanT-float64(idle) > 60 {
		t.Errorf("cpuburn rise %.1fC wildly out of range", meanT-float64(idle))
	}
}
