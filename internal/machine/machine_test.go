package machine

import (
	"math"
	"testing"

	"repro/internal/cpu"
	"repro/internal/sched"
	"repro/internal/units"
	"repro/internal/workload"
)

func TestIdleEquilibrium(t *testing.T) {
	m := New(DefaultConfig())
	idle := float64(m.IdleJunctionTemp())
	amb := float64(m.Config().Ambient)
	if idle <= amb || idle > amb+15 {
		t.Errorf("idle junction %v implausible vs ambient %v", idle, amb)
	}
	// A freshly built machine sits at the idle equilibrium: running it
	// with no workload must not drift.
	before := m.JunctionTemps()[0]
	m.RunFor(5 * units.Second)
	after := m.JunctionTemps()[0]
	if math.Abs(float64(after-before)) > 0.05 {
		t.Errorf("idle machine drifted %v → %v", before, after)
	}
}

func TestIdlePowerBand(t *testing.T) {
	m := New(DefaultConfig())
	m.RunFor(2 * units.Second)
	p := float64(m.Energy.MeanPower())
	if p < 8 || p > 30 {
		t.Errorf("idle power %vW outside the testbed's band", p)
	}
}

func TestCPUBurnOperatingPoint(t *testing.T) {
	m := New(DefaultConfig())
	for i := 0; i < 4; i++ {
		m.Sched.Spawn(workload.Burn(), sched.SpawnConfig{Name: "burn", PowerFactor: 1})
	}
	m.RunFor(120 * units.Second)
	e0 := m.Energy.Energy()
	i0 := m.MeanJunctionIntegral()
	t0 := m.Now()
	m.RunFor(30 * units.Second)
	secs := (m.Now() - t0).Seconds()
	power := float64(m.Energy.Energy()-e0) / secs
	temp := (m.MeanJunctionIntegral() - i0) / secs
	idle := float64(m.IdleJunctionTemp())
	rise := temp - idle
	// The paper's testbed: 80 W TDP part, ~18-25 C rise over idle.
	if power < 60 || power > 90 {
		t.Errorf("cpuburn power %.1fW outside TDP band", power)
	}
	if rise < 12 || rise > 32 {
		t.Errorf("cpuburn rise %.1fC outside calibration band", rise)
	}
}

func TestListenerDrivesChipStates(t *testing.T) {
	m := New(DefaultConfig())
	done := false
	th := m.Sched.Spawn(sched.ProgramFunc(func(units.Time) sched.Action {
		if done {
			return sched.Exit()
		}
		done = true
		return sched.Compute(0.05)
	}), sched.SpawnConfig{Name: "blip", PowerFactor: 0.7})
	if m.Chip.State(0) != cpu.C0 {
		t.Errorf("core 0 state = %v while thread running", m.Chip.State(0))
	}
	m.RunFor(units.Second)
	if !th.Exited() {
		t.Fatal("thread did not exit")
	}
	if m.Chip.State(0) != cpu.C1E {
		t.Errorf("core 0 state = %v after exit, want C1E", m.Chip.State(0))
	}
}

func TestInjectedIdleCStateConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InjectedIdle = cpu.C1Halt
	m := New(cfg)
	m.CoreIdle(1, true)
	if m.Chip.State(1) != cpu.C1Halt {
		t.Errorf("injected idle state = %v, want C1Halt", m.Chip.State(1))
	}
	m.CoreIdle(2, false)
	if m.Chip.State(2) != cpu.C1E {
		t.Errorf("natural idle state = %v, want C1E", m.Chip.State(2))
	}
}

func TestEnergyMatchesMeanPowerIntegral(t *testing.T) {
	m := New(DefaultConfig())
	for i := 0; i < 2; i++ {
		m.Sched.Spawn(workload.Burn(), sched.SpawnConfig{Name: "b", PowerFactor: 1})
	}
	m.RunFor(10 * units.Second)
	e := float64(m.Energy.Energy())
	p := float64(m.Energy.MeanPower())
	if math.Abs(e-p*10) > 1e-6*e {
		t.Errorf("energy %v inconsistent with mean power %v over 10s", e, p)
	}
	if m.Energy.Span() != 10*units.Second {
		t.Errorf("energy span = %v", m.Energy.Span())
	}
}

func TestTempIntegralMatchesSeries(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TempSampleEvery = 100 * units.Millisecond
	m := New(cfg)
	for i := 0; i < 4; i++ {
		m.Sched.Spawn(workload.Burn(), sched.SpawnConfig{Name: "b", PowerFactor: 1})
	}
	m.RunFor(20 * units.Second)
	integralMean := m.MeanJunctionIntegral() / 20
	s := m.Recorder.Lookup("core0.temp")
	if s == nil || s.Len() == 0 {
		t.Fatal("temperature series missing")
	}
	seriesMean, ok := s.MeanOver(0, 20*units.Second)
	if !ok {
		t.Fatal("series mean unavailable")
	}
	// Series is decimated; the means should still agree within a degree.
	if math.Abs(integralMean-seriesMean) > 1.5 {
		t.Errorf("integral mean %.2f vs series mean %.2f", integralMean, seriesMean)
	}
	// DTS series exists and is quantised.
	d := m.Recorder.Lookup("core0.dts")
	if d == nil || d.Len() == 0 {
		t.Fatal("DTS series missing")
	}
	for i := 0; i < d.Len(); i++ {
		v := d.At(i).Value
		if v != math.Floor(v) && v != math.Ceil(v) {
			t.Fatalf("DTS sample %v not whole-degree", v)
		}
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() (float64, float64, units.Celsius) {
		cfg := DefaultConfig()
		cfg.Seed = 77
		m := New(cfg)
		for i := 0; i < 4; i++ {
			m.Sched.Spawn(workload.Burn(), sched.SpawnConfig{Name: "b", PowerFactor: 1})
		}
		m.RunFor(5 * units.Second)
		return float64(m.Energy.Energy()), m.MeanJunctionIntegral(), m.JunctionTemps()[2]
	}
	e1, i1, t1 := run()
	e2, i2, t2 := run()
	if e1 != e2 || i1 != i2 || t1 != t2 {
		t.Errorf("identical seeds diverged: (%v,%v,%v) vs (%v,%v,%v)", e1, i1, t1, e2, i2, t2)
	}
}

func TestRunUntilBackwardsPanics(t *testing.T) {
	m := New(DefaultConfig())
	m.RunFor(units.Second)
	defer func() {
		if recover() == nil {
			t.Error("backwards RunUntil did not panic")
		}
	}()
	m.RunUntil(500 * units.Millisecond)
}

func TestProcessWorkDone(t *testing.T) {
	m := New(DefaultConfig())
	m.Sched.Spawn(workload.Burn(), sched.SpawnConfig{Name: "p1", ProcessID: 1, PowerFactor: 1})
	m.Sched.Spawn(workload.Burn(), sched.SpawnConfig{Name: "p2", ProcessID: 2, PowerFactor: 1})
	m.RunFor(2 * units.Second)
	w1 := m.ProcessWorkDone(1)
	w2 := m.ProcessWorkDone(2)
	total := m.TotalWorkDone()
	if math.Abs(w1-2) > 0.01 || math.Abs(w2-2) > 0.01 {
		t.Errorf("per-process work = %v, %v", w1, w2)
	}
	if math.Abs(total-(w1+w2)) > 1e-9 {
		t.Errorf("total %v != %v + %v", total, w1, w2)
	}
	if m.ProcessWorkDone(99) != 0 {
		t.Error("unknown process has work")
	}
}

func TestPowerTraceRecording(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RecordPower = true
	m := New(cfg)
	m.Sched.Spawn(workload.Burn(), sched.SpawnConfig{Name: "b", PowerFactor: 1})
	m.RunFor(units.Second)
	s := m.Recorder.Lookup("package.power")
	if s == nil {
		t.Fatal("power series missing")
	}
	// 3 samples/ms over 1 s.
	if s.Len() < 2900 || s.Len() > 3100 {
		t.Errorf("power samples = %d, want ≈3000", s.Len())
	}
	if s.Mean() < 20 || s.Mean() > 90 {
		t.Errorf("power trace mean %v implausible", s.Mean())
	}
}

func TestFanFactorRaisesTemperature(t *testing.T) {
	hot := DefaultConfig()
	hot.FanFactor = 2 // half the airflow
	mHot := New(hot)
	mRef := New(DefaultConfig())
	for _, m := range []*Machine{mHot, mRef} {
		for i := 0; i < 4; i++ {
			m.Sched.Spawn(workload.Burn(), sched.SpawnConfig{Name: "b", PowerFactor: 1})
		}
		m.RunFor(60 * units.Second)
	}
	if mHot.Net.MeanJunction() <= mRef.Net.MeanJunction() {
		t.Errorf("reduced airflow did not raise temperature: %v vs %v",
			mHot.Net.MeanJunction(), mRef.Net.MeanJunction())
	}
}
