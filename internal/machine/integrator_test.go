package machine

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/units"
	"repro/internal/workload"
)

// buildPair builds two identical machines differing only in integrator mode
// and applies the same deterministic setup to both.
func buildPair(t *testing.T, mutate func(*Config), setup func(*Machine)) (exact, leap *Machine) {
	t.Helper()
	mk := func(mode string) *Machine {
		cfg := DefaultConfig()
		cfg.Meter.Disabled = true
		cfg.Integrator = mode
		if mutate != nil {
			mutate(&cfg)
		}
		m := New(cfg)
		if setup != nil {
			setup(m)
		}
		return m
	}
	exact = mk(IntegratorExact)
	leap = mk(IntegratorLeap)
	if exact.LeapActive() {
		t.Fatal("exact machine reports leap active")
	}
	if !leap.LeapActive() {
		t.Fatal("leap machine did not activate the leap integrator")
	}
	return exact, leap
}

// maxJunctionDiff returns the max-abs per-core junction temperature
// difference between two machines at their current (equal) virtual times.
func maxJunctionDiff(a, b *Machine) float64 {
	ta, tb := a.JunctionTemps(), b.JunctionTemps()
	var worst float64
	for i := range ta {
		d := math.Abs(float64(ta[i]) - float64(tb[i]))
		if d > worst {
			worst = d
		}
	}
	return worst
}

// TestLeapMatchesExactUnderInjection is the max-abs-temp-divergence property
// test for the leap integrator under the paper's own workload shape: four
// cpuburn threads under a probabilistic injection policy, which exercises
// quiescent windows of every length between injection, quantum and
// work-completion events. Sampled at the scenario metric tick, the leap
// trajectory must track the exact integrator far inside the 0.05 °C band
// the golden harness accepts.
func TestLeapMatchesExactUnderInjection(t *testing.T) {
	setup := func(m *Machine) {
		ctl := core.NewController(m.RNG.Split())
		if err := ctl.SetGlobal(core.Params{P: 0.5, L: 25 * units.Millisecond}); err != nil {
			t.Fatal(err)
		}
		m.Sched.SetInjector(ctl)
		for i := 0; i < 4; i++ {
			m.Sched.Spawn(workload.Burn(), sched.SpawnConfig{PowerFactor: 1})
		}
	}
	exact, leap := buildPair(t, nil, setup)

	const tick = 100 * units.Millisecond
	var worst float64
	for exact.Now() < 20*units.Second {
		exact.RunFor(tick)
		leap.RunFor(tick)
		if d := maxJunctionDiff(exact, leap); d > worst {
			worst = d
		}
	}
	if worst >= 0.05 {
		t.Fatalf("leap diverged from exact by %.4f C (>= 0.05 C)", worst)
	}
	t.Logf("max junction divergence over 20 s: %.6f C", worst)

	if ie, il := exact.MeanJunctionIntegral(), leap.MeanJunctionIntegral(); math.Abs(ie-il)/ie > 1e-3 {
		t.Errorf("temperature integrals diverged: exact %.6f leap %.6f", ie, il)
	}
	ee := float64(exact.Energy.Energy())
	el := float64(leap.Energy.Energy())
	if math.Abs(ee-el)/ee > 1e-3 {
		t.Errorf("energy diverged: exact %.3f J leap %.3f J", ee, el)
	}
	if we, wl := exact.TotalWorkDone(), leap.TotalWorkDone(); we != wl {
		t.Errorf("work done diverged (scheduling must be integrator-independent): exact %v leap %v", we, wl)
	}
	chunks, steps := leap.Net.Net.LeapStats()
	if steps == 0 {
		t.Fatal("leap integrator never engaged")
	}
	if chunks >= steps {
		t.Errorf("leap compressed nothing: %d chunks for %d steps", chunks, steps)
	}
	t.Logf("leap compression: %d steps in %d chunks (%.1fx)", steps, chunks, float64(steps)/float64(chunks))
}

// TestLeapMatchesExactIdleDecay covers the long fully quiescent window: a
// heated machine whose threads exit, leaving tens of seconds of event-free
// exponential cool-down — the regime where the propagator leaps thousands of
// steps per chunk and the frozen-leakage error controller matters most.
func TestLeapMatchesExactIdleDecay(t *testing.T) {
	setup := func(m *Machine) {
		for i := 0; i < 4; i++ {
			m.Sched.Spawn(workload.FiniteBurn(5), sched.SpawnConfig{PowerFactor: 1})
		}
	}
	exact, leap := buildPair(t, nil, setup)

	// Heat-up with events, then one long span across the decay.
	for _, span := range []units.Time{6 * units.Second, 30 * units.Second, 60 * units.Second} {
		exact.RunFor(span)
		leap.RunFor(span)
		if d := maxJunctionDiff(exact, leap); d >= 0.05 {
			t.Fatalf("after %v: divergence %.4f C (>= 0.05 C)", span, d)
		}
	}
	if ie, il := exact.MeanJunctionIntegral(), leap.MeanJunctionIntegral(); math.Abs(ie-il)/ie > 1e-3 {
		t.Errorf("temperature integrals diverged: exact %.6f leap %.6f", ie, il)
	}
	chunks, steps := leap.Net.Net.LeapStats()
	if steps == 0 {
		t.Fatal("leap integrator never engaged")
	}
	if ratio := float64(steps) / float64(chunks); ratio < 10 {
		t.Errorf("idle decay should leap many steps per chunk, got %.1f", ratio)
	}
}

// TestLeapHotspotConfig checks the leap path against the five-node-per-core
// hotspot topology (millisecond time constants, 1 ms step cap).
func TestLeapHotspotConfig(t *testing.T) {
	mutate := func(cfg *Config) {
		cfg.HotspotFraction = 0.3
		cfg.SenseHotspot = true
	}
	setup := func(m *Machine) {
		for i := 0; i < 4; i++ {
			m.Sched.Spawn(workload.PeriodicBurst(0.4, 600*units.Millisecond), sched.SpawnConfig{PowerFactor: 1})
		}
	}
	exact, leap := buildPair(t, mutate, setup)
	for exact.Now() < 5*units.Second {
		exact.RunFor(100 * units.Millisecond)
		leap.RunFor(100 * units.Millisecond)
		if d := maxJunctionDiff(exact, leap); d >= 0.05 {
			t.Fatalf("hotspot divergence %.4f C (>= 0.05 C)", d)
		}
	}
}

// TestLeapFallsBackForIntraSpanObservers pins the gating rule: a leap
// request with the meter chain or temperature tracing enabled integrates
// exactly (those observers sample inside spans).
func TestLeapFallsBackForIntraSpanObservers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Integrator = IntegratorLeap
	if m := New(cfg); m.LeapActive() {
		t.Error("leap active with the meter chain enabled")
	}
	cfg.Meter.Disabled = true
	cfg.TempSampleEvery = 50 * units.Millisecond
	if m := New(cfg); m.LeapActive() {
		t.Error("leap active with temperature tracing enabled")
	}
	cfg.TempSampleEvery = 0
	if m := New(cfg); !m.LeapActive() {
		t.Error("leap inactive with no intra-span observers")
	}
}

// TestIntegratorOverride pins the resolution order: explicit config beats
// the process-wide override beats the exact default.
func TestIntegratorOverride(t *testing.T) {
	if err := SetIntegratorOverride("warp"); err == nil {
		t.Error("unknown override accepted")
	}
	if err := SetIntegratorOverride(IntegratorLeap); err != nil {
		t.Fatal(err)
	}
	defer SetIntegratorOverride("")
	cfg := DefaultConfig()
	cfg.Meter.Disabled = true
	if m := New(cfg); !m.LeapActive() {
		t.Error("override did not reach an empty-integrator config")
	}
	cfg.Integrator = IntegratorExact
	if m := New(cfg); m.LeapActive() {
		t.Error("explicit exact lost to the override")
	}
	if got := New(cfg).Config().Integrator; got != IntegratorExact {
		t.Errorf("resolved integrator = %q, want exact", got)
	}
}

// TestSteadySteppingZeroAllocs is the -benchmem contract as a hard test:
// once warm, event-free integration allocates nothing on either integrator,
// and the dispatcher-facing telemetry snapshot is allocation-free too.
func TestSteadySteppingZeroAllocs(t *testing.T) {
	for _, mode := range []string{IntegratorExact, IntegratorLeap} {
		cfg := DefaultConfig()
		cfg.Meter.Disabled = true
		cfg.Integrator = mode
		m := New(cfg)
		m.RunFor(units.Second) // warm caches, ladders and scratch
		if n := testing.AllocsPerRun(20, func() {
			m.RunFor(100 * units.Millisecond)
		}); n > 0 {
			t.Errorf("%s: steady idle stepping allocates %.1f/op, want 0", mode, n)
		}
		if n := testing.AllocsPerRun(20, func() {
			_ = m.Telemetry()
		}); n > 0 {
			t.Errorf("%s: Telemetry allocates %.1f/op, want 0", mode, n)
		}
	}
}
