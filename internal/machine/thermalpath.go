package machine

import (
	"repro/internal/cpu"
	"repro/internal/thermal"
	"repro/internal/units"
)

// ThermalPath is the testbed's concrete RC network: one junction node per
// core (optionally with a fast hotspot sub-node), a shared package/spreader
// node, a heatsink node, and the ambient boundary. Core power enters at the
// junctions (split with the hotspots when enabled); uncore power at the
// package.
type ThermalPath struct {
	Net       *thermal.Network
	Junction  []thermal.NodeID
	Hotspot   []thermal.NodeID // empty unless Config.HotspotFraction > 0
	Package   thermal.NodeID
	Sink      thermal.NodeID
	AmbientID thermal.NodeID

	hotFrac  float64
	sense    []thermal.NodeID // nodes the sensors/metrics read
	maxStep  units.Time
	tempsBuf []units.Celsius
	outBuf   []units.Celsius

	// Step/leap scratch: the chip and total for the in-flight HeatInput
	// call, and the per-node temperature-sum buffer leap windows
	// accumulate into. Pre-sized so steady-state stepping allocates
	// nothing (the path itself is the thermal.HeatSource, not a closure).
	chip    *cpu.Chip
	total   units.Watts
	nodeSum []float64

	// Leap linearisation stash: per-core ∂P/∂T, power and junction
	// temperature captured during the last qualifying HeatInput
	// evaluation (wantSlope is set only on the leap path, so exact
	// stepping keeps calling the historical CorePower entry point). The
	// stash is keyed by the chip's per-core power-model epochs: as long
	// as a core's epoch and its junction temperature stay close, its
	// power is served by the stashed affine model instead of a fresh
	// leakage exponential.
	wantSlope bool
	slopes    []float64
	evalCP    []float64
	evalTj    []float64
	evalEpoch []uint64
	evalCoupl float64
}

// relinRadiusC is the per-core temperature drift (°C) within which a
// stashed power linearisation stays valid across spans — the same radius
// the leap controller uses for its own window-level relinearisation, so
// the two layers share one error budget. The leakage curvature residual at
// this radius is ~0.1 W, far below the controller's drift bound.
const relinRadiusC = thermal.RelinRadiusC

// NewThermalPath builds the network described by cfg with every node at the
// ambient temperature.
func NewThermalPath(cfg Config) *ThermalPath {
	p := &ThermalPath{Net: thermal.NewNetwork(), maxStep: cfg.ThermalStep}
	amb := cfg.Ambient
	p.AmbientID = p.Net.AddBoundary("ambient", amb)
	p.Sink = p.Net.AddNode("heatsink", cfg.CSink, amb)
	p.Package = p.Net.AddNode("package", cfg.CPackage, amb)
	p.Net.Connect(p.Sink, p.AmbientID, cfg.RSinkAmbient*cfg.FanFactor)
	p.Net.Connect(p.Package, p.Sink, cfg.RPackageSink)
	n := cfg.Model.NumCores
	for i := 0; i < n; i++ {
		j := p.Net.AddNode("junction", cfg.CJunction, amb)
		p.Net.Connect(j, p.Package, cfg.RJunctionPackage)
		p.Junction = append(p.Junction, j)
	}
	if cfg.HotspotFraction > 0 {
		p.hotFrac = cfg.HotspotFraction
		rhj := cfg.RHotspotJunction
		if rhj <= 0 {
			rhj = 0.6 // a few degrees of local rise at a few watts
		}
		ch := cfg.CHotspot
		if ch <= 0 {
			ch = 0.0035 // τ ≈ 2 ms against the junction block
		}
		for i := 0; i < n; i++ {
			h := p.Net.AddNode("hotspot", ch, amb)
			p.Net.Connect(h, p.Junction[i], rhj)
			p.Hotspot = append(p.Hotspot, h)
		}
	}
	p.sense = p.Junction
	if cfg.SenseHotspot && len(p.Hotspot) > 0 {
		p.sense = p.Hotspot
	}
	p.nodeSum = make([]float64, p.Net.NumNodes())
	p.Net.SetLeapSumRows(p.sense)
	p.slopes = make([]float64, n)
	p.evalCP = make([]float64, n)
	p.evalTj = make([]float64, n)
	p.evalEpoch = make([]uint64, n)
	for i := range p.evalEpoch {
		p.evalEpoch[i] = ^uint64(0) // no stash yet
	}
	return p
}

// powerFromChip fills `out` (indexed by thermal NodeID) with the chip's heat
// inputs for the given node temperatures and returns the total package power.
// Leakage is generated across the whole core area, so it is evaluated at the
// junction block temperature regardless of where the sensor sits; the
// hotspot, when present, is an observable plus a heat concentration point.
func (p *ThermalPath) powerFromChip(chip *cpu.Chip, temps []float64, out []float64) units.Watts {
	total := chip.UncorePower()
	out[p.Package] += float64(total)
	if p.wantSlope {
		if p.evalCoupl != chip.LeakageTempCoupling {
			// Coupling is a raw field (the leakage ablation): a change
			// invalidates every stash.
			p.evalCoupl = chip.LeakageTempCoupling
			for i := range p.evalEpoch {
				p.evalEpoch[i] = ^uint64(0)
			}
		}
	}
	for i, j := range p.Junction {
		var cp units.Watts
		if p.wantSlope {
			// Per-core linearisation memo: while the core's power-model
			// epoch is unchanged and its junction has drifted less than
			// relinRadiusC from the stash point, the stashed affine
			// model replaces the leakage exponential — events that
			// toggle one core leave the other stashes live.
			tj := temps[j]
			if d := tj - p.evalTj[i]; p.evalEpoch[i] == chip.CoreEpoch(i) &&
				d <= relinRadiusC && d >= -relinRadiusC {
				cp = units.Watts(p.evalCP[i] + p.slopes[i]*d)
			} else {
				cp, p.slopes[i] = chip.CorePowerAndSlope(i, units.Celsius(tj))
				p.evalCP[i] = float64(cp)
				p.evalTj[i] = tj
				p.evalEpoch[i] = chip.CoreEpoch(i)
			}
		} else {
			cp = chip.CorePower(i, units.Celsius(temps[j]))
		}
		if p.hotFrac > 0 {
			out[p.Hotspot[i]] += float64(cp) * p.hotFrac
			out[j] += float64(cp) * (1 - p.hotFrac)
		} else {
			out[j] += float64(cp)
		}
		total += cp
	}
	return total
}

// HeatInput implements thermal.HeatSource against the chip installed by
// StepWithChip/LeapWithChip, recording the total package power of the
// evaluation. Implementing the interface on the path itself (rather than a
// per-step closure) keeps the hot loop allocation-free.
func (p *ThermalPath) HeatInput(temps []float64, out []float64) {
	p.total = p.powerFromChip(p.chip, temps, out)
}

// StepPolyMemo advances one step (up to ThermalStep) with the
// polynomial-decay kernel, evaluating power through the per-core
// linearisation memo — the leap path's short-window and remainder case,
// whose essentially unique step sizes would otherwise recompute the decay
// exponentials on every call. Returns the total package power used.
func (p *ThermalPath) StepPolyMemo(dt units.Time, chip *cpu.Chip) units.Watts {
	p.chip = chip
	p.wantSlope = true
	p.Net.StepPolyFrom(dt, p)
	p.wantSlope = false
	return p.total
}

// HeatLinear implements thermal.QuiescentSource: the first-order change of
// the heat inputs under a temperature perturbation dT around the most
// recent HeatInput evaluation, using the per-core slopes stashed by that
// evaluation — no second leakage exponential. Only leakage tracks
// temperature, evaluated at the junction block and deposited wherever the
// core's power goes (split with the hotspot node when one is configured),
// so the linearisation mirrors powerFromChip's routing exactly.
func (p *ThermalPath) HeatLinear(temps, dT, dp []float64) {
	_ = temps // linearisation point is pinned by the last HeatInput call
	for i, j := range p.Junction {
		d := p.slopes[i] * dT[j]
		if p.hotFrac > 0 {
			dp[p.Hotspot[i]] += d * p.hotFrac
			dp[j] += d * (1 - p.hotFrac)
		} else {
			dp[j] += d
		}
	}
}

// StepWithChip advances the thermal state by dt with the chip's current
// configuration as the heat source, returning the total package power at the
// start of the step (the value integrated for energy accounting).
func (p *ThermalPath) StepWithChip(dt units.Time, chip *cpu.Chip) units.Watts {
	p.chip = chip
	p.Net.StepFrom(dt, p)
	return p.total
}

// LeapWithChip advances the thermal state across k equal steps of dt under a
// frozen chip configuration via the quiescence-leaping integrator, adding
// each sensed core's discrete post-step temperature sum (°C·steps) into
// senseSum and returning the summed total package power across the window
// (W·steps). senseSum must have one entry per sensed core.
func (p *ThermalPath) LeapWithChip(k int, dt units.Time, chip *cpu.Chip, senseSum []float64) float64 {
	p.chip = chip
	p.wantSlope = true
	for i := range p.nodeSum {
		p.nodeSum[i] = 0
	}
	powSum := p.Net.LeapSteps(k, dt, p, p.nodeSum)
	p.wantSlope = false
	for i, id := range p.sense {
		senseSum[i] += p.nodeSum[id]
	}
	return powSum
}

// SolveSteadyState drives the network to equilibrium for the chip's current
// configuration (temperature-dependent leakage included).
func (p *ThermalPath) SolveSteadyState(chip *cpu.Chip) {
	p.Net.SolveSteadyState(func(temps []float64, out []float64) {
		p.powerFromChip(chip, temps, out)
	}, 1e-7, 200000)
}

// Junctions returns the sensed per-core temperatures (junction block, or
// hotspot when SenseHotspot is configured), reusing dst when possible.
func (p *ThermalPath) Junctions(dst []units.Celsius) []units.Celsius {
	if cap(dst) < len(p.sense) {
		dst = make([]units.Celsius, len(p.sense))
	}
	dst = dst[:len(p.sense)]
	for i, j := range p.sense {
		dst[i] = p.Net.Temp(j)
	}
	return dst
}

// MeanJunction returns the across-core mean sensed temperature.
func (p *ThermalPath) MeanJunction() units.Celsius {
	var sum float64
	for _, j := range p.sense {
		sum += float64(p.Net.Temp(j))
	}
	return units.Celsius(sum / float64(len(p.sense)))
}
