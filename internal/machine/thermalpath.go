package machine

import (
	"repro/internal/cpu"
	"repro/internal/thermal"
	"repro/internal/units"
)

// ThermalPath is the testbed's concrete RC network: one junction node per
// core (optionally with a fast hotspot sub-node), a shared package/spreader
// node, a heatsink node, and the ambient boundary. Core power enters at the
// junctions (split with the hotspots when enabled); uncore power at the
// package.
type ThermalPath struct {
	Net       *thermal.Network
	Junction  []thermal.NodeID
	Hotspot   []thermal.NodeID // empty unless Config.HotspotFraction > 0
	Package   thermal.NodeID
	Sink      thermal.NodeID
	AmbientID thermal.NodeID

	hotFrac  float64
	sense    []thermal.NodeID // nodes the sensors/metrics read
	maxStep  units.Time
	tempsBuf []units.Celsius
	outBuf   []units.Celsius
}

// NewThermalPath builds the network described by cfg with every node at the
// ambient temperature.
func NewThermalPath(cfg Config) *ThermalPath {
	p := &ThermalPath{Net: thermal.NewNetwork(), maxStep: cfg.ThermalStep}
	amb := cfg.Ambient
	p.AmbientID = p.Net.AddBoundary("ambient", amb)
	p.Sink = p.Net.AddNode("heatsink", cfg.CSink, amb)
	p.Package = p.Net.AddNode("package", cfg.CPackage, amb)
	p.Net.Connect(p.Sink, p.AmbientID, cfg.RSinkAmbient*cfg.FanFactor)
	p.Net.Connect(p.Package, p.Sink, cfg.RPackageSink)
	n := cfg.Model.NumCores
	for i := 0; i < n; i++ {
		j := p.Net.AddNode("junction", cfg.CJunction, amb)
		p.Net.Connect(j, p.Package, cfg.RJunctionPackage)
		p.Junction = append(p.Junction, j)
	}
	if cfg.HotspotFraction > 0 {
		p.hotFrac = cfg.HotspotFraction
		rhj := cfg.RHotspotJunction
		if rhj <= 0 {
			rhj = 0.6 // a few degrees of local rise at a few watts
		}
		ch := cfg.CHotspot
		if ch <= 0 {
			ch = 0.0035 // τ ≈ 2 ms against the junction block
		}
		for i := 0; i < n; i++ {
			h := p.Net.AddNode("hotspot", ch, amb)
			p.Net.Connect(h, p.Junction[i], rhj)
			p.Hotspot = append(p.Hotspot, h)
		}
	}
	p.sense = p.Junction
	if cfg.SenseHotspot && len(p.Hotspot) > 0 {
		p.sense = p.Hotspot
	}
	return p
}

// powerFromChip fills `out` (indexed by thermal NodeID) with the chip's heat
// inputs for the given node temperatures and returns the total package power.
// Leakage is generated across the whole core area, so it is evaluated at the
// junction block temperature regardless of where the sensor sits; the
// hotspot, when present, is an observable plus a heat concentration point.
func (p *ThermalPath) powerFromChip(chip *cpu.Chip, temps []float64, out []float64) units.Watts {
	total := chip.UncorePower()
	out[p.Package] += float64(total)
	for i, j := range p.Junction {
		cp := chip.CorePower(i, units.Celsius(temps[j]))
		if p.hotFrac > 0 {
			out[p.Hotspot[i]] += float64(cp) * p.hotFrac
			out[j] += float64(cp) * (1 - p.hotFrac)
		} else {
			out[j] += float64(cp)
		}
		total += cp
	}
	return total
}

// StepWithChip advances the thermal state by dt with the chip's current
// configuration as the heat source, returning the total package power at the
// start of the step (the value integrated for energy accounting).
func (p *ThermalPath) StepWithChip(dt units.Time, chip *cpu.Chip) units.Watts {
	var total units.Watts
	p.Net.Step(dt, func(temps []float64, out []float64) {
		total = p.powerFromChip(chip, temps, out)
	})
	return total
}

// SolveSteadyState drives the network to equilibrium for the chip's current
// configuration (temperature-dependent leakage included).
func (p *ThermalPath) SolveSteadyState(chip *cpu.Chip) {
	p.Net.SolveSteadyState(func(temps []float64, out []float64) {
		p.powerFromChip(chip, temps, out)
	}, 1e-7, 200000)
}

// Junctions returns the sensed per-core temperatures (junction block, or
// hotspot when SenseHotspot is configured), reusing dst when possible.
func (p *ThermalPath) Junctions(dst []units.Celsius) []units.Celsius {
	if cap(dst) < len(p.sense) {
		dst = make([]units.Celsius, len(p.sense))
	}
	dst = dst[:len(p.sense)]
	for i, j := range p.sense {
		dst[i] = p.Net.Temp(j)
	}
	return dst
}

// MeanJunction returns the across-core mean sensed temperature.
func (p *ThermalPath) MeanJunction() units.Celsius {
	var sum float64
	for _, j := range p.sense {
		sum += float64(p.Net.Temp(j))
	}
	return units.Celsius(sum / float64(len(p.sense)))
}
