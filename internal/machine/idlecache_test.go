package machine

import (
	"testing"
)

// TestIdleFingerprintExactness pins the two properties the idle cache needs:
// value-identical configs built from fresh Model allocations share a key
// (otherwise the cache never hits), and thermally distinct configs never
// share one — including values that collide under the unit newtypes' lossy
// few-digit String() rendering (25.2 vs 25.16 both print "25.2").
func TestIdleFingerprintExactness(t *testing.T) {
	a := DefaultConfig()
	b := DefaultConfig()
	if idleFingerprint(&a, 1) != idleFingerprint(&b, 1) {
		t.Fatal("fresh value-identical configs must share a fingerprint")
	}
	if idleFingerprint(&a, 1) == idleFingerprint(&a, 0) {
		t.Fatal("leakage coupling must be part of the key")
	}

	close := DefaultConfig()
	close.Ambient = 25.16 // renders identically to 25.2 via Celsius.String
	if idleFingerprint(&a, 1) == idleFingerprint(&close, 1) {
		t.Fatal("Ambient 25.2 and 25.16 must not collide")
	}
	if got, want := New(close).IdleJunctionTemp(), New(a).IdleJunctionTemp(); got == want {
		t.Fatalf("distinct ambients returned the same cached idle temp %v", got)
	}

	model := DefaultConfig()
	model.Model.LeakNominal = 8.04 // renders identically to 8.0 via Watts.String
	if idleFingerprint(&a, 1) == idleFingerprint(&model, 1) {
		t.Fatal("LeakNominal 8.0 and 8.04 must not collide")
	}
}
