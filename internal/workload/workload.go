// Package workload provides the benchmark programs of the paper's
// evaluation: the cpuburn worst-case thermal stressor, synthetic proxies for
// the six SPEC CPU2006 benchmarks of Table 1, and the periodic "cool" process
// of the per-thread control demonstration (Figure 5).
//
// SPEC CPU2006 binaries are proprietary and cannot ship with this
// reproduction. The paper established that its selected benchmarks are
// entirely CPU-bound with full scheduling quanta, and that what distinguishes
// them thermally is the amount of heat they generate (Table 1's "Rise (%)"
// column). The proxies therefore model each benchmark as a CPU-bound loop
// with a calibrated activity (power) factor chosen so its unconstrained
// temperature rise over idle reproduces the published percentage of
// cpuburn's rise. DESIGN.md records this substitution.
package workload

import (
	"fmt"

	"repro/internal/sched"
	"repro/internal/units"
)

// Burn returns a program that computes forever in fixed-size chunks — the
// cpuburn infinite loop. The chunk size only controls internal bookkeeping
// granularity (quantum rotation is driven by the scheduler's timeslice).
func Burn() sched.Program {
	return sched.ProgramFunc(func(units.Time) sched.Action {
		return sched.Compute(1.0)
	})
}

// FiniteBurn returns a program that computes for exactly work
// reference-seconds and exits — the finite cpuburn loop of the §3.3 model
// validation runs.
func FiniteBurn(work float64) sched.Program {
	remaining := work
	return sched.ProgramFunc(func(units.Time) sched.Action {
		if remaining <= 0 {
			return sched.Exit()
		}
		chunk := remaining
		if chunk > 1.0 {
			chunk = 1.0
		}
		remaining -= chunk
		return sched.Compute(chunk)
	})
}

// Modulated returns a program whose CPU duty cycle tracks an arbitrary load
// envelope — the building block of the scenario engine's arrival patterns
// (diurnal datacenter load, flash-crowd surges). Time is sliced into frames
// anchored at absolute multiples of frame, so every Modulated thread in a
// fleet samples the envelope at the same instants; at each frame boundary the
// program samples envelope(frameStart), clamps it to [0, 1], computes that
// fraction of the frame as work, and sleeps out the remainder. Contention or
// idle injection may stretch a burst past its frame; the program then starts
// the next frame immediately (backlogged load, as a real generator behaves).
func Modulated(envelope func(units.Time) float64, frame units.Time) sched.Program {
	if frame <= 0 {
		panic("workload: Modulated needs a positive frame")
	}
	computing := false
	var frameEnd units.Time
	return sched.ProgramFunc(func(now units.Time) sched.Action {
		if computing {
			computing = false
			if now < frameEnd {
				return sched.Sleep(frameEnd - now)
			}
		}
		start := (now / frame) * frame
		frameEnd = start + frame
		level := envelope(start)
		if level <= 0 {
			return sched.Sleep(frameEnd - now)
		}
		if level > 1 {
			level = 1
		}
		computing = true
		return sched.Compute(level * frame.Seconds())
	})
}

// Trojan returns a MATTER-style adversarial thermal workload: a full-power
// square wave whose period is chosen near the junction block's thermal time
// constant, so the junction rides the top of its exponential response —
// maximising peak temperature per unit of average utilisation, which is how a
// thermal trojan hides from utilisation-based monitoring while stressing a
// preventive DTM system. duty is the on-fraction in (0, 1]; threads spawned
// together burst in phase, the fleet-wide worst case.
func Trojan(period units.Time, duty float64) sched.Program {
	if period <= 0 {
		panic("workload: Trojan needs a positive period")
	}
	if duty <= 0 || duty > 1 {
		panic(fmt.Sprintf("workload: Trojan duty %v outside (0,1]", duty))
	}
	if duty == 1 {
		return Burn()
	}
	on := period.Seconds() * duty
	pause := units.FromSeconds(period.Seconds() * (1 - duty))
	return PeriodicBurst(on, pause)
}

// PeriodicBurst returns the Figure 5 "cool" process: a loop that computes for
// burst reference-seconds, sleeps for pause, and repeats.
func PeriodicBurst(burst float64, pause units.Time) sched.Program {
	computing := false
	return sched.ProgramFunc(func(units.Time) sched.Action {
		computing = !computing
		if computing {
			return sched.Compute(burst)
		}
		return sched.Sleep(pause)
	})
}

// Spec describes one SPEC CPU2006 proxy benchmark.
type Spec struct {
	Name string
	// PowerFactor is the calibrated activity factor reproducing the
	// benchmark's published unconstrained rise over idle.
	PowerFactor float64
	// PaperRisePct is Table 1's "Rise (%)" column: the benchmark's
	// temperature rise as a percentage of cpuburn's.
	PaperRisePct float64
	// PaperAlpha/PaperBeta are Table 1's published T(r)=α·r^β fits.
	PaperAlpha, PaperBeta float64
}

// CPUBurnRef is cpuburn expressed in the same terms, for Table 1's first row.
var CPUBurnRef = Spec{Name: "cpuburn", PowerFactor: 1.0, PaperRisePct: 100, PaperAlpha: 1.092, PaperBeta: 1.541}

// SpecSuite lists the six benchmarks of Table 1 with calibrated power
// factors. The factors exceed the target rise ratios slightly below the top
// because the leakage-temperature feedback makes rise superlinear in heat
// input; they were fitted against the simulator (see TestSpecRiseCalibration).
var SpecSuite = []Spec{
	{Name: "calculix", PowerFactor: 0.997, PaperRisePct: 99.3, PaperAlpha: 1.282, PaperBeta: 1.697},
	{Name: "namd", PowerFactor: 0.944, PaperRisePct: 87.2, PaperAlpha: 1.248, PaperBeta: 1.546},
	{Name: "dealII", PowerFactor: 0.927, PaperRisePct: 84.4, PaperAlpha: 1.324, PaperBeta: 1.688},
	{Name: "bzip2", PowerFactor: 0.927, PaperRisePct: 84.4, PaperAlpha: 1.529, PaperBeta: 1.811},
	{Name: "gcc", PowerFactor: 0.900, PaperRisePct: 80.3, PaperAlpha: 1.425, PaperBeta: 1.848},
	{Name: "astar", PowerFactor: 0.831, PaperRisePct: 71.7, PaperAlpha: 1.351, PaperBeta: 1.416},
}

// FindSpec returns the suite entry with the given name.
func FindSpec(name string) (Spec, error) {
	if name == CPUBurnRef.Name {
		return CPUBurnRef, nil
	}
	for _, s := range SpecSuite {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Program returns the proxy's infinite CPU-bound loop. Spawn it with the
// Spec's PowerFactor (SpawnSpec does both).
func (s Spec) Program() sched.Program { return Burn() }

// SpawnSpec starts n instances of the benchmark (one thread each, as the
// paper ran one instance per core) under the given process ID.
func SpawnSpec(sc *sched.Scheduler, s Spec, pid, n int) []*sched.Thread {
	threads := make([]*sched.Thread, n)
	for i := 0; i < n; i++ {
		threads[i] = sc.Spawn(s.Program(), sched.SpawnConfig{
			Name:        fmt.Sprintf("%s-%d", s.Name, i),
			ProcessID:   pid,
			PowerFactor: s.PowerFactor,
		})
	}
	return threads
}
