package workload

import (
	"math"
	"testing"

	"repro/internal/sched"
	"repro/internal/simclock"
	"repro/internal/units"
)

func drive(prog sched.Program, cores int, until units.Time) (*sched.Scheduler, *sched.Thread) {
	clock := &simclock.Clock{}
	s := sched.New(clock, sched.Config{Cores: cores, Timeslice: 100 * units.Millisecond}, nil, nil)
	th := s.Spawn(prog, sched.SpawnConfig{Name: "w"})
	clock.AdvanceTo(until, nil)
	return s, th
}

func TestBurnNeverExits(t *testing.T) {
	s, th := drive(Burn(), 1, 5*units.Second)
	s.ChargeAll()
	if th.Exited() {
		t.Fatal("cpuburn exited")
	}
	if math.Abs(th.WorkDone-5) > 0.001 {
		t.Errorf("work = %v, want 5", th.WorkDone)
	}
}

func TestFiniteBurnExactWork(t *testing.T) {
	_, th := drive(FiniteBurn(2.5), 1, 10*units.Second)
	if !th.Exited() {
		t.Fatal("finite burn did not exit")
	}
	if math.Abs(th.WorkDone-2.5) > 1e-9 {
		t.Errorf("work = %v, want 2.5", th.WorkDone)
	}
	if th.ExitedAt != units.FromSeconds(2.5) {
		t.Errorf("exited at %v", th.ExitedAt)
	}
}

func TestFiniteBurnFractionalChunk(t *testing.T) {
	_, th := drive(FiniteBurn(0.35), 1, 5*units.Second)
	if !th.Exited() || math.Abs(th.WorkDone-0.35) > 1e-9 {
		t.Errorf("work = %v exited=%v", th.WorkDone, th.Exited())
	}
}

func TestPeriodicBurstCycle(t *testing.T) {
	// 1 s burn, 2 s sleep: over 9 s the thread completes three bursts.
	s, th := drive(PeriodicBurst(1.0, 2*units.Second), 1, 9*units.Second)
	s.ChargeAll()
	if th.Exited() {
		t.Fatal("periodic burst exited")
	}
	if math.Abs(th.WorkDone-3) > 0.01 {
		t.Errorf("work = %v, want 3 (three bursts)", th.WorkDone)
	}
}

func TestFindSpec(t *testing.T) {
	for _, name := range []string{"cpuburn", "calculix", "namd", "dealII", "bzip2", "gcc", "astar"} {
		s, err := FindSpec(name)
		if err != nil {
			t.Errorf("FindSpec(%q): %v", name, err)
		}
		if s.Name != name {
			t.Errorf("FindSpec(%q).Name = %q", name, s.Name)
		}
	}
	if _, err := FindSpec("mcf"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestSuiteOrderedLikeTable1(t *testing.T) {
	// Table 1 lists workloads by descending rise; the calibrated power
	// factors must respect that ordering.
	last := 2.0
	for _, s := range SpecSuite {
		if s.PowerFactor > last {
			t.Errorf("%s power factor %v out of order", s.Name, s.PowerFactor)
		}
		last = s.PowerFactor
		if s.PowerFactor <= 0 || s.PowerFactor > 1 {
			t.Errorf("%s power factor %v outside (0,1]", s.Name, s.PowerFactor)
		}
		if s.PaperRisePct <= 0 || s.PaperRisePct > 100 {
			t.Errorf("%s paper rise %v implausible", s.Name, s.PaperRisePct)
		}
		if s.PaperAlpha <= 0 || s.PaperBeta < 1 {
			t.Errorf("%s paper fit %v/%v implausible", s.Name, s.PaperAlpha, s.PaperBeta)
		}
	}
	if CPUBurnRef.PowerFactor != 1.0 || CPUBurnRef.PaperRisePct != 100 {
		t.Error("cpuburn reference wrong")
	}
}

func TestSpawnSpec(t *testing.T) {
	clock := &simclock.Clock{}
	s := sched.New(clock, sched.Config{Cores: 4, Timeslice: 100 * units.Millisecond}, nil, nil)
	spec, err := FindSpec("astar")
	if err != nil {
		t.Fatal(err)
	}
	threads := SpawnSpec(s, spec, 7, 4)
	if len(threads) != 4 {
		t.Fatalf("spawned %d", len(threads))
	}
	for _, th := range threads {
		if th.ProcessID != 7 {
			t.Errorf("pid = %d", th.ProcessID)
		}
		if th.PowerFactor != spec.PowerFactor {
			t.Errorf("power factor = %v", th.PowerFactor)
		}
	}
	clock.AdvanceTo(units.Second, nil)
	s.ChargeAll()
	var total float64
	for _, th := range threads {
		total += th.WorkDone
	}
	if math.Abs(total-4) > 0.01 {
		t.Errorf("4 cores × 1 s = %v work", total)
	}
}

func TestModulatedConstantEnvelope(t *testing.T) {
	// A flat 0.5 envelope with 1 s frames is a 50 % duty cycle: 5 ref-s of
	// work over 10 s on an uncontended core.
	s, th := drive(Modulated(func(units.Time) float64 { return 0.5 }, units.Second), 1, 10*units.Second)
	s.ChargeAll()
	if th.Exited() {
		t.Fatal("modulated program exited")
	}
	if math.Abs(th.WorkDone-5) > 0.01 {
		t.Errorf("work = %v, want 5", th.WorkDone)
	}
}

func TestModulatedStepEnvelope(t *testing.T) {
	// Full load for the first 5 s, zero afterwards.
	env := func(now units.Time) float64 {
		if now < 5*units.Second {
			return 1
		}
		return 0
	}
	s, th := drive(Modulated(env, units.Second), 1, 12*units.Second)
	s.ChargeAll()
	if math.Abs(th.WorkDone-5) > 0.01 {
		t.Errorf("work = %v, want 5 (surge window only)", th.WorkDone)
	}
}

func TestModulatedClampsEnvelope(t *testing.T) {
	// Envelope excursions outside [0,1] clamp rather than panic or overrun.
	env := func(now units.Time) float64 {
		if now < 2*units.Second {
			return 7.5
		}
		return -3
	}
	s, th := drive(Modulated(env, units.Second), 1, 6*units.Second)
	s.ChargeAll()
	if math.Abs(th.WorkDone-2) > 0.01 {
		t.Errorf("work = %v, want 2 (clamped to full duty for 2 s)", th.WorkDone)
	}
}

func TestTrojanDutyCycle(t *testing.T) {
	// 100 ms period at 50 % duty: half the core's time is full-power bursts.
	s, th := drive(Trojan(100*units.Millisecond, 0.5), 1, 10*units.Second)
	s.ChargeAll()
	if th.Exited() {
		t.Fatal("trojan exited")
	}
	if math.Abs(th.WorkDone-5) > 0.01 {
		t.Errorf("work = %v, want 5", th.WorkDone)
	}
}

func TestTrojanFullDutyIsBurn(t *testing.T) {
	s, th := drive(Trojan(50*units.Millisecond, 1.0), 1, 3*units.Second)
	s.ChargeAll()
	if math.Abs(th.WorkDone-3) > 0.001 {
		t.Errorf("work = %v, want 3 (duty 1 degenerates to cpuburn)", th.WorkDone)
	}
}
