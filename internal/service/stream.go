package service

import (
	"sync"

	"repro/internal/fleetsched"
	"repro/internal/scenario"
)

// Event is one element of a job's telemetry stream, serialised as NDJSON or
// SSE. Seq numbers are dense per job; a "gap" event marks entries that fell
// out of the bounded ring before a slow subscriber read them.
type Event struct {
	Seq  int    `json:"seq"`
	Type string `json:"type"` // state | round | machine | telemetry | policy | gap | done | error | recovered | degraded
	Job  string `json:"job"`

	// State carries the job state for "state"/"done"/"error" events.
	State string `json:"state,omitempty"`
	// Error carries the failure message for "error" events.
	Error string `json:"error,omitempty"`
	// Policy names the placement policy a sched-compare sweep just entered.
	Policy string `json:"policy,omitempty"`
	// Dropped counts ring-evicted events for "gap" events.
	Dropped int `json:"dropped,omitempty"`
	// Resumed describes what a recovered job's checkpoint lets it skip
	// ("recovered" events): "from scratch", "replay to round N", or
	// "N machines precomputed".
	Resumed string `json:"resumed,omitempty"`

	// Round is the fleet's round-barrier snapshot (scheduled runs).
	Round *fleetsched.RoundTelemetry `json:"round,omitempty"`
	// Machine is a per-machine sample or completion summary.
	Machine *MachineEvent `json:"machine,omitempty"`
}

// MachineEvent is one fleet member's in-run telemetry sample ("telemetry")
// or completion summary ("machine").
type MachineEvent struct {
	Index int     `json:"index"`
	NowS  float64 `json:"now_s"`

	MeanJunctionC float64 `json:"mean_junction_c"`
	MaxJunctionC  float64 `json:"max_junction_c"`
	PeakJunctionC float64 `json:"peak_junction_c,omitempty"`

	Injections int     `json:"injections,omitempty"`
	ViolationS float64 `json:"violation_s,omitempty"`

	// Completion-summary fields ("machine" events only).
	BusyS         float64 `json:"busy_s,omitempty"`
	InjectedIdleS float64 `json:"injected_idle_s,omitempty"`
	Violations    int     `json:"violations,omitempty"`
}

// sampleEvent converts an engine telemetry sample into a stream event
// payload.
func sampleEvent(sm scenario.MachineSample) *MachineEvent {
	return &MachineEvent{
		Index:         sm.Index,
		NowS:          sm.NowS,
		MeanJunctionC: sm.MeanJunctionC,
		MaxJunctionC:  sm.MaxJunctionC,
		PeakJunctionC: sm.PeakJunctionC,
		Injections:    sm.Injections,
		ViolationS:    sm.ViolationS,
	}
}

// stream is a bounded, append-only event log with broadcast wakeups: one
// writer (the job's worker), any number of subscribers replaying from an
// arbitrary sequence number. Memory stays bounded per job — the ring keeps
// the latest max events and subscribers that fall behind observe a gap
// event instead of unbounded buffering.
type stream struct {
	mu      sync.Mutex
	max     int
	events  []Event // events[i] has Seq == start+i
	start   int
	next    int
	dropped int
	closed  bool
	notify  chan struct{}
	// onAppend, when non-nil, observes each appended event after its Seq is
	// assigned — the flight recorder's tap. It runs under the stream lock and
	// must be cheap and non-blocking (the recorder's ring write is).
	onAppend func(Event)
}

func newStream(max int) *stream {
	if max < 16 {
		max = 16
	}
	return &stream{
		max:    max,
		notify: make(chan struct{}),
	}
}

// append assigns the event its sequence number and wakes all waiters.
// Appending to a closed stream is a no-op (a late hook firing after
// cancellation must not resurrect the stream).
func (st *stream) append(e Event) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return
	}
	e.Seq = st.next
	st.next++
	if st.onAppend != nil {
		st.onAppend(e)
	}
	st.events = append(st.events, e)
	if len(st.events) > st.max {
		over := len(st.events) - st.max
		st.events = append(st.events[:0], st.events[over:]...)
		st.start += over
		st.dropped += over
	}
	close(st.notify)
	st.notify = make(chan struct{})
}

// closeStream marks the stream complete and wakes all waiters.
func (st *stream) closeStream() {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return
	}
	st.closed = true
	close(st.notify)
	st.notify = make(chan struct{})
}

// Len returns the number of events emitted so far (including evicted ones).
func (st *stream) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.next
}

// since returns the events with Seq >= seq that are still in the ring, the
// next sequence number to resume from, whether the stream is closed, and how
// many requested events were already evicted (the subscriber should emit a
// gap notice when positive).
func (st *stream) since(seq int) (events []Event, next int, closed bool, evicted int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if seq < st.start {
		evicted = st.start - seq
		seq = st.start
	}
	if seq < st.next {
		events = append(events, st.events[seq-st.start:]...)
	}
	return events, st.next, st.closed, evicted
}

// wait returns a channel that is closed once events at or past seq exist (or
// the stream closes). If that is already true — an append raced the caller's
// last since — the returned channel is closed immediately, so a subscriber
// loop of since/wait never misses a wakeup.
func (st *stream) wait(seq int) <-chan struct{} {
	st.mu.Lock()
	defer st.mu.Unlock()
	if seq < st.next || st.closed {
		ch := make(chan struct{})
		close(ch)
		return ch
	}
	return st.notify
}
