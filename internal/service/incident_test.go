package service

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// runToDone submits the spec and waits for completion through the client.
func runToDone(t *testing.T, c *Client, spec json.RawMessage) JobView {
	t.Helper()
	v, err := c.Submit(Request{Spec: spec})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	fin, err := c.Wait(context.Background(), v.ID)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if fin.State != StateDone {
		t.Fatalf("job finished %s (%s), want done", fin.State, fin.Error)
	}
	return fin
}

// TestSnapshotHashDeterministic is the snapshot contract: the content hash
// names the logical fleet state, so the same job sequence on two fresh
// daemons hashes identically, repeated captures of a quiesced daemon hash
// identically, and any state difference changes the hash.
func TestSnapshotHashDeterministic(t *testing.T) {
	spec := tinySpec("snap-hash", 3, 41)

	_, c1 := newTestService(t, Config{Workers: 2, DefaultScale: 1})
	runToDone(t, c1, spec)
	s1a, err := c1.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	s1b, err := c1.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if s1a.Hash == "" || s1a.Hash != s1b.Hash {
		t.Errorf("repeated capture of a quiesced daemon: hashes %q vs %q, want equal and nonempty", s1a.Hash, s1b.Hash)
	}
	if s1a.Version != SnapshotVersion {
		t.Errorf("snapshot version %d, want %d", s1a.Version, SnapshotVersion)
	}

	_, c2 := newTestService(t, Config{Workers: 2, DefaultScale: 1})
	runToDone(t, c2, spec)
	s2, err := c2.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if s2.Hash != s1a.Hash {
		t.Errorf("same job sequence on a fresh daemon hashed %q, want %q", s2.Hash, s1a.Hash)
	}

	// Different state must change the hash.
	runToDone(t, c2, tinySpec("snap-hash-extra", 2, 42))
	s3, err := c2.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if s3.Hash == s2.Hash {
		t.Error("snapshot hash did not change after a second job completed")
	}
}

// TestSnapshotCapturesJobDetail checks the per-job payload an incident
// export depends on: canonical spec, retained machine thermal states (bounded
// at maxSnapshotStates), and identity/state fields.
func TestSnapshotCapturesJobDetail(t *testing.T) {
	svc, c := newTestService(t, Config{Workers: 2, DefaultScale: 1})
	fin := runToDone(t, c, tinySpec("snap-detail", 3, 43))

	snap, err := c.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if len(snap.Jobs) != 1 {
		t.Fatalf("snapshot has %d jobs, want 1", len(snap.Jobs))
	}
	js := snap.Jobs[0]
	if js.ID != fin.ID || js.Key != fin.Key || js.State != StateDone {
		t.Errorf("job snapshot identity %+v diverges from view %+v", js, fin)
	}
	if len(js.Spec) == 0 || !strings.Contains(string(js.Spec), "snap-detail") {
		t.Errorf("job snapshot is missing its canonical spec: %s", js.Spec)
	}
	if len(js.MachineStates) != 3 {
		t.Fatalf("retained %d machine states, want 3", len(js.MachineStates))
	}
	for i, ms := range js.MachineStates {
		if ms.Index != i {
			t.Errorf("machine state %d has index %d, want sorted by index", i, ms.Index)
		}
		if ms.State.Now.Seconds() <= 0 {
			t.Errorf("machine %d state has non-positive sim time: %+v", ms.Index, ms.State)
		}
	}
	if snap.Journal != nil {
		t.Error("in-memory daemon snapshot carries journal stats")
	}
	if svc.met.snapshots.Load() != 1 {
		t.Errorf("snapshot counter = %d, want 1", svc.met.snapshots.Load())
	}

	// Large fleets retain only the first maxSnapshotStates indices.
	fin2 := runToDone(t, c, tinySpec("snap-bound", maxSnapshotStates+8, 44))
	snap2, err := c.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	for _, js := range snap2.Jobs {
		if js.ID != fin2.ID {
			continue
		}
		if len(js.MachineStates) != maxSnapshotStates {
			t.Errorf("retained %d machine states, want the %d-index bound", len(js.MachineStates), maxSnapshotStates)
		}
	}
}

// TestSnapshotJournalStats checks the durable-daemon half: the snapshot
// reports WAL write totals, and they are excluded from the content hash.
func TestSnapshotJournalStats(t *testing.T) {
	svc := openDurable(t, t.TempDir(), Config{Workers: 1, DefaultScale: 1})
	j, err := svc.Submit(Request{Spec: tinySpec("snap-journal", 2, 45)})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitTerminal(t, j)

	snap := svc.BuildSnapshot()
	if snap.Journal == nil {
		t.Fatal("durable daemon snapshot has no journal stats")
	}
	if snap.Journal.Appends < 3 || snap.Journal.Bytes == 0 || snap.Journal.Fsyncs == 0 {
		t.Errorf("journal stats %+v, want >=3 appends with bytes and fsyncs", snap.Journal)
	}
	// The hash must not move when only journal totals differ.
	h1 := snap.hashCore()
	snap.Journal.Appends += 100
	if h2 := snap.hashCore(); h2 != h1 {
		t.Error("journal totals leaked into the snapshot content hash")
	}
}

// TestIncidentOnForcedSLOBreach drives the faultinject path CI uses: the
// slo.breach point forces the next evaluation to dump an incident with the
// flight-recorder ring and a full snapshot attached.
func TestIncidentOnForcedSLOBreach(t *testing.T) {
	if err := faultinject.Configure(faultinject.SLOBreach); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Reset()

	svc, c := newTestService(t, Config{Workers: 1, DefaultScale: 1})
	fin := runToDone(t, c, tinySpec("slo-forced", 2, 46))

	sums, err := c.Incidents()
	if err != nil {
		t.Fatalf("incidents: %v", err)
	}
	if len(sums) != 1 {
		t.Fatalf("incident list has %d entries, want 1", len(sums))
	}
	sum := sums[0]
	if sum.Reason != "slo:forced" || sum.Job != fin.ID {
		t.Errorf("incident summary %+v, want reason slo:forced on %s", sum, fin.ID)
	}
	if sum.Records == 0 {
		t.Error("incident dumped with an empty flight-recorder ring")
	}
	if sum.SnapshotHash == "" {
		t.Error("incident summary has no snapshot hash")
	}

	inc, err := c.Incident(sum.ID)
	if err != nil {
		t.Fatalf("incident fetch: %v", err)
	}
	if inc.Snapshot == nil || inc.Snapshot.Hash != sum.SnapshotHash {
		t.Error("full incident dump is missing its snapshot")
	}
	// The ring feeds: stream events and spans recorded during the run.
	kinds := map[string]int{}
	for _, r := range inc.Records {
		kinds[r.Kind]++
	}
	if kinds["stream"] == 0 || kinds["span"] == 0 {
		t.Errorf("flight records by kind %v, want stream and span feeds", kinds)
	}
	if svc.met.sloBreaches.Load() != 1 || svc.met.incidents.Load() != 1 {
		t.Errorf("breaches=%d incidents=%d, want 1/1", svc.met.sloBreaches.Load(), svc.met.incidents.Load())
	}

	if _, err := c.Incident("inc-999999"); err == nil {
		t.Error("unknown incident ID did not 404")
	}
}

// TestIncidentOnBurnRateBreach arms a real (absurdly tight) queue-wait SLO
// and checks the burn-rate evaluator itself fires the dump.
func TestIncidentOnBurnRateBreach(t *testing.T) {
	svc, c := newTestService(t, Config{
		Workers: 1, DefaultScale: 1,
		SLO: SLOConfig{QueueWaitS: 1e-12, Budget: 0.5, MinEvents: 1},
	})
	runToDone(t, c, tinySpec("slo-burn", 1, 47))

	sums, err := c.Incidents()
	if err != nil {
		t.Fatalf("incidents: %v", err)
	}
	if len(sums) != 1 || sums[0].Reason != "slo:queue-wait" {
		t.Fatalf("incident list %+v, want one slo:queue-wait dump", sums)
	}
	if !strings.Contains(sums[0].Detail, "burn rate") {
		t.Errorf("incident detail %q does not name the burn rate", sums[0].Detail)
	}
	if svc.met.sloBreaches.Load() != 1 {
		t.Errorf("slo breach counter = %d, want 1", svc.met.sloBreaches.Load())
	}
}

// TestIncidentOnPanic checks the worker-panic auto-dump: the job fails
// contained, and the incident captures the run-up.
func TestIncidentOnPanic(t *testing.T) {
	if err := faultinject.Configure(faultinject.WorkerPanic); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Reset()

	svc, c := newTestService(t, Config{Workers: 1, DefaultScale: 1})
	v, err := c.Submit(Request{Spec: tinySpec("panic-dump", 1, 48)})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	fin, err := c.Wait(context.Background(), v.ID)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if fin.State != StateFailed {
		t.Fatalf("panicked job state %s, want failed", fin.State)
	}

	sums, err := c.Incidents()
	if err != nil {
		t.Fatalf("incidents: %v", err)
	}
	if len(sums) != 1 || sums[0].Reason != "panic" || sums[0].Job != v.ID {
		t.Fatalf("incident list %+v, want one panic dump for %s", sums, v.ID)
	}
	if svc.met.incidents.Load() != 1 {
		t.Errorf("incident counter = %d, want 1", svc.met.incidents.Load())
	}
}

// TestIncidentsSurviveRestart checks the durable mirror: an incident dumped
// before a restart is still listed (with its snapshot) after reopening the
// data directory, and new incidents continue the ID sequence.
func TestIncidentsSurviveRestart(t *testing.T) {
	if err := faultinject.Configure(faultinject.SLOBreach); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	svc1 := openDurable(t, dir, Config{Workers: 1, DefaultScale: 1})
	j1, err := svc1.Submit(Request{Spec: tinySpec("inc-durable", 1, 49)})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitTerminal(t, j1)
	faultinject.Reset()
	before := svc1.inc.summaries()
	if len(before) != 1 {
		t.Fatalf("incident list before restart has %d entries, want 1", len(before))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc1.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	svc2 := openDurable(t, dir, Config{Workers: 1, DefaultScale: 1})
	after := svc2.inc.summaries()
	if len(after) != 1 || after[0].ID != before[0].ID || after[0].Reason != before[0].Reason {
		t.Fatalf("incident list after restart %+v, want %+v", after, before)
	}
	inc, ok := svc2.inc.get(before[0].ID)
	if !ok || inc.Snapshot == nil || inc.Snapshot.Hash != before[0].SnapshotHash {
		t.Error("restored incident lost its snapshot")
	}

	// The ID sequence continues where it left off.
	svc2.dumpIncident("degraded", "job-test", "sequence probe")
	sums := svc2.inc.summaries()
	if len(sums) != 2 || sums[1].ID <= sums[0].ID {
		t.Errorf("post-restart incident IDs %v, want a continued ascending sequence", sums)
	}
}

// startServer fronts a service with an httptest server the test closes
// itself (restart tests need explicit teardown ordering).
func startServer(t *testing.T, svc *Service) *httptest.Server {
	t.Helper()
	return httptest.NewServer(svc.Handler())
}

// sseEvents reads one full SSE response body and returns the (id, event) of
// every framed event.
type sseEvent struct {
	id   int
	name string
}

func readSSE(t *testing.T, c *Client, path string, lastEventID string) []sseEvent {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, c.Base+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		t.Fatalf("sse get: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type = %q", ct)
	}
	var events []sseEvent
	cur := sseEvent{id: -1}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			cur.id, _ = strconv.Atoi(strings.TrimPrefix(line, "id: "))
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case line == "" && cur.name != "":
			events = append(events, cur)
			cur = sseEvent{id: -1}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("sse read: %v", err)
	}
	return events
}

// TestStreamSSEReconnectAcrossRestart checks the EventSource contract across
// a daemon restart: a client that reconnects with Last-Event-ID resumes at
// that ID + 1 against the recovered job's stream — no duplicates, terminal
// event still delivered.
func TestStreamSSEReconnectAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	svc1 := openDurable(t, dir, Config{Workers: 1, DefaultScale: 1})
	srv1 := startServer(t, svc1)
	c1 := NewClient(srv1.URL)

	v, err := c1.Submit(Request{Spec: tinySpec("sse-restart", 2, 50)})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, err := c1.Wait(context.Background(), v.ID); err != nil {
		t.Fatalf("wait: %v", err)
	}
	full := readSSE(t, c1, "/v1/jobs/"+v.ID+"/stream", "")
	if len(full) < 2 || full[len(full)-1].name != "done" {
		t.Fatalf("pre-restart SSE stream %+v, want >= 2 events ending in done", full)
	}
	for i, e := range full {
		if e.id != i {
			t.Fatalf("SSE ids not sequential: event %d has id %d", i, e.id)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc1.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	srv1.Close()

	// The recovered done job replays a compact stream (state + done). A
	// reconnect with Last-Event-ID: 0 must resume at id 1 — the terminal
	// event, never a duplicate of id 0.
	svc2 := openDurable(t, dir, Config{Workers: 1, DefaultScale: 1})
	srv2 := startServer(t, svc2)
	defer srv2.Close()
	c2 := NewClient(srv2.URL)
	resumed := readSSE(t, c2, "/v1/jobs/"+v.ID+"/stream", "0")
	if len(resumed) != 1 || resumed[0].id != 1 || resumed[0].name != "done" {
		t.Fatalf("post-restart resume from id 0 delivered %+v, want exactly the done event at id 1", resumed)
	}
}
