package service

import (
	"strings"
	"sync"
	"time"

	"repro/internal/fleetsched"
	"repro/internal/obs"
	"repro/internal/scenario"
)

// The live fleet heat-map: per-job, per-machine peak junction temperatures,
// fed entirely from the telemetry hooks the engines already call — scenario
// MachineSamples and fleetsched RoundTelemetry. Observability only: the heat
// map reads values the metric-loop already computed for the stream, never the
// thermal state itself, so serving it perturbs nothing.
//
// Memory is bounded two ways: machine indices fold into at most heatMaxCells
// cells per job (index mod cells — aliased for fleets past the bound, but a
// hotspot still lights its cell), and a job's cells are dropped when it goes
// terminal.

// heatMaxCells bounds one job's heat cells.
const heatMaxCells = 512

// heatState holds the live per-job heat maps. The zero value is ready.
type heatState struct {
	mu   sync.Mutex
	jobs map[string]*jobHeat
	// rec, when non-nil, receives a throttled "heat" record per job — the
	// flight recorder's heat-frame feed. Throttling is by observation count
	// (every heatRecordEvery-th), deterministic per observation sequence.
	rec *obs.FlightRecorder
}

type jobHeat struct {
	machines int // highest machine index seen + 1 (fleet size lower bound)
	cells    []float64
	hot      []int // machine index currently owning each cell's peak
	virtualS float64
	round    int
	observes int // observations folded in, for the recorder throttle
	updated  time.Time
}

// heatRecordEvery throttles heat-frame flight records: one per this many
// observations per job.
const heatRecordEvery = 64

// HeatFrame is one snapshot of every live job's heat map — the document the
// SSE endpoint streams and `dimctl top` renders.
type HeatFrame struct {
	At   time.Time     `json:"at"`
	Jobs []JobHeatView `json:"jobs"`
}

// JobHeatView is one job's heat map. Cells holds peak junction temperatures
// (°C); machines past Cells' length fold in modulo, so len(Cells) ==
// min(Machines, 512).
type JobHeatView struct {
	Job      string    `json:"job"`
	Machines int       `json:"machines"`
	Cells    []float64 `json:"cells"`
	// MaxC/MeanC summarise the cells; HottestMachine is the fleet index
	// owning the hottest cell.
	MaxC           float64 `json:"max_c"`
	MeanC          float64 `json:"mean_c"`
	HottestMachine int     `json:"hottest_machine"`
	// VirtualS is the sim-time high-water mark; Round the last scheduler
	// round (scheduled jobs only).
	VirtualS float64   `json:"virtual_s"`
	Round    int       `json:"round,omitempty"`
	Updated  time.Time `json:"updated"`
}

func (h *heatState) job(id string) *jobHeat {
	if h.jobs == nil {
		h.jobs = map[string]*jobHeat{}
	}
	jh, ok := h.jobs[id]
	if !ok {
		jh = &jobHeat{}
		h.jobs[id] = jh
	}
	return jh
}

func (jh *jobHeat) observe(index int, peakC, virtualS float64) {
	if index < 0 {
		return
	}
	if index+1 > jh.machines {
		jh.machines = index + 1
	}
	n := jh.machines
	if n > heatMaxCells {
		n = heatMaxCells
	}
	for len(jh.cells) < n {
		jh.cells = append(jh.cells, 0)
		jh.hot = append(jh.hot, -1)
	}
	cell := index % len(jh.cells)
	if peakC > jh.cells[cell] {
		jh.cells[cell] = peakC
		jh.hot[cell] = index
	}
	if virtualS > jh.virtualS {
		jh.virtualS = virtualS
	}
	jh.updated = time.Now()
}

// record taps the flight recorder on every heatRecordEvery-th observation of
// a job. Caller holds h.mu; jh.observes was already incremented.
func (h *heatState) record(jobID string, jh *jobHeat, peakC float64) {
	if h.rec == nil {
		return
	}
	if jh.observes%heatRecordEvery == 1 {
		h.rec.Record("heat", jobID, "frame", peakC)
	}
}

// observeSample folds one scenario telemetry sample into the job's heat map.
func (h *heatState) observeSample(jobID string, sm scenario.MachineSample) {
	h.mu.Lock()
	defer h.mu.Unlock()
	jh := h.job(jobID)
	jh.observes++
	jh.observe(sm.Index, sm.PeakJunctionC, sm.NowS)
	h.record(jobID, jh, sm.PeakJunctionC)
}

// observeResult folds one completed machine's summary into the job's heat
// map — the coordinator's feed: shard results stream back as completions, so
// a coordinator's own map lights up even though the telemetry ticks happened
// on the workers.
func (h *heatState) observeResult(jobID string, m scenario.MachineResult) {
	h.mu.Lock()
	defer h.mu.Unlock()
	jh := h.job(jobID)
	jh.observes++
	jh.observe(m.Index, m.PeakJunction, 0)
	h.record(jobID, jh, m.PeakJunction)
}

// observeRound folds one scheduler round barrier into the job's heat map.
// Rounds carry only the hottest machine, so a scheduled job's map fills in as
// the hotspot moves — exactly the migration behaviour worth watching.
func (h *heatState) observeRound(jobID string, rt fleetsched.RoundTelemetry) {
	h.mu.Lock()
	defer h.mu.Unlock()
	jh := h.job(jobID)
	jh.observes++
	jh.observe(rt.HottestMachine, rt.MaxJunctionC, rt.NowS)
	jh.round = rt.Round
	h.record(jobID, jh, rt.MaxJunctionC)
}

// drop removes a terminal job's heat map.
func (h *heatState) drop(jobID string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.jobs, jobID)
}

// snapshot renders the current frame. Jobs sort by ID so frames are stable.
func (h *heatState) snapshot() HeatFrame {
	h.mu.Lock()
	defer h.mu.Unlock()
	frame := HeatFrame{At: time.Now()}
	for id, jh := range h.jobs {
		if len(jh.cells) == 0 {
			continue
		}
		v := JobHeatView{
			Job: id, Machines: jh.machines,
			Cells:    append([]float64(nil), jh.cells...),
			VirtualS: jh.virtualS, Round: jh.round, Updated: jh.updated,
		}
		var sum float64
		for i, c := range jh.cells {
			sum += c
			if c > v.MaxC {
				v.MaxC = c
				v.HottestMachine = jh.hot[i]
			}
		}
		v.MeanC = sum / float64(len(jh.cells))
		frame.Jobs = append(frame.Jobs, v)
	}
	sortJobHeat(frame.Jobs)
	return frame
}

func sortJobHeat(jobs []JobHeatView) {
	for i := 1; i < len(jobs); i++ {
		for k := i; k > 0 && jobs[k].Job < jobs[k-1].Job; k-- {
			jobs[k], jobs[k-1] = jobs[k-1], jobs[k]
		}
	}
}

// mergeHeatFrames folds worker frames into a coordinator's local frame so
// `dimctl top` on a coordinator shows the whole sharded fleet. Worker rows
// are keyed "<job>/s<shard>" (see handleShardRun); the shard suffix strips so
// every shard of a job folds into one row, cell-wise max with the modulo
// aliasing the heat map already uses. Rows that match no local job pass
// through under their stripped name — a coordinator restarted mid-run still
// shows its workers' in-flight heat.
func mergeHeatFrames(local HeatFrame, remotes ...HeatFrame) HeatFrame {
	rows := map[string]*JobHeatView{}
	order := []string{}
	fold := func(v JobHeatView, key string) {
		dst, ok := rows[key]
		if !ok {
			cp := v
			cp.Job = key
			cp.Cells = append([]float64(nil), v.Cells...)
			rows[key] = &cp
			order = append(order, key)
			return
		}
		if v.Machines > dst.Machines {
			dst.Machines = v.Machines
		}
		for len(dst.Cells) < len(v.Cells) && len(dst.Cells) < heatMaxCells {
			dst.Cells = append(dst.Cells, 0)
		}
		for i, c := range v.Cells {
			cell := i % len(dst.Cells)
			if c > dst.Cells[cell] {
				dst.Cells[cell] = c
			}
		}
		if v.VirtualS > dst.VirtualS {
			dst.VirtualS = v.VirtualS
		}
		if v.Round > dst.Round {
			dst.Round = v.Round
		}
		if v.Updated.After(dst.Updated) {
			dst.Updated = v.Updated
		}
	}
	for _, v := range local.Jobs {
		fold(v, v.Job)
	}
	for _, rf := range remotes {
		for _, v := range rf.Jobs {
			key := v.Job
			if i := strings.LastIndex(key, "/s"); i > 0 {
				key = key[:i]
			}
			fold(v, key)
		}
	}
	out := HeatFrame{At: local.At, Jobs: make([]JobHeatView, 0, len(order))}
	for _, key := range order {
		v := rows[key]
		v.MaxC, v.MeanC, v.HottestMachine = 0, 0, 0
		var sum float64
		for i, c := range v.Cells {
			sum += c
			if c > v.MaxC {
				v.MaxC = c
				v.HottestMachine = i
			}
		}
		if len(v.Cells) > 0 {
			v.MeanC = sum / float64(len(v.Cells))
		}
		out.Jobs = append(out.Jobs, *v)
	}
	sortJobHeat(out.Jobs)
	return out
}
