package service

import (
	"sync"
	"time"

	"repro/internal/fleetsched"
	"repro/internal/scenario"
)

// The live fleet heat-map: per-job, per-machine peak junction temperatures,
// fed entirely from the telemetry hooks the engines already call — scenario
// MachineSamples and fleetsched RoundTelemetry. Observability only: the heat
// map reads values the metric-loop already computed for the stream, never the
// thermal state itself, so serving it perturbs nothing.
//
// Memory is bounded two ways: machine indices fold into at most heatMaxCells
// cells per job (index mod cells — aliased for fleets past the bound, but a
// hotspot still lights its cell), and a job's cells are dropped when it goes
// terminal.

// heatMaxCells bounds one job's heat cells.
const heatMaxCells = 512

// heatState holds the live per-job heat maps. The zero value is ready.
type heatState struct {
	mu   sync.Mutex
	jobs map[string]*jobHeat
}

type jobHeat struct {
	machines int // highest machine index seen + 1 (fleet size lower bound)
	cells    []float64
	hot      []int // machine index currently owning each cell's peak
	virtualS float64
	round    int
	updated  time.Time
}

// HeatFrame is one snapshot of every live job's heat map — the document the
// SSE endpoint streams and `dimctl top` renders.
type HeatFrame struct {
	At   time.Time     `json:"at"`
	Jobs []JobHeatView `json:"jobs"`
}

// JobHeatView is one job's heat map. Cells holds peak junction temperatures
// (°C); machines past Cells' length fold in modulo, so len(Cells) ==
// min(Machines, 512).
type JobHeatView struct {
	Job      string    `json:"job"`
	Machines int       `json:"machines"`
	Cells    []float64 `json:"cells"`
	// MaxC/MeanC summarise the cells; HottestMachine is the fleet index
	// owning the hottest cell.
	MaxC           float64 `json:"max_c"`
	MeanC          float64 `json:"mean_c"`
	HottestMachine int     `json:"hottest_machine"`
	// VirtualS is the sim-time high-water mark; Round the last scheduler
	// round (scheduled jobs only).
	VirtualS float64   `json:"virtual_s"`
	Round    int       `json:"round,omitempty"`
	Updated  time.Time `json:"updated"`
}

func (h *heatState) job(id string) *jobHeat {
	if h.jobs == nil {
		h.jobs = map[string]*jobHeat{}
	}
	jh, ok := h.jobs[id]
	if !ok {
		jh = &jobHeat{}
		h.jobs[id] = jh
	}
	return jh
}

func (jh *jobHeat) observe(index int, peakC, virtualS float64) {
	if index < 0 {
		return
	}
	if index+1 > jh.machines {
		jh.machines = index + 1
	}
	n := jh.machines
	if n > heatMaxCells {
		n = heatMaxCells
	}
	for len(jh.cells) < n {
		jh.cells = append(jh.cells, 0)
		jh.hot = append(jh.hot, -1)
	}
	cell := index % len(jh.cells)
	if peakC > jh.cells[cell] {
		jh.cells[cell] = peakC
		jh.hot[cell] = index
	}
	if virtualS > jh.virtualS {
		jh.virtualS = virtualS
	}
	jh.updated = time.Now()
}

// observeSample folds one scenario telemetry sample into the job's heat map.
func (h *heatState) observeSample(jobID string, sm scenario.MachineSample) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.job(jobID).observe(sm.Index, sm.PeakJunctionC, sm.NowS)
}

// observeRound folds one scheduler round barrier into the job's heat map.
// Rounds carry only the hottest machine, so a scheduled job's map fills in as
// the hotspot moves — exactly the migration behaviour worth watching.
func (h *heatState) observeRound(jobID string, rt fleetsched.RoundTelemetry) {
	h.mu.Lock()
	defer h.mu.Unlock()
	jh := h.job(jobID)
	jh.observe(rt.HottestMachine, rt.MaxJunctionC, rt.NowS)
	jh.round = rt.Round
}

// drop removes a terminal job's heat map.
func (h *heatState) drop(jobID string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.jobs, jobID)
}

// snapshot renders the current frame. Jobs sort by ID so frames are stable.
func (h *heatState) snapshot() HeatFrame {
	h.mu.Lock()
	defer h.mu.Unlock()
	frame := HeatFrame{At: time.Now()}
	for id, jh := range h.jobs {
		if len(jh.cells) == 0 {
			continue
		}
		v := JobHeatView{
			Job: id, Machines: jh.machines,
			Cells:    append([]float64(nil), jh.cells...),
			VirtualS: jh.virtualS, Round: jh.round, Updated: jh.updated,
		}
		var sum float64
		for i, c := range jh.cells {
			sum += c
			if c > v.MaxC {
				v.MaxC = c
				v.HottestMachine = jh.hot[i]
			}
		}
		v.MeanC = sum / float64(len(jh.cells))
		frame.Jobs = append(frame.Jobs, v)
	}
	sortJobHeat(frame.Jobs)
	return frame
}

func sortJobHeat(jobs []JobHeatView) {
	for i := 1; i < len(jobs); i++ {
		for k := i; k > 0 && jobs[k].Job < jobs[k-1].Job; k-- {
			jobs[k], jobs[k-1] = jobs[k-1], jobs[k]
		}
	}
}
