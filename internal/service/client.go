package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client is the Go client for a dimd daemon — what `dimctl remote` drives.
// Base is the daemon's root URL (e.g. http://127.0.0.1:8080).
type Client struct {
	Base string
	HTTP *http.Client
}

// NewClient builds a client for the daemon at base.
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/"), HTTP: &http.Client{}}
}

// StatusError is a non-2xx API response, carrying the decoded error document
// and the Retry-After hint on 429s.
type StatusError struct {
	Code       int
	Message    string
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("dimd: HTTP %d: %s", e.Code, e.Message)
}

// IsBusy reports whether the error is admission backpressure (HTTP 429).
func IsBusy(err error) bool {
	se, ok := err.(*StatusError)
	return ok && se.Code == http.StatusTooManyRequests
}

func (c *Client) do(method, path string, body any, out any) error {
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, c.Base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return statusError(resp, data)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return fmt.Errorf("dimd: decoding %s %s response: %w", method, path, err)
		}
	}
	return nil
}

func statusError(resp *http.Response, data []byte) error {
	se := &StatusError{Code: resp.StatusCode, Message: strings.TrimSpace(string(data))}
	var ae apiError
	if json.Unmarshal(data, &ae) == nil && ae.Error != "" {
		se.Message = ae.Error
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if d, err := time.ParseDuration(ra + "s"); err == nil {
			se.RetryAfter = d
		}
	}
	return se
}

// Submit submits a job.
func (c *Client) Submit(req Request) (JobView, error) {
	var v JobView
	err := c.do(http.MethodPost, "/v1/jobs", req, &v)
	return v, err
}

// Job fetches one job's status.
func (c *Client) Job(id string) (JobView, error) {
	var v JobView
	err := c.do(http.MethodGet, "/v1/jobs/"+id, nil, &v)
	return v, err
}

// Jobs lists the daemon's tracked jobs.
func (c *Client) Jobs() ([]JobView, error) {
	var v []JobView
	err := c.do(http.MethodGet, "/v1/jobs", nil, &v)
	return v, err
}

// Cancel cancels a job.
func (c *Client) Cancel(id string) (JobView, error) {
	var v JobView
	err := c.do(http.MethodDelete, "/v1/jobs/"+id, nil, &v)
	return v, err
}

// Catalog fetches the daemon's work vocabulary.
func (c *Client) Catalog() (Catalog, error) {
	var v Catalog
	err := c.do(http.MethodGet, "/v1/catalog", nil, &v)
	return v, err
}

// Health fetches the liveness document (non-2xx drain responses decode too).
func (c *Client) Health() (Health, error) {
	var v Health
	err := c.do(http.MethodGet, "/healthz", nil, &v)
	if se, ok := err.(*StatusError); ok && se.Code == http.StatusServiceUnavailable {
		return Health{Status: "draining", Draining: true}, nil
	}
	return v, err
}

// Metrics fetches the Prometheus exposition text.
func (c *Client) Metrics() (string, error) {
	resp, err := c.HTTP.Get(c.Base + "/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode/100 != 2 {
		return "", statusError(resp, data)
	}
	return string(data), nil
}

// Output fetches a done job's rendered report — byte-identical to the
// matching dimctl run's output.
func (c *Client) Output(id string) (string, error) {
	resp, err := c.HTTP.Get(c.Base + "/v1/jobs/" + id + "/output")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode/100 != 2 {
		return "", statusError(resp, data)
	}
	return string(data), nil
}

// Files lists a done job's artefact names.
func (c *Client) Files(id string) ([]string, error) {
	var v []string
	err := c.do(http.MethodGet, "/v1/jobs/"+id+"/files", nil, &v)
	return v, err
}

// File fetches one artefact — byte-identical to the matching dimctl export.
func (c *Client) File(id, name string) ([]byte, error) {
	resp, err := c.HTTP.Get(c.Base + "/v1/jobs/" + id + "/files/" + name)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		return nil, statusError(resp, data)
	}
	return data, nil
}

// Stream follows the job's NDJSON telemetry, invoking fn per event, until
// the stream ends (the job reached a terminal state), fn returns an error,
// or ctx is done. The terminal done/error event is delivered to fn like any
// other.
func (c *Client) Stream(ctx context.Context, id string, fn func(Event) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/jobs/"+id+"/stream", nil)
	if err != nil {
		return err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		data, _ := io.ReadAll(resp.Body)
		return statusError(resp, data)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			return fmt.Errorf("dimd: decoding stream event: %w", err)
		}
		if err := fn(e); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return err
	}
	return ctx.Err()
}

// Wait blocks until the job reaches a terminal state, following the stream
// (which ends exactly at terminality) and confirming with a status fetch.
// If the terminal record is evicted from the daemon's bounded job history
// between the two, the view is reconstructed from the stream's terminal
// event rather than reported as an error.
func (c *Client) Wait(ctx context.Context, id string) (JobView, error) {
	var terminal Event
	if err := c.Stream(ctx, id, func(e Event) error {
		if e.Type == "done" || e.Type == "error" {
			terminal = e
		}
		return nil
	}); err != nil {
		return JobView{}, err
	}
	v, err := c.Job(id)
	if se, ok := err.(*StatusError); ok && se.Code == http.StatusNotFound && terminal.State != "" {
		return JobView{ID: id, State: terminal.State, Error: terminal.Error}, nil
	}
	return v, err
}
