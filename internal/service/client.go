package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/scenario"
)

// Client is the Go client for a dimd daemon — what `dimctl remote` drives.
// Base is the daemon's root URL (e.g. http://127.0.0.1:8080).
type Client struct {
	Base string
	HTTP *http.Client
	// Retry governs transient-failure handling. The zero value makes every
	// call single-attempt (NewClient's behavior); set it — or construct with
	// NewRetryClient — to ride out daemon restarts and backpressure.
	Retry RetryPolicy

	jmu    sync.Mutex
	jitter *rng.Source
}

// NewClient builds a client for the daemon at base, without retries.
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/"), HTTP: &http.Client{}}
}

// NewRetryClient builds a client that retries transient failures under the
// given policy (pass the zero RetryPolicy for the documented defaults).
func NewRetryClient(base string, p RetryPolicy) *Client {
	c := NewClient(base)
	c.Retry = p.withDefaults()
	return c
}

// RetryPolicy is capped exponential backoff with deterministic jitter.
//
// What retries is decided by safety, not success odds: reads (status, lists,
// outputs, files, streams) always retry; a submission retries only when it is
// backpressure-rejected (429 — the daemon provably did not admit it) or
// explicitly marked Request.Idempotent (resubmit-by-content-address makes a
// duplicated request attach to the original job instead of forking work). A
// 429's Retry-After wins over the computed backoff when longer.
type RetryPolicy struct {
	// MaxAttempts bounds total tries (first call included). 0 means the
	// default 5; 1 disables retries.
	MaxAttempts int
	// BaseDelay is the first backoff step; each retry doubles it up to
	// MaxDelay. Defaults: 100ms base, 5s cap.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// AttemptTimeout bounds each individual attempt of a unary call (it does
	// not apply to streams, which are progress-bounded instead): a daemon
	// that accepts the connection but never answers becomes a retryable
	// timeout rather than a hang. 0 disables the bound.
	AttemptTimeout time.Duration
	// Seed feeds the jitter stream (deterministic, like everything else in
	// this repo). Zero selects a fixed default seed.
	Seed uint64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 5
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 5 * time.Second
	}
	return p
}

// backoff computes the wait before retry attempt (1-based), jittered
// uniformly over [d/2, d) so a fleet of clients does not stampede in phase.
func (c *Client) backoff(attempt int) time.Duration {
	p := c.Retry.withDefaults()
	d := p.BaseDelay << (attempt - 1)
	if d > p.MaxDelay || d <= 0 { // <= 0: shift overflow
		d = p.MaxDelay
	}
	c.jmu.Lock()
	if c.jitter == nil {
		seed := p.Seed
		if seed == 0 {
			seed = 0x64696d64 // "dimd"
		}
		c.jitter = rng.New(seed)
	}
	f := 0.5 + 0.5*c.jitter.Float64()
	c.jmu.Unlock()
	return time.Duration(float64(d) * f)
}

// retryable classifies an error: transport failures and gateway-ish statuses
// (429 draining/backpressure, 502/503/504) are transient; other HTTP statuses
// are answers, not failures.
func retryable(err error) bool {
	if err == nil {
		return false
	}
	se, ok := err.(*StatusError)
	if !ok {
		return true // transport: connection refused/reset mid-restart
	}
	switch se.Code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// withRetry runs op under the client's policy, retrying errors canRetry
// accepts. A zero Retry field (a hand-built Client) disables retries, as
// does MaxAttempts 1. op receives the per-attempt context — the policy's
// AttemptTimeout applies to each attempt separately, so a retried call gets a
// fresh deadline.
func (c *Client) withRetry(ctx context.Context, canRetry func(error) bool, op func(ctx context.Context) error) error {
	p := c.Retry
	if p.MaxAttempts == 1 || (p == RetryPolicy{}) {
		return op(ctx)
	}
	p = p.withDefaults()
	attemptOnce := func() error {
		actx := ctx
		if p.AttemptTimeout > 0 {
			var cancel context.CancelFunc
			actx, cancel = context.WithTimeout(ctx, p.AttemptTimeout)
			defer cancel()
		}
		return op(actx)
	}
	var err error
	for attempt := 1; ; attempt++ {
		err = attemptOnce()
		if err != nil && ctx.Err() == nil && errors.Is(err, context.DeadlineExceeded) {
			// The attempt deadline fired, not the caller's: retryable.
			err = fmt.Errorf("dimd: attempt timed out after %v: %w", p.AttemptTimeout, err)
		}
		if err == nil || !canRetry(err) || attempt >= p.MaxAttempts {
			return err
		}
		wait := c.backoff(attempt)
		if se, ok := err.(*StatusError); ok && se.RetryAfter > wait {
			wait = se.RetryAfter
		}
		t := time.NewTimer(wait)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
}

// StatusError is a non-2xx API response, carrying the decoded error document
// and the Retry-After hint on 429s.
type StatusError struct {
	Code       int
	Message    string
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("dimd: HTTP %d: %s", e.Code, e.Message)
}

// IsBusy reports whether the error is admission backpressure (HTTP 429).
func IsBusy(err error) bool {
	se, ok := err.(*StatusError)
	return ok && se.Code == http.StatusTooManyRequests
}

// do issues one reading call (GETs, DELETE) with retries: reads are
// idempotent, so any transient failure may be retried.
func (c *Client) do(method, path string, body any, out any) error {
	return c.withRetry(context.Background(), retryable, func(ctx context.Context) error {
		return c.doOnce(ctx, method, path, body, out)
	})
}

func (c *Client) doOnce(ctx context.Context, method, path string, body any, out any) error {
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return statusError(resp, data)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return fmt.Errorf("dimd: decoding %s %s response: %w", method, path, err)
		}
	}
	return nil
}

func statusError(resp *http.Response, data []byte) error {
	se := &StatusError{Code: resp.StatusCode, Message: strings.TrimSpace(string(data))}
	var ae apiError
	if json.Unmarshal(data, &ae) == nil && ae.Error != "" {
		se.Message = ae.Error
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		se.RetryAfter = parseRetryAfter(ra, time.Now())
	}
	return se
}

// parseRetryAfter handles both RFC 9110 forms of the header: delay-seconds
// ("1", and tolerantly "1.5") and an absolute HTTP-date ("Fri, 08 Aug 2026
// 07:00:00 GMT"), the form proxies in front of a draining daemon tend to
// emit. Unparseable or already-past values yield 0 — the computed backoff
// then governs alone.
func parseRetryAfter(ra string, now time.Time) time.Duration {
	if secs, err := strconv.ParseFloat(ra, 64); err == nil {
		if secs <= 0 {
			return 0
		}
		return time.Duration(secs * float64(time.Second))
	}
	if at, err := http.ParseTime(ra); err == nil {
		if d := at.Sub(now); d > 0 {
			return d
		}
	}
	return 0
}

// Submit submits a job. Retry safety is conditional: a plain submission
// retries only 429 rejections (the daemon provably did not admit it), while a
// Request marked Idempotent also retries transport failures and restarts —
// if the lost response had actually landed, the resubmission attaches to that
// job by content key instead of forking a duplicate run.
func (c *Client) Submit(req Request) (JobView, error) {
	canRetry := IsBusy
	if req.Idempotent {
		canRetry = retryable
	}
	var v JobView
	err := c.withRetry(context.Background(), canRetry, func(ctx context.Context) error {
		return c.doOnce(ctx, http.MethodPost, "/v1/jobs", req, &v)
	})
	return v, err
}

// Job fetches one job's status.
func (c *Client) Job(id string) (JobView, error) {
	var v JobView
	err := c.do(http.MethodGet, "/v1/jobs/"+id, nil, &v)
	return v, err
}

// Jobs lists the daemon's tracked jobs.
func (c *Client) Jobs() ([]JobView, error) {
	var v []JobView
	err := c.do(http.MethodGet, "/v1/jobs", nil, &v)
	return v, err
}

// Cancel cancels a job.
func (c *Client) Cancel(id string) (JobView, error) {
	var v JobView
	err := c.do(http.MethodDelete, "/v1/jobs/"+id, nil, &v)
	return v, err
}

// Catalog fetches the daemon's work vocabulary.
func (c *Client) Catalog() (Catalog, error) {
	var v Catalog
	err := c.do(http.MethodGet, "/v1/catalog", nil, &v)
	return v, err
}

// Health fetches the liveness document (non-2xx drain responses decode too).
func (c *Client) Health() (Health, error) {
	var v Health
	err := c.do(http.MethodGet, "/healthz", nil, &v)
	if se, ok := err.(*StatusError); ok && se.Code == http.StatusServiceUnavailable {
		return Health{Status: "draining", Draining: true}, nil
	}
	return v, err
}

// getRaw fetches a non-JSON endpoint with read retries.
func (c *Client) getRaw(path string) ([]byte, error) {
	var data []byte
	err := c.withRetry(context.Background(), retryable, func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+path, nil)
		if err != nil {
			return err
		}
		resp, err := c.HTTP.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		d, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		if resp.StatusCode/100 != 2 {
			return statusError(resp, d)
		}
		data = d
		return nil
	})
	return data, err
}

// Metrics fetches the Prometheus exposition text.
func (c *Client) Metrics() (string, error) {
	data, err := c.getRaw("/metrics")
	return string(data), err
}

// Trace fetches a job's span trace as Chrome trace-event JSON — loadable in
// chrome://tracing or Perfetto.
func (c *Client) Trace(id string) ([]byte, error) {
	return c.getRaw("/debug/trace/" + id)
}

// Heat fetches one fleet heat-map frame (the ?once=1 snapshot).
func (c *Client) Heat() (HeatFrame, error) {
	var v HeatFrame
	err := c.do(http.MethodGet, "/v1/fleet/heat?once=1", nil, &v)
	return v, err
}

// HeatStream follows the SSE fleet heat feed, invoking fn per frame, until fn
// returns an error or ctx is done (the normal way to stop watching). interval
// is the server-side frame cadence; zero selects the server default.
func (c *Client) HeatStream(ctx context.Context, interval time.Duration, fn func(HeatFrame) error) error {
	path := c.Base + "/v1/fleet/heat"
	if interval > 0 {
		path += fmt.Sprintf("?interval_ms=%d", interval.Milliseconds())
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		data, _ := io.ReadAll(resp.Body)
		return statusError(resp, data)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if !bytes.HasPrefix(line, []byte("data: ")) {
			continue
		}
		var f HeatFrame
		if err := json.Unmarshal(bytes.TrimPrefix(line, []byte("data: ")), &f); err != nil {
			return fmt.Errorf("dimd: decoding heat frame: %w", err)
		}
		if err := fn(f); err != nil {
			return err
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return sc.Err()
}

// Output fetches a done job's rendered report — byte-identical to the
// matching dimctl run's output.
func (c *Client) Output(id string) (string, error) {
	data, err := c.getRaw("/v1/jobs/" + id + "/output")
	return string(data), err
}

// Files lists a done job's artefact names.
func (c *Client) Files(id string) ([]string, error) {
	var v []string
	err := c.do(http.MethodGet, "/v1/jobs/"+id+"/files", nil, &v)
	return v, err
}

// File fetches one artefact — byte-identical to the matching dimctl export.
func (c *Client) File(id, name string) ([]byte, error) {
	return c.getRaw("/v1/jobs/" + id + "/files/" + name)
}

// fnError marks an error returned by the subscriber's callback — always
// terminal, never retried.
type fnError struct{ err error }

func (e *fnError) Error() string { return e.err.Error() }
func (e *fnError) Unwrap() error { return e.err }

// Stream follows the job's NDJSON telemetry, invoking fn per event, until
// the stream ends (the job reached a terminal state), fn returns an error,
// or ctx is done. The terminal done/error event is delivered to fn like any
// other.
//
// Under a retry policy a dropped connection resumes, not restarts: the
// client remembers the last sequence number it delivered and reconnects with
// ?from=next, so fn sees every event exactly once across any number of
// drops (the server's per-job ring permitting — entries that aged out while
// disconnected surface as one "gap" event, same as for a slow reader). Each
// delivered event refunds the retry budget; only consecutive dead
// connections exhaust it.
func (c *Client) Stream(ctx context.Context, id string, fn func(Event) error) error {
	next := -1 // -1: no resume point yet, take the stream from its start
	p := c.Retry
	if p.MaxAttempts != 1 && (p != RetryPolicy{}) {
		p = p.withDefaults()
	}
	for attempt := 1; ; attempt++ {
		progressed, err := c.streamOnce(ctx, id, &next, fn)
		if err == nil || ctx.Err() != nil {
			return err
		}
		var fe *fnError
		if errors.As(err, &fe) {
			return fe.err
		}
		if progressed {
			attempt = 1
		}
		if p.MaxAttempts <= 1 || !retryable(err) || attempt >= p.MaxAttempts {
			return err
		}
		t := time.NewTimer(c.backoff(attempt))
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
}

// streamOnce runs a single stream connection, advancing *next past every
// event it delivers. It reports whether any event was delivered; a nil error
// means the stream ended normally (the job is terminal).
func (c *Client) streamOnce(ctx context.Context, id string, next *int, fn func(Event) error) (bool, error) {
	path := c.Base + "/v1/jobs/" + id + "/stream"
	if *next >= 0 {
		path += fmt.Sprintf("?from=%d", *next)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, path, nil)
	if err != nil {
		return false, err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		data, _ := io.ReadAll(resp.Body)
		return false, statusError(resp, data)
	}
	progressed, terminal := false, false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			return progressed, fmt.Errorf("dimd: decoding stream event: %w", err)
		}
		if err := fn(e); err != nil {
			return progressed, &fnError{err}
		}
		progressed = true
		if e.Type == "gap" {
			*next = e.Seq + e.Dropped
		} else {
			*next = e.Seq + 1
		}
		if e.Type == "done" || e.Type == "error" {
			terminal = true
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return progressed, err
	}
	if err := ctx.Err(); err != nil {
		return progressed, err
	}
	if !terminal {
		// The protocol ends every stream with the terminal done/error event.
		// A body that finished without one was cut — by a dying daemon or a
		// middlebox — even if HTTP framing closed cleanly. Treat it like any
		// dropped connection so a retry policy resumes instead of the caller
		// mistaking truncation for completion.
		return progressed, errTruncated
	}
	return progressed, nil
}

// errTruncated marks a stream that ended without its terminal event; it is
// retryable (the client reconnects and resumes).
var errTruncated = errors.New("dimd: stream ended before the job reached a terminal state")

// ClusterHealth probes the daemon's shard-serving readiness — the
// coordinator's heartbeat. Single attempt, no retries: the caller's lease
// machinery owns failure policy.
func (c *Client) ClusterHealth(ctx context.Context) error {
	return c.doOnce(ctx, http.MethodGet, "/v1/cluster/health", nil, nil)
}

// ClusterStatus fetches a coordinator's worker-fleet status.
func (c *Client) ClusterStatus() (ClusterStatus, error) {
	var v ClusterStatus
	err := c.do(http.MethodGet, "/v1/cluster/status", nil, &v)
	return v, err
}

// ShardStream executes one shard on the daemon, invoking onResult per
// streamed machine result. Single attempt by design: any truncation, error
// line, or transport failure returns an error and the coordinator's lease
// layer decides whether and where to re-dispatch. A stream that ends without
// the terminal done line is truncation, never success. On success it returns
// the worker's shard spans (ridden on the terminal line) for the coordinator
// to stitch into the job's cluster-wide trace; nil from pre-PR-10 workers.
func (c *Client) ShardStream(ctx context.Context, req ShardRequest, onResult func(scenario.MachineResult)) ([]obs.SpanRecord, error) {
	raw, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/v1/shards", bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.HTTP.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		data, _ := io.ReadAll(resp.Body)
		return nil, statusError(resp, data)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var sl shardLine
		if err := json.Unmarshal(line, &sl); err != nil {
			return nil, fmt.Errorf("dimd: decoding shard line: %w", err)
		}
		switch {
		case sl.Machine != nil:
			onResult(*sl.Machine)
		case sl.Error != "":
			return nil, fmt.Errorf("dimd: shard %d failed on worker: %s", req.Shard.ID, sl.Error)
		case sl.Done:
			return sl.Spans, nil
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("dimd: shard %d stream ended without its terminal line", req.Shard.ID)
}

// Snapshot captures the daemon's full state document — queue, jobs with
// checkpoints and machine thermal states, cluster health, heat map — as a
// content-hashed artifact.
func (c *Client) Snapshot() (Snapshot, error) {
	var v Snapshot
	err := c.do(http.MethodGet, "/v1/snapshot", nil, &v)
	return v, err
}

// Incidents lists the daemon's retained flight-recorder dumps.
func (c *Client) Incidents() ([]IncidentSummary, error) {
	var v []IncidentSummary
	err := c.do(http.MethodGet, "/v1/incidents", nil, &v)
	return v, err
}

// Incident fetches one full incident dump: flight-recorder ring plus the
// fleet snapshot taken at trigger time.
func (c *Client) Incident(id string) (Incident, error) {
	var v Incident
	err := c.do(http.MethodGet, "/v1/incidents/"+id, nil, &v)
	return v, err
}

// Wait blocks until the job reaches a terminal state, following the stream
// (which ends exactly at terminality) and confirming with a status fetch.
// If the terminal record is evicted from the daemon's bounded job history
// between the two, the view is reconstructed from the stream's terminal
// event rather than reported as an error.
func (c *Client) Wait(ctx context.Context, id string) (JobView, error) {
	var terminal Event
	if err := c.Stream(ctx, id, func(e Event) error {
		if e.Type == "done" || e.Type == "error" {
			terminal = e
		}
		return nil
	}); err != nil {
		return JobView{}, err
	}
	v, err := c.Job(id)
	if se, ok := err.(*StatusError); ok && se.Code == http.StatusNotFound && terminal.State != "" {
		return JobView{ID: id, State: terminal.State, Error: terminal.Error}, nil
	}
	return v, err
}
