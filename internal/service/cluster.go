package service

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/machine"
	"repro/internal/scenario"
)

// ClusterConfig enables coordinator mode: unscheduled scenario jobs shard
// across the static worker set, with lease-based recovery and degrade-to-local
// when no worker is healthy. The zero value keeps the daemon single-node.
//
// Determinism survives distribution: shard boundaries are a pure function of
// the fleet size, each machine simulates from its own seed regardless of which
// worker (or the coordinator itself) runs it, and the coordinator folds the
// streamed results through the same index-ordered aggregation a single-node
// run uses — the final artifact is byte-identical no matter how many leases
// expired along the way.
type ClusterConfig struct {
	// Workers is the static worker base-URL list; empty disables clustering.
	Workers []string
	// LeaseTTL, HeartbeatEvery, UnhealthyAfter, ShardsPerWorker, MaxPerWorker
	// and MaxShardAttempts tune the cluster.Config knobs of the same names;
	// zero selects that package's defaults.
	LeaseTTL         time.Duration
	HeartbeatEvery   time.Duration
	UnhealthyAfter   int
	ShardsPerWorker  int
	MaxPerWorker     int
	MaxShardAttempts int
}

// openCluster starts the coordinator tier. Called from Open after recovery so
// re-enqueued jobs dispatch through it like fresh ones.
func (s *Service) openCluster() {
	cc := s.cfg.Cluster
	s.cluClients = make(map[string]*Client, len(cc.Workers))
	s.cluPIDs = make(map[string]int, len(cc.Workers))
	for i, url := range cc.Workers {
		// No retry policy: the lease machinery is the retry layer, and a
		// client-side retry would only blur the coordinator's failure signal.
		s.cluClients[url] = NewClient(url)
		s.cluPIDs[url] = i + 2 // pid 1 is the coordinator's own spans
	}
	probe := func(ctx context.Context, url string) error {
		return s.cluClients[url].ClusterHealth(ctx)
	}
	onHealth := func(url string, healthy bool) {
		if healthy {
			s.log.Info("worker healthy", "worker", url)
		} else {
			s.log.Warn("worker unhealthy", "worker", url)
		}
	}
	s.clu = cluster.New(cluster.Config{
		Workers:          cc.Workers,
		LeaseTTL:         cc.LeaseTTL,
		HeartbeatEvery:   cc.HeartbeatEvery,
		UnhealthyAfter:   cc.UnhealthyAfter,
		ShardsPerWorker:  cc.ShardsPerWorker,
		MaxPerWorker:     cc.MaxPerWorker,
		MaxShardAttempts: cc.MaxShardAttempts,
		Logger:           s.log,
	}, probe, onHealth)
	s.log.Info("coordinator mode", "workers", len(cc.Workers))
}

// clusterHeat renders the heat frame handleHeat serves. Single-node daemons
// and plain workers serve their local map; a coordinator additionally polls
// each worker's one-shot frame (short timeout — a slow worker costs latency,
// never correctness) and folds the "<job>/s<shard>" rows into the matching
// local jobs, so `dimctl top` against the coordinator shows the whole sharded
// fleet's cells, not just completion summaries.
func (s *Service) clusterHeat(ctx context.Context) HeatFrame {
	local := s.heat.snapshot()
	if s.clu == nil {
		return local
	}
	urls := s.cfg.Cluster.Workers
	remotes := make([]HeatFrame, len(urls))
	var wg sync.WaitGroup
	for i, url := range urls {
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			wctx, cancel := context.WithTimeout(ctx, time.Second)
			defer cancel()
			var f HeatFrame
			if c.doOnce(wctx, "GET", "/v1/fleet/heat?once=1", nil, &f) == nil {
				remotes[i] = f
			}
		}(i, s.cluClients[url])
	}
	wg.Wait()
	return mergeHeatFrames(local, remotes...)
}

// executeClusteredScenario is execute's KindScenario arm under coordinator
// mode: shard the fleet across the workers, stream results back into the
// job's telemetry ring and checkpoint (resumable exactly like a single-node
// run), then aggregate through the single-node path for byte-identical
// output.
func (s *Service) executeClusteredScenario(ctx context.Context, j *Job) (*Artifact, error) {
	r := j.res
	n := len(r.spec.Compile(r.scale))
	raw, err := json.Marshal(r.spec)
	if err != nil {
		return nil, fmt.Errorf("cluster: encoding spec for dispatch: %w", err)
	}

	// Checkpoint plumbing, identical in shape to execute's single-node arm:
	// recovered results re-emit and are excluded from dispatch via RunReq.Done;
	// new results accumulate into the same checkpoint file.
	var (
		cpMu      sync.Mutex
		cpDone    []scenario.MachineResult
		recovered []scenario.MachineResult
		doneIdx   []int
	)
	if j.checkpoint != nil && len(j.checkpoint.Machines) > 0 {
		recovered = append(recovered, j.checkpoint.Machines...)
		sort.Slice(recovered, func(a, b int) bool { return recovered[a].Index < recovered[b].Index })
		cpDone = append(cpDone, recovered...)
		for _, m := range recovered {
			doneIdx = append(doneIdx, m.Index)
			j.stream.append(Event{Type: "machine", Job: j.ID, Machine: machineEvent(m)})
		}
		s.met.resumes.Add(1)
	}
	onResult := func(m scenario.MachineResult) {
		s.met.fleetViolation.Observe(m.ViolationS)
		s.heat.observeResult(j.ID, m)
		j.stream.append(Event{Type: "machine", Job: j.ID, Machine: machineEvent(m)})
		if s.store == nil || s.cfg.CheckpointEvery < 0 {
			return
		}
		cpMu.Lock()
		cpDone = append(cpDone, m)
		snap := append([]scenario.MachineResult(nil), cpDone...)
		cpMu.Unlock()
		sort.Slice(snap, func(a, b int) bool { return snap[a].Index < snap[b].Index })
		sp := j.trace.Start("checkpoint", "lifecycle", 0)
		err := s.store.writeCheckpoint(j.ID, &JobCheckpoint{Kind: KindScenario, Machines: snap})
		sp.EndArgs(map[string]any{"machines": len(snap)})
		if err == nil {
			s.met.checkpoints.Add(1)
		} else {
			s.met.walErrors.Add(1)
		}
	}

	onEvent := func(e cluster.Event) {
		switch e.Kind {
		case "grant":
			s.met.cluDispatched.Add(1)
			if e.Attempt > 1 {
				s.met.cluRetries.Add(1)
			}
			j.trace.Instant(fmt.Sprintf("shard %d -> %s", e.Shard.ID, e.Worker), "cluster", 0)
		case "revoke":
			s.met.cluLeaseAge.Observe(e.Age.Seconds())
			if e.Reason == cluster.ReasonExpired {
				s.met.cluExpirations.Add(1)
			}
			j.trace.Instant(fmt.Sprintf("shard %d revoked: %s", e.Shard.ID, e.Reason), "cluster", 0)
		case "local":
			s.met.cluLocal.Add(1)
			j.trace.Instant(fmt.Sprintf("shard %d degraded to local", e.Shard.ID), "cluster", 0)
		case "done":
			j.trace.Instant(fmt.Sprintf("shard %d done on %s (attempt %d)", e.Shard.ID, e.Worker, e.Attempt), "cluster", 0)
		}
	}

	spClu := j.trace.Start("cluster", "lifecycle", 0)
	out, err := s.clu.Run(ctx, cluster.RunReq{
		Machines: n,
		Done:     doneIdx,
		Dispatch: func(ctx context.Context, url string, sh cluster.Shard, skip []int, onRes func(scenario.MachineResult)) error {
			// Dispatch time anchors the worker's relative span clock: its shard
			// spans land on the coordinator's timeline at the moment the
			// request left, rendered under the worker's own trace process ID.
			t0d := time.Now()
			spans, err := s.cluClients[url].ShardStream(ctx, ShardRequest{
				Spec:       raw,
				Scale:      r.scale,
				Shard:      sh,
				Skip:       skip,
				Integrator: machine.IntegratorOverride(),
				Job:        j.ID,
			}, onRes)
			if err != nil {
				return err
			}
			if len(spans) > 0 {
				j.trace.Import(spans, s.cluPIDs[url], t0d)
			}
			return nil
		},
		Local: func(ctx context.Context, sh cluster.Shard, skip []int, onRes func(scenario.MachineResult)) error {
			_, err := scenario.RunShard(r.spec, r.scale, sh.From, sh.To, skip, scenario.RunOptions{
				Context:   ctx,
				OnMachine: onRes,
			})
			return err
		},
		OnResult: onResult,
		OnEvent:  onEvent,
	})
	spClu.EndArgs(map[string]any{
		"machines": n, "redispatches": out.Redispatches,
		"expirations": out.Expirations, "local_shards": out.LocalShards,
	})
	if err != nil {
		return nil, err
	}
	if out.Degraded {
		s.met.cluDegraded.Add(1)
		j.markDegraded()
		j.stream.append(Event{Type: "degraded", Job: j.ID, Error: fmt.Sprintf(
			"%d shard(s) ran on the coordinator: no healthy worker available", out.LocalShards)})
		s.log.Warn("job completed degraded", "job", j.ID, "local_shards", out.LocalShards)
		s.dumpIncident("degraded", j.ID, fmt.Sprintf(
			"%d shard(s) degraded to local execution: no healthy worker available", out.LocalShards))
	}

	// Merge: checkpoint-recovered + newly streamed results, index order, then
	// the single-node aggregation path. With full coverage RunOpts simulates
	// nothing — it validates and folds, so the artifact bytes are exactly what
	// a single-node run of the same spec produces.
	all := append(append([]scenario.MachineResult(nil), recovered...), out.Results...)
	sort.Slice(all, func(a, b int) bool { return all[a].Index < all[b].Index })
	res, err := scenario.RunOpts(r.spec, r.scale, scenario.RunOptions{
		Context:   ctx,
		Completed: all,
		Trace:     j.trace,
	})
	if err != nil {
		return nil, err
	}
	return &Artifact{
		Rendered:   res.String(),
		Files:      scenario.RenderResult(res),
		SimSeconds: res.Duration.Seconds() * float64(len(res.Machines)),
	}, nil
}
