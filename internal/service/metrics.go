package service

import (
	"fmt"
	"strconv"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/obs"
)

// metrics is the daemon's operational instrument set, held in an obs.Registry
// and rendered in Prometheus text exposition format by /metrics. Sim-seconds
// are the serving unit of work: one simulated machine advancing one virtual
// second.
//
// Every metric name predating the registry is byte-stable — dashboards and
// the CI smoke greps keep working — and the exposition golden test pins the
// full name/type set.
type metrics struct {
	reg *obs.Registry

	submitted *obs.Counter
	rejected  *obs.Counter // queue-full 429s
	completed *obs.Counter
	failed    *obs.Counter
	canceled  *obs.Counter
	inFlight  atomic.Int64 // rendered as the dimd_jobs_inflight gauge

	// Durability counters (zero and inert for in-memory daemons).
	walReplayed    *obs.Counter // journal records replayed at boot
	walTruncations *obs.Counter // torn journal tails truncated at boot
	walRecords     *obs.Counter // journal records appended by this process
	walErrors      *obs.Counter // journal appends/fsyncs that failed
	recovered      *obs.Counter // interrupted jobs re-enqueued at boot
	deduped        *obs.Counter // idempotent resubmits answered by a live job
	panics         *obs.Counter // worker panics contained to their job
	checkpoints    *obs.Counter // job checkpoints written
	resumes        *obs.Counter // jobs resumed from a checkpoint
	resumeRejected *obs.Counter // checkpoints rejected (divergent) and rerun from scratch

	// Microsecond-granular accumulators (atomic integers; floats would
	// race): virtual machine-seconds simulated, and wall-clock seconds spent
	// executing jobs.
	simMicro  atomic.Int64
	busyMicro atomic.Int64

	// Latency histograms, all in seconds on the shared obs.DefBuckets grid.
	queueWait     *obs.Histogram // submit ack -> worker pickup
	runSeconds    *obs.Histogram // worker pickup -> terminal state
	cacheLookup   *obs.Histogram // content-addressed cache get
	walFsync      *obs.Histogram // journal fsync syscall
	submitLatency *obs.Histogram // POST /v1/jobs handler, wall time
	streamLatency *obs.Histogram // GET .../stream, time to first event flushed

	// Cluster counters (coordinator side unless noted; zero and inert on
	// single-node daemons and plain workers).
	cluDispatched  *obs.Counter   // shard lease grants, first attempts and retries
	cluRetries     *obs.Counter   // shard lease grants past a shard's first
	cluExpirations *obs.Counter   // leases revoked by TTL expiry
	cluLocal       *obs.Counter   // shards degraded to in-process execution
	cluDegraded    *obs.Counter   // jobs completed in degraded mode
	cluServed      *obs.Counter   // shards this daemon executed for a remote coordinator
	cluLeaseAge    *obs.Histogram // age of revoked leases at revocation

	// Incident-observability tier (PR 10): the flight recorder's dump
	// triggers and the snapshot endpoint's own health.
	fleetViolation  *obs.Histogram // per-machine thermal violation seconds (scenario completions)
	snapshots       *obs.Counter   // fleet snapshots served
	snapshotSeconds *obs.Histogram // snapshot capture latency
	incidents       *obs.Counter   // incident dumps recorded (auto + forced)
	sloBreaches     *obs.Counter   // SLO burn-rate breach transitions detected
}

// init builds the registry. Registration order is the legacy render order —
// the exposition document keeps its layout — with the histograms appended
// after. Must run before any worker or recovery path touches a counter.
func (m *metrics) init(s *Service) {
	r := obs.NewRegistry()
	m.reg = r

	// Integer gauges render via strconv, byte-identical to the %v-on-int
	// lines of the hand-rolled exposition this registry replaced.
	intGauge := func(name, help string, fn func() int64) {
		r.Text(name, help, obs.TypeGauge, func() string { return strconv.FormatInt(fn(), 10) })
	}

	intGauge("dimd_queue_depth", "jobs admitted and waiting for a worker",
		func() int64 { return int64(s.QueueDepth()) })
	intGauge("dimd_queue_capacity", "admission bound on waiting jobs",
		func() int64 { return int64(s.cfg.QueueDepth) })
	intGauge("dimd_workers", "concurrent job executors",
		func() int64 { return int64(s.cfg.Workers) })
	intGauge("dimd_jobs_inflight", "jobs currently executing", m.inFlight.Load)

	m.submitted = r.Counter("dimd_jobs_submitted_total", "jobs admitted (including cache hits)")
	m.rejected = r.Counter("dimd_jobs_rejected_total", "submissions refused with 429 (queue full)")
	m.completed = r.Counter("dimd_jobs_completed_total", "jobs finished successfully")
	m.failed = r.Counter("dimd_jobs_failed_total", "jobs finished with an error")
	m.canceled = r.Counter("dimd_jobs_canceled_total", "jobs canceled before completion")
	m.panics = r.Counter("dimd_job_panics_total", "worker panics contained to their job")
	m.recovered = r.Counter("dimd_jobs_recovered_total", "interrupted jobs re-enqueued at boot")
	m.deduped = r.Counter("dimd_jobs_deduped_total", "idempotent resubmits answered by an existing job")
	m.walRecords = r.Counter("dimd_wal_records_total", "journal records appended by this process")
	m.walReplayed = r.Counter("dimd_wal_replayed_total", "journal records replayed at boot")
	m.walTruncations = r.Counter("dimd_wal_truncations_total", "torn journal tails truncated at boot")
	m.walErrors = r.Counter("dimd_wal_errors_total", "journal writes that failed (durability degraded)")
	m.checkpoints = r.Counter("dimd_checkpoints_written_total", "job checkpoints persisted")
	m.resumes = r.Counter("dimd_job_resumes_total", "jobs resumed from a verified checkpoint")
	m.resumeRejected = r.Counter("dimd_resume_rejects_total", "checkpoints rejected as divergent (rerun from scratch)")

	r.CounterFunc("dimd_cache_hits_total", "submissions answered from the result cache",
		s.cache.hits.Load)
	r.CounterFunc("dimd_cache_misses_total", "submissions that had to simulate",
		s.cache.misses.Load)
	intGauge("dimd_cache_entries", "artifacts retained in the result cache",
		func() int64 { entries, _ := s.cache.stats(); return int64(entries) })
	intGauge("dimd_cache_bytes", "bytes retained in the result cache",
		func() int64 { _, bytes := s.cache.stats(); return bytes })

	r.Text("dimd_sim_seconds_total", "virtual machine-seconds simulated", obs.TypeCounter,
		func() string { return fmt.Sprintf("%.6f", float64(m.simMicro.Load())/1e6) })
	r.Text("dimd_busy_seconds_total", "wall seconds spent executing jobs", obs.TypeCounter,
		func() string { return fmt.Sprintf("%.6f", float64(m.busyMicro.Load())/1e6) })
	r.Text("dimd_sim_seconds_per_second", "simulation throughput (virtual/wall)", obs.TypeGauge,
		func() string {
			sim := float64(m.simMicro.Load()) / 1e6
			busy := float64(m.busyMicro.Load()) / 1e6
			rate := 0.0
			if busy > 0 {
				rate = sim / busy
			}
			return fmt.Sprintf("%.3f", rate)
		})

	m.queueWait = r.Histogram("dimd_job_queue_wait_seconds",
		"seconds jobs waited in the admission queue before a worker picked them up", nil)
	m.runSeconds = r.Histogram("dimd_job_run_seconds",
		"wall seconds jobs spent executing", nil)
	m.cacheLookup = r.Histogram("dimd_cache_lookup_seconds",
		"result-cache lookup latency", nil)
	m.walFsync = r.Histogram("dimd_wal_fsync_seconds",
		"journal fsync latency", nil)
	m.submitLatency = r.Histogram("dimd_submit_latency_seconds",
		"POST /v1/jobs handler latency", nil)
	m.streamLatency = r.Histogram("dimd_stream_latency_seconds",
		"stream time-to-first-event latency", nil)

	// Cluster tier. The gauges read through s.clu so they render 0 on
	// single-node daemons — the metric *names* are identical everywhere,
	// which keeps the golden name list one list.
	intGauge("dimd_cluster_workers", "configured cluster workers (coordinator mode)",
		func() int64 {
			if s.clu == nil {
				return 0
			}
			return int64(s.clu.Monitor().WorkerCount())
		})
	intGauge("dimd_cluster_workers_healthy", "cluster workers currently passing heartbeats",
		func() int64 {
			if s.clu == nil {
				return 0
			}
			return int64(s.clu.Monitor().HealthyCount())
		})
	m.cluDispatched = r.Counter("dimd_cluster_shards_dispatched_total", "shard leases granted to workers")
	m.cluRetries = r.Counter("dimd_cluster_shard_retries_total", "shard leases granted past a shard's first attempt")
	m.cluExpirations = r.Counter("dimd_cluster_lease_expirations_total", "shard leases revoked by TTL expiry")
	m.cluLocal = r.Counter("dimd_cluster_shards_local_total", "shards degraded to in-process execution")
	m.cluDegraded = r.Counter("dimd_cluster_jobs_degraded_total", "jobs completed with at least one locally run shard")
	m.cluServed = r.Counter("dimd_cluster_shards_served_total", "shards executed for a remote coordinator")
	m.cluLeaseAge = r.Histogram("dimd_cluster_lease_age_seconds",
		"age of revoked shard leases at revocation", nil)
	// Incident-observability tier. The violation histogram is the burn-rate
	// evaluator's substrate; snapshot/incident counters alarm on the dump
	// machinery itself.
	m.fleetViolation = r.Histogram("dimd_fleet_violation_seconds",
		"per-machine thermal violation time over the measurement window", nil)
	m.snapshots = r.Counter("dimd_snapshots_total", "fleet snapshots captured")
	m.snapshotSeconds = r.Histogram("dimd_snapshot_seconds",
		"fleet snapshot capture latency", nil)
	m.incidents = r.Counter("dimd_incidents_total", "flight-recorder incident dumps recorded")
	m.sloBreaches = r.Counter("dimd_slo_breaches_total", "SLO burn-rate breach transitions")

	// Per-worker health/progress series, labeled by worker URL — dynamic like
	// the phase profiler's, so they live outside the pinned name list and
	// render nothing on non-coordinators.
	workerSamples := func(val func(ws cluster.WorkerStatus) float64) func() []obs.LabeledSample {
		return func() []obs.LabeledSample {
			if s.clu == nil {
				return nil
			}
			snap := s.clu.Monitor().Snapshot()
			out := make([]obs.LabeledSample, len(snap))
			for i, ws := range snap {
				out[i] = obs.LabeledSample{Label: ws.URL, Value: val(ws)}
			}
			return out
		}
	}
	r.Labeled("dimd_cluster_worker_healthy", "worker heartbeat health (1 healthy, 0 not)",
		obs.TypeGauge, "worker", workerSamples(func(ws cluster.WorkerStatus) float64 {
			if ws.Healthy {
				return 1
			}
			return 0
		}))
	r.Labeled("dimd_cluster_worker_shards_done", "shards completed per worker",
		obs.TypeCounter, "worker", workerSamples(func(ws cluster.WorkerStatus) float64 {
			return float64(ws.ShardsDone)
		}))
	r.Labeled("dimd_cluster_worker_shard_errors", "failed shard attempts per worker",
		obs.TypeCounter, "worker", workerSamples(func(ws cluster.WorkerStatus) float64 {
			return float64(ws.ShardErrors)
		}))

	// The phase profiler's per-phase series render after everything else, and
	// only while profiling is enabled — the default document stays pinned.
	r.Collect(obs.CollectPhases)
}

func (m *metrics) addSim(simSeconds, busySeconds float64) {
	m.simMicro.Add(int64(simSeconds * 1e6))
	m.busyMicro.Add(int64(busySeconds * 1e6))
}
