package service

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// metrics is the daemon's operational counter set, rendered in Prometheus
// text exposition format by /metrics. Sim-seconds are the serving unit of
// work: one simulated machine advancing one virtual second.
type metrics struct {
	submitted atomic.Int64
	rejected  atomic.Int64 // queue-full 429s
	completed atomic.Int64
	failed    atomic.Int64
	canceled  atomic.Int64
	inFlight  atomic.Int64

	// Durability counters (zero and inert for in-memory daemons).
	walReplayed    atomic.Int64 // journal records replayed at boot
	walTruncations atomic.Int64 // torn journal tails truncated at boot
	walRecords     atomic.Int64 // journal records appended by this process
	walErrors      atomic.Int64 // journal appends/fsyncs that failed
	recovered      atomic.Int64 // interrupted jobs re-enqueued at boot
	deduped        atomic.Int64 // idempotent resubmits answered by a live job
	panics         atomic.Int64 // worker panics contained to their job
	checkpoints    atomic.Int64 // job checkpoints written
	resumes        atomic.Int64 // jobs resumed from a checkpoint
	resumeRejected atomic.Int64 // checkpoints rejected (divergent) and rerun from scratch

	// Microsecond-granular accumulators (atomic integers; floats would
	// race): virtual machine-seconds simulated, and wall-clock seconds spent
	// executing jobs.
	simMicro  atomic.Int64
	busyMicro atomic.Int64
}

func (m *metrics) addSim(simSeconds, busySeconds float64) {
	m.simMicro.Add(int64(simSeconds * 1e6))
	m.busyMicro.Add(int64(busySeconds * 1e6))
}

// render writes the exposition document. The service supplies the gauges it
// owns (queue depth and capacity, worker count, cache occupancy).
func (m *metrics) render(b *strings.Builder, queueDepth, queueCap, workers int, c *cache) {
	entries, bytes := c.stats()
	sim := float64(m.simMicro.Load()) / 1e6
	busy := float64(m.busyMicro.Load()) / 1e6
	rate := 0.0
	if busy > 0 {
		rate = sim / busy
	}
	gauge := func(name string, help string, v any) {
		fmt.Fprintf(b, "# HELP %s %s\n", name, help)
		fmt.Fprintf(b, "%s %v\n", name, v)
	}
	gauge("dimd_queue_depth", "jobs admitted and waiting for a worker", queueDepth)
	gauge("dimd_queue_capacity", "admission bound on waiting jobs", queueCap)
	gauge("dimd_workers", "concurrent job executors", workers)
	gauge("dimd_jobs_inflight", "jobs currently executing", m.inFlight.Load())
	gauge("dimd_jobs_submitted_total", "jobs admitted (including cache hits)", m.submitted.Load())
	gauge("dimd_jobs_rejected_total", "submissions refused with 429 (queue full)", m.rejected.Load())
	gauge("dimd_jobs_completed_total", "jobs finished successfully", m.completed.Load())
	gauge("dimd_jobs_failed_total", "jobs finished with an error", m.failed.Load())
	gauge("dimd_jobs_canceled_total", "jobs canceled before completion", m.canceled.Load())
	gauge("dimd_job_panics_total", "worker panics contained to their job", m.panics.Load())
	gauge("dimd_jobs_recovered_total", "interrupted jobs re-enqueued at boot", m.recovered.Load())
	gauge("dimd_jobs_deduped_total", "idempotent resubmits answered by an existing job", m.deduped.Load())
	gauge("dimd_wal_records_total", "journal records appended by this process", m.walRecords.Load())
	gauge("dimd_wal_replayed_total", "journal records replayed at boot", m.walReplayed.Load())
	gauge("dimd_wal_truncations_total", "torn journal tails truncated at boot", m.walTruncations.Load())
	gauge("dimd_wal_errors_total", "journal writes that failed (durability degraded)", m.walErrors.Load())
	gauge("dimd_checkpoints_written_total", "job checkpoints persisted", m.checkpoints.Load())
	gauge("dimd_job_resumes_total", "jobs resumed from a verified checkpoint", m.resumes.Load())
	gauge("dimd_resume_rejects_total", "checkpoints rejected as divergent (rerun from scratch)", m.resumeRejected.Load())
	gauge("dimd_cache_hits_total", "submissions answered from the result cache", c.hits.Load())
	gauge("dimd_cache_misses_total", "submissions that had to simulate", c.misses.Load())
	gauge("dimd_cache_entries", "artifacts retained in the result cache", entries)
	gauge("dimd_cache_bytes", "bytes retained in the result cache", bytes)
	gauge("dimd_sim_seconds_total", "virtual machine-seconds simulated", fmt.Sprintf("%.6f", sim))
	gauge("dimd_busy_seconds_total", "wall seconds spent executing jobs", fmt.Sprintf("%.6f", busy))
	gauge("dimd_sim_seconds_per_second", "simulation throughput (virtual/wall)", fmt.Sprintf("%.3f", rate))
}
