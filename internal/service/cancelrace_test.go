package service

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestCancelRacesCheckpointWrites aims job cancellation at every phase of a
// checkpointing scheduled run: the engine's runner.MapCtx workers observe the
// cancel at metric ticks while the round barrier may be mid-checkpoint. The
// invariants under fire: no torn or orphaned temp files in the data
// directory, every surviving checkpoint parses, terminal jobs keep no resume
// token, and the daemon stays serviceable. Run with -race in CI — the
// interesting failures here are data races between the cancel path and the
// checkpoint writer.
func TestCancelRacesCheckpointWrites(t *testing.T) {
	dir := t.TempDir()
	svc := openDurable(t, dir, Config{Workers: 2, DefaultScale: 1, CheckpointEvery: 1})

	// Staggered cancel delays sweep the race window: from "before the first
	// round barrier" to "after several checkpoints have been written".
	for i, delay := range []time.Duration{0, 200 * time.Microsecond, time.Millisecond,
		3 * time.Millisecond, 8 * time.Millisecond, 20 * time.Millisecond} {
		j, err := svc.Submit(Request{Spec: schedSpec("cancel-race"), Scale: 1})
		if err != nil {
			t.Fatalf("iteration %d: submit: %v", i, err)
		}
		time.Sleep(delay)
		if err := svc.Cancel(j.ID); err != nil {
			t.Fatalf("iteration %d: cancel: %v", i, err)
		}
		v := waitTerminal(t, j)
		if v.State != StateCanceled && v.State != StateDone { // done: cancel lost the race — fine
			t.Fatalf("iteration %d: state %s (%s), want canceled or done", i, v.State, v.Error)
		}

		for _, sub := range []string{"checkpoints", "artifacts"} {
			ents, err := os.ReadDir(filepath.Join(dir, sub))
			if err != nil {
				t.Fatalf("read %s: %v", sub, err)
			}
			for _, e := range ents {
				if strings.HasSuffix(e.Name(), ".tmp") {
					t.Fatalf("iteration %d: torn temp file left behind: %s/%s", i, sub, e.Name())
				}
				raw, err := os.ReadFile(filepath.Join(dir, sub, e.Name()))
				if err != nil {
					t.Fatalf("read %s/%s: %v", sub, e.Name(), err)
				}
				if !json.Valid(raw) {
					t.Fatalf("iteration %d: %s/%s is not valid JSON (torn write)", i, sub, e.Name())
				}
			}
		}
		// Terminal jobs surrender their resume token.
		if _, err := os.Stat(filepath.Join(dir, "checkpoints", j.ID+".json")); !os.IsNotExist(err) {
			t.Fatalf("iteration %d: terminal job still has a checkpoint file", i)
		}
		// The cache key must not be poisoned by the cancellation: a fresh
		// submission of the same work still runs (or hits a completed run).
		if v.State == StateCanceled && j.View().CacheHit {
			t.Fatalf("iteration %d: canceled job claims a cache hit", i)
		}
	}

	// The daemon survived the barrage: one more run to completion.
	j, err := svc.Submit(Request{Spec: schedSpec("cancel-race-final"), Scale: 1})
	if err != nil {
		t.Fatalf("final submit: %v", err)
	}
	if v := waitTerminal(t, j); v.State != StateDone {
		t.Fatalf("final run: %s (%s)", v.State, v.Error)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
