package service

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/fleetsched"
)

// openDurable boots a durable service over dir and tears it down with the
// test (unless the test shuts it down itself first; Shutdown twice errors,
// so the cleanup swallows that).
func openDurable(t *testing.T, dir string, cfg Config) *Service {
	t.Helper()
	cfg.DataDir = dir
	svc, err := Open(cfg)
	if err != nil {
		t.Fatalf("open durable service: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = svc.Shutdown(ctx)
	})
	return svc
}

// waitTerminal polls a job to a terminal state.
func waitTerminal(t *testing.T, j *Job) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if j.Terminal() {
			return j.View()
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach a terminal state: %+v", j.ID, j.View())
	return JobView{}
}

// artifactBytes flattens an artifact for byte-identity comparison.
func artifactBytes(t *testing.T, a *Artifact) string {
	t.Helper()
	if a == nil {
		t.Fatalf("job has no artifact")
	}
	var b strings.Builder
	b.WriteString(a.Rendered)
	for _, f := range a.Files {
		b.WriteString("\x00" + f.Name + "\x00" + f.Content)
	}
	return b.String()
}

// TestCacheSurvivesRestart is the durability core: complete a job, shut the
// daemon down, reopen the same data directory, and the result cache is warm —
// an identical resubmission is a cache hit serving byte-identical output
// without re-simulating.
func TestCacheSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	spec := tinySpec("restart-cache", 2, 7)

	svc1 := openDurable(t, dir, Config{Workers: 2, DefaultScale: 1})
	j1, err := svc1.Submit(Request{Spec: spec})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if v := waitTerminal(t, j1); v.State != StateDone {
		t.Fatalf("first run finished %s (%s)", v.State, v.Error)
	}
	want := artifactBytes(t, j1.artifactRef())
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc1.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	svc2 := openDurable(t, dir, Config{Workers: 2, DefaultScale: 1})
	if got := svc2.met.walReplayed.Load(); got < 3 {
		t.Fatalf("replayed %d journal records, want >= 3 (submitted/started/done)", got)
	}
	// The recovered done job itself is tracked and terminal.
	if js := svc2.Jobs(); len(js) != 1 || !js[0].Terminal() {
		t.Fatalf("recovered job table = %d jobs, want 1 terminal", len(js))
	}
	j2, err := svc2.Submit(Request{Spec: spec})
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	v2 := j2.View()
	if v2.State != StateDone || !v2.CacheHit {
		t.Fatalf("resubmission after restart: state=%s cacheHit=%v, want done cache hit", v2.State, v2.CacheHit)
	}
	if got := artifactBytes(t, j2.artifactRef()); got != want {
		t.Fatalf("restart-served artifact differs from the original (%d vs %d bytes)", len(got), len(want))
	}
}

// TestRecoveryRerunsInterruptedJob simulates a crash mid-run: the journal
// records a submission and a start but no completion. The restarted daemon
// must re-enqueue the job and produce byte-identical output to an
// uninterrupted run.
func TestRecoveryRerunsInterruptedJob(t *testing.T) {
	spec := tinySpec("crash-rerun", 2, 13)
	req := Request{Spec: spec}

	// Reference run, in-memory.
	ref := New(Config{Workers: 2, DefaultScale: 1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = ref.Shutdown(ctx)
	}()
	rj, err := ref.Submit(req)
	if err != nil {
		t.Fatalf("reference submit: %v", err)
	}
	if v := waitTerminal(t, rj); v.State != StateDone {
		t.Fatalf("reference run finished %s (%s)", v.State, v.Error)
	}
	want := artifactBytes(t, rj.artifactRef())
	r, err := ref.resolve(req)
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}

	// Hand-craft the crashed daemon's journal: submitted + started, no end.
	dir := t.TempDir()
	st, _, err := openStore(dir)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	now := time.Now()
	for _, rec := range []journalRecord{
		{Op: "submitted", ID: "job-000001", At: now, Key: r.key, Kind: r.kind, JobName: "crash-rerun", Scale: r.scale, Spec: spec},
		{Op: "started", ID: "job-000001", At: now},
	} {
		if err := st.append(rec, true); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := st.close(); err != nil {
		t.Fatalf("close store: %v", err)
	}

	svc := openDurable(t, dir, Config{Workers: 2, DefaultScale: 1})
	if got := svc.Recovered(); got != 1 {
		t.Fatalf("Recovered() = %d, want 1", got)
	}
	j, err := svc.Job("job-000001")
	if err != nil {
		t.Fatalf("recovered job not tracked: %v", err)
	}
	if v := waitTerminal(t, j); v.State != StateDone {
		t.Fatalf("recovered job finished %s (%s)", v.State, v.Error)
	}
	if got := artifactBytes(t, j.artifactRef()); got != want {
		t.Fatalf("recovered rerun diverged from uninterrupted reference")
	}
	// The job counter resumed past the recovered ID: no reuse.
	j2, err := svc.Submit(Request{Spec: tinySpec("crash-rerun-b", 1, 14)})
	if err != nil {
		t.Fatalf("post-recovery submit: %v", err)
	}
	if j2.ID == "job-000001" {
		t.Fatalf("job ID reused after recovery")
	}
}

// TestRecoveryFailsOnKeyDrift: a journal whose submitted record carries a
// content key the restarted daemon cannot reproduce (catalog or integrator
// changed across the restart) must fail that job loudly, not silently
// compute something else under the old name.
func TestRecoveryFailsOnKeyDrift(t *testing.T) {
	dir := t.TempDir()
	st, _, err := openStore(dir)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	rec := journalRecord{
		Op: "submitted", ID: "job-000001", At: time.Now(),
		Key: strings.Repeat("ab", 32), Kind: KindScenario,
		JobName: "drift", Scale: 1, Spec: tinySpec("drift", 1, 1),
	}
	if err := st.append(rec, true); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := st.close(); err != nil {
		t.Fatalf("close store: %v", err)
	}

	svc := openDurable(t, dir, Config{Workers: 1, DefaultScale: 1})
	j, err := svc.Job("job-000001")
	if err != nil {
		t.Fatalf("drifted job not tracked: %v", err)
	}
	v := waitTerminal(t, j)
	if v.State != StateFailed || !strings.Contains(v.Error, "drifted") {
		t.Fatalf("drifted job: state=%s err=%q, want failed with key-drift message", v.State, v.Error)
	}
}

// TestRecoveryToleratesTornJournal: garbage appended to the journal tail (a
// torn write at the crash) is truncated at reopen; every intact record still
// replays.
func TestRecoveryToleratesTornJournal(t *testing.T) {
	dir := t.TempDir()
	spec := tinySpec("torn-tail", 1, 21)

	svc1 := openDurable(t, dir, Config{Workers: 1, DefaultScale: 1})
	j1, err := svc1.Submit(Request{Spec: spec})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if v := waitTerminal(t, j1); v.State != StateDone {
		t.Fatalf("run finished %s (%s)", v.State, v.Error)
	}
	want := artifactBytes(t, j1.artifactRef())
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc1.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	f, err := os.OpenFile(filepath.Join(dir, "journal.wal"), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatalf("open journal: %v", err)
	}
	if _, err := f.Write([]byte("\x99torn write garbage")); err != nil {
		t.Fatalf("corrupt journal: %v", err)
	}
	f.Close()

	svc2 := openDurable(t, dir, Config{Workers: 1, DefaultScale: 1})
	if got := svc2.met.walTruncations.Load(); got != 1 {
		t.Fatalf("walTruncations = %d, want 1", got)
	}
	j2, err := svc2.Submit(Request{Spec: spec})
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if v := j2.View(); v.State != StateDone || !v.CacheHit {
		t.Fatalf("after torn-tail recovery: state=%s cacheHit=%v, want done cache hit", v.State, v.CacheHit)
	}
	if got := artifactBytes(t, j2.artifactRef()); got != want {
		t.Fatalf("artifact differs after torn-tail recovery")
	}
}

// TestIdempotentResubmit: a client retry flagged Idempotent attaches to the
// live job with the same content key instead of forking a duplicate run.
func TestIdempotentResubmit(t *testing.T) {
	svc := New(Config{Workers: 1, DefaultScale: 1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = svc.Shutdown(ctx)
	}()

	// First submission occupies the single worker so the second lands while
	// the first is live.
	j1, err := svc.Submit(Request{Spec: slowSpec("idem"), Scale: 0.05})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	j2, err := svc.Submit(Request{Spec: slowSpec("idem"), Scale: 0.05, Idempotent: true})
	if err != nil {
		t.Fatalf("idempotent resubmit: %v", err)
	}
	if j2.ID != j1.ID {
		t.Fatalf("idempotent resubmit forked job %s, want %s", j2.ID, j1.ID)
	}
	if got := svc.met.deduped.Load(); got != 1 {
		t.Fatalf("deduped counter = %d, want 1", got)
	}
	// Without the flag, a duplicate is a fresh job (it may still cache-hit
	// later, but identity is new).
	j3, err := svc.Submit(Request{Spec: slowSpec("idem"), Scale: 0.05})
	if err != nil {
		t.Fatalf("plain resubmit: %v", err)
	}
	if j3.ID == j1.ID {
		t.Fatalf("non-idempotent resubmit attached to the live job")
	}
	if err := svc.Cancel(j1.ID); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	waitTerminal(t, j1)
	// A canceled job does not answer idempotent retries: the retry re-runs.
	j4, err := svc.Submit(Request{Spec: slowSpec("idem"), Scale: 0.05, Idempotent: true})
	if err != nil {
		t.Fatalf("post-cancel idempotent submit: %v", err)
	}
	if j4.ID == j1.ID {
		t.Fatalf("idempotent retry attached to a canceled job")
	}
	_ = svc.Cancel(j3.ID)
	_ = svc.Cancel(j4.ID)
	waitTerminal(t, j3)
	waitTerminal(t, j4)
}

// TestWorkerPanicContained is the panic-containment satellite: an injected
// panic inside job execution fails that job with the panic message, counts in
// dimd_job_panics_total, and leaves the worker pool serving.
func TestWorkerPanicContained(t *testing.T) {
	if err := faultinject.Configure(faultinject.WorkerPanic); err != nil {
		t.Fatalf("configure: %v", err)
	}
	defer faultinject.Reset()

	svc := New(Config{Workers: 1, DefaultScale: 1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = svc.Shutdown(ctx)
	}()

	j1, err := svc.Submit(Request{Spec: tinySpec("panic-victim", 1, 31)})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	v := waitTerminal(t, j1)
	if v.State != StateFailed || !strings.Contains(v.Error, "worker panic") {
		t.Fatalf("panicked job: state=%s err=%q, want failed with worker panic", v.State, v.Error)
	}
	if got := svc.met.panics.Load(); got != 1 {
		t.Fatalf("panics counter = %d, want 1", got)
	}
	// The fault is one-shot; the same worker must still be alive to run this.
	j2, err := svc.Submit(Request{Spec: tinySpec("panic-survivor", 1, 32)})
	if err != nil {
		t.Fatalf("post-panic submit: %v", err)
	}
	if v := waitTerminal(t, j2); v.State != StateDone {
		t.Fatalf("worker did not survive the panic: %s (%s)", v.State, v.Error)
	}
}

// TestSchedCheckpointsWrittenAndCleared: a durable daemon checkpoints
// scheduled runs at the configured cadence and clears the resume token once
// the job is terminal.
func TestSchedCheckpointsWrittenAndCleared(t *testing.T) {
	dir := t.TempDir()
	svc := openDurable(t, dir, Config{Workers: 1, DefaultScale: 1, CheckpointEvery: 1})
	j, err := svc.Submit(Request{Spec: schedSpec("cp-cadence")})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if v := waitTerminal(t, j); v.State != StateDone {
		t.Fatalf("sched run finished %s (%s)", v.State, v.Error)
	}
	if got := svc.met.checkpoints.Load(); got == 0 {
		t.Fatalf("no checkpoints written for a sched run at cadence 1")
	}
	ents, err := os.ReadDir(filepath.Join(dir, "checkpoints"))
	if err != nil {
		t.Fatalf("read checkpoints dir: %v", err)
	}
	if len(ents) != 0 {
		t.Fatalf("terminal job left %d checkpoint files behind", len(ents))
	}
}

// TestRecoveryResumesSchedFromCheckpoint: a sched job interrupted mid-run
// resumes from its persisted round-barrier checkpoint — verified replay —
// and the result is byte-identical to an uninterrupted run.
func TestRecoveryResumesSchedFromCheckpoint(t *testing.T) {
	spec := schedSpec("cp-resume")
	req := Request{Spec: spec}

	// Uninterrupted reference.
	ref := New(Config{Workers: 1, DefaultScale: 1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = ref.Shutdown(ctx)
	}()
	rj, err := ref.Submit(req)
	if err != nil {
		t.Fatalf("reference submit: %v", err)
	}
	if v := waitTerminal(t, rj); v.State != StateDone {
		t.Fatalf("reference finished %s (%s)", v.State, v.Error)
	}
	want := artifactBytes(t, rj.artifactRef())
	r, err := ref.resolve(req)
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}

	// "Crash" a durable run mid-flight: run it to completion once with
	// cadence 1 to harvest a real checkpoint, then build a journal that says
	// the job started but never finished, with that checkpoint on disk.
	dir := t.TempDir()
	harvest := openDurable(t, t.TempDir(), Config{Workers: 1, DefaultScale: 1, CheckpointEvery: 1})
	var lastCP *JobCheckpoint
	hj, err := harvest.Submit(req)
	if err != nil {
		t.Fatalf("harvest submit: %v", err)
	}
	// Steal the last checkpoint before terminal cleanup removes it by
	// polling the file while the job runs.
	cpPath := filepath.Join(harvest.cfg.DataDir, "checkpoints", hj.ID+".json")
	for !hj.Terminal() {
		if raw, err := os.ReadFile(cpPath); err == nil {
			var cp JobCheckpoint
			if json.Unmarshal(raw, &cp) == nil && cp.Sched != nil {
				lastCP = &cp
			}
		}
		time.Sleep(time.Millisecond)
	}
	if v := hj.View(); v.State != StateDone {
		t.Fatalf("harvest run finished %s (%s)", v.State, v.Error)
	}
	if lastCP == nil {
		t.Skip("run finished before a checkpoint could be observed")
	}

	st, _, err := openStore(dir)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	now := time.Now()
	for _, rec := range []journalRecord{
		{Op: "submitted", ID: "job-000001", At: now, Key: r.key, Kind: r.kind, JobName: "cp-resume", Policy: r.policy, Scale: r.scale, Spec: spec},
		{Op: "started", ID: "job-000001", At: now},
	} {
		if err := st.append(rec, true); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := st.writeCheckpoint("job-000001", lastCP); err != nil {
		t.Fatalf("write checkpoint: %v", err)
	}
	if err := st.close(); err != nil {
		t.Fatalf("close store: %v", err)
	}

	svc := openDurable(t, dir, Config{Workers: 1, DefaultScale: 1, CheckpointEvery: 1})
	j, err := svc.Job("job-000001")
	if err != nil {
		t.Fatalf("recovered job not tracked: %v", err)
	}
	if v := waitTerminal(t, j); v.State != StateDone {
		t.Fatalf("resumed job finished %s (%s)", v.State, v.Error)
	}
	if got := svc.met.resumes.Load(); got != 1 {
		t.Fatalf("resumes counter = %d, want 1", got)
	}
	if got := artifactBytes(t, j.artifactRef()); got != want {
		t.Fatalf("resumed sched run diverged from uninterrupted reference")
	}
}

// TestRecoveryRejectsCorruptCheckpoint: a tampered checkpoint fails replay
// verification; the daemon counts the reject, drops the checkpoint, and the
// rerun-from-scratch still produces the reference bytes.
func TestRecoveryRejectsCorruptCheckpoint(t *testing.T) {
	spec := schedSpec("cp-tamper")
	req := Request{Spec: spec}

	ref := New(Config{Workers: 1, DefaultScale: 1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = ref.Shutdown(ctx)
	}()
	rj, err := ref.Submit(req)
	if err != nil {
		t.Fatalf("reference submit: %v", err)
	}
	if v := waitTerminal(t, rj); v.State != StateDone {
		t.Fatalf("reference finished %s (%s)", v.State, v.Error)
	}
	want := artifactBytes(t, rj.artifactRef())
	r, err := ref.resolve(req)
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}

	dir := t.TempDir()
	st, _, err := openStore(dir)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	now := time.Now()
	for _, rec := range []journalRecord{
		{Op: "submitted", ID: "job-000001", At: now, Key: r.key, Kind: r.kind, JobName: "cp-tamper", Policy: r.policy, Scale: r.scale, Spec: spec},
		{Op: "started", ID: "job-000001", At: now},
	} {
		if err := st.append(rec, true); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	// A checkpoint whose digest matches nothing: replay verification at
	// round 1 must reject it.
	tampered := &JobCheckpoint{Kind: KindSched, Sched: &fleetsched.Checkpoint{Round: 1, Digest: "bogus"}}
	if err := st.writeCheckpoint("job-000001", tampered); err != nil {
		t.Fatalf("write checkpoint: %v", err)
	}
	if err := st.close(); err != nil {
		t.Fatalf("close store: %v", err)
	}

	svc := openDurable(t, dir, Config{Workers: 1, DefaultScale: 1, CheckpointEvery: 1})
	j, err := svc.Job("job-000001")
	if err != nil {
		t.Fatalf("recovered job not tracked: %v", err)
	}
	if v := waitTerminal(t, j); v.State != StateDone {
		t.Fatalf("job with corrupt checkpoint finished %s (%s), want done via scratch rerun", v.State, v.Error)
	}
	if got := svc.met.resumeRejected.Load(); got != 1 {
		t.Fatalf("resumeRejected counter = %d, want 1", got)
	}
	if got := artifactBytes(t, j.artifactRef()); got != want {
		t.Fatalf("scratch rerun after checkpoint reject diverged from reference")
	}
}
