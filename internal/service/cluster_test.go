package service

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/faultinject"
	"repro/internal/scenario"
)

// newWorkerService boots a plain daemon behind httptest — any dimd can serve
// shards; worker mode is just "someone else's coordinator points at you".
func newWorkerService(t *testing.T) (*Service, *httptest.Server) {
	t.Helper()
	svc := New(Config{Workers: 2, DefaultScale: 1})
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = svc.Shutdown(ctx)
		srv.Close()
	})
	return svc, srv
}

// newCoordinatorService boots a coordinator daemon over the given worker URLs
// with chaos-friendly (fast) lease timing.
func newCoordinatorService(t *testing.T, cfg Config, workers ...string) (*Service, *Client) {
	t.Helper()
	cfg.Cluster = ClusterConfig{
		Workers:        workers,
		LeaseTTL:       300 * time.Millisecond,
		HeartbeatEvery: 50 * time.Millisecond,
		UnhealthyAfter: 2,
		// Coarse shards (2 per worker) so a mid-stream cut always leaves
		// undelivered machines behind — the redispatch tests depend on the
		// faulted shard not being a single machine.
		ShardsPerWorker: 2,
	}
	return newTestService(t, cfg)
}

// singleNodeReference computes the artifact bytes a single-node run of the
// spec produces — the ground truth every clustered run must match exactly.
func singleNodeReference(t *testing.T, raw []byte, scale float64) (string, map[string]string) {
	t.Helper()
	spec, err := scenario.Decode(raw)
	if err != nil {
		t.Fatalf("decoding reference spec: %v", err)
	}
	res, err := scenario.RunOpts(spec, scale, scenario.RunOptions{})
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	files := map[string]string{}
	for _, f := range scenario.RenderResult(res) {
		files[f.Name] = string(f.Content)
	}
	return res.String(), files
}

// checkByteIdentical fetches the finished job's output and files through the
// API and diffs them against the single-node reference.
func checkByteIdentical(t *testing.T, c *Client, id string, wantOut string, wantFiles map[string]string) {
	t.Helper()
	out, err := c.Output(id)
	if err != nil {
		t.Fatalf("output: %v", err)
	}
	if out != wantOut {
		t.Errorf("clustered output diverged from single-node reference:\n got %d bytes\nwant %d bytes", len(out), len(wantOut))
	}
	names, err := c.Files(id)
	if err != nil {
		t.Fatalf("files: %v", err)
	}
	if len(names) != len(wantFiles) {
		t.Fatalf("file list %v, want %d files", names, len(wantFiles))
	}
	for _, name := range names {
		data, err := c.File(id, name)
		if err != nil {
			t.Fatalf("file %s: %v", name, err)
		}
		if string(data) != wantFiles[name] {
			t.Errorf("file %s diverged from single-node reference (%d vs %d bytes)", name, len(data), len(wantFiles[name]))
		}
	}
}

func TestClusterArtifactByteIdentical(t *testing.T) {
	w1, s1 := newWorkerService(t)
	w2, s2 := newWorkerService(t)
	svc, c := newCoordinatorService(t, Config{Workers: 2, DefaultScale: 1}, s1.URL, s2.URL)

	raw := tinySpec("clu-identical", 11, 7)
	wantOut, wantFiles := singleNodeReference(t, raw, 1)

	v, err := c.Submit(Request{Spec: raw})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	fin, err := c.Wait(context.Background(), v.ID)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if fin.State != StateDone {
		t.Fatalf("job state %s (%s), want done", fin.State, fin.Error)
	}
	if fin.Degraded {
		t.Error("healthy-worker run reported degraded")
	}
	checkByteIdentical(t, c, v.ID, wantOut, wantFiles)

	if served := w1.met.cluServed.Load() + w2.met.cluServed.Load(); served == 0 {
		t.Error("no worker served a shard; the fleet ran on the coordinator")
	}
	if got := svc.met.cluDispatched.Load(); got == 0 {
		t.Error("coordinator dispatched no shards")
	}

	// Cluster status over the wire: both workers enabled and healthy.
	st, err := c.ClusterStatus()
	if err != nil {
		t.Fatalf("cluster status: %v", err)
	}
	if !st.Enabled || st.Workers != 2 || st.Healthy != 2 || len(st.Detail) != 2 {
		t.Errorf("cluster status %+v, want enabled with 2/2 healthy", st)
	}

	// Workers are not coordinators: their status says disabled.
	wst, err := NewClient(s1.URL).ClusterStatus()
	if err != nil {
		t.Fatalf("worker cluster status: %v", err)
	}
	if wst.Enabled {
		t.Error("plain worker claims coordinator mode")
	}
}

func TestClusterRedispatchOnPartialStream(t *testing.T) {
	_, s1 := newWorkerService(t)
	_, s2 := newWorkerService(t)
	svc, c := newCoordinatorService(t, Config{Workers: 1, DefaultScale: 1}, s1.URL, s2.URL)

	// First shard stream is cut after one machine, without a terminal line.
	// The coordinator must re-dispatch the remainder and still produce the
	// single-node bytes.
	if err := faultinject.Configure(faultinject.ClusterResultPartial); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Reset()

	raw := tinySpec("clu-partial", 9, 21)
	wantOut, wantFiles := singleNodeReference(t, raw, 1)

	v, err := c.Submit(Request{Spec: raw})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	fin, err := c.Wait(context.Background(), v.ID)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if fin.State != StateDone {
		t.Fatalf("job state %s (%s), want done", fin.State, fin.Error)
	}
	if fin.Degraded {
		t.Error("partial-stream recovery should stay remote, not degrade")
	}
	if svc.met.cluRetries.Load() == 0 {
		t.Error("no shard retry recorded after a truncated stream")
	}
	checkByteIdenticalInProc(t, svc, v.ID, wantOut, wantFiles)
	checkByteIdentical(t, c, v.ID, wantOut, wantFiles)
}

func TestClusterLeaseExpiryOnStall(t *testing.T) {
	_, s1 := newWorkerService(t)
	_, s2 := newWorkerService(t)
	svc, c := newCoordinatorService(t, Config{Workers: 1, DefaultScale: 1}, s1.URL, s2.URL)

	// One shard request freezes behind a live connection: no bytes, no error.
	// Only the lease TTL can unwedge it.
	if err := faultinject.Configure(faultinject.ClusterShardStall); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Reset()

	raw := tinySpec("clu-stall", 9, 33)
	wantOut, wantFiles := singleNodeReference(t, raw, 1)

	v, err := c.Submit(Request{Spec: raw})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	fin, err := c.Wait(context.Background(), v.ID)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if fin.State != StateDone {
		t.Fatalf("job state %s (%s), want done", fin.State, fin.Error)
	}
	if svc.met.cluExpirations.Load() == 0 {
		t.Error("stalled shard did not register a lease expiration")
	}
	if svc.met.cluLeaseAge.Count() == 0 {
		t.Error("lease-age histogram recorded no revocation")
	}
	checkByteIdentical(t, c, v.ID, wantOut, wantFiles)
}

func TestClusterDegradeToLocalWhenAllWorkersDead(t *testing.T) {
	// Ports from TEST-NET that nothing listens on: every dispatch and every
	// heartbeat fails at connect.
	svc, c := newCoordinatorService(t, Config{Workers: 1, DefaultScale: 1},
		"http://127.0.0.1:1", "http://127.0.0.1:2")

	raw := tinySpec("clu-degrade", 7, 45)
	wantOut, wantFiles := singleNodeReference(t, raw, 1)

	v, err := c.Submit(Request{Spec: raw})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	fin, err := c.Wait(context.Background(), v.ID)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if fin.State != StateDone {
		t.Fatalf("job state %s (%s), want done", fin.State, fin.Error)
	}
	if !fin.Degraded {
		t.Error("all-workers-dead run did not report degraded")
	}
	if svc.met.cluDegraded.Load() == 0 || svc.met.cluLocal.Load() == 0 {
		t.Errorf("degraded=%d local=%d; want both nonzero",
			svc.met.cluDegraded.Load(), svc.met.cluLocal.Load())
	}
	checkByteIdentical(t, c, v.ID, wantOut, wantFiles)

	// The degradation is visible on the stream and in /metrics, not just the
	// status document.
	sawDegradedEvent := false
	if err := c.Stream(context.Background(), v.ID, func(e Event) error {
		if e.Type == "degraded" {
			sawDegradedEvent = true
		}
		return nil
	}); err != nil {
		t.Fatalf("stream: %v", err)
	}
	if !sawDegradedEvent {
		t.Error("stream carried no degraded event")
	}
	text, err := c.Metrics()
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if !strings.Contains(text, "dimd_cluster_jobs_degraded_total 1") {
		t.Error("metrics do not show dimd_cluster_jobs_degraded_total 1")
	}

	// Degrade-to-local auto-dumps an incident with the flight recorder.
	sums := svc.inc.summaries()
	if len(sums) != 1 || sums[0].Reason != "degraded" || sums[0].Job != v.ID {
		t.Errorf("incident list %+v, want one degraded dump for %s", sums, v.ID)
	}

	// The heartbeat monitor needs a couple of probe rounds to mark the dead
	// workers unhealthy; the job itself finished faster than that.
	deadline := time.Now().Add(10 * time.Second)
	for svc.clu.Monitor().HealthyCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("dead workers never marked unhealthy")
		}
		time.Sleep(20 * time.Millisecond)
	}
	text, err = c.Metrics()
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if !strings.Contains(text, `dimd_cluster_worker_healthy{worker="http://127.0.0.1:1"} 0`) {
		t.Error("metrics do not show the dead worker's labeled health gauge")
	}
	if !strings.Contains(text, "dimd_cluster_workers_healthy 0") {
		t.Error("metrics do not show zero healthy workers")
	}
}

func TestClusterDegradedFlagSurvivesRestart(t *testing.T) {
	dir, err := os.MkdirTemp("", "dimd-clu-restart")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })

	cfg := Config{Workers: 1, DefaultScale: 1, DataDir: dir, Cluster: ClusterConfig{
		Workers:        []string{"http://127.0.0.1:1"},
		LeaseTTL:       200 * time.Millisecond,
		HeartbeatEvery: 50 * time.Millisecond,
	}}
	svc, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	j, err := svc.Submit(Request{Spec: tinySpec("clu-restart", 4, 50)})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for !j.Terminal() {
		if time.Now().After(deadline) {
			t.Fatal("job did not finish")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if v := j.View(); v.State != StateDone || !v.Degraded {
		t.Fatalf("pre-restart view %+v, want done+degraded", v)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// Restart over the same journal, this time single-node: the degraded flag
	// must come back from the "done" record, not from live cluster state.
	svc2, err := Open(Config{Workers: 1, DefaultScale: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = svc2.Shutdown(ctx)
	}()
	j2, err := svc2.Job(j.ID)
	if err != nil {
		t.Fatalf("restored job: %v", err)
	}
	if v := j2.View(); v.State != StateDone || !v.Degraded {
		t.Errorf("post-restart view state=%s degraded=%v, want done+degraded", v.State, v.Degraded)
	}
}

// checkByteIdenticalInProc compares the in-memory artifact (not the HTTP
// view) against the reference — catches divergence before serialization.
func checkByteIdenticalInProc(t *testing.T, svc *Service, id string, wantOut string, wantFiles map[string]string) {
	t.Helper()
	j, err := svc.Job(id)
	if err != nil {
		t.Fatalf("job: %v", err)
	}
	art := j.artifactRef()
	if art == nil {
		t.Fatal("no artifact")
	}
	if art.Rendered != wantOut {
		t.Error("in-memory rendered output diverged from single-node reference")
	}
	if len(art.Files) != len(wantFiles) {
		t.Fatalf("artifact has %d files, want %d", len(art.Files), len(wantFiles))
	}
	for _, f := range art.Files {
		if string(f.Content) != wantFiles[f.Name] {
			t.Errorf("artifact file %s diverged", f.Name)
		}
	}
}

func TestShardEndpointValidation(t *testing.T) {
	_, srv := newWorkerService(t)
	c := NewClient(srv.URL)

	// Scale outside the admission bound is refused before any simulation.
	_, err := c.ShardStream(context.Background(), ShardRequest{
		Spec:  tinySpec("clu-bad-scale", 2, 1),
		Scale: MaxScale + 1,
		Shard: cluster.Shard{ID: 0, From: 0, To: 2},
	}, func(scenario.MachineResult) {})
	if se, ok := err.(*StatusError); !ok || se.Code != 400 {
		t.Errorf("oversized scale: err %v, want HTTP 400", err)
	}

	// A scheduled spec cannot shard (cross-machine coupling); the engine error
	// rides the stream as an error line.
	_, err = c.ShardStream(context.Background(), ShardRequest{
		Spec:  schedSpec("clu-sched"),
		Scale: 1,
		Shard: cluster.Shard{ID: 0, From: 0, To: 2},
	}, func(scenario.MachineResult) {})
	if err == nil || !strings.Contains(err.Error(), "cannot shard") {
		t.Errorf("scheduled spec: err %v, want a cannot-shard rejection", err)
	}

	// Integrator pinning: a coordinator configured differently is refused
	// with 409 rather than silently computing different bytes.
	_, err = c.ShardStream(context.Background(), ShardRequest{
		Spec:       tinySpec("clu-integ", 2, 1),
		Scale:      1,
		Shard:      cluster.Shard{ID: 0, From: 0, To: 2},
		Integrator: "exact",
	}, func(scenario.MachineResult) {})
	if se, ok := err.(*StatusError); !ok || se.Code != 409 {
		t.Errorf("integrator mismatch: err %v, want HTTP 409", err)
	}
}

// TestClusterStitchedTrace is the cluster-tracing acceptance check: a sharded
// job's /debug/trace export is one valid Chrome trace holding the
// coordinator's lifecycle spans (pid 1) AND at least one per-worker shard
// span imported under a worker pid (>= 2).
func TestClusterStitchedTrace(t *testing.T) {
	_, s1 := newWorkerService(t)
	_, s2 := newWorkerService(t)
	_, c := newCoordinatorService(t, Config{Workers: 2, DefaultScale: 1}, s1.URL, s2.URL)

	v, err := c.Submit(Request{Spec: tinySpec("clu-trace", 10, 61)})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if fin, err := c.Wait(context.Background(), v.ID); err != nil || fin.State != StateDone {
		t.Fatalf("wait: %v (state %s)", err, fin.State)
	}

	raw, err := c.Trace(v.ID)
	if err != nil {
		t.Fatalf("trace: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			PID  int     `json:"pid"`
			TS   float64 `json:"ts"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace export is not valid Chrome trace JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit %q, want ms", doc.DisplayTimeUnit)
	}
	lifecycle := map[string]bool{}
	shardSpans := 0
	workerPIDs := map[int]bool{}
	for _, e := range doc.TraceEvents {
		if e.TS < 0 {
			t.Errorf("event %q has negative timestamp %v", e.Name, e.TS)
		}
		if e.Cat == "lifecycle" && e.PID == 1 {
			lifecycle[e.Name] = true
		}
		if e.Cat == "shard" && e.PID >= 2 && e.Ph == "X" {
			shardSpans++
			workerPIDs[e.PID] = true
		}
	}
	for _, want := range []string{"submit", "queue", "run", "cluster", "finalize"} {
		if !lifecycle[want] {
			t.Errorf("stitched trace is missing coordinator lifecycle span %q", want)
		}
	}
	if shardSpans == 0 {
		t.Fatal("stitched trace has no per-worker shard spans")
	}
	for pid := range workerPIDs {
		if pid != 2 && pid != 3 {
			t.Errorf("shard span under pid %d, want the workers' pids 2/3", pid)
		}
	}
}

// TestMergeHeatFrames unit-tests the coordinator-side fold: worker rows keyed
// "<job>/s<shard>" strip their suffix and merge cell-wise max into the local
// job row; summaries recompute over the merged cells.
func TestMergeHeatFrames(t *testing.T) {
	local := HeatFrame{Jobs: []JobHeatView{
		{Job: "job-0001", Machines: 4, Cells: []float64{50, 0, 0, 40}},
	}}
	w1 := HeatFrame{Jobs: []JobHeatView{
		{Job: "job-0001/s0", Machines: 2, Cells: []float64{80, 60}, VirtualS: 1.5},
	}}
	w2 := HeatFrame{Jobs: []JobHeatView{
		{Job: "job-0001/s1", Machines: 4, Cells: []float64{0, 0, 70, 30}},
		{Job: "job-0009/s0", Machines: 1, Cells: []float64{95}},
	}}

	out := mergeHeatFrames(local, w1, w2)
	if len(out.Jobs) != 2 {
		t.Fatalf("merged frame has %d rows, want 2: %+v", len(out.Jobs), out.Jobs)
	}
	j := out.Jobs[0]
	if j.Job != "job-0001" {
		t.Fatalf("first merged row is %q, want job-0001", j.Job)
	}
	want := []float64{80, 60, 70, 40}
	if len(j.Cells) != 4 {
		t.Fatalf("merged cells %v, want 4 cells", j.Cells)
	}
	for i, c := range j.Cells {
		if c != want[i] {
			t.Errorf("cell %d = %v, want %v (cell-wise max)", i, c, want[i])
		}
	}
	if j.MaxC != 80 || j.HottestMachine != 0 {
		t.Errorf("summary MaxC=%v hottest=%d, want 80 at cell 0", j.MaxC, j.HottestMachine)
	}
	if j.VirtualS != 1.5 {
		t.Errorf("VirtualS %v, want the workers' high-water 1.5", j.VirtualS)
	}
	// A worker row with no local counterpart passes through under its
	// stripped name.
	if out.Jobs[1].Job != "job-0009" || out.Jobs[1].MaxC != 95 {
		t.Errorf("orphan worker row %+v, want job-0009 at 95C", out.Jobs[1])
	}
}

// TestClusterHeatMergedOverWire checks the endpoint half: while a sharded job
// runs, the coordinator's ?once=1 heat frame folds the workers' live shard
// rows into the job's row.
func TestClusterHeatMergedOverWire(t *testing.T) {
	_, s1 := newWorkerService(t)
	_, s2 := newWorkerService(t)
	_, c := newCoordinatorService(t, Config{Workers: 2, DefaultScale: 1}, s1.URL, s2.URL)

	// Long enough to observe mid-run: 8 machines x hundreds of virtual
	// seconds with the exact integrator.
	v, err := c.Submit(Request{Spec: slowSpec("clu-heat")})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer func() {
		_, _ = c.Cancel(v.ID)
		_, _ = c.Wait(context.Background(), v.ID)
	}()

	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		f, err := c.Heat()
		if err != nil {
			t.Fatalf("heat: %v", err)
		}
		for _, j := range f.Jobs {
			if strings.Contains(j.Job, "/s") {
				t.Fatalf("merged frame leaked a raw worker row: %q", j.Job)
			}
			if j.Job == v.ID && j.MaxC > 0 && len(j.Cells) > 1 {
				return // workers' telemetry visible through the coordinator
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("coordinator heat frame never showed the workers' shard telemetry")
}
