package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/export"
	"repro/internal/faultinject"
	"repro/internal/fleetsched"
	"repro/internal/scenario"
	"repro/internal/wal"
)

// store is dimd's durable state under -data-dir:
//
//	journal.wal          append-only job journal (see journalRecord)
//	artifacts/<key>.json completed artifacts, content-addressed by work key
//	checkpoints/<id>.json in-flight job checkpoints, keyed by job ID
//
// The journal is the source of truth for *what* was asked and *whether* it
// finished; artifacts hold the (re-creatable) outputs; checkpoints hold the
// (re-creatable) resume tokens. Recovery therefore never trusts an artifact
// or checkpoint the journal does not vouch for, and losing either merely
// costs recomputation, never correctness.
//
// Write ordering is the crash-safety invariant: an artifact file is fully
// durable (written to a temp file, fsynced, atomically renamed) before the
// "done" record that references it is appended and fsynced. A crash between
// the two leaves an orphaned artifact and an incomplete journal entry — the
// job replays as in-flight and re-derives the identical bytes. The reverse
// order could acknowledge a result that no longer exists.
type store struct {
	dir string
	log *wal.Log
}

// journalRecord is one journal entry. "submitted" carries the full request
// (enough to re-resolve and re-run the job after a crash); the rest are state
// transitions referencing the job ID.
type journalRecord struct {
	// Op is submitted | started | done | failed | canceled.
	Op string    `json:"op"`
	ID string    `json:"id"`
	At time.Time `json:"at"`

	// Submission fields (op "submitted"). Name/Policy/Scale/Spec are the
	// client's request verbatim — recovery re-resolves from them and checks
	// the recomputed content key against Key. JobName is the resolved
	// display name (an inline spec's scenario name), kept separately so the
	// raw request stays reconstructible.
	Key      string          `json:"key,omitempty"`
	Kind     string          `json:"kind,omitempty"`
	Name     string          `json:"name,omitempty"`
	JobName  string          `json:"job_name,omitempty"`
	Policy   string          `json:"policy,omitempty"`
	Scale    float64         `json:"scale,omitempty"`
	Spec     json.RawMessage `json:"spec,omitempty"`
	CacheHit bool            `json:"cache_hit,omitempty"`

	// Error carries the failure reason (op "failed"/"canceled").
	Error string `json:"error,omitempty"`

	// Degraded marks a "done" record whose clustered run fell back to local
	// execution for one or more shards, so a restarted daemon restores the
	// job's degraded flag along with its artifact.
	Degraded bool `json:"degraded,omitempty"`
}

// JobCheckpoint is the on-disk resume token for one in-flight job, shaped by
// kind: scenario jobs accumulate completed per-machine results (independent
// machines — finished ones are simply not re-simulated); sched jobs carry the
// engine's round-barrier checkpoint (resume = verified deterministic replay).
// Experiment and sched-compare jobs carry nothing and re-run from scratch —
// they are deterministic, so the recomputed bytes are identical; only the
// spent CPU is lost.
type JobCheckpoint struct {
	Kind     string                   `json:"kind"`
	Machines []scenario.MachineResult `json:"machines,omitempty"`
	Sched    *fleetsched.Checkpoint   `json:"sched,omitempty"`
}

// storeReplay is what openStore recovered from the data directory.
type storeReplay struct {
	records []journalRecord
	stats   wal.ReplayStats
	// skipped counts CRC-valid records that failed JSON decoding — possible
	// only via external tampering, and skipped rather than fatal: recovery
	// must never be the thing that keeps the daemon down.
	skipped int
}

// openStore opens (creating if needed) the data directory and replays the
// journal. A torn journal tail is truncated, a corrupt record ends replay at
// that point; neither is an error.
func openStore(dir string) (*store, storeReplay, error) {
	var rep storeReplay
	for _, sub := range []string{"", "artifacts", "checkpoints"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, rep, fmt.Errorf("service: creating data dir: %w", err)
		}
	}
	log, stats, err := wal.Open(filepath.Join(dir, "journal.wal"), func(payload []byte) error {
		var rec journalRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			rep.skipped++
			return nil
		}
		rep.records = append(rep.records, rec)
		return nil
	})
	if err != nil {
		return nil, rep, fmt.Errorf("service: opening journal: %w", err)
	}
	rep.stats = stats
	return &store{dir: dir, log: log}, rep, nil
}

// append journals one record. Durability is the caller's choice: pass
// sync=true when the record acknowledges something to a client (a submission
// accepted, a result completed), false for purely informational transitions
// ("started") that recovery does not depend on. Concurrent synced appends
// group-commit naturally: records land in the file under the log's lock, and
// one fsync covers every record appended before it (wal.Sync no-ops when
// another caller's fsync already made the log clean).
func (st *store) append(rec journalRecord, sync bool) error {
	raw, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("service: marshaling journal record: %w", err)
	}
	if err := st.log.Append(raw); err != nil {
		return err
	}
	if !sync {
		return nil
	}
	return st.log.Sync()
}

func (st *store) artifactPath(key string) string {
	return filepath.Join(st.dir, "artifacts", key+".json")
}

func (st *store) checkpointPath(jobID string) string {
	return filepath.Join(st.dir, "checkpoints", jobID+".json")
}

// persistedArtifact is Artifact's on-disk form. Strings and float64s
// round-trip JSON exactly, so a loaded artifact is byte-identical to the one
// the engine produced.
type persistedArtifact struct {
	Rendered   string          `json:"rendered"`
	Files      []persistedFile `json:"files,omitempty"`
	SimSeconds float64         `json:"sim_seconds,omitempty"`
}

type persistedFile struct {
	Name    string `json:"name"`
	Content string `json:"content"`
}

// writeArtifact durably stores a completed artifact under its work key.
func (st *store) writeArtifact(key string, art *Artifact) error {
	p := persistedArtifact{Rendered: art.Rendered, SimSeconds: art.SimSeconds}
	for _, f := range art.Files {
		p.Files = append(p.Files, persistedFile{Name: f.Name, Content: f.Content})
	}
	raw, err := json.Marshal(p)
	if err != nil {
		return fmt.Errorf("service: marshaling artifact: %w", err)
	}
	return atomicWrite(st.artifactPath(key), raw)
}

// loadArtifact reads a stored artifact back; ok is false when absent or
// unreadable (recovery treats that as "recompute", never as fatal).
func (st *store) loadArtifact(key string) (*Artifact, bool) {
	raw, err := os.ReadFile(st.artifactPath(key))
	if err != nil {
		return nil, false
	}
	var p persistedArtifact
	if err := json.Unmarshal(raw, &p); err != nil {
		return nil, false
	}
	art := &Artifact{Rendered: p.Rendered, SimSeconds: p.SimSeconds}
	for _, f := range p.Files {
		art.Files = append(art.Files, export.File{Name: f.Name, Content: f.Content})
	}
	return art, true
}

// writeCheckpoint durably stores a job's resume token.
func (st *store) writeCheckpoint(jobID string, cp *JobCheckpoint) error {
	raw, err := json.Marshal(cp)
	if err != nil {
		return fmt.Errorf("service: marshaling checkpoint: %w", err)
	}
	return atomicWrite(st.checkpointPath(jobID), raw)
}

// loadCheckpoint reads a job's resume token; ok is false when absent or
// unreadable (the job then re-runs from scratch).
func (st *store) loadCheckpoint(jobID string) (*JobCheckpoint, bool) {
	raw, err := os.ReadFile(st.checkpointPath(jobID))
	if err != nil {
		return nil, false
	}
	var cp JobCheckpoint
	if err := json.Unmarshal(raw, &cp); err != nil {
		return nil, false
	}
	return &cp, true
}

// removeCheckpoint drops a terminal job's resume token. Best-effort: a
// leftover checkpoint is ignored at recovery (the journal says the job is
// terminal).
func (st *store) removeCheckpoint(jobID string) {
	_ = os.Remove(st.checkpointPath(jobID))
}

func (st *store) close() error {
	return st.log.Close()
}

// atomicWrite lands data at path via temp file + fsync + rename, so readers
// (including recovery after a mid-write crash) observe either the old
// complete file or the new complete file, never a torn hybrid. The injected
// crash point sits exactly in the vulnerable window — after the temp bytes
// are durable, before the rename commits them — which the chaos suite uses
// to prove the "no torn files" claim.
func atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	faultinject.Crash(faultinject.CheckpointKill)
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
