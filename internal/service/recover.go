package service

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/obs"
)

// recoveredJob is one job's state folded from its journal records.
type recoveredJob struct {
	rec      journalRecord // the "submitted" record (request + identity)
	state    string
	errMsg   string
	degraded bool
	started  time.Time
	finished time.Time
}

// recoverFromJournal rebuilds the daemon's job table from a replayed journal.
// It runs during Open, before the worker pool starts, so it owns every
// structure it touches.
//
// The fold is by last-writer-wins over each job's records, then:
//
//   - done jobs whose artifact file is present restore as terminal cache
//     entries — the result cache is warm across the restart, and an identical
//     resubmission hits without simulating;
//   - failed/canceled jobs restore as terminal records;
//   - everything else — queued, running, or done-with-a-lost-artifact — is
//     re-resolved from its submitted record and re-enqueued, resuming from
//     its persisted checkpoint when one survives. Determinism makes this
//     sound: the rerun produces byte-identical output, so "lost the race to
//     finish before the crash" degrades to spent CPU, never to divergent
//     results.
//
// Re-resolution recomputes the content key and compares it to the journaled
// one; a mismatch means the daemon restarted into a different world (catalog
// edit, integrator override change) and the job fails loudly instead of
// silently computing something else under the old name.
func (s *Service) recoverFromJournal(rep storeReplay) {
	byID := map[string]*recoveredJob{}
	var order []string
	for _, rec := range rep.records {
		switch rec.Op {
		case "submitted":
			if _, ok := byID[rec.ID]; ok {
				continue // duplicate submission record; first wins
			}
			byID[rec.ID] = &recoveredJob{rec: rec, state: StateQueued}
			order = append(order, rec.ID)
			var n int
			if _, err := fmt.Sscanf(rec.ID, "job-%d", &n); err == nil && n > s.seq {
				s.seq = n
			}
		case "started":
			if rj, ok := byID[rec.ID]; ok && !terminalState(rj.state) {
				rj.state = StateRunning
				rj.started = rec.At
			}
		case "done":
			if rj, ok := byID[rec.ID]; ok {
				rj.state = StateDone
				rj.degraded = rec.Degraded
				rj.finished = rec.At
			}
		case "failed", "canceled":
			if rj, ok := byID[rec.ID]; ok {
				if rec.Op == "failed" {
					rj.state = StateFailed
				} else {
					rj.state = StateCanceled
				}
				rj.errMsg = rec.Error
				rj.finished = rec.At
			}
		}
	}

	for _, id := range order {
		rj := byID[id]
		name := rj.rec.JobName
		if name == "" {
			name = rj.rec.Name
		}
		j := &Job{
			ID:     id,
			Key:    rj.rec.Key,
			kind:   rj.rec.Kind,
			name:   name,
			policy: rj.rec.Policy,
			scale:  rj.rec.Scale,
			stream: s.newJobStream(),
		}
		j.submitted = rj.rec.At
		j.started = rj.started
		j.finished = rj.finished
		j.cacheHit = rj.rec.CacheHit

		switch rj.state {
		case StateDone:
			if art, ok := s.store.loadArtifact(rj.rec.Key); ok {
				j.state = StateDone
				j.degraded = rj.degraded
				j.artifact = art
				s.cache.put(j.Key, art)
				j.stream.append(Event{Type: "state", Job: id, State: StateDone})
				j.stream.append(Event{Type: "done", Job: id, State: StateDone})
				j.stream.closeStream()
				break
			}
			// The journal says done but the artifact is gone (lost rename,
			// operator deletion). Recompute rather than serve a hole.
			s.requeueRecovered(j, rj)
		case StateFailed, StateCanceled:
			j.state = rj.state
			j.err = rj.errMsg
			j.stream.append(Event{Type: "error", Job: id, State: rj.state, Error: rj.errMsg})
			j.stream.closeStream()
		default: // queued or running at the crash
			s.requeueRecovered(j, rj)
		}
		s.store.removeCheckpointIfTerminal(j)
		s.track(j)
	}
}

// requeueRecovered re-resolves a recovered in-flight job and puts it back on
// the queue, attaching any surviving checkpoint. On any impossibility —
// unresolvable request, key drift, full queue — the job fails with a message
// naming the cause; recovery itself never aborts the boot.
func (s *Service) requeueRecovered(j *Job, rj *recoveredJob) {
	fail := func(msg string) {
		j.state = StateFailed
		j.err = msg
		j.finished = time.Now()
		s.met.failed.Add(1)
		s.journal(journalRecord{Op: "failed", ID: j.ID, At: j.finished, Error: msg}, true)
		j.stream.append(Event{Type: "error", Job: j.ID, State: StateFailed, Error: msg})
		j.stream.closeStream()
	}

	r, err := s.resolve(Request{
		Kind:   rj.rec.Kind,
		Name:   rj.rec.Name,
		Spec:   json.RawMessage(rj.rec.Spec),
		Policy: rj.rec.Policy,
		Scale:  rj.rec.Scale,
	})
	if err != nil {
		fail(fmt.Sprintf("recovery: re-resolving journaled request: %v", err))
		return
	}
	if r.key != rj.rec.Key {
		fail(fmt.Sprintf("recovery: content key drifted across restart (journal %s, now %s): catalog or integrator changed", shortKey(rj.rec.Key), shortKey(r.key)))
		return
	}
	j.res = r
	j.recovered = true
	j.cacheHit = false
	j.started, j.finished = time.Time{}, time.Time{}
	if cp, ok := s.store.loadCheckpoint(j.ID); ok && cp.Kind == j.kind {
		j.checkpoint = cp
	}

	j.state = StateQueued
	// Same ordering discipline as Submit: the trace and queue span exist
	// before the send publishes the job to any worker. (Recovery actually
	// runs before the pool starts, but the invariant is cheap to keep.)
	j.trace = obs.NewTracer()
	j.trace.SetSink(s.spanSink(j.ID))
	j.trace.Instant("recovered", "lifecycle", 0)
	j.enqueued = time.Now()
	j.queueSpan = j.trace.Start("queue", "lifecycle", 0)
	select {
	case s.queue <- j:
	default:
		fail("recovery: admission queue full; resubmit the job")
		return
	}
	s.met.recovered.Add(1)
	j.stream.append(Event{Type: "state", Job: j.ID, State: StateQueued})
	j.stream.append(Event{Type: "recovered", Job: j.ID, State: StateQueued, Resumed: j.checkpointProgress()})
}

// checkpointProgress summarises how much of the job a surviving checkpoint
// lets the rerun skip or verify-replay, for the "recovered" stream event.
func (j *Job) checkpointProgress() string {
	switch {
	case j.checkpoint == nil:
		return "from scratch"
	case j.checkpoint.Sched != nil:
		return fmt.Sprintf("replay to round %d", j.checkpoint.Sched.Round)
	case len(j.checkpoint.Machines) > 0:
		return fmt.Sprintf("%d machines precomputed", len(j.checkpoint.Machines))
	default:
		return "from scratch"
	}
}

// removeCheckpointIfTerminal clears the resume token of a job that will never
// run again.
func (st *store) removeCheckpointIfTerminal(j *Job) {
	if terminalState(j.state) {
		st.removeCheckpoint(j.ID)
	}
}

func shortKey(k string) string {
	if len(k) > 12 {
		return k[:12]
	}
	return k
}
