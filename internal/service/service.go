// Package service is the simulation-as-a-service layer: a long-running
// daemon core that accepts experiment/scenario/sched jobs (the same
// declarative JSON specs internal/scenario decodes), runs them on a bounded
// worker pool layered over the deterministic runner engine, streams
// per-round fleet telemetry to NDJSON/SSE subscribers, and serves results
// from a content-addressed cache keyed by the canonical spec hash — so an
// identical submission returns instantly, byte-identical to the dimctl path.
//
// The serving discipline is explicit about its limits: admission control
// returns 429 + Retry-After when the bounded queue is full (backpressure,
// never unbounded buffering), per-job contexts cancel mid-run at metric
// ticks and round barriers, and shutdown drains running work before
// exiting. cmd/dimd wraps this package in an HTTP server; cmd/dimctl's
// `remote` subcommands are its client.
package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/export"
	"repro/internal/faultinject"
	"repro/internal/fleetsched"
	"repro/internal/obs"
	"repro/internal/scenario"
)

// Sentinel errors the HTTP layer maps to status codes.
var (
	// ErrBusy is returned when the admission queue is full (HTTP 429).
	ErrBusy = errors.New("service: queue full, retry later")
	// ErrDraining is returned once shutdown has begun (HTTP 503).
	ErrDraining = errors.New("service: draining, not accepting jobs")
	// ErrUnknownJob is returned for lookups of untracked job IDs (HTTP 404).
	ErrUnknownJob = errors.New("service: unknown job")
)

// ExperimentSource adapts the root package's experiment table for the
// daemon without an import cycle: the service depends only on these three
// closures, wired up by cmd/dimd (see dimetrodon.ServiceExperiments).
type ExperimentSource struct {
	// IDs lists the experiment identifiers in stable order.
	IDs func() []string
	// Run executes one experiment and returns its rendered report —
	// byte-identical to what `dimctl run` writes between its banners.
	Run func(id string, scale float64) (string, error)
	// Render returns the experiment's plot-ready CSV artefacts —
	// byte-identical to `dimctl export`'s files.
	Render func(id string, scale float64) ([]export.File, error)
}

// Config sizes the daemon. Zero fields select the documented defaults.
type Config struct {
	// Workers is the number of concurrent job executors; each job further
	// parallelises across the runner pool. Default: GOMAXPROCS.
	Workers int
	// QueueDepth bounds admitted-but-not-running jobs; a full queue
	// rejects with ErrBusy. Default: 256.
	QueueDepth int
	// CacheBytes budgets the content-addressed result cache. Default: 64 MiB.
	CacheBytes int64
	// MaxEvents bounds each job's telemetry ring. Default: 2048.
	MaxEvents int
	// MaxJobs bounds retained terminal job records (oldest evicted first;
	// live jobs are always retained). Default: 1024.
	MaxJobs int
	// DefaultScale applies when a request leaves Scale zero. Default: 1.0.
	DefaultScale float64
	// TelemetryEvery is the per-machine sampling cadence for unscheduled
	// scenario streams, in metric ticks. Default: 50 (5 s of virtual time).
	TelemetryEvery int
	// Experiments enables experiment jobs; the zero value disables them
	// (scenario and sched jobs always work).
	Experiments ExperimentSource

	// DataDir, when set, makes the daemon durable: submissions journal to an
	// append-only WAL before they are acknowledged, completed artifacts
	// persist to content-addressed files, in-flight jobs checkpoint, and a
	// restarted daemon recovers all three — queued and running jobs re-run
	// (resuming from their checkpoints) and produce byte-identical results.
	// Empty keeps the daemon fully in-memory, exactly as before.
	DataDir string
	// CheckpointEvery is the scheduled-run checkpoint cadence in round
	// barriers (durable daemons only). Default: 5. Negative disables
	// checkpointing (recovery then reruns from scratch).
	CheckpointEvery int

	// Cluster, when it names workers, runs this daemon as a coordinator:
	// unscheduled scenario jobs shard across the worker set with lease-based
	// recovery. See ClusterConfig.
	Cluster ClusterConfig

	// FlightRecords sizes the flight-recorder ring (recent spans, stream
	// events and heat frames, dumped with incidents). Default: 4096 records;
	// negative disables the recorder entirely.
	FlightRecords int
	// MaxIncidents bounds retained incident dumps (oldest evicted first).
	// Default: 32.
	MaxIncidents int
	// SLO configures the burn-rate evaluators whose breaches auto-dump
	// incidents. The zero value disables SLO evaluation.
	SLO SLOConfig

	// Logger receives structured job-lifecycle logs. Nil discards them —
	// logging is observability, never load-bearing.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 64 << 20
	}
	if c.MaxEvents <= 0 {
		c.MaxEvents = 2048
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	if c.DefaultScale <= 0 {
		c.DefaultScale = 1.0
	}
	if c.TelemetryEvery <= 0 {
		c.TelemetryEvery = 50
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 5
	}
	if c.FlightRecords == 0 {
		c.FlightRecords = obs.DefaultFlightRecords
	}
	if c.MaxIncidents <= 0 {
		c.MaxIncidents = 32
	}
	c.SLO = c.SLO.withDefaults()
	return c
}

// Service is the daemon core. Create with New, serve via Handler, stop with
// Shutdown.
type Service struct {
	cfg   Config
	cache *cache
	met   metrics
	heat  heatState
	log   *slog.Logger
	// store is the durable layer; nil for an in-memory daemon. All journal
	// and checkpoint writes funnel through Service.journal / execute's
	// checkpoint hooks, which tolerate a nil store.
	store *store
	// clu is the coordinator tier; nil unless Config.Cluster names workers.
	// cluClients holds one retry-free client per worker URL — the lease
	// machinery, not the HTTP client, owns failure handling.
	clu        *cluster.Coordinator
	cluClients map[string]*Client
	// cluPIDs maps each worker URL to its stable Chrome-trace process ID
	// (config order + 2; pid 1 is the coordinator) so stitched traces render
	// each worker as its own process row.
	cluPIDs map[string]int

	// rec is the flight recorder (nil when disabled; every feed is nil-safe);
	// inc retains incident dumps; slo holds the armed burn-rate rules.
	rec *obs.FlightRecorder
	inc *incidentLog
	slo []*obs.BurnRate

	baseCtx   context.Context
	cancelAll context.CancelFunc

	mu       sync.Mutex
	draining bool
	seq      int
	jobs     map[string]*Job
	order    []string // submission order, for listing and retention
	queue    chan *Job
	wg       sync.WaitGroup
}

// New builds the service and starts its worker pool. It panics if a durable
// config (DataDir set) fails to open its data directory — use Open to handle
// that error; an in-memory config never fails.
func New(cfg Config) *Service {
	s, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Open builds the service, recovers durable state when Config.DataDir is
// set (replaying the job journal, warming the result cache from persisted
// artifacts, and re-enqueueing interrupted jobs with their checkpoints), and
// starts the worker pool.
func Open(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:       cfg,
		cache:     newCache(cfg.CacheBytes),
		baseCtx:   ctx,
		cancelAll: cancel,
		jobs:      map[string]*Job{},
		queue:     make(chan *Job, cfg.QueueDepth),
	}
	s.met.init(s)
	if cfg.FlightRecords > 0 {
		s.rec = obs.NewFlightRecorder(cfg.FlightRecords)
	}
	s.heat.rec = s.rec
	s.inc = newIncidentLog(cfg.MaxIncidents)
	s.initSLO()
	s.log = cfg.Logger
	if s.log == nil {
		s.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if cfg.DataDir != "" {
		st, rep, err := openStore(cfg.DataDir)
		if err != nil {
			cancel()
			return nil, err
		}
		s.store = st
		s.inc.open(filepath.Join(cfg.DataDir, "incidents"))
		st.log.SetFsyncObserver(s.met.walFsync.Observe)
		s.met.walReplayed.Store(int64(rep.stats.Records))
		if rep.stats.Truncated {
			s.met.walTruncations.Add(1)
		}
		// Recovery runs before any worker exists, so it owns every structure
		// it touches and re-enqueued jobs sit in the queue until workers
		// start below.
		s.recoverFromJournal(rep)
	}
	if len(cfg.Cluster.Workers) > 0 {
		// Before the worker pool: recovered jobs must find the coordinator
		// already serving when a worker picks them up.
		s.openCluster()
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for j := range s.queue {
				s.runJob(j)
			}
		}()
	}
	s.log.Info("service open",
		"workers", cfg.Workers, "queue", cfg.QueueDepth,
		"durable", cfg.DataDir != "", "recovered", s.Recovered())
	return s, nil
}

// newJobStream builds a job's event stream with the flight recorder tapped
// into every append.
func (s *Service) newJobStream() *stream {
	st := newStream(s.cfg.MaxEvents)
	if s.rec != nil {
		st.onAppend = func(e Event) { s.rec.Record("stream", e.Job, e.Type, float64(e.Seq)) }
	}
	return st
}

// spanSink returns the flight-recorder tap for one job's tracer: span
// durations land in the ring as they complete.
func (s *Service) spanSink(jobID string) obs.SpanSink {
	if s.rec == nil {
		return nil
	}
	return func(name, cat string, durNS int64) {
		s.rec.Record("span", jobID, name, float64(durNS)/1e9)
	}
}

// journal durably records one journal entry; a no-op for in-memory daemons.
// Journal failures degrade durability, not availability: the daemon keeps
// serving (the job still runs, the client still gets its result) and the
// failure is counted for operators to alarm on.
func (s *Service) journal(rec journalRecord, sync bool) {
	if s.store == nil {
		return
	}
	if err := s.store.append(rec, sync); err != nil {
		s.met.walErrors.Add(1)
		return
	}
	s.met.walRecords.Add(1)
}

// Recovered reports how many interrupted jobs this process re-enqueued at
// boot (0 for in-memory daemons).
func (s *Service) Recovered() int { return int(s.met.recovered.Load()) }

// Submit validates, admits and tracks one job. Cache hits complete
// immediately (state done, CacheHit true) without occupying a worker; misses
// enqueue, or fail with ErrBusy when the queue is full.
func (s *Service) Submit(req Request) (*Job, error) {
	// The tracer starts before resolution so the submit span covers
	// validation and admission; a rejected submission's tracer is simply
	// discarded with the job that never was.
	tr := obs.NewTracer()
	spSubmit := tr.Start("submit", "lifecycle", 0)
	r, err := s.resolve(req)
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}
	if req.Idempotent {
		// Resubmit-by-content-address: a client retrying after a lost
		// response must not fork a second identical simulation, so a LIVE
		// job with the same key answers the retry. Terminal jobs do not
		// attach: done runs are the cache's business (the fall-through
		// below answers instantly, marked CacheHit), and a retry after
		// failed/canceled should genuinely re-run.
		for i := len(s.order) - 1; i >= 0; i-- {
			if prev := s.jobs[s.order[i]]; prev.Key == r.key {
				if st := prev.View().State; st != StateQueued && st != StateRunning {
					continue
				}
				s.met.deduped.Add(1)
				return prev, nil
			}
		}
	}
	lookup := time.Now()
	art, hit := s.cache.get(r.key)
	s.met.cacheLookup.Observe(time.Since(lookup).Seconds())

	s.seq++
	j := &Job{
		ID:     fmt.Sprintf("job-%06d", s.seq),
		Key:    r.key,
		kind:   r.kind,
		name:   jobName(r),
		policy: r.policy,
		scale:  r.scale,
		res:    r,
		stream: s.newJobStream(),
		trace:  tr,
	}
	j.submitted = time.Now()
	// The flight recorder taps every span completion and stream append from
	// here on; both feeds read values already computed for the trace/stream,
	// so recording perturbs nothing.
	tr.SetSink(s.spanSink(j.ID))
	if hit {
		j.state = StateDone
		j.cacheHit = true
		j.started = j.submitted
		j.finished = j.submitted
		j.artifact = art
		j.stream.append(Event{Type: "state", Job: j.ID, State: StateDone})
		j.stream.append(Event{Type: "done", Job: j.ID, State: StateDone})
		j.stream.closeStream()
		s.cache.hits.Add(1)
		s.met.submitted.Add(1)
		s.met.completed.Add(1)
		s.journal(s.submitRecord(j, req, true), false)
		s.journal(journalRecord{Op: "done", ID: j.ID, At: j.finished}, true)
		spSubmit.EndArgs(map[string]any{"job": j.ID, "cache_hit": true})
		tr.Instant("done", "lifecycle", 0)
		s.track(j)
		s.log.Info("job submitted", "job", j.ID, "kind", j.kind, "name", j.name, "cache_hit", true)
		return j, nil
	}

	j.state = StateQueued
	// The queue span (and its wait clock) must exist before the channel send
	// publishes the job: a free worker can start runJob the moment the send
	// lands, and it ends this span.
	j.enqueued = time.Now()
	spSubmit.EndArgs(map[string]any{"job": j.ID, "cache_hit": false})
	j.queueSpan = tr.Start("queue", "lifecycle", 0)
	select {
	case s.queue <- j:
	default:
		// Rejected submissions never simulated anything; they count as
		// backpressure, not cache misses.
		s.met.rejected.Add(1)
		return nil, ErrBusy
	}
	s.cache.misses.Add(1)
	s.met.submitted.Add(1)
	// Durable ack: the submission record is fsynced before Submit returns,
	// so an accepted job survives any crash from here on.
	s.journal(s.submitRecord(j, req, false), true)
	j.stream.append(Event{Type: "state", Job: j.ID, State: StateQueued})
	s.track(j)
	s.log.Info("job submitted", "job", j.ID, "kind", j.kind, "name", j.name, "cache_hit", false)
	return j, nil
}

// submitRecord builds a job's journal submission record, carrying enough of
// the original request to re-resolve it at recovery.
func (s *Service) submitRecord(j *Job, req Request, cacheHit bool) journalRecord {
	return journalRecord{
		Op:       "submitted",
		ID:       j.ID,
		At:       j.submitted,
		Key:      j.Key,
		Kind:     j.kind,
		Name:     req.Name,
		JobName:  j.name,
		Policy:   j.policy, // resolved, so recovery re-runs the same work even if spec defaults change
		Scale:    j.scale,  // resolved, for the same reason
		Spec:     req.Spec,
		CacheHit: cacheHit,
	}
}

func jobName(r *resolved) string {
	if r.kind == KindExperiment {
		return r.expID
	}
	return r.spec.Name
}

// track records the job and enforces the terminal-record retention bound.
// Caller holds s.mu.
func (s *Service) track(j *Job) {
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	if len(s.order) <= s.cfg.MaxJobs {
		return
	}
	kept := s.order[:0]
	toDrop := len(s.order) - s.cfg.MaxJobs
	for _, id := range s.order {
		if toDrop > 0 && s.jobs[id].Terminal() {
			delete(s.jobs, id)
			toDrop--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// Job returns a tracked job.
func (s *Service) Job(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrUnknownJob
	}
	return j, nil
}

// Jobs lists tracked jobs in submission order.
func (s *Service) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Cancel cancels a job: queued jobs terminate immediately (the worker skips
// them), running jobs get their context cancelled and stop at the next
// metric tick or round barrier.
func (s *Service) Cancel(id string) error {
	j, err := s.Job(id)
	if err != nil {
		return err
	}
	j.mu.Lock()
	switch j.state {
	case StateQueued:
		j.state = StateCanceled
		j.err = "canceled while queued"
		j.finished = time.Now()
		s.met.canceled.Add(1)
		j.mu.Unlock()
		s.journal(journalRecord{Op: "canceled", ID: j.ID, At: time.Now(), Error: "canceled while queued"}, true)
		if s.store != nil {
			s.store.removeCheckpoint(j.ID)
		}
		j.stream.append(Event{Type: "done", Job: j.ID, State: StateCanceled})
		j.stream.closeStream()
		return nil
	case StateRunning:
		j.cancelAsked = true
		cancel := j.cancelFunc
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return nil
	default:
		j.mu.Unlock()
		return nil // already terminal: cancellation is idempotent
	}
}

// Draining reports whether shutdown has begun.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// QueueDepth returns the number of admitted jobs waiting for a worker.
func (s *Service) QueueDepth() int { return len(s.queue) }

// Shutdown stops admission and drains: already-admitted jobs run to
// completion unless ctx expires first, at which point every outstanding job
// context is cancelled and the drain finishes promptly. Always returns once
// all workers have exited.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return fmt.Errorf("service: Shutdown called twice")
	}
	s.draining = true
	close(s.queue)
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		s.cancelAll()
		<-done
		err = ctx.Err()
	}
	if s.clu != nil {
		s.clu.Stop()
	}
	if s.store != nil {
		// After the drain: every worker has finished journaling.
		if cerr := s.store.close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// runJob executes one admitted job on a worker. A panic anywhere in the
// engine stack is contained to the job: the worker recovers, fails the job
// with the panic value and a trimmed stack, and goes back to the queue — one
// poisoned spec cannot take the daemon (or its sibling jobs) down.
func (s *Service) runJob(j *Job) {
	j.mu.Lock()
	if j.state != StateQueued { // canceled while queued
		j.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	j.state = StateRunning
	j.started = time.Now()
	j.cancelFunc = cancel
	j.mu.Unlock()

	j.queueSpan.End()
	if !j.enqueued.IsZero() {
		s.met.queueWait.Observe(j.started.Sub(j.enqueued).Seconds())
	}
	spRun := j.trace.Start("run", "lifecycle", 0)

	s.met.inFlight.Add(1)
	s.journal(journalRecord{Op: "started", ID: j.ID, At: j.started}, false)
	j.stream.append(Event{Type: "state", Job: j.ID, State: StateRunning})
	defer func() {
		r := recover()
		s.met.inFlight.Add(-1)
		if r == nil {
			return
		}
		s.met.panics.Add(1)
		j.trace.Instant("panic", "lifecycle", 0)
		msg := fmt.Sprintf("worker panic: %v\n%s", r, trimStack(debug.Stack()))
		// As in the normal terminal path: drop the resume token before the
		// terminal state becomes observable (the panicking goroutine was the
		// only checkpoint writer, so nothing is in flight).
		if s.store != nil {
			s.store.removeCheckpoint(j.ID)
		}
		j.mu.Lock()
		// Only transition if execute hadn't already finished the job — a
		// panic after the terminal switch (e.g. in a stream hook) must not
		// double-finish.
		if j.state == StateRunning {
			j.state = StateFailed
			j.err = msg
			j.finished = time.Now()
			j.cancelFunc = nil
			s.met.failed.Add(1)
		}
		j.mu.Unlock()
		s.journal(journalRecord{Op: "failed", ID: j.ID, At: time.Now(), Error: msg}, true)
		j.stream.append(Event{Type: "error", Job: j.ID, State: StateFailed, Error: msg})
		j.stream.closeStream()
		s.heat.drop(j.ID)
		s.log.Error("job panicked", "job", j.ID)
		// The flight recorder's ring still holds the run-up to the panic;
		// dump it with a snapshot before anything else overwrites it.
		s.dumpIncident("panic", j.ID, fmt.Sprintf("%v", r))
	}()

	art, err := s.execute(ctx, j)
	busy := time.Since(j.started).Seconds()
	spRun.EndArgs(map[string]any{"busy_seconds": busy})
	s.met.runSeconds.Observe(busy)
	spFinal := j.trace.Start("finalize", "lifecycle", 0)

	if err == nil && s.store != nil {
		// Durability ordering: the artifact must be on disk before the
		// journal says "done" — recovery trusts the journal, and a "done"
		// pointing at nothing would serve a hole. (A failed write merely
		// downgrades to in-memory: recovery sees done-without-artifact and
		// recomputes the identical bytes.)
		spArt := j.trace.Start("artifact", "lifecycle", 0)
		werr := s.store.writeArtifact(j.Key, art)
		spArt.End()
		if werr != nil {
			s.met.walErrors.Add(1)
		}
	}

	// The resume token goes away BEFORE the terminal state is published:
	// execute has returned, so no checkpoint writer is in flight, and an
	// observer that sees a terminal job must never find a checkpoint file.
	// (Crash-wise the order is free — a journal without a terminal record
	// re-runs from scratch either way.)
	if s.store != nil {
		s.store.removeCheckpoint(j.ID)
	}

	j.mu.Lock()
	j.finished = time.Now()
	j.cancelFunc = nil
	switch {
	case err == nil:
		j.state = StateDone
		j.artifact = art
		s.cache.put(j.Key, art)
		s.met.completed.Add(1)
		s.met.addSim(art.SimSeconds, busy)
	case ctx.Err() != nil:
		j.state = StateCanceled
		j.err = "canceled"
		s.met.canceled.Add(1)
	default:
		j.state = StateFailed
		j.err = err.Error()
		s.met.failed.Add(1)
	}
	state, msg := j.state, j.err
	finished := j.finished
	degraded := j.degraded
	j.mu.Unlock()

	switch state {
	case StateDone:
		s.journal(journalRecord{Op: "done", ID: j.ID, At: finished, Degraded: degraded}, true)
	case StateCanceled:
		s.journal(journalRecord{Op: "canceled", ID: j.ID, At: finished, Error: msg}, true)
	default:
		s.journal(journalRecord{Op: "failed", ID: j.ID, At: finished, Error: msg}, true)
	}

	if state == StateDone {
		j.stream.append(Event{Type: "done", Job: j.ID, State: state})
	} else {
		j.stream.append(Event{Type: "error", Job: j.ID, State: state, Error: msg})
	}
	j.stream.closeStream()
	spFinal.End()
	j.trace.Instant(state, "lifecycle", 0)
	s.heat.drop(j.ID)
	if state == StateDone {
		s.log.Info("job done", "job", j.ID, "busy_seconds", busy, "sim_seconds", art.SimSeconds)
	} else {
		s.log.Warn("job "+state, "job", j.ID, "error", msg)
	}
	// SLO evaluation rides job completion: every terminal job re-judges the
	// burn rate over the violation/queue-wait histograms it just fed.
	s.checkSLO(j.ID)
}

// trimStack keeps a panic stack readable in an error field: the goroutine
// header plus the first few frames, which name the faulting engine code.
func trimStack(stack []byte) string {
	lines := strings.Split(string(stack), "\n")
	const keep = 13 // header + 6 frames (2 lines each)
	if len(lines) > keep {
		lines = lines[:keep]
	}
	return strings.TrimRight(strings.Join(lines, "\n"), "\n")
}

// execute dispatches the resolved work item to the matching engine, wiring
// the job's telemetry stream into the engine hooks — and, on durable
// daemons, the checkpoint hooks that let a restarted daemon resume this job.
func (s *Service) execute(ctx context.Context, j *Job) (*Artifact, error) {
	if faultinject.Hit(faultinject.WorkerPanic) {
		panic("faultinject: worker.panic")
	}
	r := j.res
	switch r.kind {
	case KindExperiment:
		if s.cfg.Experiments.Run == nil {
			return nil, fmt.Errorf("experiment jobs are not enabled on this daemon")
		}
		// Paper harnesses have no internal cancellation points; a cancel
		// that raced the start still wins before the run begins.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rendered, err := s.cfg.Experiments.Run(r.expID, r.scale)
		if err != nil {
			return nil, err
		}
		files, err := s.cfg.Experiments.Render(r.expID, r.scale)
		if err != nil {
			return nil, err
		}
		return &Artifact{Rendered: rendered, Files: files}, nil

	case KindScenario:
		if s.clu != nil {
			return s.executeClusteredScenario(ctx, j)
		}
		opts := scenario.RunOptions{
			Context:        ctx,
			TelemetryEvery: s.cfg.TelemetryEvery,
			Trace:          j.trace,
			OnTelemetry: func(sm scenario.MachineSample) {
				s.heat.observeSample(j.ID, sm)
				j.stream.append(Event{Type: "telemetry", Job: j.ID, Machine: sampleEvent(sm)})
			},
			// Per-machine thermal state for the fleet snapshot, via the pure
			// machine.Checkpoint() observer (bounded; see captureState).
			OnState: j.captureState,
		}
		// Checkpointing for independent-machine fleets is completion
		// accumulation: finished machines persist as they land, and a
		// recovered job hands them back via Completed so the rerun skips
		// them. The recovered results re-emit as "machine" events up front so
		// a resumed stream still carries every completion.
		var (
			cpMu   sync.Mutex
			cpDone []scenario.MachineResult
		)
		if j.checkpoint != nil && len(j.checkpoint.Machines) > 0 {
			cpDone = append(cpDone, j.checkpoint.Machines...)
			sort.Slice(cpDone, func(a, b int) bool { return cpDone[a].Index < cpDone[b].Index })
			opts.Completed = append([]scenario.MachineResult(nil), cpDone...)
			for _, m := range cpDone {
				j.stream.append(Event{Type: "machine", Job: j.ID, Machine: machineEvent(m)})
			}
			s.met.resumes.Add(1)
		}
		opts.OnMachine = func(m scenario.MachineResult) {
			s.met.fleetViolation.Observe(m.ViolationS)
			j.stream.append(Event{Type: "machine", Job: j.ID, Machine: machineEvent(m)})
			if s.store == nil || s.cfg.CheckpointEvery < 0 {
				return
			}
			cpMu.Lock()
			cpDone = append(cpDone, m)
			snap := append([]scenario.MachineResult(nil), cpDone...)
			cpMu.Unlock()
			sort.Slice(snap, func(a, b int) bool { return snap[a].Index < snap[b].Index })
			sp := j.trace.Start("checkpoint", "lifecycle", 0)
			err := s.store.writeCheckpoint(j.ID, &JobCheckpoint{Kind: KindScenario, Machines: snap})
			sp.EndArgs(map[string]any{"machines": len(snap)})
			if err == nil {
				s.met.checkpoints.Add(1)
			} else {
				s.met.walErrors.Add(1)
			}
		}
		res, err := scenario.RunOpts(r.spec, r.scale, opts)
		if err != nil {
			return nil, err
		}
		return &Artifact{
			Rendered:   res.String(),
			Files:      scenario.RenderResult(res),
			SimSeconds: res.Duration.Seconds() * float64(len(res.Machines)),
		}, nil

	case KindSched:
		fsOpts := fleetsched.Options{
			Context: ctx,
			Trace:   j.trace,
			OnRound: func(rt fleetsched.RoundTelemetry) {
				s.heat.observeRound(j.ID, rt)
				j.stream.append(Event{Type: "round", Job: j.ID, Round: &rt})
			},
		}
		if s.store != nil && s.cfg.CheckpointEvery > 0 {
			fsOpts.CheckpointEvery = s.cfg.CheckpointEvery
			fsOpts.OnCheckpoint = func(cp fleetsched.Checkpoint) {
				sp := j.trace.Start("checkpoint", "lifecycle", 0)
				err := s.store.writeCheckpoint(j.ID, &JobCheckpoint{Kind: KindSched, Sched: &cp})
				sp.EndArgs(map[string]any{"round": cp.Round})
				if err == nil {
					s.met.checkpoints.Add(1)
				} else {
					s.met.walErrors.Add(1)
				}
			}
		}
		if j.checkpoint != nil && j.checkpoint.Sched != nil {
			fsOpts.Resume = j.checkpoint.Sched
		}
		res, err := fleetsched.RunOpts(r.spec, r.policy, r.scale, fsOpts)
		if err != nil && fsOpts.Resume != nil && ctx.Err() == nil {
			// The checkpoint failed its replay verification (or named a
			// barrier the run never reaches). Determinism means the rerun is
			// authoritative; the checkpoint is the corrupt party. Drop it and
			// run from scratch rather than fail a recoverable job.
			s.met.resumeRejected.Add(1)
			fsOpts.Resume = nil
			res, err = fleetsched.RunOpts(r.spec, r.policy, r.scale, fsOpts)
		} else if err == nil && fsOpts.Resume != nil {
			s.met.resumes.Add(1)
		}
		if err != nil {
			return nil, err
		}
		files, err := fleetsched.RenderResult(res)
		if err != nil {
			return nil, err
		}
		return &Artifact{
			Rendered:   res.String(),
			Files:      files,
			SimSeconds: res.Duration.Seconds() * float64(len(res.Machines)),
		}, nil

	case KindSchedCompare:
		c, err := fleetsched.CompareOpts(r.spec, r.scale, fleetsched.Options{
			Context: ctx,
			Trace:   j.trace,
			OnRound: func(rt fleetsched.RoundTelemetry) {
				s.heat.observeRound(j.ID, rt)
				j.stream.append(Event{Type: "round", Job: j.ID, Round: &rt})
			},
		}, func(policy string) {
			j.stream.append(Event{Type: "policy", Job: j.ID, Policy: policy})
		})
		if err != nil {
			return nil, err
		}
		// Mirror `dimctl sched export`: the default-policy run's CSVs
		// alongside the comparison table, from one sweep.
		files, err := fleetsched.RenderResult(c.DefaultResult())
		if err != nil {
			return nil, err
		}
		cmpFiles, err := fleetsched.RenderComparison(c)
		if err != nil {
			return nil, err
		}
		def := c.DefaultResult()
		return &Artifact{
			Rendered:   c.String(),
			Files:      append(files, cmpFiles...),
			SimSeconds: def.Duration.Seconds() * float64(len(def.Machines)) * float64(len(c.Results)),
		}, nil
	}
	return nil, fmt.Errorf("unknown job kind %q", r.kind)
}

// machineEvent converts a per-machine completion summary into its stream
// event payload.
func machineEvent(m scenario.MachineResult) *MachineEvent {
	return &MachineEvent{
		Index:         m.Index,
		MeanJunctionC: m.MeanJunction,
		MaxJunctionC:  m.PeakJunction,
		PeakJunctionC: m.PeakJunction,
		BusyS:         m.BusyS,
		InjectedIdleS: m.InjectedIdleS,
		Injections:    m.Injections,
		Violations:    m.Violations,
	}
}
