// Package service is the simulation-as-a-service layer: a long-running
// daemon core that accepts experiment/scenario/sched jobs (the same
// declarative JSON specs internal/scenario decodes), runs them on a bounded
// worker pool layered over the deterministic runner engine, streams
// per-round fleet telemetry to NDJSON/SSE subscribers, and serves results
// from a content-addressed cache keyed by the canonical spec hash — so an
// identical submission returns instantly, byte-identical to the dimctl path.
//
// The serving discipline is explicit about its limits: admission control
// returns 429 + Retry-After when the bounded queue is full (backpressure,
// never unbounded buffering), per-job contexts cancel mid-run at metric
// ticks and round barriers, and shutdown drains running work before
// exiting. cmd/dimd wraps this package in an HTTP server; cmd/dimctl's
// `remote` subcommands are its client.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/export"
	"repro/internal/fleetsched"
	"repro/internal/scenario"
)

// Sentinel errors the HTTP layer maps to status codes.
var (
	// ErrBusy is returned when the admission queue is full (HTTP 429).
	ErrBusy = errors.New("service: queue full, retry later")
	// ErrDraining is returned once shutdown has begun (HTTP 503).
	ErrDraining = errors.New("service: draining, not accepting jobs")
	// ErrUnknownJob is returned for lookups of untracked job IDs (HTTP 404).
	ErrUnknownJob = errors.New("service: unknown job")
)

// ExperimentSource adapts the root package's experiment table for the
// daemon without an import cycle: the service depends only on these three
// closures, wired up by cmd/dimd (see dimetrodon.ServiceExperiments).
type ExperimentSource struct {
	// IDs lists the experiment identifiers in stable order.
	IDs func() []string
	// Run executes one experiment and returns its rendered report —
	// byte-identical to what `dimctl run` writes between its banners.
	Run func(id string, scale float64) (string, error)
	// Render returns the experiment's plot-ready CSV artefacts —
	// byte-identical to `dimctl export`'s files.
	Render func(id string, scale float64) ([]export.File, error)
}

// Config sizes the daemon. Zero fields select the documented defaults.
type Config struct {
	// Workers is the number of concurrent job executors; each job further
	// parallelises across the runner pool. Default: GOMAXPROCS.
	Workers int
	// QueueDepth bounds admitted-but-not-running jobs; a full queue
	// rejects with ErrBusy. Default: 256.
	QueueDepth int
	// CacheBytes budgets the content-addressed result cache. Default: 64 MiB.
	CacheBytes int64
	// MaxEvents bounds each job's telemetry ring. Default: 2048.
	MaxEvents int
	// MaxJobs bounds retained terminal job records (oldest evicted first;
	// live jobs are always retained). Default: 1024.
	MaxJobs int
	// DefaultScale applies when a request leaves Scale zero. Default: 1.0.
	DefaultScale float64
	// TelemetryEvery is the per-machine sampling cadence for unscheduled
	// scenario streams, in metric ticks. Default: 50 (5 s of virtual time).
	TelemetryEvery int
	// Experiments enables experiment jobs; the zero value disables them
	// (scenario and sched jobs always work).
	Experiments ExperimentSource
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 64 << 20
	}
	if c.MaxEvents <= 0 {
		c.MaxEvents = 2048
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	if c.DefaultScale <= 0 {
		c.DefaultScale = 1.0
	}
	if c.TelemetryEvery <= 0 {
		c.TelemetryEvery = 50
	}
	return c
}

// Service is the daemon core. Create with New, serve via Handler, stop with
// Shutdown.
type Service struct {
	cfg   Config
	cache *cache
	met   metrics

	baseCtx   context.Context
	cancelAll context.CancelFunc

	mu       sync.Mutex
	draining bool
	seq      int
	jobs     map[string]*Job
	order    []string // submission order, for listing and retention
	queue    chan *Job
	wg       sync.WaitGroup
}

// New builds the service and starts its worker pool.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:       cfg,
		cache:     newCache(cfg.CacheBytes),
		baseCtx:   ctx,
		cancelAll: cancel,
		jobs:      map[string]*Job{},
		queue:     make(chan *Job, cfg.QueueDepth),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for j := range s.queue {
				s.runJob(j)
			}
		}()
	}
	return s
}

// Submit validates, admits and tracks one job. Cache hits complete
// immediately (state done, CacheHit true) without occupying a worker; misses
// enqueue, or fail with ErrBusy when the queue is full.
func (s *Service) Submit(req Request) (*Job, error) {
	r, err := s.resolve(req)
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}
	art, hit := s.cache.get(r.key)

	s.seq++
	j := &Job{
		ID:     fmt.Sprintf("job-%06d", s.seq),
		Key:    r.key,
		kind:   r.kind,
		name:   jobName(r),
		policy: r.policy,
		scale:  r.scale,
		res:    r,
		stream: newStream(s.cfg.MaxEvents),
	}
	j.submitted = time.Now()
	if hit {
		j.state = StateDone
		j.cacheHit = true
		j.started = j.submitted
		j.finished = j.submitted
		j.artifact = art
		j.stream.append(Event{Type: "state", Job: j.ID, State: StateDone})
		j.stream.append(Event{Type: "done", Job: j.ID, State: StateDone})
		j.stream.closeStream()
		s.cache.hits.Add(1)
		s.met.submitted.Add(1)
		s.met.completed.Add(1)
		s.track(j)
		return j, nil
	}

	j.state = StateQueued
	select {
	case s.queue <- j:
	default:
		// Rejected submissions never simulated anything; they count as
		// backpressure, not cache misses.
		s.met.rejected.Add(1)
		return nil, ErrBusy
	}
	s.cache.misses.Add(1)
	s.met.submitted.Add(1)
	j.stream.append(Event{Type: "state", Job: j.ID, State: StateQueued})
	s.track(j)
	return j, nil
}

func jobName(r *resolved) string {
	if r.kind == KindExperiment {
		return r.expID
	}
	return r.spec.Name
}

// track records the job and enforces the terminal-record retention bound.
// Caller holds s.mu.
func (s *Service) track(j *Job) {
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	if len(s.order) <= s.cfg.MaxJobs {
		return
	}
	kept := s.order[:0]
	toDrop := len(s.order) - s.cfg.MaxJobs
	for _, id := range s.order {
		if toDrop > 0 && s.jobs[id].Terminal() {
			delete(s.jobs, id)
			toDrop--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// Job returns a tracked job.
func (s *Service) Job(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrUnknownJob
	}
	return j, nil
}

// Jobs lists tracked jobs in submission order.
func (s *Service) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Cancel cancels a job: queued jobs terminate immediately (the worker skips
// them), running jobs get their context cancelled and stop at the next
// metric tick or round barrier.
func (s *Service) Cancel(id string) error {
	j, err := s.Job(id)
	if err != nil {
		return err
	}
	j.mu.Lock()
	switch j.state {
	case StateQueued:
		j.state = StateCanceled
		j.err = "canceled while queued"
		j.finished = time.Now()
		s.met.canceled.Add(1)
		j.mu.Unlock()
		j.stream.append(Event{Type: "done", Job: j.ID, State: StateCanceled})
		j.stream.closeStream()
		return nil
	case StateRunning:
		j.cancelAsked = true
		cancel := j.cancelFunc
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return nil
	default:
		j.mu.Unlock()
		return nil // already terminal: cancellation is idempotent
	}
}

// Draining reports whether shutdown has begun.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// QueueDepth returns the number of admitted jobs waiting for a worker.
func (s *Service) QueueDepth() int { return len(s.queue) }

// Shutdown stops admission and drains: already-admitted jobs run to
// completion unless ctx expires first, at which point every outstanding job
// context is cancelled and the drain finishes promptly. Always returns once
// all workers have exited.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return fmt.Errorf("service: Shutdown called twice")
	}
	s.draining = true
	close(s.queue)
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancelAll()
		<-done
		return ctx.Err()
	}
}

// runJob executes one admitted job on a worker.
func (s *Service) runJob(j *Job) {
	j.mu.Lock()
	if j.state != StateQueued { // canceled while queued
		j.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	j.state = StateRunning
	j.started = time.Now()
	j.cancelFunc = cancel
	j.mu.Unlock()

	s.met.inFlight.Add(1)
	j.stream.append(Event{Type: "state", Job: j.ID, State: StateRunning})

	art, err := s.execute(ctx, j)
	busy := time.Since(j.started).Seconds()
	s.met.inFlight.Add(-1)

	j.mu.Lock()
	j.finished = time.Now()
	j.cancelFunc = nil
	switch {
	case err == nil:
		j.state = StateDone
		j.artifact = art
		s.cache.put(j.Key, art)
		s.met.completed.Add(1)
		s.met.addSim(art.SimSeconds, busy)
	case ctx.Err() != nil:
		j.state = StateCanceled
		j.err = "canceled"
		s.met.canceled.Add(1)
	default:
		j.state = StateFailed
		j.err = err.Error()
		s.met.failed.Add(1)
	}
	state, msg := j.state, j.err
	j.mu.Unlock()

	if state == StateDone {
		j.stream.append(Event{Type: "done", Job: j.ID, State: state})
	} else {
		j.stream.append(Event{Type: "error", Job: j.ID, State: state, Error: msg})
	}
	j.stream.closeStream()
}

// execute dispatches the resolved work item to the matching engine, wiring
// the job's telemetry stream into the engine hooks.
func (s *Service) execute(ctx context.Context, j *Job) (*Artifact, error) {
	r := j.res
	switch r.kind {
	case KindExperiment:
		if s.cfg.Experiments.Run == nil {
			return nil, fmt.Errorf("experiment jobs are not enabled on this daemon")
		}
		// Paper harnesses have no internal cancellation points; a cancel
		// that raced the start still wins before the run begins.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rendered, err := s.cfg.Experiments.Run(r.expID, r.scale)
		if err != nil {
			return nil, err
		}
		files, err := s.cfg.Experiments.Render(r.expID, r.scale)
		if err != nil {
			return nil, err
		}
		return &Artifact{Rendered: rendered, Files: files}, nil

	case KindScenario:
		res, err := scenario.RunOpts(r.spec, r.scale, scenario.RunOptions{
			Context:        ctx,
			TelemetryEvery: s.cfg.TelemetryEvery,
			OnTelemetry: func(sm scenario.MachineSample) {
				j.stream.append(Event{Type: "telemetry", Job: j.ID, Machine: sampleEvent(sm)})
			},
			OnMachine: func(m scenario.MachineResult) {
				j.stream.append(Event{Type: "machine", Job: j.ID, Machine: &MachineEvent{
					Index:         m.Index,
					MeanJunctionC: m.MeanJunction,
					MaxJunctionC:  m.PeakJunction,
					PeakJunctionC: m.PeakJunction,
					BusyS:         m.BusyS,
					InjectedIdleS: m.InjectedIdleS,
					Injections:    m.Injections,
					Violations:    m.Violations,
				}})
			},
		})
		if err != nil {
			return nil, err
		}
		return &Artifact{
			Rendered:   res.String(),
			Files:      scenario.RenderResult(res),
			SimSeconds: res.Duration.Seconds() * float64(len(res.Machines)),
		}, nil

	case KindSched:
		res, err := fleetsched.RunOpts(r.spec, r.policy, r.scale, fleetsched.Options{
			Context: ctx,
			OnRound: func(rt fleetsched.RoundTelemetry) {
				j.stream.append(Event{Type: "round", Job: j.ID, Round: &rt})
			},
		})
		if err != nil {
			return nil, err
		}
		files, err := fleetsched.RenderResult(res)
		if err != nil {
			return nil, err
		}
		return &Artifact{
			Rendered:   res.String(),
			Files:      files,
			SimSeconds: res.Duration.Seconds() * float64(len(res.Machines)),
		}, nil

	case KindSchedCompare:
		c, err := fleetsched.CompareOpts(r.spec, r.scale, fleetsched.Options{
			Context: ctx,
			OnRound: func(rt fleetsched.RoundTelemetry) {
				j.stream.append(Event{Type: "round", Job: j.ID, Round: &rt})
			},
		}, func(policy string) {
			j.stream.append(Event{Type: "policy", Job: j.ID, Policy: policy})
		})
		if err != nil {
			return nil, err
		}
		// Mirror `dimctl sched export`: the default-policy run's CSVs
		// alongside the comparison table, from one sweep.
		files, err := fleetsched.RenderResult(c.DefaultResult())
		if err != nil {
			return nil, err
		}
		cmpFiles, err := fleetsched.RenderComparison(c)
		if err != nil {
			return nil, err
		}
		def := c.DefaultResult()
		return &Artifact{
			Rendered:   c.String(),
			Files:      append(files, cmpFiles...),
			SimSeconds: def.Duration.Seconds() * float64(len(def.Machines)) * float64(len(c.Results)),
		}, nil
	}
	return nil, fmt.Errorf("unknown job kind %q", r.kind)
}
