package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
)

// SLOConfig arms the daemon's burn-rate evaluators. A threshold of zero
// disables that rule; with both rules disabled no SLO evaluation runs (the
// panic and degrade dump triggers stay active regardless).
type SLOConfig struct {
	// QueueWaitS breaches when too many jobs wait longer than this many
	// seconds in the admission queue.
	QueueWaitS float64
	// ViolationS breaches when too many fleet machines accumulate more than
	// this many seconds of thermal-violation time over their measurement
	// window — the Dimetrodon failure mode itself.
	ViolationS float64
	// Budget is the tolerated bad fraction per evaluation window.
	// Default: 0.1.
	Budget float64
	// MinEvents gates evaluation until a window has at least this many new
	// observations. Default: 8.
	MinEvents int
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.Budget <= 0 {
		c.Budget = 0.1
	}
	if c.MinEvents <= 0 {
		c.MinEvents = 8
	}
	return c
}

// initSLO builds the burn-rate rules from config. Runs once in Open, after
// the metrics registry exists.
func (s *Service) initSLO() {
	slo := s.cfg.SLO
	if slo.QueueWaitS > 0 {
		s.slo = append(s.slo, &obs.BurnRate{
			Name: "queue-wait", H: s.met.queueWait,
			Threshold: slo.QueueWaitS, Budget: slo.Budget, MinEvents: int64(slo.MinEvents),
		})
	}
	if slo.ViolationS > 0 {
		s.slo = append(s.slo, &obs.BurnRate{
			Name: "violation", H: s.met.fleetViolation,
			Threshold: slo.ViolationS, Budget: slo.Budget, MinEvents: int64(slo.MinEvents),
		})
	}
}

// checkSLO re-evaluates every armed burn-rate rule; a breach transition
// dumps an incident. The faultinject point lets the chaos/CI suites force a
// "violation storm" breach without out-heating the thermal model.
func (s *Service) checkSLO(jobID string) {
	if faultinject.Hit(faultinject.SLOBreach) {
		s.met.sloBreaches.Add(1)
		s.dumpIncident("slo:forced", jobID, "injected SLO breach (faultinject slo.breach)")
		return
	}
	for _, rule := range s.slo {
		fire, rate, events := rule.Check()
		if !fire {
			continue
		}
		s.met.sloBreaches.Add(1)
		s.dumpIncident("slo:"+rule.Name, jobID,
			fmt.Sprintf("burn rate %.3f over %d events exceeds budget %.3f (threshold %gs)",
				rate, events, rule.Budget, rule.Threshold))
	}
}

// Incident is one flight-recorder dump: the ring's recent records plus a
// full fleet snapshot, captured at the moment something went wrong.
type Incident struct {
	ID string    `json:"id"`
	At time.Time `json:"at"`
	// Reason is the dump trigger: "panic", "degraded", "slo:<rule>".
	Reason string `json:"reason"`
	// Job names the job the trigger fired on, when job-scoped.
	Job    string `json:"job,omitempty"`
	Detail string `json:"detail,omitempty"`

	Records  []obs.FlightRecord `json:"records,omitempty"`
	Snapshot *Snapshot          `json:"snapshot,omitempty"`
}

// IncidentSummary is the list-endpoint row.
type IncidentSummary struct {
	ID           string    `json:"id"`
	At           time.Time `json:"at"`
	Reason       string    `json:"reason"`
	Job          string    `json:"job,omitempty"`
	Detail       string    `json:"detail,omitempty"`
	Records      int       `json:"records"`
	SnapshotHash string    `json:"snapshot_hash,omitempty"`
}

// incidentLog retains recent incidents in memory (bounded) and, on durable
// daemons, mirrors each dump to <data-dir>/incidents/<id>.json so incidents
// survive the restart that often follows them.
type incidentLog struct {
	mu   sync.Mutex
	max  int
	seq  int
	list []*Incident
	dir  string // empty: in-memory only
}

func newIncidentLog(max int) *incidentLog {
	if max < 1 {
		max = 1
	}
	return &incidentLog{max: max}
}

// open points the log at its durable directory and loads surviving dumps.
// Runs once during Open, single-threaded.
func (il *incidentLog) open(dir string) {
	il.dir = dir
	entries, err := os.ReadDir(dir)
	if err != nil {
		return // no incidents yet (or no directory) — nothing to load
	}
	names := []string{}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			continue
		}
		var inc Incident
		if json.Unmarshal(raw, &inc) != nil || inc.ID == "" {
			continue
		}
		il.list = append(il.list, &inc)
		var n int
		if _, err := fmt.Sscanf(inc.ID, "inc-%d", &n); err == nil && n > il.seq {
			il.seq = n
		}
	}
	if over := len(il.list) - il.max; over > 0 {
		il.list = il.list[over:]
	}
}

// add assigns the incident its ID, retains it, and persists it when the log
// is durable. Returns the assigned ID.
func (il *incidentLog) add(inc *Incident) string {
	il.mu.Lock()
	il.seq++
	inc.ID = fmt.Sprintf("inc-%06d", il.seq)
	il.list = append(il.list, inc)
	if len(il.list) > il.max {
		il.list = il.list[len(il.list)-il.max:]
	}
	dir := il.dir
	il.mu.Unlock()

	if dir != "" {
		if raw, err := json.Marshal(inc); err == nil {
			if os.MkdirAll(dir, 0o755) == nil {
				_ = atomicWrite(filepath.Join(dir, inc.ID+".json"), raw)
			}
		}
	}
	return inc.ID
}

func (il *incidentLog) summaries() []IncidentSummary {
	il.mu.Lock()
	defer il.mu.Unlock()
	out := make([]IncidentSummary, 0, len(il.list))
	for _, inc := range il.list {
		sum := IncidentSummary{
			ID: inc.ID, At: inc.At, Reason: inc.Reason, Job: inc.Job,
			Detail: inc.Detail, Records: len(inc.Records),
		}
		if inc.Snapshot != nil {
			sum.SnapshotHash = inc.Snapshot.Hash
		}
		out = append(out, sum)
	}
	return out
}

func (il *incidentLog) get(id string) (*Incident, bool) {
	il.mu.Lock()
	defer il.mu.Unlock()
	for _, inc := range il.list {
		if inc.ID == id {
			return inc, true
		}
	}
	return nil, false
}

// dumpIncident captures the flight recorder and a fleet snapshot under the
// given reason. It is the auto-dump behind worker panics, degrade-to-local
// and SLO breaches; callers must not hold s.mu (BuildSnapshot takes it).
func (s *Service) dumpIncident(reason, jobID, detail string) {
	if s.inc == nil {
		return
	}
	inc := &Incident{
		At: time.Now(), Reason: reason, Job: jobID, Detail: detail,
		Records:  s.rec.Snapshot(),
		Snapshot: s.BuildSnapshot(),
	}
	id := s.inc.add(inc)
	s.met.incidents.Add(1)
	s.rec.Record("incident", jobID, reason, 0)
	s.log.Warn("incident dumped", "incident", id, "reason", reason, "job", jobID, "detail", detail)
}

func (s *Service) handleIncidents(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.inc.summaries())
}

func (s *Service) handleIncident(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	inc, ok := s.inc.get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no incident %q", id))
		return
	}
	writeJSON(w, http.StatusOK, inc)
}
