package service

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/fleetsched"
	"repro/internal/scenario"
)

// TestMetricsGoldenNames pins the /metrics exposition surface: every metric
// name and its declared type, in render order. Dashboards and the CI smoke
// grep depend on these being byte-stable; a rename or reorder must update the
// golden deliberately (UPDATE_GOLDEN=1 go test ./internal/service/).
func TestMetricsGoldenNames(t *testing.T) {
	svc, _ := newTestService(t, Config{Workers: 1, DefaultScale: 1})
	got := strings.Join(svc.met.reg.Names(), "\n") + "\n"

	golden := filepath.Join("testdata", "metrics_names.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("metric name/type surface drifted from %s:\n got:\n%s\nwant:\n%s", golden, got, want)
	}
}

// TestMetricsExpositionFormat asserts the exact sample-line format the CI
// smoke job greps for, and that the legacy names survived the registry
// migration with their values intact.
func TestMetricsExpositionFormat(t *testing.T) {
	_, c := newTestService(t, Config{Workers: 2, DefaultScale: 1})
	for i := 0; i < 2; i++ { // second submit is a cache hit
		v, err := c.Submit(Request{Spec: tinySpec("obs-expo", 1, 3)})
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		if _, err := c.Wait(context.Background(), v.ID); err != nil {
			t.Fatalf("wait: %v", err)
		}
	}
	text, err := c.Metrics()
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	for _, want := range []string{
		"dimd_jobs_submitted_total 2\n",
		"dimd_cache_hits_total 1\n",
		"dimd_cache_misses_total 1\n",
		"# TYPE dimd_cache_hits_total counter\n",
		"# TYPE dimd_queue_depth gauge\n",
		"# TYPE dimd_job_queue_wait_seconds histogram\n",
		`dimd_job_run_seconds_bucket{le="+Inf"} 1`,
		"dimd_job_run_seconds_count 1\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

// TestTraceEndpoint runs one durable job and checks its Chrome trace: valid
// trace-event JSON carrying the full lifecycle span taxonomy.
func TestTraceEndpoint(t *testing.T) {
	_, c := newTestService(t, Config{Workers: 1, DefaultScale: 1, DataDir: t.TempDir()})
	v, err := c.Submit(Request{Spec: tinySpec("obs-trace", 2, 7)})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, err := c.Wait(context.Background(), v.ID); err != nil {
		t.Fatalf("wait: %v", err)
	}
	raw, err := c.Trace(v.ID)
	if err != nil {
		t.Fatalf("trace: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, raw)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	seen := map[string]bool{}
	for _, e := range doc.TraceEvents {
		if e.Cat == "lifecycle" {
			seen[e.Name] = true
		}
	}
	for _, want := range []string{"submit", "queue", "run", "checkpoint", "artifact", "finalize", "done"} {
		if !seen[want] {
			t.Errorf("trace missing lifecycle span %q; saw %v", want, seen)
		}
	}

	if _, err := c.Trace("job-999999"); err == nil {
		t.Errorf("trace of unknown job did not error")
	}
}

// TestHeatEndpoint drives a slow streaming job and polls the once-frame until
// the job's heat row appears, then checks the terminal job is dropped.
func TestHeatEndpoint(t *testing.T) {
	svc, c := newTestService(t, Config{Workers: 1, DefaultScale: 1, TelemetryEvery: 1})
	v, err := c.Submit(Request{Spec: slowSpec("obs-heat")})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	deadline := time.Now().Add(30 * time.Second)
	var frame HeatFrame
	for {
		frame, err = c.Heat()
		if err != nil {
			t.Fatalf("heat: %v", err)
		}
		if len(frame.Jobs) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no heat frame for running job %s", v.ID)
		}
		time.Sleep(20 * time.Millisecond)
	}
	j := frame.Jobs[0]
	if j.Job != v.ID || j.Machines <= 0 || len(j.Cells) == 0 || j.MaxC <= 0 {
		t.Fatalf("implausible heat row: %+v", j)
	}
	if len(j.Cells) > heatMaxCells {
		t.Fatalf("heat cells unbounded: %d", len(j.Cells))
	}
	if _, err := c.Cancel(v.ID); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	if _, err := c.Wait(context.Background(), v.ID); err != nil {
		t.Fatalf("wait: %v", err)
	}
	svc.heat.mu.Lock()
	_, still := svc.heat.jobs[v.ID]
	svc.heat.mu.Unlock()
	if still {
		t.Errorf("terminal job %s still holds heat cells", v.ID)
	}
}

// TestHeatStateFolding unit-tests the cell folding: indices past the bound
// alias modulo the cell count, and the hottest machine wins its cell.
func TestHeatStateFolding(t *testing.T) {
	var h heatState
	h.observeSample("job-1", scenario.MachineSample{Index: 0, PeakJunctionC: 50, NowS: 1})
	h.observeSample("job-1", scenario.MachineSample{Index: 700, PeakJunctionC: 80, NowS: 2})
	h.observeSample("job-1", scenario.MachineSample{Index: 700 % heatMaxCells, PeakJunctionC: 60, NowS: 3})
	h.observeRound("job-0", fleetsched.RoundTelemetry{Round: 4, HottestMachine: 3, MaxJunctionC: 91, NowS: 8})

	f := h.snapshot()
	if len(f.Jobs) != 2 || f.Jobs[0].Job != "job-0" || f.Jobs[1].Job != "job-1" {
		t.Fatalf("snapshot jobs = %+v, want job-0 then job-1", f.Jobs)
	}
	j := f.Jobs[1]
	if j.Machines != 701 || len(j.Cells) != heatMaxCells {
		t.Fatalf("machines=%d cells=%d, want 701 machines folded into %d cells", j.Machines, len(j.Cells), heatMaxCells)
	}
	if j.MaxC != 80 || j.HottestMachine != 700 {
		t.Errorf("hottest = %.0fC at m%d, want 80C at m700 (aliased cell must keep its max)", j.MaxC, j.HottestMachine)
	}
	if j.VirtualS != 3 {
		t.Errorf("virtualS = %v, want high-water 3", j.VirtualS)
	}
	s := f.Jobs[0]
	if s.Round != 4 || s.MaxC != 91 || s.HottestMachine != 3 {
		t.Errorf("sched row = %+v, want round 4, 91C at m3", s)
	}

	h.drop("job-1")
	if f := h.snapshot(); len(f.Jobs) != 1 {
		t.Errorf("drop left %d jobs, want 1", len(f.Jobs))
	}
}
