package service

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fastRetry keeps resilience tests quick: tight backoff, plenty of attempts.
func fastRetry() RetryPolicy {
	return RetryPolicy{MaxAttempts: 10, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
}

// dropWriter truncates a streaming response after limit newline-terminated
// events, simulating a connection cut mid-stream (the HTTP framing still
// closes cleanly — the nastier case, indistinguishable from completion
// without the protocol's terminal-event rule).
type dropWriter struct {
	http.ResponseWriter
	lines, limit int
}

func (d *dropWriter) Write(p []byte) (int, error) {
	if d.lines >= d.limit {
		return 0, fmt.Errorf("injected connection drop")
	}
	n, err := d.ResponseWriter.Write(p)
	d.lines += bytes.Count(p[:n], []byte("\n"))
	return n, err
}

func (d *dropWriter) Flush() {
	if f, ok := d.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// TestSubmitRetriesBackpressure: 429 + Retry-After answers are backpressure,
// not failure — the client waits and resubmits, and exactly one job exists
// once it gets through.
func TestSubmitRetriesBackpressure(t *testing.T) {
	svc := New(Config{Workers: 2, DefaultScale: 1})
	defer shutdownSvc(t, svc)
	inner := svc.Handler()

	var rejects atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && rejects.Add(1) <= 3 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	c := NewRetryClient(srv.URL, fastRetry())
	v, err := c.Submit(Request{Spec: tinySpec("busy-retry", 1, 41)})
	if err != nil {
		t.Fatalf("submit through 429s: %v", err)
	}
	if got := rejects.Load(); got != 4 { // 3 rejects + 1 pass-through
		t.Fatalf("submit attempts = %d, want 4", got)
	}
	if final, err := c.Wait(context.Background(), v.ID); err != nil || final.State != StateDone {
		t.Fatalf("wait: %v (state %s)", err, final.State)
	}
	if n := len(svc.Jobs()); n != 1 {
		t.Fatalf("retried submission created %d jobs, want 1", n)
	}
}

// TestIdempotentSubmitSurvivesLostResponse: the daemon admits the job but the
// response never reaches the client. A plain retry would fork a duplicate
// run; an Idempotent retry attaches to the admitted job by content key.
func TestIdempotentSubmitSurvivesLostResponse(t *testing.T) {
	svc := New(Config{Workers: 1, DefaultScale: 1})
	defer shutdownSvc(t, svc)
	inner := svc.Handler()

	var lost atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && lost.CompareAndSwap(false, true) {
			// Run the submission for real, then kill the connection before
			// any response byte escapes.
			rec := httptest.NewRecorder()
			inner.ServeHTTP(rec, r)
			panic(http.ErrAbortHandler)
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	c := NewRetryClient(srv.URL, fastRetry())
	// A full-scale blocker pins the single worker so the lost-ack job stays
	// queued (live) until the retry lands — the retry must attach, not fork.
	// (Were it allowed to finish first, the retry would instead cache-hit
	// into a fresh job: still no duplicate simulation, but a different path
	// than this test pins down.)
	blocker, err := svc.Submit(Request{Spec: slowSpec("lost-ack-blocker"), Scale: 1})
	if err != nil {
		t.Fatalf("blocker submit: %v", err)
	}
	v, err := c.Submit(Request{Spec: slowSpec("lost-ack"), Scale: 0.05, Idempotent: true})
	if err != nil {
		t.Fatalf("idempotent submit through lost response: %v", err)
	}
	if n := len(svc.Jobs()); n != 2 { // blocker + the one lost-ack job
		t.Fatalf("lost-response retry forked jobs: %d tracked, want 2", n)
	}
	if got := svc.met.deduped.Load(); got != 1 {
		t.Fatalf("deduped counter = %d, want 1", got)
	}
	for _, id := range []string{v.ID, blocker.ID} {
		if _, err := c.Cancel(id); err != nil {
			t.Fatalf("cancel %s: %v", id, err)
		}
		if _, err := c.Wait(context.Background(), id); err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
	}
}

// TestStreamResumesAcrossDrops: every stream connection is cut after two
// events; the client must reassemble the full event sequence — dense seqs,
// no duplicates, no losses, terminal event last — across reconnects.
func TestStreamResumesAcrossDrops(t *testing.T) {
	svc := New(Config{Workers: 1, DefaultScale: 1})
	defer shutdownSvc(t, svc)
	inner := svc.Handler()

	var drops atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/stream") {
			drops.Add(1)
			inner.ServeHTTP(&dropWriter{ResponseWriter: w, limit: 2}, r)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	c := NewRetryClient(srv.URL, RetryPolicy{MaxAttempts: 64, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond})
	v, err := c.Submit(Request{Spec: tinySpec("stream-drops", 4, 47)})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	var events []Event
	if err := c.Stream(context.Background(), v.ID, func(e Event) error {
		events = append(events, e)
		return nil
	}); err != nil {
		t.Fatalf("stream across drops: %v", err)
	}
	if len(events) == 0 {
		t.Fatalf("no events delivered")
	}
	for i, e := range events {
		if e.Seq != i {
			t.Fatalf("event %d has seq %d: sequence not dense (duplicate or loss across reconnect)", i, e.Seq)
		}
	}
	last := events[len(events)-1]
	if last.Type != "done" || last.State != StateDone {
		t.Fatalf("stream did not end with the terminal done event: %+v", last)
	}
	// state queued + state running + 4 machine + done = 7 events minimum,
	// at 2 per connection the client must have reconnected.
	if got := drops.Load(); got < 3 {
		t.Fatalf("stream served in %d connections; the drop harness did not engage", got)
	}
}

// TestStreamTruncationDetected: without a retry policy, a cut stream is an
// error — never mistaken for completion.
func TestStreamTruncationDetected(t *testing.T) {
	svc := New(Config{Workers: 1, DefaultScale: 1})
	defer shutdownSvc(t, svc)
	inner := svc.Handler()

	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/stream") {
			inner.ServeHTTP(&dropWriter{ResponseWriter: w, limit: 1}, r)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	c := NewClient(srv.URL) // no retries
	v, err := c.Submit(Request{Spec: tinySpec("truncated", 1, 53)})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitJob(t, c, v.ID)
	err = c.Stream(context.Background(), v.ID, func(Event) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "before the job reached a terminal state") {
		t.Fatalf("truncated stream returned %v, want truncation error", err)
	}
}

// TestReadsRetryTransportFailures: status fetches ride out connections the
// server kills outright.
func TestReadsRetryTransportFailures(t *testing.T) {
	svc := New(Config{Workers: 1, DefaultScale: 1})
	defer shutdownSvc(t, svc)
	inner := svc.Handler()

	var kills atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet && kills.Add(1) <= 2 {
			panic(http.ErrAbortHandler)
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	c := NewRetryClient(srv.URL, fastRetry())
	v, err := c.Submit(Request{Spec: tinySpec("read-retry", 1, 59)})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	got, err := c.Job(v.ID)
	if err != nil {
		t.Fatalf("status fetch through killed connections: %v", err)
	}
	if got.ID != v.ID {
		t.Fatalf("fetched job %s, want %s", got.ID, v.ID)
	}
	if k := kills.Load(); k < 3 {
		t.Fatalf("GET attempts = %d, want >= 3 (two kills + success)", k)
	}
}

func shutdownSvc(t *testing.T, svc *Service) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = svc.Shutdown(ctx)
}

func waitJob(t *testing.T, c *Client, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		v, err := c.Job(id)
		if err == nil && terminalState(v.State) {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach a terminal state", id)
	return JobView{}
}
