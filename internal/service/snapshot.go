package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"time"

	"repro/internal/machine"
	"repro/internal/wal"
)

// SnapshotVersion is the snapshot document's schema version; dimctl refuses
// versions it does not know.
const SnapshotVersion = 1

// Snapshot is the full-state document behind GET /v1/snapshot: queue,
// in-flight jobs with their WAL-journaled checkpoints, per-machine thermal
// states (captured through the pure machine.Checkpoint() observer), cluster
// health tables, and the live heat frame — everything an operator needs to
// reconstruct an incident offline.
//
// The document is canonical and content-hashed: Hash covers only the
// deterministic core (daemon configuration and per-job identity, spec,
// checkpoint, and machine states — timestamps, live health booleans and
// heat frames are excluded), so two snapshots of the same quiesced daemon
// hash identically and an exported incident bundle can name the exact fleet
// state it came from.
type Snapshot struct {
	Version int       `json:"version"`
	TakenAt time.Time `json:"taken_at"`
	// Hash is the sha256 of the canonical core (see hashCore).
	Hash string `json:"hash"`

	Daemon     SnapshotDaemon `json:"daemon"`
	QueueDepth int            `json:"queue_depth"`
	Jobs       []JobSnapshot  `json:"jobs,omitempty"`

	// Cluster carries the lease/breaker/health tables on coordinators.
	Cluster *ClusterStatus `json:"cluster,omitempty"`
	// Heat is the live fleet heat frame at capture.
	Heat HeatFrame `json:"heat"`
	// FlightRecords reports the recorder ring's fill at capture.
	FlightRecords int `json:"flight_records"`
	// Journal is the WAL's write totals on durable daemons — how much journal
	// crash recovery would replay, and whether a torn-tail window was open.
	Journal *wal.Stats `json:"journal,omitempty"`
}

// SnapshotDaemon is the daemon-configuration half of a snapshot's hashed
// core: the knobs that determine what a replay of the snapshot's jobs would
// compute.
type SnapshotDaemon struct {
	Workers        int      `json:"workers"`
	QueueCapacity  int      `json:"queue_capacity"`
	DefaultScale   float64  `json:"default_scale"`
	Integrator     string   `json:"integrator,omitempty"`
	Durable        bool     `json:"durable"`
	ClusterWorkers []string `json:"cluster_workers,omitempty"`
}

// JobSnapshot is one job's entry: identity, state, the canonical spec it
// resolved to, its surviving checkpoint (the WAL-journaled resume token for
// in-flight jobs on durable daemons), and the retained per-machine thermal
// states. Spec plus Checkpoint is exactly what `dimctl incident export`
// turns into a replayable bundle.
type JobSnapshot struct {
	ID     string  `json:"id"`
	Key    string  `json:"key"`
	Kind   string  `json:"kind"`
	Name   string  `json:"name,omitempty"`
	Policy string  `json:"policy,omitempty"`
	Scale  float64 `json:"scale"`

	State     string `json:"state"`
	Degraded  bool   `json:"degraded,omitempty"`
	CacheHit  bool   `json:"cache_hit,omitempty"`
	Recovered bool   `json:"recovered,omitempty"`
	Error     string `json:"error,omitempty"`

	Spec          json.RawMessage    `json:"spec,omitempty"`
	Checkpoint    *JobCheckpoint     `json:"checkpoint,omitempty"`
	MachineStates []MachineStateSnap `json:"machine_states,omitempty"`

	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at,omitempty"`
	FinishedAt  time.Time `json:"finished_at,omitempty"`
}

// BuildSnapshot captures the daemon's current state. It takes the job table
// lock briefly per job and never blocks the engines: every field read is an
// observation of already-computed state.
func (s *Service) BuildSnapshot() *Snapshot {
	t0 := time.Now()
	snap := &Snapshot{
		Version: SnapshotVersion,
		TakenAt: t0,
		Daemon: SnapshotDaemon{
			Workers:        s.cfg.Workers,
			QueueCapacity:  s.cfg.QueueDepth,
			DefaultScale:   s.cfg.DefaultScale,
			Integrator:     machine.IntegratorOverride(),
			Durable:        s.cfg.DataDir != "",
			ClusterWorkers: append([]string(nil), s.cfg.Cluster.Workers...),
		},
		QueueDepth:    s.QueueDepth(),
		Heat:          s.heat.snapshot(),
		FlightRecords: s.rec.Len(),
	}
	if cs := s.ClusterStatus(); cs.Enabled {
		snap.Cluster = &cs
	}
	if s.store != nil {
		js := s.store.log.Stats()
		snap.Journal = &js
	}

	for _, j := range s.Jobs() {
		v := j.View()
		js := JobSnapshot{
			ID: j.ID, Key: j.Key, Kind: j.kind, Name: j.name,
			Policy: j.policy, Scale: j.scale,
			State: v.State, Degraded: v.Degraded, CacheHit: v.CacheHit,
			Recovered: j.recovered, Error: v.Error,
			MachineStates: j.statesSnapshot(),
			SubmittedAt:   v.SubmittedAt,
		}
		if v.StartedAt != nil {
			js.StartedAt = *v.StartedAt
		}
		if v.FinishedAt != nil {
			js.FinishedAt = *v.FinishedAt
		}
		if j.res != nil && j.res.spec != nil {
			if raw, err := j.res.spec.Canonical(); err == nil {
				js.Spec = raw
			}
		}
		// The resume token: for durable daemons the WAL-adjacent checkpoint
		// file is authoritative (it is what recovery would hand the rerun);
		// in-memory daemons fall back to a recovered job's retained token.
		if s.store != nil {
			if cp, ok := s.store.loadCheckpoint(j.ID); ok {
				js.Checkpoint = cp
			}
		} else if j.checkpoint != nil {
			js.Checkpoint = j.checkpoint
		}
		snap.Jobs = append(snap.Jobs, js)
	}

	snap.Hash = snap.hashCore()
	s.met.snapshots.Add(1)
	s.met.snapshotSeconds.Observe(time.Since(t0).Seconds())
	s.rec.Record("snapshot", "", snap.Hash[:12], float64(len(snap.Jobs)))
	return snap
}

// hashCore computes the canonical content hash: the snapshot re-marshals
// with every volatile field zeroed (capture time, per-job wall-clock stamps,
// the heat frame's timestamps, live cluster health, the recorder fill, the
// journal write totals), so the hash names the logical fleet state alone.
func (s *Snapshot) hashCore() string {
	core := *s
	core.TakenAt = time.Time{}
	core.Hash = ""
	core.Heat = HeatFrame{}
	core.Cluster = nil
	core.FlightRecords = 0
	core.Journal = nil
	core.Jobs = append([]JobSnapshot(nil), s.Jobs...)
	for i := range core.Jobs {
		core.Jobs[i].SubmittedAt = time.Time{}
		core.Jobs[i].StartedAt = time.Time{}
		core.Jobs[i].FinishedAt = time.Time{}
	}
	raw, err := json.Marshal(core)
	if err != nil {
		return "unhashable"
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

func (s *Service) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.BuildSnapshot())
}
