package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/scenario"
)

// Handler returns the daemon's HTTP API:
//
//	POST   /v1/jobs                submit (429 + Retry-After under backpressure)
//	GET    /v1/jobs                list jobs
//	GET    /v1/jobs/{id}           job status
//	DELETE /v1/jobs/{id}           cancel
//	GET    /v1/jobs/{id}/stream    telemetry stream (NDJSON; SSE on request)
//	GET    /v1/jobs/{id}/output    rendered report (text/plain; byte-identical to dimctl)
//	GET    /v1/jobs/{id}/files     artefact names (JSON list)
//	GET    /v1/jobs/{id}/files/{name}  one CSV artefact (byte-identical to dimctl export)
//	POST   /v1/shards              execute one shard for a remote coordinator (NDJSON stream)
//	GET    /v1/cluster/health      worker heartbeat probe (503 when unable to take shards)
//	GET    /v1/cluster/status      coordinator's worker-fleet status
//	GET    /v1/catalog             experiments, scenarios, policies
//	GET    /v1/fleet/heat          live fleet heat-map (SSE; ?once=1 for one JSON frame)
//	GET    /v1/snapshot            content-hashed full-state snapshot
//	GET    /v1/incidents           flight-recorder incident dumps (summaries)
//	GET    /v1/incidents/{id}      one full incident dump
//	GET    /healthz                liveness + drain state
//	GET    /metrics                Prometheus text exposition
//	GET    /debug/trace/{id}       job trace (Chrome trace-event JSON)
//	GET    /debug/pprof/...        net/http/pprof profiles
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /v1/jobs/{id}/output", s.handleOutput)
	mux.HandleFunc("GET /v1/jobs/{id}/files", s.handleFiles)
	mux.HandleFunc("GET /v1/jobs/{id}/files/{name}", s.handleFile)
	mux.HandleFunc("POST /v1/shards", s.handleShardRun)
	mux.HandleFunc("GET /v1/cluster/health", s.handleClusterHealth)
	mux.HandleFunc("GET /v1/cluster/status", s.handleClusterStatus)
	mux.HandleFunc("GET /v1/catalog", s.handleCatalog)
	mux.HandleFunc("GET /v1/fleet/heat", s.handleHeat)
	mux.HandleFunc("GET /v1/snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /v1/incidents", s.handleIncidents)
	mux.HandleFunc("GET /v1/incidents/{id}", s.handleIncident)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/trace/{id}", s.handleTrace)
	// pprof registers on the DefaultServeMux via init; the daemon serves an
	// explicit mux, so route the handlers by hand.
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

// apiError is the uniform error document.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, apiError{Error: err.Error()})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	defer func(t0 time.Time) {
		s.met.submitLatency.Observe(time.Since(t0).Seconds())
	}(time.Now())
	var req Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	j, err := s.Submit(req)
	switch {
	case errors.Is(err, ErrBusy):
		// Backpressure, not failure: the client should retry after the
		// queue has drained a little.
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrDraining):
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	status := http.StatusAccepted
	if j.Terminal() { // cache hit: already done
		status = http.StatusOK
	}
	writeJSON(w, status, j.View())
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	views := make([]JobView, len(jobs))
	for i, j := range jobs {
		views[i] = j.View()
	}
	writeJSON(w, http.StatusOK, views)
}

func (s *Service) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return nil, false
	}
	return j, true
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, j.View())
	}
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	if err := s.Cancel(j.ID); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, j.View())
}

func (s *Service) handleOutput(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	art := j.artifactRef()
	if art == nil {
		writeErr(w, http.StatusConflict, fmt.Errorf("job %s is %s; output exists once done", j.ID, j.View().State))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte(art.Rendered))
}

func (s *Service) handleFiles(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	art := j.artifactRef()
	if art == nil {
		writeErr(w, http.StatusConflict, fmt.Errorf("job %s is %s; files exist once done", j.ID, j.View().State))
		return
	}
	names := make([]string, len(art.Files))
	for i, f := range art.Files {
		names[i] = f.Name
	}
	writeJSON(w, http.StatusOK, names)
}

func (s *Service) handleFile(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	art := j.artifactRef()
	if art == nil {
		writeErr(w, http.StatusConflict, fmt.Errorf("job %s is %s; files exist once done", j.ID, j.View().State))
		return
	}
	name := r.PathValue("name")
	for _, f := range art.Files {
		if f.Name == name {
			w.Header().Set("Content-Type", "text/csv; charset=utf-8")
			_, _ = w.Write([]byte(f.Content))
			return
		}
	}
	writeErr(w, http.StatusNotFound, fmt.Errorf("job %s has no file %q", j.ID, name))
}

// Catalog is the daemon's work vocabulary.
type Catalog struct {
	Experiments    []string `json:"experiments"`
	Scenarios      []string `json:"scenarios"`
	SchedScenarios []string `json:"sched_scenarios"`
	Policies       []string `json:"policies"`
}

func (s *Service) handleCatalog(w http.ResponseWriter, r *http.Request) {
	cat := Catalog{Policies: scenario.PlacementPolicies}
	if s.cfg.Experiments.IDs != nil {
		cat.Experiments = s.cfg.Experiments.IDs()
	}
	for _, name := range scenario.Names() {
		cat.Scenarios = append(cat.Scenarios, name)
		if spec, ok := scenario.Get(name); ok && spec.Scheduler != nil {
			cat.SchedScenarios = append(cat.SchedScenarios, name)
		}
	}
	writeJSON(w, http.StatusOK, cat)
}

// Health is the liveness document.
type Health struct {
	Status   string `json:"status"`
	Draining bool   `json:"draining"`
}

func (s *Service) handleHealth(w http.ResponseWriter, r *http.Request) {
	h := Health{Status: "ok", Draining: s.Draining()}
	status := http.StatusOK
	if h.Draining {
		// Load balancers should stop routing here while we drain.
		h.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	s.met.reg.Render(&b)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}

// handleTrace serves a job's lifecycle/engine spans as Chrome trace-event
// JSON — load it in chrome://tracing or Perfetto, or via `dimctl trace`. The
// export is a snapshot; a running job serves its spans so far.
func (s *Service) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	raw, err := j.Trace().ChromeTrace()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(raw)
}

// handleHeat serves the live fleet heat-map. Default is SSE: one JSON
// HeatFrame per interval (?interval_ms, default 500, floor 100) until the
// client disconnects. ?once=1 returns a single frame as plain JSON — what
// `dimctl top -once` and scripted checks use.
func (s *Service) handleHeat(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("once") == "1" {
		writeJSON(w, http.StatusOK, s.clusterHeat(r.Context()))
		return
	}
	interval := 500 * time.Millisecond
	if ms := r.URL.Query().Get("interval_ms"); ms != "" {
		if n, err := strconv.Atoi(ms); err == nil && n >= 100 {
			interval = time.Duration(n) * time.Millisecond
		}
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		if _, err := fmt.Fprint(w, "event: heat\ndata: "); err != nil {
			return
		}
		if err := enc.Encode(s.clusterHeat(r.Context())); err != nil { // Encode appends \n
			return
		}
		if _, err := fmt.Fprint(w, "\n"); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		select {
		case <-ticker.C:
		case <-r.Context().Done():
			return
		}
	}
}

// handleStream serves the job's telemetry as NDJSON (default) or SSE (when
// the client prefers text/event-stream). It replays from the beginning,
// ?from=seq, or — for reconnecting SSE clients — the Last-Event-ID request
// header (resuming at that ID + 1, the EventSource contract; every SSE event
// carries an id: line so the browser can offer it back). It follows live
// until the job reaches a terminal state, and always ends with the terminal
// "done"/"error" event — so a reader can treat stream end as job completion.
func (s *Service) handleStream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream") ||
		r.URL.Query().Get("format") == "sse"
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	seq := 0
	if from := r.URL.Query().Get("from"); from != "" {
		if n, err := strconv.Atoi(from); err == nil && n >= 0 {
			seq = n
		}
	} else if last := r.Header.Get("Last-Event-ID"); last != "" {
		if n, err := strconv.Atoi(last); err == nil && n >= 0 {
			seq = n + 1
		}
	}
	t0 := time.Now()
	waitingFirst := true
	enc := json.NewEncoder(w)
	writeEvent := func(e Event) error {
		if sse {
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: ", e.Seq, e.Type); err != nil {
				return err
			}
			if err := enc.Encode(e); err != nil { // Encode appends \n
				return err
			}
			_, err := fmt.Fprint(w, "\n")
			return err
		}
		return enc.Encode(e)
	}
	for {
		events, next, closed, evicted := j.stream.since(seq)
		if evicted > 0 {
			// The gap takes the first evicted entry's sequence number, so
			// the stream stays strictly monotonic through it.
			if writeEvent(Event{Seq: seq, Type: "gap", Job: j.ID, Dropped: evicted}) != nil {
				return
			}
		}
		for _, e := range events {
			if writeEvent(e) != nil {
				return
			}
		}
		seq = next
		if flusher != nil {
			flusher.Flush()
		}
		if waitingFirst && (len(events) > 0 || evicted > 0) {
			// Time-to-first-event: what a subscriber waited before telemetry
			// started flowing.
			s.met.streamLatency.Observe(time.Since(t0).Seconds())
			waitingFirst = false
		}
		if closed {
			return
		}
		select {
		case <-j.stream.wait(seq):
		case <-r.Context().Done():
			return
		}
	}
}
