package service

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestParseRetryAfter pins both RFC 9110 forms of the header: delay-seconds
// (integers, tolerantly floats) and absolute HTTP-dates, with already-past
// and garbage values degrading to 0 so the computed backoff governs alone.
func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 8, 7, 0, 0, 0, time.UTC)
	cases := []struct {
		ra   string
		want time.Duration
	}{
		{"2", 2 * time.Second},
		{"0", 0},
		{"-3", 0},
		{"1.5", 1500 * time.Millisecond},
		{now.Add(90 * time.Second).Format(http.TimeFormat), 90 * time.Second},
		{now.Add(-time.Minute).Format(http.TimeFormat), 0}, // already past
		{now.Format(http.TimeFormat), 0},                   // exactly now: nothing left to wait
		{"Fri, 08 Aug 2026 07:00:30 GMT", 30 * time.Second},
		{"soon", 0},
		{"", 0},
	}
	for _, tc := range cases {
		if got := parseRetryAfter(tc.ra, now); got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", tc.ra, got, tc.want)
		}
	}
}

// TestRetryAfterHTTPDateHonored: a 429 carrying an HTTP-date Retry-After (the
// form proxies emit) must actually stretch the wait beyond the computed
// backoff, not be dropped as unparseable.
func TestRetryAfterHTTPDateHonored(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			// HTTP-dates carry 1-second resolution, so the smallest future
			// hint that survives formatting is ~1s out.
			w.Header().Set("Retry-After", time.Now().Add(1900*time.Millisecond).UTC().Format(http.TimeFormat))
			http.Error(w, `{"error":"busy"}`, http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	defer srv.Close()

	c := NewRetryClient(srv.URL, RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond})
	start := time.Now()
	var out map[string]bool
	if err := c.do(http.MethodGet, "/", nil, &out); err != nil {
		t.Fatalf("do through 429: %v", err)
	}
	// The backoff alone is <= 2ms; the observed wait must reflect the header.
	// Formatting floors the date to whole seconds, so the hint lands somewhere
	// in [900ms, 1.9s] — anything well above the backoff proves it was used.
	if waited := time.Since(start); waited < 500*time.Millisecond {
		t.Fatalf("retried after %v; HTTP-date Retry-After was ignored", waited)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d calls, want 2", got)
	}
}

// TestBackoffCapSaturation: the exponential schedule must clamp at MaxDelay
// for large attempt numbers — including the regime where the left shift
// overflows time.Duration — and jitter keeps every wait in [cap/2, cap).
func TestBackoffCapSaturation(t *testing.T) {
	c := NewRetryClient("http://unused", RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second})
	for _, attempt := range []int{4, 10, 40, 63, 64, 100} {
		d := c.backoff(attempt)
		if d < 500*time.Millisecond || d >= time.Second {
			t.Errorf("backoff(%d) = %v, want in [500ms, 1s) (cap saturation with jitter)", attempt, d)
		}
	}
	// Early attempts stay under the cap: attempt 1 jitters over [50ms, 100ms).
	if d := c.backoff(1); d < 50*time.Millisecond || d >= 100*time.Millisecond {
		t.Errorf("backoff(1) = %v, want in [50ms, 100ms)", d)
	}
}

// TestRetryCancelMidBackoff: cancelling the caller's context while the client
// sleeps between attempts must end the call promptly with the context error —
// not after the full backoff, and with no further attempts.
func TestRetryCancelMidBackoff(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"draining"}`, http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	c := NewRetryClient(srv.URL, RetryPolicy{MaxAttempts: 5, BaseDelay: 30 * time.Second, MaxDelay: time.Minute})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- c.withRetry(ctx, retryable, func(ctx context.Context) error {
			return c.doOnce(ctx, http.MethodGet, "/", nil, nil)
		})
	}()
	// Let the first attempt land and put the client into its 30s backoff.
	deadline := time.Now().Add(5 * time.Second)
	for calls.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled backoff returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancel did not interrupt the backoff sleep")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d attempts after cancel, want 1", got)
	}
}

// TestAttemptTimeoutRetries: a daemon that accepts the connection but never
// answers must become a per-attempt timeout that the next attempt survives —
// and the caller's own context must not be poisoned by the attempt deadline.
func TestAttemptTimeoutRetries(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	defer close(release)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			// First attempt: wedge until the test ends or the client gives up.
			select {
			case <-release:
			case <-r.Context().Done():
			}
			return
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	defer srv.Close()

	c := NewRetryClient(srv.URL, RetryPolicy{
		MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond,
		AttemptTimeout: 50 * time.Millisecond,
	})
	var out map[string]bool
	if err := c.do(http.MethodGet, "/", nil, &out); err != nil {
		t.Fatalf("do through wedged first attempt: %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d attempts, want 2 (one wedged, one served)", got)
	}
}

// TestAttemptTimeoutExhaustion: when every attempt wedges, the final error
// names the per-attempt timeout so the operator sees "the daemon hangs", not
// a bare context error.
func TestAttemptTimeoutExhaustion(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	defer srv.Close()

	c := NewRetryClient(srv.URL, RetryPolicy{
		MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond,
		AttemptTimeout: 30 * time.Millisecond,
	})
	err := c.do(http.MethodGet, "/", nil, nil)
	if err == nil {
		t.Fatal("permanently wedged daemon returned nil error")
	}
	if !strings.Contains(err.Error(), "attempt timed out after") {
		t.Fatalf("exhaustion error %q does not name the attempt timeout", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("exhaustion error %v does not unwrap to DeadlineExceeded", err)
	}
}
