package service_test

// Daemon-vs-CLI determinism: the acceptance bar for the serving layer is
// that going through dimd changes *where* a result is computed, never its
// bytes. These tests run library scenarios both ways — the CLI path
// (scenario/fleetsched Run + Export, exactly what `dimctl scenario run` and
// `dimctl scenario export` call) and the daemon path (HTTP submit, rendered
// output and file downloads) — and require byte equality.

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	dimetrodon "repro"
	"repro/internal/fleetsched"
	"repro/internal/scenario"
	"repro/internal/service"
)

// goldenScale matches the golden-trace fixtures' scale: big enough to
// exercise every engine seam, small enough for tier-1.
const goldenScale = 0.05

func newDaemon(t *testing.T) *service.Client {
	t.Helper()
	svc := dimetrodon.NewService(dimetrodon.ServiceConfig{Workers: 2, DefaultScale: goldenScale})
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = svc.Shutdown(ctx)
		srv.Close()
	})
	return service.NewClient(srv.URL)
}

func runRemote(t *testing.T, c *service.Client, req service.Request) service.JobView {
	t.Helper()
	v, err := c.Submit(req)
	if err != nil {
		t.Fatalf("submit %+v: %v", req, err)
	}
	final, err := c.Wait(context.Background(), v.ID)
	if err != nil {
		t.Fatalf("wait %s: %v", v.ID, err)
	}
	if final.State != service.StateDone {
		t.Fatalf("job %s finished %s: %s", final.ID, final.State, final.Error)
	}
	return final
}

// compareFiles downloads every daemon artefact and byte-compares it with the
// file of the same name the CLI export wrote into dir.
func compareFiles(t *testing.T, c *service.Client, job service.JobView, dir string, wantPaths []string) {
	t.Helper()
	if len(job.Files) != len(wantPaths) {
		t.Fatalf("daemon exported %d files %v, CLI exported %d %v",
			len(job.Files), job.Files, len(wantPaths), wantPaths)
	}
	for _, name := range job.Files {
		remote, err := c.File(job.ID, name)
		if err != nil {
			t.Fatalf("download %s: %v", name, err)
		}
		local, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("CLI export missing %s: %v", name, err)
		}
		if string(remote) != string(local) {
			t.Errorf("daemon artefact %s differs from the CLI export (remote %d bytes, local %d)",
				name, len(remote), len(local))
		}
	}
}

func TestDaemonScenarioByteIdenticalToCLI(t *testing.T) {
	const name = "fleet-diurnal"
	c := newDaemon(t)

	res, err := scenario.RunByName(name, goldenScale)
	if err != nil {
		t.Fatalf("local run: %v", err)
	}
	dir := t.TempDir()
	if _, err := scenario.Export(name, goldenScale, dir); err != nil {
		t.Fatalf("local export: %v", err)
	}
	paths, _ := filepath.Glob(filepath.Join(dir, "*"))

	job := runRemote(t, c, service.Request{Name: name, Scale: goldenScale})
	out, err := c.Output(job.ID)
	if err != nil {
		t.Fatalf("output: %v", err)
	}
	if out != res.String() {
		t.Errorf("daemon rendered output differs from `dimctl scenario run` body")
	}
	compareFiles(t, c, job, dir, paths)
}

func TestDaemonSchedByteIdenticalToCLI(t *testing.T) {
	const name = "sched-shootout"
	c := newDaemon(t)

	res, err := fleetsched.RunByName(name, "", goldenScale)
	if err != nil {
		t.Fatalf("local run: %v", err)
	}
	dir := t.TempDir()
	if _, err := fleetsched.Export(name, goldenScale, dir); err != nil {
		t.Fatalf("local export: %v", err)
	}
	paths, _ := filepath.Glob(filepath.Join(dir, "*"))

	job := runRemote(t, c, service.Request{Name: name, Scale: goldenScale})
	out, err := c.Output(job.ID)
	if err != nil {
		t.Fatalf("output: %v", err)
	}
	if out != res.String() {
		t.Errorf("daemon rendered output differs from `dimctl sched run` body")
	}
	compareFiles(t, c, job, dir, paths)

	// The cache answers the repeat submission with the same bytes.
	again := runRemote(t, c, service.Request{Name: name, Scale: goldenScale})
	if !again.CacheHit {
		t.Fatalf("identical sched submission missed the cache")
	}
	out2, _ := c.Output(again.ID)
	if out2 != out {
		t.Errorf("cached output differs from the original")
	}
}

func TestDaemonExperimentByteIdenticalToCLI(t *testing.T) {
	const id = "fig2"
	c := newDaemon(t)

	src := dimetrodon.ServiceExperiments()
	localOut, err := src.Run(id, goldenScale)
	if err != nil {
		t.Fatalf("local run: %v", err)
	}
	dir := t.TempDir()
	if _, err := dimetrodon.Export(id, dimetrodon.Scale(goldenScale), dir); err != nil {
		t.Fatalf("local export: %v", err)
	}
	paths, _ := filepath.Glob(filepath.Join(dir, "*"))

	job := runRemote(t, c, service.Request{Name: id, Scale: goldenScale})
	out, err := c.Output(job.ID)
	if err != nil {
		t.Fatalf("output: %v", err)
	}
	if out != localOut {
		t.Errorf("daemon rendered output differs from `dimctl run` body")
	}
	compareFiles(t, c, job, dir, paths)
}
