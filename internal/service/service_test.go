package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/export"
)

// tinySpec renders a minimal fast scenario: `machines` one-core burn
// machines for the floor duration (2 virtual seconds after scaling). seed
// differentiates content addresses — distinct seeds never share cache
// entries.
func tinySpec(name string, machines int, seed uint64) json.RawMessage {
	return fmt.Appendf(nil, `{
		"name": %q,
		"duration_s": 2,
		"fleet": {"machines": %d, "base_seed": %d},
		"machine": {"cores": 1},
		"workload": [{"kind": "burn", "threads": 1}]
	}`, name, machines, seed)
}

// slowSpec renders a scenario long enough to catch mid-run: exact
// integrator, multiple machines, hundreds of virtual seconds.
func slowSpec(name string) json.RawMessage {
	return []byte(fmt.Sprintf(`{
		"name": %q,
		"duration_s": 600,
		"fleet": {"machines": 8, "base_seed": 11},
		"machine": {"integrator": "exact"},
		"workload": [{"kind": "burn"}]
	}`, name))
}

// schedSpec renders a small scheduled scenario (several dispatch rounds).
func schedSpec(name string) json.RawMessage {
	return []byte(fmt.Sprintf(`{
		"name": %q,
		"duration_s": 20,
		"fleet": {"machines": 2, "base_seed": 5},
		"machine": {"cores": 1},
		"scheduler": {
			"round_s": 2,
			"jobs": [{"name": "small", "rate": 0.4, "work_s": 2}]
		}
	}`, name))
}

// newTestService boots a service with an httptest server in front and
// returns its client. Both are torn down with the test.
func newTestService(t *testing.T, cfg Config) (*Service, *Client) {
	t.Helper()
	svc := New(cfg)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = svc.Shutdown(ctx)
		srv.Close()
	})
	return svc, NewClient(srv.URL)
}

func TestSubmitStatusOutputExport(t *testing.T) {
	_, c := newTestService(t, Config{Workers: 2, DefaultScale: 1})

	v, err := c.Submit(Request{Spec: tinySpec("api-probe", 2, 1)})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if v.Kind != KindScenario || v.State == "" || v.Key == "" {
		t.Fatalf("unexpected submit view: %+v", v)
	}
	final, err := c.Wait(context.Background(), v.ID)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if final.State != StateDone {
		t.Fatalf("job finished %s (%s), want done", final.State, final.Error)
	}
	if final.SimSeconds <= 0 {
		t.Fatalf("done job reports no sim-seconds: %+v", final)
	}

	out, err := c.Output(v.ID)
	if err != nil {
		t.Fatalf("output: %v", err)
	}
	if !strings.Contains(out, "Scenario api-probe") {
		t.Fatalf("rendered output missing banner:\n%s", out)
	}

	files, err := c.Files(v.ID)
	if err != nil {
		t.Fatalf("files: %v", err)
	}
	want := []string{"scenario_api_probe_machines.csv", "scenario_api_probe_fleet.csv"}
	if len(files) != len(want) || files[0] != want[0] || files[1] != want[1] {
		t.Fatalf("files = %v, want %v", files, want)
	}
	data, err := c.File(v.ID, files[0])
	if err != nil {
		t.Fatalf("file: %v", err)
	}
	if !strings.HasPrefix(string(data), "machine,seed,") {
		t.Fatalf("machines CSV header missing:\n%s", data)
	}

	if _, err := c.Job("job-999999"); err == nil {
		t.Fatalf("unknown job did not 404")
	} else if se, ok := err.(*StatusError); !ok || se.Code != http.StatusNotFound {
		t.Fatalf("unknown job error = %v, want 404 StatusError", err)
	}
	if _, err := c.Submit(Request{Spec: []byte(`{"name":"bad"`)}); err == nil {
		t.Fatalf("malformed spec did not 400")
	}
	if _, err := c.Submit(Request{}); err == nil {
		t.Fatalf("empty request did not 400")
	}
	// Kind/ident mismatches are 400s at admission, never queued failures.
	if _, err := c.Submit(Request{Kind: KindExperiment, Spec: tinySpec("api-probe", 1, 1)}); err == nil {
		t.Fatalf("experiment kind with an inline spec did not 400")
	}
	if _, err := c.Submit(Request{Kind: KindSched, Spec: tinySpec("api-probe", 1, 1)}); err == nil {
		t.Fatalf("sched kind without a scheduler block did not 400")
	}
}

func TestCacheHitVsMiss(t *testing.T) {
	svc, c := newTestService(t, Config{Workers: 2, DefaultScale: 1})

	// Two spellings of the same spec (field order + explicit defaults) must
	// share one cache entry; a different seed must not.
	specA := tinySpec("cache-probe", 2, 7)
	specB := []byte(`{
		"workload": [{"kind": "burn", "threads": 1, "power_factor": 1}],
		"machine": {"cores": 1},
		"fleet": {"base_seed": 7, "machines": 2},
		"duration_s": 2,
		"violation_c": 70,
		"name": "cache-probe"
	}`)

	first, err := c.Submit(Request{Spec: specA})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if first.CacheHit {
		t.Fatalf("first submission hit the cache")
	}
	if _, err := c.Wait(context.Background(), first.ID); err != nil {
		t.Fatalf("wait: %v", err)
	}

	second, err := c.Submit(Request{Spec: specB})
	if err != nil {
		t.Fatalf("submit (permuted): %v", err)
	}
	if !second.CacheHit {
		t.Fatalf("permuted identical submission missed the cache (keys %s vs %s)", first.Key, second.Key)
	}
	if second.State != StateDone {
		t.Fatalf("cache hit not immediately done: %s", second.State)
	}
	outA, _ := c.Output(first.ID)
	outB, _ := c.Output(second.ID)
	if outA != outB || outA == "" {
		t.Fatalf("cache hit output differs from the original run")
	}

	miss, err := c.Submit(Request{Spec: tinySpec("cache-probe", 2, 8)})
	if err != nil {
		t.Fatalf("submit (different seed): %v", err)
	}
	if miss.CacheHit {
		t.Fatalf("different seed hit the cache")
	}
	if _, err := c.Wait(context.Background(), miss.ID); err != nil {
		t.Fatalf("wait: %v", err)
	}

	if hits := svc.cache.hits.Load(); hits != 1 {
		t.Fatalf("cache hits = %d, want 1", hits)
	}
	metrics, err := c.Metrics()
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	for _, want := range []string{"dimd_cache_hits_total 1", "dimd_jobs_submitted_total 3", "dimd_sim_seconds_total"} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

func TestSchedDefaultPolicySharesCacheEntry(t *testing.T) {
	_, c := newTestService(t, Config{Workers: 1, DefaultScale: 1})

	first, err := c.Submit(Request{Spec: schedSpec("policy-norm")})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if first.Policy != "coolest-first" {
		t.Fatalf("empty policy resolved to %q, want coolest-first", first.Policy)
	}
	if _, err := c.Wait(context.Background(), first.ID); err != nil {
		t.Fatalf("wait: %v", err)
	}
	// Spelling the spec's default explicitly is the same work.
	explicit, err := c.Submit(Request{Spec: schedSpec("policy-norm"), Policy: "coolest-first"})
	if err != nil {
		t.Fatalf("submit explicit: %v", err)
	}
	if !explicit.CacheHit {
		t.Fatalf("explicit default policy missed the cache (keys %s vs %s)", first.Key, explicit.Key)
	}
	// A different policy is different work.
	other, err := c.Submit(Request{Spec: schedSpec("policy-norm"), Policy: "random"})
	if err != nil {
		t.Fatalf("submit random: %v", err)
	}
	if other.CacheHit {
		t.Fatalf("different policy hit the cache")
	}
	if _, err := c.Wait(context.Background(), other.ID); err != nil {
		t.Fatalf("wait random: %v", err)
	}
}

func TestCancelMidRun(t *testing.T) {
	_, c := newTestService(t, Config{Workers: 1, DefaultScale: 1})

	v, err := c.Submit(Request{Spec: slowSpec("cancel-probe")})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		got, err := c.Job(v.ID)
		if err != nil {
			t.Fatalf("status: %v", err)
		}
		if got.State == StateRunning {
			break
		}
		if terminalState(got.State) {
			t.Fatalf("job reached %s before it could be cancelled mid-run", got.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started running")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ack, err := c.Cancel(v.ID)
	if err != nil {
		t.Fatalf("cancel: %v", err)
	}
	if ack.State == StateRunning && !ack.CancelRequested {
		t.Fatalf("cancel ack on a running job does not report cancel_requested: %+v", ack)
	}
	final, err := c.Wait(context.Background(), v.ID)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if final.State != StateCanceled {
		t.Fatalf("cancelled job finished %s, want canceled", final.State)
	}
	if final.CancelRequested {
		t.Fatalf("terminal job still reports cancel_requested")
	}
	if _, err := c.Output(v.ID); err == nil {
		t.Fatalf("cancelled job served an output")
	}
}

func TestCancelWhileQueued(t *testing.T) {
	_, c := newTestService(t, Config{Workers: 1, QueueDepth: 8, DefaultScale: 1})

	// Occupy the single worker, then queue a victim behind it.
	blocker, err := c.Submit(Request{Spec: slowSpec("cancel-blocker")})
	if err != nil {
		t.Fatalf("submit blocker: %v", err)
	}
	victim, err := c.Submit(Request{Spec: tinySpec("cancel-victim", 1, 1)})
	if err != nil {
		t.Fatalf("submit victim: %v", err)
	}
	if _, err := c.Cancel(victim.ID); err != nil {
		t.Fatalf("cancel victim: %v", err)
	}
	got, err := c.Job(victim.ID)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if got.State != StateCanceled {
		t.Fatalf("queued victim state %s, want canceled", got.State)
	}
	if _, err := c.Cancel(blocker.ID); err != nil {
		t.Fatalf("cancel blocker: %v", err)
	}
	if _, err := c.Wait(context.Background(), blocker.ID); err != nil {
		t.Fatalf("wait blocker: %v", err)
	}
}

// TestQueueSaturation drives 64 concurrent submissions into a deliberately
// small daemon: admissions beyond the queue bound must be refused with
// ErrBusy (429 + Retry-After over HTTP) — backpressure, not buffering — and
// every refused submission must succeed on retry once capacity frees up.
// Run under -race this doubles as the concurrency check on the
// queue/cache/stream state.
func TestQueueSaturation(t *testing.T) {
	const lanes = 64
	_, c := newTestService(t, Config{Workers: 2, QueueDepth: 4, DefaultScale: 1})

	// Pin both workers on slow jobs so the queue genuinely fills: with the
	// pool busy, at most QueueDepth tiny submissions can be admitted and
	// the rest must bounce with 429 + Retry-After.
	var blockers []string
	for i := 0; i < 2; i++ {
		v, err := c.Submit(Request{Spec: slowSpec(fmt.Sprintf("sat-blocker-%d", i))})
		if err != nil {
			t.Fatalf("submit blocker: %v", err)
		}
		blockers = append(blockers, v.ID)
	}
	waitState(t, c, blockers, StateRunning)

	var rejected atomic.Int64
	ids := make([]string, lanes)
	var wg sync.WaitGroup
	for i := 0; i < lanes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := Request{Spec: tinySpec("sat-probe", 1, uint64(1000+i))}
			for {
				v, err := c.Submit(req)
				if err == nil {
					ids[i] = v.ID
					return
				}
				if !IsBusy(err) {
					t.Errorf("lane %d: non-backpressure error: %v", i, err)
					return
				}
				rejected.Add(1)
				time.Sleep(10 * time.Millisecond)
			}
		}(i)
	}

	// Once backpressure has been observed, release the workers so the
	// rejected lanes' retries can land.
	deadline := time.Now().Add(10 * time.Second)
	for rejected.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	for _, id := range blockers {
		if _, err := c.Cancel(id); err != nil {
			t.Fatalf("cancel blocker: %v", err)
		}
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if rejected.Load() == 0 {
		t.Fatalf("64 lanes against queue depth 4 with pinned workers never saturated — admission control untested")
	}
	for i, id := range ids {
		final, err := c.Wait(context.Background(), id)
		if err != nil {
			t.Fatalf("wait lane %d: %v", i, err)
		}
		if final.State != StateDone {
			t.Fatalf("lane %d finished %s: %s", i, final.State, final.Error)
		}
	}
}

// waitState polls until every job has reached the wanted (or a terminal)
// state.
func waitState(t *testing.T, c *Client, ids []string, want string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for _, id := range ids {
		for {
			v, err := c.Job(id)
			if err != nil {
				t.Fatalf("status %s: %v", id, err)
			}
			if v.State == want || terminalState(v.State) {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s stuck in %s waiting for %s", id, v.State, want)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
}

// TestConcurrentAdmission64 is the acceptance-bar check: a production-shaped
// configuration admits 64 concurrent scenario submissions outright (no
// retries needed) and completes them all.
func TestConcurrentAdmission64(t *testing.T) {
	const lanes = 64
	_, c := newTestService(t, Config{Workers: 4, QueueDepth: lanes, DefaultScale: 1})

	ids := make([]string, lanes)
	var wg sync.WaitGroup
	for i := 0; i < lanes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := c.Submit(Request{Spec: tinySpec("herd-probe", 1, uint64(2000+i))})
			if err != nil {
				t.Errorf("lane %d: %v", i, err)
				return
			}
			ids[i] = v.ID
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for i, id := range ids {
		final, err := c.Wait(context.Background(), id)
		if err != nil {
			t.Fatalf("wait lane %d: %v", i, err)
		}
		if final.State != StateDone {
			t.Fatalf("lane %d finished %s: %s", i, final.State, final.Error)
		}
	}
}

func TestStreamSchedTelemetry(t *testing.T) {
	_, c := newTestService(t, Config{Workers: 1, DefaultScale: 1})

	v, err := c.Submit(Request{Spec: schedSpec("stream-probe")})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if v.Kind != KindSched {
		t.Fatalf("scheduler spec inferred kind %s, want sched", v.Kind)
	}
	var rounds, terminal int
	var lastSeq = -1
	err = c.Stream(context.Background(), v.ID, func(e Event) error {
		if e.Seq <= lastSeq {
			return fmt.Errorf("non-monotonic seq %d after %d", e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		switch e.Type {
		case "round":
			if e.Round == nil {
				return fmt.Errorf("round event without payload")
			}
			rounds++
		case "done", "error":
			terminal++
		}
		return nil
	})
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	if rounds == 0 {
		t.Fatalf("no round telemetry streamed")
	}
	if terminal != 1 {
		t.Fatalf("stream carried %d terminal events, want exactly 1", terminal)
	}
	// Replaying after completion yields the same events from the ring.
	var replayRounds int
	if err := c.Stream(context.Background(), v.ID, func(e Event) error {
		if e.Type == "round" {
			replayRounds++
		}
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if replayRounds != rounds {
		t.Fatalf("replay saw %d rounds, live saw %d", replayRounds, rounds)
	}
}

func TestStreamScenarioTelemetry(t *testing.T) {
	_, c := newTestService(t, Config{Workers: 1, DefaultScale: 1, TelemetryEvery: 5})

	spec := []byte(`{
		"name": "scn-telemetry",
		"duration_s": 10,
		"fleet": {"machines": 2, "base_seed": 9},
		"machine": {"cores": 1},
		"workload": [{"kind": "burn", "threads": 1}]
	}`)
	v, err := c.Submit(Request{Spec: spec})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var samples, completions int
	err = c.Stream(context.Background(), v.ID, func(e Event) error {
		switch e.Type {
		case "telemetry":
			if e.Machine == nil || e.Machine.MeanJunctionC <= 0 {
				return fmt.Errorf("telemetry event without a plausible payload: %+v", e)
			}
			samples++
		case "machine":
			completions++
		}
		return nil
	})
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	// 10 virtual seconds = 100 metric ticks; a sample every 5 ticks on each
	// of 2 machines = 40 samples.
	if samples != 40 {
		t.Fatalf("streamed %d telemetry samples, want 40", samples)
	}
	if completions != 2 {
		t.Fatalf("streamed %d machine completions, want 2", completions)
	}
}

func TestStreamSSEFormat(t *testing.T) {
	_, c := newTestService(t, Config{Workers: 1, DefaultScale: 1})
	v, err := c.Submit(Request{Spec: tinySpec("sse-probe", 1, 3)})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, err := c.Wait(context.Background(), v.ID); err != nil {
		t.Fatalf("wait: %v", err)
	}
	resp, err := c.HTTP.Get(c.Base + "/v1/jobs/" + v.ID + "/stream?format=sse")
	if err != nil {
		t.Fatalf("sse get: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type = %q", ct)
	}
	var body strings.Builder
	if _, err := io.Copy(&body, resp.Body); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !strings.Contains(body.String(), "event: done\ndata: {") {
		t.Fatalf("SSE framing missing:\n%s", body.String())
	}
}

func TestDrainRejectsAndCompletes(t *testing.T) {
	svc := New(Config{Workers: 1, QueueDepth: 8, DefaultScale: 1})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	c := NewClient(srv.URL)

	var ids []string
	for i := 0; i < 3; i++ {
		v, err := c.Submit(Request{Spec: tinySpec("drain-probe", 1, uint64(30+i))})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, v.ID)
	}

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		done <- svc.Shutdown(ctx)
	}()

	// Draining flips immediately; new submissions are refused with 503.
	deadline := time.Now().Add(5 * time.Second)
	for !svc.Draining() {
		if time.Now().After(deadline) {
			t.Fatalf("service never started draining")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := svc.Submit(Request{Spec: tinySpec("drain-late", 1, 99)}); err != ErrDraining {
		t.Fatalf("submit while draining = %v, want ErrDraining", err)
	}
	h, err := c.Health()
	if err != nil {
		t.Fatalf("health: %v", err)
	}
	if !h.Draining {
		t.Fatalf("healthz does not report draining: %+v", h)
	}

	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// Admitted work ran to completion during the drain.
	for _, id := range ids {
		j, err := svc.Job(id)
		if err != nil {
			t.Fatalf("job %s: %v", id, err)
		}
		if v := j.View(); v.State != StateDone {
			t.Fatalf("drained job %s state %s, want done", id, v.State)
		}
	}
}

func TestDrainTimeoutCancelsInFlight(t *testing.T) {
	svc := New(Config{Workers: 1, DefaultScale: 1})
	j, err := svc.Submit(Request{Spec: slowSpec("drain-slow")})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := svc.Shutdown(ctx); err == nil {
		t.Fatalf("shutdown of a busy daemon returned before the slow job could finish")
	}
	if v := j.View(); v.State != StateCanceled {
		t.Fatalf("in-flight job after drain timeout: %s, want canceled", v.State)
	}
}

func TestExperimentJobsViaSource(t *testing.T) {
	var runs atomic.Int64
	src := ExperimentSource{
		IDs: func() []string { return []string{"toy"} },
		Run: func(id string, scale float64) (string, error) {
			runs.Add(1)
			return fmt.Sprintf("toy experiment at scale %g\n", scale), nil
		},
		Render: func(id string, scale float64) ([]export.File, error) {
			return []export.File{{Name: "toy.csv", Content: "k,v\na,1\n"}}, nil
		},
	}
	_, c := newTestService(t, Config{Workers: 1, DefaultScale: 0.25, Experiments: src})

	v, err := c.Submit(Request{Name: "toy"})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if v.Kind != KindExperiment {
		t.Fatalf("kind = %s, want experiment", v.Kind)
	}
	final, err := c.Wait(context.Background(), v.ID)
	if err != nil || final.State != StateDone {
		t.Fatalf("wait: %v (state %s %s)", err, final.State, final.Error)
	}
	out, _ := c.Output(v.ID)
	if out != "toy experiment at scale 0.25\n" {
		t.Fatalf("output = %q", out)
	}
	// Cache hit: same experiment+scale re-runs nothing.
	again, err := c.Submit(Request{Name: "toy"})
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if !again.CacheHit || runs.Load() != 1 {
		t.Fatalf("experiment re-submission re-ran (hit=%v runs=%d)", again.CacheHit, runs.Load())
	}
	// Unknown names fail fast at admission.
	if _, err := c.Submit(Request{Name: "no-such-thing"}); err == nil {
		t.Fatalf("unknown name admitted")
	}
	cat, err := c.Catalog()
	if err != nil {
		t.Fatalf("catalog: %v", err)
	}
	if len(cat.Experiments) != 1 || cat.Experiments[0] != "toy" || len(cat.Scenarios) == 0 || len(cat.Policies) == 0 {
		t.Fatalf("catalog incomplete: %+v", cat)
	}
}

func TestStreamRingBoundsMemory(t *testing.T) {
	st := newStream(16)
	for i := 0; i < 100; i++ {
		st.append(Event{Type: "telemetry"})
	}
	events, next, _, evicted := st.since(0)
	if len(events) != 16 {
		t.Fatalf("ring holds %d events, want 16", len(events))
	}
	if evicted != 84 {
		t.Fatalf("evicted = %d, want 84", evicted)
	}
	if next != 100 {
		t.Fatalf("next = %d, want 100", next)
	}
	st.closeStream()
	st.append(Event{Type: "telemetry"}) // late hook fire: must not resurrect
	if st.Len() != 100 {
		t.Fatalf("append after close changed the stream")
	}
}

func TestCacheEvictionBudget(t *testing.T) {
	c := newCache(1000)
	big := &Artifact{Rendered: strings.Repeat("x", 400)}
	for i := 0; i < 5; i++ {
		c.put(fmt.Sprintf("k%d", i), big)
	}
	entries, bytes := c.stats()
	if bytes > 1000 {
		t.Fatalf("cache over budget: %d bytes", bytes)
	}
	if entries != 2 {
		t.Fatalf("entries = %d, want 2 under the budget", entries)
	}
	if _, ok := c.get("k0"); ok {
		t.Fatalf("oldest entry survived eviction")
	}
	if _, ok := c.get("k4"); !ok {
		t.Fatalf("newest entry evicted")
	}
	// Oversized artifacts are passed through, never retained.
	c.put("huge", &Artifact{Rendered: strings.Repeat("x", 2000)})
	if _, ok := c.get("huge"); ok {
		t.Fatalf("oversized artifact retained")
	}
}
