package service

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// cache is the content-addressed result store: canonical work key →
// completed artifact. It is a byte-budgeted LRU — identical submissions hit
// it and return instantly with bytes identical to the CLI path, and the
// budget bounds daemon memory no matter how many distinct specs pass
// through.
type cache struct {
	budget int64

	mu    sync.Mutex
	size  int64
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits   atomic.Int64
	misses atomic.Int64
}

type cacheEntry struct {
	key string
	art *Artifact
}

func newCache(budget int64) *cache {
	return &cache{
		budget: budget,
		ll:     list.New(),
		items:  map[string]*list.Element{},
	}
}

// get returns the cached artifact. Hit/miss accounting is the caller's:
// only an *admitted* submission counts (a lookup for a request that is then
// rejected with 429 never simulated anything, so it must not skew the
// miss counter).
func (c *cache) get(key string) (*Artifact, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).art, true
}

// put stores the artifact, evicting least-recently-used entries past the
// byte budget. Artifacts larger than the whole budget are not retained.
func (c *cache) put(key string, art *Artifact) {
	sz := art.size()
	if sz > c.budget {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		// Identical keys produce identical bytes; keep the incumbent.
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, art: art})
	c.size += sz
	for c.size > c.budget {
		back := c.ll.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.items, ent.key)
		c.size -= ent.art.size()
	}
}

// stats returns entry count and retained bytes.
func (c *cache) stats() (entries int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len(), c.size
}
