package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"

	"repro/internal/cluster"
	"repro/internal/faultinject"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/scenario"
)

// ShardRequest is the wire form of one shard dispatch: the full scenario spec
// (workers hold no catalog state — every dispatch is self-contained and
// independently reproducible), the scale, the machine range, and the indices
// the coordinator already has. Integrator pins the process-wide integrator
// override: a worker configured differently would compute different bytes, so
// it must refuse rather than silently diverge.
type ShardRequest struct {
	Spec       json.RawMessage `json:"spec"`
	Scale      float64         `json:"scale"`
	Shard      cluster.Shard   `json:"shard"`
	Skip       []int           `json:"skip,omitempty"`
	Integrator string          `json:"integrator,omitempty"`
	// Job is the coordinator's job ID — trace context propagated with the
	// dispatch. The worker tags its heat-map rows "<job>/s<shard>" (so a
	// coordinator can stitch a fleet-wide heat map) and returns its shard
	// spans on the terminal line for the coordinator to import under this
	// job's trace. Empty (an old coordinator) disables both; note the
	// DisallowUnknownFields decode means coordinators must not send this
	// field to pre-PR-10 workers — mixed-version clusters should upgrade
	// workers first.
	Job string `json:"job,omitempty"`
}

// shardLine is one NDJSON line of a shard result stream: a machine result, a
// mid-stream engine error, or the terminal confirmation. The terminal line is
// load-bearing — a stream that ends without one was cut, and the coordinator
// re-dispatches the missing machines.
type shardLine struct {
	Machine *scenario.MachineResult `json:"machine,omitempty"`
	Error   string                  `json:"error,omitempty"`
	Done    bool                    `json:"done,omitempty"`
	Count   int                     `json:"count,omitempty"`
	// Spans rides the terminal line: the worker's shard spans, exported for
	// the coordinator to stitch into the job's cluster-wide trace.
	Spans []obs.SpanRecord `json:"spans,omitempty"`
}

// handleShardRun executes one shard on this daemon for a remote coordinator,
// streaming NDJSON results as machines complete. Fault points (worker side):
// cluster.shard.stall swallows the request without a byte until the client
// hangs up (the coordinator sees a silent stall → lease expiry), and
// cluster.result.partial cuts the stream after the first machine without the
// terminal line (the coordinator sees truncation → redispatch-with-skip).
func (s *Service) handleShardRun(w http.ResponseWriter, r *http.Request) {
	if faultinject.Hit(faultinject.ClusterShardStall) {
		// A wedged worker behind a live TCP session: consume the request,
		// answer nothing, and hold on until the coordinator hangs up. The
		// explicit CloseNotify is load-bearing — with the response unstarted
		// the server runs no background read, so the request context alone
		// would never observe the coordinator's disconnect.
		_, _ = io.Copy(io.Discard, r.Body)
		if cn, ok := w.(http.CloseNotifier); ok {
			select {
			case <-cn.CloseNotify():
			case <-r.Context().Done():
			}
		} else {
			<-r.Context().Done()
		}
		return
	}
	if s.Draining() {
		writeErr(w, http.StatusServiceUnavailable, ErrDraining)
		return
	}
	var req ShardRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding shard request: %w", err))
		return
	}
	if req.Integrator != machine.IntegratorOverride() {
		writeErr(w, http.StatusConflict, fmt.Errorf(
			"integrator mismatch: coordinator wants %q, this worker runs %q — results would diverge",
			req.Integrator, machine.IntegratorOverride()))
		return
	}
	if !(req.Scale > 0) || req.Scale > MaxScale {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("scale %v outside (0,%v]", req.Scale, MaxScale))
		return
	}
	spec, err := scenario.Decode(req.Spec)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	partial := faultinject.Hit(faultinject.ClusterResultPartial)
	var (
		emu   sync.Mutex
		enc   = json.NewEncoder(w)
		count int
		cut   bool
	)
	// Trace context propagated on the dispatch: the worker records its own
	// shard spans (returned on the terminal line) and mirrors telemetry into
	// its local heat map under "<job>/s<shard>" so the coordinator's merged
	// frame covers the whole sharded fleet.
	tr := obs.NewTracer()
	spShard := tr.Start(fmt.Sprintf("shard-%02d", req.Shard.ID), "shard", req.Shard.ID)
	var heatKey string
	if req.Job != "" {
		heatKey = fmt.Sprintf("%s/s%d", req.Job, req.Shard.ID)
		defer s.heat.drop(heatKey)
	}
	_, err = scenario.RunShard(spec, req.Scale, req.Shard.From, req.Shard.To, req.Skip, scenario.RunOptions{
		Context:        ctx,
		TelemetryEvery: s.cfg.TelemetryEvery,
		OnTelemetry: func(sm scenario.MachineSample) {
			if heatKey != "" {
				s.heat.observeSample(heatKey, sm)
			}
		},
		OnMachine: func(m scenario.MachineResult) {
			emu.Lock()
			defer emu.Unlock()
			if cut {
				return
			}
			if enc.Encode(shardLine{Machine: &m}) != nil {
				cut = true
				cancel() // client gone: stop simulating for nobody
				return
			}
			count++
			if flusher != nil {
				flusher.Flush()
			}
			if partial {
				// Injected network fault: die mid-stream, terminal line never
				// sent. The machines already delivered stay delivered.
				cut = true
				cancel()
			}
		},
	})
	spShard.EndArgs(map[string]any{
		"from": req.Shard.From, "to": req.Shard.To,
		"skip": len(req.Skip), "machines": count,
	})
	emu.Lock()
	defer emu.Unlock()
	if cut {
		return // cut streams end without a terminal line, by design
	}
	if err != nil {
		// Mid-stream engine error: headers are long gone, so the error rides
		// the stream. The coordinator surfaces it as the attempt's failure.
		_ = enc.Encode(shardLine{Error: err.Error()})
		return
	}
	_ = enc.Encode(shardLine{Done: true, Count: count, Spans: tr.Records()})
	if flusher != nil {
		flusher.Flush()
	}
	s.met.cluServed.Add(1)
}

// handleClusterHealth is the worker heartbeat probe. The
// cluster.heartbeat.drop fault point makes a healthy worker answer 503 — how
// the chaos suite makes a coordinator mark a live worker unhealthy without
// killing it.
func (s *Service) handleClusterHealth(w http.ResponseWriter, r *http.Request) {
	if faultinject.Hit(faultinject.ClusterHeartbeatDrop) {
		writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("faultinject: heartbeat dropped"))
		return
	}
	if s.Draining() {
		writeErr(w, http.StatusServiceUnavailable, ErrDraining)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// ClusterStatus is the coordinator's worker-fleet status document.
type ClusterStatus struct {
	// Enabled reports whether this daemon runs in coordinator mode.
	Enabled bool `json:"enabled"`
	// Workers and Healthy count the static worker set and its live subset.
	Workers int `json:"workers"`
	Healthy int `json:"healthy"`
	// Detail is each worker's health/breaker/load snapshot, in config order.
	Detail []cluster.WorkerStatus `json:"detail,omitempty"`
}

func (s *Service) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.ClusterStatus())
}

// ClusterStatus snapshots the worker fleet; Enabled is false on single-node
// daemons and plain workers.
func (s *Service) ClusterStatus() ClusterStatus {
	if s.clu == nil {
		return ClusterStatus{}
	}
	mon := s.clu.Monitor()
	return ClusterStatus{
		Enabled: true,
		Workers: mon.WorkerCount(),
		Healthy: mon.HealthyCount(),
		Detail:  mon.Snapshot(),
	}
}
