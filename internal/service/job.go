package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/export"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/scenario"
)

// Job kinds — the vocabulary of Request.Kind. Empty is inferred: an inline
// or registered scenario routes to "scenario" or "sched" by the presence of
// its scheduler block, a name in the experiment table routes to
// "experiment".
const (
	KindExperiment   = "experiment"    // one paper harness by ID
	KindScenario     = "scenario"      // independent per-machine fleet
	KindSched        = "sched"         // scheduled fleet, one placement policy
	KindSchedCompare = "sched-compare" // scheduled fleet swept over all policies
)

// Job states.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// Request is one submission: what to simulate and at what scale. Exactly one
// of Name (a registered experiment/scenario) or Spec (an inline scenario
// document, the same JSON `internal/scenario` decodes) identifies the work.
type Request struct {
	// Kind is one of the Kind* constants; empty is inferred from Name/Spec.
	Kind string `json:"kind,omitempty"`
	// Name is a registered experiment ID or scenario name.
	Name string `json:"name,omitempty"`
	// Spec is an inline scenario spec; it is validated like any other.
	Spec json.RawMessage `json:"spec,omitempty"`
	// Policy overrides the placement policy for kind "sched".
	Policy string `json:"policy,omitempty"`
	// Scale is the experiment scale; 0 selects the daemon's default.
	Scale float64 `json:"scale,omitempty"`
	// Idempotent marks a retried submission: if a non-failed job with the
	// same content key is already tracked, it is returned instead of forking
	// a duplicate run. Determinism makes this safe — the duplicate would
	// produce identical bytes anyway.
	Idempotent bool `json:"idempotent,omitempty"`
}

// MaxScale bounds a submission's scale: a hostile request cannot ask for
// runs longer than 4x the paper's.
const MaxScale = 4.0

// resolved is a request after validation: the concrete work item plus its
// content address.
type resolved struct {
	kind   string
	expID  string
	spec   *scenario.Spec
	policy string
	scale  float64
	// key is the content address: identical resolved work always produces
	// identical bytes, so the cache can answer without re-simulating.
	key string
}

// resolve validates the request against the catalog and computes its content
// address. The key folds in everything that feeds the output bytes: the
// canonical spec hash (or experiment ID), the placement policy, the scale,
// and the process-wide integrator override.
func (s *Service) resolve(req Request) (*resolved, error) {
	r := &resolved{kind: req.Kind, policy: req.Policy, scale: req.Scale}
	if r.scale == 0 {
		r.scale = s.cfg.DefaultScale
	}
	if !(r.scale > 0) || r.scale > MaxScale {
		return nil, fmt.Errorf("scale %v outside (0,%v]", r.scale, MaxScale)
	}

	if len(req.Spec) > 0 {
		if req.Name != "" {
			return nil, fmt.Errorf("submit either name or spec, not both")
		}
		spec, err := scenario.Decode(req.Spec)
		if err != nil {
			return nil, err
		}
		r.spec = spec
	} else if req.Name != "" {
		if r.kind == KindExperiment || (r.kind == "" && s.isExperiment(req.Name)) {
			r.kind = KindExperiment
			r.expID = req.Name
			if !s.isExperiment(req.Name) {
				return nil, fmt.Errorf("unknown experiment %q", req.Name)
			}
		} else {
			spec, ok := scenario.Get(req.Name)
			if !ok {
				return nil, fmt.Errorf("unknown scenario %q", req.Name)
			}
			r.spec = spec
		}
	} else {
		return nil, fmt.Errorf("submit needs a name or an inline spec")
	}

	switch r.kind {
	case KindExperiment:
		if r.expID == "" {
			return nil, fmt.Errorf("experiment jobs take a name, not an inline spec")
		}
		if r.policy != "" {
			return nil, fmt.Errorf("policy does not apply to experiment jobs")
		}
	case "", KindScenario:
		// A scheduler block routes to the cross-machine engine under the
		// spec's default policy — exactly what `dimctl scenario run` does.
		if r.spec.Scheduler != nil {
			r.kind = KindSched
		} else {
			r.kind = KindScenario
			if r.policy != "" {
				return nil, fmt.Errorf("policy applies only to scheduled scenarios")
			}
		}
	case KindSched, KindSchedCompare:
		if r.spec.Scheduler == nil {
			return nil, fmt.Errorf("scenario %q has no scheduler block", r.spec.Name)
		}
	default:
		return nil, fmt.Errorf("unknown job kind %q", r.kind)
	}
	if r.kind == KindSched {
		if r.policy != "" && !scenario.ValidPlacementPolicy(r.policy) {
			return nil, fmt.Errorf("unknown placement policy %q (valid: %v)", r.policy, scenario.PlacementPolicies)
		}
		// Normalize to the effective policy, so "" and an explicit spelling
		// of the spec's default share one content address (they run the
		// same simulation and produce identical bytes).
		if r.policy == "" {
			r.policy = r.spec.Scheduler.Policy
		}
		if r.policy == "" {
			r.policy = scenario.PlaceCoolestFirst
		}
	}
	if r.kind == KindSchedCompare && r.policy != "" {
		return nil, fmt.Errorf("policy does not apply to sched-compare jobs (all policies run)")
	}

	var ident string
	if r.kind == KindExperiment {
		ident = "exp:" + r.expID
	} else {
		h, err := r.spec.Hash()
		if err != nil {
			return nil, err
		}
		ident = "spec:" + h
	}
	sum := sha256.Sum256(fmt.Appendf(nil, "%s|%s|%s|%g|%s",
		r.kind, ident, r.policy, r.scale, machine.IntegratorOverride()))
	r.key = hex.EncodeToString(sum[:])
	return r, nil
}

func (s *Service) isExperiment(name string) bool {
	if s.cfg.Experiments.IDs == nil {
		return false
	}
	for _, id := range s.cfg.Experiments.IDs() {
		if id == name {
			return true
		}
	}
	return false
}

// Artifact is one completed job's output: the rendered report (byte-identical
// to the matching dimctl run) and the plot-ready CSV artefacts
// (byte-identical to the matching dimctl export). SimSeconds is the virtual
// machine-time the run covered — the unit the /metrics throughput gauge
// counts.
type Artifact struct {
	Rendered   string
	Files      []export.File
	SimSeconds float64
}

// size is the artifact's retained-memory estimate for the cache budget.
func (a *Artifact) size() int64 {
	n := int64(len(a.Rendered))
	for _, f := range a.Files {
		n += int64(len(f.Name) + len(f.Content))
	}
	return n
}

// Job is one tracked submission. All mutable state is guarded by mu; the
// HTTP layer reads through View and the stream.
type Job struct {
	ID  string
	Key string

	kind   string
	name   string // experiment ID or scenario name
	policy string
	scale  float64

	res    *resolved
	stream *stream

	// trace records the job's lifecycle and engine spans; queueSpan is the
	// open "queue" span between admission and worker pickup. Both are safe
	// when zero (nil tracer no-ops), which recovered pre-tracing jobs rely on.
	trace     *obs.Tracer
	queueSpan obs.Span
	// enqueued is when the job actually entered the admission queue — for
	// recovered jobs that is boot time, not the original submission time, so
	// the queue-wait histogram measures this process's queue, not the outage.
	enqueued time.Time

	// recovered marks a job re-enqueued from the journal at boot;
	// checkpoint, when non-nil, is its surviving resume token. Both are set
	// single-threaded during recovery, before any worker runs.
	recovered  bool
	checkpoint *JobCheckpoint

	// machStates holds final per-machine thermal states captured through the
	// pure machine.Checkpoint() observer, for the fleet snapshot. Bounded:
	// only indices below maxSnapshotStates are kept, so the retained set is
	// deterministic regardless of completion order. Guarded by stMu (its own
	// lock — captures arrive concurrently from engine workers and must not
	// contend with the job's state lock).
	stMu       sync.Mutex
	machStates map[int]machine.State

	mu          sync.Mutex
	state       string
	err         string
	cacheHit    bool
	cancelAsked bool
	// degraded marks a clustered job that completed with at least one shard
	// run on the coordinator because no healthy worker could take it. The
	// result bytes are still correct (determinism), but the operator asked
	// for distributed execution and did not fully get it.
	degraded   bool
	submitted  time.Time
	started    time.Time
	finished   time.Time
	artifact   *Artifact
	cancelFunc func()
}

// JobView is the status document served over HTTP.
type JobView struct {
	ID       string  `json:"id"`
	Kind     string  `json:"kind"`
	Name     string  `json:"name,omitempty"`
	Policy   string  `json:"policy,omitempty"`
	Scale    float64 `json:"scale"`
	Key      string  `json:"key"`
	State    string  `json:"state"`
	CacheHit bool    `json:"cache_hit"`
	// Degraded reports a clustered run that fell back to local execution for
	// one or more shards (results are still byte-correct; capacity was not).
	Degraded bool `json:"degraded,omitempty"`
	// CancelRequested reports that a running job's context has been
	// cancelled but the engine has not yet reached its next cancellation
	// point (metric tick or round barrier).
	CancelRequested bool   `json:"cancel_requested,omitempty"`
	Error           string `json:"error,omitempty"`

	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`

	// Files lists the exportable artefact names once the job is done.
	Files []string `json:"files,omitempty"`
	// SimSeconds is the virtual machine-time simulated (0 until done).
	SimSeconds float64 `json:"sim_seconds,omitempty"`
	// Events is the number of telemetry events emitted so far.
	Events int `json:"events"`
}

// View snapshots the job for the API.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID: j.ID, Kind: j.kind, Name: j.name, Policy: j.policy,
		Scale: j.scale, Key: j.Key, State: j.state, CacheHit: j.cacheHit,
		Degraded:        j.degraded,
		CancelRequested: j.cancelAsked && !terminalState(j.state),
		Error:           j.err, SubmittedAt: j.submitted, Events: j.stream.Len(),
	}
	if !j.started.IsZero() {
		t := j.started
		v.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.FinishedAt = &t
	}
	if j.artifact != nil {
		v.SimSeconds = j.artifact.SimSeconds
		for _, f := range j.artifact.Files {
			v.Files = append(v.Files, f.Name)
		}
	}
	return v
}

// markDegraded records that this job's clustered run fell back to local
// execution for at least one shard.
func (j *Job) markDegraded() {
	j.mu.Lock()
	j.degraded = true
	j.mu.Unlock()
}

// Terminal reports whether the job has reached a final state.
func (j *Job) Terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return terminalState(j.state)
}

func terminalState(st string) bool {
	return st == StateDone || st == StateFailed || st == StateCanceled
}

// artifactRef returns the completed artifact, if any.
func (j *Job) artifactRef() *Artifact {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.artifact
}

// Trace returns the job's tracer; nil when the job predates tracing (restored
// terminal jobs). Safe to export concurrently with a running job — the tracer
// snapshots.
func (j *Job) Trace() *obs.Tracer { return j.trace }

// maxSnapshotStates bounds per-job retained machine states: the first
// maxSnapshotStates fleet indices tell the thermal story, and keeping a
// fixed index range (rather than first-N-to-finish) keeps the retained set
// deterministic under concurrent completion.
const maxSnapshotStates = 64

// captureState retains one machine's final thermal state for the fleet
// snapshot. It is the RunOptions.OnState hook — a pure observation of
// machine.Checkpoint(), so capturing never perturbs the run.
func (j *Job) captureState(index int, st machine.State) {
	if index < 0 || index >= maxSnapshotStates {
		return
	}
	j.stMu.Lock()
	if j.machStates == nil {
		j.machStates = make(map[int]machine.State, maxSnapshotStates)
	}
	j.machStates[index] = st
	j.stMu.Unlock()
}

// MachineStateSnap is one retained machine state in a job's snapshot entry.
type MachineStateSnap struct {
	Index int           `json:"index"`
	State machine.State `json:"state"`
}

// statesSnapshot renders the retained machine states index-sorted.
func (j *Job) statesSnapshot() []MachineStateSnap {
	j.stMu.Lock()
	defer j.stMu.Unlock()
	if len(j.machStates) == 0 {
		return nil
	}
	out := make([]MachineStateSnap, 0, len(j.machStates))
	for i, st := range j.machStates {
		out = append(out, MachineStateSnap{Index: i, State: st})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Index < out[b].Index })
	return out
}
