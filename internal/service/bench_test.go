package service

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"
)

// BenchmarkServiceSubmit measures the daemon's serving hot paths over real
// HTTP (httptest loopback): "hit" is the content-addressed fast path an
// identical submission takes (decode → canonical hash → cache → response,
// no simulation), "cold" the full submit→simulate→complete round-trip of a
// minimal scenario. scripts/loadtest.sh records both alongside its
// concurrent-throughput numbers.
func BenchmarkServiceSubmit(b *testing.B) {
	newBenchService := func(b *testing.B) *Client {
		b.Helper()
		svc := New(Config{Workers: 2, DefaultScale: 1})
		srv := httptest.NewServer(svc.Handler())
		b.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = svc.Shutdown(ctx)
			srv.Close()
		})
		return NewClient(srv.URL)
	}

	b.Run("hit", func(b *testing.B) {
		c := newBenchService(b)
		req := Request{Spec: tinySpec("bench-hit", 1, 42)}
		v, err := c.Submit(req)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Wait(context.Background(), v.ID); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v, err := c.Submit(req)
			if err != nil {
				b.Fatal(err)
			}
			if !v.CacheHit {
				b.Fatalf("iteration %d missed the cache", i)
			}
		}
	})

	b.Run("cold", func(b *testing.B) {
		c := newBenchService(b)
		for i := 0; i < b.N; i++ {
			v, err := c.Submit(Request{Spec: tinySpec("bench-cold", 1, uint64(100000+i))})
			if err != nil {
				b.Fatal(err)
			}
			final, err := c.Wait(context.Background(), v.ID)
			if err != nil {
				b.Fatal(err)
			}
			if final.State != StateDone {
				b.Fatalf("job finished %s: %s", final.State, final.Error)
			}
		}
	})
}

// BenchmarkServiceStream measures a full submit→stream-to-completion pass of
// a scheduled scenario (round telemetry flowing over the wire).
func BenchmarkServiceStream(b *testing.B) {
	svc := New(Config{Workers: 2, DefaultScale: 1})
	srv := httptest.NewServer(svc.Handler())
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = svc.Shutdown(ctx)
		srv.Close()
	})
	c := NewClient(srv.URL)
	for i := 0; i < b.N; i++ {
		v, err := c.Submit(Request{Spec: schedSpec(fmt.Sprintf("bench-stream-%d", i%8))})
		if err != nil {
			b.Fatal(err)
		}
		rounds := 0
		if err := c.Stream(context.Background(), v.ID, func(e Event) error {
			if e.Type == "round" {
				rounds++
			}
			return nil
		}); err != nil {
			b.Fatal(err)
		}
		if i >= 8 && rounds != 0 {
			// After the first 8 distinct specs every further submission is
			// a cache hit: the stream replays state+done only.
			b.Fatalf("cache-hit stream carried %d round events", rounds)
		}
	}
}
