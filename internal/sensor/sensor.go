// Package sensor emulates the on-die digital thermal sensors (DTS) exposed by
// the FreeBSD coretemp(4) driver the paper used for its reported results.
//
// Real DTS readings are quantised to one degree Celsius and refresh at a
// bounded rate; the experiment harness computes its headline metrics from the
// continuous simulator ground truth, but traces and tests also exercise the
// quantised observable so the pipeline matches what the paper could actually
// see.
package sensor

import (
	"math"

	"repro/internal/units"
)

// DTS models a single core's digital thermal sensor.
type DTS struct {
	// Resolution is the quantisation step; coretemp reports whole degrees.
	Resolution units.Celsius
	// UpdateEvery is the minimum interval between refreshes of the
	// reported value; reads between refreshes return the held value.
	UpdateEvery units.Time
	// TjMax saturates the reading, as the hardware's PROCHOT ceiling does.
	TjMax units.Celsius

	lastUpdate units.Time
	held       units.Celsius
	primed     bool
}

// NewCoretemp returns a sensor configured like the paper's testbed: 1 °C
// resolution, 1 ms refresh, 100 °C TjMax.
func NewCoretemp() *DTS {
	return &DTS{Resolution: 1, UpdateEvery: units.Millisecond, TjMax: 100}
}

// Read returns the sensor's reported temperature at virtual time now, given
// the true junction temperature. The value is quantised to Resolution and
// held between refresh intervals.
func (d *DTS) Read(now units.Time, actual units.Celsius) units.Celsius {
	if !d.primed || now-d.lastUpdate >= d.UpdateEvery {
		d.held = d.quantise(actual)
		d.lastUpdate = now
		d.primed = true
	}
	return d.held
}

func (d *DTS) quantise(t units.Celsius) units.Celsius {
	if d.TjMax > 0 && t > d.TjMax {
		t = d.TjMax
	}
	res := d.Resolution
	if res <= 0 {
		return t
	}
	steps := math.Floor(float64(t)/float64(res) + 0.5)
	return units.Celsius(steps) * res
}
