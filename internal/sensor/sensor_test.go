package sensor

import (
	"testing"

	"repro/internal/units"
)

func TestQuantisation(t *testing.T) {
	d := NewCoretemp()
	if got := d.Read(0, 44.4); got != 44 {
		t.Errorf("Read(44.4) = %v", got)
	}
	d2 := NewCoretemp()
	if got := d2.Read(0, 44.6); got != 45 {
		t.Errorf("Read(44.6) = %v", got)
	}
}

func TestHoldBetweenUpdates(t *testing.T) {
	d := NewCoretemp()
	first := d.Read(0, 40)
	// 0.5 ms later the true temperature moved, but the DTS refreshes at
	// 1 ms: the held value must be returned.
	if got := d.Read(500*units.Microsecond, 70); got != first {
		t.Errorf("held read = %v, want %v", got, first)
	}
	if got := d.Read(units.Millisecond, 70); got != 70 {
		t.Errorf("post-refresh read = %v, want 70", got)
	}
}

func TestTjMaxSaturation(t *testing.T) {
	d := NewCoretemp()
	if got := d.Read(0, 250); got != 100 {
		t.Errorf("saturated read = %v, want TjMax 100", got)
	}
}

func TestZeroResolutionPassesThrough(t *testing.T) {
	d := &DTS{Resolution: 0, UpdateEvery: 0, TjMax: 0}
	if got := d.Read(0, 44.37); got != 44.37 {
		t.Errorf("unquantised read = %v", got)
	}
}

func TestCustomResolution(t *testing.T) {
	d := &DTS{Resolution: 0.5, UpdateEvery: 0}
	if got := d.Read(0, 44.3); got != 44.5 {
		t.Errorf("0.5C quantised read = %v, want 44.5", got)
	}
}
