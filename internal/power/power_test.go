package power

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/trace"
	"repro/internal/units"
)

func TestAccumulator(t *testing.T) {
	var a Accumulator
	a.Add(10, 2*units.Second)
	a.Add(30, units.Second)
	if got := float64(a.Energy()); math.Abs(got-50) > 1e-9 {
		t.Errorf("Energy = %v", got)
	}
	if a.Span() != 3*units.Second {
		t.Errorf("Span = %v", a.Span())
	}
	if got := float64(a.MeanPower()); math.Abs(got-50.0/3) > 1e-9 {
		t.Errorf("MeanPower = %v", got)
	}
	a.Reset()
	if a.Energy() != 0 || a.Span() != 0 || a.MeanPower() != 0 {
		t.Error("Reset incomplete")
	}
}

func TestAccumulatorNegativeDurationPanics(t *testing.T) {
	var a Accumulator
	defer func() {
		if recover() == nil {
			t.Error("negative duration did not panic")
		}
	}()
	a.Add(10, -units.Second)
}

func TestMeterSampleCadence(t *testing.T) {
	cfg := MeterConfig{SamplePeriod: units.Millisecond / 3}
	s := trace.NewSeries("p", "W")
	m := NewMeter(cfg, rng.New(1), s)
	m.Observe(0, 10*units.Millisecond, 50)
	// 3 samples per ms over 10 ms; the 1/3 ms period truncates to
	// 333333 ns, so grid point 30 (9.99999 ms) still lands inside.
	if got := m.Samples(); got != 31 {
		t.Errorf("samples = %d, want 31", got)
	}
	if s.Len() != 31 {
		t.Errorf("series samples = %d", s.Len())
	}
}

func TestMeterNoiseFreeExactness(t *testing.T) {
	cfg := MeterConfig{SamplePeriod: units.Millisecond, GainError: 0, NoiseSD: 0}
	m := NewMeter(cfg, rng.New(1), nil)
	m.Observe(0, units.Second, 60)
	if g := m.Gain(); g != 1 {
		t.Errorf("gain = %v", g)
	}
	got := float64(m.MeasuredEnergy())
	if math.Abs(got-60) > 1e-9 {
		t.Errorf("measured = %v, want 60 J", got)
	}
}

func TestMeterGainWithinBounds(t *testing.T) {
	cfg := DefaultMeterConfig()
	for seed := uint64(0); seed < 50; seed++ {
		m := NewMeter(cfg, rng.New(seed), nil)
		if g := m.Gain(); g < 1-cfg.GainError || g > 1+cfg.GainError {
			t.Fatalf("seed %d: gain %v outside ±%v", seed, g, cfg.GainError)
		}
	}
}

func TestMeterMeasuredTracksTruth(t *testing.T) {
	cfg := DefaultMeterConfig()
	m := NewMeter(cfg, rng.New(7), nil)
	var truth Accumulator
	at := units.Time(0)
	for i := 0; i < 1000; i++ {
		p := units.Watts(40 + float64(i%5)*10)
		dt := 3 * units.Millisecond
		m.Observe(at, at+dt, p)
		truth.Add(p, dt)
		at += dt
	}
	ratio := float64(m.MeasuredEnergy()) / float64(truth.Energy())
	// Within gain error plus a little sampling noise.
	if ratio < 1-cfg.GainError-0.01 || ratio > 1+cfg.GainError+0.01 {
		t.Errorf("measured/true = %v", ratio)
	}
}

func TestMeterSpansShorterThanPeriod(t *testing.T) {
	cfg := MeterConfig{SamplePeriod: units.Millisecond}
	m := NewMeter(cfg, rng.New(1), nil)
	// Feed 10 spans of 200 µs each: exactly 2 samples expected (at 0 and 1 ms).
	at := units.Time(0)
	for i := 0; i < 10; i++ {
		m.Observe(at, at+200*units.Microsecond, 10)
		at += 200 * units.Microsecond
	}
	if got := m.Samples(); got != 2 {
		t.Errorf("samples = %d, want 2", got)
	}
}

func TestMeterEmptySpan(t *testing.T) {
	m := NewMeter(DefaultMeterConfig(), rng.New(1), nil)
	m.Observe(units.Second, units.Second, 10)
	m.Observe(2*units.Second, units.Second, 10)
	if m.Samples() != 0 {
		t.Error("degenerate spans produced samples")
	}
}

func TestMeterDefaultPeriodFallback(t *testing.T) {
	m := NewMeter(MeterConfig{}, rng.New(1), nil)
	m.Observe(0, units.Millisecond, 10)
	// Grid points 0, 333333, 666666 and 999999 ns all fall within 1 ms.
	if m.Samples() != 4 {
		t.Errorf("default period samples = %d, want 4", m.Samples())
	}
}
