// Package power provides energy accounting and the measurement-instrument
// emulation for the testbed: the paper measured processor power by clamping a
// Fluke i410 current probe (≈3.5 % accuracy) around the CPU power leads and
// sampling it three times per millisecond with a Keithley 2701 multimeter.
//
// Two views of the same signal are offered: an exact Accumulator integrating
// ground-truth power (used for invariant tests and the energy model
// validation), and a Meter producing the noisy, discretely sampled trace an
// experimenter would actually record.
package power

import (
	"repro/internal/rng"
	"repro/internal/trace"
	"repro/internal/units"
)

// Accumulator integrates power over virtual time exactly.
type Accumulator struct {
	total units.Joules
	span  units.Time
}

// Add records that power p was drawn for duration dt.
func (a *Accumulator) Add(p units.Watts, dt units.Time) {
	if dt < 0 {
		panic("power: negative duration")
	}
	a.total += units.Energy(p, dt)
	a.span += dt
}

// Energy returns the integrated energy.
func (a *Accumulator) Energy() units.Joules { return a.total }

// Span returns the total integrated duration.
func (a *Accumulator) Span() units.Time { return a.span }

// MeanPower returns total energy divided by total time (0 for an empty
// accumulator).
func (a *Accumulator) MeanPower() units.Watts {
	if a.span <= 0 {
		return 0
	}
	return units.Watts(float64(a.total) / a.span.Seconds())
}

// Reset clears the accumulator.
func (a *Accumulator) Reset() { a.total, a.span = 0, 0 }

// MeterConfig describes the instrument chain.
type MeterConfig struct {
	// SamplePeriod is the time between samples; the testbed recorded
	// three samples per millisecond.
	SamplePeriod units.Time
	// GainError is the maximum relative calibration error of the clamp;
	// a fixed gain is drawn uniformly from [1−GainError, 1+GainError] per
	// meter instance, matching how a physical clamp is miscalibrated once
	// rather than per reading.
	GainError float64
	// NoiseSD is the standard deviation of additive per-sample noise in
	// watts (quantisation plus pickup).
	NoiseSD float64
	// Disabled switches the instrument chain off entirely: Observe becomes
	// a no-op and no samples are drawn. Experiment harnesses that never
	// read the measured trace or energy set this to skip the 3 kHz noise
	// draws, which otherwise dominate simulation cost. The meter's RNG is
	// an independent substream, so disabling it cannot perturb any other
	// stochastic component.
	Disabled bool
}

// DefaultMeterConfig mirrors the paper's instruments: 3 samples/ms and a
// ±3.5 % clamp.
func DefaultMeterConfig() MeterConfig {
	return MeterConfig{
		SamplePeriod: units.Millisecond / 3,
		GainError:    0.035,
		NoiseSD:      0.25,
	}
}

// Meter emulates the clamp + multimeter chain. Feed it ground-truth power
// over spans of virtual time with Observe; it produces discrete noisy samples
// into a trace series and integrates measured energy.
type Meter struct {
	cfg    MeterConfig
	gain   float64
	rng    *rng.Source
	series *trace.Series

	nextSample units.Time
	measured   units.Joules
	nsamples   int
}

// NewMeter returns a meter writing samples into series (may be nil to only
// integrate). The gain error is drawn from r at construction.
func NewMeter(cfg MeterConfig, r *rng.Source, series *trace.Series) *Meter {
	if cfg.SamplePeriod <= 0 {
		cfg.SamplePeriod = DefaultMeterConfig().SamplePeriod
	}
	gain := 1.0
	if cfg.GainError > 0 {
		gain = 1 + cfg.GainError*(2*r.Float64()-1)
	}
	return &Meter{cfg: cfg, gain: gain, rng: r, series: series}
}

// Gain returns the calibration gain drawn for this meter instance.
func (m *Meter) Gain() float64 { return m.gain }

// Observe tells the meter that the ground-truth power was p over [from, to).
// The meter emits samples at its sampling grid points within the span; each
// sample is gain·p plus noise. Spans may be of any length, including shorter
// than the sampling period.
func (m *Meter) Observe(from, to units.Time, p units.Watts) {
	if m.cfg.Disabled || to <= from {
		return
	}
	if m.nextSample < from {
		m.nextSample = from
	}
	for m.nextSample < to {
		v := float64(p) * m.gain
		if m.cfg.NoiseSD > 0 {
			v += m.cfg.NoiseSD * m.rng.NormFloat64()
		}
		if m.series != nil {
			m.series.Append(m.nextSample, v)
		}
		m.measured += units.Energy(units.Watts(v), m.cfg.SamplePeriod)
		m.nsamples++
		m.nextSample += m.cfg.SamplePeriod
	}
}

// MeasuredEnergy returns the energy integral as the instrument would report
// it: mean of samples times elapsed time (here: sample sum times period).
func (m *Meter) MeasuredEnergy() units.Joules { return m.measured }

// Samples returns the number of samples taken.
func (m *Meter) Samples() int { return m.nsamples }
