// Package faultinject is the adversarial test harness's trigger registry:
// named fault points compiled into durability-critical code paths (WAL
// fsync, checkpoint rename, worker execution) that stay inert in production
// and fire deterministically when armed.
//
// Arming is explicit — the DIMD_FAULTS environment variable (read by
// cmd/dimd via ConfigureFromEnv) or a test's Configure call — and uses a
// hit-count spec so a fault can be aimed at exactly the nth traversal of a
// point:
//
//	DIMD_FAULTS="wal.fsync:3"            fail the 3rd WAL fsync
//	DIMD_FAULTS="wal.partial"            truncate the 1st WAL record write
//	DIMD_FAULTS="worker.panic:2"         panic the 2nd job execution
//	DIMD_FAULTS="checkpoint.kill"        kill -9 the process mid-checkpoint
//	                                     (between temp-file write and rename)
//
// Multiple points are comma-separated. The fast path is a single atomic
// load when nothing is armed, so instrumented code costs nothing in
// production.
package faultinject

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Well-known fault points. Instrumented code references these constants;
// the chaos suite arms them.
const (
	// WALFsync makes the journal's next (or nth) fsync report an error —
	// the disk lying about durability.
	WALFsync = "wal.fsync"
	// WALPartial truncates the next (or nth) WAL record to half its bytes
	// before it reaches the file — a torn write at the journal tail.
	WALPartial = "wal.partial"
	// WorkerPanic panics inside the next (or nth) job execution — a bug in
	// an engine taking down a worker goroutine.
	WorkerPanic = "worker.panic"
	// CheckpointKill exits the process with SIGKILL semantics (exit code
	// 137, no deferred cleanup) between a checkpoint's temp-file write and
	// its atomic rename — the torn-checkpoint window.
	CheckpointKill = "checkpoint.kill"

	// Network-class fault points for the distributed tier. All three fire on
	// the worker side of a coordinator/worker pair, modelling the failure the
	// coordinator must survive, not cause.

	// ClusterHeartbeatDrop makes a worker answer its next (or nth) health
	// probe with 503 — a dropped heartbeat on an otherwise healthy node.
	ClusterHeartbeatDrop = "cluster.heartbeat.drop"
	// ClusterShardStall freezes a worker's next (or nth) shard stream after
	// the fault fires: results stop flowing and the terminal line never
	// arrives, holding the connection open until the coordinator's lease
	// expires and cancels it — a wedged process behind a live TCP session.
	ClusterShardStall = "cluster.shard.stall"
	// ClusterResultPartial cuts a worker's next (or nth) shard stream short:
	// the connection closes mid-stream without the terminal line — a crash
	// or network partition that truncates the response.
	ClusterResultPartial = "cluster.result.partial"

	// SLOBreach forces the next (or nth) SLO evaluation to report a breach —
	// a violation storm without having to out-heat the thermal model. The
	// incident-replay CI job arms it to deterministically trigger the flight
	// recorder's auto-dump path.
	SLOBreach = "slo.breach"
)

// armed is non-zero while any point is configured; the zero fast path makes
// Hit free in production.
var armed atomic.Int32

var (
	mu     sync.Mutex
	points map[string]*point
)

type point struct {
	// fireAt is the 1-based hit count the fault triggers on; hits counts
	// traversals so far. A triggered point disarms (one shot).
	fireAt int
	hits   int
	fired  bool
}

// Configure arms the given spec, replacing any previous configuration.
// Spec syntax: "point[:n][,point[:n]...]"; empty disarms everything.
func Configure(spec string) error {
	mu.Lock()
	defer mu.Unlock()
	points = nil
	armed.Store(0)
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil
	}
	pts := map[string]*point{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, nStr, hasN := strings.Cut(part, ":")
		n := 1
		if hasN {
			v, err := strconv.Atoi(nStr)
			if err != nil || v < 1 {
				return fmt.Errorf("faultinject: bad hit count %q in %q", nStr, part)
			}
			n = v
		}
		pts[name] = &point{fireAt: n}
	}
	points = pts
	if len(pts) > 0 {
		armed.Store(1)
	}
	return nil
}

// ConfigureFromEnv arms from DIMD_FAULTS. A malformed spec is returned as an
// error so the daemon can refuse to start half-armed.
func ConfigureFromEnv() error {
	return Configure(os.Getenv("DIMD_FAULTS"))
}

// Reset disarms every point (test teardown).
func Reset() { _ = Configure("") }

// Hit records a traversal of the named point and reports whether the fault
// fires on this traversal. Each armed point fires exactly once.
func Hit(name string) bool {
	if armed.Load() == 0 {
		return false
	}
	mu.Lock()
	defer mu.Unlock()
	p, ok := points[name]
	if !ok || p.fired {
		return false
	}
	p.hits++
	if p.hits >= p.fireAt {
		p.fired = true
		return true
	}
	return false
}

// Crash exits the process abruptly (exit code 137, mimicking kill -9: no
// deferred cleanup, no flushes) if the named point fires on this traversal.
func Crash(name string) {
	if Hit(name) {
		// Bypass any atexit machinery: this models a power cut.
		os.Exit(137)
	}
}

// Error returns a synthetic fault error if the named point fires on this
// traversal, nil otherwise.
func Error(name string) error {
	if Hit(name) {
		return fmt.Errorf("faultinject: injected fault at %s", name)
	}
	return nil
}
