package faultinject

import "testing"

func TestDisarmedIsFree(t *testing.T) {
	Reset()
	for i := 0; i < 100; i++ {
		if Hit(WALFsync) {
			t.Fatal("disarmed point fired")
		}
	}
	if err := Error(WALPartial); err != nil {
		t.Fatalf("disarmed Error: %v", err)
	}
}

func TestHitCountTargeting(t *testing.T) {
	defer Reset()
	if err := Configure("wal.fsync:3"); err != nil {
		t.Fatal(err)
	}
	if Hit(WALFsync) || Hit(WALFsync) {
		t.Fatal("fired before the 3rd hit")
	}
	if !Hit(WALFsync) {
		t.Fatal("did not fire on the 3rd hit")
	}
	if Hit(WALFsync) {
		t.Fatal("fired twice (points are one-shot)")
	}
}

func TestMultiplePoints(t *testing.T) {
	defer Reset()
	if err := Configure("wal.partial, worker.panic:2"); err != nil {
		t.Fatal(err)
	}
	if !Hit(WALPartial) {
		t.Fatal("wal.partial should fire on first hit")
	}
	if Hit(WorkerPanic) {
		t.Fatal("worker.panic fired early")
	}
	if !Hit(WorkerPanic) {
		t.Fatal("worker.panic should fire on 2nd hit")
	}
	if Hit(WALFsync) {
		t.Fatal("unconfigured point fired")
	}
}

func TestBadSpec(t *testing.T) {
	defer Reset()
	if err := Configure("wal.fsync:zero"); err == nil {
		t.Fatal("want error for non-numeric count")
	}
	if err := Configure("wal.fsync:0"); err == nil {
		t.Fatal("want error for zero count")
	}
	// A failed Configure leaves everything disarmed.
	if Hit(WALFsync) {
		t.Fatal("point armed after failed Configure")
	}
}

func TestErrorHelper(t *testing.T) {
	defer Reset()
	if err := Configure("wal.fsync"); err != nil {
		t.Fatal(err)
	}
	if err := Error(WALFsync); err == nil {
		t.Fatal("armed Error returned nil")
	}
	if err := Error(WALFsync); err != nil {
		t.Fatalf("one-shot point errored twice: %v", err)
	}
}

func TestClusterNetworkPoints(t *testing.T) {
	defer Reset()
	// The DIMD_FAULTS spec the cluster-chaos CI job arms: one dropped
	// heartbeat, a stalled shard stream on the 2nd shard, a truncated result
	// stream on the 1st.
	if err := Configure("cluster.heartbeat.drop,cluster.shard.stall:2,cluster.result.partial"); err != nil {
		t.Fatal(err)
	}
	if !Hit(ClusterHeartbeatDrop) {
		t.Fatal("cluster.heartbeat.drop should fire on the 1st probe")
	}
	if Hit(ClusterHeartbeatDrop) {
		t.Fatal("heartbeat drop fired twice (points are one-shot)")
	}
	if Hit(ClusterShardStall) {
		t.Fatal("cluster.shard.stall fired before its 2nd traversal")
	}
	if !Hit(ClusterShardStall) {
		t.Fatal("cluster.shard.stall should fire on the 2nd traversal")
	}
	if !Hit(ClusterResultPartial) {
		t.Fatal("cluster.result.partial should fire on the 1st traversal")
	}
}

func TestClusterPointsArmFromEnv(t *testing.T) {
	defer Reset()
	t.Setenv("DIMD_FAULTS", "cluster.result.partial:3")
	if err := ConfigureFromEnv(); err != nil {
		t.Fatal(err)
	}
	if Hit(ClusterResultPartial) || Hit(ClusterResultPartial) {
		t.Fatal("fired before the 3rd hit")
	}
	if !Hit(ClusterResultPartial) {
		t.Fatal("did not fire on the 3rd hit")
	}
	// Unarmed siblings stay inert.
	if Hit(ClusterHeartbeatDrop) || Hit(ClusterShardStall) {
		t.Fatal("unconfigured cluster point fired")
	}
}
