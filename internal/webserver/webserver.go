// Package webserver implements the latency-sensitive workload of §3.7: a
// SPECWeb-like closed-loop web serving benchmark.
//
// A fixed population of connections (the paper used 440, split across two
// client machines) each issues a request, waits for the response, thinks for
// an exponentially distributed time, and repeats. Each request is serviced in
// two stages, reproducing the interrupt path the paper describes in §3.1: a
// kernel-level network thread first runs to handle the interrupt (and is
// never injected under the default policy), then hands the request to a
// user-level worker thread that performs the application work.
//
// Quality of service follows SPECWeb's three thresholds: a response within
// 3 s is "good", within 5 s "tolerable", and anything slower "fail". The
// closed loop is what couples Dimetrodon to temperature here: stretching
// responses lowers each connection's issue rate, removing work (and heat)
// from the system — until queueing saturates and QoS collapses (Figure 6).
package webserver

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/machine"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/units"
)

// Config sizes the benchmark. DefaultConfig reproduces the paper's setup:
// ~15–25 % per-core load and a ≈6 °C unconstrained temperature rise.
type Config struct {
	Connections int
	// ThinkTime is the mean of the exponential think-time distribution.
	ThinkTime units.Time
	// KernelWork is the interrupt-path CPU demand per request
	// (reference-seconds).
	KernelWork float64
	// ServiceWorkMean is the mean user-level CPU demand per request; the
	// demand is exponentially distributed, floored at ServiceWorkMin.
	ServiceWorkMean float64
	ServiceWorkMin  float64
	// ServicePowerFactor is the activity factor of request processing
	// (web serving is branchy integer work, cooler than cpuburn).
	ServicePowerFactor float64
	// Workers is the number of user-level worker threads.
	Workers int
	// Good and Tolerable are the SPECWeb QoS thresholds.
	Good      units.Time
	Tolerable units.Time
	// Warmup discards requests completing before this time from QoS and
	// rate statistics.
	Warmup units.Time
}

// DefaultConfig returns the paper's eCommerce-like configuration.
func DefaultConfig() Config {
	return Config{
		Connections:        440,
		ThinkTime:          12 * units.Second,
		KernelWork:         0.0012,
		ServiceWorkMean:    0.024,
		ServiceWorkMin:     0.004,
		ServicePowerFactor: 1.0,
		Workers:            16,
		Good:               3 * units.Second,
		Tolerable:          5 * units.Second,
		Warmup:             20 * units.Second,
	}
}

// request tracks one in-flight request.
type request struct {
	conn    int
	arrived units.Time
	demand  float64
}

// Stats summarises completed requests.
type Stats struct {
	Completed    int
	Good         int
	Tolerable    int // includes Good
	Fail         int
	MeanLatency  units.Time
	MaxLatency   units.Time
	P95Latency   units.Time
	P99Latency   units.Time
	Throughput   float64 // completed requests per second (post-warmup)
	measuredSpan units.Time
}

// GoodFraction returns the fraction of completed requests meeting the "good"
// threshold (1.0 when nothing completed, so an idle baseline scores perfect).
func (s Stats) GoodFraction() float64 {
	if s.Completed == 0 {
		return 1
	}
	return float64(s.Good) / float64(s.Completed)
}

// TolerableFraction returns the fraction meeting the "tolerable" threshold.
func (s Stats) TolerableFraction() float64 {
	if s.Completed == 0 {
		return 1
	}
	return float64(s.Tolerable) / float64(s.Completed)
}

// String renders a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("completed=%d good=%.1f%% tolerable=%.1f%% mean=%v max=%v rate=%.1f/s",
		s.Completed, 100*s.GoodFraction(), 100*s.TolerableFraction(), s.MeanLatency, s.MaxLatency, s.Throughput)
}

// Server is a running web-serving benchmark bound to a machine.
type Server struct {
	cfg Config
	m   *machine.Machine
	rng *rng.Source

	kernelQ []request // requests awaiting interrupt handling
	readyQ  []request // requests awaiting a worker
	kthread *sched.Thread
	workers []*sched.Thread

	// per-worker current request, by worker index
	current []request
	busy    []bool

	// kernel thread's in-flight request
	kcur      request
	khave     bool
	latSum    units.Time
	latencies []float64 // response times in seconds, post-warmup
	stats     Stats
	started   units.Time
}

// New attaches a web-serving benchmark to m. Spawning happens immediately;
// the connections issue their first requests at randomised offsets within
// one think time to avoid a thundering herd at t=0.
func New(m *machine.Machine, cfg Config) *Server {
	if cfg.Connections <= 0 || cfg.Workers <= 0 {
		panic("webserver: need connections and workers")
	}
	s := &Server{
		cfg:     cfg,
		m:       m,
		rng:     m.RNG.Split(),
		current: make([]request, cfg.Workers),
		busy:    make([]bool, cfg.Workers),
		started: m.Now(),
	}
	// Kernel-level network thread: handles "interrupts" (arrivals).
	s.kthread = m.Sched.Spawn(sched.ProgramFunc(s.kernelNext), sched.SpawnConfig{
		Name:        "netisr",
		Kernel:      true,
		Priority:    sched.PriorityKernel,
		PowerFactor: 0.55,
	})
	for i := 0; i < cfg.Workers; i++ {
		idx := i
		s.workers = append(s.workers, m.Sched.Spawn(sched.ProgramFunc(func(now units.Time) sched.Action {
			return s.workerNext(idx, now)
		}), sched.SpawnConfig{
			Name:        fmt.Sprintf("httpd-%d", i),
			ProcessID:   1,
			PowerFactor: cfg.ServicePowerFactor,
		}))
	}
	for c := 0; c < cfg.Connections; c++ {
		conn := c
		offset := units.FromSeconds(s.rng.Float64() * cfg.ThinkTime.Seconds())
		m.Clock.ScheduleAfter(offset, "first-request", func(now units.Time) {
			s.arrive(conn, now)
		})
	}
	return s
}

// Workers returns the worker threads (for per-process policy installation).
func (s *Server) Workers() []*sched.Thread { return s.workers }

// arrive is a network interrupt: a request hits the NIC.
func (s *Server) arrive(conn int, now units.Time) {
	demand := s.cfg.ServiceWorkMean * s.rng.ExpFloat64()
	if demand < s.cfg.ServiceWorkMin {
		demand = s.cfg.ServiceWorkMin
	}
	s.kernelQ = append(s.kernelQ, request{conn: conn, arrived: now, demand: demand})
	s.m.Sched.Wake(s.kthread)
}

// kernelNext is the network thread's program: pop an arrival, charge the
// interrupt-path work, then hand off to a worker.
func (s *Server) kernelNext(now units.Time) sched.Action {
	if s.khave {
		// Interrupt processing for kcur just finished: enqueue for
		// user-level service and wake an idle worker.
		s.khave = false
		s.readyQ = append(s.readyQ, s.kcur)
		s.wakeIdleWorker()
	}
	if len(s.kernelQ) == 0 {
		return sched.Block()
	}
	s.kcur = s.kernelQ[0]
	s.kernelQ = s.kernelQ[1:]
	s.khave = true
	return sched.Compute(s.cfg.KernelWork)
}

func (s *Server) wakeIdleWorker() {
	for _, w := range s.workers {
		if w.State() == sched.StateSleeping {
			s.m.Sched.Wake(w)
			return
		}
	}
}

// workerNext is a worker thread's program: complete the previous request (if
// any), then serve the next or block.
func (s *Server) workerNext(idx int, now units.Time) sched.Action {
	if s.busy[idx] {
		s.busy[idx] = false
		s.complete(s.current[idx], now)
	}
	if len(s.readyQ) == 0 {
		return sched.Block()
	}
	s.current[idx] = s.readyQ[0]
	s.readyQ = s.readyQ[1:]
	s.busy[idx] = true
	return sched.Compute(s.current[idx].demand)
}

// complete records a finished request and schedules the connection's next
// arrival after its think time (the closed loop).
func (s *Server) complete(r request, now units.Time) {
	lat := now - r.arrived
	if now-s.started >= s.cfg.Warmup {
		s.stats.Completed++
		s.latSum += lat
		s.latencies = append(s.latencies, lat.Seconds())
		if lat > s.stats.MaxLatency {
			s.stats.MaxLatency = lat
		}
		if lat <= s.cfg.Good {
			s.stats.Good++
		}
		if lat <= s.cfg.Tolerable {
			s.stats.Tolerable++
		}
	}
	think := units.FromSeconds(s.cfg.ThinkTime.Seconds() * s.rng.ExpFloat64())
	conn := r.conn
	s.m.Clock.ScheduleAfter(think, "next-request", func(at units.Time) {
		s.arrive(conn, at)
	})
}

// Snapshot returns the QoS statistics accumulated since warmup; span should
// be the measurement end time (used for the throughput rate).
func (s *Server) Snapshot(now units.Time) Stats {
	st := s.stats
	st.Fail = st.Completed - st.Tolerable
	if st.Completed > 0 {
		st.MeanLatency = units.Time(int64(s.latSum) / int64(st.Completed))
		st.P95Latency = units.FromSeconds(analysis.Percentile(s.latencies, 95))
		st.P99Latency = units.FromSeconds(analysis.Percentile(s.latencies, 99))
	}
	span := now - s.started - s.cfg.Warmup
	if span > 0 {
		st.Throughput = float64(st.Completed) / span.Seconds()
	}
	st.measuredSpan = span
	return st
}

// QueueDepth returns the number of requests queued (both stages), a
// saturation indicator.
func (s *Server) QueueDepth() int { return len(s.kernelQ) + len(s.readyQ) }
