package webserver

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dtm"
	"repro/internal/machine"
	"repro/internal/units"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Connections = 60
	cfg.Workers = 8
	cfg.Warmup = 5 * units.Second
	return cfg
}

func TestBaselineQoSIsPerfect(t *testing.T) {
	m := machine.New(machine.DefaultConfig())
	srv := New(m, smallConfig())
	m.RunFor(60 * units.Second)
	st := srv.Snapshot(m.Now())
	if st.Completed == 0 {
		t.Fatal("no requests completed")
	}
	if st.GoodFraction() < 0.999 || st.TolerableFraction() < 0.999 {
		t.Errorf("unloaded QoS not perfect: %v", st)
	}
	if st.MeanLatency > 200*units.Millisecond {
		t.Errorf("baseline mean latency %v too high", st.MeanLatency)
	}
	if st.Fail != 0 {
		t.Errorf("failures on unloaded server: %d", st.Fail)
	}
}

func TestClosedLoopRate(t *testing.T) {
	cfg := smallConfig()
	m := machine.New(machine.DefaultConfig())
	srv := New(m, cfg)
	m.RunFor(90 * units.Second)
	st := srv.Snapshot(m.Now())
	// Little's law for the closed loop: rate ≈ connections/(think+resp).
	want := float64(cfg.Connections) / (cfg.ThinkTime.Seconds() + st.MeanLatency.Seconds())
	if math.Abs(st.Throughput-want)/want > 0.15 {
		t.Errorf("rate %v, closed-loop prediction %v", st.Throughput, want)
	}
}

func TestWarmupExcluded(t *testing.T) {
	cfg := smallConfig()
	m := machine.New(machine.DefaultConfig())
	srv := New(m, cfg)
	m.RunFor(cfg.Warmup / 2)
	st := srv.Snapshot(m.Now())
	if st.Completed != 0 {
		t.Errorf("requests counted during warmup: %d", st.Completed)
	}
}

func TestInjectionDegradesLatency(t *testing.T) {
	base := machine.New(machine.DefaultConfig())
	bSrv := New(base, smallConfig())
	base.RunFor(60 * units.Second)
	bStats := bSrv.Snapshot(base.Now())

	inj := machine.New(machine.DefaultConfig())
	if err := (dtm.Dimetrodon{P: 0.9, L: 100 * units.Millisecond}).Apply(inj); err != nil {
		t.Fatal(err)
	}
	iSrv := New(inj, smallConfig())
	inj.RunFor(60 * units.Second)
	iStats := iSrv.Snapshot(inj.Now())

	if iStats.MeanLatency <= bStats.MeanLatency {
		t.Errorf("injection did not increase latency: %v vs %v",
			iStats.MeanLatency, bStats.MeanLatency)
	}
}

func TestKernelThreadShieldedFromInjection(t *testing.T) {
	m := machine.New(machine.DefaultConfig())
	if err := (dtm.Dimetrodon{P: 0.95, L: 100 * units.Millisecond}).Apply(m); err != nil {
		t.Fatal(err)
	}
	srv := New(m, smallConfig())
	m.RunFor(30 * units.Second)
	if srv.kthread.Injections != 0 {
		t.Errorf("kernel network thread injected %d times", srv.kthread.Injections)
	}
	injected := 0
	for _, w := range srv.Workers() {
		injected += w.Injections
	}
	if injected == 0 {
		t.Error("no worker injections at p=0.95")
	}
}

func TestLatencyPercentiles(t *testing.T) {
	m := machine.New(machine.DefaultConfig())
	srv := New(m, smallConfig())
	m.RunFor(60 * units.Second)
	st := srv.Snapshot(m.Now())
	if st.Completed == 0 {
		t.Fatal("nothing completed")
	}
	// Distribution ordering: mean ≤ p95 ≤ p99 ≤ max.
	if st.MeanLatency > st.P95Latency {
		t.Errorf("mean %v above p95 %v", st.MeanLatency, st.P95Latency)
	}
	if st.P95Latency > st.P99Latency {
		t.Errorf("p95 %v above p99 %v", st.P95Latency, st.P99Latency)
	}
	if st.P99Latency > st.MaxLatency {
		t.Errorf("p99 %v above max %v", st.P99Latency, st.MaxLatency)
	}
	if st.P95Latency <= 0 {
		t.Error("p95 not populated")
	}
}

func TestStatsMath(t *testing.T) {
	st := Stats{Completed: 10, Good: 7, Tolerable: 9}
	if st.GoodFraction() != 0.7 || st.TolerableFraction() != 0.9 {
		t.Errorf("fractions = %v/%v", st.GoodFraction(), st.TolerableFraction())
	}
	empty := Stats{}
	if empty.GoodFraction() != 1 || empty.TolerableFraction() != 1 {
		t.Error("empty stats should score perfect")
	}
	if !strings.Contains(st.String(), "good=70.0%") {
		t.Errorf("String = %q", st.String())
	}
}

func TestQueueDepthAndSaturation(t *testing.T) {
	// At an injection level past the capacity knee the queue must grow.
	m := machine.New(machine.DefaultConfig())
	if err := (dtm.Dimetrodon{P: 0.97, L: 100 * units.Millisecond}).Apply(m); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig() // full 440 connections
	cfg.Warmup = 5 * units.Second
	srv := New(m, cfg)
	m.RunFor(60 * units.Second)
	if srv.QueueDepth() < 10 {
		t.Errorf("queue depth %d at saturating injection", srv.QueueDepth())
	}
	st := srv.Snapshot(m.Now())
	if st.GoodFraction() > 0.5 {
		t.Errorf("good QoS %v at saturation", st.GoodFraction())
	}
}

func TestConfigValidation(t *testing.T) {
	m := machine.New(machine.DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Error("zero connections did not panic")
		}
	}()
	New(m, Config{Connections: 0, Workers: 1})
}

func TestDeterministicReplay(t *testing.T) {
	run := func() Stats {
		cfg := machine.DefaultConfig()
		cfg.Seed = 42
		m := machine.New(cfg)
		srv := New(m, smallConfig())
		m.RunFor(40 * units.Second)
		return srv.Snapshot(m.Now())
	}
	a := run()
	b := run()
	if a.Completed != b.Completed || a.MeanLatency != b.MeanLatency || a.Good != b.Good {
		t.Errorf("replays diverged: %+v vs %+v", a, b)
	}
}
