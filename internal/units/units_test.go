package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	cases := []struct {
		in   Time
		want float64
	}{
		{Second, 1},
		{500 * Millisecond, 0.5},
		{Millisecond, 0.001},
		{Microsecond, 1e-6},
		{0, 0},
		{-2 * Second, -2},
	}
	for _, c := range cases {
		if got := c.in.Seconds(); got != c.want {
			t.Errorf("(%d).Seconds() = %v, want %v", int64(c.in), got, c.want)
		}
	}
	if got := (1500 * Microsecond).Milliseconds(); got != 1.5 {
		t.Errorf("Milliseconds() = %v, want 1.5", got)
	}
}

func TestFromSecondsRoundTrip(t *testing.T) {
	f := func(ms int32) bool {
		d := float64(ms) / 1000
		return FromSeconds(d) == Time(ms)*Millisecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromMilliseconds(t *testing.T) {
	if got := FromMilliseconds(2.5); got != 2500*Microsecond {
		t.Errorf("FromMilliseconds(2.5) = %v", got)
	}
	if got := FromMilliseconds(0); got != 0 {
		t.Errorf("FromMilliseconds(0) = %v", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0s"},
		{Second, "1s"},
		{300 * Second, "300s"},
		{1500 * Millisecond, "1.5s"},
		{25 * Millisecond, "25ms"},
		{100 * Microsecond, "100us"},
		{42, "42ns"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%v ns).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestEnergy(t *testing.T) {
	if got := Energy(10, 2*Second); got != 20 {
		t.Errorf("Energy(10W, 2s) = %v, want 20J", got)
	}
	if got := Energy(80, 500*Millisecond); got != 40 {
		t.Errorf("Energy(80W, 0.5s) = %v, want 40J", got)
	}
	if got := Energy(0, Second); got != 0 {
		t.Errorf("Energy(0, 1s) = %v, want 0", got)
	}
}

func TestEnergyAdditivity(t *testing.T) {
	f := func(p uint16, a, b uint32) bool {
		w := Watts(float64(p) / 100)
		ta := Time(a) * Microsecond
		tb := Time(b) * Microsecond
		lhs := float64(Energy(w, ta+tb))
		rhs := float64(Energy(w, ta) + Energy(w, tb))
		return math.Abs(lhs-rhs) < 1e-9*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantityStrings(t *testing.T) {
	if got := Watts(65.3).String(); got != "65.3W" {
		t.Errorf("Watts String = %q", got)
	}
	if got := Celsius(44.25).String(); got != "44.2C" && got != "44.3C" {
		t.Errorf("Celsius String = %q", got)
	}
	if got := Hertz(2.26e9).String(); got != "2.26GHz" {
		t.Errorf("Hertz String = %q", got)
	}
	if got := Hertz(133e6).String(); got != "133MHz" {
		t.Errorf("Hertz String = %q", got)
	}
	if got := Hertz(50).String(); got != "50Hz" {
		t.Errorf("Hertz String = %q", got)
	}
	if got := Joules(412.0).String(); got != "412J" {
		t.Errorf("Joules String = %q", got)
	}
}
