// Package units defines the typed physical quantities used throughout the
// simulator: virtual time, power, energy, temperature and frequency.
//
// Virtual time is an integer nanosecond count so that event ordering is exact
// and deterministic; the continuous quantities are float64 with explicit
// types to keep watts from leaking into joules and celsius into kelvin-like
// deltas without a conversion the reader can see.
package units

import (
	"fmt"
	"math"
)

// Time is a point in (or span of) virtual time, counted in integer
// nanoseconds since the start of the simulation. Using an integer makes the
// event queue ordering exact and keeps runs bit-reproducible.
type Time int64

// Common time spans.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
	Minute      Time = 60 * Second
)

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds reports t as a floating-point number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// FromSeconds converts floating-point seconds to a Time, rounding to the
// nearest nanosecond.
func FromSeconds(s float64) Time { return Time(math.Round(s * float64(Second))) }

// FromMilliseconds converts floating-point milliseconds to a Time.
func FromMilliseconds(ms float64) Time { return Time(math.Round(ms * float64(Millisecond))) }

// String formats the time with an adaptive unit, e.g. "1.5ms" or "300s".
func (t Time) String() string {
	switch {
	case t == 0:
		return "0s"
	case t >= Second || t <= -Second:
		return fmt.Sprintf("%gs", t.Seconds())
	case t >= Millisecond || t <= -Millisecond:
		return fmt.Sprintf("%gms", t.Milliseconds())
	case t >= Microsecond || t <= -Microsecond:
		return fmt.Sprintf("%gus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Watts is instantaneous electrical power.
type Watts float64

// Joules is energy. Power integrated over Time yields Joules.
type Joules float64

// Energy returns the energy dissipated at power p over span dt.
func Energy(p Watts, dt Time) Joules { return Joules(float64(p) * dt.Seconds()) }

// Celsius is an absolute temperature on the Celsius scale. Temperature
// differences are also carried as Celsius for simplicity; the thermal package
// is explicit about which is which.
type Celsius float64

// Hertz is a frequency (clock rate).
type Hertz float64

// Frequency helpers.
const (
	MHz Hertz = 1e6
	GHz Hertz = 1e9
)

// String formats power as e.g. "65.3W".
func (w Watts) String() string { return fmt.Sprintf("%.3gW", float64(w)) }

// String formats energy as e.g. "412J".
func (j Joules) String() string { return fmt.Sprintf("%.4gJ", float64(j)) }

// String formats temperature as e.g. "44.2C".
func (c Celsius) String() string { return fmt.Sprintf("%.3gC", float64(c)) }

// String formats frequency as e.g. "2.26GHz".
func (h Hertz) String() string {
	switch {
	case h >= GHz:
		return fmt.Sprintf("%.3gGHz", float64(h)/float64(GHz))
	case h >= MHz:
		return fmt.Sprintf("%.4gMHz", float64(h)/float64(MHz))
	default:
		return fmt.Sprintf("%gHz", float64(h))
	}
}
