// Package export writes rendered experiment and scenario artefacts to disk.
// It exists so the paper harnesses (internal/experiments) and the scenario
// engine (internal/scenario) share one CSV-emission path: a File couples a
// name with fully rendered content, and Write materialises a batch into a
// directory, creating it as needed.
package export

import (
	"fmt"
	"os"
	"path/filepath"
)

// File is one rendered artefact awaiting a directory.
type File struct {
	Name    string
	Content string
}

// Write creates dir if needed and writes every file into it, returning the
// paths written. On error the already-written paths are returned alongside
// it, so callers can report partial progress.
func Write(dir string, files ...File) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("export: creating %s: %w", dir, err)
	}
	var paths []string
	for _, f := range files {
		p := filepath.Join(dir, f.Name)
		if err := os.WriteFile(p, []byte(f.Content), 0o644); err != nil {
			return paths, fmt.Errorf("export: writing %s: %w", p, err)
		}
		paths = append(paths, p)
	}
	return paths, nil
}
