package export

import (
	"fmt"
	"strings"
)

// CSV renders a header and rows as RFC 4180 CSV content: fields containing a
// comma, a double quote, or a line break are wrapped in double quotes with
// embedded quotes doubled; everything else is written verbatim so the numeric
// tables the harnesses emit stay byte-stable. Header ordering is preserved
// exactly as given. Every row must match the header's width — a mismatch is
// a programming error in the caller's table assembly and is reported rather
// than silently padded.
func CSV(header []string, rows [][]string) (string, error) {
	if len(header) == 0 {
		return "", fmt.Errorf("export: CSV needs a non-empty header")
	}
	var b strings.Builder
	writeRow(&b, header)
	for i, row := range rows {
		if len(row) != len(header) {
			return "", fmt.Errorf("export: CSV row %d has %d fields, header has %d", i, len(row), len(header))
		}
		writeRow(&b, row)
	}
	return b.String(), nil
}

func writeRow(b *strings.Builder, fields []string) {
	for i, f := range fields {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(Quote(f))
	}
	b.WriteByte('\n')
}

// Quote returns the RFC 4180 encoding of one CSV field: quoted (with inner
// quotes doubled) only when the field contains a comma, quote, CR or LF.
func Quote(field string) string {
	if !strings.ContainsAny(field, ",\"\r\n") {
		return field
	}
	return `"` + strings.ReplaceAll(field, `"`, `""`) + `"`
}
