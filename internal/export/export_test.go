package export

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCSVHeaderOrderingPreserved(t *testing.T) {
	got, err := CSV(
		[]string{"zeta", "alpha", "mid"},
		[][]string{{"1", "2", "3"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	want := "zeta,alpha,mid\n1,2,3\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q (header order must be preserved, never sorted)", got, want)
	}
}

func TestCSVQuoting(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"plain", "plain"},
		{"", ""},
		{"3.14", "3.14"},
		{"a,b", `"a,b"`},
		{`say "hi"`, `"say ""hi"""`},
		{"line\nbreak", "\"line\nbreak\""},
		{"cr\rhere", "\"cr\rhere\""},
		{`both,"q"`, `"both,""q"""`},
	}
	for _, c := range cases {
		if got := Quote(c.in); got != c.want {
			t.Errorf("Quote(%q) = %q, want %q", c.in, got, c.want)
		}
	}

	got, err := CSV([]string{"name", "note"}, [][]string{{"p=0.5, L=25ms", `the "hot" one`}})
	if err != nil {
		t.Fatal(err)
	}
	want := "name,note\n\"p=0.5, L=25ms\",\"the \"\"hot\"\" one\"\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestCSVErrorPaths(t *testing.T) {
	if _, err := CSV(nil, nil); err == nil {
		t.Fatal("empty header accepted")
	}
	_, err := CSV([]string{"a", "b"}, [][]string{{"1", "2"}, {"only-one"}})
	if err == nil || !strings.Contains(err.Error(), "row 1") {
		t.Fatalf("width mismatch err = %v, want row index", err)
	}
}

func TestWriteCreatesDirAndReportsPaths(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "out")
	paths, err := Write(dir,
		File{Name: "a.csv", Content: "x,y\n1,2\n"},
		File{Name: "b.csv", Content: "k,v\n"},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("paths = %v, want 2 entries", paths)
	}
	for i, want := range []string{"a.csv", "b.csv"} {
		if filepath.Base(paths[i]) != want {
			t.Errorf("paths[%d] = %s, want base %s", i, paths[i], want)
		}
		data, err := os.ReadFile(paths[i])
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 {
			t.Errorf("%s written empty", paths[i])
		}
	}
}

func TestWriteDirCreationFailure(t *testing.T) {
	// A regular file where the directory should go makes MkdirAll fail.
	base := t.TempDir()
	blocker := filepath.Join(base, "blocked")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	paths, err := Write(blocker, File{Name: "a.csv", Content: "h\n"})
	if err == nil {
		t.Fatal("Write into a path blocked by a file succeeded")
	}
	if len(paths) != 0 {
		t.Fatalf("paths = %v, want none on dir-creation failure", paths)
	}
}

func TestWritePartialProgressOnFileError(t *testing.T) {
	dir := t.TempDir()
	// Second file's name collides with a pre-made subdirectory, so its
	// WriteFile fails after the first file landed.
	if err := os.Mkdir(filepath.Join(dir, "taken"), 0o755); err != nil {
		t.Fatal(err)
	}
	paths, err := Write(dir,
		File{Name: "ok.csv", Content: "h\n"},
		File{Name: "taken", Content: "h\n"},
	)
	if err == nil {
		t.Fatal("Write over a directory succeeded")
	}
	if len(paths) != 1 || filepath.Base(paths[0]) != "ok.csv" {
		t.Fatalf("paths = %v, want the one file written before the failure", paths)
	}
}
