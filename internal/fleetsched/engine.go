package fleetsched

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/dtm"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/units"
	"repro/internal/webserver"
	"repro/internal/workload"
)

// Phase profiler accumulators for the scheduled engine: fleet construction
// and the parallel advance phase between round barriers. Dispatch itself is
// single-threaded and tiny; the advance phase is where the simulation time
// goes.
var (
	phaseSchedBuild   = obs.RegisterPhase("sched.build")
	phaseSchedAdvance = obs.RegisterPhase("sched.advance")
)

// traceRoundSpans bounds per-round trace spans: early rounds show the
// dispatch/advance cadence; ten thousand more would only rotate the span
// budget.
const traceRoundSpans = 64

// ewmaAlpha weights the newest round's hottest-junction reading in the
// per-machine EWMA the headroom policy consumes. 0.3 remembers roughly the
// last three rounds — long enough to smooth injection sawtooth, short enough
// to track a genuine heat-up.
const ewmaAlpha = 0.3

// jobPIDBase offsets scheduled-job process IDs past the static workload
// components' (which use their component index).
const jobPIDBase = 1000

// dispatchSeedSalt decorrelates the dispatcher's RNG root (arrival streams,
// random placement) from the machine-identity seeds derived from the same
// scenario base seed.
const dispatchSeedSalt = 0xd15c_a7c4_f1ee_75ed

// node is one fleet member inside the engine: the built machine plus the
// engine-side accounting no other worker may touch. During the parallel
// phase of a round exactly one runner worker owns the node; between rounds
// the single-threaded dispatcher owns all of them.
type node struct {
	idx   int
	trial scenario.MachineTrial
	m     *machine.Machine
	tm1   *dtm.TM1
	srv   *webserver.Server

	temps []units.Celsius

	// Violation accounting over the post-warmup window.
	measuring  bool
	over       bool
	peak       float64
	violationS float64
	violations int

	// Window-start snapshots (taken at the first round boundary past the
	// warmup, mirroring the unscheduled per-machine path).
	t0            units.Time
	i0, w0        float64
	e0            units.Joules
	busy0S, inj0S float64
	injN0         int
	tm1Trips0     int
	tm1Throttled0 units.Time

	// Barrier telemetry and derived placement signals.
	tel     machine.Telemetry
	ewma    float64
	injFrac float64

	// Scheduled-job state.
	jobs         []*Job
	pendingWorkS float64
	placed       int
	completed    int
	migratedIn   int
	migratedOut  int
}

// buildNode materialises fleet member i and takes its t=0 telemetry.
func buildNode(t scenario.MachineTrial) (*node, error) {
	m, tm1, srv, err := t.Build()
	if err != nil {
		return nil, err
	}
	n := &node{idx: t.Index, trial: t, m: m, tm1: tm1, srv: srv}
	n.tel = m.Telemetry()
	n.ewma = n.tel.MaxJunctionC
	return n, nil
}

// advance runs the node's machine to the absolute virtual time `to`,
// sampling violations at the metric tick, then refreshes barrier telemetry,
// placement signals and job completions. It runs inside a runner worker and
// touches only this node.
func (n *node) advance(to units.Time, violC units.Celsius) {
	for n.m.Now() < to {
		step := scenario.MetricTick
		if rem := to - n.m.Now(); rem < step {
			step = rem
		}
		n.m.RunFor(step)
		n.temps = n.m.Net.Junctions(n.temps)
		hot := false
		for _, tj := range n.temps {
			if n.measuring && float64(tj) > n.peak {
				n.peak = float64(tj)
			}
			if tj >= violC {
				hot = true
			}
		}
		if n.measuring {
			if hot {
				n.violationS += step.Seconds()
				if !n.over {
					n.violations++
				}
			}
		}
		// Track the edge through warmup too, so an excursion straddling
		// the window start is not double-counted as a fresh rising edge.
		n.over = hot
	}

	prev := n.tel
	n.tel = n.m.Telemetry()
	occ := (n.tel.BusyS - prev.BusyS) + (n.tel.InjectedIdleS - prev.InjectedIdleS)
	if occ > 0 {
		n.injFrac = (n.tel.InjectedIdleS - prev.InjectedIdleS) / occ
	} else {
		n.injFrac = 0
	}
	n.ewma = ewmaAlpha*n.tel.MaxJunctionC + (1-ewmaAlpha)*n.ewma

	n.pendingWorkS = 0
	for _, j := range n.jobs {
		if j.done {
			continue
		}
		finished := true
		var doneAt units.Time
		for _, th := range j.threads {
			if !th.Exited() {
				finished = false
				break
			}
			if th.ExitedAt > doneAt {
				doneAt = th.ExitedAt
			}
		}
		if finished {
			j.done = true
			j.DoneAt = doneAt
			n.completed++
			continue
		}
		n.pendingWorkS += j.remaining()
	}
}

// snapshotWindow records the measurement-window baselines at the current
// barrier (telemetry is fresh). Mirrors the unscheduled path's post-warmup
// snapshot.
func (n *node) snapshotWindow() {
	n.measuring = true
	n.t0 = n.m.Now()
	n.i0 = n.m.MeanJunctionIntegral()
	n.w0 = n.m.TotalWorkDone()
	n.e0 = n.m.Energy.Energy()
	n.busy0S = n.tel.BusyS
	n.inj0S = n.tel.InjectedIdleS
	n.injN0 = n.tel.Injections
	if n.tm1 != nil {
		n.tm1Trips0 = n.tm1.Engagements
		n.tm1Throttled0 = n.tm1.Throttled(n.t0)
	}
}

// view renders the node as a placement candidate.
func (n *node) view(violC float64) MachineView {
	resident := 0
	for _, j := range n.jobs {
		if !j.done {
			resident++
		}
	}
	cores := n.m.SchedCores()
	return MachineView{
		Index:         n.idx,
		Cores:         cores,
		Load:          float64(n.tel.LiveThreads) / float64(cores),
		ResidentJobs:  resident,
		PendingWorkS:  n.pendingWorkS,
		MaxJunctionC:  n.tel.MaxJunctionC,
		EWMAJunctionC: n.ewma,
		InjectionFrac: n.injFrac,
		ViolationC:    violC,
	}
}

// spawnJob admits the job's threads on this node, each with the given work
// target (full WorkS on first dispatch, carried-over remainders on
// migration), and records the targets so later remaining-work measurements
// are against what was actually assigned here.
func (n *node) spawnJob(j *Job, works []float64) {
	j.threads = j.threads[:0]
	j.assigned = append(j.assigned[:0], works...)
	for i, w := range works {
		name := fmt.Sprintf("job%d-%d", j.ID, i)
		if j.Migrations > 0 {
			name = fmt.Sprintf("job%d.m%d-%d", j.ID, j.Migrations, i)
		}
		th := n.m.Admit(workload.FiniteBurn(w), sched.SpawnConfig{
			Name:        name,
			ProcessID:   jobPIDBase + j.ID,
			PowerFactor: j.PowerFactor,
		})
		j.threads = append(j.threads, th)
	}
	j.Machine = n.idx
	n.jobs = append(n.jobs, j)
}

// Run executes the scheduled scenario under the named placement policy (empty
// selects the spec's default, then coolest-first). The output is
// byte-identical at any -jobs setting: all cross-machine decisions happen at
// single-threaded round barriers, and machines advance between barriers as
// independent deterministic functions of their own state.
func Run(spec *scenario.Spec, policyName string, scale float64) (*Result, error) {
	return RunOpts(spec, policyName, scale, Options{})
}

// Options customises a scheduled run beyond the spec: context cancellation
// and the round-barrier telemetry hook the service daemon streams from. The
// zero value reproduces Run exactly.
type Options struct {
	// Context, when non-nil, cancels the run at the next round barrier (and
	// stops workers claiming further machines inside a round's advance
	// phase). A cancelled run returns ctx's error.
	Context context.Context
	// OnRound, when non-nil, is called at every round barrier — from the
	// single-threaded dispatcher, so calls are strictly ordered — with the
	// fleet's dispatcher-facing telemetry after that round's migrations and
	// placements.
	OnRound func(RoundTelemetry)

	// CheckpointEvery, when positive, captures a Checkpoint every that many
	// round barriers (round 0, CheckpointEvery, 2×CheckpointEvery, …) and
	// hands it to OnCheckpoint. Capture is perturbation-free — the run's
	// results are byte-identical with checkpointing on or off — because the
	// barrier has already flushed every machine's lazy thermal window and
	// scheduler accounting. 0 disables capture.
	CheckpointEvery int
	// OnCheckpoint, when non-nil, receives each captured Checkpoint from the
	// single-threaded dispatcher. The daemon persists these so a crashed job
	// can resume.
	OnCheckpoint func(Checkpoint)

	// Resume, when non-nil, replays the run silently up to and including the
	// checkpoint's round barrier — OnRound and OnCheckpoint are suppressed
	// for the replayed prefix (subscribers already saw those rounds before
	// the crash); context cancellation still applies — then verifies the
	// replayed fleet's digest against the checkpoint and errors on any
	// divergence. Past the barrier the run continues normally: telemetry
	// resumes at round Resume.Round+1 and checkpointing resumes on the
	// CheckpointEvery cadence. The final Result is byte-identical to an
	// uninterrupted run's — the digest check proves it rather than assuming
	// it.
	Resume *Checkpoint

	// Trace, when non-nil, records engine spans (build, the first rounds'
	// advances, aggregate) into the job's tracer. Purely observational: spans
	// read the wall clock and already-computed values, never simulation
	// state, so traced output is byte-identical to untraced.
	Trace *obs.Tracer
}

// RoundTelemetry is one round barrier's fleet snapshot: what the dispatcher
// itself sees when it ranks machines. Counters are cumulative from t=0.
type RoundTelemetry struct {
	Round int     `json:"round"`
	NowS  float64 `json:"now_s"`

	JobsArrived    int `json:"jobs_arrived"`
	JobsDispatched int `json:"jobs_dispatched"`
	JobsCompleted  int `json:"jobs_completed"`
	Migrations     int `json:"migrations"`

	// PendingWorkS is the remaining scheduled-job work fleet-wide.
	PendingWorkS float64 `json:"pending_work_s"`
	// MaxJunctionC is the hottest junction across the fleet at the barrier;
	// HottestMachine is its fleet index. MeanJunctionC averages the
	// per-machine mean junction temperatures.
	MaxJunctionC   float64 `json:"max_junction_c"`
	MeanJunctionC  float64 `json:"mean_junction_c"`
	HottestMachine int     `json:"hottest_machine"`
	// InjectedIdleS sums the fleet's cumulative injected idle seconds.
	InjectedIdleS float64 `json:"injected_idle_s"`
	// WorkDone sums the fleet's cumulative completed work (reference
	// seconds) and EnergyJ its cumulative package energy — subscribers
	// difference successive rounds into work-rate and mean-power gauges.
	WorkDone float64 `json:"work_done"`
	EnergyJ  float64 `json:"energy_j"`
}

// roundTelemetry folds the nodes' barrier telemetry into one fleet snapshot.
func roundTelemetry(round int, now units.Time, nodes []*node, cursor, dispatched, migrations int) RoundTelemetry {
	rt := RoundTelemetry{
		Round:          round,
		NowS:           now.Seconds(),
		JobsArrived:    cursor,
		JobsDispatched: dispatched,
		Migrations:     migrations,
		HottestMachine: -1,
	}
	var meanSum float64
	for _, n := range nodes {
		rt.JobsCompleted += n.completed
		rt.PendingWorkS += n.pendingWorkS
		rt.InjectedIdleS += n.tel.InjectedIdleS
		rt.WorkDone += n.tel.WorkDone
		rt.EnergyJ += n.tel.EnergyJ
		meanSum += n.tel.MeanJunctionC
		if n.tel.MaxJunctionC > rt.MaxJunctionC {
			rt.MaxJunctionC = n.tel.MaxJunctionC
			rt.HottestMachine = n.idx
		}
	}
	if len(nodes) > 0 {
		rt.MeanJunctionC = meanSum / float64(len(nodes))
	}
	return rt
}

// RunOpts is Run with per-run options; the zero Options value is exactly Run.
func RunOpts(spec *scenario.Spec, policyName string, scale float64, opts Options) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	ss := spec.Scheduler
	if ss == nil {
		return nil, fmt.Errorf("fleetsched: scenario %q has no scheduler block (run it with dimctl scenario run)", spec.Name)
	}
	name := policyName
	if name == "" {
		name = ss.Policy
	}
	if name == "" {
		name = scenario.PlaceCoolestFirst
	}
	policy, err := New(name)
	if err != nil {
		return nil, err
	}

	spBuild := opts.Trace.Start("build", "sched", 0)
	bt := phaseSchedBuild.Start()
	trials := spec.Compile(scale)
	nodes, err := runner.MapErr(trials, func(_ int, t scenario.MachineTrial) (*node, error) {
		return buildNode(t)
	})
	phaseSchedBuild.StopN(bt, int64(len(trials)))
	spBuild.EndArgs(map[string]any{"machines": len(trials)})
	if err != nil {
		return nil, fmt.Errorf("fleetsched: scenario %q: %w", spec.Name, err)
	}

	duration := trials[0].Duration
	warmup := trials[0].Warmup

	// The dispatch round scales with the run so the decision count is
	// scale-invariant, floored at the metric tick, and capped so at least
	// one barrier lands inside the measurement window.
	roundS := ss.RoundS
	if roundS <= 0 {
		roundS = scenario.DefaultRoundS
	}
	round := units.FromSeconds(duration.Seconds() * roundS / spec.DurationS)
	if round < scenario.MetricTick {
		round = scenario.MetricTick
	}
	if warmup > 0 && round > duration-warmup {
		round = duration - warmup
	}

	dispatch := rng.New(spec.Fleet.BaseSeed + dispatchSeedSalt)
	jobs := genJobs(spec, duration, dispatch)
	placeRNG := dispatch.Split()

	violC := spec.ViolationThreshold()
	triggerC := ss.Migration.TriggerC
	if triggerC <= 0 {
		triggerC = violC
	}
	maxMoves := ss.Migration.MaxMovesPerRound
	if maxMoves <= 0 {
		maxMoves = 1
	}

	cursor := 0
	dispatched := 0
	migrations := 0
	measuring := false
	// Round-barrier scratch, reused across rounds so the dispatch loop
	// allocates nothing per barrier: the candidate views and the migrate
	// loop's below-trigger subset.
	views := make([]MachineView, len(nodes))
	migScratch := make([]MachineView, 0, len(nodes))
	roundNo := 0
	resumed := false
	for now := units.Time(0); now < duration; {
		if opts.Context != nil {
			if err := opts.Context.Err(); err != nil {
				return nil, fmt.Errorf("fleetsched: scenario %q: %w", spec.Name, err)
			}
		}
		next := now + round
		if next > duration {
			next = duration
		}
		if !measuring && now >= warmup {
			for _, n := range nodes {
				n.snapshotWindow()
			}
			measuring = true
		}

		for i, n := range nodes {
			views[i] = n.view(violC)
		}
		if ss.Migration.Enabled && now > 0 {
			migrations += migrate(nodes, views, migScratch, policy, placeRNG, triggerC, maxMoves)
		}
		// Within a round, views are the single source of in-round truth:
		// each placement (and each migration above) feeds back into them
		// so later decisions in the same round see the updated load. Node
		// state is rebuilt wholesale from the machines at the next barrier.
		for cursor < len(jobs) && jobs[cursor].ArriveAt <= now {
			j := jobs[cursor]
			cursor++
			pos := policy.Place(j, &FleetView{Machines: views, RNG: placeRNG})
			n := nodes[views[pos].Index]
			j.DispatchAt = now
			works := make([]float64, j.Threads)
			for i := range works {
				works[i] = j.WorkS
			}
			n.spawnJob(j, works)
			n.placed++
			dispatched++
			views[pos].Load += float64(j.Threads) / float64(views[pos].Cores)
			views[pos].PendingWorkS += float64(j.Threads) * j.WorkS
			views[pos].ResidentJobs++
		}

		// Replay discipline: while re-running the prefix of a resumed job the
		// barrier stays silent; at the checkpointed barrier itself the fleet
		// digest must match before the run is allowed to continue.
		replaying := opts.Resume != nil && roundNo <= opts.Resume.Round
		if replaying && roundNo == opts.Resume.Round {
			if err := verifyResume(opts.Resume, roundNo, now, nodes, cursor, dispatched, migrations); err != nil {
				return nil, fmt.Errorf("fleetsched: scenario %q: %w", spec.Name, err)
			}
			resumed = true
		}
		if !replaying {
			if opts.OnRound != nil {
				opts.OnRound(roundTelemetry(roundNo, now, nodes, cursor, dispatched, migrations))
			}
			if opts.CheckpointEvery > 0 && roundNo%opts.CheckpointEvery == 0 {
				cp := Checkpoint{
					Round:      roundNo,
					NowS:       now.Seconds(),
					Cursor:     cursor,
					Dispatched: dispatched,
					Migrations: migrations,
					Digest:     fleetDigest(roundNo, now, nodes, cursor, dispatched, migrations),
				}
				if opts.OnCheckpoint != nil {
					opts.OnCheckpoint(cp)
				}
			}
		}
		roundNo++

		var spRound obs.Span
		if roundNo <= traceRoundSpans {
			spRound = opts.Trace.Start(fmt.Sprintf("round-%04d", roundNo-1), "sched", 0)
		}
		at := phaseSchedAdvance.Start()
		if _, err := runner.MapCtx(opts.Context, nodes, func(_ int, n *node) struct{} {
			n.advance(next, units.Celsius(violC))
			return struct{}{}
		}); err != nil {
			return nil, fmt.Errorf("fleetsched: scenario %q: %w", spec.Name, err)
		}
		phaseSchedAdvance.StopN(at, int64(len(nodes)))
		spRound.EndArgs(map[string]any{"now_s": next.Seconds()})
		now = next
	}
	if opts.Resume != nil && !resumed {
		return nil, fmt.Errorf("fleetsched: scenario %q: resume checkpoint names round %d but the run has only %d barriers (spec or scale mismatch)", spec.Name, opts.Resume.Round, roundNo)
	}

	res := &Result{
		Spec:     spec,
		Policy:   policy.Name(),
		Scale:    scale,
		Duration: duration,
		Warmup:   warmup,
		Round:    round,
		Jobs:     jobs,
	}
	spAgg := opts.Trace.Start("aggregate", "sched", 0)
	res.Machines = make([]MachineStats, len(nodes))
	for i, n := range nodes {
		res.Machines[i] = n.finish(duration)
	}
	base := make([]scenario.MachineResult, len(res.Machines))
	for i := range res.Machines {
		base[i] = res.Machines[i].MachineResult
	}
	res.Fleet = scenario.Aggregate(spec, base)
	res.Placement = aggregatePlacement(res.Machines, jobs, dispatched, migrations)
	spAgg.End()
	return res, nil
}

// migrate runs one round of the evacuation loop: machines whose hottest
// junction sits at or above the trigger shed their largest-remaining job to a
// policy-chosen machine below the trigger, up to maxMoves moves fleet-wide.
// Hottest machines evacuate first; a fleet entirely at or above trigger has
// nowhere to put work and skips the round. Every move feeds back into views,
// so later moves this round — and the arrival placements that follow — see
// the post-migration load.
func migrate(nodes []*node, views []MachineView, sub []MachineView, policy Policy, placeRNG *rng.Source, triggerC float64, maxMoves int) int {
	var hot, coolPos []int // positions into views
	for i := range views {
		if views[i].MaxJunctionC >= triggerC {
			hot = append(hot, i)
		} else {
			coolPos = append(coolPos, i)
		}
	}
	if len(hot) == 0 || len(coolPos) == 0 {
		return 0
	}
	sort.SliceStable(hot, func(a, b int) bool {
		va, vb := views[hot[a]], views[hot[b]]
		if va.MaxJunctionC != vb.MaxJunctionC {
			return va.MaxJunctionC > vb.MaxJunctionC
		}
		return va.Index < vb.Index
	})

	moved := 0
	for _, pos := range hot {
		if moved >= maxMoves {
			break
		}
		src := nodes[views[pos].Index]
		j := evacuationCandidate(src)
		if j == nil {
			continue
		}
		// Carry each thread's unfinished assignment, captured before
		// eviction (barrier telemetry has already flushed scheduler
		// accounting). Measuring against the current assignment — not the
		// original WorkS — conserves work exactly across repeat
		// migrations; threads that already finished carry nothing and are
		// not respawned.
		works := make([]float64, 0, len(j.threads))
		var total float64
		for i, th := range j.threads {
			if r := j.assigned[i] - th.WorkDone; r > 0 {
				works = append(works, r)
				total += r
			}
		}
		for _, th := range j.threads {
			src.m.Evict(th)
		}
		removeJob(src, j)

		sub = sub[:0]
		for _, p := range coolPos {
			sub = append(sub, views[p])
		}
		vp := coolPos[policy.Place(j, &FleetView{Machines: sub, RNG: placeRNG})]
		dst := nodes[views[vp].Index]
		j.Migrations++
		dst.spawnJob(j, works)

		views[vp].Load += float64(len(works)) / float64(views[vp].Cores)
		views[vp].PendingWorkS += total
		views[vp].ResidentJobs++
		views[pos].Load -= float64(len(works)) / float64(views[pos].Cores)
		if views[pos].Load < 0 {
			views[pos].Load = 0
		}
		views[pos].PendingWorkS -= total
		if views[pos].PendingWorkS < 0 {
			views[pos].PendingWorkS = 0
		}
		views[pos].ResidentJobs--

		src.migratedOut++
		dst.migratedIn++
		moved++
	}
	return moved
}

// evacuationCandidate picks the hot machine's job with the most remaining
// work (the one that will keep heating it longest), ties broken by lowest
// job ID. Jobs with nothing left are not worth moving.
func evacuationCandidate(n *node) *Job {
	var best *Job
	var bestRem float64
	for _, j := range n.jobs {
		if j.done {
			continue
		}
		rem := j.remaining()
		if rem <= 1e-9 {
			continue
		}
		if best == nil || rem > bestRem || (rem == bestRem && j.ID < best.ID) {
			best, bestRem = j, rem
		}
	}
	return best
}

func removeJob(n *node, j *Job) {
	for i, cur := range n.jobs {
		if cur == j {
			n.jobs = append(n.jobs[:i], n.jobs[i+1:]...)
			return
		}
	}
}

// finish folds the node into its per-machine result over the measurement
// window, mirroring the unscheduled path's accounting field for field.
func (n *node) finish(duration units.Time) MachineStats {
	secs := (duration - n.t0).Seconds()
	r := scenario.MachineResult{
		Index:     n.idx,
		Seed:      n.trial.Seed,
		FanFactor: n.trial.FanFactor,
	}
	r.MeanJunction = (n.m.MeanJunctionIntegral() - n.i0) / secs
	r.PeakJunction = n.peak
	r.IdleTemp = float64(n.m.IdleJunctionTemp())
	r.WorkRate = (n.m.TotalWorkDone() - n.w0) / secs
	r.MeanPower = float64(n.m.Energy.Energy()-n.e0) / secs
	r.BusyS = n.tel.BusyS - n.busy0S
	r.InjectedIdleS = n.tel.InjectedIdleS - n.inj0S
	r.Injections = n.tel.Injections - n.injN0
	r.ViolationS = n.violationS
	r.Violations = n.violations
	if n.tm1 != nil {
		r.TM1Trips = n.tm1.Engagements - n.tm1Trips0
		r.TM1ThrottledS = (n.tm1.Throttled(n.m.Now()) - n.tm1Throttled0).Seconds()
	}
	if n.srv != nil {
		stats := n.srv.Snapshot(n.m.Now())
		r.Web = &stats
	}
	return MachineStats{
		MachineResult: r,
		JobsPlaced:    n.placed,
		JobsCompleted: n.completed,
		MigratedIn:    n.migratedIn,
		MigratedOut:   n.migratedOut,
	}
}
