package fleetsched

import "repro/internal/scenario"

// The scheduled-scenario library. Registered from this package (not
// internal/scenario) so the registry only carries them when the fleetsched
// engine that can run them is linked in — exactly the pattern of a scheduler
// shipping its own default workloads.
func init() {
	// The policy shootout: a heterogeneous fleet (rack-position airflow
	// variance means some machines simply run hotter) absorbing a steady
	// stream of two-thread batch jobs at ~30 % average utilisation — enough
	// slack that placement has real freedom, enough heat that placing into
	// the wrong machine costs violations. Thermally-blind policies stack
	// work onto poorly-cooled machines; coolest-first and headroom route
	// around them. This is the acceptance scenario for `dimctl sched
	// compare`.
	scenario.MustRegister(&scenario.Spec{
		Name:    "sched-shootout",
		Title:   "placement-policy shootout on a heterogeneous fleet",
		Summary: "steady batch arrivals over 12 machines with 0.6 fan spread, Dimetrodon p=0.35 L=25ms; compare all placement policies.",
		Fleet:   scenario.FleetSpec{Machines: 12, BaseSeed: 8100, FanSpread: 0.4, AmbientSpreadC: 9},
		Policy:  scenario.PolicySpec{Kind: scenario.PolicyDimetrodon, P: 0.35, LMS: 25},
		Scheduler: &scenario.SchedulerSpec{
			Policy: scenario.PlaceCoolestFirst,
			RoundS: 2,
			Jobs: []scenario.JobClassSpec{
				{Name: "batch", Rate: 0.55, Threads: 2, WorkS: 14, WorkSpread: 0.5},
			},
		},
		DurationS:  400,
		WarmupFrac: 0.1,
		ViolationC: 47,
	})

	// A herd of hot jobs arriving in a mid-run window (a training sweep, a
	// quarterly batch close) on top of steady background load, with the
	// migration loop armed: machines driven into violation shed their
	// largest job to cooler neighbours instead of riding the TM1 backstop.
	scenario.MustRegister(&scenario.Spec{
		Name:    "hotspot-herd",
		Title:   "hot-job herd with thermal-violation migration",
		Summary: "windowed burst of hot 2-thread jobs over background load; headroom placement with migration, Dimetrodon p=0.25 L=25ms, TM1 armed.",
		Fleet:   scenario.FleetSpec{Machines: 10, BaseSeed: 8200, FanSpread: 0.3, AmbientSpreadC: 8},
		Workload: []scenario.ComponentSpec{
			{Kind: scenario.KindPeriodic, Threads: 2, BurstS: 0.5, PauseS: 2, PowerFactor: 0.7},
		},
		Policy: scenario.PolicySpec{Kind: scenario.PolicyDimetrodon, P: 0.25, LMS: 25, TM1: true},
		Scheduler: &scenario.SchedulerSpec{
			Policy: scenario.PlaceHeadroom,
			RoundS: 2,
			Jobs: []scenario.JobClassSpec{
				{Name: "herd", Rate: 1.2, Threads: 2, WorkS: 15,
					Arrival: scenario.ArrivalSpec{Pattern: scenario.ArrivalWindow, StartFrac: 0.3, EndFrac: 0.6}},
			},
			Migration: scenario.MigrationSpec{Enabled: true, MaxMovesPerRound: 2},
		},
		DurationS:  300,
		WarmupFrac: 0.1,
		ViolationC: 46,
	})

	// Web-serving machines under adaptive thermal control absorbing spill
	// batch work: the adaptive controllers inject hardest exactly where
	// heat is already a problem, so the injection-aware policy reads their
	// effort as a congestion signal and spills batch work elsewhere,
	// defending web QoS and thermals at once.
	scenario.MustRegister(&scenario.Spec{
		Name:    "colo-spill",
		Title:   "batch spill-over onto adaptive web-serving machines",
		Summary: "webserver fleet under adaptive control (42C target) taking batch spill; injection-aware placement reads controller effort.",
		Fleet:   scenario.FleetSpec{Machines: 8, BaseSeed: 8300, FanSpread: 0.3, AmbientSpreadC: 7},
		Workload: []scenario.ComponentSpec{
			{Kind: scenario.KindWebserver},
		},
		Policy: scenario.PolicySpec{Kind: scenario.PolicyAdaptive, TargetC: 42},
		Scheduler: &scenario.SchedulerSpec{
			Policy: scenario.PlaceInjectionAware,
			RoundS: 2,
			Jobs: []scenario.JobClassSpec{
				{Name: "spill", Rate: 0.5, Threads: 2, WorkS: 10, WorkSpread: 0.2},
			},
		},
		DurationS:  300,
		WarmupFrac: 0.1,
		ViolationC: 45,
	})
}
