package fleetsched

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/units"
)

// Checkpoint is a scheduled run's resume token, captured at a round barrier —
// the only point where cross-machine state is quiescent (telemetry flushed,
// migrations and placements applied, no worker owns a node).
//
// It deliberately does not serialize the fleet: armed timers and workload
// program closures cannot be re-seated from bytes. Instead it records *where*
// the run was (round, cursor into the pregenerated arrival stream, dispatch
// and migration counters) plus a Digest that fingerprints the complete fleet
// state at that barrier. Resume is verified deterministic replay: the engine
// re-runs the trial from t=0 with observers suppressed, arrives at the same
// barrier, recomputes the digest, and refuses to continue on any mismatch.
// The replayed prefix costs CPU but is provably bit-identical — which is the
// whole point: a resumed run is indistinguishable from an uninterrupted one,
// and the digest check turns that claim into an enforced invariant rather
// than a hope (see DESIGN.md §12).
type Checkpoint struct {
	// Round is the barrier index the checkpoint was captured at (the value
	// OnRound saw at the same barrier).
	Round int `json:"round"`
	// NowS is the barrier's virtual time in seconds.
	NowS float64 `json:"now_s"`
	// Cursor is how far the dispatcher had consumed the pregenerated job
	// arrival stream; Dispatched and Migrations are the cumulative counters.
	Cursor     int `json:"cursor"`
	Dispatched int `json:"dispatched"`
	Migrations int `json:"migrations"`
	// Digest fingerprints the entire fleet at the barrier: every machine's
	// full simulation state plus the engine's per-node ledgers and job
	// tracking. See fleetDigest.
	Digest string `json:"digest"`
}

// checkpointJob is one job's entry in the digest ledger. Thread-level progress
// (WorkDone, CPU time, run state) is already inside the machine digest; this
// adds the engine's own tracking — identity, placement, migration history and
// the per-thread assignments remaining work is measured against.
type checkpointJob struct {
	ID         int        `json:"id"`
	Machine    int        `json:"machine"`
	Migrations int        `json:"migrations"`
	Done       bool       `json:"done"`
	DoneAt     units.Time `json:"done_at"`
	DispatchAt units.Time `json:"dispatch_at"`
	Assigned   []float64  `json:"assigned"`
}

// checkpointNode is one fleet member's entry in the digest: the machine's own
// state digest plus every engine-side field the dispatcher reads or the final
// accounting folds.
type checkpointNode struct {
	Machine string `json:"machine"` // machine.State digest

	Measuring  bool    `json:"measuring"`
	Over       bool    `json:"over"`
	Peak       float64 `json:"peak"`
	ViolationS float64 `json:"violation_s"`
	Violations int     `json:"violations"`

	EWMA         float64 `json:"ewma"`
	InjFrac      float64 `json:"inj_frac"`
	PendingWorkS float64 `json:"pending_work_s"`

	Placed      int `json:"placed"`
	Completed   int `json:"completed"`
	MigratedIn  int `json:"migrated_in"`
	MigratedOut int `json:"migrated_out"`

	Jobs []checkpointJob `json:"jobs"`
}

// checkpointFleet is the digest's full preimage.
type checkpointFleet struct {
	Round      int              `json:"round"`
	Now        units.Time       `json:"now"`
	Cursor     int              `json:"cursor"`
	Dispatched int              `json:"dispatched"`
	Migrations int              `json:"migrations"`
	Nodes      []checkpointNode `json:"nodes"`
}

// fleetDigest fingerprints the whole run at a round barrier. It folds, per
// node: the machine's full state digest (thermal nodes, RNG words, scheduler
// ledgers, energy accumulator — see machine.State) and the engine's own
// violation accounting, placement signals and job ledger; plus the
// dispatcher's global counters. Capturing machine state here is
// perturbation-free: the barrier already flushed each machine's lazy thermal
// window and scheduler accounting via Telemetry, so Checkpoint's own flush
// covers a zero-length window.
func fleetDigest(roundNo int, now units.Time, nodes []*node, cursor, dispatched, migrations int) string {
	fleet := checkpointFleet{
		Round:      roundNo,
		Now:        now,
		Cursor:     cursor,
		Dispatched: dispatched,
		Migrations: migrations,
		Nodes:      make([]checkpointNode, len(nodes)),
	}
	for i, n := range nodes {
		cn := checkpointNode{
			Machine:      n.m.Checkpoint().Digest(),
			Measuring:    n.measuring,
			Over:         n.over,
			Peak:         n.peak,
			ViolationS:   n.violationS,
			Violations:   n.violations,
			EWMA:         n.ewma,
			InjFrac:      n.injFrac,
			PendingWorkS: n.pendingWorkS,
			Placed:       n.placed,
			Completed:    n.completed,
			MigratedIn:   n.migratedIn,
			MigratedOut:  n.migratedOut,
		}
		for _, j := range n.jobs {
			cn.Jobs = append(cn.Jobs, checkpointJob{
				ID:         j.ID,
				Machine:    j.Machine,
				Migrations: j.Migrations,
				Done:       j.done,
				DoneAt:     j.DoneAt,
				DispatchAt: j.DispatchAt,
				Assigned:   j.assigned,
			})
		}
		fleet.Nodes[i] = cn
	}
	raw, err := json.Marshal(fleet)
	if err != nil {
		// Plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("fleetsched: marshaling fleet checkpoint: %v", err))
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// verifyResume checks a replayed fleet against the checkpoint it is resuming
// from, returning a descriptive error on the first divergence. The digest
// comparison is the real gate; the named-field checks in front of it exist so
// an operator sees "cursor 14 != 17", not just two hashes.
func verifyResume(cp *Checkpoint, roundNo int, now units.Time, nodes []*node, cursor, dispatched, migrations int) error {
	switch {
	case cursor != cp.Cursor:
		return fmt.Errorf("resume divergence at round %d: arrival cursor %d != checkpoint %d", roundNo, cursor, cp.Cursor)
	case dispatched != cp.Dispatched:
		return fmt.Errorf("resume divergence at round %d: dispatched %d != checkpoint %d", roundNo, dispatched, cp.Dispatched)
	case migrations != cp.Migrations:
		return fmt.Errorf("resume divergence at round %d: migrations %d != checkpoint %d", roundNo, migrations, cp.Migrations)
	}
	if got := fleetDigest(roundNo, now, nodes, cursor, dispatched, migrations); got != cp.Digest {
		return fmt.Errorf("resume divergence at round %d (t=%.3fs): fleet digest %s != checkpoint %s", roundNo, now.Seconds(), shortHash(got), shortHash(cp.Digest))
	}
	return nil
}

// shortHash abbreviates a digest for error messages, tolerating a corrupt
// checkpoint whose digest field is not even hash-shaped.
func shortHash(s string) string {
	if len(s) > 12 {
		return s[:12]
	}
	if s == "" {
		return "(empty)"
	}
	return s
}
