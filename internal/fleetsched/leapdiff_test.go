package fleetsched

import (
	"math"
	"testing"
)

// fleetAggTolC bounds integrator-induced drift in the fleet-level thermal
// aggregates of scheduled scenarios. Per-machine trajectories are not
// comparable across integrators here — temperature-fed placement reroutes
// whole jobs on sub-tolerance differences — but the fleet's thermal
// envelope must stay put: a well-behaved integrator swaps which machine
// runs a job, not how hot the fleet runs.
const fleetAggTolC = 0.5

// TestLeapVsExactFleetAggregates runs every scheduled scenario under both
// integrators and checks the fleet thermal aggregates against each other
// (the per-machine contract is covered by the unscheduled library's
// divergence gate and the machine-level property tests).
func TestLeapVsExactFleetAggregates(t *testing.T) {
	for _, name := range schedScenarioNames() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			exact := runSchedPinned(t, name, "exact").Fleet
			leap := runSchedPinned(t, name, "leap").Fleet
			check := func(field string, e, l float64) {
				if d := math.Abs(e - l); d >= fleetAggTolC {
					t.Errorf("%s diverged by %.3f C (exact %.3f, leap %.3f)", field, d, e, l)
				}
			}
			check("mean junction p50", exact.MeanJunctionP50, leap.MeanJunctionP50)
			check("mean junction p90", exact.MeanJunctionP90, leap.MeanJunctionP90)
			check("peak junction p50", exact.PeakJunctionP50, leap.PeakJunctionP50)
			check("peak junction max", exact.PeakJunctionMax, leap.PeakJunctionMax)
		})
	}
}
