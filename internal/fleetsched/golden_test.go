package fleetsched

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/scenario"
)

// Golden-trace regression fixtures for the scheduled-scenario library: each
// sched scenario's rendered run under its default policy, plus the full
// policy-comparison table and CSV for the acceptance scenario. Both
// integrators are byte-deterministic, and both are pinned: exact fixtures
// under sched-<name>.golden, leap fixtures (the engine default) under
// sched-<name>-leap.golden. Scheduled fleets route jobs by temperature, so
// the leap integrator's sub-0.05 °C differences can legitimately flip a
// knife-edge placement and reroute whole jobs — the thermal tolerance
// contract holds per machine (see the LeapVsExact tests), while the routed
// outputs are pinned mode-for-mode here. Regenerate after intentional model
// changes with:
//
//	UPDATE_GOLDEN=1 go test ./internal/fleetsched -run Golden

const goldenScale = 0.05

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture %s — regenerate with UPDATE_GOLDEN=1 go test ./internal/fleetsched -run Golden", path)
	}
	if got != string(want) {
		t.Errorf("output drifted from %s:\n%s\n(if intentional: UPDATE_GOLDEN=1 go test ./internal/fleetsched -run Golden)", path, firstDiff(string(want), got))
	}
}

func firstDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			return fmt.Sprintf("line %d:\n-%s\n+%s", i+1, w, g)
		}
	}
	return "(lengths differ)"
}

// schedScenarioNames returns the registered scenarios carrying a scheduler
// block (this package registers them in init).
func schedScenarioNames() []string {
	var names []string
	for _, name := range scenario.Names() {
		if s, ok := scenario.Get(name); ok && s.Scheduler != nil {
			names = append(names, name)
		}
	}
	return names
}

// runSchedPinned runs a scheduled scenario under its default policy with the
// integrator pinned.
func runSchedPinned(t *testing.T, name, integrator string) *Result {
	t.Helper()
	spec, ok := scenario.Get(name)
	if !ok {
		t.Fatalf("scenario %q missing from the library", name)
	}
	pinned := *spec
	pinned.Machine.Integrator = integrator
	res, err := Run(&pinned, "", goldenScale)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestGoldenSchedScenarios(t *testing.T) {
	names := schedScenarioNames()
	if len(names) < 3 {
		t.Fatalf("only %d sched scenarios registered: %v", len(names), names)
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			checkGolden(t, "sched-"+name, runSchedPinned(t, name, "exact").String())
		})
		t.Run(name+"/leap", func(t *testing.T) {
			t.Parallel()
			checkGolden(t, "sched-"+name+"-leap", runSchedPinned(t, name, "leap").String())
		})
	}
}

func TestGoldenPolicyComparison(t *testing.T) {
	spec, ok := scenario.Get("sched-shootout")
	if !ok {
		t.Fatal("sched-shootout missing from the library")
	}
	pinned := *spec
	pinned.Machine.Integrator = "exact"
	c, err := Compare(&pinned, goldenScale)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "sched-shootout_compare", c.String())
	csv, err := c.CSV()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "sched-shootout_compare_csv", csv)

	pinned.Machine.Integrator = "leap"
	cl, err := Compare(&pinned, goldenScale)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "sched-shootout_compare-leap", cl.String())
}
