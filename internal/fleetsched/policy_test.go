package fleetsched

import (
	"strings"
	"testing"

	"repro/internal/rng"
	"repro/internal/scenario"
)

// TestPolicyRegistryMatchesSpecVocabulary pins the 1:1 correspondence
// between the scenario package's placement-policy names (the spec language)
// and the implementations here.
func TestPolicyRegistryMatchesSpecVocabulary(t *testing.T) {
	names := Names()
	if len(names) != len(scenario.PlacementPolicies) {
		t.Fatalf("Names() = %v, want %v", names, scenario.PlacementPolicies)
	}
	for i, n := range scenario.PlacementPolicies {
		if names[i] != n {
			t.Fatalf("Names()[%d] = %q, want %q", i, names[i], n)
		}
		p, err := New(n)
		if err != nil {
			t.Fatalf("New(%q): %v", n, err)
		}
		if p.Name() != n {
			t.Fatalf("New(%q).Name() = %q", n, p.Name())
		}
	}
}

func TestNewUnknownPolicyListsValidNames(t *testing.T) {
	_, err := New("hottest-first")
	if err == nil {
		t.Fatal("unknown policy accepted")
	}
	for _, n := range scenario.PlacementPolicies {
		if !strings.Contains(err.Error(), n) {
			t.Fatalf("error %q does not list valid policy %q", err, n)
		}
	}
}

func TestNewEmptyDefaultsToCoolestFirst(t *testing.T) {
	p, err := New("")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != scenario.PlaceCoolestFirst {
		t.Fatalf("default policy = %q, want coolest-first", p.Name())
	}
}

// testView builds a 4-machine view with machine 2 the coolest, machine 1 the
// least loaded, machine 3 the heaviest injector, and machine 0 the best
// predicted headroom (cool EWMA and empty backlog).
func testView() *FleetView {
	return &FleetView{
		RNG: rng.New(42),
		Machines: []MachineView{
			{Index: 0, Cores: 4, Load: 0.75, MaxJunctionC: 46, EWMAJunctionC: 40, PendingWorkS: 0, InjectionFrac: 0.10, ViolationC: 60},
			{Index: 1, Cores: 4, Load: 0.25, MaxJunctionC: 52, EWMAJunctionC: 52, PendingWorkS: 8, InjectionFrac: 0.05, ViolationC: 60},
			{Index: 2, Cores: 4, Load: 1.00, MaxJunctionC: 41, EWMAJunctionC: 47, PendingWorkS: 60, InjectionFrac: 0.02, ViolationC: 60},
			{Index: 3, Cores: 4, Load: 0.50, MaxJunctionC: 50, EWMAJunctionC: 50, PendingWorkS: 4, InjectionFrac: 0.40, ViolationC: 60},
		},
	}
}

func place(t *testing.T, name string, view *FleetView) int {
	t.Helper()
	p, err := New(name)
	if err != nil {
		t.Fatal(err)
	}
	return place2(p, view)
}

func place2(p Policy, view *FleetView) int {
	return p.Place(&Job{Threads: 1, WorkS: 1}, view)
}

func TestLeastLoadedPicksLightestMachine(t *testing.T) {
	if got := place(t, scenario.PlaceLeastLoaded, testView()); got != 1 {
		t.Fatalf("least-loaded picked %d, want 1", got)
	}
}

func TestCoolestFirstPicksLowestJunction(t *testing.T) {
	if got := place(t, scenario.PlaceCoolestFirst, testView()); got != 2 {
		t.Fatalf("coolest-first picked %d, want 2", got)
	}
}

func TestHeadroomAccountsForPendingBacklog(t *testing.T) {
	// Machine 2 is the coolest right now but carries a 60 ref-s backlog
	// (15 ref-s per core -> +7.5C predicted); machine 0's EWMA of 40 with
	// no backlog gives the most predicted headroom.
	if got := place(t, scenario.PlaceHeadroom, testView()); got != 0 {
		t.Fatalf("headroom picked %d, want 0", got)
	}
}

func TestInjectionAwarePenalisesHeavyInjectors(t *testing.T) {
	// Machine 1 is lightest (0.25 + 4*0.05 = 0.45); machine 3's moderate
	// load is outweighed by its 40% injection fraction (0.5 + 1.6 = 2.1).
	if got := place(t, scenario.PlaceInjectionAware, testView()); got != 1 {
		t.Fatalf("injection-aware picked %d, want 1", got)
	}
}

func TestRoundRobinCycles(t *testing.T) {
	p, err := New(scenario.PlaceRoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	view := testView()
	var got []int
	for i := 0; i < 6; i++ {
		got = append(got, place2(p, view))
	}
	want := []int{0, 1, 2, 3, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round-robin sequence %v, want %v", got, want)
		}
	}
}

func TestRandomIsDeterministicPerStream(t *testing.T) {
	a, _ := New(scenario.PlaceRandom)
	b, _ := New(scenario.PlaceRandom)
	va, vb := testView(), testView()
	for i := 0; i < 32; i++ {
		pa, pb := place2(a, va), place2(b, vb)
		if pa != pb {
			t.Fatalf("random placement diverged at draw %d: %d vs %d", i, pa, pb)
		}
		if pa < 0 || pa >= len(va.Machines) {
			t.Fatalf("random placement out of range: %d", pa)
		}
	}
}

func TestArgBestTieBreaksByLowestIndex(t *testing.T) {
	view := &FleetView{Machines: []MachineView{
		{Index: 7, MaxJunctionC: 40},
		{Index: 3, MaxJunctionC: 40},
		{Index: 5, MaxJunctionC: 41},
	}}
	got := argBest(view, func(m *MachineView) float64 { return m.MaxJunctionC })
	if view.Machines[got].Index != 3 {
		t.Fatalf("tie broke to index %d, want 3", view.Machines[got].Index)
	}
}
