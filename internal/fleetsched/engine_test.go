package fleetsched

import (
	"strings"
	"testing"

	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/units"
)

const testScale = 0.05

func getSpec(t *testing.T, name string) *scenario.Spec {
	t.Helper()
	spec, ok := scenario.Get(name)
	if !ok {
		t.Fatalf("scenario %q not registered", name)
	}
	return spec
}

func TestGenJobsDeterministicAndOrdered(t *testing.T) {
	spec := getSpec(t, "sched-shootout")
	dur := units.FromSeconds(20)
	a := genJobs(spec, dur, rng.New(spec.Fleet.BaseSeed+dispatchSeedSalt))
	b := genJobs(spec, dur, rng.New(spec.Fleet.BaseSeed+dispatchSeedSalt))
	if len(a) == 0 {
		t.Fatal("no jobs generated")
	}
	if len(a) != len(b) {
		t.Fatalf("job counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ArriveAt != b[i].ArriveAt || a[i].WorkS != b[i].WorkS {
			t.Fatalf("job %d differs between identical generations", i)
		}
		if i > 0 && a[i].ArriveAt < a[i-1].ArriveAt {
			t.Fatalf("jobs out of arrival order at %d", i)
		}
		if a[i].ID != i {
			t.Fatalf("job %d has ID %d", i, a[i].ID)
		}
		if a[i].ArriveAt >= dur {
			t.Fatalf("job %d arrives at %v, past duration %v", i, a[i].ArriveAt, dur)
		}
	}
}

func TestGenJobsScaleInvariantExpectation(t *testing.T) {
	// The expected job count is Rate x DurationS regardless of scale; with
	// the same dispatcher seed the realised counts at two scales should be
	// close (they are different Poisson draws over rescaled rates).
	spec := getSpec(t, "sched-shootout")
	small := genJobs(spec, units.FromSeconds(spec.DurationS*0.05), rng.New(1))
	full := genJobs(spec, units.FromSeconds(spec.DurationS*0.5), rng.New(1))
	expected := spec.Scheduler.Jobs[0].Rate * spec.DurationS
	for _, n := range []int{len(small), len(full)} {
		if float64(n) < 0.7*expected || float64(n) > 1.3*expected {
			t.Fatalf("job count %d far from scale-invariant expectation %.0f", n, expected)
		}
	}
}

func TestGenJobsWindowEnvelopeConfinesArrivals(t *testing.T) {
	spec := getSpec(t, "hotspot-herd")
	dur := units.FromSeconds(15)
	jobs := genJobs(spec, dur, rng.New(9))
	if len(jobs) == 0 {
		t.Fatal("no herd jobs generated")
	}
	start := units.FromSeconds(dur.Seconds() * 0.3)
	end := units.FromSeconds(dur.Seconds() * 0.6)
	for _, j := range jobs {
		if j.ArriveAt < start || j.ArriveAt >= end {
			t.Fatalf("herd job arrives at %v outside window [%v,%v)", j.ArriveAt, start, end)
		}
	}
}

func TestRunJobAccountingConsistent(t *testing.T) {
	res, err := RunByName("sched-shootout", "", testScale)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Placement
	if p.JobsArrived == 0 || p.JobsDispatched == 0 || p.JobsCompleted == 0 {
		t.Fatalf("empty run: %+v", p)
	}
	if p.JobsDispatched > p.JobsArrived || p.JobsCompleted > p.JobsDispatched {
		t.Fatalf("inconsistent job funnel: %+v", p)
	}
	var placed, completed int
	for _, m := range res.Machines {
		placed += m.JobsPlaced
		completed += m.JobsCompleted
	}
	// Without migration, per-machine placement sums match the fleet funnel.
	if placed != p.JobsDispatched || completed != p.JobsCompleted {
		t.Fatalf("machine sums (placed %d, done %d) != fleet (%d, %d)",
			placed, completed, p.JobsDispatched, p.JobsCompleted)
	}
	for _, j := range res.Jobs {
		if j.Machine >= 0 && j.DispatchAt < j.ArriveAt {
			t.Fatalf("job %d dispatched before arrival", j.ID)
		}
		if j.done {
			if j.DoneAt <= j.ArriveAt {
				t.Fatalf("job %d done at %v, arrived %v", j.ID, j.DoneAt, j.ArriveAt)
			}
			if s := j.Slowdown(); s < 1 {
				t.Fatalf("job %d slowdown %v < 1 (faster than ideal)", j.ID, s)
			}
		}
	}
	if p.SlowdownMean < 1 || p.SlowdownP95 < p.SlowdownMean*0.5 {
		t.Fatalf("implausible slowdowns: %+v", p)
	}
}

func TestRunMigrationConservesJobs(t *testing.T) {
	res, err := RunByName("hotspot-herd", "", testScale)
	if err != nil {
		t.Fatal(err)
	}
	if res.Placement.Migrations == 0 {
		t.Fatal("hotspot-herd produced no migrations; the migration loop never fired")
	}
	var in, out int
	for _, m := range res.Machines {
		in += m.MigratedIn
		out += m.MigratedOut
	}
	if in != out || in != res.Placement.Migrations {
		t.Fatalf("migration ledger broken: in %d, out %d, fleet %d", in, out, res.Placement.Migrations)
	}
	// Migrated jobs must still complete with their work conserved: every
	// dispatched job either completes or is still resident, never lost.
	migrated, migratedDone := 0, 0
	for _, j := range res.Jobs {
		if j.Migrations > 0 {
			migrated++
			if j.done {
				migratedDone++
			}
		}
	}
	if migrated == 0 {
		t.Fatal("no job records a migration despite fleet migrations")
	}
	if migratedDone == 0 {
		t.Fatal("no migrated job ever completed")
	}
}

func TestRunPolicyOverrideChangesPlacement(t *testing.T) {
	spec := getSpec(t, "sched-shootout")
	random, err := Run(spec, scenario.PlaceRandom, testScale)
	if err != nil {
		t.Fatal(err)
	}
	coolest, err := Run(spec, scenario.PlaceCoolestFirst, testScale)
	if err != nil {
		t.Fatal(err)
	}
	if random.String() == coolest.String() {
		t.Fatal("random and coolest-first produced identical runs; policy not applied")
	}
	if random.Policy != scenario.PlaceRandom || coolest.Policy != scenario.PlaceCoolestFirst {
		t.Fatalf("policies recorded as %q/%q", random.Policy, coolest.Policy)
	}
}

func TestThermalAwarePoliciesReduceViolations(t *testing.T) {
	// The acceptance property: on sched-shootout, coolest-first and
	// headroom each beat random and round-robin on thermal violations.
	c, err := CompareByName("sched-shootout", testScale)
	if err != nil {
		t.Fatal(err)
	}
	viol := map[string]int{}
	for _, r := range c.Results {
		viol[r.Policy] = r.Fleet.TotalViolations
	}
	for _, aware := range []string{scenario.PlaceCoolestFirst, scenario.PlaceHeadroom} {
		for _, naive := range []string{scenario.PlaceRandom, scenario.PlaceRoundRobin} {
			if viol[aware] >= viol[naive] {
				t.Errorf("%s (%d violations) does not beat %s (%d)",
					aware, viol[aware], naive, viol[naive])
			}
		}
	}
	if viol[scenario.PlaceRandom] == 0 {
		t.Error("random placement shows no violations; scenario lost its thermal contrast")
	}
}

func TestRunWebserverScenarioReportsQoS(t *testing.T) {
	res, err := RunByName("colo-spill", "", testScale)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fleet.WebMachines != res.Spec.Fleet.Machines {
		t.Fatalf("web machines = %d, want %d", res.Fleet.WebMachines, res.Spec.Fleet.Machines)
	}
	if res.Fleet.WebGoodMean <= 0 || res.Fleet.WebThroughput <= 0 {
		t.Fatalf("web QoS empty: %+v", res.Fleet)
	}
}

func TestRunRejectsUnscheduledScenario(t *testing.T) {
	_, err := RunByName("fleet-diurnal", "", testScale)
	if err == nil || !strings.Contains(err.Error(), "no scheduler block") {
		t.Fatalf("err = %v, want scheduler-block guidance", err)
	}
}

func TestRunUnknownPolicyError(t *testing.T) {
	_, err := RunByName("sched-shootout", "warmest-first", testScale)
	if err == nil || !strings.Contains(err.Error(), "valid:") {
		t.Fatalf("err = %v, want valid-name listing", err)
	}
}

func TestComparisonCSVShape(t *testing.T) {
	c, err := CompareByName("sched-shootout", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	csv, err := c.CSV()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(csv, "\n"), "\n")
	if len(lines) != 1+len(Names()) {
		t.Fatalf("CSV has %d lines, want header + %d policies", len(lines), len(Names()))
	}
	if !strings.HasPrefix(lines[0], "policy,violations,") {
		t.Fatalf("CSV header = %q", lines[0])
	}
	for i, name := range Names() {
		if !strings.HasPrefix(lines[i+1], name+",") {
			t.Fatalf("CSV row %d = %q, want policy %q first", i+1, lines[i+1], name)
		}
	}
}
