package fleetsched

import (
	"fmt"
	"strings"

	"repro/internal/export"
)

// ExportResult writes a scheduled run's plot-ready CSVs into dir: the
// per-machine table (the unscheduled columns plus the placement ledger), a
// fleet/placement aggregate table, and the per-job ledger.
func ExportResult(r *Result, dir string) ([]string, error) {
	files, err := RenderResult(r)
	if err != nil {
		return nil, err
	}
	return export.Write(dir, files...)
}

// RenderResult renders the scheduled run's CSV artefacts in memory — shared
// by ExportResult and the service daemon, so daemon exports are
// byte-identical to the CLI's.
func RenderResult(r *Result) ([]export.File, error) {
	mHeader := []string{
		"machine", "seed", "fan_factor", "mean_c", "peak_c", "idle_c",
		"work_rate", "power_w", "injections", "injected_idle_s", "busy_s",
		"overhead_pct", "violation_s", "violations", "tm1_trips",
		"tm1_throttled_s", "web_good", "web_rps",
		"jobs_placed", "jobs_completed", "migrated_in", "migrated_out",
	}
	var mRows [][]string
	for _, m := range r.Machines {
		webGood, webRPS := 0.0, 0.0
		if m.Web != nil {
			webGood = m.Web.GoodFraction()
			webRPS = m.Web.Throughput
		}
		mRows = append(mRows, []string{
			fmt.Sprintf("%d", m.Index),
			fmt.Sprintf("%d", m.Seed),
			fmt.Sprintf("%.6f", m.FanFactor),
			fmt.Sprintf("%.4f", m.MeanJunction),
			fmt.Sprintf("%.4f", m.PeakJunction),
			fmt.Sprintf("%.4f", m.IdleTemp),
			fmt.Sprintf("%.6f", m.WorkRate),
			fmt.Sprintf("%.4f", m.MeanPower),
			fmt.Sprintf("%d", m.Injections),
			fmt.Sprintf("%.4f", m.InjectedIdleS),
			fmt.Sprintf("%.4f", m.BusyS),
			fmt.Sprintf("%.4f", 100*m.OverheadFraction()),
			fmt.Sprintf("%.3f", m.ViolationS),
			fmt.Sprintf("%d", m.Violations),
			fmt.Sprintf("%d", m.TM1Trips),
			fmt.Sprintf("%.3f", m.TM1ThrottledS),
			fmt.Sprintf("%.6f", webGood),
			fmt.Sprintf("%.3f", webRPS),
			fmt.Sprintf("%d", m.JobsPlaced),
			fmt.Sprintf("%d", m.JobsCompleted),
			fmt.Sprintf("%d", m.MigratedIn),
			fmt.Sprintf("%d", m.MigratedOut),
		})
	}
	machinesCSV, err := export.CSV(mHeader, mRows)
	if err != nil {
		return nil, err
	}

	a, p := r.Fleet, r.Placement
	var fRows [][]string
	row := func(k, v string) { fRows = append(fRows, []string{k, v}) }
	row("policy", r.Policy)
	row("machines", fmt.Sprintf("%d", len(r.Machines)))
	row("duration_s", fmt.Sprintf("%.3f", r.Duration.Seconds()))
	row("warmup_s", fmt.Sprintf("%.3f", r.Warmup.Seconds()))
	row("round_s", fmt.Sprintf("%.3f", r.Round.Seconds()))
	row("jobs_arrived", fmt.Sprintf("%d", p.JobsArrived))
	row("jobs_dispatched", fmt.Sprintf("%d", p.JobsDispatched))
	row("jobs_completed", fmt.Sprintf("%d", p.JobsCompleted))
	row("migrations", fmt.Sprintf("%d", p.Migrations))
	row("slowdown_mean", fmt.Sprintf("%.6f", p.SlowdownMean))
	row("slowdown_p95", fmt.Sprintf("%.6f", p.SlowdownP95))
	row("wait_mean_s", fmt.Sprintf("%.6f", p.WaitMeanS))
	row("temp_stddev_c", fmt.Sprintf("%.4f", p.TempStddevC))
	row("peak_spread_c", fmt.Sprintf("%.4f", p.PeakSpreadC))
	row("mean_junction_max_c", fmt.Sprintf("%.4f", a.MeanJunctionMax))
	row("peak_junction_max_c", fmt.Sprintf("%.4f", a.PeakJunctionMax))
	row("total_work_rate", fmt.Sprintf("%.6f", a.TotalWorkRate))
	row("overhead_pct", fmt.Sprintf("%.4f", a.OverheadPct))
	row("violation_s", fmt.Sprintf("%.3f", a.ViolationS))
	row("total_violations", fmt.Sprintf("%d", a.TotalViolations))
	row("machines_with_violations", fmt.Sprintf("%d", a.MachinesViol))
	row("tm1_trips", fmt.Sprintf("%d", a.TM1Trips))
	row("web_good_mean", fmt.Sprintf("%.6f", a.WebGoodMean))
	row("web_throughput_rps", fmt.Sprintf("%.3f", a.WebThroughput))
	fleetCSV, err := export.CSV([]string{"metric", "value"}, fRows)
	if err != nil {
		return nil, err
	}

	jHeader := []string{
		"job", "class", "threads", "work_s", "power_factor",
		"arrive_s", "dispatch_s", "done_s", "machine", "migrations", "slowdown",
	}
	var jRows [][]string
	for _, j := range r.Jobs {
		dispatch, done, slow := -1.0, -1.0, 0.0
		if j.Machine >= 0 {
			dispatch = j.DispatchAt.Seconds()
		}
		if j.done {
			done = j.DoneAt.Seconds()
			slow = j.Slowdown()
		}
		jRows = append(jRows, []string{
			fmt.Sprintf("%d", j.ID),
			j.Class,
			fmt.Sprintf("%d", j.Threads),
			fmt.Sprintf("%.4f", j.WorkS),
			fmt.Sprintf("%.3f", j.PowerFactor),
			fmt.Sprintf("%.4f", j.ArriveAt.Seconds()),
			fmt.Sprintf("%.4f", dispatch),
			fmt.Sprintf("%.4f", done),
			fmt.Sprintf("%d", j.Machine),
			fmt.Sprintf("%d", j.Migrations),
			fmt.Sprintf("%.6f", slow),
		})
	}
	jobsCSV, err := export.CSV(jHeader, jRows)
	if err != nil {
		return nil, err
	}

	base := strings.ReplaceAll(r.Spec.Name, "-", "_")
	return []export.File{
		{Name: fmt.Sprintf("sched_%s_machines.csv", base), Content: machinesCSV},
		{Name: fmt.Sprintf("sched_%s_fleet.csv", base), Content: fleetCSV},
		{Name: fmt.Sprintf("sched_%s_jobs.csv", base), Content: jobsCSV},
	}, nil
}

// Export runs the named scheduled scenario under its default policy and
// writes its CSVs.
func Export(name string, scale float64, dir string) ([]string, error) {
	res, err := RunByName(name, "", scale)
	if err != nil {
		return nil, err
	}
	return ExportResult(res, dir)
}
