// Package fleetsched is the thermal-aware fleet scheduler: it turns a
// scenario's fleet of independently-simulated machines into a coordinated
// cluster. A deterministic dispatcher consumes the scenario's job arrival
// streams and routes each arriving job to a machine through a pluggable
// placement Policy; an optional migration loop evacuates work off machines in
// thermal violation. Dimetrodon manages heat *within* one processor via idle
// cycle injection — this layer decides *which machine gets the work in the
// first place*, so preventive injection and placement cooperate
// (temperature-aware task scheduling in the sense of Chrobak et al.; see
// PAPERS.md).
//
// Determinism is structured exactly like the rest of the repository: time is
// divided into dispatch rounds; all cross-machine decisions (placement,
// migration) happen single-threaded at round boundaries against the telemetry
// gathered at the previous barrier, and machines advance between boundaries
// in parallel across the runner pool, each mutating only its own state. Every
// stochastic stream (per-machine simulation, arrival processes, the random
// placement policy) is derived from the scenario's base seed by identity,
// never shared — so fleet output is byte-identical at any -jobs level.
package fleetsched

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/scenario"
)

// MachineView is one machine's dispatcher-facing state at a round boundary —
// what placement policies rank machines by. Temperatures are the true model
// junctions (a fleet controller owns its machines); load counters come from
// the scheduler telemetry snapshot, and the pending/EWMA fields are
// maintained by the engine across rounds.
type MachineView struct {
	// Index is the machine's fleet index (stable identity); policies return
	// positions into FleetView.Machines, which may be a filtered subset.
	Index int
	// Cores is the machine's scheduler capacity (cores × SMT contexts).
	Cores int
	// Load is live threads per core (running + runnable + pinned).
	Load float64
	// ResidentJobs is the number of incomplete scheduled jobs on the machine.
	ResidentJobs int
	// PendingWorkS is the remaining reference-seconds of scheduled-job work.
	PendingWorkS float64
	// MaxJunctionC is the hottest junction at the last barrier.
	MaxJunctionC float64
	// EWMAJunctionC is the exponentially-weighted moving average of
	// MaxJunctionC across rounds — the headroom policy's trend estimate.
	EWMAJunctionC float64
	// InjectionFrac is the last round's injected-idle fraction of occupied
	// core time: how hard the machine's Dimetrodon controller is already
	// working to stay cool.
	InjectionFrac float64
	// ViolationC is the scenario's thermal-violation threshold.
	ViolationC float64
}

// FleetView is the candidate set a placement decision chooses from, plus the
// dispatcher-owned RNG stream stochastic policies draw on.
type FleetView struct {
	Machines []MachineView
	RNG      *rng.Source
}

// Policy routes one arriving (or migrating) job to a machine. Place returns
// an index into view.Machines; implementations must be deterministic given
// (their own state, job, view) — ties broken by the lowest machine index —
// and must not retain view across calls.
type Policy interface {
	Name() string
	Place(job *Job, view *FleetView) int
}

// Names returns every placement policy name in canonical comparison order.
func Names() []string {
	return append([]string(nil), scenario.PlacementPolicies...)
}

// New returns a fresh instance of the named placement policy. Policy
// instances carry per-run state (round-robin position) and must not be shared
// between runs. An empty name selects coolest-first. Unknown names report the
// valid set.
func New(name string) (Policy, error) {
	switch name {
	case scenario.PlaceRandom:
		return &randomPolicy{}, nil
	case scenario.PlaceRoundRobin:
		return &roundRobinPolicy{}, nil
	case scenario.PlaceLeastLoaded:
		return leastLoadedPolicy{}, nil
	case "", scenario.PlaceCoolestFirst:
		return coolestFirstPolicy{}, nil
	case scenario.PlaceHeadroom:
		return headroomPolicy{}, nil
	case scenario.PlaceInjectionAware:
		return injectionAwarePolicy{}, nil
	default:
		return nil, fmt.Errorf("fleetsched: unknown placement policy %q (valid: %v)", name, Names())
	}
}

// randomPolicy places uniformly at random — the naive baseline every
// placement study compares against.
type randomPolicy struct{}

func (*randomPolicy) Name() string { return scenario.PlaceRandom }
func (*randomPolicy) Place(_ *Job, view *FleetView) int {
	return view.RNG.Intn(len(view.Machines))
}

// roundRobinPolicy cycles through candidate positions — fair in job count,
// blind to both load and heat.
type roundRobinPolicy struct{ next int }

func (*roundRobinPolicy) Name() string { return scenario.PlaceRoundRobin }
func (p *roundRobinPolicy) Place(_ *Job, view *FleetView) int {
	i := p.next % len(view.Machines)
	p.next++
	return i
}

// leastLoadedPolicy picks the machine with the fewest live threads per core —
// classic load balancing, thermally blind.
type leastLoadedPolicy struct{}

func (leastLoadedPolicy) Name() string { return scenario.PlaceLeastLoaded }
func (leastLoadedPolicy) Place(_ *Job, view *FleetView) int {
	return argBest(view, func(m *MachineView) float64 { return m.Load })
}

// coolestFirstPolicy picks the machine with the lowest current hottest
// junction — the greedy temperature-aware rule ("assign to the coolest
// processor") that Chrobak et al. analyse.
type coolestFirstPolicy struct{}

func (coolestFirstPolicy) Name() string { return scenario.PlaceCoolestFirst }
func (coolestFirstPolicy) Place(_ *Job, view *FleetView) int {
	return argBest(view, func(m *MachineView) float64 { return m.MaxJunctionC })
}

// headroomDegPerRefSec converts pending per-core work into predicted
// temperature rise: a machine already holding a backlog will heat past its
// current reading once that work runs. The coefficient is deliberately
// coarse — it ranks machines, it does not forecast degrees.
const headroomDegPerRefSec = 0.5

// headroomPolicy maximises predicted thermal headroom: the violation
// threshold minus an EWMA of recent hottest-junction readings minus a
// pending-load term. Against coolest-first it is robust to the sawtooth a
// just-idled hot machine shows at a single instant, and it refuses to stack
// work on a machine whose queue already commits it to heating.
type headroomPolicy struct{}

func (headroomPolicy) Name() string { return scenario.PlaceHeadroom }
func (headroomPolicy) Place(_ *Job, view *FleetView) int {
	return argBest(view, func(m *MachineView) float64 {
		predicted := m.EWMAJunctionC + headroomDegPerRefSec*m.PendingWorkS/float64(m.Cores)
		return -(m.ViolationC - predicted) // argBest minimises; headroom is maximised
	})
}

// injectionPenaltyLoad is how many units of per-core load one unit of
// injection fraction costs in the injection-aware ranking: a machine
// injecting 25 % of its occupied time ranks like one carrying an extra
// core's worth of queue.
const injectionPenaltyLoad = 4.0

// injectionAwarePolicy is least-loaded with a penalty for machines whose
// Dimetrodon controllers are already injecting heavily. Injection fraction is
// the preventive layer's own confession that it is fighting heat — routing
// more work there both heats the machine and runs slower (the injected idle
// cycles are exactly the throughput the new job would lose).
type injectionAwarePolicy struct{}

func (injectionAwarePolicy) Name() string { return scenario.PlaceInjectionAware }
func (injectionAwarePolicy) Place(_ *Job, view *FleetView) int {
	return argBest(view, func(m *MachineView) float64 {
		return m.Load + injectionPenaltyLoad*m.InjectionFrac
	})
}

// argBest returns the position of the candidate minimising score, breaking
// ties by the lowest fleet index so rankings are deterministic.
func argBest(view *FleetView, score func(*MachineView) float64) int {
	best := 0
	bestScore := score(&view.Machines[0])
	for i := 1; i < len(view.Machines); i++ {
		s := score(&view.Machines[i])
		m := &view.Machines[i]
		b := &view.Machines[best]
		if s < bestScore || (s == bestScore && m.Index < b.Index) {
			best, bestScore = i, s
		}
	}
	return best
}
