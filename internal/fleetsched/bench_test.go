package fleetsched

import (
	"testing"

	"repro/internal/scenario"
)

// benchSched runs one whole scheduled-scenario round loop (the acceptance
// scenario at golden scale, default policy) under the given integrator.
func benchSched(b *testing.B, integrator string) {
	b.Helper()
	spec, ok := scenario.Get("sched-shootout")
	if !ok {
		b.Fatal("sched-shootout missing from the library")
	}
	pinned := *spec
	pinned.Machine.Integrator = integrator
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(&pinned, "", 0.05); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetSched measures the scheduled fleet under both integrators —
// the round-loop barrier overhead plus the fleet simulation. "leap" is the
// engine default; "exact" is kept for comparison. scripts/bench.sh records
// both in BENCH_results.json.
func BenchmarkFleetSched(b *testing.B) {
	b.Run("integrator=leap", func(b *testing.B) { benchSched(b, "leap") })
	b.Run("integrator=exact", func(b *testing.B) { benchSched(b, "exact") })
}

// BenchmarkFleetSchedCompare measures the full six-policy sweep — what
// `dimctl sched compare` costs.
func BenchmarkFleetSchedCompare(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := CompareByName("sched-shootout", 0.05); err != nil {
			b.Fatal(err)
		}
	}
}
