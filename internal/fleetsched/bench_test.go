package fleetsched

import "testing"

// BenchmarkFleetSched measures one whole scheduled-scenario run (the
// acceptance scenario at golden scale, default policy): the round-loop
// barrier overhead plus the fleet simulation. scripts/bench.sh records it in
// BENCH_results.json.
func BenchmarkFleetSched(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunByName("sched-shootout", "", 0.05); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetSchedCompare measures the full six-policy sweep — what
// `dimctl sched compare` costs.
func BenchmarkFleetSchedCompare(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := CompareByName("sched-shootout", 0.05); err != nil {
			b.Fatal(err)
		}
	}
}
