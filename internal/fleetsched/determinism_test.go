package fleetsched

import (
	"testing"

	"repro/internal/runner"
)

// TestSchedDeterministicAcrossJobs extends the runner's central contract to
// the cross-machine engine: rendered output and comparison CSV are
// byte-identical at any parallelism, because every cross-machine decision
// happens at a single-threaded round barrier and machines advance between
// barriers as deterministic functions of their own state.
func TestSchedDeterministicAcrossJobs(t *testing.T) {
	defer runner.SetJobs(0)
	render := func(jobs int) string {
		runner.SetJobs(jobs)
		res, err := RunByName("sched-shootout", "", 0.02)
		if err != nil {
			t.Fatal(err)
		}
		return res.String()
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		t.Fatalf("sched output differs between -jobs 1 and -jobs 8:\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s", serial, parallel)
	}
}

// TestMigrationDeterministicAcrossJobs covers the most stateful path — the
// evacuation loop killing and respawning threads mid-run — across jobs.
func TestMigrationDeterministicAcrossJobs(t *testing.T) {
	defer runner.SetJobs(0)
	render := func(jobs int) string {
		runner.SetJobs(jobs)
		res, err := RunByName("hotspot-herd", "", 0.02)
		if err != nil {
			t.Fatal(err)
		}
		return res.String()
	}
	serial := render(1)
	parallel := render(6)
	if serial != parallel {
		t.Fatalf("migration output differs between -jobs 1 and -jobs 6:\n--- jobs=1 ---\n%s\n--- jobs=6 ---\n%s", serial, parallel)
	}
}

// TestComparisonDeterministicAcrossJobs pins the full policy sweep plus its
// CSV export.
func TestComparisonDeterministicAcrossJobs(t *testing.T) {
	defer runner.SetJobs(0)
	render := func(jobs int) (string, string) {
		runner.SetJobs(jobs)
		c, err := CompareByName("sched-shootout", 0.02)
		if err != nil {
			t.Fatal(err)
		}
		csv, err := c.CSV()
		if err != nil {
			t.Fatal(err)
		}
		return c.String(), csv
	}
	s1, c1 := render(1)
	s8, c8 := render(8)
	if s1 != s8 {
		t.Fatal("comparison table differs between -jobs 1 and -jobs 8")
	}
	if c1 != c8 {
		t.Fatal("comparison CSV differs between -jobs 1 and -jobs 8")
	}
}
