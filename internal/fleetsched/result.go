package fleetsched

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/analysis"
	"repro/internal/scenario"
	"repro/internal/units"
)

// MachineStats is one fleet member's outcome: the same measurement-window
// result the unscheduled path produces, plus the placement ledger.
type MachineStats struct {
	scenario.MachineResult
	JobsPlaced    int
	JobsCompleted int
	MigratedIn    int
	MigratedOut   int
}

// PlacementAgg summarises placement quality across the fleet — the columns a
// policy comparison ranks by.
type PlacementAgg struct {
	JobsArrived    int
	JobsDispatched int
	JobsCompleted  int
	Migrations     int

	// Slowdown distribution over completed jobs (observed makespan over
	// ideal duration; 1.0 is perfect).
	SlowdownMean float64
	SlowdownP95  float64
	// WaitMeanS is the mean dispatch-queue latency (arrival to placement).
	WaitMeanS float64

	// TempStddevC is the standard deviation of per-machine mean junction
	// temperatures — low values mean the policy spread heat evenly.
	TempStddevC float64
	// PeakSpreadC is the hottest machine's peak minus the coolest's.
	PeakSpreadC float64
}

// Result is one executed scheduled scenario under one placement policy.
type Result struct {
	Spec     *scenario.Spec
	Policy   string
	Scale    float64
	Duration units.Time
	Warmup   units.Time
	Round    units.Time

	Machines  []MachineStats
	Fleet     scenario.FleetAgg
	Placement PlacementAgg
	Jobs      []*Job
}

// aggregatePlacement folds the job ledger and per-machine stats into the
// placement-quality aggregate.
func aggregatePlacement(machines []MachineStats, jobs []*Job, dispatched, migrations int) PlacementAgg {
	agg := PlacementAgg{
		JobsArrived:    len(jobs),
		JobsDispatched: dispatched,
		Migrations:     migrations,
	}
	var slowdowns []float64
	var waitSum float64
	for _, j := range jobs {
		if j.done {
			agg.JobsCompleted++
			slowdowns = append(slowdowns, j.Slowdown())
		}
		if j.Machine >= 0 {
			waitSum += (j.DispatchAt - j.ArriveAt).Seconds()
		}
	}
	if len(slowdowns) > 0 {
		var sum float64
		for _, s := range slowdowns {
			sum += s
		}
		agg.SlowdownMean = sum / float64(len(slowdowns))
		agg.SlowdownP95 = analysis.Percentile(slowdowns, 95)
	}
	if dispatched > 0 {
		agg.WaitMeanS = waitSum / float64(dispatched)
	}

	if len(machines) > 0 {
		var mean float64
		minPeak, maxPeak := math.Inf(1), math.Inf(-1)
		for _, m := range machines {
			mean += m.MeanJunction
			if m.PeakJunction < minPeak {
				minPeak = m.PeakJunction
			}
			if m.PeakJunction > maxPeak {
				maxPeak = m.PeakJunction
			}
		}
		mean /= float64(len(machines))
		var ss float64
		for _, m := range machines {
			d := m.MeanJunction - mean
			ss += d * d
		}
		agg.TempStddevC = math.Sqrt(ss / float64(len(machines)))
		agg.PeakSpreadC = maxPeak - minPeak
	}
	return agg
}

// String renders the scheduled run — fixed-width and fully deterministic so
// golden traces and the jobs-1-vs-8 diff can compare byte-for-byte.
func (r *Result) String() string {
	var b strings.Builder
	s := r.Spec
	fmt.Fprintf(&b, "Sched scenario %s: %s\n", s.Name, s.Title)
	fmt.Fprintf(&b, "fleet of %d machines, %v per machine (%v warmup), round %v, placement %s, dtm %s, violation >= %.1fC\n",
		s.Fleet.Machines, r.Duration, r.Warmup, r.Round, r.Policy, s.Policy.Label(), s.ViolationThreshold())
	p := r.Placement
	fmt.Fprintf(&b, "jobs: %d arrived, %d dispatched, %d completed, %d migrations\n",
		p.JobsArrived, p.JobsDispatched, p.JobsCompleted, p.Migrations)
	fmt.Fprintf(&b, "qos: slowdown mean %.3f / p95 %.3f, dispatch wait mean %.3fs\n",
		p.SlowdownMean, p.SlowdownP95, p.WaitMeanS)
	fmt.Fprintf(&b, "balance: mean-junction stddev %.3fC, peak spread %.3fC\n",
		p.TempStddevC, p.PeakSpreadC)
	a := r.Fleet
	fmt.Fprintf(&b, "mean junction across fleet:  p50 %7.3fC  p90 %7.3fC  max %7.3fC\n",
		a.MeanJunctionP50, a.MeanJunctionP90, a.MeanJunctionMax)
	fmt.Fprintf(&b, "peak junction across fleet:  p50 %7.3fC  p99 %7.3fC  max %7.3fC\n",
		a.PeakJunctionP50, a.PeakJunctionP99, a.PeakJunctionMax)
	fmt.Fprintf(&b, "fleet work rate %.3f ref-s/s   total power %.1fW   injection overhead %.2f%% (%d quanta)\n",
		a.TotalWorkRate, a.TotalPower, a.OverheadPct, a.TotalInjection)
	fmt.Fprintf(&b, "thermal violations: %d excursions on %d/%d machines, %.1fs above threshold\n",
		a.TotalViolations, a.MachinesViol, len(r.Machines), a.ViolationS)
	if a.TM1Trips > 0 || a.TM1ThrottledS > 0 || s.Policy.TM1 {
		fmt.Fprintf(&b, "TM1 backstop: %d trips, %.1fs throttled fleet-wide\n", a.TM1Trips, a.TM1ThrottledS)
	}
	if a.WebMachines > 0 {
		fmt.Fprintf(&b, "web QoS: good %.1f%% mean / %.1f%% worst machine, %.1f req/s fleet throughput\n",
			100*a.WebGoodMean, 100*a.WebGoodMin, a.WebThroughput)
	}
	b.WriteString("\n machine      mean      peak    work/s   power    inj%   viol    tm1   jobs   done     in    out\n")
	for _, m := range r.Machines {
		fmt.Fprintf(&b, " %4d     %7.3fC  %7.3fC  %7.3f  %6.1fW  %5.2f  %5d  %5d  %5d  %5d  %5d  %5d\n",
			m.Index, m.MeanJunction, m.PeakJunction, m.WorkRate, m.MeanPower,
			100*m.OverheadFraction(), m.Violations, m.TM1Trips,
			m.JobsPlaced, m.JobsCompleted, m.MigratedIn, m.MigratedOut)
	}
	return b.String()
}
