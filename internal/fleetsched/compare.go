package fleetsched

import (
	"fmt"
	"strings"

	"repro/internal/export"
	"repro/internal/scenario"
)

// Comparison is one scheduled scenario swept over every placement policy,
// each policy seeing the identical fleet, arrival streams and migration
// settings — only the placement decisions differ.
type Comparison struct {
	Spec    *scenario.Spec
	Scale   float64
	Results []*Result // in PlacementPolicies order
}

// Compare runs the scheduled scenario under every placement policy. Policies
// run sequentially (each run parallelises over machines within rounds), so
// the comparison is byte-identical at any -jobs level.
func Compare(spec *scenario.Spec, scale float64) (*Comparison, error) {
	return CompareOpts(spec, scale, Options{}, nil)
}

// CompareOpts is Compare with per-run options; onPolicy, when non-nil, is
// called with each policy's name as its sweep starts, so a streaming
// observer can attribute the round telemetry that follows.
func CompareOpts(spec *scenario.Spec, scale float64, opts Options, onPolicy func(policy string)) (*Comparison, error) {
	c := &Comparison{Spec: spec, Scale: scale}
	for _, name := range Names() {
		if onPolicy != nil {
			onPolicy(name)
		}
		res, err := RunOpts(spec, name, scale, opts)
		if err != nil {
			return nil, fmt.Errorf("fleetsched: comparing %q under %s: %w", spec.Name, name, err)
		}
		c.Results = append(c.Results, res)
	}
	return c, nil
}

// DefaultResult returns the comparison entry run under the spec's default
// placement policy (coolest-first when the spec names none) — the run whose
// per-machine/fleet/job CSVs `sched export` ships alongside the comparison,
// without re-simulating it.
func (c *Comparison) DefaultResult() *Result {
	name := c.Spec.Scheduler.Policy
	if name == "" {
		name = scenario.PlaceCoolestFirst
	}
	for _, r := range c.Results {
		if r.Policy == name {
			return r
		}
	}
	return c.Results[0]
}

// CompareByName looks the scenario up in the registry and compares policies.
func CompareByName(name string, scale float64) (*Comparison, error) {
	spec, ok := scenario.Get(name)
	if !ok {
		return nil, fmt.Errorf("fleetsched: unknown scenario %q", name)
	}
	return Compare(spec, scale)
}

// String renders the policy-comparison table: one row per policy, the
// thermal columns first (what a preventive system defends), then placement
// churn and QoS. The QoS delta column is each policy's mean slowdown minus
// the first (random baseline) row's.
func (c *Comparison) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Placement policy comparison — scenario %s (%d machines, dtm %s)\n",
		c.Spec.Name, c.Spec.Fleet.Machines, c.Spec.Policy.Label())
	r0 := c.Results[0]
	fmt.Fprintf(&b, "%d jobs over %v per machine, round %v, violation >= %.1fC",
		r0.Placement.JobsArrived, r0.Duration, r0.Round, c.Spec.ViolationThreshold())
	if c.Spec.Scheduler.Migration.Enabled {
		b.WriteString(", migration on")
	}
	b.WriteString("\n\n")
	b.WriteString(" policy            viol   viol_s   mach   tm1   peak_max   temp_sd   migr   done   slowdown    p95   qos_delta\n")
	base := c.Results[0].Placement.SlowdownMean
	for _, r := range c.Results {
		a, p := r.Fleet, r.Placement
		fmt.Fprintf(&b, " %-16s %5d  %7.1f  %5d  %4d  %7.3fC  %7.3fC  %5d  %5d  %9.3f  %5.3f  %+9.3f\n",
			r.Policy, a.TotalViolations, a.ViolationS, a.MachinesViol, a.TM1Trips,
			a.PeakJunctionMax, p.TempStddevC, p.Migrations, p.JobsCompleted,
			p.SlowdownMean, p.SlowdownP95, p.SlowdownMean-base)
	}
	return b.String()
}

// CSV renders the comparison as one plot-ready table via the shared CSV
// emitter (policy labels pass through RFC 4180 quoting like every field).
func (c *Comparison) CSV() (string, error) {
	header := []string{
		"policy", "violations", "violation_s", "machines_violating", "tm1_trips",
		"peak_max_c", "mean_junction_max_c", "temp_stddev_c", "peak_spread_c",
		"overhead_pct", "jobs_arrived", "jobs_dispatched", "jobs_completed",
		"migrations", "slowdown_mean", "slowdown_p95", "wait_mean_s",
		"web_good_mean", "qos_delta",
	}
	base := c.Results[0].Placement.SlowdownMean
	var rows [][]string
	for _, r := range c.Results {
		a, p := r.Fleet, r.Placement
		rows = append(rows, []string{
			r.Policy,
			fmt.Sprintf("%d", a.TotalViolations),
			fmt.Sprintf("%.3f", a.ViolationS),
			fmt.Sprintf("%d", a.MachinesViol),
			fmt.Sprintf("%d", a.TM1Trips),
			fmt.Sprintf("%.4f", a.PeakJunctionMax),
			fmt.Sprintf("%.4f", a.MeanJunctionMax),
			fmt.Sprintf("%.4f", p.TempStddevC),
			fmt.Sprintf("%.4f", p.PeakSpreadC),
			fmt.Sprintf("%.4f", a.OverheadPct),
			fmt.Sprintf("%d", p.JobsArrived),
			fmt.Sprintf("%d", p.JobsDispatched),
			fmt.Sprintf("%d", p.JobsCompleted),
			fmt.Sprintf("%d", p.Migrations),
			fmt.Sprintf("%.6f", p.SlowdownMean),
			fmt.Sprintf("%.6f", p.SlowdownP95),
			fmt.Sprintf("%.6f", p.WaitMeanS),
			fmt.Sprintf("%.6f", a.WebGoodMean),
			fmt.Sprintf("%.6f", p.SlowdownMean-base),
		})
	}
	return export.CSV(header, rows)
}

// ExportComparison writes the comparison CSV into dir.
func ExportComparison(c *Comparison, dir string) ([]string, error) {
	files, err := RenderComparison(c)
	if err != nil {
		return nil, err
	}
	return export.Write(dir, files...)
}

// RenderComparison renders the comparison CSV in memory (see RenderResult).
func RenderComparison(c *Comparison) ([]export.File, error) {
	content, err := c.CSV()
	if err != nil {
		return nil, err
	}
	base := strings.ReplaceAll(c.Spec.Name, "-", "_")
	return []export.File{{
		Name:    fmt.Sprintf("sched_%s_policies.csv", base),
		Content: content,
	}}, nil
}

// RunByName looks the scenario up in the registry and runs it under the
// given placement policy (empty selects the spec's default).
func RunByName(name, policy string, scale float64) (*Result, error) {
	spec, ok := scenario.Get(name)
	if !ok {
		return nil, fmt.Errorf("fleetsched: unknown scenario %q", name)
	}
	return Run(spec, policy, scale)
}
