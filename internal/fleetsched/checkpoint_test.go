package fleetsched

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/scenario"
)

func mustSpec(t *testing.T, name string) *scenario.Spec {
	t.Helper()
	spec, ok := scenario.Get(name)
	if !ok {
		t.Fatalf("scenario %q not registered", name)
	}
	return spec
}

func resultJSON(t *testing.T, res *Result) string {
	t.Helper()
	raw, err := json.Marshal(struct {
		Rendered string
		Machines []MachineStats
	}{res.String(), res.Machines})
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// Checkpoint capture must not perturb the run: results with checkpointing on
// are byte-identical to results with it off, at every capture cadence.
func TestCheckpointingDoesNotPerturb(t *testing.T) {
	spec := mustSpec(t, "hotspot-herd") // migration enabled: the most stateful path
	base, err := RunOpts(spec, "", 0.02, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := resultJSON(t, base)
	for _, every := range []int{1, 3} {
		var cps []Checkpoint
		res, err := RunOpts(spec, "", 0.02, Options{
			CheckpointEvery: every,
			OnCheckpoint:    func(cp Checkpoint) { cps = append(cps, cp) },
		})
		if err != nil {
			t.Fatal(err)
		}
		if resultJSON(t, res) != want {
			t.Fatalf("CheckpointEvery=%d perturbed the run", every)
		}
		if len(cps) == 0 {
			t.Fatalf("CheckpointEvery=%d captured no checkpoints", every)
		}
		for i, cp := range cps {
			if cp.Round%every != 0 {
				t.Fatalf("checkpoint %d at round %d, cadence %d", i, cp.Round, every)
			}
			if len(cp.Digest) != 64 {
				t.Fatalf("checkpoint %d digest %q is not a sha256 hex", i, cp.Digest)
			}
		}
	}
}

// Resuming from any checkpoint must reproduce the uninterrupted run exactly,
// emit telemetry only for rounds past the checkpoint, and re-derive identical
// later checkpoints.
func TestResumeReproducesRun(t *testing.T) {
	spec := mustSpec(t, "hotspot-herd")
	var cps []Checkpoint
	var rounds []int
	base, err := RunOpts(spec, "", 0.02, Options{
		CheckpointEvery: 2,
		OnCheckpoint:    func(cp Checkpoint) { cps = append(cps, cp) },
		OnRound:         func(rt RoundTelemetry) { rounds = append(rounds, rt.Round) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) < 3 {
		t.Fatalf("want ≥3 checkpoints to resume from, got %d", len(cps))
	}
	want := resultJSON(t, base)
	totalRounds := len(rounds)

	for _, pick := range []int{0, len(cps) / 2, len(cps) - 1} {
		cp := cps[pick]
		var resumedRounds []int
		var laterCPs []Checkpoint
		res, err := RunOpts(spec, "", 0.02, Options{
			CheckpointEvery: 2,
			OnCheckpoint:    func(c Checkpoint) { laterCPs = append(laterCPs, c) },
			OnRound:         func(rt RoundTelemetry) { resumedRounds = append(resumedRounds, rt.Round) },
			Resume:          &cp,
		})
		if err != nil {
			t.Fatalf("resume from round %d: %v", cp.Round, err)
		}
		if got := resultJSON(t, res); got != want {
			t.Fatalf("resume from round %d diverged from the uninterrupted run", cp.Round)
		}
		if len(resumedRounds) != totalRounds-cp.Round-1 {
			t.Fatalf("resume from round %d emitted %d rounds, want %d", cp.Round, len(resumedRounds), totalRounds-cp.Round-1)
		}
		if len(resumedRounds) > 0 && resumedRounds[0] != cp.Round+1 {
			t.Fatalf("resume from round %d: first telemetry at round %d", cp.Round, resumedRounds[0])
		}
		// Checkpoints taken after the resume point must match the originals.
		for _, later := range laterCPs {
			if later.Round <= cp.Round {
				t.Fatalf("resume re-captured checkpoint for replayed round %d", later.Round)
			}
			orig := cps[later.Round/2]
			if orig != later {
				t.Fatalf("re-derived checkpoint at round %d differs:\n  orig  %+v\n  again %+v", later.Round, orig, later)
			}
		}
	}
}

// Any mismatch between the checkpoint and the replayed fleet must abort the
// resume with a descriptive error, never continue silently.
func TestResumeDetectsDivergence(t *testing.T) {
	spec := mustSpec(t, "sched-shootout")
	var cps []Checkpoint
	if _, err := RunOpts(spec, "", 0.02, Options{
		CheckpointEvery: 2,
		OnCheckpoint:    func(cp Checkpoint) { cps = append(cps, cp) },
	}); err != nil {
		t.Fatal(err)
	}
	cp := cps[len(cps)/2]

	tampered := cp
	tampered.Digest = "bogus"
	if _, err := RunOpts(spec, "", 0.02, Options{Resume: &tampered}); err == nil {
		t.Fatal("tampered digest resumed without error")
	} else if !strings.Contains(err.Error(), "divergence") {
		t.Fatalf("tampered digest error: %v", err)
	}

	wrongCursor := cp
	wrongCursor.Cursor++
	if _, err := RunOpts(spec, "", 0.02, Options{Resume: &wrongCursor}); err == nil {
		t.Fatal("wrong cursor resumed without error")
	} else if !strings.Contains(err.Error(), "cursor") {
		t.Fatalf("wrong cursor error: %v", err)
	}

	// A different policy replays a genuinely different run; the digest gate
	// must catch it even when the counters happen to line up.
	if _, err := RunOpts(spec, scenario.PlaceRandom, 0.02, Options{Resume: &cp}); err == nil {
		t.Fatal("resume under a different policy did not error")
	}

	beyond := cp
	beyond.Round = 10_000
	if _, err := RunOpts(spec, "", 0.02, Options{Resume: &beyond}); err == nil {
		t.Fatal("out-of-range checkpoint round resumed without error")
	} else if !strings.Contains(err.Error(), "barriers") {
		t.Fatalf("out-of-range round error: %v", err)
	}
}
