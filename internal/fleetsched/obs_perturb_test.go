package fleetsched

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/scenario"
)

// TestObservabilityNonPerturbing mirrors the scenario package's contract test
// over the cross-machine scheduler engine: a traced, profiled, telemetry-
// streaming run renders byte-identically to a silent one, for every scheduled
// library scenario. The scheduler engine is the hardest case — round-barrier
// spans interleave with the dispatch loop — so this is where a state-touching
// instrument would surface first.
func TestObservabilityNonPerturbing(t *testing.T) {
	const scale = 0.05
	defer obs.EnableProfiling(false)
	covered := 0
	for _, name := range scenario.Names() {
		spec, _ := scenario.Get(name)
		if spec.Scheduler == nil {
			continue
		}
		covered++

		obs.EnableProfiling(false)
		silent, err := RunOpts(spec, "", scale, Options{})
		if err != nil {
			t.Fatalf("%s: silent run: %v", name, err)
		}

		obs.EnableProfiling(true)
		tr := obs.NewTracer()
		rounds := 0
		observed, err := RunOpts(spec, "", scale, Options{
			Trace:   tr,
			OnRound: func(RoundTelemetry) { rounds++ },
		})
		if err != nil {
			t.Fatalf("%s: observed run: %v", name, err)
		}

		if silent.String() != observed.String() {
			t.Errorf("%s: rendered output diverges with observability on", name)
		}
		a, err := RenderResult(silent)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RenderResult(observed)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("%s: artefact count diverges: %d vs %d", name, len(a), len(b))
		}
		for i := range a {
			if a[i].Name != b[i].Name || a[i].Content != b[i].Content {
				t.Errorf("%s: artefact %s diverges with observability on", name, a[i].Name)
			}
		}
		if tr.Len() == 0 {
			t.Errorf("%s: traced run recorded no spans", name)
		}
		if rounds == 0 {
			t.Errorf("%s: round telemetry never fired", name)
		}
	}
	if covered == 0 {
		t.Fatal("no scheduled library scenarios found; the registry wiring broke")
	}
}
