// Package adaptive implements closed-loop Dimetrodon policy control — the
// online adjustment the paper describes but leaves unevaluated (§2.1: idle
// cycle injection "can be adjusted online according to the thermal profile
// and performance constraints of the application").
//
// The SetpointController holds the hottest junction at a target temperature
// by steering the global injection probability with a PI law: when the chip
// runs hot the controller injects more aggressively; when the workload
// lightens it backs off to zero, spending performance only when heat demands
// it. It reads the same quantised DTS observable an operating system would,
// not the simulator's ground truth.
package adaptive

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/sensor"
	"repro/internal/trace"
	"repro/internal/units"
)

// Config parameterises the controller.
type Config struct {
	// Target is the junction temperature setpoint (absolute, °C).
	Target units.Celsius
	// L is the idle quantum length used for injection; the probability is
	// the actuated variable. Short quanta are the efficient regime
	// (Figure 3), so the default is 10 ms.
	L units.Time
	// Interval is the control period. Thermal time constants at the
	// package level are seconds, so 500 ms default.
	Interval units.Time
	// Kp and Ki are the proportional and integral gains in probability
	// per °C (and per °C·s).
	Kp, Ki float64
	// PMax caps the actuated probability below 1 (the model diverges at
	// p = 1).
	PMax float64
	// SmoothingAlpha is the exponential-moving-average coefficient
	// applied to the DTS observation before the PI law (1 = no
	// smoothing). The hottest-junction reading dithers by a degree or
	// more under short-quantum injection plus 1 °C quantisation;
	// smoothing keeps the controller from chattering against its
	// saturation limits.
	SmoothingAlpha float64
}

// DefaultConfig returns gains tuned for the calibrated testbed: convergence
// in a few package time constants without oscillation.
func DefaultConfig(target units.Celsius) Config {
	return Config{
		Target:         target,
		L:              10 * units.Millisecond,
		Interval:       500 * units.Millisecond,
		Kp:             0.10,
		Ki:             0.02,
		PMax:           0.95,
		SmoothingAlpha: 0.25,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.L <= 0 {
		return fmt.Errorf("adaptive: non-positive quantum %v", c.L)
	}
	if c.Interval <= 0 {
		return fmt.Errorf("adaptive: non-positive interval %v", c.Interval)
	}
	if c.PMax <= 0 || c.PMax >= 1 {
		return fmt.Errorf("adaptive: PMax %v outside (0,1)", c.PMax)
	}
	if c.Kp < 0 || c.Ki < 0 {
		return fmt.Errorf("adaptive: negative gains")
	}
	if c.SmoothingAlpha < 0 || c.SmoothingAlpha > 1 {
		return fmt.Errorf("adaptive: smoothing alpha %v outside [0,1]", c.SmoothingAlpha)
	}
	return nil
}

// Controller is a running setpoint controller bound to a machine.
type Controller struct {
	cfg     Config
	m       *machine.Machine
	policy  *core.Controller
	sensors []*sensor.DTS
	integ   float64
	p       float64
	ema     float64
	emaInit bool

	// PTrace and TempTrace record the actuation and the observed hottest
	// junction for analysis.
	PTrace    *trace.Series
	TempTrace *trace.Series
	stopped   bool
}

// Attach installs a fresh Dimetrodon policy engine on m and starts the
// control loop on its virtual clock. The controller owns the global policy;
// per-process policies can still be layered on the returned engine.
func Attach(m *machine.Machine, cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Controller{
		cfg:       cfg,
		m:         m,
		policy:    core.NewController(m.RNG.Split()),
		PTrace:    trace.NewSeries("injection-p", "prob"),
		TempTrace: trace.NewSeries("hottest-dts", "C"),
	}
	for i := 0; i < m.Chip.NumCores(); i++ {
		c.sensors = append(c.sensors, sensor.NewCoretemp())
	}
	m.Sched.SetInjector(c.policy)
	m.Clock.ScheduleAfter(cfg.Interval, "adaptive-tick", c.tick)
	return c, nil
}

// Policy exposes the underlying policy engine (e.g. to exempt a process).
func (c *Controller) Policy() *core.Controller { return c.policy }

// P returns the currently actuated injection probability.
func (c *Controller) P() float64 { return c.p }

// Stop halts the control loop; the last actuated policy remains in force.
func (c *Controller) Stop() { c.stopped = true }

// tick is one control period: read the hottest DTS, update the PI state, and
// actuate the global policy.
func (c *Controller) tick(now units.Time) {
	if c.stopped {
		return
	}
	hottest := c.readHottest(now)
	alpha := c.cfg.SmoothingAlpha
	if alpha <= 0 {
		alpha = 1
	}
	if !c.emaInit {
		c.ema = float64(hottest)
		c.emaInit = true
	} else {
		c.ema += alpha * (float64(hottest) - c.ema)
	}
	err := c.ema - float64(c.cfg.Target)
	dt := c.cfg.Interval.Seconds()

	// PI with conditional integration (anti-windup): the integrator only
	// accumulates while the actuator is unsaturated or the error drives
	// it back in range.
	next := c.cfg.Kp*err + c.cfg.Ki*(c.integ+err*dt)
	saturatedHigh := next >= c.cfg.PMax && err > 0
	saturatedLow := next <= 0 && err < 0
	if !saturatedHigh && !saturatedLow {
		c.integ += err * dt
	}
	p := c.cfg.Kp*err + c.cfg.Ki*c.integ
	if p < 0 {
		p = 0
	}
	if p > c.cfg.PMax {
		p = c.cfg.PMax
	}
	c.p = p

	if p == 0 {
		c.policy.ClearGlobal()
	} else if err := c.policy.SetGlobal(core.Params{P: p, L: c.cfg.L}); err != nil {
		panic(fmt.Sprintf("adaptive: actuating p=%v: %v", p, err))
	}
	c.PTrace.Append(now, p)
	c.TempTrace.Append(now, c.ema)
	c.m.Clock.ScheduleAfter(c.cfg.Interval, "adaptive-tick", c.tick)
}

// readHottest samples every core's DTS and returns the maximum reading — the
// observable a real kernel policy would act on.
func (c *Controller) readHottest(now units.Time) units.Celsius {
	temps := c.m.JunctionTemps()
	hottest := units.Celsius(-1000)
	for i, s := range c.sensors {
		if v := s.Read(now, temps[i]); v > hottest {
			hottest = v
		}
	}
	return hottest
}
