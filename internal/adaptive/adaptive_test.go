package adaptive

import (
	"math"
	"testing"

	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/units"
	"repro/internal/workload"
)

func burnMachine(seed uint64, threads int) *machine.Machine {
	cfg := machine.DefaultConfig()
	cfg.Seed = seed
	m := machine.New(cfg)
	for i := 0; i < threads; i++ {
		m.Sched.Spawn(workload.Burn(), sched.SpawnConfig{Name: "burn", PowerFactor: 1})
	}
	return m
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(45)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Target: 45, L: 0, Interval: units.Second, Kp: 0.1, Ki: 0.01, PMax: 0.9},
		{Target: 45, L: units.Millisecond, Interval: 0, Kp: 0.1, Ki: 0.01, PMax: 0.9},
		{Target: 45, L: units.Millisecond, Interval: units.Second, Kp: 0.1, Ki: 0.01, PMax: 1},
		{Target: 45, L: units.Millisecond, Interval: units.Second, Kp: -1, Ki: 0.01, PMax: 0.9},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	m := burnMachine(1, 0)
	if _, err := Attach(m, bad[0]); err == nil {
		t.Error("Attach accepted invalid config")
	}
}

func TestConvergesToSetpoint(t *testing.T) {
	m := burnMachine(1, 4)
	// Target halfway between idle and the unconstrained operating point.
	idle := float64(m.IdleJunctionTemp())
	target := units.Celsius(idle + 12)
	ctl, err := Attach(m, DefaultConfig(target))
	if err != nil {
		t.Fatal(err)
	}
	m.RunFor(240 * units.Second)
	// Mean DTS reading over the last 60 s within 1.5 °C of target
	// (the observable is quantised to 1 °C).
	mean, ok := ctl.TempTrace.MeanOver(180*units.Second, 240*units.Second)
	if !ok {
		t.Fatal("no temperature trace")
	}
	if math.Abs(mean-float64(target)) > 1.5 {
		t.Errorf("settled at %.2fC, target %.1fC", mean, float64(target))
	}
	// The controller must actually be injecting.
	if ctl.P() <= 0.01 {
		t.Errorf("steady-state p = %v", ctl.P())
	}
}

func TestIdlesWhenBelowTarget(t *testing.T) {
	// With no workload the chip sits at idle temperature, far below any
	// sensible target: the controller must actuate p = 0.
	m := burnMachine(2, 0)
	ctl, err := Attach(m, DefaultConfig(60))
	if err != nil {
		t.Fatal(err)
	}
	m.RunFor(30 * units.Second)
	if ctl.P() != 0 {
		t.Errorf("p = %v with a cold chip", ctl.P())
	}
	if _, ok := ctl.Policy().PolicyFor(&sched.Thread{Priority: sched.PriorityUser}); ok {
		t.Error("global policy installed while below target")
	}
}

func TestUnreachableTargetSaturates(t *testing.T) {
	// A target below the idle temperature cannot be met; the controller
	// must saturate at PMax without the integrator winding up further.
	m := burnMachine(3, 4)
	cfg := DefaultConfig(m.IdleJunctionTemp() - 5)
	ctl, err := Attach(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.RunFor(120 * units.Second)
	if math.Abs(ctl.P()-cfg.PMax) > 1e-9 {
		t.Errorf("p = %v, want saturated at %v", ctl.P(), cfg.PMax)
	}
	integBefore := ctl.integ
	m.RunFor(60 * units.Second)
	if ctl.integ > integBefore+1 {
		t.Errorf("integrator wound up while saturated: %v -> %v", integBefore, ctl.integ)
	}
}

func TestAdaptsToWorkloadChange(t *testing.T) {
	// Four burners, then two exit: the controller must back off p to hold
	// the same target with the lighter load.
	cfg := machine.DefaultConfig()
	cfg.Seed = 4
	m := machine.New(cfg)
	for i := 0; i < 2; i++ {
		m.Sched.Spawn(workload.Burn(), sched.SpawnConfig{Name: "persistent", PowerFactor: 1})
	}
	for i := 0; i < 2; i++ {
		m.Sched.Spawn(workload.FiniteBurn(100), sched.SpawnConfig{Name: "phase1", PowerFactor: 1})
	}
	// Target between the two phases' unconstrained operating points: the
	// four-burner phase needs injection to hold it, the two-burner phase
	// sits below it naturally.
	idle := float64(m.IdleJunctionTemp())
	ctl, err := Attach(m, DefaultConfig(units.Celsius(idle+16)))
	if err != nil {
		t.Fatal(err)
	}
	m.RunFor(150 * units.Second)
	pHeavy := ctl.P()
	m.RunFor(450 * units.Second) // finite burners have long exited
	pLight := ctl.P()
	if pHeavy < 0.05 {
		t.Errorf("controller idle during the heavy phase (p=%v)", pHeavy)
	}
	if pLight >= pHeavy/2 {
		t.Errorf("p did not back off after load drop: %v -> %v", pHeavy, pLight)
	}
}

func TestStopFreezesActuation(t *testing.T) {
	m := burnMachine(5, 4)
	ctl, err := Attach(m, DefaultConfig(units.Celsius(float64(m.IdleJunctionTemp())+10)))
	if err != nil {
		t.Fatal(err)
	}
	m.RunFor(60 * units.Second)
	ctl.Stop()
	frozen := ctl.P()
	tracesBefore := ctl.PTrace.Len()
	m.RunFor(30 * units.Second)
	if ctl.P() != frozen {
		t.Error("p changed after Stop")
	}
	if ctl.PTrace.Len() != tracesBefore {
		t.Error("controller kept sampling after Stop")
	}
}

func TestDeterministicControl(t *testing.T) {
	run := func() (float64, float64) {
		m := burnMachine(9, 4)
		ctl, err := Attach(m, DefaultConfig(units.Celsius(float64(m.IdleJunctionTemp())+8)))
		if err != nil {
			t.Fatal(err)
		}
		m.RunFor(90 * units.Second)
		mean, _ := ctl.TempTrace.MeanOver(0, 90*units.Second)
		return ctl.P(), mean
	}
	p1, m1 := run()
	p2, m2 := run()
	if p1 != p2 || m1 != m2 {
		t.Errorf("control runs diverged: (%v,%v) vs (%v,%v)", p1, m1, p2, m2)
	}
}
