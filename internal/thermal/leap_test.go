package thermal

import (
	"math"
	"testing"

	"repro/internal/units"
)

// testNetwork builds the testbed topology (ambient, heatsink, package, four
// junctions) with every node at the given start temperature.
func testNetwork(start units.Celsius) (*Network, []NodeID) {
	n := NewNetwork()
	amb := n.AddBoundary("ambient", 25.2)
	sink := n.AddNode("heatsink", 170, start)
	pkg := n.AddNode("package", 45, start)
	n.Connect(sink, amb, 0.115)
	n.Connect(pkg, sink, 0.045)
	var junctions []NodeID
	for i := 0; i < 4; i++ {
		j := n.AddNode("junction", 0.0375, start)
		n.Connect(j, pkg, 0.80)
		junctions = append(junctions, j)
	}
	return n, junctions
}

// fixedPower is a temperature-independent heat source.
type fixedPower struct {
	pkg       NodeID
	junctions []NodeID
}

func (c fixedPower) HeatInput(temps, out []float64) {
	out[c.pkg] += 15
	for _, j := range c.junctions {
		out[j] += 11
	}
}

// coupledPower mimics the chip model's leakage coupling and linearises
// itself, so LeapSteps takes the analytic-slope path like the machine layer.
type coupledPower struct {
	pkg       NodeID
	junctions []NodeID
}

func (c coupledPower) HeatInput(temps, out []float64) {
	out[c.pkg] += 15
	for _, j := range c.junctions {
		out[j] += 8 + 0.8*math.Exp((temps[j]-55)/10)
	}
}

func (c coupledPower) HeatLinear(temps, dT, dp []float64) {
	for _, j := range c.junctions {
		dp[j] += 0.08 * math.Exp((temps[j]-55)/10) * dT[j]
	}
}

// TestLeapMatchesStepConstantPower: with a temperature-independent source
// the per-step map is exactly affine, so a leap window must reproduce
// step-by-step integration to float precision — temperatures, discrete
// temperature sums, and the energy sum alike.
func TestLeapMatchesStepConstantPower(t *testing.T) {
	for _, k := range []int{1, 2, 3, 7, 16, 50, 137, 1024} {
		ref, junctions := testNetwork(25.2)
		leap, _ := testNetwork(25.2)
		src := fixedPower{pkg: 2, junctions: junctions}
		dt := 2 * units.Millisecond

		sums := make([]float64, ref.NumNodes())
		var powRef float64
		for i := 0; i < k; i++ {
			ref.StepFrom(dt, src)
			for n := 0; n < ref.NumNodes(); n++ {
				sums[n] += float64(ref.Temp(NodeID(n)))
			}
			powRef += 15 + 4*11
		}
		leapSums := make([]float64, leap.NumNodes())
		powLeap := leap.LeapSteps(k, dt, src, leapSums)

		for n := 0; n < ref.NumNodes(); n++ {
			if d := math.Abs(float64(ref.Temp(NodeID(n))) - float64(leap.Temp(NodeID(n)))); d > 1e-9 {
				t.Fatalf("k=%d node %d: leap %.12f vs step %.12f (diff %g)", k, n, leap.Temp(NodeID(n)), ref.Temp(NodeID(n)), d)
			}
			if d := math.Abs(sums[n] - leapSums[n]); d > 1e-6*float64(k) {
				t.Fatalf("k=%d node %d: temp sum diff %g", k, n, d)
			}
		}
		if d := math.Abs(powRef - powLeap); d > 1e-6*float64(k) {
			t.Fatalf("k=%d: power sum %g vs %g", k, powLeap, powRef)
		}
	}
}

// TestLeapCoupledPowerWithinTolerance: with the leakage-style exponential
// coupling the leap controller must stay inside its documented band against
// step-by-step integration, through a hot transient (start far above the
// equilibrium so the window decays hard).
func TestLeapCoupledPowerWithinTolerance(t *testing.T) {
	ref, junctions := testNetwork(70)
	leap, _ := testNetwork(70)
	src := coupledPower{pkg: 2, junctions: junctions}
	dt := 2 * units.Millisecond
	const k = 500 // one second of decay

	for i := 0; i < k; i++ {
		ref.StepFrom(dt, src)
	}
	sums := make([]float64, leap.NumNodes())
	leap.LeapSteps(k, dt, src, sums)

	var worst float64
	for n := 0; n < ref.NumNodes(); n++ {
		if d := math.Abs(float64(ref.Temp(NodeID(n))) - float64(leap.Temp(NodeID(n)))); d > worst {
			worst = d
		}
	}
	if worst >= 0.05 {
		t.Fatalf("leap diverged by %.4f C over %d coupled steps", worst, k)
	}
	chunks, steps := leap.LeapStats()
	if steps != k {
		t.Fatalf("leap covered %d steps, want %d", steps, k)
	}
	if chunks >= k/4 {
		t.Errorf("no compression: %d chunks for %d steps", chunks, k)
	}
	t.Logf("divergence %.5f C, %d chunks for %d steps (%d rejects)", worst, chunks, steps, leap.LeapRejects())
}

// TestStepPolyAccuracy: the polynomial-decay kernel must track the exact
// exponential update to sub-millikelvin for any step at or below the
// machine layer's ThermalStep.
func TestStepPolyAccuracy(t *testing.T) {
	for _, dt := range []units.Time{13 * units.Microsecond, 777 * units.Microsecond, 2 * units.Millisecond} {
		ref, junctions := testNetwork(60)
		poly, _ := testNetwork(60)
		src := fixedPower{pkg: 2, junctions: junctions}
		for i := 0; i < 20; i++ {
			ref.StepFrom(dt, src)
			poly.StepPolyFrom(dt, src)
		}
		for n := 0; n < ref.NumNodes(); n++ {
			if d := math.Abs(float64(ref.Temp(NodeID(n))) - float64(poly.Temp(NodeID(n)))); d > 1e-3 {
				t.Fatalf("dt=%v node %d: poly drifted %.6f C", dt, n, d)
			}
		}
	}
}

// TestDecayCacheTransparent: the decay cache is an invisible optimisation —
// a network whose cache was churned through many step sizes must produce
// bit-identical temperatures to a fresh one, for the same step sequence.
func TestDecayCacheTransparent(t *testing.T) {
	fresh, junctions := testNetwork(40)
	churned, _ := testNetwork(40)
	src := fixedPower{pkg: 2, junctions: junctions}

	// Churn: cycle more sizes than the cache holds, then reset state.
	for i := 0; i < 3*decaySlots; i++ {
		churned.StepFrom(units.Time(i+1)*17*units.Microsecond, src)
	}
	for n := 0; n < churned.NumNodes(); n++ {
		churned.SetTemp(NodeID(n), fresh.Temp(NodeID(n)))
	}

	pattern := []units.Time{
		2 * units.Millisecond, 311 * units.Microsecond, units.Millisecond,
		2 * units.Millisecond, 97 * units.Microsecond,
	}
	for i := 0; i < 40; i++ {
		dt := pattern[i%len(pattern)]
		fresh.StepFrom(dt, src)
		churned.StepFrom(dt, src)
	}
	for n := 0; n < fresh.NumNodes(); n++ {
		if fresh.Temp(NodeID(n)) != churned.Temp(NodeID(n)) {
			t.Fatalf("node %d: cache state leaked into results: %.15f vs %.15f", n, fresh.Temp(NodeID(n)), churned.Temp(NodeID(n)))
		}
	}
}

// TestLeapStepsZeroAlloc: once the ladder is warm, leap windows allocate
// nothing.
func TestLeapStepsZeroAlloc(t *testing.T) {
	n, junctions := testNetwork(40)
	var src HeatSource = &fixedPower{pkg: 2, junctions: junctions}
	sums := make([]float64, n.NumNodes())
	dt := 2 * units.Millisecond
	for i := 0; i < 10; i++ {
		n.LeapSteps(50, dt, src, sums) // warm the ladder, memo and scratch
	}
	if allocs := testing.AllocsPerRun(50, func() {
		n.LeapSteps(50, dt, src, sums)
	}); allocs > 0 {
		t.Errorf("LeapSteps allocates %.1f/op after warmup, want 0", allocs)
	}
	n.StepFrom(dt, src)
	if allocs := testing.AllocsPerRun(50, func() {
		n.StepFrom(dt, src)
	}); allocs > 0 {
		t.Errorf("StepFrom allocates %.1f/op, want 0", allocs)
	}
}
