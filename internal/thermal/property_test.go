package thermal

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/units"
)

// Property-based invariants of the RC integrator. The exact-exponential
// update is a convex combination of the node's own temperature and its
// neighbourhood equilibrium, so with non-negative heat input and a fixed
// ambient boundary it must obey a discrete maximum principle: nothing ever
// cools below ambient, and with zero input the hottest offset over ambient
// can only shrink. Randomised topologies (seeded, deterministic) probe this
// far outside the calibrated testbed's corner of parameter space.

// randomNetwork builds a random tree-ish network rooted at an ambient
// boundary: every node connects to a random earlier node, occasionally with
// a second cross link (parallel paths).
func randomNetwork(r *rng.Source, ambient units.Celsius) (*Network, []NodeID) {
	n := NewNetwork()
	amb := n.AddBoundary("ambient", ambient)
	ids := []NodeID{amb}
	nodes := 2 + int(r.Uint64()%10)
	var dyn []NodeID
	for i := 0; i < nodes; i++ {
		capJ := 0.01 + 100*r.Float64()
		start := ambient + units.Celsius(20*r.Float64())
		id := n.AddNode("node", capJ, start)
		n.Connect(id, ids[int(r.Uint64()%uint64(len(ids)))], 0.05+2*r.Float64())
		if len(ids) > 2 && r.Bernoulli(0.3) {
			other := ids[1+int(r.Uint64()%uint64(len(ids)-1))]
			if other != id {
				n.Connect(id, other, 0.05+2*r.Float64())
			}
		}
		ids = append(ids, id)
		dyn = append(dyn, id)
	}
	return n, dyn
}

// supOffset returns the hottest offset over ambient across dynamic nodes.
func supOffset(n *Network, dyn []NodeID, ambient units.Celsius) float64 {
	worst := 0.0
	for _, id := range dyn {
		if off := float64(n.Temp(id) - ambient); off > worst {
			worst = off
		}
	}
	return worst
}

func TestPropertyIdleDecayMonotoneTowardAmbient(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		r := rng.New(uint64(5000 + trial))
		ambient := units.Celsius(10 + 30*r.Float64())
		n, dyn := randomNetwork(r, ambient)
		step := units.FromSeconds(0.0005 + 0.01*r.Float64())
		last := supOffset(n, dyn, ambient)
		initial := last
		for i := 0; i < 400; i++ {
			n.Step(step, nil)
			for _, id := range dyn {
				if n.Temp(id) < ambient-1e-9 {
					t.Fatalf("trial %d: node %d fell below ambient: %v < %v", trial, id, n.Temp(id), ambient)
				}
			}
			cur := supOffset(n, dyn, ambient)
			if cur > last+1e-9 {
				t.Fatalf("trial %d step %d: sup offset rose %v -> %v under all-idle input", trial, i, last, cur)
			}
			last = cur
		}
		// Random capacitances reach τ of minutes, so only demand strict
		// progress, not a fixed fraction, over the simulated window.
		if initial > 0.5 && last > initial-1e-6 {
			t.Errorf("trial %d: no decay at all: %v -> %v over %v", trial, initial, last, 400*step)
		}
	}
}

func TestPropertyNeverBelowAmbientUnderHeating(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		r := rng.New(uint64(6000 + trial))
		ambient := units.Celsius(10 + 30*r.Float64())
		n, dyn := randomNetwork(r, ambient)
		// Start everything at ambient and heat a random subset.
		watts := make([]float64, n.NumNodes())
		for _, id := range dyn {
			n.SetTemp(id, ambient)
			if r.Bernoulli(0.5) {
				watts[id] = 30 * r.Float64()
			}
		}
		power := func(_ []float64, out []float64) {
			copy(out, watts)
		}
		step := units.FromSeconds(0.0005 + 0.01*r.Float64())
		for i := 0; i < 300; i++ {
			n.Step(step, power)
			for _, id := range dyn {
				if n.Temp(id) < ambient-1e-9 {
					t.Fatalf("trial %d: node %d below ambient (%v < %v) despite non-negative input", trial, id, n.Temp(id), ambient)
				}
			}
		}
	}
}

func TestPropertySteadyStateIsStepFixedPoint(t *testing.T) {
	// The solver's fixed point must also be (nearly) a fixed point of the
	// integrator: advancing from equilibrium moves nothing.
	for trial := 0; trial < 20; trial++ {
		r := rng.New(uint64(7000 + trial))
		ambient := units.Celsius(10 + 30*r.Float64())
		n, dyn := randomNetwork(r, ambient)
		watts := make([]float64, n.NumNodes())
		for _, id := range dyn {
			if r.Bernoulli(0.7) {
				watts[id] = 20 * r.Float64()
			}
		}
		power := func(_ []float64, out []float64) { copy(out, watts) }
		if _, ok := n.SolveSteadyState(power, 1e-10, 200000); !ok {
			t.Fatalf("trial %d: steady-state solve did not converge", trial)
		}
		before := n.Temps(nil)
		n.Advance(units.Second, 0, power)
		after := n.Temps(nil)
		for i := range before {
			if math.Abs(float64(after[i]-before[i])) > 1e-6 {
				t.Fatalf("trial %d: node %d drifted %v -> %v after solve", trial, i, before[i], after[i])
			}
		}
	}
}
