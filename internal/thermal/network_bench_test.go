package thermal_test

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/thermal"
	"repro/internal/units"
)

// The benchmark fixtures — the testbed topology and the linearising heat
// source — live in internal/bench (KernelNetwork/LeapSource) so that these
// testing-package benchmarks and `dimctl bench` always measure the same
// kernel; this file is an external test package so it can import them
// without a cycle.

// BenchmarkThermalStep measures the hot kernel at a constant step size — the
// machine layer's dominant pattern, where the decay cache hits every step.
func BenchmarkThermalStep(b *testing.B) {
	n, power, _, _ := bench.KernelNetwork()
	dt := 2 * units.Millisecond
	n.Step(dt, power) // warm the decay cache and CSR layout
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Step(dt, power)
	}
}

// BenchmarkThermalStepVariableDt interleaves the constant step with
// event-aligned remainder steps of many distinct sizes — the worst realistic
// cache pattern (the dominant size stays pinned by recency; every remainder
// recomputes).
func BenchmarkThermalStepVariableDt(b *testing.B) {
	n, power, _, _ := bench.KernelNetwork()
	base := 2 * units.Millisecond
	rems := make([]units.Time, 64)
	for i := range rems {
		rems[i] = units.Time(i+1) * 17 * units.Microsecond
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			n.Step(base, power)
		} else {
			n.Step(rems[(i/2)%len(rems)], power)
		}
	}
}

// BenchmarkThermalStepFewDt cycles a handful of recurring step sizes — two
// interleaved event cadences plus the dominant step. The two-slot cache this
// bench was added against thrashed here (every third size recomputed the
// exponentials); the bit-keyed LRU holds the whole working set.
func BenchmarkThermalStepFewDt(b *testing.B) {
	n, power, _, _ := bench.KernelNetwork()
	sizes := []units.Time{
		2 * units.Millisecond, 311 * units.Microsecond,
		2 * units.Millisecond, 97 * units.Microsecond,
		2 * units.Millisecond, 733 * units.Microsecond,
	}
	for _, dt := range sizes {
		n.Step(dt, power) // warm every slot
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Step(sizes[i%len(sizes)], power)
	}
}

// BenchmarkThermalLeap measures the quiescence-leap integrator across a
// 50-step window (one scenario metric tick) with a linearising source —
// ns/op is per window, not per step; divide by 50 to compare with
// BenchmarkThermalStep.
func BenchmarkThermalLeap(b *testing.B) {
	n, _, pkg, junctions := bench.KernelNetwork()
	src := &bench.LeapSource{Pkg: pkg, Junctions: junctions}
	sums := make([]float64, n.NumNodes())
	dt := 2 * units.Millisecond
	for i := 0; i < 4; i++ {
		n.LeapSteps(50, dt, src, sums) // warm the ladder and memo
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.LeapSteps(50, dt, src, sums)
	}
}

// BenchmarkSolveSteadyState measures the idle-equilibrium solve that the
// machine layer memoises per configuration.
func BenchmarkSolveSteadyState(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		n, power, _, _ := bench.KernelNetwork()
		b.StartTimer()
		n.SolveSteadyState(power, 1e-7, 200000)
	}
}

var _ thermal.QuiescentSource = (*bench.LeapSource)(nil)
