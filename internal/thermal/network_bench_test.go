package thermal

import (
	"testing"

	"repro/internal/units"
)

// benchNetwork builds the testbed's topology — ambient boundary, heatsink,
// package, four junction nodes — with a representative heat input.
func benchNetwork() (*Network, PowerFunc, []NodeID) {
	n := NewNetwork()
	amb := n.AddBoundary("ambient", 25.2)
	sink := n.AddNode("heatsink", 170, 25.2)
	pkg := n.AddNode("package", 45, 25.2)
	n.Connect(sink, amb, 0.115)
	n.Connect(pkg, sink, 0.045)
	var junctions []NodeID
	for i := 0; i < 4; i++ {
		j := n.AddNode("junction", 0.0375, 25.2)
		n.Connect(j, pkg, 0.80)
		junctions = append(junctions, j)
	}
	power := func(temps []float64, out []float64) {
		out[pkg] += 15
		for _, j := range junctions {
			// A crude temperature-coupled core draw, exercising the
			// same read-temps/write-power shape as the chip model.
			out[j] += 11 + 0.05*(temps[j]-25.2)
		}
	}
	return n, power, junctions
}

// BenchmarkThermalStep measures the hot kernel at a constant step size — the
// machine layer's dominant pattern, where the decay cache hits every step.
func BenchmarkThermalStep(b *testing.B) {
	n, power, _ := benchNetwork()
	dt := 2 * units.Millisecond
	n.Step(dt, power) // warm the decay cache and CSR layout
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Step(dt, power)
	}
}

// BenchmarkThermalStepVariableDt interleaves the constant step with
// event-aligned remainder steps of many distinct sizes — the worst realistic
// cache pattern (the pinned slot still serves the constant step; every
// remainder recomputes).
func BenchmarkThermalStepVariableDt(b *testing.B) {
	n, power, _ := benchNetwork()
	base := 2 * units.Millisecond
	rems := make([]units.Time, 64)
	for i := range rems {
		rems[i] = units.Time(i+1) * 17 * units.Microsecond
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			n.Step(base, power)
		} else {
			n.Step(rems[(i/2)%len(rems)], power)
		}
	}
}

// BenchmarkSolveSteadyState measures the idle-equilibrium solve that the
// machine layer memoises per configuration.
func BenchmarkSolveSteadyState(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		n, power, _ := benchNetwork()
		b.StartTimer()
		n.SolveSteadyState(power, 1e-7, 200000)
	}
}
