// Package thermal models the processor's thermal path as a lumped RC
// network: per-core junction nodes couple through a shared package/spreader
// node and a heatsink node to the ambient boundary, whose convective
// resistance is set by the (fixed, full-speed) case fans.
//
// The network reproduces the two properties the paper's results rest on:
//
//   - multiple, widely separated time constants — junctions respond in
//     milliseconds ("each core was able to cool exponentially quickly within
//     a short time window") while the heatsink takes tens of seconds ("core
//     temperatures stabilized after approximately 300 seconds");
//   - heat inputs may depend on the node temperature itself, which is how the
//     exponential temperature dependence of leakage power enters and produces
//     the nonlinear trade-off curves of Figures 3 and 4.
//
// Step is the simulator's innermost kernel: every simulated second crosses it
// hundreds of times. Its hot path therefore runs on a flattened CSR-style
// adjacency (contiguous conductance/neighbour arrays instead of per-node
// slices) and caches the per-node decay factors exp(−dt/τ), which depend only
// on the step size and the (fixed) topology. The machine layer integrates
// with a constant ThermalStep almost everywhere, so the cache hits on
// virtually every step and the per-step math.Exp calls disappear.
package thermal

import (
	"fmt"
	"math"

	"repro/internal/units"
)

// NodeID identifies a node within a Network.
type NodeID int

// node is one lumped thermal mass (or the fixed-temperature ambient).
type node struct {
	name     string
	capJ     float64 // thermal capacitance in J/K; <= 0 marks a boundary node
	boundary bool

	// Adjacency: conductances in W/K to neighbouring nodes. Kept as the
	// construction-order source of truth; Step and SolveSteadyState run on
	// the flattened copy built by flatten().
	nbrs  []NodeID
	conds []float64
	gSum  float64 // cached Σ conductance
}

// decaySlot caches the per-node decay factors exp(−dt/τ) for one step size.
// Step sizes are keyed by their exact bit pattern: a few-digit String()
// rounding must never let two distinct sizes share a slot.
type decaySlot struct {
	bits  uint64 // math.Float64bits of the step size in seconds; 0 marks empty
	used  uint64 // recency stamp for LRU eviction
	decay []float64
}

// decaySlots is the decay-cache capacity. The machine layer steps with one
// dominant ThermalStep, but event-aligned remainders, hotspot-capped steps
// and interleaved machines of different configurations produce a handful of
// recurring sizes; eight slots cover every observed working set while a
// linear scan stays cheaper than one math.Exp.
const decaySlots = 8

// Network is a set of thermal nodes connected by thermal resistances.
// Construct with NewNetwork, AddNode/AddBoundary and Connect; the topology is
// then fixed while temperatures evolve via Step/Advance.
type Network struct {
	nodes []node
	temp  []float64 // current temperature by NodeID, °C

	// scratch buffers reused across steps to avoid per-step allocation.
	eq  []float64
	pow []float64

	// Flattened topology for the integration loops, rebuilt by flatten()
	// after any AddNode/AddBoundary/Connect. rowStart[i]..rowStart[i+1]
	// indexes node i's neighbours in adjIdx/adjG.
	dirty    bool
	rowStart []int32
	adjIdx   []int32
	adjG     []float64

	// Bit-keyed LRU decay cache. The machine layer steps with a constant
	// ThermalStep interrupted by event-aligned remainders; recency
	// eviction pins the dominant size while a small working set of
	// remainder sizes (alternating event cadences, hotspot-capped steps)
	// hits instead of thrashing the way a two-slot cache did.
	slots     [decaySlots]decaySlot
	decayTick uint64

	// Quiescence-leap state: per-step-size propagator ladders plus the
	// chunk controller's scratch and memory (see leap.go).
	ladders   [2]propLadder
	leapLevel int
	leapPow   []float64
	leapPow2  []float64
	leapTemp  []float64
	leapDiff  []float64
	leapEvalT []float64 // temperatures at the window's last model evaluation
	leapXY    []float64 // packed [T; p] operand for the fused applies
	compA     propLevel // ping-pong scratch for composed-propagator builds
	compB     propLevel
	leapRows  []NodeID // rows whose per-step sums LeapSteps accumulates
	allRows   []NodeID

	// Leap instrumentation: cumulative chunks accepted and steps covered
	// by LeapSteps, for tests and benchmarks.
	leapChunks  uint64
	leapSteps   uint64
	leapRejects uint64

	// shared is the adopted fleet-wide propagator/decay snapshot (see
	// sharecache.go); nil outside batched fleet runs. Consulted read-only
	// on cache misses, never mutated.
	shared *PropShare
	// scratch, when set via SetScratch, backs the network's mutable
	// per-step state (temperatures and integration scratch) so a batched
	// fleet can lay every machine's thermal state out in one contiguous
	// structure-of-arrays slab.
	scratch []float64
}

// NewNetwork returns an empty network.
func NewNetwork() *Network { return &Network{} }

// AddNode adds a thermal mass with the given capacitance (J/K) starting at
// the given temperature, and returns its ID. Capacitance must be positive.
func (n *Network) AddNode(name string, capacitance float64, start units.Celsius) NodeID {
	if capacitance <= 0 {
		panic(fmt.Sprintf("thermal: node %q needs positive capacitance, got %v", name, capacitance))
	}
	n.nodes = append(n.nodes, node{name: name, capJ: capacitance})
	n.temp = append(n.temp, float64(start))
	n.dirty = true
	return NodeID(len(n.nodes) - 1)
}

// AddBoundary adds a fixed-temperature node (e.g. ambient air held at the
// thermostat setpoint). Its temperature never changes during integration.
func (n *Network) AddBoundary(name string, temp units.Celsius) NodeID {
	n.nodes = append(n.nodes, node{name: name, boundary: true})
	n.temp = append(n.temp, float64(temp))
	n.dirty = true
	return NodeID(len(n.nodes) - 1)
}

// Connect joins nodes a and b with thermal resistance r (K/W, positive).
// Connecting the same pair twice adds a parallel path.
func (n *Network) Connect(a, b NodeID, r float64) {
	if r <= 0 {
		panic(fmt.Sprintf("thermal: non-positive resistance %v between %d and %d", r, a, b))
	}
	if a == b {
		panic("thermal: self connection")
	}
	g := 1 / r
	n.nodes[a].nbrs = append(n.nodes[a].nbrs, b)
	n.nodes[a].conds = append(n.nodes[a].conds, g)
	n.nodes[a].gSum += g
	n.nodes[b].nbrs = append(n.nodes[b].nbrs, a)
	n.nodes[b].conds = append(n.nodes[b].conds, g)
	n.nodes[b].gSum += g
	n.dirty = true
}

// NumNodes returns the number of nodes (including boundaries).
func (n *Network) NumNodes() int { return len(n.nodes) }

// Name returns the node's name.
func (n *Network) Name(id NodeID) string { return n.nodes[id].name }

// Temp returns the node's current temperature.
func (n *Network) Temp(id NodeID) units.Celsius { return units.Celsius(n.temp[id]) }

// SetTemp overrides a node's temperature (used to initialise or to reset a
// boundary setpoint).
func (n *Network) SetTemp(id NodeID, t units.Celsius) { n.temp[id] = float64(t) }

// Temps appends all node temperatures to dst (resized as needed) and returns
// it; index corresponds to NodeID.
func (n *Network) Temps(dst []units.Celsius) []units.Celsius {
	if cap(dst) < len(n.nodes) {
		dst = make([]units.Celsius, len(n.nodes))
	}
	dst = dst[:len(n.nodes)]
	for i := range n.temp {
		dst[i] = units.Celsius(n.temp[i])
	}
	return dst
}

// MinTimeConstant returns the smallest C/ΣG over non-boundary nodes — the
// fastest dynamics in the network, used to pick a safe integration step. It
// returns +Inf when the network has no dynamic nodes.
func (n *Network) MinTimeConstant() float64 {
	tau := math.Inf(1)
	for i := range n.nodes {
		nd := &n.nodes[i]
		if nd.boundary || nd.gSum == 0 {
			continue
		}
		tau = math.Min(tau, nd.capJ/nd.gSum)
	}
	return tau
}

// PowerFunc computes the instantaneous heat input (W) of every node given the
// current node temperatures. temps and out are indexed by NodeID; out is
// pre-zeroed. Implementations must not retain either slice.
type PowerFunc func(temps []float64, out []float64)

// HeatSource is the allocation-free counterpart of PowerFunc: a value
// (typically a pointer to the caller's own state) whose HeatInput method
// fills the per-node heat inputs. Passing a pointer through StepFrom or
// LeapSteps avoids the per-step closure capture a PowerFunc costs, which is
// what keeps the machine layer's steady-state stepping at zero heap
// allocations. The same slice contract as PowerFunc applies.
type HeatSource interface {
	HeatInput(temps []float64, out []float64)
}

// powerFuncSource adapts a PowerFunc to HeatSource for the convenience
// entry points; the adapter allocates, so hot paths implement HeatSource
// directly.
type powerFuncSource struct{ f PowerFunc }

func (s powerFuncSource) HeatInput(temps, out []float64) { s.f(temps, out) }

// flatten rebuilds the CSR adjacency and resizes the scratch buffers after a
// topology change, and invalidates the decay cache (τ depends on ΣG).
func (n *Network) flatten() {
	nn := len(n.nodes)
	n.rowStart = make([]int32, nn+1)
	var edges int
	for i := range n.nodes {
		n.rowStart[i] = int32(edges)
		edges += len(n.nodes[i].nbrs)
	}
	n.rowStart[nn] = int32(edges)
	n.adjIdx = make([]int32, edges)
	n.adjG = make([]float64, edges)
	for i := range n.nodes {
		base := int(n.rowStart[i])
		for k, nb := range n.nodes[i].nbrs {
			n.adjIdx[base+k] = int32(nb)
			n.adjG[base+k] = n.nodes[i].conds[k]
		}
	}
	// Mutable per-step state: carved out of the caller-provided arena when
	// one is bound (batched fleets pack every machine's temperatures and
	// scratch into one contiguous slab), freshly allocated otherwise. The
	// arena path is semantically identical — every carved slice starts
	// zeroed, and the current temperatures are copied across.
	alloc := func(sz int) []float64 { return make([]float64, sz) }
	if len(n.scratch) >= ScratchLen(nn) {
		buf := n.scratch
		alloc = func(sz int) []float64 {
			s := buf[:sz:sz]
			buf = buf[sz:]
			for i := range s {
				s[i] = 0
			}
			return s
		}
		temp := alloc(nn)
		copy(temp, n.temp)
		n.temp = temp
	}
	n.eq = alloc(nn)
	n.pow = alloc(nn)
	for s := range n.slots {
		n.slots[s] = decaySlot{decay: make([]float64, nn)}
	}
	n.decayTick = 0
	for l := range n.ladders {
		n.ladders[l] = propLadder{}
	}
	n.leapLevel = 0
	n.leapPow = alloc(nn)
	n.leapPow2 = alloc(nn)
	n.leapTemp = alloc(nn)
	n.leapDiff = alloc(nn)
	n.leapEvalT = alloc(nn)
	n.leapXY = alloc(2 * nn)
	n.compA, n.compB = propLevel{}, propLevel{}
	n.allRows = n.allRows[:0]
	// A topology change invalidates any adopted fleet snapshot: the shared
	// propagators were built for the old structure.
	n.shared = nil
	n.dirty = false
}

// decayFor returns the per-node decay factors for step size dts, serving them
// from the bit-keyed LRU cache when possible. The factors are computed
// exactly as the pre-cache kernel did — exp(−dts/τ) with τ = C/ΣG — so
// cached and fresh steps are bit-identical, and the cache policy can only
// change cost, never output.
func (n *Network) decayFor(dts float64) []float64 {
	bits := math.Float64bits(dts)
	tick := n.bumpTick()
	victim := 0
	for i := range n.slots {
		s := &n.slots[i]
		if s.bits == bits {
			s.used = tick
			return s.decay
		}
		// Deterministic LRU: recency first, key bits on ties (see
		// ladderFor), so the victim never depends on slot order.
		if v := &n.slots[victim]; s.used < v.used || (s.used == v.used && s.bits < v.bits) {
			victim = i
		}
	}
	// Miss: fill the victim slot, from the fleet-shared snapshot when one
	// is adopted (bit-identical to recomputing — the factors are a pure
	// function of the shared topology), else by recomputing.
	s := &n.slots[victim]
	s.bits = bits
	s.used = tick
	if n.shared != nil {
		if d, ok := n.shared.decay[bits]; ok {
			copy(s.decay, d)
			return s.decay
		}
	}
	for i := range n.nodes {
		nd := &n.nodes[i]
		if nd.boundary || nd.gSum == 0 {
			s.decay[i] = 0
			continue
		}
		tau := nd.capJ / nd.gSum
		s.decay[i] = math.Exp(-dts / tau)
	}
	return s.decay
}

// Step advances the network by dt with the given heat inputs, using a
// per-node exact exponential update against a frozen snapshot of neighbour
// temperatures:
//
//	T' = T_eq + (T − T_eq)·exp(−dt/τ),  T_eq = (P + Σ G·T_nbr)/ΣG,  τ = C/ΣG
//
// The update is unconditionally stable and, because neighbouring layers have
// time constants orders of magnitude apart, accurate for steps up to roughly
// the fastest τ in the network.
func (n *Network) Step(dt units.Time, power PowerFunc) {
	if power == nil {
		n.StepFrom(dt, nil)
		return
	}
	n.StepFrom(dt, powerFuncSource{power})
}

// StepFrom is Step with an allocation-free HeatSource instead of a PowerFunc
// closure; the two produce bit-identical temperatures for the same heat
// inputs. src may be nil for an unpowered network.
func (n *Network) StepFrom(dt units.Time, src HeatSource) {
	if dt <= 0 {
		return
	}
	if n.dirty {
		n.flatten()
	}
	nn := len(n.nodes)
	eq := n.eq[:nn]
	pw := n.pow[:nn]
	copy(eq, n.temp) // snapshot for Jacobi-style update
	for i := range pw {
		pw[i] = 0
	}
	if src != nil {
		src.HeatInput(eq, pw)
	}
	dts := dt.Seconds()
	decay := n.decayFor(dts)
	rowStart, adjIdx, adjG := n.rowStart, n.adjIdx, n.adjG
	for i := 0; i < nn; i++ {
		nd := &n.nodes[i]
		if nd.boundary {
			continue
		}
		if nd.gSum == 0 {
			// Isolated mass: pure integration of its heat input.
			n.temp[i] += pw[i] * dts / nd.capJ
			continue
		}
		var flux float64
		for k := rowStart[i]; k < rowStart[i+1]; k++ {
			flux += adjG[k] * eq[adjIdx[k]]
		}
		teq := (pw[i] + flux) / nd.gSum
		n.temp[i] = teq + (eq[i]-teq)*decay[i]
	}
}

// StepPolyFrom is StepFrom with the per-node decay factor exp(−dt/τ)
// replaced by its cubic Taylor polynomial — no exponentials and no decay
// cache traffic. It exists for the leap integrator's event-aligned
// remainder and sub-step spans, whose step sizes are essentially unique
// (event times are nanosecond-grained) and would otherwise miss the decay
// cache on every call. The polynomial's relative error is (dt/τ)⁴/24 —
// sub-millikelvin for any dt at or below the machine layer's ThermalStep —
// so it is tolerance-mode only; exact integration always uses StepFrom.
func (n *Network) StepPolyFrom(dt units.Time, src HeatSource) {
	if dt <= 0 {
		return
	}
	if n.dirty {
		n.flatten()
	}
	nn := len(n.nodes)
	eq := n.eq[:nn]
	pw := n.pow[:nn]
	copy(eq, n.temp)
	for i := range pw {
		pw[i] = 0
	}
	if src != nil {
		src.HeatInput(eq, pw)
	}
	dts := dt.Seconds()
	rowStart, adjIdx, adjG := n.rowStart, n.adjIdx, n.adjG
	for i := 0; i < nn; i++ {
		nd := &n.nodes[i]
		if nd.boundary {
			continue
		}
		if nd.gSum == 0 {
			n.temp[i] += pw[i] * dts / nd.capJ
			continue
		}
		var flux float64
		for k := rowStart[i]; k < rowStart[i+1]; k++ {
			flux += adjG[k] * eq[adjIdx[k]]
		}
		teq := (pw[i] + flux) / nd.gSum
		x := dts * nd.gSum / nd.capJ
		decay := 1 + x*(-1+x*(0.5-x/6))
		n.temp[i] = teq + (eq[i]-teq)*decay
	}
}

// Advance integrates the network across span, splitting it into steps no
// longer than maxStep. A non-positive maxStep selects a default of a quarter
// of the fastest time constant.
func (n *Network) Advance(span, maxStep units.Time, power PowerFunc) {
	if span <= 0 {
		return
	}
	if maxStep <= 0 {
		tau := n.MinTimeConstant()
		if math.IsInf(tau, 1) {
			maxStep = span
		} else {
			maxStep = units.FromSeconds(tau / 4)
			if maxStep <= 0 {
				maxStep = units.Microsecond
			}
		}
	}
	for span > 0 {
		dt := span
		if dt > maxStep {
			dt = maxStep
		}
		n.Step(dt, power)
		span -= dt
	}
}

// SolveSteadyState iterates the network to its fixed point for the given
// (possibly temperature-dependent) heat inputs, using damped fixed-point
// iteration on the node balance equations. It is used to establish the idle
// baseline temperature and to fast-forward long settling phases in tests.
// It returns the number of sweeps performed and whether it converged to tol
// (°C) within maxSweeps.
func (n *Network) SolveSteadyState(power PowerFunc, tol float64, maxSweeps int) (int, bool) {
	if tol <= 0 {
		tol = 1e-6
	}
	if maxSweeps <= 0 {
		maxSweeps = 10000
	}
	if n.dirty {
		n.flatten()
	}
	nn := len(n.nodes)
	pw := n.pow[:nn]
	snap := n.eq[:nn]
	rowStart, adjIdx, adjG := n.rowStart, n.adjIdx, n.adjG
	for sweep := 1; sweep <= maxSweeps; sweep++ {
		copy(snap, n.temp)
		for i := range pw {
			pw[i] = 0
		}
		if power != nil {
			power(snap, pw)
		}
		var worst float64
		// Gauss-Seidel: use freshly updated values within the sweep for
		// faster convergence on the chain topology.
		for i := 0; i < nn; i++ {
			nd := &n.nodes[i]
			if nd.boundary || nd.gSum == 0 {
				continue
			}
			var flux float64
			for k := rowStart[i]; k < rowStart[i+1]; k++ {
				flux += adjG[k] * n.temp[adjIdx[k]]
			}
			teq := (pw[i] + flux) / nd.gSum
			delta := teq - n.temp[i]
			// Damping keeps the temperature-dependent leakage feedback
			// loop from oscillating near its stability margin.
			n.temp[i] += 0.5 * delta
			worst = math.Max(worst, math.Abs(delta))
		}
		if worst < tol {
			return sweep, true
		}
	}
	return maxSweeps, false
}
