// Quiescence-leaping integrator.
//
// Between discrete events the machine layer integrates with a constant step
// size under a frozen chip configuration, so each Step applies the same
// affine map to the temperature vector:
//
//	T' = M·T + E·p
//
// where M is the per-step exact-exponential Jacobi update (decay on the
// diagonal, conductance-weighted neighbour mixing off it, identity rows for
// boundaries), E injects the heat vector p, and p is the chip's node heat
// inputs. Across a window of k identical steps the closed form is
//
//	T_k = M^k·T_0 + (Σ_{i<k} M^i)·E·p
//
// which repeated squaring evaluates in O(log k) dense multiplies of a
// matrix with one row per thermal node — a handful of nodes — instead of k
// sparse sweeps with k heat-model evaluations. Interval-based thermal
// toolchains (CoMeT, arXiv:2109.12405) and the closed-form decay solutions
// of temperature-aware scheduling analyses (arXiv:0801.4238) exploit the
// same structure.
//
// The heat vector is not truly constant over a window: leakage power depends
// exponentially on junction temperature, so p drifts as the nodes heat or
// cool. LeapSteps therefore leaps in chunks of 2^j steps under an adaptive
// controller: each chunk freezes p at its entry temperatures, predicts the
// chunk with the cached propagator, re-evaluates the heat model at the
// predicted exit, and bounds the frozen-power error by ||U·Δp||∞ — the exact
// accumulated temperature response had the stale power persisted. Chunks
// whose bound exceeds leapTol are halved (a one-step chunk is the exact
// kernel's own semantics and always accepted); accepted chunks apply a
// midpoint power correction, making the local error second order in the
// bound, and grow the next chunk. The controller is a pure function of the
// thermal state, so leap runs are deterministic and independent of -jobs.
package thermal

import (
	"math"

	"repro/internal/obs"
	"repro/internal/units"
)

// phaseLadderBuild accumulates the wall time spent constructing propagator
// ladder rungs (base builds and repeated squarings). It wraps only the build
// loop — never the per-step kernel or the leap application path — so the
// disabled cost is one atomic load per ladder miss, and the hot loop's
// timings are untouched either way.
var phaseLadderBuild = obs.RegisterPhase("thermal.ladder_build")

const (
	// leapTol is the per-chunk ceiling on the frozen-power temperature
	// bound (°C). With the midpoint correction the realised local error
	// is second order in this bound; window divergence from the exact
	// integrator stays well inside the scenario harness' 0.05 °C
	// acceptance band.
	leapTol = 1e-1
	// leapGrow is the fraction of leapTol below which the controller
	// doubles the next chunk.
	leapGrow = 0.25
	// leapSkipCorr is the bound below which the midpoint correction is
	// skipped — at that scale the correction itself is beneath the
	// integrator's noise floor and its two matrix applications are pure
	// overhead. Near thermal equilibrium this is the common case.
	leapSkipCorr = leapTol / 50
	// leapMaxLevel caps chunks at 2^leapMaxLevel steps (~35 simulated
	// minutes at the default 2 ms step) — far beyond any event-free span
	// the harnesses produce, while keeping ladder memory trivial.
	leapMaxLevel = 20
	// leapRelin is the temperature drift (°C, any node) past which a new
	// chunk re-evaluates the heat model instead of re-linearising from the
	// window's last evaluation point. Within the drift radius the
	// linearisation's curvature residual is far below the chunk bound, so
	// a multi-chunk window costs one evaluation per ~leapRelin degrees of
	// movement rather than one per chunk.
	leapRelin = RelinRadiusC
)

// RelinRadiusC is the temperature drift (°C) within which a stashed
// linearisation of a heat source remains valid. Exported so heat sources
// implementing their own per-core memos (the machine layer's ThermalPath)
// share the leap controller's error budget instead of defining a second
// radius that could silently drift from it.
const RelinRadiusC = 0.75

// propLevel is one rung of a propagator ladder: the dense affine maps for
// 2^level consecutive constant-power steps of one fixed step size, stored
// row-major over all nodes (boundary rows are identity in P/Q, zero in U/W).
//
//	T_n = P·T_0 + U·p
//	S_n = Σ_{i=1..n} T_i = Q·T_0 + W·p
//
// S_n is the discrete post-step temperature sum the machine layer's exact
// °C·s integrals are built from, so leap windows account metrics with the
// same discretisation as step-by-step integration.
type propLevel struct {
	built      bool
	p, u, q, w []float64
	// Fused row-major apply blocks: row i of pu is [P_i | U_i], of qw is
	// [Q_i | W_i], applied against the packed vector [T; p] in one
	// contiguous walk — the chunk hot path touches only these.
	pu, qw []float64
	// uNorm is ‖U‖∞ (max row abs-sum): uNorm·‖Δp‖∞ bounds the drift
	// response, letting the chunk loop skip the U·Δp walk and correction
	// outright when the heat drift is negligible — the steady state.
	uNorm float64
}

// fuse materialises the apply blocks from the square matrices.
func (l *propLevel) fuse(nn int) {
	l.pu = fusePair(l.pu, l.p, l.u, nn)
	l.qw = fusePair(l.qw, l.q, l.w, nn)
	l.uNorm = rowAbsNorm(l.u, nn)
}

// rowAbsNorm returns the max row abs-sum of an nn×nn matrix.
func rowAbsNorm(m []float64, nn int) float64 {
	var worst float64
	for i := 0; i < nn; i++ {
		var s float64
		for _, v := range m[i*nn : (i+1)*nn] {
			if v < 0 {
				v = -v
			}
			s += v
		}
		if s > worst {
			worst = s
		}
	}
	return worst
}

// fusePair packs a and b row-interleaved: dst row i = [a_i | b_i].
func fusePair(dst, a, b []float64, nn int) []float64 {
	if dst == nil {
		dst = make([]float64, 2*nn*nn)
	}
	for i := 0; i < nn; i++ {
		copy(dst[2*i*nn:], a[i*nn:(i+1)*nn])
		copy(dst[2*i*nn+nn:], b[i*nn:(i+1)*nn])
	}
	return dst
}

// applyFused computes dst = [A|B]·xy for a fused block (xy packs the two
// operand vectors back to back).
func applyFused(dst, m, xy []float64) {
	nn := len(dst)
	w := 2 * nn
	for i := 0; i < nn; i++ {
		row := m[i*w : i*w+w]
		var acc float64
		for j, v := range row {
			acc += v * xy[j]
		}
		dst[i] = acc
	}
}

// propLadder caches the propagators for one step size. Power-of-two chunk
// lengths live in levels (level 0 comes from the CSR adjacency and the decay
// cache, level j+1 from squaring level j); arbitrary lengths — whole
// quiescent windows, whose step counts repeat across millions of injection
// quanta and workload frames — are composed once from the ladder rungs and
// memoised in composed, keyed on (dt, n).
type propLadder struct {
	bits   uint64 // Float64bits of the step size; 0 marks an empty ladder
	used   uint64
	levels []propLevel
	// small is the direct-indexed memo for chunk lengths below
	// leapSmallMax — the overwhelmingly common case (tick-bounded windows
	// are 50 steps) — so the chunk hot path pays an array index, not a
	// map lookup. composed backs the rare longer lengths, reset when it
	// outgrows leapComposedCap.
	small    [leapSmallMax]*propLevel
	composed map[int]*propLevel
}

const (
	// leapSmallMax bounds the direct-indexed composed-propagator memo.
	leapSmallMax = 64
	// leapComposedCap bounds the map-backed memo for longer chunks.
	leapComposedCap = 256
)

// ladderFor returns the propagator ladder for step size dts, recycling the
// least-recently-used slot on a miss. Two slots mirror the machine layer's
// stepping pattern: leap windows only ever use the dominant ThermalStep, the
// second slot absorbs a reconfigured machine sharing the network.
//
// Eviction is fully deterministic: recency decides, and equal recency
// stamps — empty slots, or the clean epoch after a counter-wrap reset —
// break the tie on the step-size key itself rather than on slot position,
// so the victim never depends on the order step sizes happened to land in
// slots. With ladders visible fleet-wide through the share cache, a
// position-dependent choice would make one machine's slot history leak into
// another's rebuild costs.
func (n *Network) ladderFor(dts float64) *propLadder {
	bits := math.Float64bits(dts)
	tick := n.bumpTick()
	victim := 0
	for i := range n.ladders {
		l := &n.ladders[i]
		if l.bits == bits {
			l.used = tick
			return l
		}
		if v := &n.ladders[victim]; l.used < v.used || (l.used == v.used && l.bits < v.bits) {
			victim = i
		}
	}
	l := &n.ladders[victim]
	*l = propLadder{bits: bits, used: tick}
	return l
}

// bumpTick advances the shared recency clock for the decay and ladder
// caches, guarding against wrap: when the counter would return to zero —
// after which every stamped entry would look fresher than every new one and
// the LRU order would invert — all recency stamps reset to a clean epoch and
// the clock restarts from 1. Relative recency within the epoch is lost, but
// the deterministic key tie-break keeps eviction well-defined.
func (n *Network) bumpTick() uint64 {
	n.decayTick++
	if n.decayTick == 0 {
		for i := range n.slots {
			n.slots[i].used = 0
		}
		for i := range n.ladders {
			n.ladders[i].used = 0
		}
		n.decayTick = 1
	}
	return n.decayTick
}

// level returns ladder rung lvl for step size dts, building rungs as
// needed. With an adopted fleet snapshot, published rungs are used directly
// (they are bit-identical to what a local build would produce) and local
// building starts where the snapshot ends.
func (n *Network) level(lad *propLadder, lvl int, dts float64) *propLevel {
	ls := n.sharedLadder(lad.bits)
	if ls != nil && lvl < len(ls.levels) {
		return ls.levels[lvl]
	}
	for len(lad.levels) <= lvl {
		lad.levels = append(lad.levels, propLevel{})
	}
	bt := phaseLadderBuild.Start()
	built := int64(0)
	for j := 0; j <= lvl; j++ {
		if lad.levels[j].built {
			continue
		}
		if ls != nil && j < len(ls.levels) {
			continue // served from the snapshot when asked for
		}
		built++
		if j == 0 {
			n.buildBase(&lad.levels[0], dts)
			continue
		}
		src := &lad.levels[j-1]
		if ls != nil && j-1 < len(ls.levels) {
			src = ls.levels[j-1]
		}
		squareLevel(&lad.levels[j], src, len(n.nodes))
	}
	phaseLadderBuild.StopN(bt, built)
	return &lad.levels[lvl]
}

// propFor returns the propagator covering exactly c steps: a ladder rung
// when c is a power of two, otherwise the (dt, n)-memoised composition of
// the rungs for c's binary digits. One composed propagator turns a whole
// quiescent window into a single chunk — two heat-model evaluations however
// many steps the window spans.
func (n *Network) propFor(lad *propLadder, c int, dts float64) *propLevel {
	if c&(c-1) == 0 {
		return n.level(lad, log2(c), dts)
	}
	if c < leapSmallMax {
		if l := lad.small[c]; l != nil {
			return l
		}
	} else if l, ok := lad.composed[c]; ok {
		return l
	}
	// Adopted fleet snapshot: published composed windows serve misses
	// directly — the common case in a homogeneous fleet, whose machines
	// all leap the same tick-bounded window lengths.
	if ls := n.sharedLadder(lad.bits); ls != nil {
		if c < leapSmallMax {
			if l := ls.small[c]; l != nil {
				return l
			}
		} else if l, ok := ls.composed[c]; ok {
			return l
		}
	}
	nn := len(n.nodes)
	// Compose the digits in the ping-pong scratch pair, so only the final
	// fused blocks — the only state chunks touch — are allocated and
	// retained.
	cur, other := &n.compA, &n.compB
	first := true
	for rem, j := c, 0; rem > 0; rem, j = rem>>1, j+1 {
		if rem&1 == 0 {
			continue
		}
		rung := n.level(lad, j, dts)
		if first {
			cur.p = append(cur.p[:0], rung.p...)
			cur.u = append(cur.u[:0], rung.u...)
			cur.q = append(cur.q[:0], rung.q...)
			cur.w = append(cur.w[:0], rung.w...)
			first = false
			continue
		}
		composeInto(other, cur, rung, nn)
		cur, other = other, cur
	}
	backing := make([]float64, 4*nn*nn)
	acc := &propLevel{built: true, pu: backing[:2*nn*nn], qw: backing[2*nn*nn:]}
	fusePair(acc.pu, cur.p, cur.u, nn)
	fusePair(acc.qw, cur.q, cur.w, nn)
	acc.uNorm = rowAbsNorm(cur.u, nn)
	if c < leapSmallMax {
		lad.small[c] = acc
		return acc
	}
	if lad.composed == nil || len(lad.composed) >= leapComposedCap {
		lad.composed = make(map[int]*propLevel, 64)
	}
	lad.composed[c] = acc
	return acc
}

// composeInto extends a (covering some steps) by rung (covering more steps)
// in sequence into dst's buffers:
//
//	P' = Pb·Pa          U' = Pb·Ua + Ub
//	Q' = Qa + Qb·Pa     W' = Wa + Qb·Ua + Wb
//
// (all operands are polynomials in the same M, so products commute and the
// split-window derivation applies regardless of digit order).
func composeInto(dst, a, rung *propLevel, nn int) {
	dst.p = matMul(dst.p, rung.p, a.p, nn)
	dst.u = matMulAdd(dst.u, rung.p, a.u, rung.u, nn)
	dst.q = matMulAdd(dst.q, rung.q, a.p, a.q, nn)
	dst.w = matMulAdd(dst.w, rung.q, a.u, a.w, nn)
	for i := range dst.w {
		dst.w[i] += rung.w[i]
	}
}

// log2 returns the exponent of a power of two.
func log2(c int) int {
	l := 0
	for c > 1 {
		c >>= 1
		l++
	}
	return l
}

// buildBase constructs the single-step maps from the flattened topology:
// row i of M is the exact-exponential Jacobi update Step applies, row i of E
// scales node i's heat input. Decay factors come from decayFor, so base
// rungs share the exact kernel's cached exponentials.
func (n *Network) buildBase(l *propLevel, dts float64) {
	nn := len(n.nodes)
	l.p = make([]float64, nn*nn)
	l.u = make([]float64, nn*nn)
	decay := n.decayFor(dts)
	for i := 0; i < nn; i++ {
		nd := &n.nodes[i]
		row := l.p[i*nn : (i+1)*nn]
		switch {
		case nd.boundary:
			row[i] = 1
		case nd.gSum == 0:
			// Isolated mass: pure integration of its heat input.
			row[i] = 1
			l.u[i*nn+i] = dts / nd.capJ
		default:
			d := decay[i]
			row[i] = d
			scale := (1 - d) / nd.gSum
			for k := n.rowStart[i]; k < n.rowStart[i+1]; k++ {
				row[n.adjIdx[k]] += scale * n.adjG[k]
			}
			l.u[i*nn+i] = scale
		}
	}
	l.q = append([]float64(nil), l.p...)
	l.w = append([]float64(nil), l.u...)
	l.fuse(nn)
	l.built = true
}

// squareLevel doubles a rung: with n = 2^(lvl-1) steps behind (P, U, Q, W),
//
//	P' = P·P          U' = P·U + U
//	Q' = Q + Q·P      W' = Q·U + 2·W
//
// covering 2n steps. All operands are polynomials in the same M, so the
// products commute and the recurrences follow from splitting the window.
func squareLevel(dst, src *propLevel, nn int) {
	dst.p = matMul(dst.p, src.p, src.p, nn)
	dst.u = matMulAdd(dst.u, src.p, src.u, src.u, nn)
	dst.q = matMulAdd(dst.q, src.q, src.p, src.q, nn)
	dst.w = matMulAdd(dst.w, src.q, src.u, src.w, nn)
	for i := range dst.w {
		dst.w[i] += src.w[i]
	}
	dst.fuse(nn)
	dst.built = true
}

// matMul returns a·b into dst (allocated if needed; must not alias a or b).
func matMul(dst, a, b []float64, nn int) []float64 {
	if dst == nil {
		dst = make([]float64, nn*nn)
	}
	for i := 0; i < nn; i++ {
		ar := a[i*nn : (i+1)*nn]
		dr := dst[i*nn : (i+1)*nn]
		for j := range dr {
			dr[j] = 0
		}
		for k, av := range ar {
			if av == 0 {
				continue
			}
			br := b[k*nn : (k+1)*nn]
			for j, bv := range br {
				dr[j] += av * bv
			}
		}
	}
	return dst
}

// matMulAdd returns a·b + c into dst.
func matMulAdd(dst, a, b, c []float64, nn int) []float64 {
	dst = matMul(dst, a, b, nn)
	for i := range dst {
		dst[i] += c[i]
	}
	return dst
}

// QuiescentSource is a HeatSource that can additionally linearise itself:
// HeatLinear adds into dp the first-order change of the heat inputs when
// node temperatures move by dT around temps. Sources that implement it let
// the leap controller bound and correct frozen-power drift analytically —
// one heat-model evaluation per chunk and evaluation-free chunk rejection —
// instead of re-evaluating the model at the predicted chunk exit. dp is
// pre-zeroed; the usual slice retention contract applies.
type QuiescentSource interface {
	HeatSource
	HeatLinear(temps, dT, dp []float64)
}

// leapEval fills dst with the heat inputs for the given temperatures.
func (n *Network) leapEval(src HeatSource, temps, dst []float64) float64 {
	for i := range dst {
		dst[i] = 0
	}
	if src != nil {
		src.HeatInput(temps, dst)
	}
	var total float64
	for _, v := range dst {
		total += v
	}
	return total
}

// SetLeapSumRows restricts the per-step temperature sums LeapSteps
// accumulates to the given nodes — the machine layer only integrates the
// sensed per-core junctions, so the other rows' Q/W applications are pure
// overhead. nil (the default) sums every node.
func (n *Network) SetLeapSumRows(rows []NodeID) {
	n.leapRows = append(n.leapRows[:0], rows...)
}

// sumRowsOrAll returns the rows LeapSteps accumulates sums for.
func (n *Network) sumRowsOrAll() []NodeID {
	if len(n.leapRows) > 0 {
		return n.leapRows
	}
	if len(n.allRows) != len(n.nodes) {
		n.allRows = n.allRows[:0]
		for i := range n.nodes {
			n.allRows = append(n.allRows, NodeID(i))
		}
	}
	return n.allRows
}

// LeapSteps advances the network across k equal steps of size dt with the
// heat model held structurally constant (the quiescence window the machine
// layer certifies between scheduler events), leaping in adaptively sized
// power-of-two chunks instead of stepping k times. Each node's discrete
// post-step temperature sum Σ_{i=1..k} T_i is added into tempSum (length
// NumNodes; the machine layer turns it into exact °C·s integrals), and the
// returned value is the matching sum of total heat input across steps
// (W·steps, trapezoid-accounted per chunk) for energy integration.
//
// LeapSteps is tolerance-mode: temperatures track the exact integrator to
// within the controller bound (see leapTol) rather than bit-identically.
// It is deterministic — chunk decisions depend only on the thermal state.
func (n *Network) LeapSteps(k int, dt units.Time, src HeatSource, tempSum []float64) float64 {
	if k <= 0 || dt <= 0 {
		return 0
	}
	if n.dirty {
		n.flatten()
	}
	dts := dt.Seconds()
	lad := n.ladderFor(dts)
	nn := len(n.nodes)
	xy := n.leapXY
	pw := xy[nn:] // heat inputs live in the packed [T; p] apply vector
	tNew, dT, diff := n.leapTemp, n.leapPow2, n.leapDiff
	evalT, pwE := n.leapEvalT, n.leapPow
	rows := n.sumRowsOrAll()
	qs, hasLin := src.(QuiescentSource)
	var powSum float64
	haveEval := false
	for k > 0 {
		// Try the whole remaining window as one chunk, up to the
		// controller's current trust 2^leapLevel; the (dt, n) memo makes
		// arbitrary chunk lengths as cheap as ladder rungs.
		c := k
		if max := 1 << n.leapLevel; c > max {
			c = max
		}
		// Heat inputs at the chunk entry: within leapRelin degrees of
		// the window's last model evaluation a linearised update
		// suffices — multi-chunk transients pay one evaluation per
		// ~leapRelin degrees of movement, not one per chunk.
		var totalA float64
		relin := false
		if haveEval && hasLin {
			var drift float64
			for i := 0; i < nn; i++ {
				d := n.temp[i] - evalT[i]
				if d < 0 {
					d = -d
				}
				if d > drift {
					drift = d
				}
			}
			relin = drift <= leapRelin
		}
		if relin {
			for i := 0; i < nn; i++ {
				dT[i] = n.temp[i] - evalT[i]
				diff[i] = 0
			}
			qs.HeatLinear(evalT, dT, diff)
			totalA = 0
			for i := 0; i < nn; i++ {
				pw[i] = pwE[i] + diff[i]
				totalA += pw[i]
			}
		} else {
			totalA = n.leapEval(src, n.temp, pw)
			if hasLin {
				copy(evalT, n.temp)
				copy(pwE, pw)
				haveEval = true
			}
		}
		copy(xy, n.temp)
		for {
			l := n.propFor(lad, c, dts)
			applyFused(tNew, l.pu, xy)
			// Frozen-power drift Δp across the chunk, first order:
			// analytically when the source linearises itself, by a
			// second model evaluation otherwise.
			if hasLin {
				for i := range dT {
					dT[i] = tNew[i] - xy[i]
					diff[i] = 0
				}
				qs.HeatLinear(xy[:nn], dT, diff)
			} else {
				n.leapEval(src, tNew, dT)
				for i := range diff {
					diff[i] = dT[i] - pw[i]
				}
			}
			// Drift bound: the additional temperature the chunk would
			// have accumulated had the exit-state power applied
			// throughout — U·Δp from the fused block's right half,
			// folded into tNew as the midpoint correction on accept.
			// The norm pre-check skips the walk (and the correction)
			// when the drift response is provably negligible.
			w2 := 2 * nn
			var maxDiff float64
			for _, v := range diff {
				if v < 0 {
					v = -v
				}
				if v > maxDiff {
					maxDiff = v
				}
			}
			bound := l.uNorm * maxDiff
			if bound > leapSkipCorr {
				bound = 0
				for i := 0; i < nn; i++ {
					row := l.pu[i*w2+nn : i*w2+w2]
					var acc float64
					for j, v := range row {
						acc += v * diff[j]
					}
					dT[i] = acc // resp, reusing dT as scratch
					if acc < 0 {
						acc = -acc
					}
					if acc > bound {
						bound = acc
					}
				}
			}
			if bound > leapTol && c > 1 {
				c >>= 1
				n.leapRejects++
				continue
			}
			// Accept with a midpoint power correction — realised
			// error is second order in the bound — and steer the
			// next chunk size.
			var dTotal float64
			for _, v := range diff {
				dTotal += v
			}
			powSum += float64(c) * (totalA + 0.5*dTotal)
			correct := bound > leapSkipCorr
			if correct {
				for i := range tNew {
					tNew[i] += 0.5 * dT[i]
				}
			}
			// Discrete per-step temperature sums, only for the rows
			// anyone integrates.
			for _, r := range rows {
				i := int(r)
				row := l.qw[i*w2 : i*w2+w2]
				var acc float64
				for j, v := range row {
					acc += v * xy[j]
				}
				if correct {
					wr := row[nn:]
					var cw float64
					for j, v := range wr {
						cw += v * diff[j]
					}
					acc += 0.5 * cw
				}
				tempSum[i] += acc
			}
			copy(n.temp, tNew)
			k -= c
			n.leapChunks++
			n.leapSteps += uint64(c)
			// Trust steering: a comfortable bound doubles the cap, a
			// merely acceptable one pins it at the accepted size.
			switch {
			case bound <= leapTol*leapGrow && n.leapLevel < leapMaxLevel:
				n.leapLevel++
			default:
				for n.leapLevel > 0 && 1<<(n.leapLevel-1) >= c {
					n.leapLevel--
				}
			}
			break
		}
	}
	return powSum
}

// LeapStats reports the cumulative number of accepted leap chunks and the
// steps they covered — the compression ratio steps/chunks is the integrator's
// effective speed advantage over step-by-step integration.
func (n *Network) LeapStats() (chunks, steps uint64) {
	return n.leapChunks, n.leapSteps
}

// LeapRejects reports the cumulative number of chunk attempts the drift
// controller rejected and subdivided — a high ratio against LeapStats'
// chunks means the tolerance is binding (fast transients), a near-zero one
// that windows leap whole.
func (n *Network) LeapRejects() uint64 { return n.leapRejects }
