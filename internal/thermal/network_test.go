package thermal

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

// chain builds ambient ← sink ← node with the given parameters.
func chain(cap1, r1, cap2, r2 float64, ambient units.Celsius) (*Network, NodeID, NodeID, NodeID) {
	n := NewNetwork()
	amb := n.AddBoundary("ambient", ambient)
	sink := n.AddNode("sink", cap1, ambient)
	node := n.AddNode("node", cap2, ambient)
	n.Connect(sink, amb, r1)
	n.Connect(node, sink, r2)
	return n, amb, sink, node
}

func constPower(target NodeID, watts float64) PowerFunc {
	return func(temps []float64, out []float64) { out[target] += watts }
}

func TestSteadyStateLinear(t *testing.T) {
	// A chain with constant power P: node sits at ambient + P·(R1+R2).
	n, _, sink, node := chain(10, 0.5, 1, 0.25, 25)
	n.SolveSteadyState(constPower(node, 20), 1e-9, 100000)
	wantNode := 25 + 20*(0.5+0.25)
	wantSink := 25 + 20*0.5
	if got := float64(n.Temp(node)); math.Abs(got-wantNode) > 1e-6 {
		t.Errorf("node steady = %v, want %v", got, wantNode)
	}
	if got := float64(n.Temp(sink)); math.Abs(got-wantSink) > 1e-6 {
		t.Errorf("sink steady = %v, want %v", got, wantSink)
	}
}

func TestAdvanceConvergesToSteadyState(t *testing.T) {
	n1, _, _, node1 := chain(10, 0.5, 1, 0.25, 25)
	n2, _, _, node2 := chain(10, 0.5, 1, 0.25, 25)
	pw := 20.0
	n1.SolveSteadyState(constPower(node1, pw), 1e-9, 100000)
	// Integrate long enough: slowest τ ≈ 10·0.5 = 5 s → 80 s ≫ 5τ.
	n2.Advance(80*units.Second, 50*units.Millisecond, constPower(node2, pw))
	if diff := math.Abs(float64(n1.Temp(node1) - n2.Temp(node2))); diff > 0.01 {
		t.Errorf("Advance and SolveSteadyState disagree by %v C", diff)
	}
}

func TestExponentialRelaxation(t *testing.T) {
	// A single node against a boundary relaxes exponentially with τ = RC.
	n := NewNetwork()
	amb := n.AddBoundary("amb", 0)
	node := n.AddNode("n", 2, 100)
	n.Connect(node, amb, 0.5) // τ = 2·0.5 = 1 s
	n.Advance(units.Second, units.Millisecond, nil)
	want := 100 * math.Exp(-1)
	if got := float64(n.Temp(node)); math.Abs(got-want) > 0.1 {
		t.Errorf("after 1τ: %v, want %v", got, want)
	}
	n.Advance(3*units.Second, units.Millisecond, nil)
	if got := float64(n.Temp(node)); got > 2.0 {
		t.Errorf("after 4τ: %v, want <2", got)
	}
}

func TestCoolingNeverUndershootsAmbient(t *testing.T) {
	f := func(startRaw, stepMsRaw uint8) bool {
		start := units.Celsius(30 + float64(startRaw%70))
		stepMs := float64(stepMsRaw%50) + 0.5
		n := NewNetwork()
		amb := n.AddBoundary("amb", 25)
		node := n.AddNode("n", 0.05, start)
		n.Connect(node, amb, 0.8)
		for i := 0; i < 100; i++ {
			n.Step(units.FromMilliseconds(stepMs), nil)
			if float64(n.Temp(node)) < 25-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMorePowerMeansHotter(t *testing.T) {
	f := func(p1Raw, p2Raw uint8) bool {
		p1 := float64(p1Raw)
		p2 := float64(p2Raw)
		if p1 == p2 {
			return true
		}
		n1, _, _, node1 := chain(10, 0.5, 1, 0.25, 25)
		n2, _, _, node2 := chain(10, 0.5, 1, 0.25, 25)
		n1.SolveSteadyState(constPower(node1, p1), 1e-9, 100000)
		n2.SolveSteadyState(constPower(node2, p2), 1e-9, 100000)
		if p1 < p2 {
			return float64(n1.Temp(node1)) < float64(n2.Temp(node2))+1e-9
		}
		return float64(n2.Temp(node2)) < float64(n1.Temp(node1))+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBoundaryFixed(t *testing.T) {
	n, amb, _, node := chain(10, 0.5, 1, 0.25, 25)
	n.Advance(10*units.Second, 10*units.Millisecond, constPower(node, 50))
	if got := n.Temp(amb); got != 25 {
		t.Errorf("ambient drifted to %v", got)
	}
}

func TestStepStabilityLargeDt(t *testing.T) {
	// The exponential update must remain bounded even for steps far beyond
	// the fastest time constant.
	n, _, _, node := chain(10, 0.5, 0.01, 0.25, 25)
	for i := 0; i < 1000; i++ {
		n.Step(units.Second, constPower(node, 20))
		if v := float64(n.Temp(node)); math.IsNaN(v) || v < 0 || v > 500 {
			t.Fatalf("unstable at step %d: %v", i, v)
		}
	}
}

func TestMinTimeConstant(t *testing.T) {
	n, _, _, _ := chain(10, 0.5, 1, 0.25, 25)
	// node: C=1, G=1/0.25=4 → τ=0.25; sink: C=10, G=2+4=6 → τ=1.67.
	if got := n.MinTimeConstant(); math.Abs(got-0.25) > 1e-9 {
		t.Errorf("MinTimeConstant = %v", got)
	}
	empty := NewNetwork()
	empty.AddBoundary("amb", 25)
	if !math.IsInf(empty.MinTimeConstant(), 1) {
		t.Error("boundary-only network should have infinite τ")
	}
}

func TestTemperatureDependentPower(t *testing.T) {
	// Power that grows with temperature (leakage): steady state must
	// reflect the feedback, sitting above the feedback-free solution.
	n, _, _, node := chain(10, 0.5, 1, 0.25, 25)
	leaky := func(temps []float64, out []float64) {
		out[node] += 10 + 0.2*(temps[node]-25)
	}
	_, converged := n.SolveSteadyState(leaky, 1e-9, 200000)
	if !converged {
		t.Fatal("no convergence with feedback")
	}
	got := float64(n.Temp(node))
	// Solve analytically: T = 25 + (10 + 0.2(T−25))·0.75 → (T−25)(1−0.15)=7.5.
	want := 25 + 7.5/0.85
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("feedback steady = %v, want %v", got, want)
	}
}

func TestAdvanceDefaultStep(t *testing.T) {
	n, _, _, node := chain(10, 0.5, 1, 0.25, 25)
	n.Advance(units.Second, 0, constPower(node, 20)) // default maxStep
	if float64(n.Temp(node)) <= 25 {
		t.Error("no heating with default step")
	}
}

func TestValidationPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero capacitance": func() { NewNetwork().AddNode("x", 0, 25) },
		"zero resistance": func() {
			n := NewNetwork()
			a := n.AddNode("a", 1, 25)
			b := n.AddNode("b", 1, 25)
			n.Connect(a, b, 0)
		},
		"self connection": func() {
			n := NewNetwork()
			a := n.AddNode("a", 1, 25)
			n.Connect(a, a, 1)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestAccessors(t *testing.T) {
	n := NewNetwork()
	amb := n.AddBoundary("ambient", 25)
	node := n.AddNode("core", 1, 30)
	n.Connect(node, amb, 1)
	if n.NumNodes() != 2 {
		t.Errorf("NumNodes = %d", n.NumNodes())
	}
	if n.Name(node) != "core" || n.Name(amb) != "ambient" {
		t.Error("names wrong")
	}
	n.SetTemp(node, 50)
	if n.Temp(node) != 50 {
		t.Error("SetTemp failed")
	}
	temps := n.Temps(nil)
	if len(temps) != 2 || temps[node] != 50 {
		t.Errorf("Temps = %v", temps)
	}
	// Buffer reuse.
	buf := make([]units.Celsius, 0, 8)
	temps2 := n.Temps(buf)
	if len(temps2) != 2 {
		t.Errorf("Temps reuse = %v", temps2)
	}
}

func TestParallelResistance(t *testing.T) {
	// Two parallel paths halve the effective resistance.
	n := NewNetwork()
	amb := n.AddBoundary("amb", 0)
	node := n.AddNode("n", 1, 0)
	n.Connect(node, amb, 2)
	n.Connect(node, amb, 2)
	n.SolveSteadyState(constPower(node, 10), 1e-9, 100000)
	if got := float64(n.Temp(node)); math.Abs(got-10) > 1e-6 {
		t.Errorf("parallel steady = %v, want 10", got)
	}
}

func TestZeroAndNegativeSpans(t *testing.T) {
	n, _, _, node := chain(10, 0.5, 1, 0.25, 25)
	before := n.Temp(node)
	n.Advance(0, units.Millisecond, constPower(node, 100))
	n.Advance(-units.Second, units.Millisecond, constPower(node, 100))
	n.Step(0, constPower(node, 100))
	if n.Temp(node) != before {
		t.Error("zero/negative spans mutated state")
	}
}

func TestIsolatedNodeIntegratesPower(t *testing.T) {
	n := NewNetwork()
	node := n.AddNode("iso", 2, 25)
	n.Step(units.Second, constPower(node, 4))
	// dT = P·dt/C = 4·1/2 = 2.
	if got := float64(n.Temp(node)); math.Abs(got-27) > 1e-9 {
		t.Errorf("isolated node = %v, want 27", got)
	}
}
