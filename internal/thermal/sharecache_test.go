package thermal

import (
	"math"
	"sync"
	"testing"

	"repro/internal/units"
)

// leapRun drives a fresh testNetwork through a representative mix of leap
// windows and returns the final temperatures plus the accumulated sums.
func leapRun(n *Network, junctions []NodeID) ([]float64, []float64, float64) {
	src := coupledPower{pkg: 2, junctions: junctions}
	sums := make([]float64, n.NumNodes())
	dt := 2 * units.Millisecond
	var pow float64
	for _, k := range []int{50, 37, 50, 128, 5, 50, 1000, 50} {
		pow += n.LeapSteps(k, dt, src, sums)
	}
	temps := make([]float64, n.NumNodes())
	copy(temps, n.temp)
	return temps, sums, pow
}

// TestShareBitIdentical pins the sharing contract: a network that adopts a
// published snapshot must produce bit-identical temperatures, sums and
// energy to one that builds every propagator itself.
func TestShareBitIdentical(t *testing.T) {
	ref, junctions := testNetwork(25.2)
	refTemps, refSums, refPow := leapRun(ref, junctions)

	share := ref.ExportShare()
	if rungs, _ := share.Levels(); rungs == 0 {
		t.Fatal("exported share carries no built rungs")
	}

	adopter, junctions2 := testNetwork(25.2)
	adopter.AdoptShare(share)
	gotTemps, gotSums, gotPow := leapRun(adopter, junctions2)

	for i := range refTemps {
		if math.Float64bits(gotTemps[i]) != math.Float64bits(refTemps[i]) {
			t.Errorf("node %d temp: adopted %v, self-built %v (must be bit-identical)", i, gotTemps[i], refTemps[i])
		}
		if math.Float64bits(gotSums[i]) != math.Float64bits(refSums[i]) {
			t.Errorf("node %d sum: adopted %v, self-built %v", i, gotSums[i], refSums[i])
		}
	}
	if math.Float64bits(gotPow) != math.Float64bits(refPow) {
		t.Errorf("power sum: adopted %v, self-built %v", gotPow, refPow)
	}
}

// TestShareExactStepBitIdentical pins decay-table sharing through the exact
// kernel: adopted decay factors must reproduce StepFrom bit for bit.
func TestShareExactStepBitIdentical(t *testing.T) {
	ref, junctions := testNetwork(25.2)
	src := fixedPower{pkg: 2, junctions: junctions}
	for i := 0; i < 500; i++ {
		ref.StepFrom(2*units.Millisecond, src)
	}
	share := ref.ExportShare()

	a, ja := testNetwork(25.2)
	b, jb := testNetwork(25.2)
	b.AdoptShare(share)
	for i := 0; i < 500; i++ {
		a.StepFrom(2*units.Millisecond, fixedPower{pkg: 2, junctions: ja})
		b.StepFrom(2*units.Millisecond, fixedPower{pkg: 2, junctions: jb})
	}
	for i := range a.temp {
		if math.Float64bits(a.temp[i]) != math.Float64bits(b.temp[i]) {
			t.Errorf("node %d: plain %v, adopted %v", i, a.temp[i], b.temp[i])
		}
	}
}

// TestTopoKey pins the sharing precondition: identical topologies hash
// alike (including across differing boundary temperatures, which the
// propagators never see), while a changed conductance or capacitance keys
// separately.
func TestTopoKey(t *testing.T) {
	a, _ := testNetwork(25.2)
	b, _ := testNetwork(40)
	if a.TopoKey() != b.TopoKey() {
		t.Error("identical topologies with different start temperatures must share a TopoKey")
	}
	c := NewNetwork()
	amb := c.AddBoundary("ambient", 30) // different boundary temp only
	sink := c.AddNode("heatsink", 170, 25.2)
	pkg := c.AddNode("package", 45, 25.2)
	c.Connect(sink, amb, 0.115)
	c.Connect(pkg, sink, 0.045)
	for i := 0; i < 4; i++ {
		j := c.AddNode("junction", 0.0375, 25.2)
		c.Connect(j, pkg, 0.80)
	}
	if a.TopoKey() != c.TopoKey() {
		t.Error("boundary temperature must not enter the TopoKey")
	}

	d := NewNetwork()
	amb = d.AddBoundary("ambient", 25.2)
	sink = d.AddNode("heatsink", 170, 25.2)
	pkg = d.AddNode("package", 45, 25.2)
	d.Connect(sink, amb, 0.115*1.2) // fan-scaled sink resistance
	d.Connect(pkg, sink, 0.045)
	for i := 0; i < 4; i++ {
		j := d.AddNode("junction", 0.0375, 25.2)
		d.Connect(j, pkg, 0.80)
	}
	if a.TopoKey() == d.TopoKey() {
		t.Error("a changed conductance must change the TopoKey")
	}
}

// TestLadderCacheFirstPutWins pins the publication discipline under
// concurrency: many representatives racing to publish snapshots for one
// key must all converge on a single live snapshot, and a lookup that found
// the published snapshot must keep resolving to that same pointer forever —
// a live ladder set is never rebuilt or replaced. Run under -race this also
// proves the lock discipline.
func TestLadderCacheFirstPutWins(t *testing.T) {
	cache := NewLadderCache()
	const workers = 32
	winners := make([]*PropShare, workers)
	var wg sync.WaitGroup
	var key uint64
	{
		n, _ := testNetwork(25.2)
		key = n.TopoKey()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if ps := cache.Get(key); ps != nil {
				// Found a live snapshot: adopt it, never rebuild.
				winners[w] = ps
				return
			}
			n, junctions := testNetwork(25.2)
			leapRun(n, junctions)
			winners[w] = cache.Put(key, n.ExportShare())
		}(w)
	}
	wg.Wait()
	first := winners[0]
	for w, ps := range winners {
		if ps == nil {
			t.Fatalf("worker %d ended with no snapshot", w)
		}
		if ps != first {
			t.Errorf("worker %d adopted a different snapshot than worker 0: live ladders must never be replaced", w)
		}
	}
	if got := cache.Get(key); got != first {
		t.Errorf("post-race lookup returned %p, want the first-published %p", got, first)
	}
	if cache.Len() != 1 {
		t.Errorf("cache holds %d snapshots for one key, want 1", cache.Len())
	}
}

// TestEvictionDeterministic pins the LRU tie-break: with all recency stamps
// equal (the post-wrap clean epoch), the victim is chosen by key bits, not
// slot position, so two networks that filled their slots in different
// orders evict identically.
func TestEvictionDeterministic(t *testing.T) {
	sizes := []float64{0.002, 0.000311, 0.000097, 0.000733, 0.0005, 0.00031, 0.00017, 0.00092}
	fill := func(order []int) *Network {
		n, _ := testNetwork(25.2)
		n.flattenIfDirty()
		for _, i := range order {
			n.decayFor(sizes[i])
		}
		// Force the tie: wipe all recency stamps to the clean epoch.
		for i := range n.slots {
			n.slots[i].used = 0
		}
		return n
	}
	forward := make([]int, len(sizes))
	backward := make([]int, len(sizes))
	for i := range forward {
		forward[i] = i
		backward[i] = len(sizes) - 1 - i
	}
	a := fill(forward)
	b := fill(backward)
	const newSize = 0.00061
	a.decayFor(newSize)
	b.decayFor(newSize)
	evictedA := missingKey(a, sizes)
	evictedB := missingKey(b, sizes)
	if evictedA != evictedB {
		t.Errorf("fill-order-dependent eviction: forward evicted %v, backward evicted %v", evictedA, evictedB)
	}
	// The deterministic rule is: smallest key bits among the tied slots.
	wantBits := math.Float64bits(sizes[0])
	for _, s := range sizes[1:] {
		if b := math.Float64bits(s); b < wantBits {
			wantBits = b
		}
	}
	if math.Float64bits(evictedA) != wantBits {
		t.Errorf("evicted %v, want the smallest-bits key %v", evictedA, math.Float64frombits(wantBits))
	}
}

// missingKey returns which of the given step sizes no longer has a decay
// slot.
func missingKey(n *Network, sizes []float64) float64 {
	for _, s := range sizes {
		bits := math.Float64bits(s)
		found := false
		for i := range n.slots {
			if n.slots[i].bits == bits {
				found = true
				break
			}
		}
		if !found {
			return s
		}
	}
	return 0
}

// flattenIfDirty is a test helper exposing the lazy flatten.
func (n *Network) flattenIfDirty() {
	if n.dirty {
		n.flatten()
	}
}

// TestTickWrapGuard pins the counter-wrap path: with the recency clock one
// increment from wrapping, lookups must keep working, reset every stamp to
// the clean epoch, and restart the clock — never invert LRU order or stall.
func TestTickWrapGuard(t *testing.T) {
	n, _ := testNetwork(25.2)
	n.flattenIfDirty()
	n.decayFor(0.002)
	n.ladderFor(0.002)
	n.decayTick = math.MaxUint64 - 1
	n.decayFor(0.002)                     // tick -> MaxUint64
	d := n.decayFor(0.000311)             // wraps: epoch reset, tick restarts at 1
	if n.decayTick == 0 || n.decayTick > 4 {
		t.Errorf("decayTick after wrap = %d, want a small restarted epoch", n.decayTick)
	}
	if d == nil {
		t.Fatal("decayFor returned nil across the wrap")
	}
	lad := n.ladderFor(0.002)
	if lad == nil || lad.bits != math.Float64bits(0.002) {
		t.Fatal("ladderFor lost its ladder across the wrap")
	}
	// Stamps must be fresh-epoch: nothing may still carry a huge stamp that
	// would outrank every future touch.
	for i := range n.slots {
		if n.slots[i].used > n.decayTick {
			t.Errorf("slot %d stamp %d outranks the restarted clock %d", i, n.slots[i].used, n.decayTick)
		}
	}
	for i := range n.ladders {
		if n.ladders[i].used > n.decayTick {
			t.Errorf("ladder %d stamp %d outranks the restarted clock %d", i, n.ladders[i].used, n.decayTick)
		}
	}
}
