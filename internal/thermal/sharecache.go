// Fleet-shared propagator state.
//
// A leap propagator ladder is a pure function of (topology, step size): the
// P/U/Q/W maps come from node capacitances, boundary flags and the CSR
// conductance structure, never from temperatures (boundary rows are
// identity, so even the ambient setpoint stays out). A fleet of homogeneous
// machines therefore rebuilds byte-identical ladders N times over. This
// file hoists them out: one machine's built ladders are exported as an
// immutable PropShare snapshot, published into a read-locked LadderCache
// keyed by the topology hash, and adopted by every subsequent machine of
// the same shape, whose Networks then consult the snapshot on cache misses
// instead of rebuilding.
//
// The locking discipline is deliberately narrow: the RWMutex guards only
// the cache map. Snapshots themselves are immutable after publication —
// propLevels are never mutated once built, and ExportShare deep-copies the
// one buffer (the decay tables) its exporter could later overwrite — so
// lookups on the simulation hot path are a read-lock and a map probe, and
// adopted state needs no synchronisation at all.
package thermal

import (
	"math"
	"sync"
)

// TopoKey returns a hash of the network's flattened topology: node
// capacitances, boundary flags, and the CSR conductance structure. These
// are the complete inputs of the decay factors and leap propagators —
// boundary temperatures enter neither — so two networks with equal TopoKeys
// build bit-identical propagators for every step size, which is the
// precondition for sharing them. Machines differing only in ambient
// placement hash alike and share; a different fan factor changes a
// conductance and keys separately.
func (n *Network) TopoKey() uint64 {
	if n.dirty {
		n.flatten()
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= prime64
		}
	}
	mix(uint64(len(n.nodes)))
	for i := range n.nodes {
		nd := &n.nodes[i]
		mix(math.Float64bits(nd.capJ))
		if nd.boundary {
			mix(1)
		} else {
			mix(0)
		}
	}
	for _, v := range n.rowStart {
		mix(uint64(v))
	}
	for _, v := range n.adjIdx {
		mix(uint64(v))
	}
	for _, g := range n.adjG {
		mix(math.Float64bits(g))
	}
	return h
}

// ladderShare is one step size's published propagator set: the built ladder
// rungs plus the composed-window memos. All pointers are read-only.
type ladderShare struct {
	levels   []*propLevel
	small    [leapSmallMax]*propLevel
	composed map[int]*propLevel
}

// PropShare is an immutable snapshot of one network's built propagator
// ladders and decay-factor tables, keyed by step-size bits. It is safe for
// unsynchronised concurrent use by any number of adopting networks with the
// same TopoKey; nothing in it is mutated after ExportShare returns.
type PropShare struct {
	ladders map[uint64]*ladderShare
	decay   map[uint64][]float64
}

// Levels reports the number of built ladder rungs and memoised composed
// windows in the snapshot, summed over step sizes — instrumentation for
// tests and benchmarks.
func (ps *PropShare) Levels() (rungs, composed int) {
	for _, ls := range ps.ladders {
		rungs += len(ls.levels)
		for _, l := range ls.small {
			if l != nil {
				composed++
			}
		}
		composed += len(ls.composed)
	}
	return rungs, composed
}

// ExportShare snapshots the network's built propagator rungs, composed
// window memos, and decay tables into an immutable PropShare. Call it only
// once the owning machine has stopped stepping: propLevels are immutable
// once built, so the snapshot aliases them directly, but the decay tables
// live in LRU slots the owner would overwrite on a future miss, so those
// are copied.
func (n *Network) ExportShare() *PropShare {
	ps := &PropShare{
		ladders: make(map[uint64]*ladderShare, len(n.ladders)),
		decay:   make(map[uint64][]float64, decaySlots),
	}
	for i := range n.ladders {
		lad := &n.ladders[i]
		if lad.bits == 0 {
			continue
		}
		ls := &ladderShare{small: lad.small}
		for j := range lad.levels {
			if !lad.levels[j].built {
				break
			}
			ls.levels = append(ls.levels, &lad.levels[j])
		}
		if len(lad.composed) > 0 {
			ls.composed = make(map[int]*propLevel, len(lad.composed))
			for k, v := range lad.composed {
				ls.composed[k] = v
			}
		}
		ps.ladders[lad.bits] = ls
	}
	for i := range n.slots {
		s := &n.slots[i]
		if s.bits == 0 {
			continue
		}
		d := make([]float64, len(s.decay))
		copy(d, s.decay)
		ps.decay[s.bits] = d
	}
	return ps
}

// AdoptShare installs a published snapshot as this network's read-only
// fallback: propagator and decay lookups consult it on local-cache misses
// and use its entries directly instead of rebuilding. The caller must
// guarantee the snapshot came from a network with an equal TopoKey —
// adopted propagators are trusted, not checked, per lookup. Any later
// topology change drops the adoption.
func (n *Network) AdoptShare(ps *PropShare) {
	if n.dirty {
		n.flatten()
	}
	n.shared = ps
}

// sharedLadder returns the adopted snapshot's ladder for the given
// step-size bits, or nil.
func (n *Network) sharedLadder(bits uint64) *ladderShare {
	if n.shared == nil {
		return nil
	}
	return n.shared.ladders[bits]
}

// ScratchLen reports the arena length SetScratch requires for a network of
// numNodes nodes: the temperature vector plus every per-step integration
// scratch buffer.
func ScratchLen(numNodes int) int { return 10 * numNodes }

// SetScratch binds an externally allocated backing array for the network's
// mutable per-step state — temperatures and integration scratch. A batched
// fleet allocates one contiguous slab for all machines of a group and hands
// each network its stride, so the fleet's hot state is a single
// structure-of-arrays block instead of scattered heap allocations. The
// buffer must be at least ScratchLen(NumNodes()) long (shorter buffers are
// ignored) and must not be shared between networks. Binding takes effect at
// the next flatten and is output-neutral: carved state starts zeroed and
// current temperatures are preserved.
func (n *Network) SetScratch(buf []float64) {
	n.scratch = buf
	n.dirty = true
}

// LadderCache is the fleet-shared, read-locked propagator cache: TopoKey →
// published PropShare. Publication is first-put-wins — once a snapshot for
// a key is live it is never replaced, so concurrent representatives racing
// to publish can never make an adopting machine switch ladders mid-fleet,
// and lookups that found the published snapshot never observe a rebuild.
type LadderCache struct {
	mu sync.RWMutex
	m  map[uint64]*PropShare
}

// NewLadderCache returns an empty cache.
func NewLadderCache() *LadderCache {
	return &LadderCache{m: make(map[uint64]*PropShare)}
}

// Get returns the published snapshot for the topology key, or nil.
func (c *LadderCache) Get(key uint64) *PropShare {
	c.mu.RLock()
	ps := c.m[key]
	c.mu.RUnlock()
	return ps
}

// Put publishes a snapshot for the key unless one is already live, and
// returns the winning snapshot — the existing one on a lost race. Losers
// simply adopt the winner; their privately built ladders are garbage.
func (c *LadderCache) Put(key uint64, ps *PropShare) *PropShare {
	c.mu.Lock()
	defer c.mu.Unlock()
	if live, ok := c.m[key]; ok {
		return live
	}
	c.m[key] = ps
	return ps
}

// Len reports the number of published topologies.
func (c *LadderCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}
