package analysis

import (
	"fmt"

	"repro/internal/units"
)

// ThroughputModel is the analytical runtime model of §2.2. For a CPU-bound
// thread with unmodified runtime R and average quantum length q, scheduled
// S = R/q times, injecting an idle quantum of length L with probability p at
// each scheduling decision predicts a Dimetrodon runtime of
//
//	D(t) = R + S · p/(1−p) · L
type ThroughputModel struct {
	P float64    // idle injection probability at each dispatch
	L units.Time // idle quantum length
	Q units.Time // average execution quantum of the thread
}

// Validate reports a descriptive error for parameter values outside the
// model's domain.
func (m ThroughputModel) Validate() error {
	if m.P < 0 || m.P >= 1 {
		return fmt.Errorf("analysis: injection probability p=%v outside [0,1)", m.P)
	}
	if m.L < 0 {
		return fmt.Errorf("analysis: negative idle quantum L=%v", m.L)
	}
	if m.Q <= 0 {
		return fmt.Errorf("analysis: non-positive execution quantum q=%v", m.Q)
	}
	return nil
}

// PredictRuntime returns D(t) for a thread whose unconstrained CPU-bound
// runtime is r.
func (m ThroughputModel) PredictRuntime(r units.Time) units.Time {
	if m.P <= 0 || m.L == 0 {
		return r
	}
	s := r.Seconds() / m.Q.Seconds() // S: number of times scheduled
	extra := s * m.P / (1 - m.P) * m.L.Seconds()
	return r + units.FromSeconds(extra)
}

// ThroughputFraction returns the predicted relative throughput R/D(t), i.e.
// the fraction of unconstrained performance retained.
func (m ThroughputModel) ThroughputFraction() float64 {
	if m.P <= 0 || m.L == 0 {
		return 1
	}
	// R/D = 1 / (1 + (L/q)·p/(1−p)); independent of R.
	x := m.L.Seconds() / m.Q.Seconds() * m.P / (1 - m.P)
	return 1 / (1 + x)
}

// IdleFraction returns the predicted fraction of wall time spent in injected
// idle quanta: 1 − R/D(t).
func (m ThroughputModel) IdleFraction() float64 {
	return 1 - m.ThroughputFraction()
}

// EnergyModel is §2.2's power accounting: over a window of length D(t), a
// race-to-idle run consumes u·R + m·(D−R) joules while Dimetrodon consumes
// u·R + m·(L/q)·(p/(1−p))·R — identical totals, at lower average power while
// the job is live.
type EnergyModel struct {
	ActivePower units.Watts // u: package power while the thread computes
	IdlePower   units.Watts // m: package power in the idle state
}

// RaceToIdleEnergy returns the energy consumed over a window `window` by a
// job that computes for `busy` seconds and then idles.
func (e EnergyModel) RaceToIdleEnergy(busy, window units.Time) units.Joules {
	if window < busy {
		window = busy
	}
	return units.Energy(e.ActivePower, busy) + units.Energy(e.IdlePower, window-busy)
}

// DimetrodonEnergy returns the energy consumed by the same job with idle
// quanta interleaved per the throughput model m. The total idle time within
// the stretched runtime equals the race-to-idle tail, so the totals match
// when both modes reach the same idle state.
func (e EnergyModel) DimetrodonEnergy(busy units.Time, m ThroughputModel) units.Joules {
	idle := m.PredictRuntime(busy) - busy
	return units.Energy(e.ActivePower, busy) + units.Energy(e.IdlePower, idle)
}

// AveragePowerWhileRunning returns the mean package power during the
// stretched execution window — the quantity Figure 1 visualises dropping
// under Dimetrodon.
func (e EnergyModel) AveragePowerWhileRunning(busy units.Time, m ThroughputModel) units.Watts {
	total := m.PredictRuntime(busy)
	if total <= 0 {
		return e.ActivePower
	}
	joules := e.DimetrodonEnergy(busy, m)
	return units.Watts(float64(joules) / total.Seconds())
}
