package analysis

import (
	"fmt"
	"math"
)

// PowerLaw is the paper's quantitative trade-off metric: the throughput
// reduction required for a desired temperature reduction r is modelled as
//
//	T(r) = α · r^β
//
// fitted over the Pareto boundary (§3.4; Table 1 reports α and β per
// workload, e.g. cpuburn α=1.092, β=1.541).
type PowerLaw struct {
	Alpha float64
	Beta  float64
	R2    float64 // goodness of the log-log linear fit
}

// Eval returns T(r) = α·r^β. Eval(0) is 0 for positive β.
func (p PowerLaw) Eval(r float64) float64 {
	if r <= 0 {
		return 0
	}
	return p.Alpha * math.Pow(r, p.Beta)
}

// BreakEven returns the temperature reduction at which the trade-off reaches
// 1:1 (T(r) = r), i.e. r* = α^(1/(1−β)). For β = 1 it returns +Inf unless
// α = 1. cpuburn's published fit yields r* ≈ 0.85, matching the paper's
// observation of a 1:1 trade-off only at ~90 % reductions.
func (p PowerLaw) BreakEven() float64 {
	if p.Beta == 1 {
		if p.Alpha == 1 {
			return 1
		}
		return math.Inf(1)
	}
	return math.Pow(p.Alpha, 1/(1-p.Beta))
}

// String formats the fit like the paper's table entries.
func (p PowerLaw) String() string {
	return fmt.Sprintf("T(r) = %.3f*r^%.3f (R2=%.3f)", p.Alpha, p.Beta, p.R2)
}

// FitPowerLaw estimates α and β by least squares on ln T = ln α + β·ln r.
// Points with non-positive r or T carry no information in log space and are
// skipped. It returns ok=false when fewer than two usable points remain.
func FitPowerLaw(points []TradeoffPoint) (PowerLaw, bool) {
	var lx, ly []float64
	for _, pt := range points {
		if pt.TempReduction > 0 && pt.PerfReduction > 0 {
			lx = append(lx, math.Log(pt.TempReduction))
			ly = append(ly, math.Log(pt.PerfReduction))
		}
	}
	fit, ok := FitLinear(lx, ly)
	if !ok {
		return PowerLaw{}, false
	}
	return PowerLaw{
		Alpha: math.Exp(fit.Intercept),
		Beta:  fit.Slope,
		R2:    fit.R2,
	}, true
}

// FitPowerLawUpTo fits only the points with TempReduction ≤ rMax, matching
// Table 1's "for r ∈ [0, 0.5]" restriction.
func FitPowerLawUpTo(points []TradeoffPoint, rMax float64) (PowerLaw, bool) {
	var kept []TradeoffPoint
	for _, pt := range points {
		if pt.TempReduction <= rMax {
			kept = append(kept, pt)
		}
	}
	return FitPowerLaw(kept)
}
