package analysis

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/units"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 || s.Min != 2 || s.Max != 9 {
		t.Errorf("Summarize = %+v", s)
	}
	if math.Abs(s.StdDev-2.138) > 0.01 {
		t.Errorf("StdDev = %v", s.StdDev)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Errorf("empty Summarize = %+v", z)
	}
	one := Summarize([]float64{3})
	if one.Mean != 3 || one.StdDev != 0 {
		t.Errorf("singleton Summarize = %+v", one)
	}
}

func TestMeanAbs(t *testing.T) {
	if got := MeanAbs([]float64{-1, 1, -3, 3}); got != 2 {
		t.Errorf("MeanAbs = %v", got)
	}
	if got := MeanAbs(nil); got != 0 {
		t.Errorf("MeanAbs(nil) = %v", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("P0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Errorf("P100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 3 {
		t.Errorf("P50 = %v", got)
	}
	if got := Percentile(xs, 25); got != 2 {
		t.Errorf("P25 = %v", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("P50(nil) = %v", got)
	}
}

func TestFitLinearExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x - 2
	}
	fit, ok := FitLinear(xs, ys)
	if !ok {
		t.Fatal("fit failed")
	}
	if math.Abs(fit.Slope-3) > 1e-12 || math.Abs(fit.Intercept+2) > 1e-12 {
		t.Errorf("fit = %+v", fit)
	}
	if math.Abs(fit.R2-1) > 1e-12 {
		t.Errorf("R2 = %v", fit.R2)
	}
}

func TestFitLinearDegenerate(t *testing.T) {
	if _, ok := FitLinear([]float64{1}, []float64{2}); ok {
		t.Error("fit succeeded with one point")
	}
	if _, ok := FitLinear([]float64{2, 2, 2}, []float64{1, 2, 3}); ok {
		t.Error("fit succeeded with constant x")
	}
	if _, ok := FitLinear([]float64{1, 2}, []float64{1}); ok {
		t.Error("fit succeeded with mismatched lengths")
	}
	// Constant y: slope 0, perfect fit.
	fit, ok := FitLinear([]float64{1, 2, 3}, []float64{5, 5, 5})
	if !ok || fit.Slope != 0 || fit.R2 != 1 {
		t.Errorf("constant-y fit = %+v, %v", fit, ok)
	}
}

func TestFitPowerLawRecovery(t *testing.T) {
	// Synthesise T(r) = 1.092·r^1.541 and recover the parameters.
	var pts []TradeoffPoint
	for r := 0.05; r <= 0.9; r += 0.05 {
		pts = append(pts, TradeoffPoint{TempReduction: r, PerfReduction: 1.092 * math.Pow(r, 1.541)})
	}
	fit, ok := FitPowerLaw(pts)
	if !ok {
		t.Fatal("fit failed")
	}
	if math.Abs(fit.Alpha-1.092) > 1e-6 || math.Abs(fit.Beta-1.541) > 1e-6 {
		t.Errorf("recovered %+v", fit)
	}
	if math.Abs(fit.Eval(0.5)-1.092*math.Pow(0.5, 1.541)) > 1e-9 {
		t.Errorf("Eval mismatch")
	}
	if fit.Eval(0) != 0 {
		t.Errorf("Eval(0) = %v", fit.Eval(0))
	}
}

func TestFitPowerLawNoisy(t *testing.T) {
	r := rng.New(1)
	var pts []TradeoffPoint
	for x := 0.02; x <= 0.9; x += 0.02 {
		noise := math.Exp(0.05 * r.NormFloat64())
		pts = append(pts, TradeoffPoint{TempReduction: x, PerfReduction: 1.3 * math.Pow(x, 1.7) * noise})
	}
	fit, ok := FitPowerLaw(pts)
	if !ok {
		t.Fatal("fit failed")
	}
	if math.Abs(fit.Alpha-1.3) > 0.1 || math.Abs(fit.Beta-1.7) > 0.05 {
		t.Errorf("noisy recovery %+v", fit)
	}
	if fit.R2 < 0.98 {
		t.Errorf("R2 = %v", fit.R2)
	}
}

func TestFitPowerLawFiltersNonPositive(t *testing.T) {
	pts := []TradeoffPoint{
		{TempReduction: -0.1, PerfReduction: 0.1},
		{TempReduction: 0.5, PerfReduction: 0},
	}
	if _, ok := FitPowerLaw(pts); ok {
		t.Error("fit succeeded with no usable points")
	}
}

func TestFitPowerLawUpTo(t *testing.T) {
	var pts []TradeoffPoint
	for r := 0.1; r <= 0.9; r += 0.1 {
		pts = append(pts, TradeoffPoint{TempReduction: r, PerfReduction: math.Pow(r, 1.5)})
	}
	fit, ok := FitPowerLawUpTo(pts, 0.5)
	if !ok || math.Abs(fit.Beta-1.5) > 1e-6 {
		t.Errorf("restricted fit = %+v, %v", fit, ok)
	}
}

func TestBreakEven(t *testing.T) {
	// The paper's cpuburn fit: 1:1 near r ≈ 0.85.
	p := PowerLaw{Alpha: 1.092, Beta: 1.541}
	be := p.BreakEven()
	if math.Abs(be-0.849) > 0.005 {
		t.Errorf("BreakEven = %v, want ≈0.849", be)
	}
	if (PowerLaw{Alpha: 1, Beta: 1}).BreakEven() != 1 {
		t.Error("α=β=1 break-even should be 1")
	}
	if !math.IsInf((PowerLaw{Alpha: 2, Beta: 1}).BreakEven(), 1) {
		t.Error("β=1, α≠1 break-even should be +Inf")
	}
}

func TestParetoFrontier(t *testing.T) {
	pts := []TradeoffPoint{
		{Label: "a", TempReduction: 0.1, PerfReduction: 0.05},
		{Label: "b", TempReduction: 0.2, PerfReduction: 0.04}, // dominates a
		{Label: "c", TempReduction: 0.3, PerfReduction: 0.2},
		{Label: "d", TempReduction: 0.25, PerfReduction: 0.3}, // dominated by c
		{Label: "e", TempReduction: 0.5, PerfReduction: 0.5},
	}
	front := ParetoFrontier(pts)
	labels := map[string]bool{}
	for _, p := range front {
		labels[p.Label] = true
	}
	if labels["a"] || labels["d"] {
		t.Errorf("dominated points on frontier: %v", labels)
	}
	if !labels["b"] || !labels["c"] || !labels["e"] {
		t.Errorf("frontier missing points: %v", labels)
	}
	for i := 1; i < len(front); i++ {
		if front[i].TempReduction < front[i-1].TempReduction {
			t.Error("frontier not sorted by temperature reduction")
		}
		if front[i].PerfReduction < front[i-1].PerfReduction {
			t.Error("frontier cost not monotone")
		}
	}
}

func TestParetoFrontierProperty(t *testing.T) {
	src := rng.New(99)
	f := func(n uint8) bool {
		count := int(n%40) + 2
		pts := make([]TradeoffPoint, count)
		for i := range pts {
			pts[i] = TradeoffPoint{
				TempReduction: src.Float64(),
				PerfReduction: src.Float64(),
			}
		}
		front := ParetoFrontier(pts)
		// No frontier member dominates another.
		for i := range front {
			for j := range front {
				if i != j && Dominates(front[i], front[j]) {
					return false
				}
			}
		}
		// Every input point is dominated by or equal to some frontier
		// member.
		for _, p := range pts {
			ok := false
			for _, f := range front {
				if Dominates(f, p) || (f.TempReduction == p.TempReduction && f.PerfReduction == p.PerfReduction) {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestParetoEmpty(t *testing.T) {
	if got := ParetoFrontier(nil); got != nil {
		t.Errorf("ParetoFrontier(nil) = %v", got)
	}
}

func TestEfficiency(t *testing.T) {
	if e := (TradeoffPoint{TempReduction: 0.4, PerfReduction: 0.2}).Efficiency(); e != 2 {
		t.Errorf("Efficiency = %v", e)
	}
	if e := (TradeoffPoint{TempReduction: 0, PerfReduction: 0}).Efficiency(); e != 0 {
		t.Errorf("zero point Efficiency = %v", e)
	}
	if e := (TradeoffPoint{TempReduction: 0.3, PerfReduction: 0}).Efficiency(); e != infEfficiency {
		t.Errorf("free-reduction Efficiency = %v", e)
	}
}

func TestThroughputModel(t *testing.T) {
	m := ThroughputModel{P: 0.5, L: 100 * units.Millisecond, Q: 100 * units.Millisecond}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// p=50%, L=q: runtime doubles (§2.2's worked example).
	if got := m.PredictRuntime(7 * units.Second); got != 14*units.Second {
		t.Errorf("PredictRuntime = %v, want 14s", got)
	}
	if got := m.ThroughputFraction(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("ThroughputFraction = %v", got)
	}
	// p=75%: 3 idle quanta per execution quantum.
	m2 := ThroughputModel{P: 0.75, L: 100 * units.Millisecond, Q: 100 * units.Millisecond}
	if got := m2.PredictRuntime(units.Second); got != 4*units.Second {
		t.Errorf("p=0.75 PredictRuntime = %v, want 4s", got)
	}
	// p=0 or L=0: no slowdown.
	m3 := ThroughputModel{P: 0, L: 100 * units.Millisecond, Q: 100 * units.Millisecond}
	if m3.PredictRuntime(units.Second) != units.Second || m3.ThroughputFraction() != 1 {
		t.Error("p=0 should be identity")
	}
	if m.IdleFraction()+m.ThroughputFraction() != 1 {
		t.Error("fractions don't sum to 1")
	}
}

func TestThroughputModelValidate(t *testing.T) {
	bad := []ThroughputModel{
		{P: -0.1, L: units.Millisecond, Q: units.Millisecond},
		{P: 1.0, L: units.Millisecond, Q: units.Millisecond},
		{P: 0.5, L: -units.Millisecond, Q: units.Millisecond},
		{P: 0.5, L: units.Millisecond, Q: 0},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: Validate passed for %+v", i, m)
		}
	}
}

func TestEnergyModelNeutrality(t *testing.T) {
	// §2.2: the two policies consume the same total energy.
	e := EnergyModel{ActivePower: 80, IdlePower: 15}
	f := func(pRaw, lRaw uint8, busySec uint8) bool {
		p := float64(pRaw%90+1) / 100 // 0.01..0.90
		l := units.Time(lRaw%100+1) * units.Millisecond
		busy := units.Time(busySec%20+1) * units.Second
		m := ThroughputModel{P: p, L: l, Q: 100 * units.Millisecond}
		window := m.PredictRuntime(busy)
		race := e.RaceToIdleEnergy(busy, window)
		dim := e.DimetrodonEnergy(busy, m)
		return math.Abs(float64(race-dim)) < 1e-6*math.Abs(float64(race))+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEnergyModelAveragePower(t *testing.T) {
	e := EnergyModel{ActivePower: 80, IdlePower: 10}
	m := ThroughputModel{P: 0.5, L: 100 * units.Millisecond, Q: 100 * units.Millisecond}
	// Half the time at 80 W, half at 10 W → 45 W.
	got := e.AveragePowerWhileRunning(10*units.Second, m)
	if math.Abs(float64(got)-45) > 1e-9 {
		t.Errorf("AveragePowerWhileRunning = %v", got)
	}
	// Lower average power than race-to-idle's active phase — Figure 1.
	if got >= e.ActivePower {
		t.Error("Dimetrodon average power not below active power")
	}
	// Window shorter than busy: clamps.
	race := e.RaceToIdleEnergy(10*units.Second, 5*units.Second)
	if race != units.Energy(80, 10*units.Second) {
		t.Errorf("RaceToIdleEnergy clamp = %v", race)
	}
}
