// Package analysis implements the quantitative machinery of the paper's
// evaluation: the analytical throughput and energy models of §2.2, Pareto
// boundary extraction, the power-law trade-off fit T(r) = α·r^β used in
// Figure 4 and Table 1, and the summary statistics the validation section
// reports.
package analysis

import (
	"math"
	"sort"
)

// Summary holds basic descriptive statistics of a data set.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64 // sample standard deviation (n-1)
	Min    float64
	Max    float64
}

// Summarize computes descriptive statistics. An empty input yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = math.Inf(1), math.Inf(-1)
	var sum float64
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// MeanAbs returns the mean of |x| over the input (0 for empty input).
func MeanAbs(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += math.Abs(x)
	}
	return sum / float64(len(xs))
}

// Percentile returns the p-th percentile (p in [0,100]) using linear
// interpolation between closest ranks. The input need not be sorted. It
// returns 0 for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, p)
}

// Quantiles returns the requested percentiles (each in [0,100]) of xs,
// copying and sorting the input exactly once and indexing every quantile
// out of the sorted slice. Each returned value is bit-identical to the
// corresponding Percentile call; the single sort is what makes fleet-scale
// aggregation O(n log n) instead of O(q·n log n). An empty input yields all
// zeros.
func Quantiles(xs []float64, ps ...float64) []float64 {
	out := make([]float64, len(ps))
	if len(xs) == 0 {
		return out
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	for i, p := range ps {
		out[i] = quantileSorted(sorted, p)
	}
	return out
}

// quantileSorted reads the p-th percentile out of an already-sorted,
// non-empty slice by linear interpolation between closest ranks — the single
// definition Percentile and Quantiles share, so the two can never drift.
func quantileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Kahan is a compensated (Kahan) summation accumulator. Fleet aggregation
// folds per-machine metrics in strict index order through Kahan sums, so the
// totals stay exact to the last bit well past a million terms and — because
// the reduction order is fixed — identical regardless of which path
// (per-machine, batched, or tiled mega fleet) produced the terms. The zero
// value is an empty sum.
type Kahan struct {
	sum, c float64
}

// Add folds x into the sum, carrying the rounding error of the addition in
// the compensation term.
func (k *Kahan) Add(x float64) {
	y := x - k.c
	t := k.sum + y
	k.c = (t - k.sum) - y
	k.sum = t
}

// Sum returns the compensated total so far.
func (k *Kahan) Sum() float64 { return k.sum }

// LinearFit is the least-squares line y = Intercept + Slope·x, with the
// coefficient of determination R2.
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// FitLinear performs ordinary least squares on paired samples. It returns
// ok=false when fewer than two distinct x values are supplied.
func FitLinear(xs, ys []float64) (LinearFit, bool) {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return LinearFit{}, false
	}
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, false
	}
	fit := LinearFit{Slope: sxy / sxx}
	fit.Intercept = my - fit.Slope*mx
	if syy > 0 {
		// R² = 1 - SSE/SST computed via the regression identity.
		fit.R2 = (sxy * sxy) / (sxx * syy)
	} else {
		fit.R2 = 1
	}
	return fit, true
}
