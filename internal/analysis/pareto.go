package analysis

import "sort"

// TradeoffPoint is one configuration's outcome in the temperature/performance
// plane used throughout the paper's evaluation.
//
// TempReduction is the fractional reduction of the steady temperature rise
// over idle relative to unconstrained operation (the paper's r: 0 = no
// reduction, 1 = cooled all the way to the idle temperature).
//
// PerfReduction is the fractional loss of application performance (throughput
// reduction, or 1 − relative QoS for the web workload).
type TradeoffPoint struct {
	Label         string  // configuration description, e.g. "p=0.25 L=50ms"
	TempReduction float64 // r, in [0, 1]
	PerfReduction float64 // T(r), in [0, 1]
}

// Efficiency returns the paper's temperature:throughput efficiency ratio for
// the point (Figure 3's y-axis). Points with no measurable performance loss
// return +Inf via a large sentinel guarded by the caller; here we return 0
// when both are 0 and a true ratio otherwise.
func (p TradeoffPoint) Efficiency() float64 {
	if p.PerfReduction <= 0 {
		if p.TempReduction <= 0 {
			return 0
		}
		return infEfficiency
	}
	return p.TempReduction / p.PerfReduction
}

// infEfficiency stands in for an unbounded ratio (temperature reduced at no
// measurable cost). Kept finite so downstream plotting and fitting stay sane.
const infEfficiency = 1e6

// ParetoFrontier returns the subset of points not dominated by any other:
// point a dominates b when a achieves at least the temperature reduction of b
// with at most its performance reduction (and is strictly better in one
// dimension). The result is sorted by increasing temperature reduction —
// the "darkened boundary" in Figures 4-6.
func ParetoFrontier(points []TradeoffPoint) []TradeoffPoint {
	if len(points) == 0 {
		return nil
	}
	sorted := make([]TradeoffPoint, len(points))
	copy(sorted, points)
	// Sort by performance cost ascending, then temperature reduction
	// descending so a single sweep can track the best reduction seen.
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].PerfReduction != sorted[j].PerfReduction {
			return sorted[i].PerfReduction < sorted[j].PerfReduction
		}
		return sorted[i].TempReduction > sorted[j].TempReduction
	})
	var frontier []TradeoffPoint
	bestTemp := -1.0
	for _, p := range sorted {
		if p.TempReduction > bestTemp {
			frontier = append(frontier, p)
			bestTemp = p.TempReduction
		}
	}
	sort.Slice(frontier, func(i, j int) bool {
		return frontier[i].TempReduction < frontier[j].TempReduction
	})
	return frontier
}

// Dominates reports whether a dominates b in the Pareto sense above.
func Dominates(a, b TradeoffPoint) bool {
	if a.TempReduction < b.TempReduction || a.PerfReduction > b.PerfReduction {
		return false
	}
	return a.TempReduction > b.TempReduction || a.PerfReduction < b.PerfReduction
}
