package analysis

import (
	"math"
	"math/big"
	"testing"
)

// TestQuantilesMatchPercentile pins the bit-identity contract between the
// sort-once Quantiles path and per-call Percentile, across the edge cases
// the fleet aggregator leans on: empty input, a single element, the p=0 and
// p=100 extremes, exact ranks and interpolated ranks.
func TestQuantilesMatchPercentile(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
	}{
		{"empty", nil},
		{"single", []float64{42.5}},
		{"two", []float64{3, 1}},
		{"five", []float64{9, 2, 7, 4, 100}},
		{"repeats", []float64{5, 5, 5, 1, 5}},
		{"negatives", []float64{-3, 0, 2.5, -7.25, 11}},
	}
	ps := []float64{-5, 0, 1, 25, 50, 75, 90, 99, 100, 120}
	for _, tc := range cases {
		got := Quantiles(tc.xs, ps...)
		if len(got) != len(ps) {
			t.Fatalf("%s: Quantiles returned %d values for %d percentiles", tc.name, len(got), len(ps))
		}
		for i, p := range ps {
			want := Percentile(tc.xs, p)
			if math.Float64bits(got[i]) != math.Float64bits(want) {
				t.Errorf("%s: Quantiles p=%g = %v, Percentile = %v (must be bit-identical)", tc.name, p, got[i], want)
			}
		}
	}
}

// TestQuantileEdgeValues pins the hand-computable cases: extremes clamp to
// min/max, exact ranks return elements verbatim, and fractional ranks
// interpolate linearly between closest ranks.
func TestQuantileEdgeValues(t *testing.T) {
	xs := []float64{10, 20, 30, 40} // ranks 0,1,2,3
	check := func(p, want float64) {
		t.Helper()
		if got := Percentile(xs, p); got != want {
			t.Errorf("Percentile(%v, %g) = %v, want %v", xs, p, got, want)
		}
	}
	check(0, 10)
	check(100, 40)
	check(-1, 10)  // clamps to min
	check(101, 40) // clamps to max
	// rank = p/100*(n-1): p=50 -> rank 1.5 -> midpoint of 20 and 30.
	check(50, 25)
	// p=25 -> rank 0.75 -> 10*(0.25) + 20*(0.75).
	check(25, 17.5)
	// Exact rank: p=100/3 -> rank 1 exactly.
	check(100.0/3, 20)

	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil, 50) = %v, want 0", got)
	}
	if got := Percentile([]float64{7}, 99); got != 7 {
		t.Errorf("Percentile([7], 99) = %v, want 7", got)
	}
}

// TestKahanMillionTerms pins the compensated accumulator against an exact
// big.Float reference over a summation that defeats naive float64 addition:
// a large base term followed by a million small increments. This is the
// fleet-accumulator regression at 1e6 synthetic machines — naive running
// sums drift by whole units here, the Kahan sum must stay within one ulp of
// exact.
func TestKahanMillionTerms(t *testing.T) {
	const n = 1_000_000
	exact := new(big.Float).SetPrec(200)
	var k Kahan
	var naive float64

	term := func(i int) float64 {
		// Alternating magnitudes: each machine contributes ~1e8 worth of
		// accumulated total against unit-scale per-machine values, the
		// shape of summing watts and seconds across a mega fleet.
		if i == 0 {
			return 1e8
		}
		return 0.1 + 1e-6*float64(i%97)
	}
	for i := 0; i < n; i++ {
		v := term(i)
		k.Add(v)
		naive += v
		exact.Add(exact, new(big.Float).SetPrec(200).SetFloat64(v))
	}
	want, _ := exact.Float64()
	if k.Sum() != want {
		// Allow at most one ulp of slack: Kahan's error bound is O(1) ulp
		// independent of n.
		ulp := math.Nextafter(want, math.Inf(1)) - want
		if math.Abs(k.Sum()-want) > ulp {
			t.Errorf("Kahan sum = %.17g, exact = %.17g (diff %g > 1 ulp)", k.Sum(), want, k.Sum()-want)
		}
	}
	if naive == want {
		t.Log("naive sum happened to match exact; compensation untested by this data")
	} else if math.Abs(naive-want) <= math.Abs(k.Sum()-want) {
		t.Errorf("naive sum (err %g) no worse than Kahan (err %g); regression data lost its point",
			naive-want, k.Sum()-want)
	}
}

// TestKahanZero pins the zero value as an empty sum.
func TestKahanZero(t *testing.T) {
	var k Kahan
	if k.Sum() != 0 {
		t.Errorf("zero Kahan sum = %v, want 0", k.Sum())
	}
	k.Add(2.5)
	k.Add(-2.5)
	if k.Sum() != 0 {
		t.Errorf("2.5 - 2.5 = %v, want 0", k.Sum())
	}
}
