package experiments

import (
	"fmt"
	"testing"

	"repro/internal/dtm"
	"repro/internal/machine"
	"repro/internal/units"
)

// TestPowerFactorScan prints the unconstrained rise (as % of cpuburn's) for a
// range of workload power factors; used to calibrate workload.SpecSuite.
// Run with: go test ./internal/experiments -run TestPowerFactorScan -v -scan
func TestPowerFactorScan(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration scan")
	}
	settle := 270 * units.Second
	window := 30 * units.Second
	base := RunSteady(machine.DefaultConfig(), dtm.RaceToIdle{}, SpawnBurnPerCore(1.0), settle, window)
	baseRise := float64(base.MeanJunction - base.IdleTemp)
	for pf := 1.00; pf >= 0.64; pf -= 0.02 {
		r := RunSteady(machine.DefaultConfig(), dtm.RaceToIdle{}, SpawnBurnPerCore(pf), settle, window)
		rise := float64(r.MeanJunction - r.IdleTemp)
		fmt.Printf("pf=%.2f rise=%5.2fC  ratio=%5.1f%%\n", pf, rise, 100*rise/baseRise)
	}
}
