package experiments

import (
	"fmt"
	"strings"

	"repro/internal/dtm"
	"repro/internal/machine"
	"repro/internal/units"
)

// Figure3Point is one (p, L) configuration's efficiency measurement.
type Figure3Point struct {
	P          float64
	L          units.Time
	TempRed    float64 // r
	PerfRed    float64 // T(r)
	Efficiency float64 // r / T(r), Figure 3's y-axis
}

// Figure3Result holds the efficiency-versus-quantum-length sweep of
// Figure 3: curves over L for each idle proportion p.
type Figure3Result struct {
	Ls     []units.Time
	Ps     []float64
	Points []Figure3Point // row-major: for each p, each L
}

// Point returns the measurement for (pIdx, lIdx).
func (r Figure3Result) Point(pIdx, lIdx int) Figure3Point {
	return r.Points[pIdx*len(r.Ls)+lIdx]
}

// RunFigure3 reproduces Figure 3: cpuburn under idle proportions
// p ∈ {.1,.25,.5,.75} across quantum lengths from 1 to 100 ms; efficiency is
// the ratio of temperature reduction to throughput reduction. Short quanta
// are the most efficient, with diminishing marginal benefit as L grows.
func RunFigure3(scale Scale) Figure3Result {
	settle := scale.seconds(270)
	window := scale.seconds(30)
	res := Figure3Result{
		Ps: []float64{0.1, 0.25, 0.5, 0.75},
	}
	for _, lms := range []float64{1, 2, 5, 10, 25, 50, 75, 100} {
		res.Ls = append(res.Ls, units.FromMilliseconds(lms))
	}
	spawn := SpawnBurnPerCore(1.0)
	// Trial 0 is the unconstrained baseline; the rest are the p×L grid in
	// row-major order with seeds derived from the grid coordinates.
	trials := []SteadyTrial{{Cfg: machine.DefaultConfig(), Tech: dtm.RaceToIdle{}, Spawn: spawn, Settle: settle, Window: window}}
	for _, p := range res.Ps {
		for _, l := range res.Ls {
			cfg := machine.DefaultConfig()
			cfg.Seed = uint64(p*1000) + uint64(l/units.Millisecond)
			trials = append(trials, SteadyTrial{Cfg: cfg, Tech: dtm.Dimetrodon{P: p, L: l}, Spawn: spawn, Settle: settle, Window: window})
		}
	}
	results := RunSteadyAll(trials)
	base := results[0]
	i := 1
	for _, p := range res.Ps {
		for _, l := range res.Ls {
			pt := Tradeoff(fmt.Sprintf("p=%g L=%v", p, l), base, results[i])
			i++
			eff := 0.0
			if pt.PerfReduction > 0 {
				eff = pt.TempReduction / pt.PerfReduction
			}
			res.Points = append(res.Points, Figure3Point{
				P: p, L: l,
				TempRed: pt.TempReduction, PerfRed: pt.PerfReduction,
				Efficiency: eff,
			})
		}
	}
	return res
}

// String renders the efficiency table, one row per quantum length.
func (r Figure3Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 3: Dimetrodon efficiency (temp reduction : throughput reduction) vs quantum length\n")
	b.WriteString("   L    ")
	for _, p := range r.Ps {
		fmt.Fprintf(&b, "   p=%-5.2f", p)
	}
	b.WriteString("\n")
	for li, l := range r.Ls {
		fmt.Fprintf(&b, " %-6v ", l)
		for pi := range r.Ps {
			fmt.Fprintf(&b, "  %7.2f ", r.Point(pi, li).Efficiency)
		}
		b.WriteString("\n")
	}
	b.WriteString("(paper: short idle quanta are particularly efficient; diminishing\n")
	b.WriteString(" marginal returns for longer quanta lengths)\n")
	return b.String()
}
