package experiments

import (
	"testing"

	"repro/internal/runner"
)

// TestFigure3DeterministicAcrossJobs pins the runner's central contract: the
// rendered output of a sweep is byte-identical at any parallelism level,
// because every trial derives its stochastic state from its own spec rather
// than from a shared stream. A regression here means some component snuck a
// shared RNG (or other cross-trial state) into the trial path.
func TestFigure3DeterministicAcrossJobs(t *testing.T) {
	defer runner.SetJobs(0)

	runner.SetJobs(1)
	serial := RunFigure3(Quick).String()
	runner.SetJobs(8)
	parallel := RunFigure3(Quick).String()

	if serial != parallel {
		t.Fatalf("Figure 3 output differs between -jobs 1 and -jobs 8:\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s", serial, parallel)
	}
}

// TestValidationEnergyDeterministicAcrossJobs covers the one harness whose
// trials are internally sequential pairs (the race-to-idle arm reuses its
// partner's window) and which keeps the noisy instrument chain enabled — the
// most RNG-sensitive sweep in the suite.
func TestValidationEnergyDeterministicAcrossJobs(t *testing.T) {
	defer runner.SetJobs(0)

	runner.SetJobs(1)
	serial := RunValidationEnergy(Quick).String()
	runner.SetJobs(6)
	parallel := RunValidationEnergy(Quick).String()

	if serial != parallel {
		t.Fatalf("energy validation output differs between -jobs 1 and -jobs 6:\n--- jobs=1 ---\n%s\n--- jobs=6 ---\n%s", serial, parallel)
	}
}
