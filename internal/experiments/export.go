package experiments

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/export"
	"repro/internal/trace"
)

// Export runs the named experiment at the given scale and writes plot-ready
// CSV files into dir (created if needed), returning the paths written. It
// covers every figure and table of the paper plus the extension studies;
// ablation results are table-shaped and exported as a single CSV each.
func Export(id string, scale Scale, dir string) ([]string, error) {
	files, err := Render(id, scale)
	if err != nil {
		return nil, err
	}
	return export.Write(dir, files...)
}

// Render runs the named experiment and renders its CSV artefacts in memory —
// the single definition Export writes to disk and the service daemon serves
// over HTTP, keeping the two byte-identical.
func Render(id string, scale Scale) ([]export.File, error) {
	switch id {
	case "fig1":
		r := RunFigure1(scale)
		return collect(
			seriesCSV("fig1_race_to_idle.csv", r.RaceToIdle),
			seriesCSV("fig1_dimetrodon.csv", r.Dimetrodon),
		)
	case "fig2":
		r := RunFigure2(scale)
		var files []namedCSV
		for _, c := range r.Curves {
			files = append(files, seriesCSV(fmt.Sprintf("fig2_rise_p%02.0f.csv", c.P*100), c.Rise))
		}
		return collect(files...)
	case "fig3":
		r := RunFigure3(scale)
		var b strings.Builder
		b.WriteString("p,L_ms,temp_reduction,perf_reduction,efficiency\n")
		for _, pt := range r.Points {
			fmt.Fprintf(&b, "%g,%g,%.6f,%.6f,%.4f\n",
				pt.P, pt.L.Milliseconds(), pt.TempRed, pt.PerfRed, pt.Efficiency)
		}
		return collect(namedCSV{Name: "fig3_efficiency.csv", Content: b.String()})
	case "fig4":
		r := RunFigure4(scale)
		return collect(
			pointsCSV("fig4_dimetrodon.csv", r.Dimetrodon),
			pointsCSV("fig4_vfs.csv", r.VFS),
			pointsCSV("fig4_p4tcc.csv", r.P4TCC),
			pointsCSV("fig4_dimetrodon_pareto.csv", r.DimPareto),
			pointsCSV("fig4_vfs_pareto.csv", r.VFSPareto),
			pointsCSV("fig4_p4tcc_pareto.csv", r.TCCPareto),
		)
	case "table1":
		r := RunTable1(scale)
		var b strings.Builder
		b.WriteString("workload,rise_pct,paper_rise_pct,alpha,paper_alpha,beta,paper_beta,fit_r2\n")
		for _, row := range r.Rows {
			fmt.Fprintf(&b, "%s,%.2f,%.1f,%.4f,%.3f,%.4f,%.3f,%.4f\n",
				row.Workload, row.RisePct, row.PaperRisePct,
				row.Fit.Alpha, row.PaperAlpha, row.Fit.Beta, row.PaperBeta, row.Fit.R2)
		}
		return collect(namedCSV{Name: "table1_workloads.csv", Content: b.String()})
	case "fig5":
		r := RunFigure5(scale)
		return collect(
			fig5CSV("fig5_global.csv", r.Global),
			fig5CSV("fig5_per_thread.csv", r.PerThread),
		)
	case "fig6":
		r := RunFigure6(scale)
		var b strings.Builder
		b.WriteString("label,temp_reduction,good_qos,tolerable_qos,throughput_rps,mean_latency_s\n")
		for _, p := range r.Points {
			fmt.Fprintf(&b, "%q,%.6f,%.6f,%.6f,%.3f,%.6f\n",
				p.Label, p.TempReduction, p.GoodQoS, p.TolerableQoS,
				p.Throughput, p.MeanLatency.Seconds())
		}
		return collect(namedCSV{Name: "fig6_web_qos.csv", Content: b.String()})
	case "val-throughput":
		r := RunValidationThroughput(scale)
		var b strings.Builder
		b.WriteString("p,L_ms,trials,predicted_s,measured_s,throughput_dev_pct\n")
		for _, row := range r.Rows {
			fmt.Fprintf(&b, "%g,%g,%d,%.6f,%.6f,%.4f\n",
				row.P, row.L.Milliseconds(), row.Trials,
				row.Predicted.Seconds(), row.MeanActual.Seconds(), row.DeviationPct)
		}
		return collect(namedCSV{Name: "val_throughput.csv", Content: b.String()})
	case "val-energy":
		r := RunValidationEnergy(scale)
		var b strings.Builder
		b.WriteString("p,L_ms,trials,measured_ratio_pct,exact_ratio_pct\n")
		for _, row := range r.Rows {
			fmt.Fprintf(&b, "%g,%g,%d,%.4f,%.4f\n",
				row.P, row.L.Milliseconds(), row.Trials, row.RatioPct, row.TrueRatioPct)
		}
		return collect(namedCSV{Name: "val_energy.csv", Content: b.String()})
	case "abl-leakage", "abl-cstate", "abl-deterministic", "abl-hotspot":
		var r AblationResult
		switch id {
		case "abl-leakage":
			r = RunAblationLeakage(scale)
		case "abl-cstate":
			r = RunAblationCState(scale)
		case "abl-hotspot":
			r = RunAblationHotspot(scale)
		default:
			r = RunAblationDeterministic(scale)
		}
		var b strings.Builder
		b.WriteString("label,base_r,base_T,base_eff,variant_r,variant_T,variant_eff\n")
		for _, p := range r.Points {
			fmt.Fprintf(&b, "%q,%.6f,%.6f,%.4f,%.6f,%.6f,%.4f\n", p.Label,
				p.Baseline.TempRed, p.Baseline.PerfRed, p.Baseline.Efficiency,
				p.Variant.TempRed, p.Variant.PerfRed, p.Variant.Efficiency)
		}
		return collect(namedCSV{Name: fmt.Sprintf("%s.csv", strings.ReplaceAll(id, "-", "_")), Content: b.String()})
	case "abl-kernel":
		r := RunAblationKernelThreads(scale)
		var b strings.Builder
		b.WriteString("label,shielded_good,shielded_r,shielded_mean_s,injected_good,injected_r,injected_mean_s,kernel_injections\n")
		for _, p := range r.Points {
			fmt.Fprintf(&b, "%q,%.4f,%.4f,%.6f,%.4f,%.4f,%.6f,%d\n", p.Label,
				p.ShieldedGood, p.ShieldedRed, p.ShieldedMean.Seconds(),
				p.InjectedGood, p.InjectedRed, p.InjectedMean.Seconds(), p.KernelInjects)
		}
		return collect(namedCSV{Name: "abl_kernel.csv", Content: b.String()})
	case "ext-adaptive":
		r := RunAdaptiveControl(scale)
		var b strings.Builder
		b.WriteString("phase,mean_dts_c,mean_p,target_err_c\n")
		for _, p := range r.Phases {
			fmt.Fprintf(&b, "%q,%.4f,%.4f,%.4f\n", p.Name, p.MeanDTS, p.MeanP, p.TargetErr)
		}
		return collect(namedCSV{Name: "ext_adaptive.csv", Content: b.String()})
	case "ext-ule":
		r := RunULEComparison(scale)
		var b strings.Builder
		b.WriteString("label,bsd_r,bsd_T,bsd_eff,ule_r,ule_T,ule_eff,steals\n")
		for _, p := range r.Points {
			fmt.Fprintf(&b, "%q,%.6f,%.6f,%.4f,%.6f,%.6f,%.4f,%d\n", p.Label,
				p.BSD.TempRed, p.BSD.PerfRed, p.BSD.Efficiency,
				p.ULE.TempRed, p.ULE.PerfRed, p.ULE.Efficiency, p.Steals)
		}
		return collect(namedCSV{Name: "ext_ule.csv", Content: b.String()})
	case "ext-emergency":
		r := RunEmergencyScenario(scale)
		var b strings.Builder
		b.WriteString("strategy,peak_c,mean_c,work_rate,trips,throttled_s\n")
		for _, a := range r.Arms {
			fmt.Fprintf(&b, "%q,%.3f,%.3f,%.4f,%d,%.3f\n", a.Name,
				float64(a.PeakJunction), float64(a.MeanJunction),
				a.WorkRate, a.Trips, a.Throttled.Seconds())
		}
		return collect(namedCSV{Name: "ext_emergency.csv", Content: b.String()})
	case "ext-smt":
		r := RunSMTCoScheduling(scale)
		var b strings.Builder
		b.WriteString("label,naive_r,naive_T,naive_eff,cosched_r,cosched_T,cosched_eff,gang_idles\n")
		for _, p := range r.Points {
			fmt.Fprintf(&b, "%q,%.6f,%.6f,%.4f,%.6f,%.6f,%.4f,%d\n", p.Label,
				p.Naive.TempRed, p.Naive.PerfRed, p.Naive.Efficiency,
				p.CoSch.TempRed, p.CoSch.PerfRed, p.CoSch.Efficiency, p.ForcedIdles)
		}
		return collect(namedCSV{Name: "ext_smt.csv", Content: b.String()})
	default:
		return nil, fmt.Errorf("experiments: no CSV export for %q", id)
	}
}

// namedCSV couples a file name with rendered CSV content; it is the shared
// export package's File, kept under its historical local name.
type namedCSV = export.File

func collect(files ...namedCSV) ([]export.File, error) {
	return files, nil
}

func seriesCSV(name string, s *trace.Series) namedCSV {
	var b strings.Builder
	if err := s.WriteCSV(&b); err != nil {
		// strings.Builder cannot fail; keep the error path honest.
		panic(err)
	}
	return namedCSV{Name: name, Content: b.String()}
}

func pointsCSV(name string, pts []analysis.TradeoffPoint) namedCSV {
	var b strings.Builder
	b.WriteString("label,temp_reduction,perf_reduction,efficiency\n")
	for _, p := range pts {
		eff := 0.0
		if p.PerfReduction > 0 {
			eff = p.TempReduction / p.PerfReduction
		}
		fmt.Fprintf(&b, "%q,%.6f,%.6f,%.4f\n", p.Label, p.TempReduction, p.PerfReduction, eff)
	}
	return namedCSV{Name: name, Content: b.String()}
}

func fig5CSV(name string, pts []Figure5Point) namedCSV {
	var b strings.Builder
	b.WriteString("label,temp_reduction,cool_throughput\n")
	for _, p := range pts {
		fmt.Fprintf(&b, "%q,%.6f,%.6f\n", p.Label, p.TempReduction, p.CoolThroughput)
	}
	return namedCSV{Name: name, Content: b.String()}
}
