package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cpu"
	"repro/internal/dtm"
	"repro/internal/machine"
	"repro/internal/runner"
	"repro/internal/units"
)

// AblationPoint is one configuration measured under two model variants.
type AblationPoint struct {
	Label    string
	Baseline Figure3Point // standard model
	Variant  Figure3Point // ablated model
}

// AblationResult bundles an ablation study's points.
type AblationResult struct {
	Name        string
	Description string
	Points      []AblationPoint
}

// abSweep runs a small p×L grid under two machine variants.
func abSweep(name, desc string, scale Scale, mutate func(*machine.Machine), mutateCfg func(*machine.Config)) AblationResult {
	settle := scale.seconds(180)
	window := scale.seconds(30)
	res := AblationResult{Name: name, Description: desc}
	grid := []struct {
		p float64
		l units.Time
	}{
		{0.25, 1 * units.Millisecond},
		{0.25, 10 * units.Millisecond},
		{0.25, 100 * units.Millisecond},
		{0.75, 10 * units.Millisecond},
		{0.75, 100 * units.Millisecond},
	}
	measure := func(p float64, l units.Time, variant bool, seed uint64) Figure3Point {
		mk := func(tech dtm.Technique, s uint64) SteadyResult {
			cfg := machine.DefaultConfig()
			cfg.Meter.Disabled = true
			cfg.Seed = s
			if variant && mutateCfg != nil {
				mutateCfg(&cfg)
			}
			m := machine.New(cfg)
			if variant && mutate != nil {
				mutate(m)
				// Re-derive the idle baseline under the mutation.
			}
			if err := tech.Apply(m); err != nil {
				panic(err)
			}
			SpawnBurnPerCore(1.0)(m)
			m.RunFor(settle)
			i0 := m.MeanJunctionIntegral()
			w0 := m.TotalWorkDone()
			t0 := m.Now()
			m.RunFor(window)
			i1 := m.MeanJunctionIntegral()
			w1 := m.TotalWorkDone()
			t1 := m.Now()
			secs := (t1 - t0).Seconds()
			return SteadyResult{
				MeanJunction: units.Celsius((i1 - i0) / secs),
				WorkRate:     (w1 - w0) / secs,
				IdleTemp:     m.IdleJunctionTemp(),
			}
		}
		base := mk(dtm.RaceToIdle{}, seed)
		pol := mk(dtm.Dimetrodon{P: p, L: l}, seed+1)
		pt := Tradeoff("", base, pol)
		eff := 0.0
		if pt.PerfReduction > 0 {
			eff = pt.TempReduction / pt.PerfReduction
		}
		return Figure3Point{P: p, L: l, TempRed: pt.TempReduction, PerfRed: pt.PerfReduction, Efficiency: eff}
	}
	// Two measures per grid point (baseline model, ablated model), each a
	// self-contained pair of simulations keyed by its own seeds.
	type abSpec struct {
		p       float64
		l       units.Time
		variant bool
		seed    uint64
	}
	var specs []abSpec
	seed := uint64(90000)
	for _, g := range grid {
		seed += 10
		specs = append(specs,
			abSpec{g.p, g.l, false, seed},
			abSpec{g.p, g.l, true, seed + 5})
	}
	points := runner.Map(specs, func(_ int, s abSpec) Figure3Point {
		return measure(s.p, s.l, s.variant, s.seed)
	})
	for i, g := range grid {
		res.Points = append(res.Points, AblationPoint{
			Label:    fmt.Sprintf("p=%g L=%v", g.p, g.l),
			Baseline: points[2*i],
			Variant:  points[2*i+1],
		})
	}
	return res
}

// RunAblationLeakage quantifies how much of the trade-off curve's shape comes
// from the exponential temperature dependence of leakage: the variant
// freezes leakage at its reference value (LeakageTempCoupling = 0). Without
// the coupling the curve collapses toward a flat, duty-proportional 1:1-ish
// trade-off — demonstrating the mechanism DESIGN.md calls out.
func RunAblationLeakage(scale Scale) AblationResult {
	return abSweep("leakage",
		"temperature-dependent leakage on (baseline) vs frozen (variant)",
		scale,
		func(m *machine.Machine) { m.Chip.LeakageTempCoupling = 0 },
		nil)
}

// RunAblationCState compares injected idle quanta reaching C1E (voltage
// dropped) against a plain halt at full voltage — the paper's observation
// that Dimetrodon remains useful on processors without low-power idle states
// (§2.1), at reduced benefit.
func RunAblationCState(scale Scale) AblationResult {
	return abSweep("cstate",
		"injected quanta enter C1E (baseline) vs full-voltage halt (variant)",
		scale,
		nil,
		func(cfg *machine.Config) { cfg.InjectedIdle = cpu.C1Halt })
}

// RunAblationHotspot is the sensor-placement sensitivity study: the variant
// adds a fast per-core hotspot node (the functional-unit thermal mass of
// §2.1's nop-loop observation) concentrating 35 % of core power, and points
// the sensors and metrics at it — the physical placement of a real DTS. The
// orderings of the trade-off curves should not depend on the placement; the
// absolute operating point shifts a few degrees hotter.
func RunAblationHotspot(scale Scale) AblationResult {
	return abSweep("hotspot",
		"metrics at the junction block (baseline) vs a fast hotspot node (variant)",
		scale,
		nil,
		func(cfg *machine.Config) {
			cfg.HotspotFraction = 0.35
			cfg.SenseHotspot = true
		})
}

// RunAblationDeterministic compares probabilistic injection against the
// deterministic error-accumulator variant the paper hypothesises would
// produce "smoother curves but similar overall temperature trends" (§3.4).
func RunAblationDeterministic(scale Scale) AblationResult {
	settle := scale.seconds(180)
	window := scale.seconds(30)
	res := AblationResult{
		Name:        "deterministic",
		Description: "probabilistic injection (baseline) vs deterministic accumulator (variant)",
	}
	grid := []struct {
		p float64
		l units.Time
	}{{0.25, 100 * units.Millisecond}, {0.5, 100 * units.Millisecond}, {0.75, 100 * units.Millisecond}}

	// Trial 0 is the shared race-to-idle baseline; then a probabilistic and
	// a deterministic run per grid point.
	spawn := SpawnBurnPerCore(1.0)
	trials := []SteadyTrial{{Cfg: machine.DefaultConfig(), Tech: dtm.RaceToIdle{}, Spawn: spawn, Settle: settle, Window: window}}
	for _, g := range grid {
		for di, det := range []bool{false, true} {
			cfg := machine.DefaultConfig()
			cfg.Seed = uint64(91000+1000*di) + uint64(g.p*100)
			trials = append(trials, SteadyTrial{Cfg: cfg, Tech: dtm.Dimetrodon{P: g.p, L: g.l, Deterministic: det}, Spawn: spawn, Settle: settle, Window: window})
		}
	}
	results := RunSteadyAll(trials)
	base := results[0]
	toPoint := func(g struct {
		p float64
		l units.Time
	}, r SteadyResult) Figure3Point {
		pt := Tradeoff("", base, r)
		eff := 0.0
		if pt.PerfReduction > 0 {
			eff = pt.TempReduction / pt.PerfReduction
		}
		return Figure3Point{P: g.p, L: g.l, TempRed: pt.TempReduction, PerfRed: pt.PerfReduction, Efficiency: eff}
	}
	for i, g := range grid {
		res.Points = append(res.Points, AblationPoint{
			Label:    fmt.Sprintf("p=%g L=%v", g.p, g.l),
			Baseline: toPoint(g, results[1+2*i]),
			Variant:  toPoint(g, results[2+2*i]),
		})
	}
	return res
}

// String renders the comparison.
func (r AblationResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation %q: %s\n", r.Name, r.Description)
	b.WriteString(" config            baseline r/T/eff        variant r/T/eff\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, " %-16s  %5.3f/%5.3f/%5.2f      %5.3f/%5.3f/%5.2f\n",
			p.Label,
			p.Baseline.TempRed, p.Baseline.PerfRed, p.Baseline.Efficiency,
			p.Variant.TempRed, p.Variant.PerfRed, p.Variant.Efficiency)
	}
	return b.String()
}
