package experiments

import (
	"fmt"
	"strings"

	"repro/internal/adaptive"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/units"
	"repro/internal/workload"
)

// AdaptivePhase summarises one load phase of the adaptive-control extension.
type AdaptivePhase struct {
	Name      string
	MeanDTS   float64 // observed hottest-junction mean over the phase tail
	MeanP     float64 // actuated injection probability over the phase tail
	TargetErr float64 // MeanDTS − target (°C)
}

// AdaptiveResult is the extension study: a temperature-setpoint controller
// holding the hottest junction at a target across load changes — the online
// policy adjustment §2.1 sketches.
type AdaptiveResult struct {
	Target units.Celsius
	Idle   units.Celsius
	Phases []AdaptivePhase
	// PTrace/TempTrace are downsampled actuation and observation traces
	// across the whole run.
	PTrace, TempTrace []float64
}

// RunAdaptiveControl exercises the setpoint controller through three phases:
// heavy load (4× cpuburn — target only reachable with injection), light load
// (1× cpuburn — naturally below target, controller must back off), and heavy
// again (controller must re-engage).
func RunAdaptiveControl(scale Scale) AdaptiveResult {
	phaseDur := scale.seconds(200)
	cfg := machine.DefaultConfig()
	// Inherently sequential (one machine through three load phases), but the
	// unread instrument chain still costs nothing.
	cfg.Meter.Disabled = true
	cfg.Seed = 31
	m := machine.New(cfg)
	idle := m.IdleJunctionTemp()
	target := units.Celsius(float64(idle) + 12)

	ctl, err := adaptive.Attach(m, adaptive.DefaultConfig(target))
	if err != nil {
		panic(err)
	}

	// Phase 1: heavy — four infinite burners; one of them is "phase-long"
	// so we can retire three of them for the light phase.
	heavy := make([]*sched.Thread, 0, 3)
	m.Sched.Spawn(workload.Burn(), sched.SpawnConfig{Name: "persistent", PowerFactor: 1})
	stop := make([]*stopFlag, 3)
	for i := range stop {
		stop[i] = &stopFlag{}
		heavy = append(heavy, m.Sched.Spawn(stop[i].program(), sched.SpawnConfig{
			Name: fmt.Sprintf("heavy-%d", i), PowerFactor: 1,
		}))
	}
	_ = heavy

	res := AdaptiveResult{Target: target, Idle: idle}
	measure := func(name string) {
		tail := phaseDur / 2
		start := m.Now() + phaseDur - tail
		m.RunUntil(m.Now() + phaseDur)
		meanT, _ := ctl.TempTrace.MeanOver(start, m.Now())
		meanP, _ := ctl.PTrace.MeanOver(start, m.Now())
		res.Phases = append(res.Phases, AdaptivePhase{
			Name:      name,
			MeanDTS:   meanT,
			MeanP:     meanP,
			TargetErr: meanT - float64(target),
		})
	}

	measure("heavy (4x cpuburn)")
	for _, s := range stop {
		s.stop = true
	}
	measure("light (1x cpuburn)")
	for i := range stop {
		stop[i] = &stopFlag{}
		m.Sched.Spawn(stop[i].program(), sched.SpawnConfig{
			Name: fmt.Sprintf("heavy2-%d", i), PowerFactor: 1,
		})
	}
	measure("heavy again (4x cpuburn)")

	for _, s := range ctl.PTrace.Downsample(60).Samples() {
		res.PTrace = append(res.PTrace, s.Value)
	}
	for _, s := range ctl.TempTrace.Downsample(60).Samples() {
		res.TempTrace = append(res.TempTrace, s.Value)
	}
	return res
}

// stopFlag lets a burner program be retired externally at its next chunk
// boundary (≤1 ref-second of residual work).
type stopFlag struct{ stop bool }

func (s *stopFlag) program() sched.Program {
	return sched.ProgramFunc(func(units.Time) sched.Action {
		if s.stop {
			return sched.Exit()
		}
		return sched.Compute(1.0)
	})
}

// String renders the phase table.
func (r AdaptiveResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: adaptive setpoint control (target %.1fC, idle %.1fC)\n",
		float64(r.Target), float64(r.Idle))
	b.WriteString(" phase                      mean DTS   mean p    target err\n")
	for _, p := range r.Phases {
		fmt.Fprintf(&b, " %-25s  %6.2fC   %6.3f    %+5.2fC\n",
			p.Name, p.MeanDTS, p.MeanP, p.TargetErr)
	}
	b.WriteString("(the controller spends performance only when heat demands it,\n")
	b.WriteString(" re-engaging automatically when the heavy load returns)\n")
	return b.String()
}
