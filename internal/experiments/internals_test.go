package experiments

import (
	"math"
	"testing"

	"repro/internal/analysis"
	"repro/internal/units"
)

func TestInterpCost(t *testing.T) {
	front := []analysis.TradeoffPoint{
		{TempReduction: 0.2, PerfReduction: 0.1},
		{TempReduction: 0.6, PerfReduction: 0.5},
	}
	// Below the first point: interpolate from the origin.
	c, ok := interpCost(front, 0.1)
	if !ok || math.Abs(c-0.05) > 1e-12 {
		t.Errorf("interp(0.1) = %v, %v", c, ok)
	}
	// Exactly on a point.
	c, ok = interpCost(front, 0.2)
	if !ok || math.Abs(c-0.1) > 1e-12 {
		t.Errorf("interp(0.2) = %v", c)
	}
	// Between points.
	c, ok = interpCost(front, 0.4)
	if !ok || math.Abs(c-0.3) > 1e-12 {
		t.Errorf("interp(0.4) = %v", c)
	}
	// Beyond the boundary's reach.
	if _, ok := interpCost(front, 0.7); ok {
		t.Error("interp beyond reach returned ok")
	}
	if _, ok := interpCost(nil, 0.1); ok {
		t.Error("interp on empty boundary returned ok")
	}
}

func TestCrossoverDetection(t *testing.T) {
	// Dimetrodon efficient at small r, VFS efficient at large r: the
	// crossover is where VFS's interpolated cost dips below.
	dim := []analysis.TradeoffPoint{
		{TempReduction: 0.1, PerfReduction: 0.02},
		{TempReduction: 0.5, PerfReduction: 0.45},
		{TempReduction: 0.9, PerfReduction: 0.88},
	}
	vfs := []analysis.TradeoffPoint{
		{TempReduction: 0.3, PerfReduction: 0.15},
		{TempReduction: 0.7, PerfReduction: 0.35},
	}
	r := crossover(dim, vfs)
	if r < 0.1 || r > 0.4 {
		t.Errorf("crossover at %v, want in (0.1, 0.4)", r)
	}
	// VFS dominated everywhere: no crossover within range.
	weakVFS := []analysis.TradeoffPoint{{TempReduction: 0.3, PerfReduction: 0.9}}
	if r := crossover(dim, weakVFS); r < 0.9 {
		t.Errorf("dominated VFS crossed at %v", r)
	}
	if crossover(nil, vfs) != 0 || crossover(dim, nil) != 0 {
		t.Error("empty boundaries should yield 0")
	}
}

func TestFig5ParetoAdapter(t *testing.T) {
	pts := []Figure5Point{
		{Label: "a", TempReduction: 0.2, CoolThroughput: 1.0},
		{Label: "b", TempReduction: 0.1, CoolThroughput: 0.9}, // dominated
		{Label: "c", TempReduction: 0.5, CoolThroughput: 0.8},
	}
	front := fig5Pareto(pts)
	if len(front) != 2 {
		t.Fatalf("frontier = %+v", front)
	}
	if front[0].Label != "a" || front[1].Label != "c" {
		t.Errorf("frontier labels = %v, %v", front[0].Label, front[1].Label)
	}
}

func TestFig6ParetoAdapter(t *testing.T) {
	pts := []Figure6Point{
		{Label: "a", TempReduction: 0.1, GoodQoS: 1.0, TolerableQoS: 1.0},
		{Label: "b", TempReduction: 0.05, GoodQoS: 0.9, TolerableQoS: 0.95}, // dominated
		{Label: "c", TempReduction: 0.3, GoodQoS: 0.5, TolerableQoS: 0.9},
	}
	good := fig6Pareto(pts, true)
	if len(good) != 2 {
		t.Fatalf("good frontier = %+v", good)
	}
	for i := 1; i < len(good); i++ {
		if good[i].TempReduction < good[i-1].TempReduction {
			t.Error("good frontier unsorted")
		}
	}
	tol := fig6Pareto(pts, false)
	found := false
	for _, p := range tol {
		if p.Label == "c" {
			found = true
		}
	}
	if !found {
		t.Error("tolerable frontier missing point c")
	}
}

func TestMinProb(t *testing.T) {
	if minProb(0.5) != 0.5 {
		t.Error("minProb altered a valid p")
	}
	if minProb(1.0) != 0.99 {
		t.Error("minProb did not clamp p=1")
	}
}

func TestStopFlagProgram(t *testing.T) {
	s := &stopFlag{}
	prog := s.program()
	if a := prog.Next(0); a.Kind != 0 /* ActCompute */ || a.Work != 1 {
		t.Errorf("running flag: %+v", a)
	}
	s.stop = true
	if a := prog.Next(units.Second); a.Work != 0 {
		t.Errorf("stopped flag still computing: %+v", a)
	}
}
