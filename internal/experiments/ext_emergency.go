package experiments

import (
	"fmt"
	"strings"

	"repro/internal/adaptive"
	"repro/internal/dtm"
	"repro/internal/machine"
	"repro/internal/runner"
	"repro/internal/units"
)

// EmergencyArm is one management strategy's outcome in the cooling-failure
// scenario.
type EmergencyArm struct {
	Name         string
	PeakJunction units.Celsius
	MeanJunction units.Celsius
	WorkRate     float64
	Trips        int        // TM1 engagements
	Throttled    units.Time // time spent in emergency throttling
}

// EmergencyResult is the §1-motivation study: a cooling failure under full
// load, handled by (a) the reactive TM1 backstop alone, and (b) preventive
// Dimetrodon (the adaptive setpoint controller) with TM1 still armed.
// Preventive management keeps the junction below the trip point so the
// emergency mechanism never fires, at comparable or better throughput than
// the coarse duty-cycle oscillation TM1 produces on its own.
type EmergencyResult struct {
	FanFactor float64
	Trip      units.Celsius
	Arms      []EmergencyArm
}

// RunEmergencyScenario degrades the cooling path (fan failure: 2.4× the
// sink-to-ambient resistance) under 4× cpuburn and compares the arms.
func RunEmergencyScenario(scale Scale) EmergencyResult {
	duration := scale.seconds(300)
	tm1Cfg := dtm.DefaultTM1Config()

	run := func(preventive bool, seed uint64) EmergencyArm {
		cfg := machine.DefaultConfig()
		cfg.Meter.Disabled = true
		cfg.Seed = seed
		cfg.FanFactor = 2.4
		m := machine.New(cfg)
		tm1, err := dtm.AttachTM1(m, tm1Cfg)
		if err != nil {
			panic(err)
		}
		if preventive {
			// Hold 5 °C of headroom below the trip point.
			acfg := adaptive.DefaultConfig(tm1Cfg.Trip - 5)
			if _, err := adaptive.Attach(m, acfg); err != nil {
				panic(err)
			}
		}
		SpawnBurnPerCore(1.0)(m)
		peak := units.Celsius(0)
		var tick units.Time = 100 * units.Millisecond
		i0 := m.MeanJunctionIntegral()
		w0 := m.TotalWorkDone()
		t0 := m.Now()
		for m.Now() < duration {
			m.RunFor(tick)
			for _, tj := range m.JunctionTemps() {
				if tj > peak {
					peak = tj
				}
			}
		}
		i1 := m.MeanJunctionIntegral()
		w1 := m.TotalWorkDone()
		secs := (m.Now() - t0).Seconds()
		name := "reactive TM1 only"
		if preventive {
			name = "preventive (adaptive) + TM1 armed"
		}
		return EmergencyArm{
			Name:         name,
			PeakJunction: peak,
			MeanJunction: units.Celsius((i1 - i0) / secs),
			WorkRate:     (w1 - w0) / secs,
			Trips:        tm1.Engagements,
			Throttled:    tm1.Throttled(m.Now()),
		}
	}

	res := EmergencyResult{FanFactor: 2.4, Trip: tm1Cfg.Trip}
	res.Arms = runner.Collect(
		func() EmergencyArm { return run(false, 900) },
		func() EmergencyArm { return run(true, 901) },
	)
	return res
}

// String renders the comparison.
func (r EmergencyResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: cooling failure under load (fan at 1/%.1f airflow, PROCHOT trip %.0fC)\n",
		r.FanFactor, float64(r.Trip))
	b.WriteString(" strategy                            peak      mean     work/s   trips  throttled\n")
	for _, a := range r.Arms {
		fmt.Fprintf(&b, " %-34s  %6.1fC  %6.1fC   %5.2f    %4d   %v\n",
			a.Name, float64(a.PeakJunction), float64(a.MeanJunction),
			a.WorkRate, a.Trips, a.Throttled)
	}
	b.WriteString("(§1: reactive DTM exists for catastrophic conditions; preventive\n")
	b.WriteString(" management keeps it dormant while delivering steadier throughput)\n")
	return b.String()
}
