package experiments

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/dtm"
	"repro/internal/machine"
	"repro/internal/units"
)

// Figure4Result holds the wide-range technique comparison of Figure 4:
// scatter points for Dimetrodon, VFS and p4tcc in the (temperature
// reduction, throughput reduction) plane with the Pareto boundary per
// technique, plus the power-law fit of Dimetrodon's boundary.
type Figure4Result struct {
	Dimetrodon []analysis.TradeoffPoint
	VFS        []analysis.TradeoffPoint
	P4TCC      []analysis.TradeoffPoint

	DimPareto []analysis.TradeoffPoint
	VFSPareto []analysis.TradeoffPoint
	TCCPareto []analysis.TradeoffPoint

	// Fit is the cpuburn trade-off fit T(r) = α·r^β over the Dimetrodon
	// Pareto boundary for r ∈ [0, 0.75] (paper: α=1.092, β=1.541).
	Fit analysis.PowerLaw
	// CrossoverR estimates where VFS's boundary starts dominating
	// Dimetrodon's (paper: ≈30 % temperature reduction).
	CrossoverR float64
}

// Figure4Grid describes the parameter sweep.
type Figure4Grid struct {
	Ps  []float64
	Ls  []units.Time
	VFS int // number of non-nominal P-states to sweep (set from ladder)
	TCC []float64
}

// DefaultFigure4Grid returns the sweep used by the harness.
func DefaultFigure4Grid() Figure4Grid {
	g := Figure4Grid{
		Ps: []float64{0.05, 0.1, 0.25, 0.5, 0.75, 0.9},
		// p4tcc duty levels: multiples of 1/8, excluding 1.0 (off).
		TCC: []float64{0.875, 0.75, 0.625, 0.5, 0.375, 0.25, 0.125},
	}
	for _, lms := range []float64{1, 5, 10, 25, 50, 100} {
		g.Ls = append(g.Ls, units.FromMilliseconds(lms))
	}
	return g
}

// RunFigure4 reproduces Figure 4: exhaustive static-policy sweeps of
// Dimetrodon, VFS and p4tcc under cpuburn.
func RunFigure4(scale Scale) Figure4Result {
	settle := scale.seconds(270)
	window := scale.seconds(30)
	grid := DefaultFigure4Grid()
	spawn := SpawnBurnPerCore(1.0)

	// Enumerate the sweep — Dimetrodon grid, then the VFS ladder, then the
	// TCC duty levels — assigning seeds in that submission order, exactly
	// as the sequential harness did.
	type f4Spec struct {
		tech dtm.Technique
		seed uint64
	}
	var specs []f4Spec
	seed := uint64(40000)
	for _, p := range grid.Ps {
		for _, l := range grid.Ls {
			seed++
			specs = append(specs, f4Spec{dtm.Dimetrodon{P: p, L: l}, seed})
		}
	}
	ladder := machine.New(machine.DefaultConfig()).Chip.PStateCount()
	for i := 1; i < ladder; i++ {
		seed++
		specs = append(specs, f4Spec{dtm.VFS{PState: i}, seed})
	}
	for _, d := range grid.TCC {
		seed++
		specs = append(specs, f4Spec{dtm.P4TCC{Duty: d}, seed})
	}

	trials := make([]SteadyTrial, 0, len(specs)+1)
	trials = append(trials, SteadyTrial{Cfg: machine.DefaultConfig(), Tech: dtm.RaceToIdle{}, Spawn: spawn, Settle: settle, Window: window})
	for _, s := range specs {
		cfg := machine.DefaultConfig()
		cfg.Seed = s.seed
		trials = append(trials, SteadyTrial{Cfg: cfg, Tech: s.tech, Spawn: spawn, Settle: settle, Window: window})
	}
	results := RunSteadyAll(trials)
	base := results[0]

	var res Figure4Result
	nDim := len(grid.Ps) * len(grid.Ls)
	nVFS := ladder - 1
	for i, s := range specs {
		pt := Tradeoff(s.tech.Label(), base, results[i+1])
		switch {
		case i < nDim:
			res.Dimetrodon = append(res.Dimetrodon, pt)
		case i < nDim+nVFS:
			res.VFS = append(res.VFS, pt)
		default:
			res.P4TCC = append(res.P4TCC, pt)
		}
	}

	res.DimPareto = analysis.ParetoFrontier(res.Dimetrodon)
	res.VFSPareto = analysis.ParetoFrontier(res.VFS)
	res.TCCPareto = analysis.ParetoFrontier(res.P4TCC)
	if fit, ok := analysis.FitPowerLawUpTo(res.DimPareto, 0.75); ok {
		res.Fit = fit
	}
	res.CrossoverR = crossover(res.DimPareto, res.VFSPareto)
	return res
}

// crossover finds the smallest temperature reduction at which the VFS
// boundary achieves it more cheaply than the Dimetrodon boundary. Boundaries
// are compared by linear interpolation of performance cost over r.
func crossover(dim, vfs []analysis.TradeoffPoint) float64 {
	if len(dim) == 0 || len(vfs) == 0 {
		return 0
	}
	for r := 0.02; r <= 0.95; r += 0.01 {
		cd, okd := interpCost(dim, r)
		cv, okv := interpCost(vfs, r)
		if okd && okv && cv < cd {
			return r
		}
		if !okd && okv {
			// Dimetrodon can no longer reach this reduction at all.
			return r
		}
	}
	return 1
}

// interpCost interpolates the perf cost of achieving temperature reduction r
// along a Pareto boundary (sorted by increasing r). ok is false beyond the
// boundary's reach.
func interpCost(front []analysis.TradeoffPoint, r float64) (float64, bool) {
	if len(front) == 0 || r > front[len(front)-1].TempReduction {
		return 0, false
	}
	prev := analysis.TradeoffPoint{} // origin: no reduction, no cost
	for _, p := range front {
		if r <= p.TempReduction {
			span := p.TempReduction - prev.TempReduction
			if span <= 0 {
				return p.PerfReduction, true
			}
			frac := (r - prev.TempReduction) / span
			return prev.PerfReduction + frac*(p.PerfReduction-prev.PerfReduction), true
		}
		prev = p
	}
	return front[len(front)-1].PerfReduction, true
}

// String renders the scatter summary, boundaries and fit.
func (r Figure4Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 4: wide-range parameter sweeps vs other techniques (cpuburn)\n\n")
	writePts := func(name string, pts []analysis.TradeoffPoint) {
		fmt.Fprintf(&b, "%s pareto boundary:\n", name)
		for _, p := range pts {
			eff := 0.0
			if p.PerfReduction > 0 {
				eff = p.TempReduction / p.PerfReduction
			}
			fmt.Fprintf(&b, "  r=%5.1f%%  T=%5.1f%%  eff=%5.2f  %s\n",
				100*p.TempReduction, 100*p.PerfReduction, eff, p.Label)
		}
	}
	writePts("dimetrodon", r.DimPareto)
	writePts("vfs", r.VFSPareto)
	writePts("p4tcc", r.TCCPareto)
	fmt.Fprintf(&b, "\ndimetrodon fit: %v (paper: T(r)=1.092*r^1.541)\n", r.Fit)
	fmt.Fprintf(&b, "VFS overtakes dimetrodon at r ≈ %.0f%% (paper: ≈30%%)\n", 100*r.CrossoverR)
	return b.String()
}
