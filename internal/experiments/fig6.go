package experiments

import (
	"fmt"
	"strings"

	"repro/internal/dtm"
	"repro/internal/machine"
	"repro/internal/runner"
	"repro/internal/units"
	"repro/internal/webserver"
)

// Figure6Point is one web-serving configuration's outcome.
type Figure6Point struct {
	Label         string
	TempReduction float64
	GoodQoS       float64 // relative to baseline "good" fraction
	TolerableQoS  float64 // relative to baseline "tolerable" fraction
	Throughput    float64 // requests/s
	MeanLatency   units.Time
}

// Figure6Result holds the QoS-versus-temperature sweep of Figure 6.
type Figure6Result struct {
	BaselineRise units.Celsius
	BaselineQoS  webserver.Stats
	Points       []Figure6Point
	GoodPareto   []Figure6Point
	TolPareto    []Figure6Point
}

// RunFigure6 reproduces Figure 6: the SPECWeb-like workload (440 connections,
// ~15–25 % per-core load, ≈6 °C unconstrained rise) under a Dimetrodon sweep.
// QoS follows the SPECWeb thresholds: "good" ≤ 3 s, "tolerable" ≤ 5 s.
//
// The closed loop produces the paper's dynamics: stretching responses lowers
// each connection's issue rate, removing work and heat — until the injected
// idle time saturates the cores, queueing explodes, and QoS collapses.
func RunFigure6(scale Scale) Figure6Result {
	duration := scale.seconds(240)
	webCfg := webserver.DefaultConfig()
	if w := duration / 6; w < webCfg.Warmup {
		webCfg.Warmup = w
	}

	type outcome struct {
		meanTemp units.Celsius
		idleTemp units.Celsius
		stats    webserver.Stats
	}
	run := func(tech dtm.Technique, seed uint64) outcome {
		cfg := machine.DefaultConfig()
		cfg.Meter.Disabled = true
		cfg.Seed = seed
		m := machine.New(cfg)
		if err := tech.Apply(m); err != nil {
			panic(err)
		}
		srv := webserver.New(m, webCfg)
		m.RunUntil(webCfg.Warmup)
		i0 := m.MeanJunctionIntegral()
		t0 := m.Now()
		m.RunUntil(duration)
		i1 := m.MeanJunctionIntegral()
		t1 := m.Now()
		return outcome{
			meanTemp: units.Celsius((i1 - i0) / (t1 - t0).Seconds()),
			idleTemp: m.IdleJunctionTemp(),
			stats:    srv.Snapshot(m.Now()),
		}
	}

	// Baseline first, then the p×L sweep, all as one trial list.
	type f6Spec struct {
		p    float64
		l    units.Time
		seed uint64
	}
	specs := []f6Spec{{0, 0, 600}}
	seed := uint64(60000)
	for _, p := range []float64{0.25, 0.5, 0.65, 0.75, 0.8, 0.85, 0.9, 0.93, 0.95} {
		for _, l := range []units.Time{10 * units.Millisecond, 25 * units.Millisecond, 50 * units.Millisecond, 100 * units.Millisecond} {
			seed++
			specs = append(specs, f6Spec{p, l, seed})
		}
	}
	outs := runner.Map(specs, func(i int, s f6Spec) outcome {
		if i == 0 {
			return run(dtm.RaceToIdle{}, s.seed)
		}
		return run(dtm.Dimetrodon{P: minProb(s.p), L: s.l}, s.seed)
	})
	base := outs[0]
	rise := float64(base.meanTemp - base.idleTemp)
	res := Figure6Result{BaselineRise: units.Celsius(rise), BaselineQoS: base.stats}

	for i, s := range specs[1:] {
		o := outs[i+1]
		pt := Figure6Point{
			Label:         fmt.Sprintf("p=%g L=%v", s.p, s.l),
			TempReduction: float64(base.meanTemp-o.meanTemp) / rise,
			Throughput:    o.stats.Throughput,
			MeanLatency:   o.stats.MeanLatency,
		}
		if g := base.stats.GoodFraction(); g > 0 {
			pt.GoodQoS = o.stats.GoodFraction() / g
		}
		if t := base.stats.TolerableFraction(); t > 0 {
			pt.TolerableQoS = o.stats.TolerableFraction() / t
		}
		res.Points = append(res.Points, pt)
	}
	res.GoodPareto = fig6Pareto(res.Points, true)
	res.TolPareto = fig6Pareto(res.Points, false)
	return res
}

// minProb keeps sweep probabilities inside the model's domain.
func minProb(p float64) float64 {
	if p >= 1 {
		return 0.99
	}
	return p
}

// fig6Pareto extracts the boundary maximising (TempReduction, QoS).
func fig6Pareto(points []Figure6Point, good bool) []Figure6Point {
	qos := func(p Figure6Point) float64 {
		if good {
			return p.GoodQoS
		}
		return p.TolerableQoS
	}
	var out []Figure6Point
	for _, p := range points {
		dominated := false
		for _, q := range points {
			if q.TempReduction >= p.TempReduction && qos(q) >= qos(p) &&
				(q.TempReduction > p.TempReduction || qos(q) > qos(p)) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, p)
		}
	}
	// Sort by temperature reduction ascending (insertion, small n).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].TempReduction < out[j-1].TempReduction; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// String renders the QoS boundaries.
func (r Figure6Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: web workload QoS vs temperature reduction (baseline rise %.2fC)\n", float64(r.BaselineRise))
	fmt.Fprintf(&b, "baseline: %v\n", r.BaselineQoS)
	b.WriteString("\n\"good\" (<=3s) pareto boundary:\n")
	for _, p := range r.GoodPareto {
		fmt.Fprintf(&b, "  r=%5.1f%%  QoS=%6.1f%%  rate=%5.1f/s mean=%v  (%s)\n",
			100*p.TempReduction, 100*p.GoodQoS, p.Throughput, p.MeanLatency, p.Label)
	}
	b.WriteString("\n\"tolerable\" (<=5s) pareto boundary:\n")
	for _, p := range r.TolPareto {
		fmt.Fprintf(&b, "  r=%5.1f%%  QoS=%6.1f%%  rate=%5.1f/s mean=%v  (%s)\n",
			100*p.TempReduction, 100*p.TolerableQoS, p.Throughput, p.MeanLatency, p.Label)
	}
	b.WriteString("\n(paper: tolerable allows ~20% temperature reduction with virtually no\n")
	b.WriteString(" drop-off; good holds >=1:1 until ~30% then falls quickly)\n")
	return b.String()
}
