package experiments

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/dtm"
	"repro/internal/machine"
	"repro/internal/units"
	"repro/internal/workload"
)

// Table1Row is one workload's thermal profile and trade-off fit, mirroring
// the paper's Table 1.
type Table1Row struct {
	Workload string
	// RisePct is the unconstrained temperature rise over idle as a
	// percentage of cpuburn's rise.
	RisePct      float64
	PaperRisePct float64
	// Fit is T(r) = α·r^β over the Pareto boundary for r ∈ [0, 0.5].
	Fit        analysis.PowerLaw
	PaperAlpha float64
	PaperBeta  float64
	// Points is the full sweep scatter for this workload.
	Points []analysis.TradeoffPoint
}

// Table1Result holds all rows.
type Table1Result struct {
	Rows []Table1Row
}

// RunTable1 reproduces Table 1: the six SPEC CPU2006 proxies (plus cpuburn as
// the reference) are run unconstrained to establish their thermal profiles,
// then swept across idle quantum lengths and probabilities to fit each
// workload's throughput-reduction model.
func RunTable1(scale Scale) Table1Result {
	settle := scale.seconds(270)
	window := scale.seconds(30)
	ps := []float64{0.1, 0.25, 0.5, 0.75}
	ls := []units.Time{
		5 * units.Millisecond, 25 * units.Millisecond,
		50 * units.Millisecond, 100 * units.Millisecond,
	}

	specs := append([]workload.Spec{workload.CPUBurnRef}, workload.SpecSuite...)

	// One trial list covers the whole table: an unconstrained baseline per
	// workload (cpuburn's doubles as the rise reference) followed by the
	// workload-major p×L policy grid with the sequential seed assignment.
	gridN := len(ps) * len(ls)
	trials := make([]SteadyTrial, 0, len(specs)*(1+gridN))
	for _, sp := range specs {
		trials = append(trials, SteadyTrial{Cfg: machine.DefaultConfig(), Tech: dtm.RaceToIdle{}, Spawn: SpawnBurnPerCore(sp.PowerFactor), Settle: settle, Window: window})
	}
	seed := uint64(70000)
	for _, sp := range specs {
		for _, p := range ps {
			for _, l := range ls {
				seed++
				cfg := machine.DefaultConfig()
				cfg.Seed = seed
				trials = append(trials, SteadyTrial{Cfg: cfg, Tech: dtm.Dimetrodon{P: p, L: l}, Spawn: SpawnBurnPerCore(sp.PowerFactor), Settle: settle, Window: window})
			}
		}
	}
	results := RunSteadyAll(trials)
	bases := results[:len(specs)]
	policies := results[len(specs):]
	burnBase := bases[0]
	burnRise := float64(burnBase.MeanJunction - burnBase.IdleTemp)

	var res Table1Result
	for wi, sp := range specs {
		base := bases[wi]
		rise := float64(base.MeanJunction - base.IdleTemp)
		row := Table1Row{
			Workload:     sp.Name,
			RisePct:      100 * rise / burnRise,
			PaperRisePct: sp.PaperRisePct,
			PaperAlpha:   sp.PaperAlpha,
			PaperBeta:    sp.PaperBeta,
		}
		gi := wi * gridN
		for _, p := range ps {
			for _, l := range ls {
				row.Points = append(row.Points, Tradeoff(fmt.Sprintf("p=%g L=%v", p, l), base, policies[gi]))
				gi++
			}
		}
		pareto := analysis.ParetoFrontier(row.Points)
		if fit, ok := analysis.FitPowerLawUpTo(pareto, 0.5); ok {
			row.Fit = fit
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// String renders the table side by side with the paper's values.
func (r Table1Result) String() string {
	var b strings.Builder
	b.WriteString("Table 1: real workload results (measured vs paper)\n")
	b.WriteString(" workload    rise%  (paper)    α      (paper)    β      (paper)\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, " %-10s %6.1f  (%5.1f)   %6.3f (%5.3f)   %6.3f (%5.3f)\n",
			row.Workload, row.RisePct, row.PaperRisePct,
			row.Fit.Alpha, row.PaperAlpha, row.Fit.Beta, row.PaperBeta)
	}
	return b.String()
}
