package experiments

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/dtm"
	"repro/internal/machine"
	"repro/internal/runner"
	"repro/internal/sched"
	"repro/internal/units"
	"repro/internal/workload"
)

// ThroughputValidationRow is one configuration of the §3.3 throughput model
// validation: measured runtime versus the analytical prediction
// D(t) = R + S·p/(1−p)·L over many trials.
type ThroughputValidationRow struct {
	P          float64
	L          units.Time
	Trials     int
	Predicted  units.Time
	MeanActual units.Time
	// DeviationPct is (predicted−actual)/actual throughput deviation: the
	// paper reports implementations averaging 1.0 % lower throughput than
	// the model, growing with p (context switching and state monitoring
	// overheads).
	DeviationPct float64
}

// ThroughputValidationResult aggregates the §3.3 throughput grid.
type ThroughputValidationResult struct {
	Rows    []ThroughputValidationRow
	Work    float64 // reference-seconds per trial
	MeanDev float64 // mean throughput deviation, %
}

// RunValidationThroughput reproduces §3.3's throughput validation: a finite
// cpuburn under p ∈ {.25,.5,.75} × L ∈ {25,50,75,100} ms, many trials each,
// compared against the analytical model.
func RunValidationThroughput(scale Scale) ThroughputValidationResult {
	work := 7.0 * float64(scale)
	if work < 1 {
		work = 1
	}
	trials := scale.trials(100)
	res := ThroughputValidationResult{Work: work}
	var devSum float64
	q := machine.DefaultConfig().Sched.Timeslice

	// Flatten the p×L×trial grid into one trial list; every entry's seed is
	// a pure function of its coordinates, so the sweep parallelises without
	// any shared randomness.
	type vtSpec struct {
		p, lms float64
		trial  int
	}
	var specs []vtSpec
	for _, p := range []float64{0.25, 0.5, 0.75} {
		for _, lms := range []float64{25, 50, 75, 100} {
			for trial := 0; trial < trials; trial++ {
				specs = append(specs, vtSpec{p, lms, trial})
			}
		}
	}
	runtimes := runner.Map(specs, func(_ int, s vtSpec) float64 {
		l := units.FromMilliseconds(s.lms)
		cfg := machine.DefaultConfig()
		cfg.Meter.Disabled = true
		cfg.Seed = uint64(1000*s.p) + uint64(s.lms)*1000 + uint64(s.trial) + 7
		m := machine.New(cfg)
		if err := (dtm.Dimetrodon{P: s.p, L: l}).Apply(m); err != nil {
			panic(err)
		}
		t := m.Sched.Spawn(workload.FiniteBurn(work), sched.SpawnConfig{
			Name: "burnP6", PowerFactor: 1.0,
		})
		horizon := units.FromSeconds(work/(1-s.p)*3 + 5)
		for !t.Exited() && m.Now() < horizon {
			m.RunFor(250 * units.Millisecond)
		}
		return t.Runtime(m.Now()).Seconds()
	})

	i := 0
	for _, p := range []float64{0.25, 0.5, 0.75} {
		for _, lms := range []float64{25, 50, 75, 100} {
			l := units.FromMilliseconds(lms)
			model := analysis.ThroughputModel{P: p, L: l, Q: q}
			predicted := model.PredictRuntime(units.FromSeconds(work))
			actuals := runtimes[i : i+trials]
			i += trials
			sum := analysis.Summarize(actuals)
			// Throughput ∝ 1/runtime: deviation of measured
			// throughput from predicted throughput.
			dev := (predicted.Seconds()/sum.Mean - 1) * 100
			devSum += dev
			res.Rows = append(res.Rows, ThroughputValidationRow{
				P: p, L: l, Trials: trials,
				Predicted:    predicted,
				MeanActual:   units.FromSeconds(sum.Mean),
				DeviationPct: dev,
			})
		}
	}
	res.MeanDev = devSum / float64(len(res.Rows))
	return res
}

// String renders the validation table.
func (r ThroughputValidationResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§3.3 throughput model validation (R=%.1fs cpuburn)\n", r.Work)
	b.WriteString("   p    L      predicted    measured     throughput dev\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, " %4.2f  %-6v %10.3fs %10.3fs    %+6.2f%%\n",
			row.P, row.L, row.Predicted.Seconds(), row.MeanActual.Seconds(), row.DeviationPct)
	}
	fmt.Fprintf(&b, "mean deviation: %+.2f%% (paper: −1.0%%, growing with p)\n", r.MeanDev)
	return b.String()
}

// EnergyValidationRow is one configuration of §3.3's energy validation:
// Dimetrodon's measured energy as a fraction of race-to-idle's over an equal
// window, as the clamp+multimeter chain reports it.
type EnergyValidationRow struct {
	P      float64
	L      units.Time
	Trials int
	// RatioPct is mean measured Dimetrodon energy / race-to-idle energy
	// ×100; the paper observed 97.6–103.7 %.
	RatioPct float64
	// TrueRatioPct uses exact (noise-free) energy accounting.
	TrueRatioPct float64
}

// EnergyValidationResult aggregates the §3.3 energy grid.
type EnergyValidationResult struct {
	Rows        []EnergyValidationRow
	MeanDevPct  float64 // mean of (ratio−100); paper −0.37 %
	MeanAbsDev  float64 // mean |ratio−100|; paper 1.67 %
	MinRatioPct float64
	MaxRatioPct float64
}

// RunValidationEnergy reproduces §3.3's energy validation: a 7 s finite
// cpuburn (four instances, one per core) under p ∈ {.25,.5,.75} ×
// L ∈ {50,100} ms; Dimetrodon's consumed energy is compared to race-to-idle
// over the same total window, five trials per configuration.
func RunValidationEnergy(scale Scale) EnergyValidationResult {
	work := 7.0 * float64(scale)
	if work < 1 {
		work = 1
	}
	trials := scale.trials(5)
	res := EnergyValidationResult{MinRatioPct: 1e9, MaxRatioPct: -1e9}
	var devSum, absSum float64

	// Each grid entry is a Dimetrodon/race-to-idle pair; the race run must
	// follow its partner (it reuses the Dimetrodon run's window), so the
	// pair is the unit of parallelism.
	type veSpec struct {
		p, lms float64
		trial  int
	}
	type veOut struct{ ratio, trueRatio float64 }
	var specs []veSpec
	for _, p := range []float64{0.25, 0.5, 0.75} {
		for _, lms := range []float64{50, 100} {
			for trial := 0; trial < trials; trial++ {
				specs = append(specs, veSpec{p, lms, trial})
			}
		}
	}
	outs := runner.Map(specs, func(_ int, s veSpec) veOut {
		l := units.FromMilliseconds(s.lms)
		seed := uint64(s.trial)*97 + uint64(s.lms) + uint64(s.p*1000)
		dimE, dimTrue, window := runEnergyTrial(dtm.Dimetrodon{P: s.p, L: l}, work, seed, 0)
		raceE, raceTrue, _ := runEnergyTrial(dtm.RaceToIdle{}, work, seed+1, window)
		return veOut{
			ratio:     float64(dimE) / float64(raceE) * 100,
			trueRatio: float64(dimTrue) / float64(raceTrue) * 100,
		}
	})

	i := 0
	for _, p := range []float64{0.25, 0.5, 0.75} {
		for _, lms := range []float64{50, 100} {
			l := units.FromMilliseconds(lms)
			var ratios, trueRatios []float64
			for trial := 0; trial < trials; trial++ {
				ratios = append(ratios, outs[i].ratio)
				trueRatios = append(trueRatios, outs[i].trueRatio)
				i++
			}
			mr := analysis.Summarize(ratios).Mean
			tr := analysis.Summarize(trueRatios).Mean
			devSum += mr - 100
			absSum += mathAbs(mr - 100)
			if mr < res.MinRatioPct {
				res.MinRatioPct = mr
			}
			if mr > res.MaxRatioPct {
				res.MaxRatioPct = mr
			}
			res.Rows = append(res.Rows, EnergyValidationRow{
				P: p, L: l, Trials: trials, RatioPct: mr, TrueRatioPct: tr,
			})
		}
	}
	res.MeanDevPct = devSum / float64(len(res.Rows))
	res.MeanAbsDev = absSum / float64(len(res.Rows))
	return res
}

func mathAbs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// runEnergyTrial runs four finite-burn threads under tech and returns the
// meter-measured and exact energies over the window. If window is zero the
// run extends until completion (plus idle tail to the modelled horizon) and
// that horizon is returned for the paired race-to-idle run.
func runEnergyTrial(tech dtm.Technique, work float64, seed uint64, window units.Time) (units.Joules, units.Joules, units.Time) {
	cfg := machine.DefaultConfig()
	cfg.Seed = seed
	m := machine.New(cfg)
	if err := tech.Apply(m); err != nil {
		panic(err)
	}
	var threads []*sched.Thread
	for i := 0; i < m.Chip.NumCores(); i++ {
		threads = append(threads, m.Sched.Spawn(workload.FiniteBurn(work), sched.SpawnConfig{
			Name: fmt.Sprintf("burn-%d", i), PowerFactor: 1.0,
		}))
	}
	if window <= 0 {
		// Run to completion.
		horizon := units.FromSeconds(work*12 + 5)
		for m.Now() < horizon {
			m.RunFor(100 * units.Millisecond)
			all := true
			for _, t := range threads {
				if !t.Exited() {
					all = false
					break
				}
			}
			if all {
				break
			}
		}
		window = m.Now()
	} else {
		m.RunUntil(window)
	}
	return m.Meter.MeasuredEnergy(), m.Energy.Energy(), window
}

// String renders the energy table.
func (r EnergyValidationResult) String() string {
	var b strings.Builder
	b.WriteString("§3.3 energy model validation (Dimetrodon energy as % of race-to-idle)\n")
	b.WriteString("   p    L      measured   exact\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, " %4.2f  %-6v  %6.1f%%   %6.1f%%\n", row.P, row.L, row.RatioPct, row.TrueRatioPct)
	}
	fmt.Fprintf(&b, "range %.1f%%–%.1f%%, mean dev %+.2f%%, mean |dev| %.2f%%\n",
		r.MinRatioPct, r.MaxRatioPct, r.MeanDevPct, r.MeanAbsDev)
	b.WriteString("(paper: 97.6%%–103.7%%, mean −0.37%%, mean abs 1.67%%, clamp accuracy ±3.5%%)\n")
	return b.String()
}
