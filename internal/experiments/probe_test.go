package experiments

import (
	"fmt"
	"testing"

	"repro/internal/dtm"
	"repro/internal/machine"
	"repro/internal/units"
)

// TestTradeoffProbe prints the trade-off coordinates of representative
// configurations from each technique family; it is the tuning loop for the
// model constants. Run with -run TestTradeoffProbe -v.
func TestTradeoffProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("probe is slow")
	}
	cfg := machine.DefaultConfig()
	settle := 270 * units.Second
	window := 30 * units.Second
	spawn := SpawnBurnPerCore(1.0)
	base := RunSteady(cfg, dtm.RaceToIdle{}, spawn, settle, window)
	fmt.Printf("baseline: T=%.2fC idle=%.2fC rise=%.2fC rate=%.3f power=%.1fW\n",
		float64(base.MeanJunction), float64(base.IdleTemp),
		float64(base.MeanJunction-base.IdleTemp), base.WorkRate, float64(base.MeanPower))

	type tc struct {
		name string
		tech dtm.Technique
	}
	var cases []tc
	for _, p := range []float64{0.1, 0.25, 0.5, 0.75} {
		for _, l := range []float64{1, 10, 100} {
			cases = append(cases, tc{
				fmt.Sprintf("dim p=%.2f L=%3.0fms", p, l),
				dtm.Dimetrodon{P: p, L: units.FromMilliseconds(l)},
			})
		}
	}
	for i := 1; i < 6; i++ {
		cases = append(cases, tc{fmt.Sprintf("vfs idx=%d", i), dtm.VFS{PState: i}})
	}
	for _, d := range []float64{0.875, 0.5, 0.25, 0.125} {
		cases = append(cases, tc{fmt.Sprintf("tcc duty=%.3f", d), dtm.P4TCC{Duty: d}})
	}
	for _, c := range cases {
		res := RunSteady(cfg, c.tech, spawn, settle, window)
		pt := Tradeoff(c.name, base, res)
		eff := 0.0
		if pt.PerfReduction > 0 {
			eff = pt.TempReduction / pt.PerfReduction
		}
		fmt.Printf("%-20s r=%6.3f T=%6.3f eff=%6.2f  (junc %.2fC, rate %.3f)\n",
			c.name, pt.TempReduction, pt.PerfReduction, eff,
			float64(res.MeanJunction), res.WorkRate)
	}
}
