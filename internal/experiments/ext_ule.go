package experiments

import (
	"fmt"
	"strings"

	"repro/internal/dtm"
	"repro/internal/machine"
	"repro/internal/runner"
	"repro/internal/units"
)

// ULEPoint compares one injection setting under the two scheduler
// organisations.
type ULEPoint struct {
	Label  string
	BSD    Figure3Point // 4.4BSD-style global run queue (the paper's setup)
	ULE    Figure3Point // ULE-style per-CPU queues with work stealing
	Steals int
}

// ULEResult is the footnote-2 study: "For simplicity of implementation, we
// modified the 4.4BSD scheduler, however the mechanism generalizes to ULE
// and other schedulers." Dimetrodon's decision point — the dispatcher — is
// identical in both organisations, so the temperature/throughput trade-offs
// should match.
type ULEResult struct {
	Points []ULEPoint
}

// RunULEComparison measures a small p×L grid of cpuburn trade-offs under
// both scheduler organisations.
func RunULEComparison(scale Scale) ULEResult {
	settle := scale.seconds(200)
	window := scale.seconds(30)

	run := func(p float64, l units.Time, perCPU bool, seed uint64) (SteadyResult, int) {
		cfg := machine.DefaultConfig()
		cfg.Meter.Disabled = true
		cfg.Seed = seed
		cfg.Sched.PerCPUQueues = perCPU
		m := machine.New(cfg)
		tech := dtm.Technique(dtm.RaceToIdle{})
		if p > 0 {
			tech = dtm.Dimetrodon{P: p, L: l}
		}
		if err := tech.Apply(m); err != nil {
			panic(err)
		}
		SpawnBurnPerCore(1.0)(m)
		m.RunFor(settle)
		i0 := m.MeanJunctionIntegral()
		w0 := m.TotalWorkDone()
		t0 := m.Now()
		m.RunFor(window)
		i1 := m.MeanJunctionIntegral()
		w1 := m.TotalWorkDone()
		t1 := m.Now()
		secs := (t1 - t0).Seconds()
		return SteadyResult{
			MeanJunction: units.Celsius((i1 - i0) / secs),
			WorkRate:     (w1 - w0) / secs,
			IdleTemp:     m.IdleJunctionTemp(),
		}, m.Sched.Steals
	}

	grid := []struct {
		p float64
		l units.Time
	}{
		{0.25, 5 * units.Millisecond},
		{0.5, 10 * units.Millisecond},
		{0.5, 100 * units.Millisecond},
		{0.75, 100 * units.Millisecond},
	}

	// Both baselines, then a BSD/ULE pair per grid point, as one list.
	type uleSpec struct {
		p      float64
		l      units.Time
		perCPU bool
		seed   uint64
	}
	type uleOut struct {
		res    SteadyResult
		steals int
	}
	specs := []uleSpec{{0, 0, false, 860}, {0, 0, true, 861}}
	seed := uint64(860)
	for _, g := range grid {
		seed += 2
		specs = append(specs,
			uleSpec{g.p, g.l, false, seed},
			uleSpec{g.p, g.l, true, seed + 1})
	}
	outs := runner.Map(specs, func(_ int, s uleSpec) uleOut {
		r, steals := run(s.p, s.l, s.perCPU, s.seed)
		return uleOut{r, steals}
	})
	baseBSD, baseULE := outs[0].res, outs[1].res

	var res ULEResult
	toPoint := func(p float64, l units.Time, base, pol SteadyResult) Figure3Point {
		pt := Tradeoff("", base, pol)
		eff := 0.0
		if pt.PerfReduction > 0 {
			eff = pt.TempReduction / pt.PerfReduction
		}
		return Figure3Point{P: p, L: l, TempRed: pt.TempReduction, PerfRed: pt.PerfReduction, Efficiency: eff}
	}
	for i, g := range grid {
		bsd := outs[2+2*i]
		ule := outs[3+2*i]
		res.Points = append(res.Points, ULEPoint{
			Label:  fmt.Sprintf("p=%g L=%v", g.p, g.l),
			BSD:    toPoint(g.p, g.l, baseBSD, bsd.res),
			ULE:    toPoint(g.p, g.l, baseULE, ule.res),
			Steals: ule.steals,
		})
	}
	return res
}

// String renders the comparison.
func (r ULEResult) String() string {
	var b strings.Builder
	b.WriteString("Extension: scheduler generality (fn. 2) — 4.4BSD global queue vs ULE per-CPU queues\n")
	b.WriteString(" config            4.4BSD r/T/eff         ULE r/T/eff           steals\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, " %-16s  %5.3f/%5.3f/%5.2f      %5.3f/%5.3f/%5.2f    %d\n",
			p.Label,
			p.BSD.TempRed, p.BSD.PerfRed, p.BSD.Efficiency,
			p.ULE.TempRed, p.ULE.PerfRed, p.ULE.Efficiency,
			p.Steals)
	}
	b.WriteString("(the injection decision point is the dispatcher in both organisations;\n")
	b.WriteString(" the trade-offs match, confirming the paper's generality claim)\n")
	return b.String()
}
