package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/runner"
	"repro/internal/units"
	"repro/internal/webserver"
)

// KernelAblationPoint compares one injection setting with kernel threads
// shielded (the paper's policy) versus injectable.
type KernelAblationPoint struct {
	Label         string
	ShieldedGood  float64 // relative good QoS with kernel threads exempt
	InjectedGood  float64 // relative good QoS with kernel threads injectable
	ShieldedMean  units.Time
	InjectedMean  units.Time
	ShieldedRed   float64 // temperature reduction
	InjectedRed   float64
	KernelInjects int // injections suffered by the network thread
}

// KernelAblationResult holds the §3.1 policy-decision study.
type KernelAblationResult struct {
	Points []KernelAblationPoint
}

// RunAblationKernelThreads quantifies the paper's §3.1 policy decision to
// always schedule kernel-level threads. When the network interrupt thread is
// injectable, request processing is delayed twice — once in the kernel and
// again in the user thread — degrading QoS for no additional temperature
// benefit.
func RunAblationKernelThreads(scale Scale) KernelAblationResult {
	duration := scale.seconds(180)
	webCfg := webserver.DefaultConfig()
	if w := duration / 6; w < webCfg.Warmup {
		webCfg.Warmup = w
	}
	type outcome struct {
		stats      webserver.Stats
		meanTemp   units.Celsius
		idleTemp   units.Celsius
		kernelInjs int
	}
	run := func(p float64, l units.Time, injectKernel bool, seed uint64) outcome {
		cfg := machine.DefaultConfig()
		cfg.Meter.Disabled = true
		cfg.Seed = seed
		m := machine.New(cfg)
		if p > 0 {
			ctl := core.NewController(m.RNG.Split())
			ctl.InjectKernel = injectKernel
			if err := ctl.SetGlobal(core.Params{P: p, L: l}); err != nil {
				panic(err)
			}
			m.Sched.SetInjector(ctl)
		}
		srv := webserver.New(m, webCfg)
		m.RunUntil(webCfg.Warmup)
		i0 := m.MeanJunctionIntegral()
		t0 := m.Now()
		m.RunUntil(duration)
		i1 := m.MeanJunctionIntegral()
		t1 := m.Now()
		var kinjs int
		for _, th := range m.Sched.Threads() {
			if th.Kernel {
				kinjs += th.Injections
			}
		}
		return outcome{
			stats:      srv.Snapshot(m.Now()),
			meanTemp:   units.Celsius((i1 - i0) / (t1 - t0).Seconds()),
			idleTemp:   m.IdleJunctionTemp(),
			kernelInjs: kinjs,
		}
	}
	grid := []struct {
		p float64
		l units.Time
	}{{0.5, 50 * units.Millisecond}, {0.75, 50 * units.Millisecond}, {0.85, 50 * units.Millisecond}}

	// Baseline first, then a shielded/injectable pair per grid point.
	type kaSpec struct {
		p            float64
		l            units.Time
		injectKernel bool
		seed         uint64
	}
	specs := []kaSpec{{0, 0, false, 955}}
	for _, g := range grid {
		specs = append(specs,
			kaSpec{g.p, g.l, false, 956},
			kaSpec{g.p, g.l, true, 957})
	}
	outs := runner.Map(specs, func(_ int, s kaSpec) outcome {
		return run(s.p, s.l, s.injectKernel, s.seed)
	})
	base := outs[0]
	rise := float64(base.meanTemp - base.idleTemp)
	var res KernelAblationResult
	for i, g := range grid {
		shielded := outs[1+2*i]
		injected := outs[2+2*i]
		pt := KernelAblationPoint{
			Label:         fmt.Sprintf("p=%g L=%v", g.p, g.l),
			ShieldedMean:  shielded.stats.MeanLatency,
			InjectedMean:  injected.stats.MeanLatency,
			KernelInjects: injected.kernelInjs,
		}
		if g := base.stats.GoodFraction(); g > 0 {
			pt.ShieldedGood = shielded.stats.GoodFraction() / g
			pt.InjectedGood = injected.stats.GoodFraction() / g
		}
		if rise > 0 {
			pt.ShieldedRed = float64(base.meanTemp-shielded.meanTemp) / rise
			pt.InjectedRed = float64(base.meanTemp-injected.meanTemp) / rise
		}
		res.Points = append(res.Points, pt)
	}
	return res
}

// String renders the comparison.
func (r KernelAblationResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation \"kernel-threads\": §3.1 policy — always schedule kernel threads\n")
	b.WriteString(" config           shielded QoS/r/mean       kernel-injectable QoS/r/mean   kernel injections\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, " %-15s  %5.1f%%/%5.1f%%/%-10v  %5.1f%%/%5.1f%%/%-10v  %d\n",
			p.Label,
			100*p.ShieldedGood, 100*p.ShieldedRed, p.ShieldedMean,
			100*p.InjectedGood, 100*p.InjectedRed, p.InjectedMean,
			p.KernelInjects)
	}
	b.WriteString("(delaying interrupt processing delays requests twice: once in the kernel,\n")
	b.WriteString(" again in the user thread)\n")
	return b.String()
}
