package experiments

import (
	"fmt"
	"strings"

	"repro/internal/dtm"
	"repro/internal/machine"
	"repro/internal/runner"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/workload"
)

// Figure1Result holds the two power traces of Figure 1: race-to-idle versus
// Dimetrodon for a multi-threaded CPU-bound process. Under Dimetrodon the
// trace steps between discrete levels corresponding to how many of the four
// cores are idling at once.
type Figure1Result struct {
	RaceToIdle *trace.Series
	Dimetrodon *trace.Series
	// Levels are the expected package power levels with k = 0..4 cores
	// idle, for annotating the plot.
	Levels []float64
	// MeanPowerRace/MeanPowerDim are the average powers while the job
	// runs, demonstrating the paper's point that Dimetrodon lowers
	// average power during execution.
	MeanPowerRace units.Watts
	MeanPowerDim  units.Watts
}

// RunFigure1 reproduces Figure 1: four CPU-bound threads (one per core) with
// ~2 reference-seconds of work each, run to completion under race-to-idle and
// under Dimetrodon with p=0.5, L=100 ms, while the clamp meter samples
// package power at 3 kHz.
func RunFigure1(scale Scale) Figure1Result {
	work := 2.0 * float64(scale)
	if work < 0.5 {
		work = 0.5
	}
	run := func(tech dtm.Technique, horizon units.Time) (*trace.Series, units.Watts) {
		cfg := machine.DefaultConfig()
		cfg.RecordPower = true
		m := machine.New(cfg)
		if err := tech.Apply(m); err != nil {
			panic(err)
		}
		var threads []*sched.Thread
		for i := 0; i < m.Chip.NumCores(); i++ {
			threads = append(threads, m.Sched.Spawn(workload.FiniteBurn(work), sched.SpawnConfig{
				Name:        fmt.Sprintf("job-%d", i),
				PowerFactor: 1.0,
			}))
		}
		// Run until all threads exit (plus a short idle tail), bounded
		// by the horizon.
		step := 100 * units.Millisecond
		var doneAt units.Time
		for m.Now() < horizon {
			m.RunFor(step)
			all := true
			for _, t := range threads {
				if !t.Exited() {
					all = false
					break
				}
			}
			if all && doneAt == 0 {
				doneAt = m.Now()
			}
			if doneAt != 0 && m.Now() >= doneAt+500*units.Millisecond {
				break
			}
		}
		if doneAt == 0 {
			doneAt = m.Now()
		}
		series := m.Recorder.Lookup("package.power")
		mean, _ := series.MeanOver(0, doneAt)
		return series, units.Watts(mean)
	}
	horizon := units.FromSeconds(8*work + 2)
	type armOut struct {
		series *trace.Series
		mean   units.Watts
	}
	arms := runner.Collect(
		func() armOut { s, m := run(dtm.RaceToIdle{}, horizon); return armOut{s, m} },
		func() armOut {
			s, m := run(dtm.Dimetrodon{P: 0.5, L: 100 * units.Millisecond}, horizon)
			return armOut{s, m}
		},
	)
	raceSeries, raceMean := arms[0].series, arms[0].mean
	dimSeries, dimMean := arms[1].series, arms[1].mean

	// Annotate expected power levels for k idle cores at a representative
	// warm junction temperature.
	cfg := machine.DefaultConfig()
	m := machine.New(cfg)
	var levels []float64
	warm := []units.Celsius{45, 45, 45, 45}
	for idle := 0; idle <= 4; idle++ {
		for c := 0; c < 4; c++ {
			if c < idle {
				m.Chip.SetIdle(c, cfg.InjectedIdle)
			} else {
				m.Chip.SetActive(c, 1.0)
			}
		}
		levels = append(levels, float64(m.Chip.TotalPower(warm)))
	}
	return Figure1Result{
		RaceToIdle:    raceSeries,
		Dimetrodon:    dimSeries,
		Levels:        levels,
		MeanPowerRace: raceMean,
		MeanPowerDim:  dimMean,
	}
}

// String renders the traces as ASCII charts plus the level annotation.
func (r Figure1Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 1: race-to-idle versus Dimetrodon power consumption\n")
	fmt.Fprintf(&b, "mean power while running: race-to-idle %.1fW, dimetrodon %.1fW\n",
		float64(r.MeanPowerRace), float64(r.MeanPowerDim))
	b.WriteString("expected levels (cores idle -> W):")
	for k, w := range r.Levels {
		fmt.Fprintf(&b, " %d:%.0f", k, w)
	}
	b.WriteString("\n\nrace-to-idle:\n")
	b.WriteString(r.RaceToIdle.ASCII(72, 10))
	b.WriteString("\ndimetrodon (p=0.5, L=100ms):\n")
	b.WriteString(r.Dimetrodon.ASCII(72, 10))
	return b.String()
}
