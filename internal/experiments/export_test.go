package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// exportIDs lists every experiment with a CSV export path; kept in sync with
// the registry by TestExportCoversRegistry in the root package.
var exportIDs = []string{
	"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "table1",
	"val-throughput", "val-energy",
	"abl-leakage", "abl-cstate", "abl-deterministic", "abl-hotspot", "abl-kernel",
	"ext-adaptive", "ext-emergency", "ext-smt", "ext-ule",
}

func TestExportWritesParseableCSVs(t *testing.T) {
	dir := t.TempDir()
	// A fast representative subset; the remaining IDs share the same
	// writer helpers.
	for _, id := range []string{"fig1", "fig3", "val-energy", "ext-smt"} {
		paths, err := Export(id, 0.05, dir)
		if err != nil {
			t.Fatalf("Export(%s): %v", id, err)
		}
		if len(paths) == 0 {
			t.Fatalf("Export(%s) wrote nothing", id)
		}
		for _, p := range paths {
			data, err := os.ReadFile(p)
			if err != nil {
				t.Fatalf("reading %s: %v", p, err)
			}
			lines := strings.Split(strings.TrimSpace(string(data)), "\n")
			if len(lines) < 2 {
				t.Errorf("%s: only %d line(s)", p, len(lines))
				continue
			}
			cols := strings.Count(lines[0], ",")
			for i, ln := range lines[1:] {
				if strings.Count(ln, ",") != cols {
					t.Errorf("%s line %d: column count mismatch", p, i+2)
					break
				}
			}
		}
	}
}

func TestExportUnknownID(t *testing.T) {
	if _, err := Export("nope", 0.1, t.TempDir()); err == nil {
		t.Error("unknown ID accepted")
	}
}

func TestExportCreatesDirectory(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "out")
	paths, err := Export("val-energy", 0.05, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || !strings.HasPrefix(paths[0], dir) {
		t.Errorf("paths = %v", paths)
	}
}
