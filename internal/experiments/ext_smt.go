package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/runner"
	"repro/internal/sched"
	"repro/internal/smt"
	"repro/internal/units"
	"repro/internal/workload"
)

// SMTPoint compares naive and co-scheduled injection at one setting.
type SMTPoint struct {
	Label string
	Naive Figure3Point // per-context independent injection
	CoSch Figure3Point // sibling-aligned injection
	// CoreC1EShareNaive/CoSch: fraction of injected idle time during
	// which the physical cores actually reached C1E.
	ForcedIdles int
}

// SMTResult is the §3.2 extension study: idle quantum co-scheduling across
// SMT sibling contexts.
type SMTResult struct {
	BaselineRate float64 // unconstrained work rate with SMT enabled
	Points       []SMTPoint
}

// RunSMTCoScheduling enables two hardware contexts per core (the
// configuration the paper disabled to avoid exactly this problem), runs
// eight cpuburn instances, and compares naive per-context injection against
// sibling-aligned co-scheduling. Naive injection leaves the sibling context
// running, so the core never reaches C1E during injected quanta and the
// trade-off collapses; co-scheduling recovers most of the non-SMT
// efficiency.
func RunSMTCoScheduling(scale Scale) SMTResult {
	settle := scale.seconds(200)
	window := scale.seconds(30)

	type outcome struct {
		res    SteadyResult
		forced int
	}
	run := func(p float64, l units.Time, cosched bool, seed uint64) outcome {
		cfg := machine.DefaultConfig()
		cfg.Meter.Disabled = true
		cfg.Seed = seed
		cfg.SMTContexts = 2
		m := machine.New(cfg)
		if p > 0 {
			base := core.NewController(m.RNG.Split())
			if err := base.SetGlobal(core.Params{P: p, L: l}); err != nil {
				panic(err)
			}
			var inj sched.Injector = base
			if cosched {
				co, err := smt.New(m.Sched, base, cfg.SMTContexts)
				if err != nil {
					panic(err)
				}
				inj = co
			}
			m.Sched.SetInjector(inj)
		}
		contexts := cfg.Model.NumCores * cfg.SMTContexts
		for i := 0; i < contexts; i++ {
			m.Sched.Spawn(workload.Burn(), sched.SpawnConfig{
				Name:        fmt.Sprintf("burn-%d", i),
				PowerFactor: 1.0,
			})
		}
		m.RunFor(settle)
		i0 := m.MeanJunctionIntegral()
		w0 := m.TotalWorkDone()
		t0 := m.Now()
		m.RunFor(window)
		i1 := m.MeanJunctionIntegral()
		w1 := m.TotalWorkDone()
		t1 := m.Now()
		secs := (t1 - t0).Seconds()
		var forced int
		if c, ok := m.Sched.Injector().(*smt.CoScheduler); ok {
			forced = c.ForcedIdles
		}
		return outcome{
			res: SteadyResult{
				MeanJunction: units.Celsius((i1 - i0) / secs),
				WorkRate:     (w1 - w0) / secs,
				IdleTemp:     m.IdleJunctionTemp(),
			},
			forced: forced,
		}
	}

	grid := []struct {
		p float64
		l units.Time
	}{
		{0.25, 10 * units.Millisecond},
		{0.5, 10 * units.Millisecond},
		{0.5, 50 * units.Millisecond},
		{0.75, 50 * units.Millisecond},
		{0.75, 100 * units.Millisecond},
	}

	// Baseline first, then a naive/co-scheduled pair per grid point.
	type smtSpec struct {
		p       float64
		l       units.Time
		cosched bool
		seed    uint64
	}
	specs := []smtSpec{{0, 0, false, 800}}
	seed := uint64(810)
	for _, g := range grid {
		seed += 2
		specs = append(specs,
			smtSpec{g.p, g.l, false, seed},
			smtSpec{g.p, g.l, true, seed + 1})
	}
	outs := runner.Map(specs, func(_ int, s smtSpec) outcome {
		return run(s.p, s.l, s.cosched, s.seed)
	})
	base := outs[0]

	var res SMTResult
	res.BaselineRate = base.res.WorkRate
	toPoint := func(p float64, l units.Time, o outcome) Figure3Point {
		pt := Tradeoff("", base.res, o.res)
		eff := 0.0
		if pt.PerfReduction > 0 {
			eff = pt.TempReduction / pt.PerfReduction
		}
		return Figure3Point{P: p, L: l, TempRed: pt.TempReduction, PerfRed: pt.PerfReduction, Efficiency: eff}
	}
	for i, g := range grid {
		naive := outs[1+2*i]
		co := outs[2+2*i]
		res.Points = append(res.Points, SMTPoint{
			Label:       fmt.Sprintf("p=%g L=%v", g.p, g.l),
			Naive:       toPoint(g.p, g.l, naive),
			CoSch:       toPoint(g.p, g.l, co),
			ForcedIdles: co.forced,
		})
	}
	return res
}

// String renders the comparison table.
func (r SMTResult) String() string {
	var b strings.Builder
	b.WriteString("Extension: SMT idle co-scheduling (§3.2), 2 contexts/core, 8x cpuburn\n")
	fmt.Fprintf(&b, "unconstrained SMT work rate: %.2f ref-s/s\n", r.BaselineRate)
	b.WriteString(" config            naive r/T/eff          co-scheduled r/T/eff    gang idles\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, " %-16s  %5.3f/%5.3f/%5.2f      %5.3f/%5.3f/%5.2f     %d\n",
			p.Label,
			p.Naive.TempRed, p.Naive.PerfRed, p.Naive.Efficiency,
			p.CoSch.TempRed, p.CoSch.PerfRed, p.CoSch.Efficiency,
			p.ForcedIdles)
	}
	b.WriteString("(naive per-context injection cannot reach C1E — the sibling keeps the\n")
	b.WriteString(" core awake; ganging the quanta recovers the low-power state)\n")
	return b.String()
}
