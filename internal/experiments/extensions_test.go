package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestAdaptiveControlShape(t *testing.T) {
	// The PI loop needs a few package time constants per phase to settle,
	// so this runs at a larger scale than the other integration tests.
	res := RunAdaptiveControl(0.5)
	if len(res.Phases) != 3 {
		t.Fatalf("phases = %d", len(res.Phases))
	}
	heavy, light, heavy2 := res.Phases[0], res.Phases[1], res.Phases[2]
	// The controller works hard in heavy phases and backs off in the
	// light phase.
	if heavy.MeanP < 0.2 {
		t.Errorf("heavy-phase p = %v", heavy.MeanP)
	}
	if light.MeanP > heavy.MeanP/2 {
		t.Errorf("light-phase p = %v did not back off from %v", light.MeanP, heavy.MeanP)
	}
	if heavy2.MeanP < 0.2 {
		t.Errorf("controller failed to re-engage: p = %v", heavy2.MeanP)
	}
	// Held near target in the heavy phases (DTS-quantised observable).
	for _, ph := range []AdaptivePhase{heavy, heavy2} {
		if math.Abs(ph.TargetErr) > 3 {
			t.Errorf("%s: target error %vC", ph.Name, ph.TargetErr)
		}
	}
	if !strings.Contains(res.String(), "adaptive setpoint") {
		t.Error("String output incomplete")
	}
}

func TestEmergencyScenarioShape(t *testing.T) {
	// The degraded heatsink needs ~2 minutes of virtual time to reach the
	// trip point, so this test runs at a larger scale.
	res := RunEmergencyScenario(0.6)
	if len(res.Arms) != 2 {
		t.Fatalf("arms = %d", len(res.Arms))
	}
	reactive, preventive := res.Arms[0], res.Arms[1]
	// Under the degraded fan, the reactive backstop must actually fire...
	if reactive.Trips == 0 {
		t.Error("TM1 never tripped under cooling failure")
	}
	if reactive.Throttled == 0 {
		t.Error("no throttled time recorded")
	}
	// ...while preventive control keeps it dormant.
	if preventive.Trips != 0 {
		t.Errorf("preventive arm tripped TM1 %d times", preventive.Trips)
	}
	// The preventive arm runs cooler on average.
	if preventive.MeanJunction >= reactive.MeanJunction {
		t.Errorf("preventive mean %v not below reactive %v",
			preventive.MeanJunction, reactive.MeanJunction)
	}
	// Neither arm exceeds the trip point by more than the monitor's
	// reaction granularity.
	for _, a := range res.Arms {
		if float64(a.PeakJunction) > float64(res.Trip)+3 {
			t.Errorf("%s: peak %v far above trip %v", a.Name, a.PeakJunction, res.Trip)
		}
	}
}

func TestULEComparisonShape(t *testing.T) {
	res := RunULEComparison(itScale)
	if len(res.Points) == 0 {
		t.Fatal("no points")
	}
	// Footnote 2: the mechanism generalises — trade-offs agree between
	// scheduler organisations within probabilistic noise.
	for _, p := range res.Points {
		if math.Abs(p.BSD.TempRed-p.ULE.TempRed) > 0.05 {
			t.Errorf("%s: r differs across schedulers: %v vs %v",
				p.Label, p.BSD.TempRed, p.ULE.TempRed)
		}
		if math.Abs(p.BSD.PerfRed-p.ULE.PerfRed) > 0.05 {
			t.Errorf("%s: T differs across schedulers: %v vs %v",
				p.Label, p.BSD.PerfRed, p.ULE.PerfRed)
		}
	}
}

func TestSMTCoSchedulingShape(t *testing.T) {
	res := RunSMTCoScheduling(itScale)
	if len(res.Points) == 0 {
		t.Fatal("no points")
	}
	// SMT yield: 8 contexts at the configured per-context rate.
	if res.BaselineRate < 4.5 || res.BaselineRate > 5.5 {
		t.Errorf("SMT baseline rate = %v, want ≈4.96", res.BaselineRate)
	}
	for _, p := range res.Points {
		if p.ForcedIdles == 0 {
			t.Errorf("%s: no gang idles", p.Label)
		}
		// Co-scheduling achieves more cooling than naive injection at
		// the same policy setting.
		if p.CoSch.TempRed <= p.Naive.TempRed {
			t.Errorf("%s: co-scheduled r=%v not above naive r=%v",
				p.Label, p.CoSch.TempRed, p.Naive.TempRed)
		}
		// And naive injection is not worthwhile (≈1:1 or below): the
		// §3.2 problem this extension exists to show.
		if p.Naive.Efficiency > 1.2 {
			t.Errorf("%s: naive SMT efficiency %v unexpectedly good",
				p.Label, p.Naive.Efficiency)
		}
	}
	// At least the short-quantum settings should be clearly worthwhile
	// once co-scheduled.
	if res.Points[0].CoSch.Efficiency < 1.3 {
		t.Errorf("co-scheduled short-quantum efficiency %v too low",
			res.Points[0].CoSch.Efficiency)
	}
}
