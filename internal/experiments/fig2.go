package experiments

import (
	"fmt"
	"strings"

	"repro/internal/dtm"
	"repro/internal/machine"
	"repro/internal/runner"
	"repro/internal/trace"
	"repro/internal/units"
)

// Figure2Curve is one idle-proportion setting's temperature trajectory.
type Figure2Curve struct {
	P float64
	// Rise is the across-core average junction temperature rise over the
	// idle temperature, sampled once per second.
	Rise *trace.Series
	// FinalRise is the mean rise over the last tenth of the run.
	FinalRise float64
}

// Figure2Result holds Figure 2: average core temperature rise over idle
// during a cpuburn execution for p ∈ {0, .25, .5, .75}, L = 100 ms.
type Figure2Result struct {
	Duration units.Time
	IdleTemp units.Celsius
	Curves   []Figure2Curve
}

// RunFigure2 reproduces Figure 2. The paper runs five minutes of cpuburn on
// all cores; temperatures fluctuate under the probabilistic injection and
// plateau lower for higher p.
func RunFigure2(scale Scale) Figure2Result {
	dur := scale.seconds(300)
	res := Figure2Result{Duration: dur}
	type curveOut struct {
		curve Figure2Curve
		idle  units.Celsius
	}
	curve := func(p float64) curveOut {
		cfg := machine.DefaultConfig()
		cfg.Meter.Disabled = true
		cfg.Seed = uint64(100 + p*100)
		m := machine.New(cfg)
		tech := dtm.Technique(dtm.RaceToIdle{})
		if p > 0 {
			tech = dtm.Dimetrodon{P: p, L: 100 * units.Millisecond}
		}
		if err := tech.Apply(m); err != nil {
			panic(err)
		}
		SpawnBurnPerCore(1.0)(m)
		idle := m.IdleJunctionTemp()
		rise := trace.NewSeries(fmt.Sprintf("rise p=%g", p), "C")
		sampleEvery := units.Second
		if dur < 60*units.Second {
			sampleEvery = dur / 60
		}
		prevI := m.MeanJunctionIntegral()
		prevT := m.Now()
		for m.Now() < dur {
			m.RunFor(sampleEvery)
			i := m.MeanJunctionIntegral()
			t := m.Now()
			mean := (i - prevI) / (t - prevT).Seconds()
			rise.Append(t, mean-float64(idle))
			prevI, prevT = i, t
		}
		final, _ := rise.MeanOver(dur-dur/10, dur)
		return curveOut{Figure2Curve{P: p, Rise: rise, FinalRise: final}, idle}
	}
	ps := []float64{0, 0.25, 0.5, 0.75}
	outs := runner.Map(ps, func(_ int, p float64) curveOut { return curve(p) })
	for _, o := range outs {
		res.Curves = append(res.Curves, o.curve)
		res.IdleTemp = o.idle // shared config: identical across curves
	}
	return res
}

// String renders the curves as ASCII charts with their plateaus.
func (r Figure2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2: core temperature rise over idle, cpuburn, L=100ms (%v run, idle=%.1fC)\n",
		r.Duration, float64(r.IdleTemp))
	for _, c := range r.Curves {
		fmt.Fprintf(&b, "\np=%.2f  final rise %.2fC\n", c.P, c.FinalRise)
		b.WriteString(c.Rise.ASCII(72, 8))
	}
	return b.String()
}
