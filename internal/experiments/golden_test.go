package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// Golden-trace regression fixtures: the rendered output of every figure and
// table harness at a small fixed scale is committed under testdata/ and
// diffed on every test run. The simulator is deterministic end to end, so
// any byte of drift is a behaviour change — either a bug or an intentional
// model change, in which case regenerate with:
//
//	UPDATE_GOLDEN=1 go test ./internal/experiments -run TestGoldenTraces
//
// and review the fixture diff like any other code change.

// goldenScale matches the CI determinism run: small enough to stay fast,
// large enough that every sweep arm contributes rows.
const goldenScale = Scale(0.05)

var goldenRuns = map[string]func() string{
	"fig1":   func() string { return RunFigure1(goldenScale).String() },
	"fig2":   func() string { return RunFigure2(goldenScale).String() },
	"fig3":   func() string { return RunFigure3(goldenScale).String() },
	"fig4":   func() string { return RunFigure4(goldenScale).String() },
	"fig5":   func() string { return RunFigure5(goldenScale).String() },
	"fig6":   func() string { return RunFigure6(goldenScale).String() },
	"table1": func() string { return RunTable1(goldenScale).String() },
}

// checkGolden diffs got against dir/<name>.golden, rewriting the fixture
// instead when UPDATE_GOLDEN is set. (The scenario package carries its own
// copy of this small helper rather than a cross-package test dependency.)
func checkGolden(t *testing.T, dir, name, got string) {
	t.Helper()
	path := filepath.Join(dir, name+".golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture %s — regenerate with UPDATE_GOLDEN=1 go test ./... -run Golden", path)
	}
	if got != string(want) {
		t.Errorf("output drifted from %s:\n%s\n(if intentional: UPDATE_GOLDEN=1 go test ./... -run Golden)", path, firstDiff(string(want), got))
	}
}

// firstDiff renders the first differing line for a readable failure.
func firstDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			return fmt.Sprintf("line %d:\n-%s\n+%s", i+1, w, g)
		}
	}
	return "(lengths differ)"
}

func TestGoldenTraces(t *testing.T) {
	ids := make([]string, 0, len(goldenRuns))
	for id := range goldenRuns {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		run := goldenRuns[id]
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			checkGolden(t, "testdata", id, run())
		})
	}
}
