package experiments

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/runner"
	"repro/internal/sched"
	"repro/internal/units"
	"repro/internal/workload"
)

// Process IDs used by the Figure 5 scenario.
const (
	HotProcessID  = 1 // four instances of calculix, continuously CPU-bound
	CoolProcessID = 2 // periodic short-running burst (6 s burn, 60 s sleep)
)

// Figure5Point is one configuration's outcome: the system temperature
// reduction achieved and the throughput retained by the cool process.
type Figure5Point struct {
	Label          string
	TempReduction  float64
	CoolThroughput float64 // fraction of the cool process's baseline rate
}

// Figure5Result holds the global-versus-per-thread comparison of Figure 5.
type Figure5Result struct {
	Global    []Figure5Point
	PerThread []Figure5Point
	// Boundaries: Pareto frontiers maximising both axes.
	GlobalPareto    []Figure5Point
	PerThreadPareto []Figure5Point
	BaseCoolRate    float64
}

// RunFigure5 reproduces Figure 5: a thermally heterogeneous mix — a "hot"
// process (four calculix instances) co-located with a periodic "cool"
// process — managed either by a system-wide policy or by a per-process
// policy that targets only the hot process. With per-thread control the cool
// process runs essentially uninterrupted while system temperature drops;
// with global control it is unfairly penalised for the hot process's heat.
func RunFigure5(scale Scale) Figure5Result {
	duration := scale.seconds(600)
	warm := duration / 10

	calculix, err := workload.FindSpec("calculix")
	if err != nil {
		panic(err)
	}

	type outcome struct {
		meanTemp units.Celsius
		idleTemp units.Celsius
		coolRate float64
	}
	run := func(params core.Params, perThread bool, seed uint64) outcome {
		cfg := machine.DefaultConfig()
		cfg.Meter.Disabled = true
		cfg.Seed = seed
		m := machine.New(cfg)
		if params.Enabled() {
			ctl := core.NewController(m.RNG.Split())
			if perThread {
				if err := ctl.SetProcess(HotProcessID, params); err != nil {
					panic(err)
				}
			} else {
				if err := ctl.SetGlobal(params); err != nil {
					panic(err)
				}
			}
			m.Sched.SetInjector(ctl)
		}
		workload.SpawnSpec(m.Sched, calculix, HotProcessID, m.Chip.NumCores())
		m.Sched.Spawn(workload.PeriodicBurst(6.0, 60*units.Second), sched.SpawnConfig{
			Name:        "cool",
			ProcessID:   CoolProcessID,
			PowerFactor: 1.0,
		})
		m.RunUntil(warm)
		i0 := m.MeanJunctionIntegral()
		c0 := m.ProcessWorkDone(CoolProcessID)
		t0 := m.Now()
		m.RunUntil(duration)
		i1 := m.MeanJunctionIntegral()
		c1 := m.ProcessWorkDone(CoolProcessID)
		t1 := m.Now()
		secs := (t1 - t0).Seconds()
		return outcome{
			meanTemp: units.Celsius((i1 - i0) / secs),
			idleTemp: m.IdleJunctionTemp(),
			coolRate: (c1 - c0) / secs,
		}
	}

	// The baseline plus the p×L×{global,per-thread} sweep as one trial
	// list, seeds assigned in the sequential submission order.
	type f5Spec struct {
		params    core.Params
		perThread bool
		seed      uint64
	}
	specs := []f5Spec{{core.Params{}, false, 500}}
	seed := uint64(50000)
	for _, p := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		for _, l := range []units.Time{10 * units.Millisecond, 50 * units.Millisecond, 100 * units.Millisecond} {
			for _, perThread := range []bool{false, true} {
				seed++
				specs = append(specs, f5Spec{core.Params{P: p, L: l}, perThread, seed})
			}
		}
	}
	outs := runner.Map(specs, func(_ int, s f5Spec) outcome {
		return run(s.params, s.perThread, s.seed)
	})
	base := outs[0]
	baseRise := float64(base.meanTemp - base.idleTemp)

	var res Figure5Result
	res.BaseCoolRate = base.coolRate
	for i, s := range specs[1:] {
		o := outs[i+1]
		pt := Figure5Point{
			Label:          s.params.String(),
			TempReduction:  float64(base.meanTemp-o.meanTemp) / baseRise,
			CoolThroughput: o.coolRate / base.coolRate,
		}
		if s.perThread {
			res.PerThread = append(res.PerThread, pt)
		} else {
			res.Global = append(res.Global, pt)
		}
	}
	res.GlobalPareto = fig5Pareto(res.Global)
	res.PerThreadPareto = fig5Pareto(res.PerThread)
	return res
}

// fig5Pareto keeps points not dominated in (max TempReduction, max
// CoolThroughput), sorted by temperature reduction.
func fig5Pareto(points []Figure5Point) []Figure5Point {
	conv := make([]analysis.TradeoffPoint, len(points))
	for i, p := range points {
		conv[i] = analysis.TradeoffPoint{
			Label:         p.Label,
			TempReduction: p.TempReduction,
			PerfReduction: 1 - p.CoolThroughput,
		}
	}
	front := analysis.ParetoFrontier(conv)
	out := make([]Figure5Point, len(front))
	for i, p := range front {
		out[i] = Figure5Point{Label: p.Label, TempReduction: p.TempReduction, CoolThroughput: 1 - p.PerfReduction}
	}
	return out
}

// String renders both boundaries.
func (r Figure5Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 5: global versus thread-specific control (cool process throughput)\n")
	write := func(name string, pts []Figure5Point) {
		fmt.Fprintf(&b, "\n%s pareto boundary:\n", name)
		for _, p := range pts {
			fmt.Fprintf(&b, "  temp reduction %5.1f%%  cool throughput %6.1f%%  (%s)\n",
				100*p.TempReduction, 100*p.CoolThroughput, p.Label)
		}
	}
	write("per-thread", r.PerThreadPareto)
	write("global", r.GlobalPareto)
	b.WriteString("\n(paper: with thread-specific control the cool process runs uninterrupted\n")
	b.WriteString(" while system temperature is lowered; global policies penalise it)\n")
	return b.String()
}
