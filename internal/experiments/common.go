// Package experiments contains one harness per table and figure of the
// paper's evaluation (§3). Each harness builds fresh simulated testbeds, runs
// the paper's workloads under the technique sweep in question, and returns
// structured results whose String methods print the same rows or series the
// paper reports. DESIGN.md §3 maps every harness to its paper artefact.
package experiments

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/dtm"
	"repro/internal/machine"
	"repro/internal/runner"
	"repro/internal/sched"
	"repro/internal/units"
	"repro/internal/workload"
)

// Scale shrinks experiment durations and trial counts so the benchmark
// harness finishes quickly; 1.0 reproduces the paper's full durations.
type Scale float64

// Full is the paper-duration scale.
const Full Scale = 1.0

// Quick is the scale used by `go test` integration tests.
const Quick Scale = 0.1

// seconds returns d scaled, with a floor so windows never collapse to zero.
func (s Scale) seconds(d float64) units.Time {
	v := d * float64(s)
	if v < 2 {
		v = 2
	}
	return units.FromSeconds(v)
}

// trials scales a trial count, flooring at 3.
func (s Scale) trials(n int) int {
	v := int(float64(n) * float64(s))
	if v < 3 {
		v = 3
	}
	return v
}

// SteadyRun measures one technique under a steady workload: it runs the
// workload for settle+window seconds and reports the time-weighted mean
// junction temperature and aggregate work rate over the final window —
// mirroring §3.4's "average temperature over the last 30 seconds of a 300
// second execution".
type SteadyResult struct {
	MeanJunction units.Celsius // time-weighted mean over the window
	WorkRate     float64       // reference-seconds of work per second
	MeanPower    units.Watts   // mean package power over the window
	IdleTemp     units.Celsius // all-idle equilibrium of the same machine
}

// SpawnFunc populates a machine with workload threads.
type SpawnFunc func(m *machine.Machine)

// SpawnBurnPerCore returns a SpawnFunc starting one infinite CPU-bound
// thread per core with the given power factor (the paper's "four instances,
// one per core").
func SpawnBurnPerCore(powerFactor float64) SpawnFunc {
	return func(m *machine.Machine) {
		for i := 0; i < m.Chip.NumCores(); i++ {
			m.Sched.Spawn(workload.Burn(), sched.SpawnConfig{
				Name:        fmt.Sprintf("burn-%d", i),
				PowerFactor: powerFactor,
			})
		}
	}
}

// RunSteady builds a machine from cfg, applies the technique, spawns the
// workload, and measures the final window. The simulated power meter is
// switched off: every SteadyResult field derives from the exact accumulator
// and temperature integrals, and skipping the instrument chain's 3 kHz noise
// draws roughly halves the cost of a trial without changing any output.
func RunSteady(cfg machine.Config, tech dtm.Technique, spawn SpawnFunc, settle, window units.Time) SteadyResult {
	cfg.Meter.Disabled = true
	m := machine.New(cfg)
	if err := tech.Apply(m); err != nil {
		panic(fmt.Sprintf("experiments: applying %s: %v", tech.Label(), err))
	}
	spawn(m)
	m.RunFor(settle)
	i0 := m.MeanJunctionIntegral()
	w0 := m.TotalWorkDone()
	e0 := m.Energy.Energy()
	t0 := m.Now()
	m.RunFor(window)
	i1 := m.MeanJunctionIntegral()
	w1 := m.TotalWorkDone()
	e1 := m.Energy.Energy()
	t1 := m.Now()
	secs := (t1 - t0).Seconds()
	return SteadyResult{
		MeanJunction: units.Celsius((i1 - i0) / secs),
		WorkRate:     (w1 - w0) / secs,
		MeanPower:    units.Watts(float64(e1-e0) / secs),
		IdleTemp:     m.IdleJunctionTemp(),
	}
}

// SteadyTrial is one self-contained RunSteady invocation: everything a
// worker needs to execute the trial, including the explicit seed inside Cfg.
// Trials must never share stochastic state — the runner executes them
// concurrently in submission order.
type SteadyTrial struct {
	Cfg            machine.Config
	Tech           dtm.Technique
	Spawn          SpawnFunc
	Settle, Window units.Time
}

// RunSteadyAll executes the trials across the runner's worker pool and
// returns their results indexed like trials. Output is independent of the
// parallelism level because each trial is a deterministic function of its
// spec alone.
func RunSteadyAll(trials []SteadyTrial) []SteadyResult {
	return runner.Map(trials, func(_ int, t SteadyTrial) SteadyResult {
		return RunSteady(t.Cfg, t.Tech, t.Spawn, t.Settle, t.Window)
	})
}

// Tradeoff converts a policy run and its unconstrained baseline into the
// paper's (temperature reduction, performance reduction) coordinates:
//
//	r    = (T_baseline − T_policy) / (T_baseline − T_idle)
//	T(r) = 1 − rate_policy/rate_baseline
func Tradeoff(label string, baseline, policy SteadyResult) analysis.TradeoffPoint {
	rise := float64(baseline.MeanJunction - baseline.IdleTemp)
	var r float64
	if rise > 0 {
		r = float64(baseline.MeanJunction-policy.MeanJunction) / rise
	}
	var perf float64
	if baseline.WorkRate > 0 {
		perf = 1 - policy.WorkRate/baseline.WorkRate
	}
	return analysis.TradeoffPoint{Label: label, TempReduction: r, PerfReduction: perf}
}
