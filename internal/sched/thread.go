// Package sched implements the operating-system scheduler substrate that
// Dimetrodon plugs into: kernel and user threads, a global run queue in the
// style of the 4.4BSD scheduler the paper modified (fixed 100 ms timeslice,
// FIFO round-robin within priority), per-core dispatch, sleep/wake, thread
// pinning, preemption by kernel threads, and context-switch accounting.
//
// The paper's mechanism is reproduced at the same point in the kernel: every
// time a core is about to dispatch a thread, an attached Injector (the
// Dimetrodon policy) may decide to pin the chosen thread and run the idle
// thread for an idle quantum instead, after which the thread is unpinned and
// made runnable again.
package sched

import (
	"fmt"

	"repro/internal/simclock"
	"repro/internal/units"
)

// ActionKind enumerates what a thread's program wants to do next.
type ActionKind int

const (
	// ActCompute runs on the CPU for Action.Work reference-seconds.
	ActCompute ActionKind = iota
	// ActSleep blocks the thread for Action.Duration of virtual time.
	ActSleep
	// ActBlock parks the thread until an external Wake call (used by
	// server worker threads waiting for requests).
	ActBlock
	// ActExit terminates the thread.
	ActExit
)

// Action is one step of a thread's life, produced by its Program.
type Action struct {
	Kind     ActionKind
	Work     float64    // reference-seconds of CPU demand (ActCompute)
	Duration units.Time // sleep length (ActSleep)
}

// Compute returns an ActCompute action for w reference-seconds.
func Compute(w float64) Action { return Action{Kind: ActCompute, Work: w} }

// Sleep returns an ActSleep action.
func Sleep(d units.Time) Action { return Action{Kind: ActSleep, Duration: d} }

// Block returns an ActBlock action.
func Block() Action { return Action{Kind: ActBlock} }

// Exit returns an ActExit action.
func Exit() Action { return Action{Kind: ActExit} }

// Program drives a thread's demand for CPU time. Next is called whenever the
// previous action has finished (and once at spawn); it may consult the
// current virtual time. Programs are single-threaded with respect to their
// thread and need no locking.
type Program interface {
	Next(now units.Time) Action
}

// ProgramFunc adapts a function to the Program interface.
type ProgramFunc func(now units.Time) Action

// Next implements Program.
func (f ProgramFunc) Next(now units.Time) Action { return f(now) }

// ThreadState is a thread's scheduling state.
type ThreadState int

const (
	// StateRunnable means the thread is waiting in the run queue.
	StateRunnable ThreadState = iota
	// StateRunning means the thread occupies a core.
	StateRunning
	// StateSleeping means the thread is blocked (timed or indefinite).
	StateSleeping
	// StatePinned means an injected idle quantum displaced the thread: it
	// is held by one core (no other core may run it) until the quantum
	// ends.
	StatePinned
	// StateExited means the thread has terminated.
	StateExited
)

// String returns the state name.
func (s ThreadState) String() string {
	switch s {
	case StateRunnable:
		return "runnable"
	case StateRunning:
		return "running"
	case StateSleeping:
		return "sleeping"
	case StatePinned:
		return "pinned"
	case StateExited:
		return "exited"
	default:
		return fmt.Sprintf("ThreadState(%d)", int(s))
	}
}

// Thread is one schedulable entity.
type Thread struct {
	ID        int
	Name      string
	ProcessID int  // process grouping, used by per-process policies
	Kernel    bool // kernel-level thread (interrupt handlers, daemons)
	// Priority orders dispatch: lower values run first. Kernel threads
	// conventionally use PriorityKernel, user threads PriorityUser.
	Priority int
	// PowerFactor is the activity factor of this thread's code while it
	// runs: cpuburn is 1.0, cooler workloads less. It feeds the CPU power
	// model.
	PowerFactor float64

	prog  Program
	state ThreadState

	remaining float64 // reference-seconds left of the current compute action

	// Statistics.
	CPUTime     units.Time // time occupying a core (includes switch cost)
	WorkDone    float64    // reference-seconds of completed computation
	Dispatches  int        // times chosen by the dispatcher
	Injections  int        // times displaced by an injected idle quantum
	Preemptions int        // times preempted before its quantum ended
	SpawnedAt   units.Time
	ExitedAt    units.Time

	onCore    int // core index while running; -1 otherwise
	affinity  int // ULE-style home queue; -1 until first placement
	enqSeq    uint64
	wakeEvent *simclock.Event
	// Pre-built event labels and wake callback: timer arming sits on the
	// dispatch hot path, so the per-arm string concatenation and closure
	// capture are paid once per thread instead of once per event.
	workLabel  string
	quantLabel string
	wakeLabel  string
	wakeFn     func(now units.Time)
	runStart   units.Time // when the current occupancy began
	runRate    float64    // progress rate captured at dispatch
	switchPad  units.Time // leading context-switch cost of this occupancy
}

// Default priorities; lower runs first.
const (
	PriorityKernel = 0
	PriorityUser   = 20
)

// State returns the thread's scheduling state.
func (t *Thread) State() ThreadState { return t.state }

// Runtime returns how long the thread has existed (until exit, if exited).
func (t *Thread) Runtime(now units.Time) units.Time {
	end := now
	if t.state == StateExited {
		end = t.ExitedAt
	}
	return end - t.SpawnedAt
}

// Exited reports whether the thread has terminated.
func (t *Thread) Exited() bool { return t.state == StateExited }

// Remaining returns the reference-seconds left of the thread's current
// compute action (0 when sleeping, blocked or exited). Flush scheduler
// accounting (ChargeAll) first for an exact answer at a measurement boundary.
func (t *Thread) Remaining() float64 { return t.remaining }
