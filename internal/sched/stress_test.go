package sched

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/simclock"
	"repro/internal/units"
)

// randomProgram produces a random but deterministic mix of compute, sleep,
// block and (eventually) exit actions, driven by its own RNG substream.
type randomProgram struct {
	r        *rng.Source
	steps    int
	maxSteps int
}

func (p *randomProgram) Next(now units.Time) Action {
	p.steps++
	if p.steps > p.maxSteps {
		return Exit()
	}
	switch x := p.r.Float64(); {
	case x < 0.6:
		return Compute(0.001 + p.r.Float64()*0.2)
	case x < 0.85:
		return Sleep(units.FromMilliseconds(p.r.Float64() * 150))
	default:
		// Short timed sleep standing in for blocking I/O (external
		// wakes are covered by the webserver tests).
		return Sleep(units.FromMilliseconds(1 + p.r.Float64()*20))
	}
}

// randomInjector injects with random probabilities and lengths.
type randomInjector struct {
	r *rng.Source
}

func (ri *randomInjector) Decide(t *Thread, core int, now units.Time) (units.Time, bool) {
	if t.Kernel {
		return 0, false
	}
	if ri.r.Float64() < 0.3 {
		return units.FromMilliseconds(0.5 + ri.r.Float64()*80), true
	}
	return 0, false
}

// TestRandomizedStress drives many random workloads through the scheduler
// with random injection and verifies the global invariants after every run:
//
//   - work conservation: total completed work never exceeds cores × elapsed;
//   - accounting: every thread's WorkDone matches what its programs asked
//     for once it exits;
//   - state sanity: threads end runnable/sleeping/running/exited, never in
//     a corrupt state; pinned threads always resume;
//   - no stuck cores: with runnable threads queued, busy time accumulates.
func TestRandomizedStress(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			seed := rng.New(uint64(1000 + trial))
			clock := &simclock.Clock{}
			cores := 1 + seed.Intn(4)
			cfg := Config{
				Cores:          cores,
				Timeslice:      units.FromMilliseconds(20 + float64(seed.Intn(100))),
				CtxSwitch:      units.Time(seed.Intn(50)) * units.Microsecond,
				InjectOverhead: units.Time(seed.Intn(100)) * units.Microsecond,
			}
			s := New(clock, cfg, nil, nil)
			if trial%2 == 0 {
				s.SetInjector(&randomInjector{r: seed.Split()})
			}
			nThreads := 1 + seed.Intn(8)
			for i := 0; i < nThreads; i++ {
				s.Spawn(&randomProgram{r: seed.Split(), maxSteps: 10 + seed.Intn(40)},
					SpawnConfig{Name: fmt.Sprintf("w%d", i)})
			}
			horizon := units.FromSeconds(5 + float64(seed.Intn(20)))
			clock.AdvanceTo(horizon, nil)
			s.ChargeAll()

			var totalWork float64
			for _, th := range s.Threads() {
				totalWork += th.WorkDone
				if th.WorkDone < -1e-9 {
					t.Fatalf("%s: negative work %v", th.Name, th.WorkDone)
				}
				if th.CPUTime < 0 || th.CPUTime > horizon {
					t.Fatalf("%s: CPU time %v outside [0,%v]", th.Name, th.CPUTime, horizon)
				}
				switch th.State() {
				case StateRunnable, StateRunning, StateSleeping, StateExited, StatePinned:
				default:
					t.Fatalf("%s: corrupt state %v", th.Name, th.State())
				}
				if th.Exited() && th.ExitedAt > horizon {
					t.Fatalf("%s: exited in the future", th.Name)
				}
			}
			capacity := float64(cores) * horizon.Seconds()
			if totalWork > capacity+1e-6 {
				t.Fatalf("work %v exceeds capacity %v", totalWork, capacity)
			}
			var busy, injected units.Time
			for c := 0; c < cores; c++ {
				b, inj := s.Core(c)
				busy += b
				injected += inj
			}
			if busy+injected > units.Time(cores)*horizon {
				t.Fatalf("occupancy %v exceeds wall capacity", busy+injected)
			}
			// CPU time across threads matches core busy accounting.
			var cpuSum units.Time
			for _, th := range s.Threads() {
				cpuSum += th.CPUTime
			}
			if d := math.Abs(float64(cpuSum - busy)); d > float64(units.Millisecond) {
				t.Fatalf("thread CPU sum %v != core busy %v", cpuSum, busy)
			}
		})
	}
}

// TestStressDeterminism re-runs one stress configuration and requires
// identical final accounting.
func TestStressDeterminism(t *testing.T) {
	run := func() (float64, units.Time, int) {
		seed := rng.New(4242)
		clock := &simclock.Clock{}
		s := New(clock, Config{
			Cores:          3,
			Timeslice:      50 * units.Millisecond,
			CtxSwitch:      20 * units.Microsecond,
			InjectOverhead: 40 * units.Microsecond,
		}, nil, nil)
		s.SetInjector(&randomInjector{r: seed.Split()})
		for i := 0; i < 6; i++ {
			s.Spawn(&randomProgram{r: seed.Split(), maxSteps: 30},
				SpawnConfig{Name: fmt.Sprintf("w%d", i)})
		}
		clock.AdvanceTo(20*units.Second, nil)
		s.ChargeAll()
		var work float64
		var cpu units.Time
		exited := 0
		for _, th := range s.Threads() {
			work += th.WorkDone
			cpu += th.CPUTime
			if th.Exited() {
				exited++
			}
		}
		return work, cpu, exited
	}
	w1, c1, e1 := run()
	w2, c2, e2 := run()
	if w1 != w2 || c1 != c2 || e1 != e2 {
		t.Errorf("stress runs diverged: (%v,%v,%d) vs (%v,%v,%d)", w1, c1, e1, w2, c2, e2)
	}
}
