package sched

import (
	"math"
	"testing"

	"repro/internal/simclock"
	"repro/internal/units"
)

// testRig bundles a clock and scheduler with an event-recording listener.
type testRig struct {
	clock *simclock.Clock
	s     *Scheduler
	runs  []string // "core:thread" occupancy log
	idles []string // "core:injected?" idle log
	exits []string
}

func newRig(cfg Config) *testRig {
	r := &testRig{clock: &simclock.Clock{}}
	r.s = New(r.clock, cfg, r, nil)
	return r
}

func (r *testRig) CoreRunning(core int, t *Thread) {
	r.runs = append(r.runs, t.Name)
}
func (r *testRig) CoreIdle(core int, injected bool) {
	if injected {
		r.idles = append(r.idles, "inj")
	} else {
		r.idles = append(r.idles, "nat")
	}
}
func (r *testRig) ThreadExited(t *Thread) { r.exits = append(r.exits, t.Name) }

func (r *testRig) runUntil(t units.Time) { r.clock.AdvanceTo(t, nil) }

// finiteProgram computes the given work then exits.
func finiteProgram(work float64) Program {
	done := false
	return ProgramFunc(func(units.Time) Action {
		if done {
			return Exit()
		}
		done = true
		return Compute(work)
	})
}

func oneCore() Config {
	return Config{Cores: 1, Timeslice: 100 * units.Millisecond}
}

func TestSingleThreadExactRuntime(t *testing.T) {
	r := newRig(oneCore())
	th := r.s.Spawn(finiteProgram(0.5), SpawnConfig{Name: "a"})
	r.runUntil(2 * units.Second)
	if !th.Exited() {
		t.Fatal("thread did not exit")
	}
	// No context switch configured: exactly 0.5 s of virtual time.
	if th.ExitedAt != 500*units.Millisecond {
		t.Errorf("exited at %v, want 500ms", th.ExitedAt)
	}
	if math.Abs(th.WorkDone-0.5) > 1e-9 {
		t.Errorf("WorkDone = %v", th.WorkDone)
	}
	if th.CPUTime != 500*units.Millisecond {
		t.Errorf("CPUTime = %v", th.CPUTime)
	}
}

func TestContextSwitchCost(t *testing.T) {
	cfg := oneCore()
	cfg.CtxSwitch = units.Millisecond
	r := newRig(cfg)
	th := r.s.Spawn(finiteProgram(0.05), SpawnConfig{Name: "a"})
	r.runUntil(time(1))
	// One switch onto the core: 1 ms + 50 ms of work.
	if th.ExitedAt != 51*units.Millisecond {
		t.Errorf("exited at %v, want 51ms", th.ExitedAt)
	}
}

func time(s float64) units.Time { return units.FromSeconds(s) }

func TestTimesliceRoundRobin(t *testing.T) {
	r := newRig(oneCore())
	a := r.s.Spawn(finiteProgram(0.25), SpawnConfig{Name: "a"})
	b := r.s.Spawn(finiteProgram(0.25), SpawnConfig{Name: "b"})
	r.runUntil(time(1))
	if !a.Exited() || !b.Exited() {
		t.Fatal("threads did not finish")
	}
	// Interleaved at 100 ms quanta: a runs [0,100), b [100,200), ...
	// a finishes its 250 ms of work at t=450ms, b at t=500ms.
	if a.ExitedAt != 450*units.Millisecond {
		t.Errorf("a exited at %v", a.ExitedAt)
	}
	if b.ExitedAt != 500*units.Millisecond {
		t.Errorf("b exited at %v", b.ExitedAt)
	}
	// Fairness: equal CPU time.
	if a.CPUTime != b.CPUTime {
		t.Errorf("CPU times differ: %v vs %v", a.CPUTime, b.CPUTime)
	}
}

func TestMultiCorePlacement(t *testing.T) {
	cfg := Config{Cores: 4, Timeslice: 100 * units.Millisecond}
	r := newRig(cfg)
	var threads []*Thread
	for i := 0; i < 4; i++ {
		threads = append(threads, r.s.Spawn(finiteProgram(0.3), SpawnConfig{Name: "t"}))
	}
	r.runUntil(time(1))
	// All four should run in parallel and finish together at 300 ms.
	for i, th := range threads {
		if th.ExitedAt != 300*units.Millisecond {
			t.Errorf("thread %d exited at %v", i, th.ExitedAt)
		}
	}
}

func TestWorkConservation(t *testing.T) {
	// With more threads than cores, the cores must never idle while the
	// queue is non-empty: total work done equals cores × elapsed.
	cfg := Config{Cores: 2, Timeslice: 50 * units.Millisecond}
	r := newRig(cfg)
	for i := 0; i < 5; i++ {
		r.s.Spawn(ProgramFunc(func(units.Time) Action { return Compute(1) }), SpawnConfig{Name: "w"})
	}
	r.runUntil(time(3))
	r.s.ChargeAll()
	var total float64
	for _, th := range r.s.Threads() {
		total += th.WorkDone
	}
	if math.Abs(total-6) > 1e-6 { // 2 cores × 3 s
		t.Errorf("total work = %v, want 6", total)
	}
	for _, idle := range r.idles {
		if idle == "nat" {
			t.Error("a core went naturally idle while oversubscribed")
		}
	}
}

func TestSleepAndTimedWake(t *testing.T) {
	r := newRig(oneCore())
	phase := 0
	th := r.s.Spawn(ProgramFunc(func(units.Time) Action {
		phase++
		switch phase {
		case 1:
			return Compute(0.1)
		case 2:
			return Sleep(500 * units.Millisecond)
		case 3:
			return Compute(0.1)
		default:
			return Exit()
		}
	}), SpawnConfig{Name: "sleeper"})
	r.runUntil(time(2))
	if !th.Exited() {
		t.Fatal("did not exit")
	}
	// 100 ms work + 500 ms sleep + 100 ms work.
	if th.ExitedAt != 700*units.Millisecond {
		t.Errorf("exited at %v, want 700ms", th.ExitedAt)
	}
}

func TestBlockAndExternalWake(t *testing.T) {
	r := newRig(oneCore())
	phase := 0
	th := r.s.Spawn(ProgramFunc(func(units.Time) Action {
		phase++
		if phase == 1 {
			return Block()
		}
		if phase == 2 {
			return Compute(0.05)
		}
		return Exit()
	}), SpawnConfig{Name: "blocked"})
	r.runUntil(time(1))
	if th.Exited() {
		t.Fatal("blocked thread ran without wake")
	}
	if th.State() != StateSleeping {
		t.Fatalf("state = %v", th.State())
	}
	r.s.Wake(th)
	r.runUntil(time(2))
	if !th.Exited() {
		t.Fatal("woken thread did not finish")
	}
	if th.ExitedAt != time(1)+50*units.Millisecond {
		t.Errorf("exited at %v", th.ExitedAt)
	}
}

func TestWakeIdempotent(t *testing.T) {
	r := newRig(oneCore())
	th := r.s.Spawn(finiteProgram(0.5), SpawnConfig{Name: "busy"})
	r.runUntil(100 * units.Millisecond)
	r.s.Wake(th) // running: no-op
	r.runUntil(time(1))
	if !th.Exited() || th.WorkDone != 0.5 {
		t.Error("Wake on non-sleeping thread corrupted state")
	}
}

func TestWakeDoesNotShortCircuitTimedSleep(t *testing.T) {
	r := newRig(oneCore())
	phase := 0
	th := r.s.Spawn(ProgramFunc(func(units.Time) Action {
		phase++
		if phase == 1 {
			return Sleep(time(1))
		}
		return Exit()
	}), SpawnConfig{Name: "timed"})
	r.runUntil(100 * units.Millisecond)
	r.s.Wake(th) // must not bypass the timer
	r.runUntil(time(3))
	if th.ExitedAt != time(1) {
		t.Errorf("timed sleeper exited at %v, want 1s", th.ExitedAt)
	}
}

// fixedInjector injects deterministically on every n-th decision.
type fixedInjector struct {
	every   int
	count   int
	quantum units.Time
}

func (f *fixedInjector) Decide(t *Thread, core int, now units.Time) (units.Time, bool) {
	f.count++
	if f.count%f.every == 0 {
		return f.quantum, true
	}
	return 0, false
}

func TestInjectionPinsAndResumes(t *testing.T) {
	cfg := Config{Cores: 2, Timeslice: 100 * units.Millisecond}
	r := newRig(cfg)
	inj := &fixedInjector{every: 2, quantum: 50 * units.Millisecond}
	r.s.SetInjector(inj)
	a := r.s.Spawn(ProgramFunc(func(units.Time) Action { return Compute(1) }), SpawnConfig{Name: "a"})
	r.s.Spawn(ProgramFunc(func(units.Time) Action { return Compute(1) }), SpawnConfig{Name: "b"})
	r.runUntil(time(2))
	r.s.ChargeAll()
	if a.Injections == 0 {
		t.Fatal("no injections recorded")
	}
	if r.s.TotalInjections == 0 {
		t.Fatal("scheduler total injections zero")
	}
	// During injected quanta the victim must not have run elsewhere:
	// with 2 always-ready threads on 2 cores, any overlap would show up
	// as work exceeding cores × time.
	var total float64
	for _, th := range r.s.Threads() {
		total += th.WorkDone
	}
	if total > 4.0+1e-9 {
		t.Errorf("work %v exceeds capacity", total)
	}
	// Injected idle accounted.
	_, inj0 := r.s.Core(0)
	_, inj1 := r.s.Core(1)
	if inj0+inj1 == 0 {
		t.Error("no injected idle time accounted")
	}
}

func TestInjectionSlowsThroughputPredictably(t *testing.T) {
	// Deterministic injection every 2nd decision with L = q doubles the
	// runtime (§2.2's example with p = 50 %, modulo the first decision).
	cfg := oneCore()
	r := newRig(cfg)
	r.s.SetInjector(&fixedInjector{every: 2, quantum: 100 * units.Millisecond})
	th := r.s.Spawn(finiteProgram(1.0), SpawnConfig{Name: "a"})
	r.runUntil(time(5))
	if !th.Exited() {
		t.Fatal("did not exit")
	}
	expected := 2 * units.Second
	dev := math.Abs(float64(th.ExitedAt-expected)) / float64(expected)
	if dev > 0.08 {
		t.Errorf("runtime %v, want ≈%v", th.ExitedAt, expected)
	}
}

func TestInjectOverheadExtendsQuantum(t *testing.T) {
	cfg := oneCore()
	cfg.InjectOverhead = 10 * units.Millisecond
	r := newRig(cfg)
	r.s.SetInjector(&fixedInjector{every: 1, quantum: 40 * units.Millisecond})
	th := r.s.Spawn(finiteProgram(0.1), SpawnConfig{Name: "a"})
	// Every decision injects 40+10 ms, then the retry decision injects
	// again... every=1 means always inject, so the thread never runs.
	r.runUntil(time(1))
	if th.Exited() {
		t.Fatal("always-inject let the thread run")
	}
	if th.State() != StatePinned && th.State() != StateRunnable {
		t.Errorf("state = %v", th.State())
	}
	_, injIdle := r.s.Core(0)
	if injIdle == 0 {
		t.Error("no injected idle accumulated")
	}
}

func TestKernelPreemptsUserThread(t *testing.T) {
	r := newRig(oneCore())
	user := r.s.Spawn(ProgramFunc(func(units.Time) Action { return Compute(1) }),
		SpawnConfig{Name: "user"})
	r.runUntil(30 * units.Millisecond)
	kphase := 0
	kern := r.s.Spawn(ProgramFunc(func(units.Time) Action {
		kphase++
		if kphase == 1 {
			return Compute(0.001)
		}
		return Exit()
	}), SpawnConfig{Name: "irq", Kernel: true, Priority: PriorityKernel})
	r.runUntil(40 * units.Millisecond)
	if !kern.Exited() {
		t.Fatal("kernel thread did not run promptly")
	}
	if kern.ExitedAt != 31*units.Millisecond {
		t.Errorf("kernel exited at %v, want 31ms", kern.ExitedAt)
	}
	if user.Preemptions != 1 {
		t.Errorf("user preemptions = %d", user.Preemptions)
	}
}

func TestUserWakeDoesNotPreempt(t *testing.T) {
	r := newRig(oneCore())
	runner := r.s.Spawn(ProgramFunc(func(units.Time) Action { return Compute(1) }),
		SpawnConfig{Name: "runner"})
	phase := 0
	waker := r.s.Spawn(ProgramFunc(func(units.Time) Action {
		phase++
		if phase == 1 {
			return Sleep(10 * units.Millisecond)
		}
		return Compute(1)
	}), SpawnConfig{Name: "waker"})
	r.runUntil(50 * units.Millisecond)
	// waker woke at 10 ms but must wait for the quantum boundary.
	if waker.Dispatches != 0 {
		t.Errorf("user thread preempted a peer (dispatches=%d)", waker.Dispatches)
	}
	if runner.Preemptions != 0 {
		t.Errorf("runner preempted by user wake")
	}
}

func TestQueueOrdering(t *testing.T) {
	var q runQueue
	a := &Thread{Name: "a", Priority: 20}
	b := &Thread{Name: "b", Priority: 20}
	k := &Thread{Name: "k", Priority: 0}
	q.push(a)
	q.push(b)
	q.push(k)
	if got := q.pop(); got != k {
		t.Errorf("pop = %v, want kernel thread", got.Name)
	}
	if got := q.pop(); got != a {
		t.Errorf("pop = %v, want FIFO a", got.Name)
	}
	if q.peek() != b {
		t.Error("peek wrong")
	}
	if !q.remove(b) || q.len() != 0 {
		t.Error("remove failed")
	}
	if q.remove(b) {
		t.Error("double remove succeeded")
	}
	if q.pop() != nil || q.peek() != nil {
		t.Error("empty queue returned a thread")
	}
}

func TestChargeAllMidQuantum(t *testing.T) {
	r := newRig(oneCore())
	th := r.s.Spawn(finiteProgram(1.0), SpawnConfig{Name: "a"})
	r.runUntil(50 * units.Millisecond)
	r.s.ChargeAll()
	if math.Abs(th.WorkDone-0.05) > 1e-9 {
		t.Errorf("mid-quantum WorkDone = %v, want 0.05", th.WorkDone)
	}
	// Charging must not corrupt the completion schedule.
	r.runUntil(time(2))
	if th.ExitedAt != time(1) {
		t.Errorf("exited at %v after mid-quantum charge", th.ExitedAt)
	}
}

func TestProgramSequences(t *testing.T) {
	// compute → sleep → compute → exit, with work spanning quanta.
	r := newRig(oneCore())
	seq := []Action{Compute(0.15), Sleep(50 * units.Millisecond), Compute(0.02), Exit()}
	i := 0
	th := r.s.Spawn(ProgramFunc(func(units.Time) Action {
		a := seq[i]
		i++
		return a
	}), SpawnConfig{Name: "seq"})
	r.runUntil(time(1))
	if !th.Exited() {
		t.Fatal("sequence did not finish")
	}
	want := 150*units.Millisecond + 50*units.Millisecond + 20*units.Millisecond
	if th.ExitedAt != want {
		t.Errorf("exited at %v, want %v", th.ExitedAt, want)
	}
	if math.Abs(th.WorkDone-0.17) > 1e-9 {
		t.Errorf("WorkDone = %v", th.WorkDone)
	}
}

func TestZeroWorkComputeExits(t *testing.T) {
	r := newRig(oneCore())
	th := r.s.Spawn(ProgramFunc(func(units.Time) Action { return Compute(0) }),
		SpawnConfig{Name: "zero"})
	if !th.Exited() {
		t.Error("zero-work compute did not degenerate to exit")
	}
}

func TestImmediateExit(t *testing.T) {
	r := newRig(oneCore())
	th := r.s.Spawn(ProgramFunc(func(units.Time) Action { return Exit() }),
		SpawnConfig{Name: "gone"})
	if !th.Exited() || len(r.exits) != 1 {
		t.Error("immediate exit not handled")
	}
	if th.Runtime(r.clock.Now()) != 0 {
		t.Errorf("Runtime = %v", th.Runtime(r.clock.Now()))
	}
}

func TestSpawnDefaults(t *testing.T) {
	r := newRig(oneCore())
	th := r.s.Spawn(finiteProgram(0.01), SpawnConfig{})
	if th.Name == "" {
		t.Error("no default name")
	}
	if th.Priority != PriorityUser {
		t.Errorf("default priority = %d", th.Priority)
	}
	if th.PowerFactor != 1 {
		t.Errorf("default power factor = %v", th.PowerFactor)
	}
	k := r.s.Spawn(finiteProgram(0.01), SpawnConfig{Kernel: true})
	if k.Priority != PriorityKernel {
		t.Errorf("kernel default priority = %d", k.Priority)
	}
}

func TestSpawnNilProgramPanics(t *testing.T) {
	r := newRig(oneCore())
	defer func() {
		if recover() == nil {
			t.Error("nil program did not panic")
		}
	}()
	r.s.Spawn(nil, SpawnConfig{})
}

func TestConfigValidationPanics(t *testing.T) {
	for name, cfg := range map[string]Config{
		"no cores":     {Cores: 0, Timeslice: units.Millisecond},
		"no timeslice": {Cores: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			New(&simclock.Clock{}, cfg, nil, nil)
		}()
	}
}

func TestThreadStateString(t *testing.T) {
	states := []ThreadState{StateRunnable, StateRunning, StateSleeping, StatePinned, StateExited, ThreadState(42)}
	for _, s := range states {
		if s.String() == "" {
			t.Errorf("empty name for state %d", int(s))
		}
	}
}

func TestInPlaceContinuationSkipsDispatcher(t *testing.T) {
	// A program that strings small computes together must not pass
	// through the dispatcher (no injection opportunities) until its
	// quantum expires.
	cfg := oneCore()
	r := newRig(cfg)
	inj := &fixedInjector{every: 1000000, quantum: units.Millisecond} // count only
	r.s.SetInjector(inj)
	th := r.s.Spawn(ProgramFunc(func(units.Time) Action { return Compute(0.001) }),
		SpawnConfig{Name: "chunky"})
	r.runUntil(time(1)) // 10 quanta
	r.s.ChargeAll()
	// 1000 chunks of 1 ms in 1 s, but only ~10 dispatch decisions.
	if inj.count > 12 {
		t.Errorf("%d dispatcher passes, want ≈10 (quantum boundaries only)", inj.count)
	}
	if th.Dispatches > 12 {
		t.Errorf("Dispatches = %d", th.Dispatches)
	}
}
