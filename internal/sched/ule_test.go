package sched

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/simclock"
	"repro/internal/units"
)

func uleConfig(cores int) Config {
	return Config{Cores: cores, Timeslice: 100 * units.Millisecond, PerCPUQueues: true}
}

func TestULEWorkConservation(t *testing.T) {
	// Work stealing must keep cores busy: 5 threads on 2 cores complete
	// exactly cores × elapsed work.
	r := &testRig{clock: &simclock.Clock{}}
	r.s = New(r.clock, uleConfig(2), r, nil)
	for i := 0; i < 5; i++ {
		r.s.Spawn(ProgramFunc(func(units.Time) Action { return Compute(1) }), SpawnConfig{Name: "w"})
	}
	r.runUntil(time(3))
	r.s.ChargeAll()
	var total float64
	for _, th := range r.s.Threads() {
		total += th.WorkDone
	}
	if math.Abs(total-6) > 1e-6 {
		t.Errorf("total work = %v, want 6", total)
	}
	for _, idle := range r.idles {
		if idle == "nat" {
			t.Error("a core idled while work was queued")
		}
	}
}

func TestULEStealsWhenImbalanced(t *testing.T) {
	// All threads start with affinity to the least-loaded queue at spawn;
	// force imbalance by spawning while only core 0's queue exists to
	// drain, then verify steals happen.
	clock := &simclock.Clock{}
	s := New(clock, uleConfig(4), nil, nil)
	// 8 CPU-bound threads across 4 cores: placement spreads them 2 per
	// queue; when one queue's threads exit early the idle core steals.
	var threads []*Thread
	for i := 0; i < 8; i++ {
		work := 0.2
		if i < 2 {
			work = 0.05 // core 0's pair finishes quickly
		}
		threads = append(threads, s.Spawn(finiteProgram(work), SpawnConfig{Name: fmt.Sprintf("w%d", i)}))
	}
	clock.AdvanceTo(2*units.Second, nil)
	for _, th := range threads {
		if !th.Exited() {
			t.Fatalf("%s did not finish", th.Name)
		}
	}
	if s.Steals == 0 {
		t.Error("no steals despite imbalance")
	}
}

func TestULEAffinityKeepsThreadsHome(t *testing.T) {
	// With one thread per core and equal work, no steals should occur:
	// every requeue lands back on the same core's queue.
	clock := &simclock.Clock{}
	s := New(clock, uleConfig(4), nil, nil)
	for i := 0; i < 4; i++ {
		s.Spawn(ProgramFunc(func(units.Time) Action { return Compute(1) }), SpawnConfig{Name: "w"})
	}
	clock.AdvanceTo(5*units.Second, nil)
	if s.Steals != 0 {
		t.Errorf("%d steals in a balanced system", s.Steals)
	}
}

func TestULEInjectionBehavesLikeGlobalQueue(t *testing.T) {
	// Footnote 2's claim: the injection mechanism is scheduler-agnostic.
	// A deterministic injector must produce identical throughput under
	// both organisations for symmetric workloads.
	run := func(perCPU bool) float64 {
		clock := &simclock.Clock{}
		cfg := Config{Cores: 4, Timeslice: 100 * units.Millisecond, PerCPUQueues: perCPU}
		s := New(clock, cfg, nil, nil)
		s.SetInjector(&fixedInjector{every: 3, quantum: 50 * units.Millisecond})
		for i := 0; i < 4; i++ {
			s.Spawn(ProgramFunc(func(units.Time) Action { return Compute(1) }), SpawnConfig{Name: "w"})
		}
		clock.AdvanceTo(10*units.Second, nil)
		s.ChargeAll()
		var total float64
		for _, th := range s.Threads() {
			total += th.WorkDone
		}
		return total
	}
	global := run(false)
	ule := run(true)
	if math.Abs(global-ule)/global > 0.02 {
		t.Errorf("throughput differs across schedulers: global %v vs ULE %v", global, ule)
	}
}

func TestULERandomizedStress(t *testing.T) {
	// The randomized invariants hold under the per-CPU organisation too.
	for trial := 0; trial < 10; trial++ {
		seed := rng.New(uint64(7000 + trial))
		clock := &simclock.Clock{}
		cores := 2 + seed.Intn(3)
		cfg := Config{
			Cores:        cores,
			Timeslice:    units.FromMilliseconds(20 + float64(seed.Intn(100))),
			CtxSwitch:    units.Time(seed.Intn(50)) * units.Microsecond,
			PerCPUQueues: true,
		}
		s := New(clock, cfg, nil, nil)
		s.SetInjector(&randomInjector{r: seed.Split()})
		for i := 0; i < 2+seed.Intn(6); i++ {
			s.Spawn(&randomProgram{r: seed.Split(), maxSteps: 10 + seed.Intn(30)},
				SpawnConfig{Name: fmt.Sprintf("w%d", i)})
		}
		horizon := units.FromSeconds(5 + float64(seed.Intn(10)))
		clock.AdvanceTo(horizon, nil)
		s.ChargeAll()
		var total float64
		for _, th := range s.Threads() {
			total += th.WorkDone
		}
		if total > float64(cores)*horizon.Seconds()+1e-6 {
			t.Fatalf("trial %d: work %v exceeds capacity", trial, total)
		}
	}
}
