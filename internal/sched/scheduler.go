package sched

import (
	"fmt"

	"repro/internal/simclock"
	"repro/internal/units"
)

// Config holds scheduler parameters. The defaults mirror the paper's setup:
// the 4.4BSD scheduler's fixed 100 ms timeslice on a four-core machine.
type Config struct {
	Cores     int
	Timeslice units.Time
	// CtxSwitch is the CPU cost charged when a core switches between
	// different threads (cache and register state movement).
	CtxSwitch units.Time
	// InjectOverhead is the bookkeeping cost of an injected idle quantum
	// (pinning, state monitoring) added to the quantum's duration. It is
	// the source of the small measured-vs-model throughput deviation in
	// §3.3, which grows with injection probability.
	InjectOverhead units.Time
	// PerCPUQueues selects a ULE-style organisation — per-core run queues
	// with affinity placement and idle-time work stealing — instead of
	// the 4.4BSD global queue. The paper modified the 4.4BSD scheduler
	// "however the mechanism generalizes to ULE and other schedulers"
	// (§3.1, fn. 2); this option lets the harness check that claim: the
	// injection decision point is identical in both organisations.
	PerCPUQueues bool
}

// DefaultConfig returns the testbed configuration.
func DefaultConfig() Config {
	return Config{
		Cores:          4,
		Timeslice:      100 * units.Millisecond,
		CtxSwitch:      25 * units.Microsecond,
		InjectOverhead: 60 * units.Microsecond,
	}
}

// Injector decides, at each dispatch, whether to displace the chosen thread
// with an injected idle quantum. This is Dimetrodon's hook point (§3.1): the
// implementation in internal/core pins the thread and runs the idle thread
// for the returned duration. The dispatching core's index is provided so
// topology-aware policies (SMT idle co-scheduling, §3.2) can align quanta
// across sibling hardware contexts.
type Injector interface {
	Decide(t *Thread, core int, now units.Time) (idle units.Time, inject bool)
}

// Listener observes core occupancy changes; the machine layer uses it to
// drive the CPU power model.
type Listener interface {
	// CoreRunning fires when a core starts executing t (C0).
	CoreRunning(core int, t *Thread)
	// CoreIdle fires when a core goes idle; injected distinguishes a
	// Dimetrodon idle quantum from natural idleness.
	CoreIdle(core int, injected bool)
	// ThreadExited fires when a thread terminates.
	ThreadExited(t *Thread)
}

// RateProvider reports the current progress rate of an active core in
// reference-seconds of work per second of virtual time (1.0 at nominal
// frequency and full duty). The machine wires this to the chip so DVFS and
// TCC settings slow computation.
type RateProvider interface {
	ProgressRate() float64
}

type constRate float64

func (c constRate) ProgressRate() float64 { return float64(c) }

// timerKind labels what a core's pending timer event means.
type timerKind int

const (
	timerNone timerKind = iota
	timerWorkDone
	timerQuantum
	timerInjectEnd
)

// coreRun is one core's dispatch state.
type coreRun struct {
	id         int
	current    *Thread
	victim     *Thread // pinned thread during an injected idle quantum
	injected   bool
	lastThread *Thread
	quantumEnd units.Time
	timer      *simclock.Event
	kind       timerKind
	// fire is the core's pre-bound timer callback — timer arming is the
	// scheduler's hottest allocation site without it.
	fire func(now units.Time)

	// Occupancy accounting for invariant checks and Figure 1.
	BusyTime       units.Time
	InjectIdleTime units.Time
	busyStart      units.Time
	injectStart    units.Time
}

// Scheduler is the event-driven dispatch engine.
type Scheduler struct {
	cfg      Config
	clock    *simclock.Clock
	queues   []runQueue // one global queue, or one per core (ULE style)
	cores    []coreRun
	threads  []*Thread
	listener Listener
	rate     RateProvider
	injector Injector
	nextTID  int

	// TotalInjections counts injected idle quanta across all threads.
	TotalInjections int
	// Steals counts ULE-style work-steal migrations.
	Steals int
}

// New returns a scheduler on the given clock. listener may be nil; rate may
// be nil for a constant 1.0.
func New(clock *simclock.Clock, cfg Config, listener Listener, rate RateProvider) *Scheduler {
	if cfg.Cores <= 0 {
		panic(fmt.Sprintf("sched: %d cores", cfg.Cores))
	}
	if cfg.Timeslice <= 0 {
		panic("sched: non-positive timeslice")
	}
	if rate == nil {
		rate = constRate(1)
	}
	s := &Scheduler{cfg: cfg, clock: clock, listener: listener, rate: rate}
	s.cores = make([]coreRun, cfg.Cores)
	for i := range s.cores {
		s.cores[i] = coreRun{id: i}
		c := &s.cores[i]
		c.fire = func(units.Time) { s.onTimer(c) }
	}
	nq := 1
	if cfg.PerCPUQueues {
		nq = cfg.Cores
	}
	s.queues = make([]runQueue, nq)
	return s
}

// enqueue places a runnable thread on the appropriate queue: the global one,
// or (ULE style) the thread's affinity queue — the core it last ran on, or
// the shortest queue for fresh threads.
func (s *Scheduler) enqueue(t *Thread) {
	if !s.cfg.PerCPUQueues {
		s.queues[0].push(t)
		return
	}
	q := t.affinity
	if q < 0 || q >= len(s.queues) {
		// Fresh placement: least-loaded core, counting its occupant.
		q = 0
		best := s.coreLoad(0)
		for i := 1; i < len(s.queues); i++ {
			if l := s.coreLoad(i); l < best {
				q, best = i, l
			}
		}
		t.affinity = q
	}
	s.queues[q].push(t)
}

// coreLoad is a core's ULE load metric: queued threads plus its occupant.
func (s *Scheduler) coreLoad(i int) int {
	l := s.queues[i].len()
	if s.cores[i].current != nil || s.cores[i].injected {
		l++
	}
	return l
}

// popFor removes the best runnable thread for core c: its own queue first,
// then (ULE style) a steal from the longest other queue.
func (s *Scheduler) popFor(c *coreRun) *Thread {
	if !s.cfg.PerCPUQueues {
		return s.queues[0].pop()
	}
	if t := s.queues[c.id].pop(); t != nil {
		return t
	}
	victim := -1
	for i := range s.queues {
		if i == c.id {
			continue
		}
		if s.queues[i].len() > 0 && (victim < 0 || s.queues[i].len() > s.queues[victim].len()) {
			victim = i
		}
	}
	if victim < 0 {
		return nil
	}
	t := s.queues[victim].pop()
	if t != nil {
		t.affinity = c.id
		s.Steals++
	}
	return t
}

// SetInjector installs (or clears, with nil) the idle-injection policy.
func (s *Scheduler) SetInjector(inj Injector) { s.injector = inj }

// Injector returns the installed idle-injection policy, or nil.
func (s *Scheduler) Injector() Injector { return s.injector }

// Threads returns all spawned threads.
func (s *Scheduler) Threads() []*Thread { return s.threads }

// Core returns core i's occupancy counters (busy and injected-idle time so
// far, not counting an in-progress interval).
func (s *Scheduler) Core(i int) (busy, injectedIdle units.Time) {
	return s.cores[i].BusyTime, s.cores[i].InjectIdleTime
}

// NextEventHorizon returns the earliest virtual time at which the scheduler
// itself will next act — the soonest armed core timer (work completion,
// quantum expiry, injected-quantum end) or sleeping thread's wake event —
// and false when nothing is armed (every core naturally idle, no sleeper
// waiting). Until the horizon the scheduler cannot change any core's
// occupancy, so the chip's power configuration is frozen from its side:
// this is the quiescence certificate the machine layer's leap integrator
// rests on. The certificate is one-sided — external components (workload
// arrivals, DTM controllers) schedule their own clock events — but the
// clock's event loop already bounds integration spans by those, so a span
// handed to the integrator never crosses either horizon.
func (s *Scheduler) NextEventHorizon() (units.Time, bool) {
	var at units.Time
	found := false
	consider := func(e *simclock.Event) {
		if e == nil || e.Cancelled() {
			return
		}
		if !found || e.At < at {
			at, found = e.At, true
		}
	}
	for i := range s.cores {
		consider(s.cores[i].timer)
	}
	for _, t := range s.threads {
		consider(t.wakeEvent)
	}
	return at, found
}

// Quiescent reports whether the scheduler is guaranteed not to act strictly
// before `until`: no armed timer or wake event fires earlier. During a
// quiescent window core occupancy — and therefore the scheduler's
// contribution to the power vector — is provably constant.
func (s *Scheduler) Quiescent(until units.Time) bool {
	at, ok := s.NextEventHorizon()
	return !ok || at >= until
}

// QueueLen returns the number of runnable-but-waiting threads across all
// queues.
func (s *Scheduler) QueueLen() int {
	n := 0
	for i := range s.queues {
		n += s.queues[i].len()
	}
	return n
}

// SpawnConfig names the optional attributes of a new thread.
type SpawnConfig struct {
	Name        string
	ProcessID   int
	Kernel      bool
	Priority    int // 0 means: PriorityKernel for kernel, PriorityUser otherwise
	PowerFactor float64
}

// Spawn creates a thread driven by prog and feeds it into the scheduler. The
// first action is requested immediately.
func (s *Scheduler) Spawn(prog Program, cfg SpawnConfig) *Thread {
	if prog == nil {
		panic("sched: Spawn with nil program")
	}
	t := &Thread{
		ID:          s.nextTID,
		Name:        cfg.Name,
		ProcessID:   cfg.ProcessID,
		Kernel:      cfg.Kernel,
		Priority:    cfg.Priority,
		PowerFactor: cfg.PowerFactor,
		prog:        prog,
		onCore:      -1,
		affinity:    -1,
		SpawnedAt:   s.clock.Now(),
	}
	if t.Name == "" {
		t.Name = fmt.Sprintf("thread-%d", t.ID)
	}
	if t.Priority == 0 && !t.Kernel {
		t.Priority = PriorityUser
	}
	if t.PowerFactor == 0 {
		t.PowerFactor = 1
	}
	t.workLabel = "work-done:" + t.Name
	t.quantLabel = "quantum:" + t.Name
	t.wakeLabel = "wake:" + t.Name
	t.wakeFn = func(units.Time) {
		t.wakeEvent = nil
		s.applyAction(t, t.prog.Next(s.clock.Now()))
	}
	s.nextTID++
	s.threads = append(s.threads, t)
	s.applyAction(t, t.prog.Next(s.clock.Now()))
	return t
}

// applyAction transitions t according to the action its program produced.
// The thread must not currently occupy a core.
func (s *Scheduler) applyAction(t *Thread, a Action) {
	now := s.clock.Now()
	switch a.Kind {
	case ActCompute:
		if a.Work <= 0 {
			// Zero-length compute degenerates to asking again; guard
			// against pathological programs by treating it as exit.
			s.exitThread(t)
			return
		}
		t.remaining = a.Work
		s.makeRunnable(t)
	case ActSleep:
		t.state = StateSleeping
		d := a.Duration
		if d < 0 {
			d = 0
		}
		t.wakeEvent = s.clock.ScheduleAfter(d, t.wakeLabel, t.wakeFn)
	case ActBlock:
		t.state = StateSleeping
	case ActExit:
		s.exitThread(t)
	default:
		panic(fmt.Sprintf("sched: unknown action kind %d", a.Kind))
	}
	_ = now
}

func (s *Scheduler) exitThread(t *Thread) {
	t.state = StateExited
	t.onCore = -1
	t.ExitedAt = s.clock.Now()
	if s.listener != nil {
		s.listener.ThreadExited(t)
	}
}

// Wake unblocks a thread parked by ActBlock. It is idempotent: waking a
// thread that is not sleeping is a no-op (the races a real kernel guards with
// wait channels collapse to this in virtual time). Timed sleeps are woken by
// their own timer, not by Wake.
func (s *Scheduler) Wake(t *Thread) {
	if t.state != StateSleeping || t.wakeEvent != nil {
		return
	}
	s.applyAction(t, t.prog.Next(s.clock.Now()))
}

// makeRunnable queues t and places it on a core if one is free (or if t
// should preempt a lower-priority occupant).
func (s *Scheduler) makeRunnable(t *Thread) {
	t.state = StateRunnable
	t.onCore = -1
	s.enqueue(t)
	// Prefer a naturally idle core. Injected-idle cores are deliberately
	// not disturbed: the paper's mechanism commits the core to its idle
	// quantum (the displaced thread is pinned; interrupts are handled by
	// the remaining cores, which at the paper's web-workload loads are
	// almost always available).
	for i := range s.cores {
		c := &s.cores[i]
		if c.current == nil && !c.injected {
			s.dispatch(c)
			return
		}
	}
	// Kernel threads preempt the lowest-priority user occupant, modelling
	// interrupt delivery.
	if t.Kernel {
		var worst *coreRun
		for i := range s.cores {
			c := &s.cores[i]
			if c.current != nil && c.current.Priority > t.Priority {
				if worst == nil || c.current.Priority > worst.current.Priority {
					worst = c
				}
			}
		}
		if worst != nil {
			s.preempt(worst)
		}
	}
}

// preempt stops the core's current thread mid-quantum and re-dispatches.
func (s *Scheduler) preempt(c *coreRun) {
	t := c.current
	if t == nil {
		return
	}
	s.chargeRun(c, t)
	s.cancelTimer(c)
	t.Preemptions++
	t.state = StateRunnable
	t.onCore = -1
	c.current = nil
	s.enqueue(t)
	s.dispatch(c)
}

// dispatch fills a free core with the best runnable thread, consulting the
// injection policy first — this is the scheduler decision point of §2.2:
// "each time the scheduler is about to schedule a thread, with probability p
// it instead runs the idle thread for a quantum of length L".
func (s *Scheduler) dispatch(c *coreRun) {
	if c.current != nil || c.injected {
		panic("sched: dispatch on an occupied core")
	}
	now := s.clock.Now()
	t := s.popFor(c)
	if t == nil {
		s.setNaturallyIdle(c)
		return
	}
	if s.injector != nil {
		if idle, ok := s.injector.Decide(t, c.id, now); ok && idle > 0 {
			s.inject(c, t, idle)
			return
		}
	}
	s.run(c, t)
}

// ForceIdle preempts the given core's current thread (if any, and not a
// kernel thread) and idles the core for dur as an injected quantum, pinning
// the displaced thread. It reports whether the core was idled. It is the
// primitive behind SMT idle co-scheduling: aligning a sibling context's idle
// window with an injection decision so the whole physical core can reach its
// low-power state (§3.2).
func (s *Scheduler) ForceIdle(coreID int, dur units.Time) bool {
	if coreID < 0 || coreID >= len(s.cores) || dur <= 0 {
		return false
	}
	c := &s.cores[coreID]
	if c.injected {
		return false // already idling
	}
	if c.current == nil {
		return false // naturally idle; nothing to align
	}
	t := c.current
	if t.Kernel {
		return false // kernel threads are always scheduled (§3.1)
	}
	s.chargeRun(c, t)
	s.cancelTimer(c)
	c.current = nil
	s.inject(c, t, dur)
	return true
}

// Kill terminates a thread immediately, whatever its state: a running thread
// is charged for its progress and its core re-dispatched, a queued thread is
// removed from its run queue, a sleeper's wake timer is cancelled, and the
// pinned victim of an in-flight injected idle quantum is detached (the core
// finishes its committed quantum — the paper's mechanism never cuts one
// short — but nothing is re-enqueued when it ends). It reports whether the
// thread was alive. Kill is the fleet dispatcher's eviction primitive: a
// migrated job's threads are killed here and respawned, with their remaining
// work, on the destination machine.
func (s *Scheduler) Kill(t *Thread) bool {
	switch t.state {
	case StateExited:
		return false
	case StateRunning:
		c := &s.cores[t.onCore]
		s.chargeRun(c, t)
		s.cancelTimer(c)
		c.current = nil
		s.exitThread(t)
		s.dispatch(c)
		return true
	case StatePinned:
		c := &s.cores[t.onCore]
		c.victim = nil
		s.exitThread(t)
		return true
	case StateRunnable:
		for i := range s.queues {
			if s.queues[i].remove(t) {
				break
			}
		}
		s.exitThread(t)
		return true
	case StateSleeping:
		if t.wakeEvent != nil {
			s.clock.Cancel(t.wakeEvent)
			t.wakeEvent = nil
		}
		s.exitThread(t)
		return true
	default:
		panic(fmt.Sprintf("sched: Kill in unknown state %v", t.state))
	}
}

// inject pins t and idles the core for the given quantum (§3.1: "we pin the
// thread that would have run on the runqueue (so it is not run by another
// processor) and schedule the kernel idle thread instead").
func (s *Scheduler) inject(c *coreRun, t *Thread, idle units.Time) {
	now := s.clock.Now()
	t.state = StatePinned
	t.onCore = c.id
	t.Injections++
	s.TotalInjections++
	c.victim = t
	c.injected = true
	c.injectStart = now
	if s.listener != nil {
		s.listener.CoreIdle(c.id, true)
	}
	dur := idle + s.cfg.InjectOverhead
	c.kind = timerInjectEnd
	c.timer = s.clock.ScheduleAfter(dur, "inject-end", c.fire)
}

// run places t on the core for up to one timeslice.
func (s *Scheduler) run(c *coreRun, t *Thread) {
	now := s.clock.Now()
	pad := units.Time(0)
	if c.lastThread != t {
		pad = s.cfg.CtxSwitch
	}
	t.state = StateRunning
	t.onCore = c.id
	t.affinity = c.id // ULE affinity: re-enqueue where it last ran
	t.Dispatches++
	t.runStart = now
	t.switchPad = pad
	t.runRate = s.rate.ProgressRate()
	c.current = t
	c.lastThread = t
	c.busyStart = now
	c.quantumEnd = now + s.cfg.Timeslice
	if s.listener != nil {
		s.listener.CoreRunning(c.id, t)
	}
	s.armRunTimer(c, t)
}

// armRunTimer schedules the earlier of work completion and quantum expiry.
func (s *Scheduler) armRunTimer(c *coreRun, t *Thread) {
	now := s.clock.Now()
	rate := t.runRate
	var done units.Time
	if rate <= 0 {
		done = c.quantumEnd + units.Second // starved: only the quantum fires
	} else {
		done = now + t.switchPad + units.FromSeconds(t.remaining/rate)
	}
	if done <= c.quantumEnd {
		c.kind = timerWorkDone
		c.timer = s.clock.Schedule(done, t.workLabel, c.fire)
	} else {
		c.kind = timerQuantum
		c.timer = s.clock.Schedule(c.quantumEnd, t.quantLabel, c.fire)
	}
}

func (s *Scheduler) cancelTimer(c *coreRun) {
	if c.timer != nil {
		s.clock.Cancel(c.timer)
		c.timer = nil
	}
	c.kind = timerNone
}

// chargeRun folds the elapsed occupancy of c's current thread into its
// accounting and ends the occupancy interval.
func (s *Scheduler) chargeRun(c *coreRun, t *Thread) {
	now := s.clock.Now()
	elapsed := now - t.runStart
	t.CPUTime += elapsed
	c.BusyTime += now - c.busyStart
	effective := elapsed - t.switchPad
	if effective < 0 {
		effective = 0
	}
	progress := effective.Seconds() * t.runRate
	if progress > t.remaining {
		progress = t.remaining
	}
	t.WorkDone += progress
	t.remaining -= progress
	t.runStart = now
	t.switchPad = 0
	c.busyStart = now
}

// ChargeAll folds any in-progress occupancy into thread and core accounting
// without descheduling anything. Call it before reading WorkDone/BusyTime at
// a measurement boundary; the armed timers remain consistent because charging
// shortens remaining work by exactly the progress made so far.
func (s *Scheduler) ChargeAll() {
	for i := range s.cores {
		c := &s.cores[i]
		if c.current != nil {
			s.chargeRun(c, c.current)
		}
		if c.injected {
			now := s.clock.Now()
			c.InjectIdleTime += now - c.injectStart
			c.injectStart = now
		}
	}
}

// onTimer handles the core's pending timer: work completion, quantum expiry
// or the end of an injected idle quantum.
func (s *Scheduler) onTimer(c *coreRun) {
	kind := c.kind
	c.timer = nil
	c.kind = timerNone
	switch kind {
	case timerWorkDone:
		t := c.current
		s.chargeRun(c, t)
		// Guard against float rounding leaving a sliver of work.
		if t.remaining > 1e-9 {
			s.armRunTimer(c, t)
			return
		}
		t.remaining = 0
		s.nextActionInPlace(c, t)
	case timerQuantum:
		t := c.current
		s.chargeRun(c, t)
		t.state = StateRunnable
		t.onCore = -1
		c.current = nil
		s.enqueue(t)
		s.dispatch(c) // fresh decision: the injector is consulted again
	case timerInjectEnd:
		t := c.victim
		c.victim = nil
		c.injected = false
		c.InjectIdleTime += s.clock.Now() - c.injectStart
		if t != nil { // a killed victim leaves nothing to resume
			t.state = StateRunnable
			t.onCore = -1
			s.enqueue(t)
		}
		s.dispatch(c)
	default:
		panic("sched: stray timer")
	}
}

// nextActionInPlace advances t's program after a completed compute action.
// If the program immediately wants more CPU, the thread keeps the core for
// the rest of its quantum without a fresh scheduling decision — matching a
// real kernel, where a thread returning from one computation into another
// doesn't pass through the dispatcher.
func (s *Scheduler) nextActionInPlace(c *coreRun, t *Thread) {
	now := s.clock.Now()
	a := t.prog.Next(now)
	if a.Kind == ActCompute && a.Work > 0 {
		t.remaining = a.Work
		t.runStart = now
		t.switchPad = 0
		s.armRunTimer(c, t)
		return
	}
	// The thread leaves the core.
	t.onCore = -1
	c.current = nil
	s.applyAction(t, a)
	s.dispatch(c)
}

// setNaturallyIdle marks the core idle with no injected quantum.
func (s *Scheduler) setNaturallyIdle(c *coreRun) {
	if s.listener != nil {
		s.listener.CoreIdle(c.id, false)
	}
}
