package sched

import (
	"testing"

	"repro/internal/simclock"
	"repro/internal/units"
)

// killRig builds a 1-core scheduler with a controllable injector.
type stubInjector struct {
	idle units.Time
	arm  bool
}

func (s *stubInjector) Decide(t *Thread, core int, now units.Time) (units.Time, bool) {
	if !s.arm {
		return 0, false
	}
	s.arm = false
	return s.idle, true
}

func killRig(t *testing.T, cores int) (*simclock.Clock, *Scheduler) {
	t.Helper()
	clock := &simclock.Clock{}
	cfg := Config{Cores: cores, Timeslice: 100 * units.Millisecond}
	return clock, New(clock, cfg, nil, nil)
}

func burnProg() Program {
	return ProgramFunc(func(units.Time) Action { return Compute(1.0) })
}

func TestKillRunningFreesCoreForQueued(t *testing.T) {
	clock, s := killRig(t, 1)
	a := s.Spawn(burnProg(), SpawnConfig{Name: "a"})
	b := s.Spawn(burnProg(), SpawnConfig{Name: "b"})
	clock.AdvanceTo(50*units.Millisecond, nil)
	if a.State() != StateRunning || b.State() != StateRunnable {
		t.Fatalf("setup: a=%v b=%v", a.State(), b.State())
	}
	if !s.Kill(a) {
		t.Fatal("Kill(a) reported dead")
	}
	if a.State() != StateExited {
		t.Fatalf("a not exited: %v", a.State())
	}
	if a.WorkDone <= 0 {
		t.Fatalf("killed mid-run but no work charged: %v", a.WorkDone)
	}
	// The freed core must immediately dispatch b.
	if b.State() != StateRunning {
		t.Fatalf("b not dispatched after kill: %v", b.State())
	}
	if s.Kill(a) {
		t.Fatal("double Kill reported alive")
	}
}

func TestKillRunnableRemovesFromQueue(t *testing.T) {
	clock, s := killRig(t, 1)
	s.Spawn(burnProg(), SpawnConfig{Name: "a"})
	b := s.Spawn(burnProg(), SpawnConfig{Name: "b"})
	clock.AdvanceTo(10*units.Millisecond, nil)
	if b.State() != StateRunnable {
		t.Fatalf("setup: b=%v", b.State())
	}
	if !s.Kill(b) {
		t.Fatal("Kill(b) reported dead")
	}
	if got := s.QueueLen(); got != 0 {
		t.Fatalf("queue still holds %d threads after kill", got)
	}
	// b must never run again.
	clock.AdvanceTo(500*units.Millisecond, nil)
	if b.Dispatches != 0 {
		t.Fatalf("killed queued thread was dispatched %d times", b.Dispatches)
	}
}

func TestKillSleepingCancelsWake(t *testing.T) {
	clock, s := killRig(t, 1)
	woke := false
	prog := ProgramFunc(func(now units.Time) Action {
		if now == 0 {
			return Sleep(20 * units.Millisecond)
		}
		woke = true
		return Exit()
	})
	th := s.Spawn(prog, SpawnConfig{Name: "sleeper"})
	if th.State() != StateSleeping {
		t.Fatalf("setup: %v", th.State())
	}
	if !s.Kill(th) {
		t.Fatal("Kill reported dead")
	}
	clock.AdvanceTo(100*units.Millisecond, nil)
	if woke {
		t.Fatal("killed sleeper still woke")
	}
}

func TestKillPinnedVictimDetachesFromInjection(t *testing.T) {
	clock, s := killRig(t, 1)
	inj := &stubInjector{idle: 30 * units.Millisecond}
	s.SetInjector(inj)
	a := s.Spawn(burnProg(), SpawnConfig{Name: "a"})
	clock.AdvanceTo(50*units.Millisecond, nil)
	// Arm the injector so the next dispatch (at the 100 ms quantum
	// boundary) displaces a with an idle quantum.
	inj.arm = true
	clock.AdvanceTo(110*units.Millisecond, nil)
	if a.State() != StatePinned {
		t.Fatalf("setup: a=%v (want pinned)", a.State())
	}
	if !s.Kill(a) {
		t.Fatal("Kill(pinned) reported dead")
	}
	// The committed idle quantum completes; the core must then be free to
	// run a newcomer rather than panic on a missing victim.
	b := s.Spawn(burnProg(), SpawnConfig{Name: "b"})
	clock.AdvanceTo(400*units.Millisecond, nil)
	if b.State() != StateRunning {
		t.Fatalf("core never recovered after killed victim: b=%v", b.State())
	}
	if a.Dispatches != 1 {
		t.Fatalf("killed victim re-dispatched: %d", a.Dispatches)
	}
	busy, injected := s.Core(0)
	if injected < 30*units.Millisecond {
		t.Fatalf("injected idle not accounted: %v", injected)
	}
	_ = busy
}

func TestKillRunnableULEQueues(t *testing.T) {
	clock := &simclock.Clock{}
	s := New(clock, Config{Cores: 2, Timeslice: 100 * units.Millisecond, PerCPUQueues: true}, nil, nil)
	var threads []*Thread
	for i := 0; i < 4; i++ {
		threads = append(threads, s.Spawn(burnProg(), SpawnConfig{}))
	}
	clock.AdvanceTo(10*units.Millisecond, nil)
	killed := 0
	for _, th := range threads {
		if th.State() == StateRunnable {
			if !s.Kill(th) {
				t.Fatal("Kill runnable reported dead")
			}
			killed++
		}
	}
	if killed == 0 {
		t.Fatal("setup: no runnable threads to kill")
	}
	if got := s.QueueLen(); got != 0 {
		t.Fatalf("ULE queues still hold %d threads", got)
	}
}
