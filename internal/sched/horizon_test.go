package sched

import (
	"testing"

	"repro/internal/simclock"
	"repro/internal/units"
)

// The next-event horizon is the scheduler's quiescence certificate: until it,
// no armed timer or wake event can change core occupancy, so the machine
// layer's leap integrator may treat the power configuration as frozen.

func horizonHarness() (*simclock.Clock, *Scheduler) {
	clock := &simclock.Clock{}
	cfg := DefaultConfig()
	cfg.Cores = 2
	return clock, New(clock, cfg, nil, nil)
}

func TestNextEventHorizonIdle(t *testing.T) {
	_, s := horizonHarness()
	if at, ok := s.NextEventHorizon(); ok {
		t.Fatalf("idle scheduler reports a horizon at %v", at)
	}
	if !s.Quiescent(3600 * units.Second) {
		t.Fatal("idle scheduler not quiescent forever")
	}
}

func TestNextEventHorizonRunning(t *testing.T) {
	clock, s := horizonHarness()
	// A long computation occupies core 0: the horizon is its quantum
	// expiry (dispatch pad included).
	s.Spawn(ProgramFunc(func(units.Time) Action { return Compute(1000) }), SpawnConfig{Name: "burn"})
	at, ok := s.NextEventHorizon()
	if !ok {
		t.Fatal("running scheduler reports no horizon")
	}
	if want := s.cfg.Timeslice; at != want {
		t.Fatalf("horizon %v, want quantum expiry at %v", at, want)
	}
	if s.Quiescent(at + 1) {
		t.Fatal("quiescent past the armed quantum timer")
	}
	if !s.Quiescent(at) {
		t.Fatal("not quiescent up to the armed quantum timer")
	}

	// A short computation finishes before the quantum: the horizon must
	// move to the earlier work-done timer.
	s.Spawn(ProgramFunc(func(units.Time) Action { return Compute(0.001) }), SpawnConfig{Name: "quick"})
	at, ok = s.NextEventHorizon()
	if !ok || at >= s.cfg.Timeslice {
		t.Fatalf("horizon %v (ok=%v), want the work-done timer before %v", at, ok, s.cfg.Timeslice)
	}
	_ = clock
}

func TestNextEventHorizonSleepAndWake(t *testing.T) {
	clock, s := horizonHarness()
	s.Spawn(ProgramFunc(func(now units.Time) Action {
		if now == 0 {
			return Sleep(30 * units.Millisecond)
		}
		return Exit()
	}), SpawnConfig{Name: "sleeper"})
	at, ok := s.NextEventHorizon()
	if !ok || at != 30*units.Millisecond {
		t.Fatalf("horizon %v (ok=%v), want the wake at 30ms", at, ok)
	}
	clock.AdvanceTo(30*units.Millisecond, nil)
	if at, ok := s.NextEventHorizon(); ok {
		t.Fatalf("horizon %v after the only sleeper exited", at)
	}
}

func TestNextEventHorizonInjection(t *testing.T) {
	_, s := horizonHarness()
	s.Spawn(ProgramFunc(func(units.Time) Action { return Compute(1000) }), SpawnConfig{Name: "burn"})
	if !s.ForceIdle(0, 10*units.Millisecond) {
		t.Fatal("ForceIdle refused")
	}
	at, ok := s.NextEventHorizon()
	want := 10*units.Millisecond + s.cfg.InjectOverhead
	if !ok || at != want {
		t.Fatalf("horizon %v (ok=%v), want inject-end at %v", at, ok, want)
	}
}

func TestNextEventHorizonKillClears(t *testing.T) {
	_, s := horizonHarness()
	th := s.Spawn(ProgramFunc(func(units.Time) Action { return Compute(1000) }), SpawnConfig{Name: "burn"})
	if _, ok := s.NextEventHorizon(); !ok {
		t.Fatal("no horizon while running")
	}
	if !s.Kill(th) {
		t.Fatal("kill failed")
	}
	if at, ok := s.NextEventHorizon(); ok {
		t.Fatalf("horizon %v survives the kill of the only thread", at)
	}
}
