package sched

// runQueue is the global run queue: FIFO within priority, lowest priority
// value first — the shape of the 4.4BSD scheduler's multi-level queue with
// round-robin inside each level. (We omit 4.4BSD's dynamic priority decay;
// the paper's workloads are steady-state and the mechanism under study —
// dispatch-time idle injection — is independent of it.)
type runQueue struct {
	threads []*Thread
	nextSeq uint64
}

// push enqueues t at the tail of its priority class.
func (q *runQueue) push(t *Thread) {
	t.enqSeq = q.nextSeq
	q.nextSeq++
	q.threads = append(q.threads, t)
}

// pop removes and returns the best runnable thread: lowest priority value,
// FIFO within a class. Returns nil when empty.
func (q *runQueue) pop() *Thread {
	best := -1
	for i, t := range q.threads {
		if best == -1 || less(t, q.threads[best]) {
			best = i
		}
	}
	if best == -1 {
		return nil
	}
	t := q.threads[best]
	q.threads = append(q.threads[:best], q.threads[best+1:]...)
	return t
}

// peek returns the best runnable thread without removing it.
func (q *runQueue) peek() *Thread {
	best := -1
	for i, t := range q.threads {
		if best == -1 || less(t, q.threads[best]) {
			best = i
		}
	}
	if best == -1 {
		return nil
	}
	return q.threads[best]
}

// remove deletes t from the queue if present, reporting whether it was.
func (q *runQueue) remove(t *Thread) bool {
	for i, cur := range q.threads {
		if cur == t {
			q.threads = append(q.threads[:i], q.threads[i+1:]...)
			return true
		}
	}
	return false
}

// len returns the number of queued threads.
func (q *runQueue) len() int { return len(q.threads) }

func less(a, b *Thread) bool {
	if a.Priority != b.Priority {
		return a.Priority < b.Priority
	}
	return a.enqSeq < b.enqSeq
}
